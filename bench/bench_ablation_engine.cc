// Ablation — which profile ingredient costs what (DESIGN.md "engine
// profiles, not engine forks"). Runs PageRank on the Web Google analogue
// while toggling one ingredient at a time:
//   * join algorithm on stat-less temp tables (hash vs merge vs nested
//     loop);
//   * insert logging (Oracle's direct-path insert vs the logged inserts
//     of DB2/PostgreSQL);
//   * temp-table index adoption (the Fig 10 mechanism, isolated).
#include "algos/algos.h"
#include "bench_common.h"

namespace {

using namespace gpr;          // NOLINT
using namespace gpr::bench;   // NOLINT

double TimePageRank(const graph::Graph& g, const core::EngineProfile& p,
                    int iters) {
  auto catalog = CatalogFor(g);
  algos::AlgoOptions opt;
  opt.profile = p;
  opt.max_iterations = iters;
  WallTimer timer;
  auto r = algos::PageRank(catalog, opt);
  GPR_CHECK_OK(r.status());
  return timer.ElapsedMillis();
}

}  // namespace

int main() {
  const double scale = EnvScale(0.3);
  const int iters = EnvIters(15);
  auto spec = graph::DatasetByAbbrev("WG");
  GPR_CHECK_OK(spec.status());
  graph::Graph g = graph::MakeDataset(*spec, scale);
  std::printf("Ablation — engine-profile ingredients "
              "(PageRank x%d, GPR_SCALE=%.2f)\n", iters, scale);
  PrintDatasetLine(*spec, g);

  PrintHeader("join algorithm on stat-less inputs");
  for (auto algo : {ra::ops::JoinAlgorithm::kHash,
                    ra::ops::JoinAlgorithm::kSortMerge}) {
    core::EngineProfile p = core::OracleLike();
    p.no_stats_join = algo;
    p.name = std::string("hash-base+") + ra::ops::JoinAlgorithmName(algo);
    std::printf("%-28s %10.0f ms\n", ra::ops::JoinAlgorithmName(algo),
                TimePageRank(g, p, iters));
  }

  PrintHeader("insert logging (redo-log copies)");
  for (bool logging : {false, true}) {
    core::EngineProfile p = core::OracleLike();
    p.insert_logging = logging;
    std::printf("%-28s %10.0f ms\n",
                logging ? "logged inserts" : "direct-path (/*+APPEND*/)",
                TimePageRank(g, p, iters));
  }

  PrintHeader("temp-table index adoption under merge-join plans");
  for (bool index : {false, true}) {
    std::printf("%-28s %10.0f ms\n", index ? "indexes built" : "no indexes",
                TimePageRank(g, core::PostgresLike(index), iters));
  }
  return 0;
}
