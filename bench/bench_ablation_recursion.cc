// Ablation — recursion-shape choices the paper discusses:
//
//  (1) nonlinear vs linear APSP (Section 6 "nonlinear queries ... converge
//      faster, whereas it is difficult to implement efficiently"): the
//      MM-join of D with itself doubles path lengths per iteration
//      (⌈log₂ diameter⌉ rounds) while the linear form advances one hop;
//  (2) path-oriented BFS: the always-active MV-join formulation
//      re-aggregates every node each round, while the frontier (early
//      selection / working-table) formulation touches only new nodes —
//      the optimization the paper attributes to Ordonez [41].
#include "algos/algos.h"
#include "bench_common.h"

namespace {

using namespace gpr;          // NOLINT
using namespace gpr::bench;   // NOLINT

}  // namespace

int main() {
  const double scale = EnvScale(0.04);
  auto spec = graph::DatasetByAbbrev("WV");
  GPR_CHECK_OK(spec.status());
  graph::Graph g = graph::MakeDataset(*spec, scale);
  std::printf("Ablation — recursion shapes (GPR_SCALE=%.2f)\n", scale);
  PrintDatasetLine(*spec, g);

  PrintHeader("APSP: nonlinear (D·D) vs linear (D·E)");
  {
    auto catalog = CatalogFor(g);
    WallTimer t1;
    auto nonlinear = algos::ApspFloydWarshall(catalog, {});
    GPR_CHECK_OK(nonlinear.status());
    const double ms1 = t1.ElapsedMillis();
    auto catalog2 = CatalogFor(g);
    algos::AlgoOptions opt;
    opt.depth = 0;  // run to fixpoint
    WallTimer t2;
    auto linear = algos::ApspLinear(catalog2, opt);
    GPR_CHECK_OK(linear.status());
    const double ms2 = t2.ElapsedMillis();
    std::printf("%-22s %4zu iterations %10.0f ms\n", "nonlinear (MM self)",
                nonlinear->iterations, ms1);
    std::printf("%-22s %4zu iterations %10.0f ms\n", "linear (MM with E)",
                linear->iterations, ms2);
    std::printf("results agree: %s\n",
                nonlinear->table.SameRowsAs(linear->table) ? "yes" : "NO");
  }

  PrintHeader("BFS: always-active MV-join vs frontier (early selection)");
  {
    // A larger sparse graph makes the frontier effect visible.
    graph::Graph big = *graph::MakeDatasetByAbbrev("WT", EnvScale(0.5));
    auto catalog = CatalogFor(big);
    algos::AlgoOptions opt;
    opt.source = 0;
    WallTimer t1;
    auto mv = algos::Bfs(catalog, opt);
    GPR_CHECK_OK(mv.status());
    const double ms1 = t1.ElapsedMillis();
    auto catalog2 = CatalogFor(big);
    WallTimer t2;
    auto frontier = algos::BfsFrontier(catalog2, opt);
    GPR_CHECK_OK(frontier.status());
    const double ms2 = t2.ElapsedMillis();
    size_t reached = 0;
    for (const auto& row : mv->table.rows()) {
      reached += row[1].ToDouble() == 1.0;
    }
    std::printf("%-26s %4zu iterations %10.0f ms\n", "MV-join (always-active)",
                mv->iterations, ms1);
    std::printf("%-26s %4zu iterations %10.0f ms\n", "frontier (working table)",
                frontier->iterations, ms2);
    std::printf("reached %zu vs %zu nodes: %s\n", reached,
                frontier->table.NumRows(),
                reached == frontier->table.NumRows() ? "agree" : "DISAGREE");
  }
  return 0;
}
