// Shared helpers for the experiment harnesses (one binary per paper
// table/figure).
//
// Environment knobs:
//   GPR_SCALE       multiplies every dataset's size (default per binary;
//                   raise toward 1.0 to approach the Table 3 analogues)
//   GPR_ITERS       overrides the fixed iteration count (PR/HITS/LP)
#pragma once

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "algos/registry.h"
#include "core/engine_profile.h"
#include "graph/datasets.h"
#include "graph/relations.h"
#include "ra/catalog.h"
#include "util/timer.h"

namespace gpr::bench {

inline double EnvScale(double fallback) {
  const char* v = std::getenv("GPR_SCALE");
  return v != nullptr ? std::atof(v) : fallback;
}

inline int EnvIters(int fallback) {
  const char* v = std::getenv("GPR_ITERS");
  return v != nullptr ? std::atoi(v) : fallback;
}

/// Materializes a dataset analogue and registers E/V/VL in a fresh catalog.
inline ra::Catalog CatalogFor(const graph::Graph& g) {
  ra::Catalog catalog;
  GPR_CHECK_OK(graph::RegisterGraph(g, &catalog));
  return catalog;
}

/// Prints a header like the paper's tables.
inline void PrintHeader(const std::string& title) {
  std::printf("\n=== %s ===\n", title.c_str());
}

inline void PrintDatasetLine(const graph::DatasetSpec& spec,
                             const graph::Graph& g) {
  std::printf("dataset %-22s |V|=%-8lld |E|=%-9zu (paper: %lld / %zu)\n",
              spec.name.c_str(), static_cast<long long>(g.num_nodes()),
              g.num_edges(), static_cast<long long>(spec.paper_nodes),
              spec.paper_edges);
}

/// A cell that may be unsupported ("-", like the paper's tables).
inline std::string Cell(bool supported, double millis) {
  if (!supported) return "        -";
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%9.0f", millis);
  return buf;
}

}  // namespace gpr::bench
