// Shared helpers for the experiment harnesses (one binary per paper
// table/figure).
//
// Environment knobs:
//   GPR_SCALE       multiplies every dataset's size (default per binary;
//                   raise toward 1.0 to approach the Table 3 analogues)
//   GPR_ITERS       overrides the fixed iteration count (PR/HITS/LP)
#pragma once

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "algos/registry.h"
#include "core/engine_profile.h"
#include "core/plan.h"
#include "core/with_plus.h"
#include "graph/datasets.h"
#include "graph/relations.h"
#include "ra/aggregate.h"
#include "ra/catalog.h"
#include "ra/expr.h"
#include "util/timer.h"

namespace gpr::bench {

/// True when `flag` (e.g. "--json") appears in argv.
inline bool HasFlag(int argc, char** argv, const char* flag) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], flag) == 0) return true;
  }
  return false;
}

/// One machine-readable measurement; serialized as a JSON object so CI can
/// accumulate the perf trajectory across commits.
struct BenchRecord {
  std::string op;       ///< operator / workload name
  std::string profile;  ///< engine profile (or "-" when irrelevant)
  std::string dataset;  ///< synthetic dataset label
  int dop = 1;          ///< degree of parallelism
  double wall_ms = 0;   ///< best-of-N wall time
  size_t rows = 0;      ///< output rows (sanity anchor for the timing)
  // Plan-state-cache counters of the measured run (0 for non-fixpoint
  // workloads and cache-off legs).
  size_t cache_hits = 0;
  size_t cache_misses = 0;
  double setup_ms = 0;  ///< pre-loop hoisting prologue wall time
  // Plan-facts counters (0 for non-fixpoint workloads and facts-off legs):
  // dead-select subtree skips, dedup identity skips, and columns pruned by
  // the facts-proven projection pushdown.
  size_t facts_dead_selects = 0;
  size_t facts_dedup_skips = 0;
  size_t facts_pruned_columns = 0;
  double facts_setup_ms = 0;  ///< dataflow analysis wall time
  // CSR SpMV/SpMM kernel counters (ra/csr.h; 0 for kernels-off legs and
  // workloads with no MV/MM-join): layouts built, aggregate-joins run on
  // the kernel path, and kernels-on executions that fell back generic.
  size_t csr_builds = 0;
  size_t kernel_hits = 0;
  size_t kernel_fallbacks = 0;
  // Vectorized batch-execution counters (ra/vectorized.h; 0 for
  // vectorize-off legs): ~2048-row column batches processed, and
  // vectorize-on executions that fell back to the row-at-a-time oracle.
  size_t vector_batches = 0;
  size_t vector_fallbacks = 0;
};

/// Collects BenchRecords and writes them as a JSON array.
class BenchJsonWriter {
 public:
  void Add(BenchRecord r) { records_.push_back(std::move(r)); }

  std::string ToJson() const {
    std::string out = "[\n";
    for (size_t i = 0; i < records_.size(); ++i) {
      const BenchRecord& r = records_[i];
      char buf[896];
      std::snprintf(buf, sizeof(buf),
                    "  {\"op\": \"%s\", \"profile\": \"%s\", "
                    "\"dataset\": \"%s\", \"dop\": %d, "
                    "\"wall_ms\": %.3f, \"rows\": %zu, "
                    "\"cache_hits\": %zu, \"cache_misses\": %zu, "
                    "\"setup_ms\": %.3f, "
                    "\"facts_dead_selects\": %zu, "
                    "\"facts_dedup_skips\": %zu, "
                    "\"facts_pruned_columns\": %zu, "
                    "\"facts_setup_ms\": %.3f, "
                    "\"csr_builds\": %zu, "
                    "\"kernel_hits\": %zu, "
                    "\"kernel_fallbacks\": %zu, "
                    "\"vector_batches\": %zu, "
                    "\"vector_fallbacks\": %zu}%s\n",
                    r.op.c_str(), r.profile.c_str(), r.dataset.c_str(),
                    r.dop, r.wall_ms, r.rows, r.cache_hits, r.cache_misses,
                    r.setup_ms, r.facts_dead_selects, r.facts_dedup_skips,
                    r.facts_pruned_columns, r.facts_setup_ms, r.csr_builds,
                    r.kernel_hits, r.kernel_fallbacks, r.vector_batches,
                    r.vector_fallbacks,
                    i + 1 < records_.size() ? "," : "");
      out += buf;
    }
    out += "]\n";
    return out;
  }

  /// Writes the JSON array to `path`; returns false on I/O failure.
  bool WriteFile(const std::string& path) const {
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) return false;
    const std::string json = ToJson();
    const bool ok = std::fwrite(json.data(), 1, json.size(), f) ==
                    json.size();
    return std::fclose(f) == 0 && ok;
  }

 private:
  std::vector<BenchRecord> records_;
};

inline double EnvScale(double fallback) {
  const char* v = std::getenv("GPR_SCALE");
  return v != nullptr ? std::atof(v) : fallback;
}

inline int EnvIters(int fallback) {
  const char* v = std::getenv("GPR_ITERS");
  return v != nullptr ? std::atoi(v) : fallback;
}

/// Materializes a dataset analogue and registers E/V/VL in a fresh catalog.
inline ra::Catalog CatalogFor(const graph::Graph& g) {
  ra::Catalog catalog;
  GPR_CHECK_OK(graph::RegisterGraph(g, &catalog));
  return catalog;
}

/// Prints a header like the paper's tables.
inline void PrintHeader(const std::string& title) {
  std::printf("\n=== %s ===\n", title.c_str());
}

inline void PrintDatasetLine(const graph::DatasetSpec& spec,
                             const graph::Graph& g) {
  std::printf("dataset %-22s |V|=%-8lld |E|=%-9zu (paper: %lld / %zu)\n",
              spec.name.c_str(), static_cast<long long>(g.num_nodes()),
              g.num_edges(), static_cast<long long>(spec.paper_nodes),
              spec.paper_edges);
}

/// Single-source reachability shaped to showcase the plan-facts executor
/// wins (docs/performance.md): the delta deduplicates a group-by whose key
/// proves the input duplicate-free (facts skip the dedup), and joins the
/// frontier against a composite invariant E⋈V subtree whose ew / vw
/// columns no consumer reads (facts prune them before hoisting). Results
/// are identical with facts on or off — only the counters and wall time
/// move.
inline core::WithPlusQuery FactsShowcaseQuery() {
  namespace ops = ra::ops;
  using ra::Col;
  core::WithPlusQuery q;
  q.rec_name = "Reach";
  q.rec_schema = ra::Schema{{"ID", ra::ValueType::kInt64}};
  q.init.push_back(
      {core::ProjectOp(
           core::SelectOp(core::Scan("V"),
                          ra::Eq(Col("ID"), ra::Lit(0))),
           {ops::As(Col("ID"), "ID")}),
       {}});
  q.recursive.push_back(
      {core::DistinctOp(core::ProjectOp(
           core::GroupByOp(
               core::JoinOp(
                   core::Scan("Reach"),
                   core::JoinOp(core::Scan("E"), core::Scan("V"),
                                {{"T"}, {"ID"}}),
                   {{"ID"}, {"F"}}),
               {"E.T"}, {ra::CountStar("c")}),
           {ops::As(Col("T"), "ID")})),
       {}});
  q.mode = core::UnionMode::kUnionDistinct;
  return q;
}

/// A cell that may be unsupported ("-", like the paper's tables).
inline std::string Cell(bool supported, double millis) {
  if (!supported) return "        -";
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%9.0f", millis);
  return buf;
}

}  // namespace gpr::bench
