// Fig 10 (Exp-A) — the effectiveness of indexing under the
// PostgreSQL-like profile, on four larger datasets.
//
// The PostgreSQL optimizer falls back to merge-join plans on temp tables
// lacking statistics; with an index built, it switches to index scans
// instead of per-iteration sorts. Under Oracle/DB2 (hash plans) indexes on
// temp tables are ignored, so only the PostgreSQL-like profile is shown —
// exactly as in the paper. Expect 10–50% improvement, shrinking (or
// reversing) on the densest dataset.
#include "algos/registry.h"
#include "bench_common.h"

namespace {

using namespace gpr;          // NOLINT
using namespace gpr::bench;   // NOLINT

const char* kAlgos[] = {"SSSP", "WCC", "PR", "HITS", "LP"};

void RunDataset(const char* abbrev, double scale, int iters) {
  auto spec = graph::DatasetByAbbrev(abbrev);
  GPR_CHECK_OK(spec.status());
  graph::Graph g = graph::MakeDataset(*spec, scale);
  PrintHeader("Fig 10: indexing effectiveness on " + spec->name);
  PrintDatasetLine(*spec, g);
  std::printf("%-6s %14s %14s %9s\n", "algo", "no-index(ms)",
              "indexed(ms)", "speedup");
  for (const char* abbr : kAlgos) {
    auto entry = algos::AlgoByAbbrev(abbr);
    GPR_CHECK_OK(entry.status());
    double times[2] = {0, 0};
    for (int with_index = 0; with_index <= 1; ++with_index) {
      auto catalog = CatalogFor(g);
      algos::AlgoOptions opt;
      opt.profile = core::PostgresLike(/*build_temp_indexes=*/with_index != 0);
      opt.max_iterations = (std::string(abbr) == "PR" ||
                            std::string(abbr) == "HITS" ||
                            std::string(abbr) == "LP")
                               ? iters
                               : 0;
      WallTimer timer;
      auto result = entry->run(catalog, opt);
      GPR_CHECK_OK(result.status());
      times[with_index] = timer.ElapsedMillis();
    }
    std::printf("%-6s %14.0f %14.0f %8.2fx\n", abbr, times[0], times[1],
                times[0] / std::max(times[1], 1e-9));
    std::fflush(stdout);
  }
}

}  // namespace

int main() {
  const double scale = EnvScale(0.2);
  const int iters = EnvIters(15);
  std::printf("Fig 10 — with/without indexing, postgres-like profile "
              "(GPR_SCALE=%.2f)\n", scale);
  for (const char* abbrev : {"LJ", "OK", "WT", "PC"}) {
    RunDataset(abbrev, scale, iters);
  }
  return 0;
}
