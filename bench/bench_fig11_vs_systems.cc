// Fig 11 (Exp-B) — with+ on the Oracle-like profile vs the dedicated
// graph-system baselines, for PR, WCC, and SSSP over all nine datasets.
//
// Baseline stand-ins (see DESIGN.md): PowerGraph = tight array-based
// native implementations; SociaLite = hash-frontier seminaive variants;
// Giraph = the message-copying BSP engine.
//
// Paper shape to reproduce: PowerGraph wins overall; the RDBMS path is
// competitive on small graphs (Wiki Vote) and for the always-active PR,
// but falls behind on large graphs for the path-oriented WCC/SSSP, where
// it must join iteratively.
#include "algos/algos.h"
#include "baseline/bsp_engine.h"
#include "baseline/native_algos.h"
#include "bench_common.h"

namespace {

using namespace gpr;          // NOLINT
using namespace gpr::bench;   // NOLINT

struct Series {
  const char* name;
  double millis;
};

void RunAlgo(const char* algo, double scale, int iters) {
  PrintHeader(std::string("Fig 11: ") + algo +
              " — RDBMS (with+) vs graph systems");
  std::printf("%-24s %12s %12s %12s %12s\n", "dataset", "with+/oracle",
              "powergraph", "socialite", "giraph");
  for (const auto& spec : graph::PaperDatasets()) {
    graph::Graph g = graph::MakeDataset(spec, scale);
    double rdbms = 0;
    double power = 0;
    double social = 0;
    double giraph = 0;
    {
      auto catalog = CatalogFor(g);
      algos::AlgoOptions opt;
      opt.max_iterations =
          std::string(algo) == "PR" ? iters : 0;
      WallTimer t;
      Result<core::WithPlusResult> r = [&]() {
        if (std::string(algo) == "PR") return algos::PageRank(catalog, opt);
        if (std::string(algo) == "WCC") return algos::Wcc(catalog, opt);
        return algos::SsspBellmanFord(catalog, opt);
      }();
      GPR_CHECK_OK(r.status());
      rdbms = t.ElapsedMillis();
    }
    auto time_it = [&](auto&& fn) {
      WallTimer t;
      fn();
      return t.ElapsedMillis();
    };
    if (std::string(algo) == "PR") {
      power = time_it([&] { baseline::PageRank(g, iters, 0.85); });
      social = time_it([&] { baseline::SeminaivePageRank(g, iters, 0.85); });
      giraph = time_it([&] { baseline::BspPageRank(g, iters, 0.85); });
    } else if (std::string(algo) == "WCC") {
      power = time_it([&] { baseline::Wcc(g); });
      social = time_it([&] { baseline::SeminaiveWcc(g); });
      giraph = time_it([&] { baseline::BspWcc(g); });
    } else {
      power = time_it([&] { baseline::SsspBellmanFord(g, 0); });
      social = time_it([&] { baseline::SeminaiveSssp(g, 0); });
      giraph = time_it([&] { baseline::BspSssp(g, 0); });
    }
    std::printf("%-24s %12.1f %12.1f %12.1f %12.1f\n", spec.abbrev.c_str(),
                rdbms, power, social, giraph);
    std::fflush(stdout);
  }
}

}  // namespace

int main() {
  const double scale = EnvScale(0.2);
  const int iters = EnvIters(15);
  std::printf("Fig 11 — RDBMS vs PowerGraph/SociaLite/Giraph analogues "
              "(ms; GPR_SCALE=%.2f)\n", scale);
  RunAlgo("PR", scale, iters);
  RunAlgo("WCC", scale, iters);
  RunAlgo("SSSP", scale, iters);
  return 0;
}
