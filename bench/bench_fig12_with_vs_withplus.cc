// Fig 12 (Exp-C) — PageRank expressed with the enhanced with+ (Fig 3,
// union-by-update + group by) versus SQL'99-legal with (Fig 9, union all +
// partition-by emulation + distinct, iteration number carried in L), on
// the Web Google analogue with depth d = 14.
//
// Paper shape to reproduce:
//   (a) per-iteration runtime — flat for with+, growing for with (≈2×
//       slower overall);
//   (b) accumulated tuples — with+ stays at n, with grows linearly to
//       (d+1)·n.
#include "algos/algos.h"
#include "bench_common.h"

namespace {

using namespace gpr;          // NOLINT
using namespace gpr::bench;   // NOLINT

}  // namespace

int main() {
  const double scale = EnvScale(0.3);
  const int d = EnvIters(14);
  auto spec = graph::DatasetByAbbrev("WG");
  GPR_CHECK_OK(spec.status());
  graph::Graph g = graph::MakeDataset(*spec, scale);
  std::printf("Fig 12 — with vs with+ PageRank on Web Google analogue "
              "(d=%d, GPR_SCALE=%.2f)\n", d, scale);
  PrintDatasetLine(*spec, g);
  const auto n = static_cast<size_t>(g.num_nodes());

  // with+ (Fig 3): union-by-update, group by — PostgreSQL-like profile as
  // in the paper's comparison.
  core::WithPlusResult plus;
  {
    auto catalog = CatalogFor(g);
    algos::AlgoOptions opt;
    opt.profile = core::PostgresLike();
    opt.max_iterations = d;
    auto r = algos::PageRank(catalog, opt);
    GPR_CHECK_OK(r.status());
    plus = std::move(r).value();
  }
  // with (Fig 9): union all + partition-by + distinct.
  core::WithPlusResult sql99;
  {
    auto catalog = CatalogFor(g);
    algos::AlgoOptions opt;
    opt.profile = core::PostgresLike();
    opt.max_iterations = d;
    auto r = algos::PageRankSql99(catalog, opt);
    GPR_CHECK_OK(r.status());
    sql99 = std::move(r).value();
  }

  PrintHeader("Fig 12(a): running time per iteration (ms)");
  std::printf("%5s %12s %12s\n", "iter", "with+", "with");
  const size_t iters = std::max(plus.iters.size(), sql99.iters.size());
  double total_plus = 0;
  double total_with = 0;
  for (size_t i = 0; i < iters; ++i) {
    const double a = i < plus.iters.size() ? plus.iters[i].millis : 0;
    const double b = i < sql99.iters.size() ? sql99.iters[i].millis : 0;
    total_plus += a;
    total_with += b;
    std::printf("%5zu %12.1f %12.1f\n", i + 1, a, b);
  }
  std::printf("total %12.1f %12.1f  (with/with+ = %.2fx)\n", total_plus,
              total_with, total_with / std::max(total_plus, 1e-9));

  PrintHeader("Fig 12(b): accumulated tuples (multiples of n)");
  std::printf("%5s %12s %12s\n", "iter", "with+", "with");
  for (size_t i = 0; i < iters; ++i) {
    const double a =
        i < plus.iters.size()
            ? static_cast<double>(plus.iters[i].rec_rows) / n
            : 0;
    const double b =
        i < sql99.iters.size()
            ? static_cast<double>(sql99.iters[i].rec_rows) / n
            : 0;
    std::printf("%5zu %11.1fn %11.1fn\n", i + 1, a, b);
  }
  return 0;
}
