// Fig 13 (Exp-C) — linear TC (a) and APSP (b) on the Wiki Vote analogue
// with recursion depth d = 7, reporting per-iteration runtime.
//
// Paper shape to reproduce: both costs grow per iteration because the
// intermediate relation densifies (edge-to-edge joins); APSP is costlier
// than TC due to the extra aggregation in the MM-join. The union-all
// (Oracle/DB2-style) TC is also run at a shallow depth to demonstrate the
// duplicate blow-up that made it infeasible in the paper.
#include "algos/algos.h"
#include "bench_common.h"

namespace {

using namespace gpr;          // NOLINT
using namespace gpr::bench;   // NOLINT

}  // namespace

int main() {
  // TC/APSP outputs approach n² tuples; the default scale keeps the
  // largest intermediate (|D| × avg-degree join) within memory.
  const double scale = EnvScale(0.05);
  const int d = EnvIters(7);
  auto spec = graph::DatasetByAbbrev("WV");
  GPR_CHECK_OK(spec.status());
  graph::Graph g = graph::MakeDataset(*spec, scale);
  std::printf("Fig 13 — linear TC and APSP on Wiki Vote analogue "
              "(d=%d, GPR_SCALE=%.2f)\n", d, scale);
  PrintDatasetLine(*spec, g);

  PrintHeader("Fig 13(a): linear TC, per-iteration time (ms)");
  core::WithPlusResult tc;
  {
    auto catalog = CatalogFor(g);
    algos::AlgoOptions opt;
    opt.max_iterations = d;
    auto r = algos::TransitiveClosure(catalog, opt);
    GPR_CHECK_OK(r.status());
    tc = std::move(r).value();
  }
  std::printf("%5s %12s %12s\n", "iter", "with+ (ms)", "|TC| tuples");
  for (size_t i = 0; i < tc.iters.size(); ++i) {
    std::printf("%5zu %12.1f %12zu\n", i + 1, tc.iters[i].millis,
                tc.iters[i].rec_rows);
  }

  PrintHeader("Fig 13(b): APSP by linear MM-join recursion (ms)");
  core::WithPlusResult apsp;
  {
    auto catalog = CatalogFor(g);
    algos::AlgoOptions opt;
    opt.depth = d;
    auto r = algos::ApspLinear(catalog, opt);
    GPR_CHECK_OK(r.status());
    apsp = std::move(r).value();
  }
  std::printf("%5s %12s %12s\n", "iter", "APSP (ms)", "|D| tuples");
  for (size_t i = 0; i < apsp.iters.size(); ++i) {
    std::printf("%5zu %12.1f %12zu\n", i + 1, apsp.iters[i].millis,
                apsp.iters[i].rec_rows);
  }

  PrintHeader("Union-all TC blow-up (why Oracle/DB2 cannot finish)");
  {
    // Duplicates multiply by the average degree every iteration, so even a
    // tiny slice demonstrates the explosion within a shallow depth cap.
    graph::Graph tiny = graph::MakeDataset(*spec, scale * 0.4);
    auto catalog = CatalogFor(tiny);
    core::WithPlusQuery q;
    q.rec_name = "TCall";
    q.rec_schema = ra::Schema{{"F", ra::ValueType::kInt64},
                              {"T", ra::ValueType::kInt64}};
    namespace ops = ra::ops;
    q.init.push_back(
        {core::ProjectOp(core::Scan("E"), {ops::As(ra::Col("F"), "F"),
                                           ops::As(ra::Col("T"), "T")}),
         {}});
    q.recursive.push_back(
        {core::ProjectOp(
             core::JoinOp(core::Scan("TCall"), core::Scan("E"),
                          {{"T"}, {"F"}}),
             {ops::As(ra::Col("TCall.F"), "F"), ops::As(ra::Col("E.T"), "T")}),
         {}});
    q.mode = core::UnionMode::kUnionAll;
    q.sql99_working_table = true;     // real engines' CTE evaluation
    q.maxrecursion = std::min(d, 3);  // deeper is infeasible by design
    auto r = core::ExecuteWithPlus(q, catalog, core::OracleLike());
    GPR_CHECK_OK(r.status());
    std::printf("%5s %12s %14s\n", "iter", "time (ms)", "tuples (dups)");
    for (size_t i = 0; i < r->iters.size(); ++i) {
      std::printf("%5zu %12.1f %14zu\n", i + 1, r->iters[i].millis,
                  r->iters[i].rec_rows);
    }
  }
  return 0;
}
