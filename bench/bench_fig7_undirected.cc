// Fig 7 — 9 graph algorithms (SSSP, WCC, PR, HITS, KC, MIS, LP, MNM, KS;
// no TopoSort on undirected graphs) over the three undirected datasets
// (Youtube, LiveJournal, Orkut analogues), on all three engine profiles.
//
// Paper shape to reproduce: Oracle fastest, DB2 second, PostgreSQL last;
// HITS notably more expensive than PR (2 MV-joins + θ-join + extra
// normalization aggregate per iteration); K-core uses k=10 on the dense
// Orkut and 5 elsewhere.
#include "algos/registry.h"
#include "bench_common.h"

namespace {

using namespace gpr;          // NOLINT
using namespace gpr::bench;   // NOLINT

void RunDataset(const char* abbrev, double scale, int iters) {
  auto spec = graph::DatasetByAbbrev(abbrev);
  GPR_CHECK_OK(spec.status());
  graph::Graph g = graph::MakeDataset(*spec, scale);
  PrintHeader("Fig 7: " + spec->name + " (undirected)");
  PrintDatasetLine(*spec, g);
  std::printf("%-6s", "algo");
  for (const auto& profile : core::AllProfiles()) {
    std::printf(" %14s", profile.name.c_str());
  }
  std::printf("  iters\n");

  for (const auto& entry : algos::EvaluationSet(/*include_toposort=*/false)) {
    std::printf("%-6s", entry.abbrev.c_str());
    size_t iterations = 0;
    for (const auto& profile : core::AllProfiles()) {
      auto catalog = CatalogFor(g);
      algos::AlgoOptions opt;
      opt.profile = profile;
      opt.k = spec->abbrev == "OK" ? 10 : 5;  // paper's K-core setting
      opt.max_iterations =
          (entry.abbrev == "PR" || entry.abbrev == "HITS" ||
           entry.abbrev == "LP")
              ? iters
              : 0;
      WallTimer timer;
      auto result = entry.run(catalog, opt);
      GPR_CHECK_OK(result.status());
      iterations = result->iterations;
      std::printf(" %14.0f", timer.ElapsedMillis());
      std::fflush(stdout);
    }
    std::printf("  %5zu\n", iterations);
  }
}

}  // namespace

int main() {
  const double scale = EnvScale(0.15);
  const int iters = EnvIters(15);
  std::printf("Fig 7 — 9 algorithms over 3 undirected graphs "
              "(ms; GPR_SCALE=%.2f, %d fixed iterations)\n",
              scale, iters);
  for (const char* abbrev : {"YT", "LJ", "OK"}) {
    RunDataset(abbrev, scale, iters);
  }
  return 0;
}
