// Fig 8 — 10 graph algorithms (the Fig 7 set plus TopoSort) over the six
// directed datasets (Wiki Vote, Twitter, Web Google, Wiki Talk, Google+,
// U.S. Patent Citation analogues), on all three engine profiles.
//
// Paper shape to reproduce: same engine ordering as Fig 7; MNM iteration
// counts vary wildly by dataset (1 on Patents vs ~18 on Google+), which
// dominates its runtime.
#include "algos/registry.h"
#include "bench_common.h"

namespace {

using namespace gpr;          // NOLINT
using namespace gpr::bench;   // NOLINT

void RunDataset(const char* abbrev, double scale, int iters) {
  auto spec = graph::DatasetByAbbrev(abbrev);
  GPR_CHECK_OK(spec.status());
  graph::Graph g = graph::MakeDataset(*spec, scale);
  PrintHeader("Fig 8: " + spec->name + " (directed)");
  PrintDatasetLine(*spec, g);
  std::printf("%-6s", "algo");
  for (const auto& profile : core::AllProfiles()) {
    std::printf(" %14s", profile.name.c_str());
  }
  std::printf("  iters\n");

  for (const auto& entry : algos::EvaluationSet(/*include_toposort=*/true)) {
    std::printf("%-6s", entry.abbrev.c_str());
    size_t iterations = 0;
    for (const auto& profile : core::AllProfiles()) {
      auto catalog = CatalogFor(g);
      algos::AlgoOptions opt;
      opt.profile = profile;
      opt.k = 5;
      opt.max_iterations =
          (entry.abbrev == "PR" || entry.abbrev == "HITS" ||
           entry.abbrev == "LP")
              ? iters
              : 0;
      WallTimer timer;
      auto result = entry.run(catalog, opt);
      GPR_CHECK_OK(result.status());
      iterations = result->iterations;
      std::printf(" %14.0f", timer.ElapsedMillis());
      std::fflush(stdout);
    }
    std::printf("  %5zu\n", iterations);
  }
}

}  // namespace

int main() {
  const double scale = EnvScale(0.15);
  const int iters = EnvIters(15);
  std::printf("Fig 8 — 10 algorithms over 6 directed graphs "
              "(ms; GPR_SCALE=%.2f, %d fixed iterations)\n",
              scale, iters);
  for (const char* abbrev : {"WV", "TT", "WG", "WT", "GP", "PC"}) {
    RunDataset(abbrev, scale, iters);
  }
  return 0;
}
