// BENCH_fixpoint — the cross-iteration plan-state cache and the plan-facts
// optimizations measured end to end: WCC, SSSP and the facts-showcase
// reachability through the with+ fixpoint, cache off/on × facts off/on ×
// DOP 1/max, over Erdős–Rényi graphs of increasing size.
//
// Every leg's result table is verified row-identical (order included) to
// the cache-off facts-off DOP=1 baseline before its timing is recorded —
// a leg that changes the answer aborts the run. `--json` writes
// BENCH_fixpoint.json (BenchRecord schema, with cache hit/miss counters,
// the hoisting prologue's setup time, and the facts counters: dedup
// skips, dead-select skips, pruned columns, analysis time) for the CI
// perf-trajectory artifact.
//
// A kernels section measures the CSR SpMV kernel end to end: WCC, SSSP
// and PR at DOP 1 with `kernels off` vs `kernels on` ("kernels-off" /
// "kernels-on" variants, with csr_builds / kernel_hits /
// kernel_fallbacks counters in the JSON) — the docs/performance.md
// speedup claim is the er-64k rows of this section.
//
// A vectorize section measures the columnar batch execution end to end:
// the same three workloads at DOP 1 over the kernels × vectorize grid
// ("vectorize-off+kernels-off" … "vectorize-on+kernels-on" variants,
// with vector_batches / vector_fallbacks counters in the JSON), every
// leg row-identical to the grid's own off/off run.
//
// A trailing section measures the resilience layer's cost: WCC and SSSP
// with iteration-granular checkpointing off vs every 8 iterations
// ("ckpt-off" / "ckpt-every-8" variants) — the snapshot copies must stay
// within a few percent of the checkpoint-free run (docs/robustness.md).
#include <algorithm>
#include <cstdio>
#include <thread>
#include <vector>

#include "algos/algos.h"
#include "bench_common.h"
#include "core/checkpoint.h"
#include "graph/generators.h"
#include "util/timer.h"

namespace {

using namespace gpr;         // NOLINT
using namespace gpr::bench;  // NOLINT

int HardwareDop() {
  const unsigned hw = std::thread::hardware_concurrency();
  return std::max(2, static_cast<int>(hw != 0 ? hw : 4));
}

void ExpectIdentical(const ra::Table& baseline, const ra::Table& got,
                     const char* label) {
  GPR_CHECK_EQ(baseline.NumRows(), got.NumRows()) << label;
  for (size_t i = 0; i < baseline.NumRows(); ++i) {
    GPR_CHECK(baseline.row(i) == got.row(i))
        << label << ": row " << i << " differs from the cache-off "
        << "facts-off DOP=1 baseline";
  }
}

struct Workload {
  const char* name;
  Result<algos::WithPlusResult> (*run)(ra::Catalog&,
                                       const algos::AlgoOptions&);
};

/// The plan-facts showcase (bench_common.h): reachability whose delta has
/// a facts-skippable dedup and a facts-prunable invariant join input.
Result<algos::WithPlusResult> ReachFacts(ra::Catalog& catalog,
                                         const algos::AlgoOptions& options) {
  auto q = FactsShowcaseQuery();
  return algos::RunWithPlus(q, catalog, options);
}

int Run(bool json) {
  BenchJsonWriter writer;
  const double scale = EnvScale(1.0);
  const int reps = 2;

  const Workload workloads[] = {{"wcc", &algos::Wcc},
                                {"sssp", &algos::SsspBellmanFord},
                                {"reach", &ReachFacts}};
  struct DataSpec {
    const char* label;
    graph::NodeId nodes;
  };
  // Sizes are deliberately graded; the last (largest) dataset is the one
  // the cache-on speedup claim in docs/performance.md is measured on.
  const DataSpec specs[] = {{"er-4k", 1 << 12},
                            {"er-16k", 1 << 14},
                            {"er-64k", 1 << 16}};

  std::vector<int> dops = {1, HardwareDop()};
  dops.erase(std::unique(dops.begin(), dops.end()), dops.end());

  for (const DataSpec& spec : specs) {
    const auto nodes =
        static_cast<graph::NodeId>(static_cast<double>(spec.nodes) * scale);
    graph::Graph g =
        graph::ErdosRenyi(nodes, 8 * static_cast<size_t>(nodes), /*seed=*/7);
    std::printf("\ndataset %-8s |V|=%lld |E|=%zu\n", spec.label,
                static_cast<long long>(nodes), g.num_edges());
    std::printf("%-6s %-10s %-6s %4s %12s %10s %10s %10s %7s %7s\n",
                "algo", "cache", "facts", "dop", "wall_ms", "hits",
                "misses", "setup_ms", "dedups", "pruned");

    for (const Workload& w : workloads) {
      ra::Table baseline;
      for (int cache : {0, 1}) {
        for (int dop : dops) {
          for (int facts : {0, 1}) {
            auto catalog = CatalogFor(g);
            algos::AlgoOptions opt;
            opt.fault_spec = "none";
            opt.plan_cache = cache;
            opt.plan_facts = facts;
            opt.degree_of_parallelism = dop;
            size_t rows = 0;
            core::ExecCounters counters;
            double best = 1e300;
            for (int rep = 0; rep < reps; ++rep) {
              auto fresh = CatalogFor(g);
              WallTimer timer;
              auto result = w.run(fresh, opt);
              GPR_CHECK_OK(result.status());
              best = std::min(best, timer.ElapsedMillis());
              rows = result->table.NumRows();
              counters = result->counters;
              if (cache == 0 && dop == 1 && facts == 0) {
                baseline = result->table;
              } else {
                ExpectIdentical(baseline, result->table, w.name);
              }
            }
            BenchRecord rec{w.name,
                            std::string(cache != 0 ? "cache-on" : "cache-off") +
                                (facts != 0 ? "+facts-on" : "+facts-off"),
                            spec.label,
                            dop,
                            best,
                            rows};
            rec.cache_hits = counters.cache_hits;
            rec.cache_misses = counters.cache_misses;
            rec.setup_ms =
                static_cast<double>(counters.hoist_setup_us) / 1000.0;
            rec.facts_dead_selects = counters.facts_dead_selects;
            rec.facts_dedup_skips = counters.facts_dedup_skips;
            rec.facts_pruned_columns = counters.facts_pruned_columns;
            rec.facts_setup_ms =
                static_cast<double>(counters.facts_setup_us) / 1000.0;
            rec.csr_builds = counters.csr_builds;
            rec.kernel_hits = counters.kernel_hits;
            rec.kernel_fallbacks = counters.kernel_fallbacks;
            writer.Add(rec);
            std::printf(
                "%-6s %-10s %-6s %4d %12.1f %10zu %10zu %10.1f %7zu %7zu\n",
                w.name, cache != 0 ? "on" : "off",
                facts != 0 ? "on" : "off", dop, best, counters.cache_hits,
                counters.cache_misses, rec.setup_ms,
                counters.facts_dedup_skips, counters.facts_pruned_columns);
            std::fflush(stdout);
          }
        }
      }
    }

    // CSR-kernel legs: the MV-join algorithms (WCC, SSSP, PR) at DOP 1,
    // cache on, facts on, with the CSR SpMV kernel off vs on
    // (docs/performance.md). Results are verified row-identical against
    // the leg's own kernels-off run; the kernel counters land in the JSON
    // so CI can watch hit/fallback drift.
    std::printf("%-6s %-12s %4s %12s %8s %8s %10s\n", "algo", "kernels",
                "dop", "wall_ms", "builds", "hits", "fallbacks");
    const Workload kernel_workloads[] = {{"wcc", &algos::Wcc},
                                         {"sssp", &algos::SsspBellmanFord},
                                         {"pr", &algos::PageRank}};
    for (const Workload& w : kernel_workloads) {
      ra::Table kernel_baseline;
      for (int kernels : {0, 1}) {
        algos::AlgoOptions opt;
        opt.fault_spec = "none";
        opt.plan_cache = 1;
        opt.plan_facts = 1;
        opt.degree_of_parallelism = 1;
        opt.csr_kernels = kernels;
        opt.profile.csr_kernels = kernels != 0;
        size_t rows = 0;
        core::ExecCounters counters;
        double best = 1e300;
        for (int rep = 0; rep < reps; ++rep) {
          auto fresh = CatalogFor(g);
          WallTimer timer;
          auto result = w.run(fresh, opt);
          GPR_CHECK_OK(result.status());
          best = std::min(best, timer.ElapsedMillis());
          rows = result->table.NumRows();
          counters = result->counters;
          if (kernels == 0) {
            kernel_baseline = result->table;
          } else {
            ExpectIdentical(kernel_baseline, result->table, w.name);
          }
        }
        BenchRecord rec{w.name,
                        kernels == 0 ? "kernels-off" : "kernels-on",
                        spec.label,
                        1,
                        best,
                        rows};
        rec.csr_builds = counters.csr_builds;
        rec.kernel_hits = counters.kernel_hits;
        rec.kernel_fallbacks = counters.kernel_fallbacks;
        writer.Add(rec);
        std::printf("%-6s %-12s %4d %12.1f %8zu %8zu %10zu\n", w.name,
                    kernels == 0 ? "off" : "on", 1, best,
                    counters.csr_builds, counters.kernel_hits,
                    counters.kernel_fallbacks);
        std::fflush(stdout);
      }
    }

    // Vectorize legs: the same MV-join workloads at DOP 1, cache on,
    // facts on, over the kernels × vectorize grid — off/off is the row
    // oracle, on/on shows the two fast paths composing (the
    // docs/performance.md vectorization claim is the er-64k rows). Every
    // leg is verified row-identical against the grid's own off/off run;
    // batch/fallback counters land in the JSON.
    std::printf("%-6s %-22s %4s %12s %8s %10s\n", "algo", "vectorize", "dop",
                "wall_ms", "batches", "fallbacks");
    const Workload vec_workloads[] = {{"wcc", &algos::Wcc},
                                      {"sssp", &algos::SsspBellmanFord},
                                      {"pr", &algos::PageRank}};
    for (const Workload& w : vec_workloads) {
      ra::Table vec_baseline;
      for (int kernels : {0, 1}) {
        for (int vec : {0, 1}) {
          algos::AlgoOptions opt;
          opt.fault_spec = "none";
          opt.plan_cache = 1;
          opt.plan_facts = 1;
          opt.degree_of_parallelism = 1;
          opt.csr_kernels = kernels;
          opt.profile.csr_kernels = kernels != 0;
          opt.vectorized = vec;
          opt.profile.vectorized = vec != 0;
          size_t rows = 0;
          core::ExecCounters counters;
          double best = 1e300;
          for (int rep = 0; rep < reps; ++rep) {
            auto fresh = CatalogFor(g);
            WallTimer timer;
            auto result = w.run(fresh, opt);
            GPR_CHECK_OK(result.status());
            best = std::min(best, timer.ElapsedMillis());
            rows = result->table.NumRows();
            counters = result->counters;
            if (kernels == 0 && vec == 0) {
              vec_baseline = result->table;
            } else {
              ExpectIdentical(vec_baseline, result->table, w.name);
            }
          }
          const std::string variant =
              std::string(vec != 0 ? "vectorize-on" : "vectorize-off") +
              (kernels != 0 ? "+kernels-on" : "+kernels-off");
          BenchRecord rec{w.name, variant, spec.label, 1, best, rows};
          rec.csr_builds = counters.csr_builds;
          rec.kernel_hits = counters.kernel_hits;
          rec.kernel_fallbacks = counters.kernel_fallbacks;
          rec.vector_batches = counters.vector_batches;
          rec.vector_fallbacks = counters.vector_fallbacks;
          writer.Add(rec);
          std::printf("%-6s %-22s %4d %12.1f %8zu %10zu\n", w.name,
                      variant.c_str(), 1, best, counters.vector_batches,
                      counters.vector_fallbacks);
          std::fflush(stdout);
        }
      }
    }

    // Checkpoint-overhead legs: cache on, facts on, DOP 1, snapshots off
    // vs every 8 iterations into a private store. Results are verified
    // identical against the leg's own checkpoint-off run.
    std::printf("%-6s %-14s %4s %12s %10s\n", "algo", "checkpoint", "dop",
                "wall_ms", "rows");
    const Workload ckpt_workloads[] = {{"wcc", &algos::Wcc},
                                       {"sssp", &algos::SsspBellmanFord}};
    for (const Workload& w : ckpt_workloads) {
      ra::Table ckpt_baseline;
      for (int every : {0, 8}) {
        core::CheckpointStore store;
        algos::AlgoOptions opt;
        opt.fault_spec = "none";
        opt.plan_cache = 1;
        opt.plan_facts = 1;
        opt.degree_of_parallelism = 1;
        opt.checkpoint_every = every;
        opt.checkpoint_store = &store;
        size_t rows = 0;
        double best = 1e300;
        for (int rep = 0; rep < reps; ++rep) {
          auto fresh = CatalogFor(g);
          WallTimer timer;
          auto result = w.run(fresh, opt);
          GPR_CHECK_OK(result.status());
          best = std::min(best, timer.ElapsedMillis());
          rows = result->table.NumRows();
          if (every == 0) {
            ckpt_baseline = result->table;
          } else {
            ExpectIdentical(ckpt_baseline, result->table, w.name);
          }
        }
        BenchRecord rec{w.name,
                        every == 0 ? "ckpt-off" : "ckpt-every-8",
                        spec.label,
                        1,
                        best,
                        rows};
        writer.Add(rec);
        std::printf("%-6s %-14s %4d %12.1f %10zu\n", w.name,
                    every == 0 ? "off" : "every-8", 1, best, rows);
        std::fflush(stdout);
      }
    }
  }

  if (json) {
    const char* path = "BENCH_fixpoint.json";
    if (!writer.WriteFile(path)) {
      std::fprintf(stderr, "failed to write %s\n", path);
      return 1;
    }
    std::printf("wrote %s\n", path);
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::printf("Fixpoint plan-state cache / plan-facts benchmark "
              "(cache off/on x facts off/on x DOP 1/max; GPR_SCALE=%.2f)\n",
              EnvScale(1.0));
  return Run(HasFlag(argc, argv, "--json"));
}
