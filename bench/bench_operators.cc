// Micro-benchmarks (google-benchmark) of the core relational operators:
// the three join algorithms, MM-/MV-join across semirings, the anti-join
// implementations, the union-by-update implementations — and the
// execution-governor overhead on a full fixpoint workload, at DOP=1 and
// DOP=max so governor accounting contention is visible.
//
// These isolate the operator-level costs the experiment harnesses
// aggregate; useful for regression-tracking the engine itself.
//
// `--json` skips google-benchmark and runs a fixed suite over the hot
// operators at DOP 1 / 4 / hardware-max — plus vectorize-off/on legs at
// DOP 1 and the plan-facts showcase fixpoint at facts off/on — writing
// BENCH_operators.json (schema: bench_common.h BenchRecord) for CI
// artifact upload.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <thread>

#include "algos/algos.h"
#include "bench_common.h"
#include "core/aggregate_join.h"
#include "core/anti_join.h"
#include "core/union_by_update.h"
#include "graph/generators.h"
#include "graph/relations.h"
#include "ra/operators.h"
#include "ra/vectorized.h"
#include "util/rng.h"

namespace {

using namespace gpr;  // NOLINT
namespace ops = ra::ops;
using ra::Schema;
using ra::Table;
using ra::ValueType;

Table RandomMatrix(const std::string& name, int64_t n, size_t entries,
                   uint64_t seed) {
  Xoshiro256 rng(seed);
  Table t(name, Schema{{"F", ValueType::kInt64},
                       {"T", ValueType::kInt64},
                       {"ew", ValueType::kDouble}});
  t.Reserve(entries);
  for (size_t i = 0; i < entries; ++i) {
    t.AddRow({static_cast<int64_t>(rng.NextBounded(n)),
              static_cast<int64_t>(rng.NextBounded(n)),
              rng.NextDouble() * 3.0});
  }
  return t;
}

Table RandomVector(const std::string& name, int64_t n, uint64_t seed) {
  Xoshiro256 rng(seed);
  Table t(name,
          Schema{{"ID", ValueType::kInt64}, {"vw", ValueType::kDouble}});
  t.Reserve(n);
  for (int64_t i = 0; i < n; ++i) t.AddRow({i, rng.NextDouble()});
  return t;
}

void BM_Join(benchmark::State& state, ops::JoinAlgorithm algo) {
  const auto rows = static_cast<size_t>(state.range(0));
  Table l = RandomMatrix("L", rows / 4, rows, 1);
  Table r = RandomMatrix("R", rows / 4, rows, 2);
  for (auto _ : state) {
    auto out = ops::Join(l, r, {{"T"}, {"F"}}, algo);
    GPR_CHECK_OK(out.status());
    benchmark::DoNotOptimize(out->NumRows());
  }
  state.SetItemsProcessed(state.iterations() * rows);
}
BENCHMARK_CAPTURE(BM_Join, hash, ops::JoinAlgorithm::kHash)
    ->Arg(1 << 12)->Arg(1 << 14);
BENCHMARK_CAPTURE(BM_Join, sort_merge, ops::JoinAlgorithm::kSortMerge)
    ->Arg(1 << 12)->Arg(1 << 14);

void BM_MMJoin(benchmark::State& state, const core::Semiring& sr) {
  const auto rows = static_cast<size_t>(state.range(0));
  Table a = RandomMatrix("A", rows / 4, rows, 3);
  Table b = RandomMatrix("B", rows / 4, rows, 4);
  for (auto _ : state) {
    auto out = core::MMJoin(a, b, sr);
    GPR_CHECK_OK(out.status());
    benchmark::DoNotOptimize(out->NumRows());
  }
  state.SetItemsProcessed(state.iterations() * rows);
}
BENCHMARK_CAPTURE(BM_MMJoin, plus_times, core::PlusTimes())->Arg(1 << 12);
BENCHMARK_CAPTURE(BM_MMJoin, min_plus, core::MinPlus())->Arg(1 << 12);

void BM_MVJoin(benchmark::State& state) {
  const auto rows = static_cast<size_t>(state.range(0));
  Table m = RandomMatrix("M", rows / 8, rows, 5);
  Table v = RandomVector("V", rows / 8, 6);
  for (auto _ : state) {
    auto out = core::MVJoin(m, v, core::PlusTimes(),
                            core::MVOrientation::kTransposed);
    GPR_CHECK_OK(out.status());
    benchmark::DoNotOptimize(out->NumRows());
  }
  state.SetItemsProcessed(state.iterations() * rows);
}
BENCHMARK(BM_MVJoin)->Arg(1 << 12)->Arg(1 << 15);

void BM_AntiJoin(benchmark::State& state, core::AntiJoinImpl impl) {
  const auto rows = static_cast<size_t>(state.range(0));
  Table l = RandomMatrix("L", rows / 4, rows, 7);
  Table r = RandomMatrix("R", rows / 4, rows / 2, 8);
  // Exercise the NAAJ path (PostgreSQL-like does not rewrite not-in).
  const auto profile = core::PostgresLike();
  for (auto _ : state) {
    auto out = core::AntiJoin(l, r, {{"F"}, {"F"}}, impl, profile);
    GPR_CHECK_OK(out.status());
    benchmark::DoNotOptimize(out->NumRows());
  }
  state.SetItemsProcessed(state.iterations() * rows);
}
BENCHMARK_CAPTURE(BM_AntiJoin, not_exists, core::AntiJoinImpl::kNotExists)
    ->Arg(1 << 14);
BENCHMARK_CAPTURE(BM_AntiJoin, left_outer, core::AntiJoinImpl::kLeftOuterJoin)
    ->Arg(1 << 14);
BENCHMARK_CAPTURE(BM_AntiJoin, not_in, core::AntiJoinImpl::kNotIn)
    ->Arg(1 << 14);

void BM_UnionByUpdate(benchmark::State& state, core::UnionByUpdateImpl impl) {
  const auto rows = static_cast<int64_t>(state.range(0));
  Table r = RandomVector("R", rows, 9);
  Table s = RandomVector("S", rows, 10);  // covering update
  const auto profile = impl == core::UnionByUpdateImpl::kUpdateFrom
                           ? core::PostgresLike()
                           : core::OracleLike();
  for (auto _ : state) {
    auto out = core::UnionByUpdate(r, s, {"ID"}, impl, profile);
    GPR_CHECK_OK(out.status());
    benchmark::DoNotOptimize(out->NumRows());
  }
  state.SetItemsProcessed(state.iterations() * rows);
}
BENCHMARK_CAPTURE(BM_UnionByUpdate, merge, core::UnionByUpdateImpl::kMerge)
    ->Arg(1 << 14);
BENCHMARK_CAPTURE(BM_UnionByUpdate, full_outer,
                  core::UnionByUpdateImpl::kFullOuterJoin)
    ->Arg(1 << 14);
BENCHMARK_CAPTURE(BM_UnionByUpdate, update_from,
                  core::UnionByUpdateImpl::kUpdateFrom)
    ->Arg(1 << 14);
BENCHMARK_CAPTURE(BM_UnionByUpdate, drop_alter,
                  core::UnionByUpdateImpl::kDropAlter)
    ->Arg(1 << 14);

int HardwareDop() {
  return std::max(1u, std::thread::hardware_concurrency());
}

// Governor overhead on the Fig 7 CONN workload (WCC over a random graph):
// the same fixpoint run ungoverned (null ExecContext — the fast path) and
// governed with generous limits that never trip, at both DOP=1 and
// DOP=hardware-max (dop=0 below) so the atomic-charging contention cost of
// the governor under parallel execution is visible. The acceptance bar for
// the governance layer is < 2% overhead between the pairs.
void BM_ConnFixpoint(benchmark::State& state, bool governed, int dop) {
  const auto nodes = static_cast<graph::NodeId>(state.range(0));
  graph::Graph g = graph::ErdosRenyi(nodes, 4 * nodes, /*seed=*/13);
  ra::Catalog catalog;
  GPR_CHECK_OK(graph::RegisterGraph(g, &catalog));
  algos::AlgoOptions opt;
  opt.fault_spec = "none";
  opt.degree_of_parallelism = dop == 0 ? HardwareDop() : dop;
  if (governed) {
    opt.governor.deadline_ms = 3600 * 1000.0;
    opt.governor.row_budget = 1ull << 40;
    opt.governor.byte_budget = 1ull << 50;
    opt.governor.iteration_cap = 1 << 20;
  }
  size_t rows = 0;
  for (auto _ : state) {
    auto result = algos::Wcc(catalog, opt);
    GPR_CHECK_OK(result.status());
    rows = result->table.NumRows();
    benchmark::DoNotOptimize(rows);
  }
  state.SetItemsProcessed(state.iterations() * rows);
}
BENCHMARK_CAPTURE(BM_ConnFixpoint, ungoverned_dop1, false, 1)
    ->Arg(1 << 10)->Arg(1 << 12)->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_ConnFixpoint, governed_dop1, true, 1)
    ->Arg(1 << 10)->Arg(1 << 12)->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_ConnFixpoint, ungoverned_dopmax, false, 0)
    ->Arg(1 << 10)->Arg(1 << 12)->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_ConnFixpoint, governed_dopmax, true, 0)
    ->Arg(1 << 10)->Arg(1 << 12)->Unit(benchmark::kMillisecond);

void BM_GroupBy(benchmark::State& state) {
  const auto rows = static_cast<size_t>(state.range(0));
  Table t = RandomMatrix("T", rows / 16, rows, 11);
  for (auto _ : state) {
    auto out = ops::GroupBy(t, {"T"}, {ra::SumOf(ra::Col("ew"), "s")});
    GPR_CHECK_OK(out.status());
    benchmark::DoNotOptimize(out->NumRows());
  }
  state.SetItemsProcessed(state.iterations() * rows);
}
BENCHMARK(BM_GroupBy)->Arg(1 << 14);

// ---------------------------------------------------------------------------
// --json mode: a fixed, fast suite over the morsel-parallelized operators.

/// Runs `fn` (which returns the output row count) `reps` times; stores the
/// row count in *rows and returns the best wall time in milliseconds.
template <typename Fn>
double BestOfMs(int reps, size_t* rows, const Fn& fn) {
  double best = 1e300;
  for (int i = 0; i < reps; ++i) {
    WallTimer t;
    *rows = fn();
    best = std::min(best, t.ElapsedMillis());
  }
  return best;
}

int RunJsonSuite() {
  bench::BenchJsonWriter writer;
  std::vector<int> dops = {1, 4, HardwareDop()};
  std::sort(dops.begin(), dops.end());
  dops.erase(std::unique(dops.begin(), dops.end()), dops.end());

  struct DataSpec {
    const char* label;
    size_t rows;
  };
  const DataSpec specs[] = {{"rand-4k", 1 << 12}, {"rand-32k", 1 << 15}};

  for (const DataSpec& spec : specs) {
    Table l = RandomMatrix("L", static_cast<int64_t>(spec.rows / 4),
                           spec.rows, 21);
    Table r = RandomMatrix("R", static_cast<int64_t>(spec.rows / 4),
                           spec.rows, 22);
    Table vr = RandomVector("VR", static_cast<int64_t>(spec.rows), 23);
    Table vs = RandomVector("VS", static_cast<int64_t>(spec.rows), 24);
    for (int dop : dops) {
      ra::EvalContext ctx;
      ctx.dop = dop;
      auto add = [&](const char* op, const char* profile, double ms,
                     size_t rows) {
        writer.Add({op, profile, spec.label, dop, ms, rows});
      };
      size_t rows = 0;
      double ms = BestOfMs(3, &rows, [&] {
        auto out = ops::Select(l, ra::Gt(ra::Col("ew"), ra::Lit(1.0)), &ctx);
        GPR_CHECK_OK(out.status());
        return out->NumRows();
      });
      add("select", "-", ms, rows);

      ms = BestOfMs(3, &rows, [&] {
        auto out = ops::Project(
            l,
            {ops::As(ra::Add(ra::Col("F"), ra::Col("T")), "k"),
             ops::As(ra::Mul(ra::Col("ew"), ra::Lit(2.0)), "w")},
            &ctx);
        GPR_CHECK_OK(out.status());
        return out->NumRows();
      });
      add("project", "-", ms, rows);

      ms = BestOfMs(3, &rows, [&] {
        auto out = ops::Join(l, r, {{"T"}, {"F"}},
                             ops::JoinAlgorithm::kHash, nullptr, &ctx);
        GPR_CHECK_OK(out.status());
        return out->NumRows();
      });
      add("hash_join", "-", ms, rows);

      ms = BestOfMs(3, &rows, [&] {
        auto out =
            ops::GroupBy(l, {"T"}, {ra::SumOf(ra::Col("ew"), "s")}, &ctx);
        GPR_CHECK_OK(out.status());
        return out->NumRows();
      });
      add("group_by", "-", ms, rows);

      core::EngineProfile profile = core::OracleLike();
      profile.degree_of_parallelism = dop;
      ms = BestOfMs(3, &rows, [&] {
        auto out = core::UnionByUpdate(vr, vs, {"ID"},
                                       core::UnionByUpdateImpl::kMerge,
                                       profile);
        GPR_CHECK_OK(out.status());
        return out->NumRows();
      });
      add("union_by_update", "oracle-like", ms, rows);
    }
  }

  // Vectorize-off/on legs at DOP 1 over the hot operators — the
  // docs/performance.md vectorization speedups. The on legs set
  // EvalContext::vectors so the vec::Try* batch fast paths engage; each
  // on-leg output is verified row-identical (order included) to its
  // off-leg twin before the timing is recorded, and the batch/fallback
  // counters land in the JSON.
  {
    const size_t n = 1 << 15;
    Table l = RandomMatrix("L", static_cast<int64_t>(n / 4), n, 21);
    Table r = RandomMatrix("R", static_cast<int64_t>(n / 4), n, 22);
    Table vr = RandomVector("VR", static_cast<int64_t>(n), 23);
    Table vs = RandomVector("VS", static_cast<int64_t>(n), 24);

    auto expect_identical = [](const Table& base, const Table& got,
                               const char* op) {
      GPR_CHECK_EQ(base.NumRows(), got.NumRows()) << op;
      for (size_t i = 0; i < base.NumRows(); ++i) {
        GPR_CHECK(base.row(i) == got.row(i))
            << op << ": vectorize-on row " << i
            << " differs from the vectorize-off baseline";
      }
    };
    auto run_pair = [&](const char* op, auto&& fn) {
      Table base;
      for (int vec : {0, 1}) {
        ra::EvalContext ctx;
        ctx.dop = 1;
        ra::VectorCounters vc;
        if (vec != 0) ctx.vectors = &vc;
        {
          // Untimed differential run: the on leg must reproduce the off
          // leg's rows exactly before its timing counts.
          auto out = fn(&ctx);
          GPR_CHECK_OK(out.status());
          if (vec == 0) {
            base = std::move(*out);
          } else {
            expect_identical(base, *out, op);
          }
        }
        size_t rows = 0;
        const double ms = BestOfMs(3, &rows, [&] {
          auto out = fn(&ctx);
          GPR_CHECK_OK(out.status());
          return out->NumRows();
        });
        bench::BenchRecord rec{op, vec != 0 ? "vectorize-on" : "vectorize-off",
                               "rand-32k", 1, ms, rows};
        rec.vector_batches = vc.vector_batches;
        rec.vector_fallbacks = vc.vector_fallbacks;
        writer.Add(rec);
      }
    };

    run_pair("select", [&](ra::EvalContext* ctx) {
      return ops::Select(l, ra::Gt(ra::Col("ew"), ra::Lit(1.0)), ctx);
    });
    run_pair("project", [&](ra::EvalContext* ctx) {
      return ops::Project(
          l,
          {ops::As(ra::Add(ra::Col("F"), ra::Col("T")), "k"),
           ops::As(ra::Mul(ra::Col("ew"), ra::Lit(2.0)), "w")},
          ctx);
    });
    run_pair("hash_join", [&](ra::EvalContext* ctx) {
      return ops::Join(l, r, {{"T"}, {"F"}}, ops::JoinAlgorithm::kHash,
                       nullptr, ctx);
    });
    run_pair("group_by", [&](ra::EvalContext* ctx) {
      return ops::GroupBy(l, {"T"}, {ra::SumOf(ra::Col("ew"), "s")}, ctx);
    });
    const core::EngineProfile ubu_profile = core::OracleLike();
    run_pair("union_by_update", [&](ra::EvalContext* ctx) {
      return core::UnionByUpdate(vr, vs, {"ID"},
                                 core::UnionByUpdateImpl::kFullOuterJoin,
                                 ubu_profile, nullptr, ctx);
    });
  }

  // Plan-facts wins on the showcase reachability fixpoint (bench_common.h
  // FactsShowcaseQuery): facts off vs. on at DOP=1 and DOP=max. The
  // facts-on legs skip the delta's dedup (group-key-proven duplicate-free)
  // and prune the dead ew / vw columns out of the hoisted invariant join —
  // the counters land in the JSON next to the wall-time delta.
  {
    const graph::NodeId nodes = 1 << 12;
    graph::Graph g = graph::ErdosRenyi(nodes, 8 * nodes, /*seed=*/29);
    ra::Catalog catalog;
    GPR_CHECK_OK(graph::RegisterGraph(g, &catalog));
    core::WithPlusQuery q = bench::FactsShowcaseQuery();
    for (int dop : {1, HardwareDop()}) {
      for (int facts : {0, 1}) {
        core::EngineProfile profile = core::OracleLike();
        profile.degree_of_parallelism = dop;
        profile.plan_facts = facts != 0;
        size_t rows = 0;
        core::ExecCounters counters;
        const double ms = BestOfMs(3, &rows, [&] {
          auto result = core::ExecuteWithPlus(q, catalog, profile);
          GPR_CHECK_OK(result.status());
          counters = result->counters;
          return result->table.NumRows();
        });
        bench::BenchRecord rec{"reach_fixpoint",
                               facts != 0 ? "facts-on" : "facts-off",
                               "er-4k", dop, ms, rows};
        rec.cache_hits = counters.cache_hits;
        rec.cache_misses = counters.cache_misses;
        rec.setup_ms =
            static_cast<double>(counters.hoist_setup_us) / 1000.0;
        rec.facts_dead_selects = counters.facts_dead_selects;
        rec.facts_dedup_skips = counters.facts_dedup_skips;
        rec.facts_pruned_columns = counters.facts_pruned_columns;
        rec.facts_setup_ms =
            static_cast<double>(counters.facts_setup_us) / 1000.0;
        writer.Add(rec);
      }
    }
  }

  // Governed-vs-ungoverned WCC fixpoint at DOP=1 and DOP=max: the governor
  // overhead numbers the docs quote, in machine-readable form.
  {
    const graph::NodeId nodes = 1 << 10;
    graph::Graph g = graph::ErdosRenyi(nodes, 4 * nodes, /*seed=*/13);
    ra::Catalog catalog;
    GPR_CHECK_OK(graph::RegisterGraph(g, &catalog));
    for (int dop : {1, HardwareDop()}) {
      for (bool governed : {false, true}) {
        for (int cache : {0, 1}) {
          algos::AlgoOptions opt;
          opt.fault_spec = "none";
          opt.degree_of_parallelism = dop;
          opt.plan_cache = cache;
          if (governed) {
            opt.governor.deadline_ms = 3600 * 1000.0;
            opt.governor.row_budget = 1ull << 40;
            opt.governor.byte_budget = 1ull << 50;
            opt.governor.iteration_cap = 1 << 20;
          }
          size_t rows = 0;
          core::ExecCounters counters;
          const double ms = BestOfMs(3, &rows, [&] {
            auto result = algos::Wcc(catalog, opt);
            GPR_CHECK_OK(result.status());
            counters = result->counters;
            return result->table.NumRows();
          });
          bench::BenchRecord rec{governed ? "wcc_fixpoint_governed"
                                          : "wcc_fixpoint_ungoverned",
                                 cache != 0 ? "cache-on" : "cache-off",
                                 "er-1k", dop, ms, rows};
          rec.cache_hits = counters.cache_hits;
          rec.cache_misses = counters.cache_misses;
          rec.setup_ms = static_cast<double>(counters.hoist_setup_us) / 1000.0;
          writer.Add(rec);
        }
      }
    }
  }

  const char* path = "BENCH_operators.json";
  if (!writer.WriteFile(path)) {
    std::fprintf(stderr, "failed to write %s\n", path);
    return 1;
  }
  std::printf("%s", writer.ToJson().c_str());
  std::printf("wrote %s\n", path);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (gpr::bench::HasFlag(argc, argv, "--json")) return RunJsonSuite();
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
