// Micro-benchmarks (google-benchmark) of the core relational operators:
// the three join algorithms, MM-/MV-join across semirings, the anti-join
// implementations, the union-by-update implementations — and the
// execution-governor overhead on a full fixpoint workload.
//
// These isolate the operator-level costs the experiment harnesses
// aggregate; useful for regression-tracking the engine itself.
#include <benchmark/benchmark.h>

#include "algos/algos.h"
#include "core/aggregate_join.h"
#include "core/anti_join.h"
#include "core/union_by_update.h"
#include "graph/generators.h"
#include "graph/relations.h"
#include "ra/operators.h"
#include "util/rng.h"

namespace {

using namespace gpr;  // NOLINT
namespace ops = ra::ops;
using ra::Schema;
using ra::Table;
using ra::ValueType;

Table RandomMatrix(const std::string& name, int64_t n, size_t entries,
                   uint64_t seed) {
  Xoshiro256 rng(seed);
  Table t(name, Schema{{"F", ValueType::kInt64},
                       {"T", ValueType::kInt64},
                       {"ew", ValueType::kDouble}});
  t.Reserve(entries);
  for (size_t i = 0; i < entries; ++i) {
    t.AddRow({static_cast<int64_t>(rng.NextBounded(n)),
              static_cast<int64_t>(rng.NextBounded(n)),
              rng.NextDouble() * 3.0});
  }
  return t;
}

Table RandomVector(const std::string& name, int64_t n, uint64_t seed) {
  Xoshiro256 rng(seed);
  Table t(name,
          Schema{{"ID", ValueType::kInt64}, {"vw", ValueType::kDouble}});
  t.Reserve(n);
  for (int64_t i = 0; i < n; ++i) t.AddRow({i, rng.NextDouble()});
  return t;
}

void BM_Join(benchmark::State& state, ops::JoinAlgorithm algo) {
  const auto rows = static_cast<size_t>(state.range(0));
  Table l = RandomMatrix("L", rows / 4, rows, 1);
  Table r = RandomMatrix("R", rows / 4, rows, 2);
  for (auto _ : state) {
    auto out = ops::Join(l, r, {{"T"}, {"F"}}, algo);
    GPR_CHECK_OK(out.status());
    benchmark::DoNotOptimize(out->NumRows());
  }
  state.SetItemsProcessed(state.iterations() * rows);
}
BENCHMARK_CAPTURE(BM_Join, hash, ops::JoinAlgorithm::kHash)
    ->Arg(1 << 12)->Arg(1 << 14);
BENCHMARK_CAPTURE(BM_Join, sort_merge, ops::JoinAlgorithm::kSortMerge)
    ->Arg(1 << 12)->Arg(1 << 14);

void BM_MMJoin(benchmark::State& state, const core::Semiring& sr) {
  const auto rows = static_cast<size_t>(state.range(0));
  Table a = RandomMatrix("A", rows / 4, rows, 3);
  Table b = RandomMatrix("B", rows / 4, rows, 4);
  for (auto _ : state) {
    auto out = core::MMJoin(a, b, sr);
    GPR_CHECK_OK(out.status());
    benchmark::DoNotOptimize(out->NumRows());
  }
  state.SetItemsProcessed(state.iterations() * rows);
}
BENCHMARK_CAPTURE(BM_MMJoin, plus_times, core::PlusTimes())->Arg(1 << 12);
BENCHMARK_CAPTURE(BM_MMJoin, min_plus, core::MinPlus())->Arg(1 << 12);

void BM_MVJoin(benchmark::State& state) {
  const auto rows = static_cast<size_t>(state.range(0));
  Table m = RandomMatrix("M", rows / 8, rows, 5);
  Table v = RandomVector("V", rows / 8, 6);
  for (auto _ : state) {
    auto out = core::MVJoin(m, v, core::PlusTimes(),
                            core::MVOrientation::kTransposed);
    GPR_CHECK_OK(out.status());
    benchmark::DoNotOptimize(out->NumRows());
  }
  state.SetItemsProcessed(state.iterations() * rows);
}
BENCHMARK(BM_MVJoin)->Arg(1 << 12)->Arg(1 << 15);

void BM_AntiJoin(benchmark::State& state, core::AntiJoinImpl impl) {
  const auto rows = static_cast<size_t>(state.range(0));
  Table l = RandomMatrix("L", rows / 4, rows, 7);
  Table r = RandomMatrix("R", rows / 4, rows / 2, 8);
  // Exercise the NAAJ path (PostgreSQL-like does not rewrite not-in).
  const auto profile = core::PostgresLike();
  for (auto _ : state) {
    auto out = core::AntiJoin(l, r, {{"F"}, {"F"}}, impl, profile);
    GPR_CHECK_OK(out.status());
    benchmark::DoNotOptimize(out->NumRows());
  }
  state.SetItemsProcessed(state.iterations() * rows);
}
BENCHMARK_CAPTURE(BM_AntiJoin, not_exists, core::AntiJoinImpl::kNotExists)
    ->Arg(1 << 14);
BENCHMARK_CAPTURE(BM_AntiJoin, left_outer, core::AntiJoinImpl::kLeftOuterJoin)
    ->Arg(1 << 14);
BENCHMARK_CAPTURE(BM_AntiJoin, not_in, core::AntiJoinImpl::kNotIn)
    ->Arg(1 << 14);

void BM_UnionByUpdate(benchmark::State& state, core::UnionByUpdateImpl impl) {
  const auto rows = static_cast<int64_t>(state.range(0));
  Table r = RandomVector("R", rows, 9);
  Table s = RandomVector("S", rows, 10);  // covering update
  const auto profile = impl == core::UnionByUpdateImpl::kUpdateFrom
                           ? core::PostgresLike()
                           : core::OracleLike();
  for (auto _ : state) {
    auto out = core::UnionByUpdate(r, s, {"ID"}, impl, profile);
    GPR_CHECK_OK(out.status());
    benchmark::DoNotOptimize(out->NumRows());
  }
  state.SetItemsProcessed(state.iterations() * rows);
}
BENCHMARK_CAPTURE(BM_UnionByUpdate, merge, core::UnionByUpdateImpl::kMerge)
    ->Arg(1 << 14);
BENCHMARK_CAPTURE(BM_UnionByUpdate, full_outer,
                  core::UnionByUpdateImpl::kFullOuterJoin)
    ->Arg(1 << 14);
BENCHMARK_CAPTURE(BM_UnionByUpdate, update_from,
                  core::UnionByUpdateImpl::kUpdateFrom)
    ->Arg(1 << 14);
BENCHMARK_CAPTURE(BM_UnionByUpdate, drop_alter,
                  core::UnionByUpdateImpl::kDropAlter)
    ->Arg(1 << 14);

// Governor overhead on the Fig 7 CONN workload (WCC over a random graph):
// the same fixpoint run ungoverned (null ExecContext — the fast path) and
// governed with generous limits that never trip. The acceptance bar for
// the governance layer is < 2% overhead between the two.
void BM_ConnFixpoint(benchmark::State& state, bool governed) {
  const auto nodes = static_cast<graph::NodeId>(state.range(0));
  graph::Graph g = graph::ErdosRenyi(nodes, 4 * nodes, /*seed=*/13);
  ra::Catalog catalog;
  GPR_CHECK_OK(graph::RegisterGraph(g, &catalog));
  algos::AlgoOptions opt;
  opt.fault_spec = "none";
  if (governed) {
    opt.governor.deadline_ms = 3600 * 1000.0;
    opt.governor.row_budget = 1ull << 40;
    opt.governor.byte_budget = 1ull << 50;
    opt.governor.iteration_cap = 1 << 20;
  }
  size_t rows = 0;
  for (auto _ : state) {
    auto result = algos::Wcc(catalog, opt);
    GPR_CHECK_OK(result.status());
    rows = result->table.NumRows();
    benchmark::DoNotOptimize(rows);
  }
  state.SetItemsProcessed(state.iterations() * rows);
}
BENCHMARK_CAPTURE(BM_ConnFixpoint, ungoverned, false)
    ->Arg(1 << 10)->Arg(1 << 12)->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_ConnFixpoint, governed, true)
    ->Arg(1 << 10)->Arg(1 << 12)->Unit(benchmark::kMillisecond);

void BM_GroupBy(benchmark::State& state) {
  const auto rows = static_cast<size_t>(state.range(0));
  Table t = RandomMatrix("T", rows / 16, rows, 11);
  for (auto _ : state) {
    auto out = ops::GroupBy(t, {"T"}, {ra::SumOf(ra::Col("ew"), "s")});
    GPR_CHECK_OK(out.status());
    benchmark::DoNotOptimize(out->NumRows());
  }
  state.SetItemsProcessed(state.iterations() * rows);
}
BENCHMARK(BM_GroupBy)->Arg(1 << 14);

}  // namespace

BENCHMARK_MAIN();
