// Tables 4 and 5 — the four union-by-update implementations, measured by
// running 15 iterations of PageRank on the Web Google and U.S. Patent
// Citation analogues under each engine profile.
//
// Paper shape to reproduce: full outer join ≈ drop/alter < merge; the
// update-from row exists only under PostgreSQL, merge only under
// Oracle/DB2; Oracle has the lowest constants (no insert logging).
#include "algos/algos.h"
#include "bench_common.h"
#include "core/union_by_update.h"

namespace {

using namespace gpr;          // NOLINT
using namespace gpr::bench;   // NOLINT

void RunTable(const char* title, const char* abbrev, double scale,
              int iters) {
  auto spec = graph::DatasetByAbbrev(abbrev);
  GPR_CHECK_OK(spec.status());
  graph::Graph g = graph::MakeDataset(*spec, scale);
  PrintHeader(title);
  PrintDatasetLine(*spec, g);
  std::printf("%-18s", "Time (ms)");
  for (const auto& profile : core::AllProfiles()) {
    std::printf(" %12s", profile.name.c_str());
  }
  std::printf("\n");

  for (auto impl : core::AllUnionByUpdateImpls()) {
    std::printf("%-18s", core::UnionByUpdateImplName(impl));
    for (const auto& profile : core::AllProfiles()) {
      const bool supported =
          (impl != core::UnionByUpdateImpl::kMerge || profile.supports_merge) &&
          (impl != core::UnionByUpdateImpl::kUpdateFrom ||
           profile.supports_update_from);
      if (!supported) {
        std::printf(" %12s", "-");
        continue;
      }
      auto catalog = CatalogFor(g);
      algos::AlgoOptions opt;
      opt.profile = profile;
      opt.ubu_impl = impl;
      opt.max_iterations = iters;
      WallTimer timer;
      auto result = algos::PageRank(catalog, opt);
      GPR_CHECK_OK(result.status());
      std::printf(" %12.0f", timer.ElapsedMillis());
      std::fflush(stdout);
    }
    std::printf("\n");
  }
}

}  // namespace

int main() {
  const double scale = EnvScale(0.3);
  const int iters = EnvIters(15);
  std::printf("union-by-update implementations (PageRank, %d iterations); "
              "GPR_SCALE=%.2f\n", iters, scale);
  RunTable("Table 4: union-by-update in Web Google", "WG", scale, iters);
  RunTable("Table 5: union-by-update in U.S. Patent Citation", "PC", scale,
           iters);
  return 0;
}
