// Tables 6 and 7 — the three anti-join implementations (`not exists`,
// `left outer join ... is null`, `not in`), measured by running TopoSort
// on the Web Google and U.S. Patent Citation analogues.
//
// Paper shape to reproduce: not exists ≈ left outer join ≤ not in, with
// the not-in gap largest under PostgreSQL (NAAJ bookkeeping) and absent
// under Oracle (internal rewrite to its anti-join).
#include "algos/algos.h"
#include "bench_common.h"
#include "core/anti_join.h"
#include "graph/generators.h"

namespace {

using namespace gpr;          // NOLINT
using namespace gpr::bench;   // NOLINT

void RunTable(const char* title, const char* abbrev, double scale) {
  auto spec = graph::DatasetByAbbrev(abbrev);
  GPR_CHECK_OK(spec.status());
  // DAG-ified analogue: TopoSort on the raw R-MAT graph ends after a few
  // levels (cycles dominate); reorienting along a random topological
  // order keeps the density while letting the peel run to completion, so
  // the anti-joins are exercised across many iterations.
  graph::Graph g =
      graph::DagifyByPermutation(graph::MakeDataset(*spec, scale), 99);
  PrintHeader(title);
  PrintDatasetLine(*spec, g);
  std::printf("%-18s", "Time (ms)");
  for (const auto& profile : core::AllProfiles()) {
    std::printf(" %12s", profile.name.c_str());
  }
  std::printf("\n");

  for (auto impl : core::AllAntiJoinImpls()) {
    std::printf("%-18s", core::AntiJoinImplName(impl));
    for (const auto& profile : core::AllProfiles()) {
      auto catalog = CatalogFor(g);
      algos::AlgoOptions opt;
      opt.profile = profile;
      opt.anti_impl = impl;
      WallTimer timer;
      auto result = algos::TopoSort(catalog, opt);
      GPR_CHECK_OK(result.status());
      std::printf(" %12.0f", timer.ElapsedMillis());
      std::fflush(stdout);
    }
    std::printf("\n");
  }
}

}  // namespace

int main() {
  const double scale = EnvScale(0.3);
  std::printf("anti-join implementations (TopoSort); GPR_SCALE=%.2f\n",
              scale);
  RunTable("Table 6: anti-join in Web Google", "WG", scale);
  RunTable("Table 7: anti-join in U.S. Patent Citation", "PC", scale);
  return 0;
}
