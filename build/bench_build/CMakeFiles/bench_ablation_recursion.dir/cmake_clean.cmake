file(REMOVE_RECURSE
  "../bench/bench_ablation_recursion"
  "../bench/bench_ablation_recursion.pdb"
  "CMakeFiles/bench_ablation_recursion.dir/bench_ablation_recursion.cc.o"
  "CMakeFiles/bench_ablation_recursion.dir/bench_ablation_recursion.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_recursion.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
