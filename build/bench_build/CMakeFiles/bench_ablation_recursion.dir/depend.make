# Empty dependencies file for bench_ablation_recursion.
# This may be replaced when dependencies are built.
