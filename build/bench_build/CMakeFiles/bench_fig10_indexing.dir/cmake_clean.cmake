file(REMOVE_RECURSE
  "../bench/bench_fig10_indexing"
  "../bench/bench_fig10_indexing.pdb"
  "CMakeFiles/bench_fig10_indexing.dir/bench_fig10_indexing.cc.o"
  "CMakeFiles/bench_fig10_indexing.dir/bench_fig10_indexing.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10_indexing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
