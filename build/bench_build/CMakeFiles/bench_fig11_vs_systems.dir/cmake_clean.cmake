file(REMOVE_RECURSE
  "../bench/bench_fig11_vs_systems"
  "../bench/bench_fig11_vs_systems.pdb"
  "CMakeFiles/bench_fig11_vs_systems.dir/bench_fig11_vs_systems.cc.o"
  "CMakeFiles/bench_fig11_vs_systems.dir/bench_fig11_vs_systems.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig11_vs_systems.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
