file(REMOVE_RECURSE
  "../bench/bench_fig12_with_vs_withplus"
  "../bench/bench_fig12_with_vs_withplus.pdb"
  "CMakeFiles/bench_fig12_with_vs_withplus.dir/bench_fig12_with_vs_withplus.cc.o"
  "CMakeFiles/bench_fig12_with_vs_withplus.dir/bench_fig12_with_vs_withplus.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig12_with_vs_withplus.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
