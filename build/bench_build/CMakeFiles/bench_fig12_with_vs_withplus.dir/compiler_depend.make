# Empty compiler generated dependencies file for bench_fig12_with_vs_withplus.
# This may be replaced when dependencies are built.
