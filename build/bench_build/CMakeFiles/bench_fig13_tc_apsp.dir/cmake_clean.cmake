file(REMOVE_RECURSE
  "../bench/bench_fig13_tc_apsp"
  "../bench/bench_fig13_tc_apsp.pdb"
  "CMakeFiles/bench_fig13_tc_apsp.dir/bench_fig13_tc_apsp.cc.o"
  "CMakeFiles/bench_fig13_tc_apsp.dir/bench_fig13_tc_apsp.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig13_tc_apsp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
