# Empty dependencies file for bench_fig13_tc_apsp.
# This may be replaced when dependencies are built.
