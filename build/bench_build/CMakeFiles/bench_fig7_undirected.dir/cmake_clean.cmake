file(REMOVE_RECURSE
  "../bench/bench_fig7_undirected"
  "../bench/bench_fig7_undirected.pdb"
  "CMakeFiles/bench_fig7_undirected.dir/bench_fig7_undirected.cc.o"
  "CMakeFiles/bench_fig7_undirected.dir/bench_fig7_undirected.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_undirected.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
