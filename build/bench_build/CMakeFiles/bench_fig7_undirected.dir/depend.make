# Empty dependencies file for bench_fig7_undirected.
# This may be replaced when dependencies are built.
