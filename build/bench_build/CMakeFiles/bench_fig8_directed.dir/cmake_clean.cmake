file(REMOVE_RECURSE
  "../bench/bench_fig8_directed"
  "../bench/bench_fig8_directed.pdb"
  "CMakeFiles/bench_fig8_directed.dir/bench_fig8_directed.cc.o"
  "CMakeFiles/bench_fig8_directed.dir/bench_fig8_directed.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8_directed.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
