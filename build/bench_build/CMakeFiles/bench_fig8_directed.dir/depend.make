# Empty dependencies file for bench_fig8_directed.
# This may be replaced when dependencies are built.
