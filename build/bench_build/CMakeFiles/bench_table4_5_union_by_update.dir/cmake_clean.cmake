file(REMOVE_RECURSE
  "../bench/bench_table4_5_union_by_update"
  "../bench/bench_table4_5_union_by_update.pdb"
  "CMakeFiles/bench_table4_5_union_by_update.dir/bench_table4_5_union_by_update.cc.o"
  "CMakeFiles/bench_table4_5_union_by_update.dir/bench_table4_5_union_by_update.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table4_5_union_by_update.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
