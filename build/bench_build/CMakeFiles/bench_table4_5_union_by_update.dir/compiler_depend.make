# Empty compiler generated dependencies file for bench_table4_5_union_by_update.
# This may be replaced when dependencies are built.
