file(REMOVE_RECURSE
  "../bench/bench_table6_7_anti_join"
  "../bench/bench_table6_7_anti_join.pdb"
  "CMakeFiles/bench_table6_7_anti_join.dir/bench_table6_7_anti_join.cc.o"
  "CMakeFiles/bench_table6_7_anti_join.dir/bench_table6_7_anti_join.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table6_7_anti_join.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
