# Empty dependencies file for bench_table6_7_anti_join.
# This may be replaced when dependencies are built.
