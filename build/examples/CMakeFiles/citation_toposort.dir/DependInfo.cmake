
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/citation_toposort.cpp" "examples/CMakeFiles/citation_toposort.dir/citation_toposort.cpp.o" "gcc" "examples/CMakeFiles/citation_toposort.dir/citation_toposort.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sql/CMakeFiles/gpr_sql.dir/DependInfo.cmake"
  "/root/repo/build/src/algos/CMakeFiles/gpr_algos.dir/DependInfo.cmake"
  "/root/repo/build/src/baseline/CMakeFiles/gpr_baseline.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/gpr_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/gpr_core.dir/DependInfo.cmake"
  "/root/repo/build/src/ra/CMakeFiles/gpr_ra.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/gpr_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
