file(REMOVE_RECURSE
  "CMakeFiles/citation_toposort.dir/citation_toposort.cpp.o"
  "CMakeFiles/citation_toposort.dir/citation_toposort.cpp.o.d"
  "citation_toposort"
  "citation_toposort.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/citation_toposort.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
