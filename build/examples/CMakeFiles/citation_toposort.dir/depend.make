# Empty dependencies file for citation_toposort.
# This may be replaced when dependencies are built.
