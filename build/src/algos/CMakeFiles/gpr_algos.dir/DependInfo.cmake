
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/algos/common.cc" "src/algos/CMakeFiles/gpr_algos.dir/common.cc.o" "gcc" "src/algos/CMakeFiles/gpr_algos.dir/common.cc.o.d"
  "/root/repo/src/algos/extensions.cc" "src/algos/CMakeFiles/gpr_algos.dir/extensions.cc.o" "gcc" "src/algos/CMakeFiles/gpr_algos.dir/extensions.cc.o.d"
  "/root/repo/src/algos/ranking.cc" "src/algos/CMakeFiles/gpr_algos.dir/ranking.cc.o" "gcc" "src/algos/CMakeFiles/gpr_algos.dir/ranking.cc.o.d"
  "/root/repo/src/algos/registry.cc" "src/algos/CMakeFiles/gpr_algos.dir/registry.cc.o" "gcc" "src/algos/CMakeFiles/gpr_algos.dir/registry.cc.o.d"
  "/root/repo/src/algos/selection.cc" "src/algos/CMakeFiles/gpr_algos.dir/selection.cc.o" "gcc" "src/algos/CMakeFiles/gpr_algos.dir/selection.cc.o.d"
  "/root/repo/src/algos/traversal.cc" "src/algos/CMakeFiles/gpr_algos.dir/traversal.cc.o" "gcc" "src/algos/CMakeFiles/gpr_algos.dir/traversal.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/gpr_core.dir/DependInfo.cmake"
  "/root/repo/build/src/ra/CMakeFiles/gpr_ra.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/gpr_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
