file(REMOVE_RECURSE
  "CMakeFiles/gpr_algos.dir/common.cc.o"
  "CMakeFiles/gpr_algos.dir/common.cc.o.d"
  "CMakeFiles/gpr_algos.dir/extensions.cc.o"
  "CMakeFiles/gpr_algos.dir/extensions.cc.o.d"
  "CMakeFiles/gpr_algos.dir/ranking.cc.o"
  "CMakeFiles/gpr_algos.dir/ranking.cc.o.d"
  "CMakeFiles/gpr_algos.dir/registry.cc.o"
  "CMakeFiles/gpr_algos.dir/registry.cc.o.d"
  "CMakeFiles/gpr_algos.dir/selection.cc.o"
  "CMakeFiles/gpr_algos.dir/selection.cc.o.d"
  "CMakeFiles/gpr_algos.dir/traversal.cc.o"
  "CMakeFiles/gpr_algos.dir/traversal.cc.o.d"
  "libgpr_algos.a"
  "libgpr_algos.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gpr_algos.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
