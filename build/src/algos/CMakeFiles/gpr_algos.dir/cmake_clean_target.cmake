file(REMOVE_RECURSE
  "libgpr_algos.a"
)
