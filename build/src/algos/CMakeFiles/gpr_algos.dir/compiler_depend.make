# Empty compiler generated dependencies file for gpr_algos.
# This may be replaced when dependencies are built.
