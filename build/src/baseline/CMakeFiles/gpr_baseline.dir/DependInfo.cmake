
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/baseline/bsp_engine.cc" "src/baseline/CMakeFiles/gpr_baseline.dir/bsp_engine.cc.o" "gcc" "src/baseline/CMakeFiles/gpr_baseline.dir/bsp_engine.cc.o.d"
  "/root/repo/src/baseline/native_algos.cc" "src/baseline/CMakeFiles/gpr_baseline.dir/native_algos.cc.o" "gcc" "src/baseline/CMakeFiles/gpr_baseline.dir/native_algos.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/graph/CMakeFiles/gpr_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/gpr_util.dir/DependInfo.cmake"
  "/root/repo/build/src/ra/CMakeFiles/gpr_ra.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
