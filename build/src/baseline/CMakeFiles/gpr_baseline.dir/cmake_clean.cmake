file(REMOVE_RECURSE
  "CMakeFiles/gpr_baseline.dir/bsp_engine.cc.o"
  "CMakeFiles/gpr_baseline.dir/bsp_engine.cc.o.d"
  "CMakeFiles/gpr_baseline.dir/native_algos.cc.o"
  "CMakeFiles/gpr_baseline.dir/native_algos.cc.o.d"
  "libgpr_baseline.a"
  "libgpr_baseline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gpr_baseline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
