file(REMOVE_RECURSE
  "libgpr_baseline.a"
)
