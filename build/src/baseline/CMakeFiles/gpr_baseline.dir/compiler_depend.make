# Empty compiler generated dependencies file for gpr_baseline.
# This may be replaced when dependencies are built.
