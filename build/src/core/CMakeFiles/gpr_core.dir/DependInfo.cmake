
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/aggregate_join.cc" "src/core/CMakeFiles/gpr_core.dir/aggregate_join.cc.o" "gcc" "src/core/CMakeFiles/gpr_core.dir/aggregate_join.cc.o.d"
  "/root/repo/src/core/anti_join.cc" "src/core/CMakeFiles/gpr_core.dir/anti_join.cc.o" "gcc" "src/core/CMakeFiles/gpr_core.dir/anti_join.cc.o.d"
  "/root/repo/src/core/datalog.cc" "src/core/CMakeFiles/gpr_core.dir/datalog.cc.o" "gcc" "src/core/CMakeFiles/gpr_core.dir/datalog.cc.o.d"
  "/root/repo/src/core/engine_profile.cc" "src/core/CMakeFiles/gpr_core.dir/engine_profile.cc.o" "gcc" "src/core/CMakeFiles/gpr_core.dir/engine_profile.cc.o.d"
  "/root/repo/src/core/explain.cc" "src/core/CMakeFiles/gpr_core.dir/explain.cc.o" "gcc" "src/core/CMakeFiles/gpr_core.dir/explain.cc.o.d"
  "/root/repo/src/core/mutual.cc" "src/core/CMakeFiles/gpr_core.dir/mutual.cc.o" "gcc" "src/core/CMakeFiles/gpr_core.dir/mutual.cc.o.d"
  "/root/repo/src/core/plan.cc" "src/core/CMakeFiles/gpr_core.dir/plan.cc.o" "gcc" "src/core/CMakeFiles/gpr_core.dir/plan.cc.o.d"
  "/root/repo/src/core/psm.cc" "src/core/CMakeFiles/gpr_core.dir/psm.cc.o" "gcc" "src/core/CMakeFiles/gpr_core.dir/psm.cc.o.d"
  "/root/repo/src/core/semiring.cc" "src/core/CMakeFiles/gpr_core.dir/semiring.cc.o" "gcc" "src/core/CMakeFiles/gpr_core.dir/semiring.cc.o.d"
  "/root/repo/src/core/sql99_compat.cc" "src/core/CMakeFiles/gpr_core.dir/sql99_compat.cc.o" "gcc" "src/core/CMakeFiles/gpr_core.dir/sql99_compat.cc.o.d"
  "/root/repo/src/core/stratify.cc" "src/core/CMakeFiles/gpr_core.dir/stratify.cc.o" "gcc" "src/core/CMakeFiles/gpr_core.dir/stratify.cc.o.d"
  "/root/repo/src/core/union_by_update.cc" "src/core/CMakeFiles/gpr_core.dir/union_by_update.cc.o" "gcc" "src/core/CMakeFiles/gpr_core.dir/union_by_update.cc.o.d"
  "/root/repo/src/core/with_plus.cc" "src/core/CMakeFiles/gpr_core.dir/with_plus.cc.o" "gcc" "src/core/CMakeFiles/gpr_core.dir/with_plus.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/ra/CMakeFiles/gpr_ra.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/gpr_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
