file(REMOVE_RECURSE
  "CMakeFiles/gpr_core.dir/aggregate_join.cc.o"
  "CMakeFiles/gpr_core.dir/aggregate_join.cc.o.d"
  "CMakeFiles/gpr_core.dir/anti_join.cc.o"
  "CMakeFiles/gpr_core.dir/anti_join.cc.o.d"
  "CMakeFiles/gpr_core.dir/datalog.cc.o"
  "CMakeFiles/gpr_core.dir/datalog.cc.o.d"
  "CMakeFiles/gpr_core.dir/engine_profile.cc.o"
  "CMakeFiles/gpr_core.dir/engine_profile.cc.o.d"
  "CMakeFiles/gpr_core.dir/explain.cc.o"
  "CMakeFiles/gpr_core.dir/explain.cc.o.d"
  "CMakeFiles/gpr_core.dir/mutual.cc.o"
  "CMakeFiles/gpr_core.dir/mutual.cc.o.d"
  "CMakeFiles/gpr_core.dir/plan.cc.o"
  "CMakeFiles/gpr_core.dir/plan.cc.o.d"
  "CMakeFiles/gpr_core.dir/psm.cc.o"
  "CMakeFiles/gpr_core.dir/psm.cc.o.d"
  "CMakeFiles/gpr_core.dir/semiring.cc.o"
  "CMakeFiles/gpr_core.dir/semiring.cc.o.d"
  "CMakeFiles/gpr_core.dir/sql99_compat.cc.o"
  "CMakeFiles/gpr_core.dir/sql99_compat.cc.o.d"
  "CMakeFiles/gpr_core.dir/stratify.cc.o"
  "CMakeFiles/gpr_core.dir/stratify.cc.o.d"
  "CMakeFiles/gpr_core.dir/union_by_update.cc.o"
  "CMakeFiles/gpr_core.dir/union_by_update.cc.o.d"
  "CMakeFiles/gpr_core.dir/with_plus.cc.o"
  "CMakeFiles/gpr_core.dir/with_plus.cc.o.d"
  "libgpr_core.a"
  "libgpr_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gpr_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
