file(REMOVE_RECURSE
  "libgpr_core.a"
)
