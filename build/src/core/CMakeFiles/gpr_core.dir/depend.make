# Empty dependencies file for gpr_core.
# This may be replaced when dependencies are built.
