file(REMOVE_RECURSE
  "CMakeFiles/gpr_graph.dir/datasets.cc.o"
  "CMakeFiles/gpr_graph.dir/datasets.cc.o.d"
  "CMakeFiles/gpr_graph.dir/generators.cc.o"
  "CMakeFiles/gpr_graph.dir/generators.cc.o.d"
  "CMakeFiles/gpr_graph.dir/graph.cc.o"
  "CMakeFiles/gpr_graph.dir/graph.cc.o.d"
  "CMakeFiles/gpr_graph.dir/graph_io.cc.o"
  "CMakeFiles/gpr_graph.dir/graph_io.cc.o.d"
  "CMakeFiles/gpr_graph.dir/relations.cc.o"
  "CMakeFiles/gpr_graph.dir/relations.cc.o.d"
  "libgpr_graph.a"
  "libgpr_graph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gpr_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
