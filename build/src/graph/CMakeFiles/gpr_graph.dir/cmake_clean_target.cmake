file(REMOVE_RECURSE
  "libgpr_graph.a"
)
