# Empty compiler generated dependencies file for gpr_graph.
# This may be replaced when dependencies are built.
