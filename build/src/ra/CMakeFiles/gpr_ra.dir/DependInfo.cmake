
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ra/aggregate.cc" "src/ra/CMakeFiles/gpr_ra.dir/aggregate.cc.o" "gcc" "src/ra/CMakeFiles/gpr_ra.dir/aggregate.cc.o.d"
  "/root/repo/src/ra/catalog.cc" "src/ra/CMakeFiles/gpr_ra.dir/catalog.cc.o" "gcc" "src/ra/CMakeFiles/gpr_ra.dir/catalog.cc.o.d"
  "/root/repo/src/ra/expr.cc" "src/ra/CMakeFiles/gpr_ra.dir/expr.cc.o" "gcc" "src/ra/CMakeFiles/gpr_ra.dir/expr.cc.o.d"
  "/root/repo/src/ra/operators.cc" "src/ra/CMakeFiles/gpr_ra.dir/operators.cc.o" "gcc" "src/ra/CMakeFiles/gpr_ra.dir/operators.cc.o.d"
  "/root/repo/src/ra/schema.cc" "src/ra/CMakeFiles/gpr_ra.dir/schema.cc.o" "gcc" "src/ra/CMakeFiles/gpr_ra.dir/schema.cc.o.d"
  "/root/repo/src/ra/table.cc" "src/ra/CMakeFiles/gpr_ra.dir/table.cc.o" "gcc" "src/ra/CMakeFiles/gpr_ra.dir/table.cc.o.d"
  "/root/repo/src/ra/table_io.cc" "src/ra/CMakeFiles/gpr_ra.dir/table_io.cc.o" "gcc" "src/ra/CMakeFiles/gpr_ra.dir/table_io.cc.o.d"
  "/root/repo/src/ra/tuple.cc" "src/ra/CMakeFiles/gpr_ra.dir/tuple.cc.o" "gcc" "src/ra/CMakeFiles/gpr_ra.dir/tuple.cc.o.d"
  "/root/repo/src/ra/value.cc" "src/ra/CMakeFiles/gpr_ra.dir/value.cc.o" "gcc" "src/ra/CMakeFiles/gpr_ra.dir/value.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/gpr_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
