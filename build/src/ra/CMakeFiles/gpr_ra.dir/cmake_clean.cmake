file(REMOVE_RECURSE
  "CMakeFiles/gpr_ra.dir/aggregate.cc.o"
  "CMakeFiles/gpr_ra.dir/aggregate.cc.o.d"
  "CMakeFiles/gpr_ra.dir/catalog.cc.o"
  "CMakeFiles/gpr_ra.dir/catalog.cc.o.d"
  "CMakeFiles/gpr_ra.dir/expr.cc.o"
  "CMakeFiles/gpr_ra.dir/expr.cc.o.d"
  "CMakeFiles/gpr_ra.dir/operators.cc.o"
  "CMakeFiles/gpr_ra.dir/operators.cc.o.d"
  "CMakeFiles/gpr_ra.dir/schema.cc.o"
  "CMakeFiles/gpr_ra.dir/schema.cc.o.d"
  "CMakeFiles/gpr_ra.dir/table.cc.o"
  "CMakeFiles/gpr_ra.dir/table.cc.o.d"
  "CMakeFiles/gpr_ra.dir/table_io.cc.o"
  "CMakeFiles/gpr_ra.dir/table_io.cc.o.d"
  "CMakeFiles/gpr_ra.dir/tuple.cc.o"
  "CMakeFiles/gpr_ra.dir/tuple.cc.o.d"
  "CMakeFiles/gpr_ra.dir/value.cc.o"
  "CMakeFiles/gpr_ra.dir/value.cc.o.d"
  "libgpr_ra.a"
  "libgpr_ra.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gpr_ra.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
