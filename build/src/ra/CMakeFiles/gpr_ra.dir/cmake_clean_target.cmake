file(REMOVE_RECURSE
  "libgpr_ra.a"
)
