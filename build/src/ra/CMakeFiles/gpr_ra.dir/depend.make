# Empty dependencies file for gpr_ra.
# This may be replaced when dependencies are built.
