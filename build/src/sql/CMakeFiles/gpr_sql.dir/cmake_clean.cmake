file(REMOVE_RECURSE
  "CMakeFiles/gpr_sql.dir/binder.cc.o"
  "CMakeFiles/gpr_sql.dir/binder.cc.o.d"
  "CMakeFiles/gpr_sql.dir/lexer.cc.o"
  "CMakeFiles/gpr_sql.dir/lexer.cc.o.d"
  "CMakeFiles/gpr_sql.dir/parser.cc.o"
  "CMakeFiles/gpr_sql.dir/parser.cc.o.d"
  "libgpr_sql.a"
  "libgpr_sql.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gpr_sql.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
