file(REMOVE_RECURSE
  "libgpr_sql.a"
)
