# Empty dependencies file for gpr_sql.
# This may be replaced when dependencies are built.
