file(REMOVE_RECURSE
  "CMakeFiles/gpr_util.dir/status.cc.o"
  "CMakeFiles/gpr_util.dir/status.cc.o.d"
  "CMakeFiles/gpr_util.dir/string_util.cc.o"
  "CMakeFiles/gpr_util.dir/string_util.cc.o.d"
  "libgpr_util.a"
  "libgpr_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gpr_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
