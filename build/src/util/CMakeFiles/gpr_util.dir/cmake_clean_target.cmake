file(REMOVE_RECURSE
  "libgpr_util.a"
)
