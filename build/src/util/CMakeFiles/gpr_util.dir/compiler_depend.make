# Empty compiler generated dependencies file for gpr_util.
# This may be replaced when dependencies are built.
