file(REMOVE_RECURSE
  "CMakeFiles/test_core_ops.dir/test_core_ops.cc.o"
  "CMakeFiles/test_core_ops.dir/test_core_ops.cc.o.d"
  "test_core_ops"
  "test_core_ops.pdb"
  "test_core_ops[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_core_ops.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
