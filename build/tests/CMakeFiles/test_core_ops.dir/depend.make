# Empty dependencies file for test_core_ops.
# This may be replaced when dependencies are built.
