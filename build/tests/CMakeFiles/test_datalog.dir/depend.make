# Empty dependencies file for test_datalog.
# This may be replaced when dependencies are built.
