file(REMOVE_RECURSE
  "CMakeFiles/test_mutual.dir/test_mutual.cc.o"
  "CMakeFiles/test_mutual.dir/test_mutual.cc.o.d"
  "test_mutual"
  "test_mutual.pdb"
  "test_mutual[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_mutual.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
