# Empty dependencies file for test_mutual.
# This may be replaced when dependencies are built.
