file(REMOVE_RECURSE
  "CMakeFiles/test_operator_properties.dir/test_operator_properties.cc.o"
  "CMakeFiles/test_operator_properties.dir/test_operator_properties.cc.o.d"
  "test_operator_properties"
  "test_operator_properties.pdb"
  "test_operator_properties[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_operator_properties.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
