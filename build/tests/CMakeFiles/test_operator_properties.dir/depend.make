# Empty dependencies file for test_operator_properties.
# This may be replaced when dependencies are built.
