file(REMOVE_RECURSE
  "CMakeFiles/test_plan_infer.dir/test_plan_infer.cc.o"
  "CMakeFiles/test_plan_infer.dir/test_plan_infer.cc.o.d"
  "test_plan_infer"
  "test_plan_infer.pdb"
  "test_plan_infer[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_plan_infer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
