# Empty compiler generated dependencies file for test_plan_infer.
# This may be replaced when dependencies are built.
