file(REMOVE_RECURSE
  "CMakeFiles/test_ra.dir/test_ra.cc.o"
  "CMakeFiles/test_ra.dir/test_ra.cc.o.d"
  "test_ra"
  "test_ra.pdb"
  "test_ra[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ra.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
