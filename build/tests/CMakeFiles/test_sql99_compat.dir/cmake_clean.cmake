file(REMOVE_RECURSE
  "CMakeFiles/test_sql99_compat.dir/test_sql99_compat.cc.o"
  "CMakeFiles/test_sql99_compat.dir/test_sql99_compat.cc.o.d"
  "test_sql99_compat"
  "test_sql99_compat.pdb"
  "test_sql99_compat[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sql99_compat.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
