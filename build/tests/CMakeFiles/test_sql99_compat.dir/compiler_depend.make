# Empty compiler generated dependencies file for test_sql99_compat.
# This may be replaced when dependencies are built.
