file(REMOVE_RECURSE
  "CMakeFiles/test_sql99_variants.dir/test_sql99_variants.cc.o"
  "CMakeFiles/test_sql99_variants.dir/test_sql99_variants.cc.o.d"
  "test_sql99_variants"
  "test_sql99_variants.pdb"
  "test_sql99_variants[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sql99_variants.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
