# Empty compiler generated dependencies file for test_sql99_variants.
# This may be replaced when dependencies are built.
