file(REMOVE_RECURSE
  "CMakeFiles/test_table_io.dir/test_table_io.cc.o"
  "CMakeFiles/test_table_io.dir/test_table_io.cc.o.d"
  "test_table_io"
  "test_table_io.pdb"
  "test_table_io[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_table_io.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
