# Empty dependencies file for test_util_lib.
# This may be replaced when dependencies are built.
