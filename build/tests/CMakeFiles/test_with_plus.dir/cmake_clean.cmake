file(REMOVE_RECURSE
  "CMakeFiles/test_with_plus.dir/test_with_plus.cc.o"
  "CMakeFiles/test_with_plus.dir/test_with_plus.cc.o.d"
  "test_with_plus"
  "test_with_plus.pdb"
  "test_with_plus[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_with_plus.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
