# Empty compiler generated dependencies file for test_with_plus.
# This may be replaced when dependencies are built.
