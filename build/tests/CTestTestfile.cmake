# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_algos[1]_include.cmake")
include("/root/repo/build/tests/test_baseline[1]_include.cmake")
include("/root/repo/build/tests/test_core_ops[1]_include.cmake")
include("/root/repo/build/tests/test_datalog[1]_include.cmake")
include("/root/repo/build/tests/test_graph[1]_include.cmake")
include("/root/repo/build/tests/test_ra[1]_include.cmake")
include("/root/repo/build/tests/test_sql[1]_include.cmake")
include("/root/repo/build/tests/test_with_plus[1]_include.cmake")
include("/root/repo/build/tests/test_extensions[1]_include.cmake")
include("/root/repo/build/tests/test_plan_infer[1]_include.cmake")
include("/root/repo/build/tests/test_sql99_variants[1]_include.cmake")
include("/root/repo/build/tests/test_util_lib[1]_include.cmake")
include("/root/repo/build/tests/test_explain[1]_include.cmake")
include("/root/repo/build/tests/test_sql99_compat[1]_include.cmake")
include("/root/repo/build/tests/test_table_io[1]_include.cmake")
include("/root/repo/build/tests/test_error_paths[1]_include.cmake")
include("/root/repo/build/tests/test_operator_properties[1]_include.cmake")
include("/root/repo/build/tests/test_mutual[1]_include.cmake")
