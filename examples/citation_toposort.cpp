// Citation-network scenario: topologically layer a (near-)acyclic
// citation DAG with the anti-join based TopoSort (Eq. 13 / Fig 5), then
// find influential old papers by Random-Walk-with-Restart from a recent
// one, and keyword-search the neighbourhood.
#include <cstdio>
#include <map>

#include "algos/algos.h"
#include "graph/generators.h"
#include "graph/relations.h"

using namespace gpr;  // NOLINT

int main() {
  // A citation DAG: edges point from citing to cited (older) papers.
  graph::Graph g = graph::RandomDag(5000, 20000, /*seed=*/21);
  graph::AttachRandomNodeData(&g, 22, 0, 20, /*num_labels=*/8);
  std::printf("citation graph: %lld papers, %zu citations\n",
              static_cast<long long>(g.num_nodes()), g.num_edges());

  ra::Catalog catalog;
  GPR_CHECK_OK(graph::RegisterGraph(g, &catalog));

  // 1. TopoSort — layers the DAG; level 0 holds papers nothing cites.
  algos::AlgoOptions ts_opt;
  ts_opt.anti_impl = core::AntiJoinImpl::kLeftOuterJoin;
  auto topo = algos::TopoSort(catalog, ts_opt);
  GPR_CHECK_OK(topo.status());
  std::map<int64_t, int64_t> per_level;
  for (const auto& row : topo->table.rows()) {
    ++per_level[row[1].ToInt64()];
  }
  std::printf("\nTopoSort: %zu iterations, %zu levels\n", topo->iterations,
              per_level.size());
  for (const auto& [level, count] : per_level) {
    if (level <= 5) {
      std::printf("  level %2lld: %lld papers\n",
                  static_cast<long long>(level),
                  static_cast<long long>(count));
    }
  }

  // 2. RWR from a "new" paper — the one citing the most work — asking
  // which older papers its citation walk visits most.
  graph::NodeId source = 0;
  for (graph::NodeId v = 0; v < g.num_nodes(); ++v) {
    if (g.OutDegree(v) > g.OutDegree(source)) source = v;
  }
  algos::AlgoOptions rwr_opt;
  rwr_opt.source = source;
  rwr_opt.max_iterations = 20;
  rwr_opt.restart_prob = 0.2;
  auto rwr = algos::RandomWalkWithRestart(catalog, rwr_opt);
  GPR_CHECK_OK(rwr.status());
  auto sorted = ra::ops::Sort(rwr->table, {"W"});
  GPR_CHECK_OK(sorted.status());
  std::printf("\nmost-visited papers from a walk restarted at paper %lld "
              "(cites %zu):\n",
              static_cast<long long>(source), g.OutDegree(source));
  const auto& rows = sorted->rows();
  int shown = 0;
  for (size_t i = rows.size(); i > 0 && shown < 6;) {
    --i;
    std::printf("  paper %lld  visit mass %.7f\n",
                static_cast<long long>(rows[i][0].ToInt64()),
                rows[i][1].ToDouble());
    ++shown;
  }

  // 3. Keyword-Search: roots whose 4-hop citation neighbourhood covers
  // topics {1, 2, 3}.
  algos::AlgoOptions ks_opt;
  ks_opt.keywords = {1, 2, 3};
  ks_opt.depth = 4;
  auto ks = algos::KeywordSearch(catalog, ks_opt);
  GPR_CHECK_OK(ks.status());
  size_t roots = 0;
  for (const auto& row : ks->table.rows()) {
    bool all = true;
    for (size_t c = 1; c < row.size(); ++c) all &= row[c].ToInt64() == 1;
    roots += all;
  }
  std::printf("\nKeyword-Search: %zu roots cover topics {1,2,3} within "
              "4 hops\n", roots);
  return 0;
}
