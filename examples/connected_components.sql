-- Weakly connected components as min-label propagation (Eq. 5 family).
--
-- Every node starts as its own component; each iteration a node adopts
-- the smallest component id among its in-neighbours. min is a monotone
-- fold, so the keyed union-by-update converges without a cap and the
-- analyzer stays quiet.
with CC (ID, comp) as (
  (select ID, ID from V)
  union by update ID
  (select E.T, min(comp) from CC, E where CC.ID = E.F group by E.T))
select ID, comp from CC
