// gpr_lint — offline static checking of with+ SQL files.
//
//   gpr_lint [--strict|--werror] [--facts=json] [file.sql ...]
//
// Reads statements (separated by a line containing only "go", like the
// repl) from the given files, or stdin when none are given, and runs the
// gpr::analysis pass suite against a schema-only catalog:
//
//   E(F:Int64, T:Int64, ew:Double)   V(ID:Int64, vw:Double)
//   VL(ID:Int64, label:Int64)
//
// Nothing is executed and no data is needed — this is the pre-execution
// gate as a batch tool. Exit status: 0 when every statement is clean,
// 1 when any statement has an error (or, under --strict/--werror, a
// warning), 2 on usage/IO problems.
//
// --facts=json switches stdout to a JSON array holding, per with+
// statement, the dataflow framework's statically-proven facts
// (analysis::FactsToJson) — the ANALYSIS_facts.json CI artifact.
// Diagnostics then go to stderr; the exit status is unchanged.
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "ra/catalog.h"
#include "ra/table.h"
#include "sql/lint.h"
#include "util/diag_emit.h"
#include "util/logging.h"
#include "util/string_util.h"

using namespace gpr;  // NOLINT

namespace {

ra::Catalog SchemaOnlyCatalog() {
  using ra::Schema;
  using ra::Table;
  using ra::ValueType;
  ra::Catalog catalog;
  GPR_CHECK_OK(catalog.CreateTable(Table(
      "E", Schema{{"F", ValueType::kInt64},
                  {"T", ValueType::kInt64},
                  {"ew", ValueType::kDouble}})));
  GPR_CHECK_OK(catalog.CreateTable(Table(
      "V", Schema{{"ID", ValueType::kInt64}, {"vw", ValueType::kDouble}})));
  GPR_CHECK_OK(catalog.CreateTable(Table(
      "VL",
      Schema{{"ID", ValueType::kInt64}, {"label", ValueType::kInt64}})));
  return catalog;
}

/// Splits input into statements at lines containing only "go"
/// (case-insensitive). Blank-only statements are dropped.
std::vector<std::string> SplitStatements(std::istream& in) {
  std::vector<std::string> statements;
  std::string buffer;
  std::string line;
  auto flush = [&] {
    if (!Trim(buffer).empty()) statements.push_back(buffer);
    buffer.clear();
  };
  while (std::getline(in, line)) {
    std::string trimmed(Trim(line));
    for (auto& c : trimmed) {
      c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
    }
    if (trimmed == "go") {
      flush();
    } else {
      buffer += line;
      buffer += "\n";
    }
  }
  flush();
  return statements;
}

/// Lints every statement of one input; returns the number of statements
/// that failed (errors always; warnings too under strict). In facts mode
/// diagnostics go to stderr and a facts JSON object per statement is
/// appended to `facts_out`.
int LintStream(std::istream& in, const std::string& label,
               const ra::Catalog& catalog, bool strict, bool facts_json,
               JsonArrayEmitter* facts_out) {
  int failed = 0;
  const auto statements = SplitStatements(in);
  std::FILE* diag_out = facts_json ? stderr : stdout;
  for (size_t i = 0; i < statements.size(); ++i) {
    analysis::DiagnosticBag diags = sql::LintSql(statements[i], catalog);
    const bool bad =
        diags.HasErrors() || (strict && diags.NumWarnings() > 0);
    if (diags.empty()) {
      std::fprintf(diag_out, "%s: statement %zu: clean\n", label.c_str(),
                   i + 1);
    } else {
      std::fprintf(diag_out,
                   "%s: statement %zu: %zu error(s), %zu warning(s)\n%s",
                   label.c_str(), i + 1, diags.NumErrors(),
                   diags.NumWarnings(), diags.Render().c_str());
    }
    if (bad) ++failed;
    if (facts_json) {
      std::ostringstream entry;
      entry << "{\"source\": \"" << JsonEscape(label)
            << "\", \"statement\": " << i + 1 << ", ";
      if (auto facts = sql::FactsJson(statements[i], catalog); facts.ok()) {
        entry << "\"facts\": " << *facts << "}";
      } else {
        entry << "\"error\": \"" << JsonEscape(facts.status().message())
              << "\"}";
      }
      facts_out->Add(entry.str());
    }
  }
  if (statements.empty()) {
    std::fprintf(diag_out, "%s: no statements\n", label.c_str());
  }
  return failed;
}

}  // namespace

int main(int argc, char** argv) {
  bool strict = false;
  bool facts_json = false;
  std::vector<std::string> files;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--strict") == 0 ||
        std::strcmp(argv[i], "--werror") == 0) {
      strict = true;
    } else if (std::strcmp(argv[i], "--facts=json") == 0) {
      facts_json = true;
    } else if (std::strcmp(argv[i], "--help") == 0 ||
               std::strcmp(argv[i], "-h") == 0) {
      std::printf(
          "usage: gpr_lint [--strict|--werror] [--facts=json] "
          "[file.sql ...]\n"
          "reads stdin when no files are given; statements are "
          "separated by a line containing only 'go'\n"
          "--werror (alias --strict) promotes warnings to failures;\n"
          "--facts=json prints the statically-proven plan facts of every "
          "with+ statement as a JSON array on stdout\n");
      return 0;
    } else if (argv[i][0] == '-') {
      std::fprintf(stderr, "unknown option '%s'\n", argv[i]);
      return 2;
    } else {
      files.push_back(argv[i]);
    }
  }

  const ra::Catalog catalog = SchemaOnlyCatalog();
  int failed = 0;
  JsonArrayEmitter facts_entries;
  if (files.empty()) {
    failed += LintStream(std::cin, "<stdin>", catalog, strict, facts_json,
                         &facts_entries);
  } else {
    for (const auto& path : files) {
      std::ifstream in(path);
      if (!in) {
        std::fprintf(stderr, "cannot open '%s'\n", path.c_str());
        return 2;
      }
      failed += LintStream(in, path, catalog, strict, facts_json,
                           &facts_entries);
    }
  }
  if (facts_json) facts_entries.Print(stdout);
  return failed > 0 ? 1 : 0;
}
