// gpr_lint — offline static checking of with+ SQL files.
//
//   gpr_lint [--strict] [file.sql ...]
//
// Reads statements (separated by a line containing only "go", like the
// repl) from the given files, or stdin when none are given, and runs the
// gpr::analysis pass suite against a schema-only catalog:
//
//   E(F:Int64, T:Int64, ew:Double)   V(ID:Int64, vw:Double)
//   VL(ID:Int64, label:Int64)
//
// Nothing is executed and no data is needed — this is the pre-execution
// gate as a batch tool. Exit status: 0 when every statement is clean,
// 1 when any statement has an error (or, under --strict, a warning),
// 2 on usage/IO problems.
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "ra/catalog.h"
#include "ra/table.h"
#include "sql/lint.h"
#include "util/logging.h"
#include "util/string_util.h"

using namespace gpr;  // NOLINT

namespace {

ra::Catalog SchemaOnlyCatalog() {
  using ra::Schema;
  using ra::Table;
  using ra::ValueType;
  ra::Catalog catalog;
  GPR_CHECK_OK(catalog.CreateTable(Table(
      "E", Schema{{"F", ValueType::kInt64},
                  {"T", ValueType::kInt64},
                  {"ew", ValueType::kDouble}})));
  GPR_CHECK_OK(catalog.CreateTable(Table(
      "V", Schema{{"ID", ValueType::kInt64}, {"vw", ValueType::kDouble}})));
  GPR_CHECK_OK(catalog.CreateTable(Table(
      "VL",
      Schema{{"ID", ValueType::kInt64}, {"label", ValueType::kInt64}})));
  return catalog;
}

/// Splits input into statements at lines containing only "go"
/// (case-insensitive). Blank-only statements are dropped.
std::vector<std::string> SplitStatements(std::istream& in) {
  std::vector<std::string> statements;
  std::string buffer;
  std::string line;
  auto flush = [&] {
    if (!Trim(buffer).empty()) statements.push_back(buffer);
    buffer.clear();
  };
  while (std::getline(in, line)) {
    std::string trimmed(Trim(line));
    for (auto& c : trimmed) {
      c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
    }
    if (trimmed == "go") {
      flush();
    } else {
      buffer += line;
      buffer += "\n";
    }
  }
  flush();
  return statements;
}

/// Lints every statement of one input; returns the number of statements
/// that failed (errors always; warnings too under strict).
int LintStream(std::istream& in, const std::string& label,
               const ra::Catalog& catalog, bool strict) {
  int failed = 0;
  const auto statements = SplitStatements(in);
  for (size_t i = 0; i < statements.size(); ++i) {
    analysis::DiagnosticBag diags = sql::LintSql(statements[i], catalog);
    const bool bad =
        diags.HasErrors() || (strict && diags.NumWarnings() > 0);
    if (diags.empty()) {
      std::printf("%s: statement %zu: clean\n", label.c_str(), i + 1);
    } else {
      std::printf("%s: statement %zu: %zu error(s), %zu warning(s)\n%s",
                  label.c_str(), i + 1, diags.NumErrors(),
                  diags.NumWarnings(), diags.Render().c_str());
    }
    if (bad) ++failed;
  }
  if (statements.empty()) {
    std::printf("%s: no statements\n", label.c_str());
  }
  return failed;
}

}  // namespace

int main(int argc, char** argv) {
  bool strict = false;
  std::vector<std::string> files;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--strict") == 0) {
      strict = true;
    } else if (std::strcmp(argv[i], "--help") == 0 ||
               std::strcmp(argv[i], "-h") == 0) {
      std::printf("usage: gpr_lint [--strict] [file.sql ...]\n"
                  "reads stdin when no files are given; statements are "
                  "separated by a line containing only 'go'\n");
      return 0;
    } else if (argv[i][0] == '-') {
      std::fprintf(stderr, "unknown option '%s'\n", argv[i]);
      return 2;
    } else {
      files.push_back(argv[i]);
    }
  }

  const ra::Catalog catalog = SchemaOnlyCatalog();
  int failed = 0;
  if (files.empty()) {
    failed += LintStream(std::cin, "<stdin>", catalog, strict);
  } else {
    for (const auto& path : files) {
      std::ifstream in(path);
      if (!in) {
        std::fprintf(stderr, "cannot open '%s'\n", path.c_str());
        return 2;
      }
      failed += LintStream(in, path, catalog, strict);
    }
  }
  return failed > 0 ? 1 : 0;
}
