-- Label propagation over the labelled node relation VL(ID, label).
--
-- Seeded from the stored labels; each iteration a node takes the minimum
-- label among its in-neighbours (a deterministic LP variant). The cap
-- bounds the sweep count like the paper's LP evaluation (15 rounds).
with L (ID, label) as (
  (select ID, label from VL)
  union by update ID
  (select E.T, min(label) from L, E where L.ID = E.F group by E.T)
  maxrecursion 15)
select ID, label from L
