-- Fig 3: PageRank as a value recursion (union by update on the node key).
--
-- sum is not a monotone fold, so termination rests on the maxrecursion
-- cap — omitting it draws GPR-W302 from the analyzer. The trailing
-- options also exercise the physical-tuning hints: `parallel`, the plan
-- cache and the plan-facts toggles (results are identical either way).
with P (ID, W) as (
  (select V.ID, 0.0 from V)
  union by update ID
  (select E.T, 0.85 * sum(W * ew) + 0.15 / 100 from P, E
   where P.ID = E.F group by E.T)
  maxrecursion 10 parallel 2 cache on facts on)
select ID, W from P
