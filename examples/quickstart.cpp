// Quickstart: load a graph, register its relations, and run PageRank two
// ways — through the C++ plan API and through the with+ SQL dialect.
//
//   ./quickstart [edge_list.txt]
//
// Without an argument a synthetic Web-Google-like graph is generated.
#include <cstdio>

#include "algos/algos.h"
#include "graph/datasets.h"
#include "graph/graph_io.h"
#include "graph/relations.h"
#include "sql/binder.h"

using namespace gpr;  // NOLINT

int main(int argc, char** argv) {
  // 1. Obtain a graph: from a SNAP-format edge list, or synthetic.
  graph::Graph g;
  if (argc > 1) {
    auto loaded = graph::LoadEdgeList(argv[1]);
    if (!loaded.ok()) {
      std::fprintf(stderr, "failed to load %s: %s\n", argv[1],
                   loaded.status().ToString().c_str());
      return 1;
    }
    g = std::move(loaded).value();
  } else {
    g = *graph::MakeDatasetByAbbrev("WG", /*scale=*/0.1);
  }
  std::printf("graph: %lld nodes, %zu edges\n",
              static_cast<long long>(g.num_nodes()), g.num_edges());

  // 2. Register the relation representation E(F,T,ew) / V(ID,vw).
  ra::Catalog catalog;
  GPR_CHECK_OK(graph::RegisterGraph(g, &catalog));

  // 3a. PageRank through the algorithm library (Fig 3 as a plan).
  algos::AlgoOptions options;
  options.profile = core::OracleLike();
  options.max_iterations = 15;
  auto pr = algos::PageRank(catalog, options);
  GPR_CHECK_OK(pr.status());
  std::printf("\nPageRank via the plan API: %zu iterations, %zu tuples\n",
              pr->iterations, pr->table.NumRows());

  // 3b. The same statement in the with+ dialect (Fig 3 verbatim, modulo
  // the damping constants). PageRank needs row-normalized edge weights
  // (ew = 1/outdeg), prepared here as a relational view.
  GPR_CHECK_OK(algos::CreateNormalizedEdges(catalog, "E", "En",
                                            core::OracleLike()));
  const double n = static_cast<double>(g.num_nodes());
  const std::string stmt = R"(
    with P(ID, W) as (
      (select V.ID, 0.0 from V)
      union by update ID
      (select En.T, 0.85 * sum(W * ew) + 0.15 / )" +
                           std::to_string(n) + R"( from P, En
       where P.ID = En.F group by En.T)
      maxrecursion 15)
    select ID, W from P)";
  auto table = sql::RunSql(stmt, catalog, core::OracleLike());
  GPR_CHECK_OK(table.status());

  // 4. Top-5 nodes by (unnormalized-weight) rank.
  auto sorted = ra::ops::Sort(*table, {"W"});
  GPR_CHECK_OK(sorted.status());
  std::printf("\ntop 5 nodes by rank (with+ SQL):\n");
  const auto& rows = sorted->rows();
  for (size_t i = rows.size(); i > rows.size() - std::min<size_t>(5, rows.size());) {
    --i;
    std::printf("  node %lld  W = %.6f\n",
                static_cast<long long>(rows[i][0].ToInt64()),
                rows[i][1].ToDouble());
  }
  return 0;
}
