// Social-network analysis pipeline — the scenario motivating the paper's
// introduction: one system that both *manages* the relations around a
// graph and *queries* the graph, feeding one algorithm's output into the
// next without leaving the database.
//
// Pipeline on a synthetic community-structured network:
//   1. WCC      — find communities (weakly connected components);
//   2. PageRank — rank members;
//   3. LP       — propagate interest labels;
//   4. a plain relational join over the three results: per-community
//      influencer (max-rank member) and dominant label.
#include <cstdio>
#include <map>

#include "algos/algos.h"
#include "core/plan.h"
#include "graph/generators.h"
#include "graph/relations.h"

using namespace gpr;  // NOLINT

int main() {
  // A clustered network: 4 isolated communities (no bridge edges, so WCC
  // separates them cleanly).
  graph::Graph g = graph::Clustered(2000, 12000, 4, /*seed=*/7,
                                    /*intra_prob=*/1.0);
  graph::AttachRandomNodeData(&g, 8, 0, 20, /*num_labels=*/6);
  std::printf("social network: %lld members, %zu follow edges\n",
              static_cast<long long>(g.num_nodes()), g.num_edges());

  ra::Catalog catalog;
  GPR_CHECK_OK(graph::RegisterGraph(g, &catalog));

  // 1. Communities.
  auto wcc = algos::Wcc(catalog, {});
  GPR_CHECK_OK(wcc.status());
  std::printf("WCC converged after %zu iterations\n", wcc->iterations);

  // 2. Influence.
  algos::AlgoOptions pr_opt;
  pr_opt.max_iterations = 15;
  auto pr = algos::PageRank(catalog, pr_opt);
  GPR_CHECK_OK(pr.status());

  // 3. Interests.
  algos::AlgoOptions lp_opt;
  lp_opt.max_iterations = 10;
  auto lp = algos::LabelPropagation(catalog, lp_opt);
  GPR_CHECK_OK(lp.status());

  // 4. Store the results back as relations and query them together —
  // "RDBMS is a system that can query and manage data".
  wcc->table.set_name("Community");
  GPR_CHECK_OK(catalog.CreateTable(std::move(wcc->table)));
  pr->table.set_name("Rank");
  GPR_CHECK_OK(catalog.CreateTable(std::move(pr->table)));
  lp->table.set_name("Interest");
  GPR_CHECK_OK(catalog.CreateTable(std::move(lp->table)));

  // Per-community max rank...
  namespace ops = ra::ops;
  auto per_community = core::GroupByOp(
      core::JoinOp(core::Scan("Community"), core::Scan("Rank"),
                   {{"ID"}, {"ID"}}),
      {"Community.vw"}, {ra::MaxOf(ra::Col("Rank.W"), "top_rank"),
                         ra::CountStar("members")});
  auto stats = core::ExecutePlan(per_community, catalog, core::OracleLike());
  GPR_CHECK_OK(stats.status());

  // ...and the member(s) achieving it, with their propagated interest.
  auto influencers = core::ExecutePlan(
      core::ProjectOp(
          core::JoinOp(
              core::JoinOp(
                  core::RenameOp(per_community, "CS", {"community",
                                                       "top_rank", "members"}),
                  core::JoinOp(core::Scan("Community"), core::Scan("Rank"),
                               {{"ID"}, {"ID"}}),
                  {{"community", "top_rank"}, {"vw", "W"}}),
              core::Scan("Interest"), {{"Rank.ID"}, {"ID"}}),
          {ra::ops::As(ra::Col("community"), "community"),
           ra::ops::As(ra::Col("members"), "members"),
           ra::ops::As(ra::Col("Rank.ID"), "influencer"),
           ra::ops::As(ra::Col("top_rank"), "rank"),
           ra::ops::As(ra::Col("Interest.label"), "interest")}),
      catalog, core::OracleLike());
  GPR_CHECK_OK(influencers.status());

  auto sorted = ra::ops::Sort(*influencers, {"members"});
  GPR_CHECK_OK(sorted.status());
  std::printf("\n%12s %9s %12s %10s %9s\n", "community", "members",
              "influencer", "rank", "interest");
  const auto& rows = sorted->rows();
  for (size_t i = rows.size(); i > 0;) {
    --i;
    if (rows[i][1].ToInt64() < 10) continue;  // skip tiny fragments
    std::printf("%12lld %9lld %12lld %10.6f %9lld\n",
                static_cast<long long>(rows[i][0].ToInt64()),
                static_cast<long long>(rows[i][1].ToInt64()),
                static_cast<long long>(rows[i][2].ToInt64()),
                rows[i][3].ToDouble(),
                static_cast<long long>(rows[i][4].ToInt64()));
  }
  return 0;
}
