// A tiny interactive shell for the with+ dialect.
//
//   ./sql_repl [dataset-abbrev] [scale]
//
// Loads a Table 3 analogue (default: WV at scale 0.2), registers E/V/VL,
// and reads with+ or select statements from stdin (terminated by a line
// containing only "go"). "\d" lists tables, "\q" quits.
#include <cstdio>
#include <iostream>
#include <string>

#include "core/explain.h"
#include "core/plan.h"
#include "graph/datasets.h"
#include "graph/relations.h"
#include "sql/binder.h"
#include "ra/table_io.h"
#include "sql/parser.h"
#include "util/string_util.h"

using namespace gpr;  // NOLINT

int main(int argc, char** argv) {
  const std::string abbrev = argc > 1 ? argv[1] : "WV";
  const double scale = argc > 2 ? std::atof(argv[2]) : 0.2;
  auto g = graph::MakeDatasetByAbbrev(abbrev, scale);
  if (!g.ok()) {
    std::fprintf(stderr, "%s\n", g.status().ToString().c_str());
    return 1;
  }
  ra::Catalog catalog;
  GPR_CHECK_OK(graph::RegisterGraph(*g, &catalog));
  std::printf("loaded %s analogue: %lld nodes, %zu edges\n"
              "tables: E(F,T,ew), V(ID,vw), VL(ID,label)\n"
              "enter a with+ or select statement, then 'go' on its own "
              "line; \\d lists tables; \\explain explains the next statement; \\q "
              "quits\n",
              abbrev.c_str(), static_cast<long long>(g->num_nodes()),
              g->num_edges());

  std::string buffer;
  std::string line;
  bool explain_only = false;
  while (std::getline(std::cin, line)) {
    const std::string trimmed(Trim(line));
    if (trimmed == "\\q") break;
    if (trimmed == "\\d") {
      for (const auto& name : catalog.TableNames()) {
        auto t = catalog.Get(name);
        std::printf("  %s%s [%zu rows]\n", name.c_str(),
                    (*t)->schema().ToString().c_str(), (*t)->NumRows());
      }
      continue;
    }
    if (StartsWith(trimmed, "\\save ")) {
      // \save <table> <file.csv>
      const auto parts = Split(std::string(Trim(trimmed.substr(6))), ' ');
      if (parts.size() != 2) {
        std::printf("usage: \\save <table> <file.csv>\n");
        continue;
      }
      auto t = catalog.Get(parts[0]);
      if (!t.ok()) {
        std::printf("error: %s\n", t.status().ToString().c_str());
        continue;
      }
      auto st = ra::SaveCsv(**t, parts[1]);
      std::printf("%s\n", st.ok() ? "saved" : st.ToString().c_str());
      continue;
    }
    if (StartsWith(trimmed, "\\load ")) {
      // \load <file.csv> <table>
      const auto parts = Split(std::string(Trim(trimmed.substr(6))), ' ');
      if (parts.size() != 2) {
        std::printf("usage: \\load <file.csv> <table>\n");
        continue;
      }
      auto t = ra::LoadCsv(parts[0], parts[1]);
      if (!t.ok()) {
        std::printf("error: %s\n", t.status().ToString().c_str());
        continue;
      }
      t->Analyze();
      const size_t rows = t->NumRows();
      auto st = catalog.CreateTable(std::move(t).value());
      if (!st.ok()) {
        std::printf("error: %s\n", st.ToString().c_str());
        continue;
      }
      std::printf("loaded %zu rows into %s\n", rows, parts[1].c_str());
      continue;
    }
    if (trimmed == "\\explain") {
      explain_only = true;  // explain the next statement instead of running
      std::printf("next statement will be explained, not executed\n");
      continue;
    }
    if (trimmed != "go") {
      buffer += line;
      buffer += "\n";
      continue;
    }
    // Execute the buffered statement.
    const std::string text = buffer;
    buffer.clear();
    if (std::string(Trim(text)).empty()) continue;
    if (explain_only) {
      explain_only = false;
      auto explained = [&]() -> Result<std::string> {
        if (StartsWith(ToLower(std::string(Trim(text))), "with")) {
          GPR_ASSIGN_OR_RETURN(sql::WithStatementAst ast,
                               sql::ParseWithStatement(text));
          GPR_ASSIGN_OR_RETURN(sql::BoundWithStatement bound,
                               sql::BindWithStatement(ast, catalog));
          return core::ExplainWithPlus(bound.query, catalog,
                                       core::OracleLike());
        }
        GPR_ASSIGN_OR_RETURN(sql::SelectCore ast, sql::ParseSelect(text));
        GPR_ASSIGN_OR_RETURN(core::PlanPtr plan,
                             sql::BindSelect(ast, catalog));
        return core::Explain(plan, catalog, core::OracleLike());
      }();
      if (!explained.ok()) {
        std::printf("error: %s\n", explained.status().ToString().c_str());
      } else {
        std::printf("%s", explained->c_str());
      }
      continue;
    }
    Result<ra::Table> result = [&]() -> Result<ra::Table> {
      if (StartsWith(ToLower(std::string(Trim(text))), "with")) {
        return sql::RunSql(text, catalog, core::OracleLike());
      }
      GPR_ASSIGN_OR_RETURN(sql::SelectCore ast, sql::ParseSelect(text));
      GPR_ASSIGN_OR_RETURN(core::PlanPtr plan,
                           sql::BindSelect(ast, catalog));
      return core::ExecutePlan(plan, catalog, core::OracleLike());
    }();
    if (!result.ok()) {
      std::printf("error: %s\n", result.status().ToString().c_str());
      continue;
    }
    std::printf("%s", result->ToString(20).c_str());
  }
  return 0;
}
