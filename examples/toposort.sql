-- Fig 5: topological sort by anti-join peeling of zero-in-degree nodes.
--
-- The computed-by chain materializes the per-iteration temporaries in
-- order: the next level L_n, the unsorted nodes V_1, and the probe set
-- E_1. Every definition selects only the columns some consumer reads —
-- a dead column would draw GPR-W315.
with Topo (ID, L) as (
  (select ID, 0 from V where ID not in (select E.T from E))
  union all
  (select ID, L from T_n
   computed by
     L_n(L) as select max(L) + 1 from Topo;
     V_1(ID) as select V.ID from V where ID not in (select ID from Topo);
     E_1(T) as select E.T from V_1, E where V_1.ID = E.F;
     T_n as select ID, L from V_1, L_n
           where ID not in (select T from E_1);))
select * from Topo
