-- Fig 1: transitive closure of E(F, T, ew).
--
-- `union` (distinct) keeps only genuinely new pairs per iteration, so the
-- recursion converges on cyclic graphs without an iteration cap (union all
-- would re-derive every pair forever — the analyzer flags that as
-- GPR-W401).
with TC (F, T) as (
  (select F, T from E)
  union
  (select TC.F, E.T from TC, E where TC.T = E.F))
select * from TC
