// The 10 graph algorithms of the paper's evaluation (Section 7) plus the
// additional Table 2 algorithms, each implemented as an enhanced-with
// (with+) recursive query over the relations E(F,T,ew) / V(ID,vw) /
// VL(ID,label) and executed through the SQL/PSM pipeline.
//
// Result conventions (per algorithm) are documented on each function; all
// return the full WithPlusResult so benchmarks can read per-iteration
// timings and tuple counts (Figs 12–13).
#pragma once

#include "algos/common.h"

namespace gpr::algos {

/// TC — edge transitive closure (Fig 1), linear recursion.
/// mode: kUnionDistinct (the with+/PostgreSQL dedup form). `options.depth`
/// bounds the recursion (0 = run to fixpoint; cyclic graphs then still
/// terminate because dedup reaches a fixed set).
/// Result: TC(F, T).
Result<WithPlusResult> TransitiveClosure(ra::Catalog& catalog,
                                         const AlgoOptions& options = {});

/// BFS reachability from options.source (Eq. 5): max/× semiring MV-join.
/// Result: R(ID, vw) with vw = 1 for reached nodes (including the source).
Result<WithPlusResult> Bfs(ra::Catalog& catalog,
                           const AlgoOptions& options = {});

/// BFS reachability as a set-growing recursion with SQL'99 working-table
/// semantics — the "early selection" optimization the paper attributes to
/// Ordonez [41]: each iteration joins only the frontier (previous
/// iteration's new nodes) with E instead of re-aggregating every node.
/// Result: R(ID) — the reached node set (including the source).
Result<WithPlusResult> BfsFrontier(ra::Catalog& catalog,
                                   const AlgoOptions& options = {});

/// Weakly-connected components (Eq. 6): min/× semiring MV-join over the
/// symmetrized edges. Result: R(ID, vw) with vw = smallest node id in the
/// component.
Result<WithPlusResult> Wcc(ra::Catalog& catalog,
                           const AlgoOptions& options = {});

/// Single-source shortest distances, Bellman-Ford (Eq. 7): min/+ MV-join.
/// Result: R(ID, vw); unreachable nodes carry core::kInfDistance.
Result<WithPlusResult> SsspBellmanFord(ra::Catalog& catalog,
                                       const AlgoOptions& options = {});

/// All-pairs shortest distances, Floyd-Warshall style (Eq. 8): nonlinear
/// min/+ MM-join of the distance relation with itself (doubles path length
/// per iteration). Result: D(F, T, ew) over reachable pairs.
Result<WithPlusResult> ApspFloydWarshall(ra::Catalog& catalog,
                                         const AlgoOptions& options = {});

/// All-pairs shortest distances by linear recursion (Fig 13b): min/+
/// MM-join of the distance relation with E (one hop per iteration).
/// options.depth caps iterations (paper: 7). Result: D(F, T, ew).
Result<WithPlusResult> ApspLinear(ra::Catalog& catalog,
                                  const AlgoOptions& options = {});

/// PageRank (Eq. 9 / Fig 3): MV-join + union-by-update. Edge weights are
/// row-normalized internally (1/outdeg). 15 iterations by default.
/// Result: P(ID, W).
Result<WithPlusResult> PageRank(ra::Catalog& catalog,
                                const AlgoOptions& options = {});

/// PageRank expressed with SQL'99-legal with (Fig 9): union all +
/// partition-by emulation + distinct, carrying the iteration number L.
/// The recursive relation accumulates one generation of tuples per
/// iteration (Fig 12's comparison series). Result: P(ID, W, L).
Result<WithPlusResult> PageRankSql99(ra::Catalog& catalog,
                                     const AlgoOptions& options = {});

/// Random-Walk-with-Restart (Eq. 10) from options.source with restart
/// probability options.restart_prob. Result: P(ID, W).
Result<WithPlusResult> RandomWalkWithRestart(ra::Catalog& catalog,
                                             const AlgoOptions& options = {});

/// SimRank (Eq. 11): nonlinear MM-joins over the similarity matrix; dense —
/// small graphs only. 5 iterations by default. Result: K(F, T, ew).
Result<WithPlusResult> SimRank(ra::Catalog& catalog,
                               const AlgoOptions& options = {});

/// HITS (Eq. 12 / Fig 6): two MV-joins + joint normalization via a
/// `computed by` chain; mutual recursion folded into one recursive
/// relation. 15 iterations by default. Result: H(ID, h, a).
Result<WithPlusResult> Hits(ra::Catalog& catalog,
                            const AlgoOptions& options = {});

/// TopoSort (Eq. 13 / Fig 5): anti-join peeling of zero-in-degree nodes;
/// DAG input required (on cyclic input the result omits cycle members).
/// Result: Topo(ID, L) with L = Kahn level.
Result<WithPlusResult> TopoSort(ra::Catalog& catalog,
                                const AlgoOptions& options = {});

/// K-core (options.k): iteratively keep edges whose endpoints both have
/// total degree ≥ k. Result: EC(F, T, ew) — the edges of the k-core.
Result<WithPlusResult> KCore(ra::Catalog& catalog,
                             const AlgoOptions& options = {});

/// Maximal-Independent-Set, random-priority rounds (uses rand()).
/// Result: S(ID, status) with status 1 = in the set, 2 = removed.
Result<WithPlusResult> MaximalIndependentSet(ra::Catalog& catalog,
                                             const AlgoOptions& options = {});

/// Label-Propagation: most-frequent in-neighbour label, ties toward the
/// smaller label; 15 iterations by default. Result: L(ID, label).
Result<WithPlusResult> LabelPropagation(ra::Catalog& catalog,
                                        const AlgoOptions& options = {});

/// Maximal-Node-Matching: nodes pick their max-weight remaining neighbour;
/// mutual picks match and leave the graph. Result: M(ID, mate), mate = -1
/// while unmatched.
Result<WithPlusResult> MaximalNodeMatching(ra::Catalog& catalog,
                                           const AlgoOptions& options = {});

/// Keyword-Search roots: per-keyword indicator bits OR-propagated along
/// out-edges for options.depth iterations (paper: 3 labels, depth 4).
/// Result: K(ID, k1..k_m); roots are rows with every bit 1.
Result<WithPlusResult> KeywordSearch(ra::Catalog& catalog,
                                     const AlgoOptions& options = {});

/// Diameter estimation (HADI-flavoured): per-node reachable-set sizes via
/// iterative neighbourhood union (exact bitset variant over sampled seeds);
/// result R(ID, vw) where vw = hops needed to stop growing; the max vw
/// estimates the diameter.
Result<WithPlusResult> DiameterEstimation(ra::Catalog& catalog,
                                          const AlgoOptions& options = {});

/// Markov-Clustering: expansion (MM-join square) + inflation (entrywise
/// square, column re-normalization); dense — small graphs only.
/// Result: M(F, T, ew) — the flow matrix after convergence/cap.
Result<WithPlusResult> MarkovClustering(ra::Catalog& catalog,
                                        const AlgoOptions& options = {});

}  // namespace gpr::algos
