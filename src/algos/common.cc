#include "algos/common.h"

#include "core/checkpoint.h"
#include "core/plan.h"
#include "ra/operators.h"

namespace gpr::algos {

namespace ops = ra::ops;
using core::ExecutePlan;
using core::JoinOp;
using core::GroupByOp;
using core::PlanPtr;
using core::ProjectOp;
using core::Scan;
using ra::Col;
using ra::Lit;
using ra::Table;

Result<WithPlusResult> RunWithPlus(core::WithPlusQuery& q,
                                   ra::Catalog& catalog,
                                   const AlgoOptions& options) {
  q.governor = options.governor;
  q.cancel = options.cancel;
  q.fault_spec = options.fault_spec;
  if (options.degree_of_parallelism > 0) {
    q.degree_of_parallelism = options.degree_of_parallelism;
  }
  if (options.plan_cache >= 0) q.plan_cache = options.plan_cache;
  if (options.plan_facts >= 0) q.plan_facts = options.plan_facts;
  if (options.csr_kernels >= 0) q.csr_kernels = options.csr_kernels;
  if (options.vectorized >= 0) q.vectorized = options.vectorized;
  if (options.checkpoint_every != -1) {
    q.checkpoint_every = options.checkpoint_every;
  }
  if (options.checkpoint_store != nullptr) {
    q.checkpoint_store = options.checkpoint_store;
  }
  if (!options.resume_from.empty() && q.resume_from.empty()) {
    // An algorithm forwards the caller's token to every with+ it runs, so
    // only hand it to the fixpoint that actually issued it: the one whose
    // recursive relation matches the snapshot. Everything else (another
    // stage, or a token the resuming stage already consumed) runs fresh
    // instead of tripping the engine's strict unknown-token NotFound.
    core::CheckpointStore& store = options.checkpoint_store != nullptr
                                       ? *options.checkpoint_store
                                       : core::CheckpointStore::Default();
    if (auto snap = store.Find(options.resume_from);
        snap.has_value() && snap->rec_table == q.rec_name) {
      q.resume_from = options.resume_from;
    }
  }
  exec::RetryState retry(options.retry);
  while (true) {
    Result<WithPlusResult> result =
        core::ExecuteWithPlus(q, catalog, options.profile, options.seed);
    if (result.ok() || !retry.ShouldRetry(result.status())) return result;
    // A retryable failure: resume from the attempt's last snapshot when
    // one was published (ProgressDetail rides on every governor trip and
    // injected fault); without one the retry restarts from scratch.
    const exec::ProgressDetail* detail =
        exec::ProgressDetail::FromStatus(result.status());
    if (detail != nullptr && !detail->progress().resume_token.empty()) {
      q.resume_from = detail->progress().resume_token;
    }
    retry.SleepBeforeNextAttempt();
  }
}

Status CreateLoopedEdges(ra::Catalog& catalog, const std::string& edges,
                         const std::string& nodes, const std::string& out,
                         double loop_weight, bool symmetrize) {
  GPR_ASSIGN_OR_RETURN(const Table* e, catalog.Get(edges));
  GPR_ASSIGN_OR_RETURN(const Table* v, catalog.Get(nodes));
  Table looped(out, e->schema());
  looped.Reserve((symmetrize ? 2 : 1) * e->NumRows() + v->NumRows());
  GPR_ASSIGN_OR_RETURN(size_t id_col, v->schema().Resolve("ID"));
  GPR_ASSIGN_OR_RETURN(size_t f_col, e->schema().Resolve("F"));
  GPR_ASSIGN_OR_RETURN(size_t t_col, e->schema().Resolve("T"));
  GPR_ASSIGN_OR_RETURN(size_t w_col, e->schema().Resolve("ew"));
  for (const auto& row : e->rows()) looped.AddRow(row);
  if (symmetrize) {
    for (const auto& row : e->rows()) {
      looped.AddRow({row[t_col], row[f_col], row[w_col]});
    }
  }
  for (const auto& row : v->rows()) {
    looped.AddRow({row[id_col], row[id_col], ra::Value(loop_weight)});
  }
  looped.Analyze();
  GPR_RETURN_NOT_OK(catalog.CreateTempTable(out, looped.schema()));
  return catalog.ReplaceTable(out, std::move(looped));
}

Status CreateNormalizedEdges(ra::Catalog& catalog, const std::string& edges,
                             const std::string& out,
                             const EngineProfile& profile, bool by_from) {
  // Deg(key, d) = select key, count(*) from E group by key;
  // out = select E.F, E.T, 1.0/d from E join Deg on key.
  const std::string key = by_from ? "F" : "T";
  PlanPtr deg = GroupByOp(Scan(edges), {key}, {ra::CountStar("d")});
  PlanPtr joined =
      JoinOp(core::RenameOp(Scan(edges), "e_norm"),
             core::RenameOp(deg, "outdeg", {"DF", "d"}), {{key}, {"DF"}});
  PlanPtr norm = ProjectOp(
      joined,
      {ops::As(Col("e_norm.F"), "F"), ops::As(Col("e_norm.T"), "T"),
       ops::As(ra::Div(Lit(1.0), Col("outdeg.d")), "ew")},
      out);
  GPR_ASSIGN_OR_RETURN(Table t, ExecutePlan(norm, catalog, profile));
  t.set_name(out);
  t.Analyze();
  GPR_RETURN_NOT_OK(catalog.CreateTempTable(out, t.schema()));
  return catalog.ReplaceTable(out, std::move(t));
}

void DropQuietly(ra::Catalog& catalog,
                 const std::vector<std::string>& names) {
  // Route the drops through TempTableScope: its destructor is the one
  // NotFound-tolerant cleanup path, so best-effort disposal here stays
  // identical to the engines' error/abort-path cleanup.
  ra::TempTableScope scope(catalog);
  for (const auto& n : names) scope.Track(n);
}

size_t RowCount(const ra::Catalog& catalog, const std::string& table) {
  auto t = catalog.Get(table);
  return t.ok() ? (*t)->NumRows() : 0;
}

}  // namespace gpr::algos
