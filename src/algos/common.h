// Shared options and helpers for the relational (with+) graph algorithms.
//
// Every algorithm in this library expects a catalog holding the graph's
// relation representation: E(F, T, ew), V(ID, vw), and (for LP / KS)
// VL(ID, label) — see graph/relations.h.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/with_plus.h"
#include "exec/retry.h"
#include "ra/catalog.h"

namespace gpr::algos {

using core::EngineProfile;
using core::WithPlusResult;

/// Knobs shared by all algorithms. Defaults follow the paper's Section 7
/// setup (full-outer-join ⊎, left-outer-join anti-join, 15 iterations for
/// PR/HITS/LP, damping 0.85).
struct AlgoOptions {
  EngineProfile profile = core::OracleLike();
  core::AntiJoinImpl anti_impl = core::AntiJoinImpl::kLeftOuterJoin;
  core::UnionByUpdateImpl ubu_impl = core::UnionByUpdateImpl::kFullOuterJoin;
  /// 0 = per-algorithm default (15 for PR/HITS/LP, unbounded otherwise).
  int max_iterations = 0;
  double damping = 0.85;
  uint64_t seed = 42;

  /// Algorithm-specific parameters.
  int64_t source = 0;                   ///< BFS / SSSP / RWR
  int k = 5;                            ///< K-core
  std::vector<int64_t> keywords = {1, 2, 3};  ///< Keyword-Search labels
  int depth = 4;                        ///< Keyword-Search depth / TC cap
  double restart_prob = 0.15;           ///< RWR (1 - c)
  double simrank_c = 0.6;               ///< SimRank decay

  /// Execution governance, forwarded to every with+ the algorithm runs
  /// (docs/robustness.md): deadline / row / byte / iteration budgets, a
  /// cooperative cancellation token, and the fault-injection spec (""
  /// consults GPR_FAULTS, "none" disables). Defaults = ungoverned.
  exec::ExecLimits governor;
  exec::CancellationToken cancel;
  std::string fault_spec;

  /// Degree of parallelism for the ra operators (docs/performance.md);
  /// 0 = inherit the profile's setting (1 = serial by default). Every
  /// algorithm's result is DOP-invariant — MIS's rand()-driven steps
  /// force themselves serial regardless.
  int degree_of_parallelism = 0;

  /// Cross-iteration plan-state cache (docs/performance.md): -1 = inherit
  /// the profile's plan_cache setting, 0 = off, 1 = on. Results are
  /// guaranteed identical either way.
  int plan_cache = -1;

  /// Plan facts (analysis/dataflow.h): -1 = inherit the profile's
  /// plan_facts setting, 0 = off, 1 = on. Results are guaranteed identical
  /// either way.
  int plan_facts = -1;

  /// CSR SpMV/SpMM kernels behind MV/MM-join (ra/csr.h,
  /// docs/performance.md): -1 = inherit the profile's csr_kernels
  /// setting, 0 = off, 1 = on. Results are guaranteed row-identical
  /// either way.
  int csr_kernels = -1;

  /// Vectorized batch execution (ra/vectorized.h, docs/performance.md):
  /// -1 = inherit the profile's vectorized setting, 0 = off, 1 = on.
  /// Results are guaranteed row-identical either way.
  int vectorized = -1;

  /// Checkpoint/resume (core/checkpoint.h, docs/robustness.md): -1 =
  /// inherit the profile's checkpoint_every, 0 = off, N = snapshot every
  /// N fixpoint iterations. `resume_from` continues an interrupted run
  /// from its snapshot token; nullptr store = CheckpointStore::Default().
  int checkpoint_every = -1;
  std::string resume_from;
  core::CheckpointStore* checkpoint_store = nullptr;

  /// Retry policy (exec/retry.h): with max_attempts > 1, RunWithPlus
  /// retries transient failures (Unavailable — plus governed trips when
  /// retry_governed is set) after a deterministic seeded backoff. When
  /// checkpointing is on, each retry resumes from the failed attempt's
  /// last snapshot, so a recurring transient fault still makes monotonic
  /// progress instead of restarting from scratch.
  exec::RetryPolicy retry;
};

/// Runs `q` with the governance knobs of `options` applied — the single
/// funnel every algorithm uses instead of calling ExecuteWithPlus directly.
Result<WithPlusResult> RunWithPlus(core::WithPlusQuery& q,
                                   ra::Catalog& catalog,
                                   const AlgoOptions& options);

/// Helpers used by several algorithms -----------------------------------

/// Creates a temp table `out` = E plus a self-loop (v, v, loop_weight) per
/// node. Self-loops let MV-joins fold a node's own value into min/max
/// aggregates (the paper's Eqs. 5–7 implicitly require this for
/// union-by-update not to discard a node's current value). With
/// `symmetrize` the reverse of every edge is added too (weak connectivity).
Status CreateLoopedEdges(ra::Catalog& catalog, const std::string& edges,
                         const std::string& nodes, const std::string& out,
                         double loop_weight, bool symmetrize = false);

/// Creates a temp table `out`(F, T, ew) with ew = 1/outdeg(F) (or
/// 1/indeg(T) when `by_from` is false — SimRank's column normalization).
/// Built relationally (group-by count + join) as a showcase of the
/// substrate.
Status CreateNormalizedEdges(ra::Catalog& catalog, const std::string& edges,
                             const std::string& out,
                             const EngineProfile& profile,
                             bool by_from = true);

/// Drops `names` from the catalog, ignoring missing tables.
void DropQuietly(ra::Catalog& catalog, const std::vector<std::string>& names);

/// Number of rows in `table` (0 when missing).
size_t RowCount(const ra::Catalog& catalog, const std::string& table);

}  // namespace gpr::algos
