#include "algos/extensions.h"

#include "core/plan.h"

namespace gpr::algos {

namespace ops = ra::ops;
using core::DistinctOp;
using core::GroupByOp;
using core::JoinOp;
using core::LeftOuterJoinOp;
using core::PlanPtr;
using core::ProjectOp;
using core::RenameOp;
using core::Scan;
using core::SelectOp;
using core::Subquery;
using core::UnionMode;
using core::WithPlusQuery;
using ra::Col;
using ra::Lit;
using ra::Schema;
using ra::Value;
using ra::ValueType;
namespace ex = ra;

Result<WithPlusResult> KTruss(ra::Catalog& catalog,
                              const AlgoOptions& options) {
  WithPlusQuery q;
  q.rec_name = "ET";
  q.rec_schema = Schema{{"F", ValueType::kInt64},
                        {"T", ValueType::kInt64},
                        {"ew", ValueType::kDouble}};
  // Symmetric starting edge set (a truss is an undirected notion).
  q.init.push_back(Subquery{
      DistinctOp(core::UnionAllOp(
          ProjectOp(Scan("E"), {ops::As(Col("F"), "F"), ops::As(Col("T"), "T"),
                                ops::As(Lit(1.0), "ew")}),
          ProjectOp(Scan("E"), {ops::As(Col("T"), "F"), ops::As(Col("F"), "T"),
                                ops::As(Lit(1.0), "ew")}))),
      {}});
  Subquery rec;
  // Wedges (u, v, w): (u,v) ∈ ET and (v,w) ∈ ET.
  rec.computed_by.push_back(
      {"W_kt",
       ProjectOp(JoinOp(RenameOp(Scan("ET"), "XA"), RenameOp(Scan("ET"), "XB"),
                        {{"T"}, {"F"}}),
                 {ops::As(Col("XA.F"), "u"), ops::As(Col("XA.T"), "v"),
                  ops::As(Col("XB.T"), "w")})});
  // Triangles: wedges closed by (u,w) ∈ ET — degenerate u = w excluded.
  rec.computed_by.push_back(
      {"T_kt",
       SelectOp(ProjectOp(JoinOp(Scan("W_kt"), RenameOp(Scan("ET"), "XC"),
                                 {{"u", "w"}, {"F", "T"}}),
                          {ops::As(Col("W_kt.u"), "u"),
                           ops::As(Col("W_kt.v"), "v"),
                           ops::As(Col("W_kt.w"), "w")}),
                ex::Ne(Col("u"), Col("w")))});
  // Support per (directed) edge (u,v) = number of closing w's.
  rec.computed_by.push_back(
      {"S_kt", GroupByOp(Scan("T_kt"), {"u", "v"}, {ra::CountStar("c")})});
  // Keep edges whose support is ≥ k-2 (edges without triangles get 0 via
  // the outer join and are removed for k ≥ 3).
  rec.plan = ProjectOp(
      SelectOp(
          LeftOuterJoinOp(Scan("ET"), Scan("S_kt"), {{"F", "T"}, {"u", "v"}}),
          ex::Ge(ra::Call("coalesce", {Col("S_kt.c"), Lit(int64_t{0})}),
                 Lit(int64_t{options.k - 2}))),
      {ops::As(Col("ET.F"), "F"), ops::As(Col("ET.T"), "T"),
       ops::As(Col("ET.ew"), "ew")});
  q.recursive.push_back(std::move(rec));
  q.mode = UnionMode::kUnionByUpdate;
  q.update_keys = {};  // replace the surviving edge set wholesale
  q.ubu_impl = core::UnionByUpdateImpl::kDropAlter;
  q.maxrecursion = options.max_iterations;
  return RunWithPlus(q, catalog, options);
}

Result<WithPlusResult> GraphBisimulation(ra::Catalog& catalog,
                                         const AlgoOptions& options) {
  WithPlusQuery q;
  q.rec_name = "B_bis";
  q.rec_schema =
      Schema{{"ID", ValueType::kInt64}, {"blk", ValueType::kInt64}};
  // Initial partition: by node label, canonicalized to the smallest member.
  q.init.push_back(Subquery{
      ProjectOp(
          JoinOp(Scan("VL"),
                 RenameOp(GroupByOp(Scan("VL"), {"label"},
                                    {ra::MinOf(Col("ID"), "rep")}),
                          "L0", {"l0", "rep"}),
                 {{"label"}, {"l0"}}),
          {ops::As(Col("VL.ID"), "ID"), ops::As(Col("L0.rep"), "blk")}),
      {}});
  Subquery rec;
  // The set of successor blocks per node, folded order-independently into
  // a signature hash (sum over distinct mixed block ids).
  rec.computed_by.push_back(
      {"SS_bis",
       DistinctOp(ProjectOp(JoinOp(Scan("E"), Scan("B_bis"), {{"T"}, {"ID"}}),
                            {ops::As(Col("E.F"), "ID"),
                             ops::As(Col("B_bis.blk"), "sb")}))});
  rec.computed_by.push_back(
      {"Sig_bis",
       GroupByOp(Scan("SS_bis"), {"ID"},
                 {ra::SumOf(ex::Binary(ra::BinaryOp::kMod,
                                       ex::Mul(ex::Add(Col("sb"), Lit(int64_t{
                                                                     1})),
                                               Lit(int64_t{1000003})),
                                       Lit(int64_t{2147483647})),
                            "sh")})});
  // Refined (uncanonicalized) block value: combine own block and the
  // successor-set signature.
  rec.computed_by.push_back(
      {"NB_bis",
       ProjectOp(
           LeftOuterJoinOp(Scan("B_bis"), Scan("Sig_bis"), {{"ID"}, {"ID"}}),
           {ops::As(Col("B_bis.ID"), "ID"),
            ops::As(ex::Binary(
                        ra::BinaryOp::kMod,
                        ex::Add(ex::Mul(Col("B_bis.blk"), Lit(int64_t{65599})),
                                ra::Call("coalesce", {Col("Sig_bis.sh"),
                                                      Lit(int64_t{0})})),
                        Lit(int64_t{4294967291})),
                    "h")})});
  // Canonicalize: block id = smallest member id of the refined class.
  rec.plan = ProjectOp(
      JoinOp(RenameOp(Scan("NB_bis"), "NA"),
             RenameOp(GroupByOp(Scan("NB_bis"), {"h"},
                                {ra::MinOf(Col("ID"), "rep")}),
                      "NR", {"h2", "rep"}),
             {{"h"}, {"h2"}}),
      {ops::As(Col("NA.ID"), "ID"), ops::As(Col("NR.rep"), "blk")});
  q.recursive.push_back(std::move(rec));
  q.mode = UnionMode::kUnionByUpdate;
  q.update_keys = {"ID"};
  q.ubu_impl = options.ubu_impl;
  q.maxrecursion = options.max_iterations;
  return RunWithPlus(q, catalog, options);
}

}  // namespace gpr::algos
