// Extension algorithms completing Table 2: K-truss and Graph-Bisimulation.
#pragma once

#include "algos/common.h"

namespace gpr::algos {

/// K-truss (options.k): iteratively removes (undirected) edges supported
/// by fewer than k-2 triangles. The recursive relation is the surviving
/// symmetric edge set; converges when no edge is removed.
/// Result: ET(F, T, ew) — both directions of every truss edge.
Result<WithPlusResult> KTruss(ra::Catalog& catalog,
                              const AlgoOptions& options = {});

/// Maximum graph bisimulation: partition refinement where two nodes are
/// equivalent iff they carry the same label and their successor sets hit
/// the same blocks. Blocks are canonicalized to the smallest member id, so
/// the fixpoint is exact. Result: B(ID, blk).
Result<WithPlusResult> GraphBisimulation(ra::Catalog& catalog,
                                         const AlgoOptions& options = {});

}  // namespace gpr::algos
