// Iterative value-propagation algorithms: PageRank (with+ and SQL'99
// forms), Random-Walk-with-Restart, SimRank, HITS (Eqs. 9–12).
#include "algos/algos.h"
#include "core/plan.h"

namespace gpr::algos {

namespace ops = ra::ops;
using core::CrossProductOp;
using core::DistinctOp;
using core::GroupByOp;
using core::JoinOp;
using core::MMJoinOp;
using core::MVJoinOp;
using core::PlanPtr;
using core::ProjectOp;
using core::RenameOp;
using core::Scan;
using core::SelectOp;
using core::Subquery;
using core::UnionAllOp;
using core::UnionMode;
using core::WithPlusQuery;
using ra::Col;
using ra::Lit;
using ra::Schema;
using ra::Value;
using ra::ValueType;
namespace ex = ra;

Result<WithPlusResult> PageRank(ra::Catalog& catalog,
                                const AlgoOptions& options) {
  GPR_RETURN_NOT_OK(
      CreateNormalizedEdges(catalog, "E", "E_pr", options.profile));
  GPR_ASSIGN_OR_RETURN(const ra::Table* v, catalog.Get("V"));
  const double n = static_cast<double>(v->NumRows());
  const double c = options.damping;

  WithPlusQuery q;
  q.rec_name = "P";
  q.rec_schema =
      Schema{{"ID", ValueType::kInt64}, {"W", ValueType::kDouble}};
  // Fig 3 line 3: select R.ID, 0.0 from R.
  q.init.push_back(Subquery{
      ProjectOp(Scan("V"),
                {ops::As(Col("ID"), "ID"), ops::As(Lit(0.0), "W")}),
      {}});
  // Fig 3 lines 5–6: select S.T, c*sum(W*ew)+(1-c)/n from P, S
  // where P.ID = S.F group by S.T — which is exactly Eᵀ·P under (+, ×)
  // (Eq. 4), expressed as an MV-join so the CSR SpMV kernel applies,
  // followed by the affine damping transform.
  PlanPtr agg =
      MVJoinOp(Scan("E_pr"), Scan("P"), core::PlusTimes(),
               core::MVOrientation::kTransposed, {}, {"ID", "W"});
  PlanPtr proj = ProjectOp(
      agg, {ops::As(Col("ID"), "ID"),
            ops::As(ex::Add(ex::Mul(Lit(c), Col("vw")), Lit((1.0 - c) / n)),
                    "W")});
  q.recursive.push_back(Subquery{proj, {}});
  q.mode = UnionMode::kUnionByUpdate;
  q.update_keys = {"ID"};  // Fig 3 line 4: union by update ID
  q.ubu_impl = options.ubu_impl;
  if (options.ubu_impl == core::UnionByUpdateImpl::kDropAlter) {
    // Fig 3 with the ID attribute omitted: replace P wholesale — the
    // drop/alter implementation. Nodes with no in-edges drop out of P.
    q.update_keys.clear();
  }
  q.maxrecursion = options.max_iterations > 0 ? options.max_iterations : 15;
  auto result = RunWithPlus(q, catalog, options);
  DropQuietly(catalog, {"E_pr"});
  return result;
}

Result<WithPlusResult> PageRankSql99(ra::Catalog& catalog,
                                     const AlgoOptions& options) {
  GPR_RETURN_NOT_OK(
      CreateNormalizedEdges(catalog, "E", "E_pr99", options.profile));
  GPR_ASSIGN_OR_RETURN(const ra::Table* v, catalog.Get("V"));
  const double n = static_cast<double>(v->NumRows());
  const double c = options.damping;
  const int d = options.max_iterations > 0 ? options.max_iterations : 10;

  // Fig 9: the recursive relation carries the iteration number L because
  // union all cannot update values; partition-by + distinct is emulated by
  // computing the per-(T, L) sums and joining them back onto every row
  // before deduplicating — reproducing the materialization cost of the
  // window-function plan.
  WithPlusQuery q;
  q.rec_name = "P99";
  q.rec_schema = Schema{{"ID", ValueType::kInt64},
                        {"W", ValueType::kDouble},
                        {"L", ValueType::kInt64}};
  q.init.push_back(Subquery{
      ProjectOp(Scan("V"), {ops::As(Col("ID"), "ID"), ops::As(Lit(0.0), "W"),
                            ops::As(Lit(int64_t{0}), "L")}),
      {}});
  Subquery rec;
  // ML(ml): the current generation number.
  rec.computed_by.push_back(
      {"ML99", GroupByOp(Scan("P99"), {}, {ra::MaxOf(Col("L"), "ml")})});
  // CUR99: the working table — PostgreSQL's recursive term sees only the
  // tuples produced by the previous iteration, bounded by L < d.
  rec.computed_by.push_back(
      {"CUR99",
       ProjectOp(SelectOp(CrossProductOp(Scan("P99"), Scan("ML99")),
                          ex::And(ex::Eq(Col("P99.L"), Col("ML99.ml")),
                                  ex::Lt(Col("P99.L"), Lit(int64_t{d})))),
                 {ops::As(Col("P99.ID"), "ID"), ops::As(Col("P99.W"), "W"),
                  ops::As(Col("P99.L"), "L")})});
  // J99: working table ⋈ E.
  rec.computed_by.push_back(
      {"J99",
       ProjectOp(JoinOp(Scan("CUR99"), Scan("E_pr99"), {{"ID"}, {"F"}}),
                 {ops::As(Col("E_pr99.T"), "T"),
                  ops::As(Col("CUR99.W"), "W"),
                  ops::As(Col("E_pr99.ew"), "ew"),
                  ops::As(Col("CUR99.L"), "L")})});
  // S99: the partition sums over (T, L).
  rec.computed_by.push_back(
      {"S99", GroupByOp(Scan("J99"), {"T", "L"},
                        {ra::SumOf(ex::Mul(Col("W"), Col("ew")), "s")})});
  // Every J99 row gets its partition's aggregate, then distinct collapses
  // the duplicates — the Fig 9 plan shape.
  PlanPtr per_row =
      JoinOp(RenameOp(Scan("J99"), "JA"), RenameOp(Scan("S99"), "SB"),
             {{"T", "L"}, {"T", "L"}});
  rec.plan = DistinctOp(ProjectOp(
      per_row,
      {ops::As(Col("JA.T"), "ID"),
       ops::As(ex::Add(ex::Mul(Lit(c), Col("SB.s")), Lit((1.0 - c) / n)),
               "W"),
       ops::As(ex::Add(Col("JA.L"), Lit(int64_t{1})), "L")}));
  q.recursive.push_back(std::move(rec));
  q.mode = UnionMode::kUnionAll;
  q.maxrecursion = d + 1;
  auto result = RunWithPlus(q, catalog, options);
  DropQuietly(catalog, {"E_pr99"});
  return result;
}

Result<WithPlusResult> RandomWalkWithRestart(ra::Catalog& catalog,
                                             const AlgoOptions& options) {
  GPR_RETURN_NOT_OK(
      CreateNormalizedEdges(catalog, "E", "E_rwr", options.profile));
  // Restart vector: probability 1 at the source.
  {
    ra::Table restart("P_restart", Schema{{"ID", ValueType::kInt64},
                                          {"vw", ValueType::kDouble}});
    GPR_ASSIGN_OR_RETURN(const ra::Table* v, catalog.Get("V"));
    GPR_ASSIGN_OR_RETURN(size_t id_col, v->schema().Resolve("ID"));
    for (const auto& row : v->rows()) {
      const double p = row[id_col].ToInt64() == options.source ? 1.0 : 0.0;
      restart.AddRow({row[id_col], Value(p)});
    }
    GPR_RETURN_NOT_OK(catalog.CreateTempTable("P_restart", restart.schema()));
    GPR_RETURN_NOT_OK(catalog.ReplaceTable("P_restart", std::move(restart)));
  }
  const double c = 1.0 - options.restart_prob;

  WithPlusQuery q;
  q.rec_name = "R_rwr";
  q.rec_schema =
      Schema{{"ID", ValueType::kInt64}, {"W", ValueType::kDouble}};
  q.init.push_back(Subquery{
      ProjectOp(Scan("P_restart"),
                {ops::As(Col("ID"), "ID"),
                 ops::As(ex::Mul(Col("vw"), Lit(1.0)), "W")}),
      {}});
  // Eq. 10: W ← c·sum(vw·ew) + (1-c)·P.vw.
  PlanPtr agg = GroupByOp(
      JoinOp(Scan("E_rwr"), Scan("R_rwr"), {{"F"}, {"ID"}}), {"E_rwr.T"},
      {ra::SumOf(ex::Mul(Col("E_rwr.ew"), Col("R_rwr.W")), "s")});
  PlanPtr f2 = ProjectOp(
      agg, {ops::As(Col("T"), "ID"),
            ops::As(ex::Mul(Lit(c), Col("s")), "f2")},
      "RWRA");
  PlanPtr with_restart = ProjectOp(
      JoinOp(f2, Scan("P_restart"), {{"ID"}, {"ID"}}),
      {ops::As(Col("RWRA.ID"), "ID"),
       ops::As(ex::Add(Col("RWRA.f2"),
                       ex::Mul(Lit(1.0 - c), Col("P_restart.vw"))),
               "W")});
  q.recursive.push_back(Subquery{with_restart, {}});
  q.mode = UnionMode::kUnionByUpdate;
  q.update_keys = {"ID"};
  q.ubu_impl = options.ubu_impl;
  q.maxrecursion = options.max_iterations > 0 ? options.max_iterations : 15;
  auto result = RunWithPlus(q, catalog, options);
  DropQuietly(catalog, {"E_rwr", "P_restart"});
  return result;
}

Result<WithPlusResult> SimRank(ra::Catalog& catalog,
                               const AlgoOptions& options) {
  // In-normalized adjacency W (ew = 1/indeg(T)) and the identity relation I.
  GPR_RETURN_NOT_OK(CreateNormalizedEdges(catalog, "E", "W_sim",
                                          options.profile,
                                          /*by_from=*/false));
  {
    GPR_ASSIGN_OR_RETURN(const ra::Table* v, catalog.Get("V"));
    GPR_ASSIGN_OR_RETURN(size_t id_col, v->schema().Resolve("ID"));
    ra::Table ident("I_sim", Schema{{"F", ValueType::kInt64},
                                    {"T", ValueType::kInt64},
                                    {"ew", ValueType::kDouble}});
    for (const auto& row : v->rows()) {
      ident.AddRow({row[id_col], row[id_col], Value(1.0)});
    }
    GPR_RETURN_NOT_OK(catalog.CreateTempTable("I_sim", ident.schema()));
    GPR_RETURN_NOT_OK(catalog.ReplaceTable("I_sim", std::move(ident)));
  }
  const double c = options.simrank_c;

  WithPlusQuery q;
  q.rec_name = "K";
  q.rec_schema = Schema{{"F", ValueType::kInt64},
                        {"T", ValueType::kInt64},
                        {"ew", ValueType::kDouble}};
  q.init.push_back(Subquery{Scan("I_sim"), {}});
  Subquery rec;
  // Eq. 11: R1 = Wᵀ·K (treat W transposed via column bindings).
  rec.computed_by.push_back(
      {"R1_sim",
       MMJoinOp(Scan("W_sim"), Scan("K"), core::PlusTimes(),
                core::MatrixCols{"T", "F", "ew"}, core::MatrixCols{})});
  // R2 = R1·W.
  rec.computed_by.push_back(
      {"R2_sim",
       MMJoinOp(Scan("R1_sim"), Scan("W_sim"), core::PlusTimes())});
  // K ← max((1-c)·R2, I) entrywise.
  rec.plan = ProjectOp(
      GroupByOp(
          UnionAllOp(ProjectOp(Scan("R2_sim"),
                               {ops::As(Col("F"), "F"), ops::As(Col("T"), "T"),
                                ops::As(ex::Mul(Lit(1.0 - c), Col("ew")),
                                        "ew")}),
                     Scan("I_sim")),
          {"F", "T"}, {ra::MaxOf(Col("ew"), "m")}),
      {ops::As(Col("F"), "F"), ops::As(Col("T"), "T"),
       ops::As(Col("m"), "ew")});
  q.recursive.push_back(std::move(rec));
  q.mode = UnionMode::kUnionByUpdate;
  q.update_keys = {};  // replace K wholesale each iteration
  q.ubu_impl = core::UnionByUpdateImpl::kDropAlter;
  q.maxrecursion = options.max_iterations > 0 ? options.max_iterations : 5;
  auto result = RunWithPlus(q, catalog, options);
  DropQuietly(catalog, {"W_sim", "I_sim"});
  return result;
}

Result<WithPlusResult> Hits(ra::Catalog& catalog,
                            const AlgoOptions& options) {
  WithPlusQuery q;
  q.rec_name = "H";
  q.rec_schema = Schema{{"ID", ValueType::kInt64},
                        {"h", ValueType::kDouble},
                        {"a", ValueType::kDouble}};
  // Fig 6 line 3: select ID, 1.0, 1.0 from V.
  q.init.push_back(Subquery{
      ProjectOp(Scan("V"), {ops::As(Col("ID"), "ID"), ops::As(Lit(1.0), "h"),
                            ops::As(Lit(1.0), "a")}),
      {}});
  Subquery rec;
  // H_h: previous-iteration hub values as a vector.
  rec.computed_by.push_back(
      {"H_h", ProjectOp(Scan("H"), {ops::As(Col("ID"), "ID"),
                                    ops::As(Col("h"), "vw")})});
  // R_a = Eᵀ·h  (authority of t sums hub values of its in-neighbours).
  rec.computed_by.push_back(
      {"R_a", MVJoinOp(Scan("E"), Scan("H_h"), core::PlusTimes(),
                       core::MVOrientation::kTransposed)});
  // R_h = E·a  (hub of f sums fresh authorities of its out-neighbours).
  rec.computed_by.push_back(
      {"R_h", MVJoinOp(Scan("E"), Scan("R_a"), core::PlusTimes(),
                       core::MVOrientation::kStandard)});
  // R_ha: nodes carrying both values.
  rec.computed_by.push_back(
      {"R_ha",
       ProjectOp(JoinOp(Scan("R_h"), Scan("R_a"), {{"ID"}, {"ID"}}),
                 {ops::As(Col("R_h.ID"), "ID"), ops::As(Col("R_h.vw"), "h"),
                  ops::As(Col("R_a.vw"), "a")})});
  // R_n: joint normalizers (a single-row relation).
  rec.computed_by.push_back(
      {"R_n", GroupByOp(Scan("R_ha"), {},
                        {ra::SumOf(ex::Mul(Col("h"), Col("h")), "nh"),
                         ra::SumOf(ex::Mul(Col("a"), Col("a")), "na")})});
  // select ID, h/sqrt(nh), a/sqrt(na) from R_ha, R_n.
  rec.plan = ProjectOp(
      CrossProductOp(Scan("R_ha"), Scan("R_n")),
      {ops::As(Col("ID"), "ID"),
       ops::As(ex::Div(Col("h"), ra::Call("sqrt", {Col("nh")})), "h"),
       ops::As(ex::Div(Col("a"), ra::Call("sqrt", {Col("na")})), "a")});
  q.recursive.push_back(std::move(rec));
  q.mode = UnionMode::kUnionByUpdate;
  q.update_keys = {"ID"};
  q.ubu_impl = options.ubu_impl;
  q.maxrecursion = options.max_iterations > 0 ? options.max_iterations : 15;
  return RunWithPlus(q, catalog, options);
}

}  // namespace gpr::algos
