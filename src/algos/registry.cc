#include "algos/registry.h"

#include "algos/extensions.h"

#include "util/string_util.h"

namespace gpr::algos {

const std::vector<AlgoEntry>& Registry() {
  static const std::vector<AlgoEntry> kRegistry = {
      {"TC", "TC", "-", true, false, true, TransitiveClosure},
      {"BFS", "BFS", "max", true, false, false, Bfs},
      {"Connected-Component", "WCC", "min", true, false, false, Wcc},
      {"Bellman-Ford", "SSSP", "min", true, false, false, SsspBellmanFord},
      {"Floyd-Warshall", "APSP", "min", false, false, true,
       ApspFloydWarshall},
      {"APSP-linear", "APSPL", "min", true, false, true, ApspLinear},
      {"PageRank", "PR", "sum", true, false, false, PageRank},
      {"Random-Walk-with-Restart", "RWR", "sum", true, false, false,
       RandomWalkWithRestart},
      {"SimRank", "SR", "sum", false, false, true, SimRank},
      {"HITS", "HITS", "sum", false, false, false, Hits},
      {"TopoSort", "TS", "-", false, true, false, TopoSort},
      {"Keyword-Search", "KS", "max", true, false, false, KeywordSearch},
      {"Label-Propagation", "LP", "count", true, false, false,
       LabelPropagation},
      {"Maximal-Independent-Set", "MIS", "max/min", false, false, false,
       MaximalIndependentSet},
      {"Maximal-Node-Matching", "MNM", "max/min", false, false, false,
       MaximalNodeMatching},
      {"Diameter-Estimation", "DE", "max", true, false, false,
       DiameterEstimation},
      {"Markov-Clustering", "MCL", "sum", false, false, true,
       MarkovClustering},
      {"K-core", "KC", "count", false, false, false, KCore},
      {"K-truss", "KT", "count", false, false, false, KTruss},
      {"Graph-Bisimulation", "GB", "-", false, false, false,
       GraphBisimulation},
  };
  return kRegistry;
}

std::vector<AlgoEntry> EvaluationSet(bool include_toposort) {
  std::vector<std::string> order = {"SSSP", "WCC", "PR",  "HITS", "KC",
                                    "MIS",  "LP",  "MNM", "KS"};
  if (include_toposort) order.insert(order.begin() + 4, "TS");
  std::vector<AlgoEntry> out;
  for (const auto& a : order) {
    auto entry = AlgoByAbbrev(a);
    GPR_CHECK(entry.ok());
    out.push_back(*entry);
  }
  return out;
}

Result<AlgoEntry> AlgoByAbbrev(const std::string& abbrev) {
  const std::string want = ToUpper(abbrev);
  for (const auto& entry : Registry()) {
    if (ToUpper(entry.abbrev) == want) return entry;
  }
  return Status::NotFound("no algorithm with abbreviation '" + abbrev + "'");
}

}  // namespace gpr::algos
