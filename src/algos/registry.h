// Algorithm registry: Table 2 metadata plus uniform runners, used by the
// benchmark harnesses (Figs 7–8) and the examples.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "algos/algos.h"

namespace gpr::algos {

/// One row of Table 2 with an attached runner.
struct AlgoEntry {
  std::string name;      ///< paper name ("PageRank")
  std::string abbrev;    ///< evaluation abbreviation ("PR")
  std::string aggregation;  ///< aggregate used ("sum", "min/max", "-")
  bool linear = true;    ///< linear recursion suffices
  bool needs_dag = false;    ///< only meaningful on DAGs (TopoSort)
  bool dense_output = false; ///< output grows ~n² (SimRank, APSP, MCL, TC)
  std::function<Result<WithPlusResult>(ra::Catalog&, const AlgoOptions&)>
      run;
};

/// All registered algorithms, Table 2 order.
const std::vector<AlgoEntry>& Registry();

/// The 9/10 algorithms of the paper's Section 7 evaluation, in figure
/// order: SSSP, WCC, PR, HITS, TS, KC, MIS, LP, MNM, KS.
/// `include_toposort` = false gives the undirected-graph set (Fig 7).
std::vector<AlgoEntry> EvaluationSet(bool include_toposort);

/// Lookup by abbreviation; case-insensitive.
Result<AlgoEntry> AlgoByAbbrev(const std::string& abbrev);

}  // namespace gpr::algos
