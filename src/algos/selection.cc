// Anti-join / selection driven algorithms: TopoSort, K-core, MIS,
// Label-Propagation, Maximal-Node-Matching, Keyword-Search,
// Diameter-Estimation, Markov-Clustering.
#include "algos/algos.h"
#include "core/plan.h"

namespace gpr::algos {

namespace ops = ra::ops;
using core::AntiJoinOp;
using core::CrossProductOp;
using core::DistinctOp;
using core::GroupByOp;
using core::JoinOp;
using core::LeftOuterJoinOp;
using core::MMJoinOp;
using core::PlanPtr;
using core::ProjectOp;
using core::RenameOp;
using core::Scan;
using core::SelectOp;
using core::Subquery;
using core::UnionAllOp;
using core::UnionMode;
using core::WithPlusQuery;
using ra::Col;
using ra::Lit;
using ra::Schema;
using ra::Value;
using ra::ValueType;
namespace ex = ra;

Result<WithPlusResult> TopoSort(ra::Catalog& catalog,
                                const AlgoOptions& options) {
  const auto aj = options.anti_impl;
  WithPlusQuery q;
  q.rec_name = "Topo";
  q.rec_schema =
      Schema{{"ID", ValueType::kInt64}, {"L", ValueType::kInt64}};
  // Fig 5 lines 3–4: nodes with no incoming edges, level 0.
  q.init.push_back(Subquery{
      ProjectOp(AntiJoinOp(Scan("V"), Scan("E"), {{"ID"}, {"T"}}, aj),
                {ops::As(Col("ID"), "ID"), ops::As(Lit(int64_t{0}), "L")}),
      {}});
  Subquery rec;
  // L_n: max level so far plus one (Fig 5 line 8).
  rec.computed_by.push_back(
      {"L_n", ProjectOp(GroupByOp(Scan("Topo"), {},
                                  {ra::MaxOf(Col("L"), "m")}),
                        {ops::As(ex::Add(Col("m"), Lit(int64_t{1})), "L")})});
  // V_1: nodes not yet sorted (lines 9–11). Only ID is kept: downstream
  // reads nothing else (GPR-W315 flags the vw column otherwise).
  rec.computed_by.push_back(
      {"V_1",
       ProjectOp(AntiJoinOp(Scan("V"), Scan("Topo"), {{"ID"}, {"ID"}}, aj),
                 {ops::As(Col("ID"), "ID")})});
  // E_1: targets of edges leaving unsorted nodes (lines 12–14) — the
  // anti-join below only probes T, so the source column is dropped.
  rec.computed_by.push_back(
      {"E_1", ProjectOp(JoinOp(Scan("V_1"), Scan("E"), {{"ID"}, {"F"}}),
                        {ops::As(Col("E.T"), "T")})});
  // T_n: unsorted nodes with no unsorted predecessor × L_n (lines 15–17).
  rec.plan = ProjectOp(
      CrossProductOp(AntiJoinOp(Scan("V_1"), Scan("E_1"), {{"ID"}, {"T"}}, aj),
                     Scan("L_n")),
      {ops::As(Col("ID"), "ID"), ops::As(Col("L"), "L")});
  q.recursive.push_back(std::move(rec));
  q.mode = UnionMode::kUnionAll;
  q.maxrecursion = options.max_iterations;
  return RunWithPlus(q, catalog, options);
}

Result<WithPlusResult> KCore(ra::Catalog& catalog,
                             const AlgoOptions& options) {
  WithPlusQuery q;
  q.rec_name = "EC";
  q.rec_schema = Schema{{"F", ValueType::kInt64},
                        {"T", ValueType::kInt64},
                        {"ew", ValueType::kDouble}};
  q.init.push_back(Subquery{
      ProjectOp(Scan("E"), {ops::As(Col("F"), "F"), ops::As(Col("T"), "T"),
                            ops::As(ex::Mul(Col("ew"), Lit(1.0)), "ew")}),
      {}});
  Subquery rec;
  // Deg: total degree (in + out) of every endpoint still in the core.
  rec.computed_by.push_back(
      {"Deg_kc",
       GroupByOp(UnionAllOp(ProjectOp(Scan("EC"), {ops::As(Col("F"), "ID")}),
                            ProjectOp(Scan("EC"), {ops::As(Col("T"), "ID")})),
                 {"ID"}, {ra::CountStar("d")})});
  // V_ok: endpoints whose degree is ≥ k.
  rec.computed_by.push_back(
      {"V_kc", ProjectOp(SelectOp(Scan("Deg_kc"),
                                  ex::Ge(Col("d"), Lit(int64_t{options.k}))),
                         {ops::As(Col("ID"), "ID")})});
  // Keep edges whose both endpoints survive.
  PlanPtr from_ok =
      ProjectOp(JoinOp(Scan("EC"), Scan("V_kc"), {{"F"}, {"ID"}}),
                {ops::As(Col("EC.F"), "F"), ops::As(Col("EC.T"), "T"),
                 ops::As(Col("EC.ew"), "ew")},
                "EV_kc");
  rec.plan =
      ProjectOp(JoinOp(from_ok, RenameOp(Scan("V_kc"), "V_kc2"),
                       {{"T"}, {"ID"}}),
                {ops::As(Col("EV_kc.F"), "F"), ops::As(Col("EV_kc.T"), "T"),
                 ops::As(Col("EV_kc.ew"), "ew")});
  q.recursive.push_back(std::move(rec));
  q.mode = UnionMode::kUnionByUpdate;
  q.update_keys = {};  // replace: E' is recomputed wholesale
  q.ubu_impl = core::UnionByUpdateImpl::kDropAlter;
  q.maxrecursion = options.max_iterations;
  return RunWithPlus(q, catalog, options);
}

Result<WithPlusResult> MaximalIndependentSet(ra::Catalog& catalog,
                                             const AlgoOptions& options) {
  WithPlusQuery q;
  q.rec_name = "S_mis";
  q.rec_schema =
      Schema{{"ID", ValueType::kInt64}, {"status", ValueType::kInt64}};
  q.init.push_back(Subquery{
      ProjectOp(Scan("V"), {ops::As(Col("ID"), "ID"),
                            ops::As(Lit(int64_t{0}), "status")}),
      {}});
  Subquery rec;
  // Rv: undecided nodes.
  rec.computed_by.push_back(
      {"Rv_mis",
       ProjectOp(SelectOp(Scan("S_mis"), ex::Eq(Col("status"), Lit(0))),
                 {ops::As(Col("ID"), "ID")})});
  // Pr: a fresh random priority per undecided node (step 1 of [40]).
  rec.computed_by.push_back(
      {"Pr_mis", ProjectOp(Scan("Rv_mis"),
                           {ops::As(Col("ID"), "ID"),
                            ops::As(ra::Call("rand", {}), "r")})});
  // EJ: edges whose both endpoints are undecided, with their priorities.
  PlanPtr half =
      ProjectOp(JoinOp(Scan("E"), Scan("Pr_mis"), {{"F"}, {"ID"}}),
                {ops::As(Col("E.F"), "F"), ops::As(Col("E.T"), "T"),
                 ops::As(Col("Pr_mis.r"), "rF")},
                "EJ1_mis");
  rec.computed_by.push_back(
      {"EJ_mis",
       ProjectOp(JoinOp(half, RenameOp(Scan("Pr_mis"), "Pr2_mis"),
                        {{"T"}, {"ID"}}),
                 {ops::As(Col("EJ1_mis.F"), "F"),
                  ops::As(Col("EJ1_mis.T"), "T"),
                  ops::As(Col("EJ1_mis.rF"), "rF"),
                  ops::As(Col("Pr2_mis.r"), "rT")})});
  // Mn: the smallest neighbour priority per undecided node (undirected).
  rec.computed_by.push_back(
      {"Mn_mis",
       GroupByOp(
           UnionAllOp(ProjectOp(Scan("EJ_mis"), {ops::As(Col("F"), "ID"),
                                                 ops::As(Col("rT"), "nr")}),
                      ProjectOp(Scan("EJ_mis"), {ops::As(Col("T"), "ID"),
                                                 ops::As(Col("rF"), "nr")})),
           {"ID"}, {ra::MinOf(Col("nr"), "mn")})});
  // Wn: winners — strictly smaller than every undecided neighbour, or
  // isolated (step 2).
  rec.computed_by.push_back(
      {"Wn_mis",
       ProjectOp(
           SelectOp(LeftOuterJoinOp(Scan("Pr_mis"), Scan("Mn_mis"),
                                    {{"ID"}, {"ID"}}),
                    ex::Or(ra::IsNull(Col("Mn_mis.mn")),
                           ex::Lt(Col("Pr_mis.r"), Col("Mn_mis.mn")))),
           {ops::As(Col("Pr_mis.ID"), "ID")})});
  // Rm: undecided neighbours of winners (step 3).
  rec.computed_by.push_back(
      {"Rm_mis",
       DistinctOp(UnionAllOp(
           ProjectOp(JoinOp(Scan("EJ_mis"), Scan("Wn_mis"), {{"F"}, {"ID"}}),
                     {ops::As(Col("EJ_mis.T"), "ID")}),
           ProjectOp(JoinOp(RenameOp(Scan("EJ_mis"), "EJ2_mis"),
                            RenameOp(Scan("Wn_mis"), "Wn2_mis"),
                            {{"T"}, {"ID"}}),
                     {ops::As(Col("EJ2_mis.F"), "ID")})))});
  rec.plan = UnionAllOp(
      ProjectOp(Scan("Wn_mis"), {ops::As(Col("ID"), "ID"),
                                 ops::As(Lit(int64_t{1}), "status")}),
      ProjectOp(AntiJoinOp(Scan("Rm_mis"), Scan("Wn_mis"), {{"ID"}, {"ID"}},
                           options.anti_impl),
                {ops::As(Col("ID"), "ID"),
                 ops::As(Lit(int64_t{2}), "status")}));
  q.recursive.push_back(std::move(rec));
  q.mode = UnionMode::kUnionByUpdate;
  q.update_keys = {"ID"};
  q.ubu_impl = options.ubu_impl;
  q.maxrecursion = options.max_iterations;
  return RunWithPlus(q, catalog, options);
}

Result<WithPlusResult> LabelPropagation(ra::Catalog& catalog,
                                        const AlgoOptions& options) {
  WithPlusQuery q;
  q.rec_name = "L_lp";
  q.rec_schema =
      Schema{{"ID", ValueType::kInt64}, {"label", ValueType::kInt64}};
  q.init.push_back(Subquery{
      ProjectOp(Scan("VL"), {ops::As(Col("ID"), "ID"),
                             ops::As(Col("label"), "label")}),
      {}});
  Subquery rec;
  // C: per (target, label) counts over in-neighbours.
  rec.computed_by.push_back(
      {"C_lp", GroupByOp(JoinOp(Scan("E"), Scan("L_lp"), {{"F"}, {"ID"}}),
                         {"E.T", "L_lp.label"}, {ra::CountStar("c")})});
  // Mx: the maximum count per target.
  rec.computed_by.push_back(
      {"Mx_lp", GroupByOp(Scan("C_lp"), {"T"},
                          {ra::MaxOf(Col("c"), "mc")})});
  // New label: smallest label achieving the maximum count.
  rec.plan = ProjectOp(
      GroupByOp(JoinOp(RenameOp(Scan("C_lp"), "CA"),
                       RenameOp(Scan("Mx_lp"), "MB"), {{"T"}, {"T"}},
                       ex::Eq(Col("CA.c"), Col("MB.mc"))),
                {"CA.T"}, {ra::MinOf(Col("CA.label"), "nl")}),
      {ops::As(Col("T"), "ID"), ops::As(Col("nl"), "label")});
  q.recursive.push_back(std::move(rec));
  q.mode = UnionMode::kUnionByUpdate;
  q.update_keys = {"ID"};
  q.ubu_impl = options.ubu_impl;
  q.maxrecursion = options.max_iterations > 0 ? options.max_iterations : 15;
  return RunWithPlus(q, catalog, options);
}

Result<WithPlusResult> MaximalNodeMatching(ra::Catalog& catalog,
                                           const AlgoOptions& options) {
  // Undirected edge view, built once outside the recursion.
  {
    GPR_ASSIGN_OR_RETURN(const ra::Table* e, catalog.Get("E"));
    GPR_ASSIGN_OR_RETURN(size_t f, e->schema().Resolve("F"));
    GPR_ASSIGN_OR_RETURN(size_t t, e->schema().Resolve("T"));
    ra::Table eu("EU_mnm",
                 Schema{{"F", ValueType::kInt64}, {"T", ValueType::kInt64}});
    eu.Reserve(2 * e->NumRows());
    for (const auto& row : e->rows()) {
      eu.AddRow({row[f], row[t]});
      eu.AddRow({row[t], row[f]});
    }
    GPR_RETURN_NOT_OK(catalog.CreateTempTable("EU_mnm", eu.schema()));
    GPR_RETURN_NOT_OK(catalog.ReplaceTable("EU_mnm", std::move(eu)));
  }
  WithPlusQuery q;
  q.rec_name = "M_mnm";
  q.rec_schema =
      Schema{{"ID", ValueType::kInt64}, {"mate", ValueType::kInt64}};
  q.init.push_back(Subquery{
      ProjectOp(Scan("V"), {ops::As(Col("ID"), "ID"),
                            ops::As(Lit(int64_t{-1}), "mate")}),
      {}});
  Subquery rec;
  // Rv: unmatched nodes.
  rec.computed_by.push_back(
      {"Rv_mnm",
       ProjectOp(SelectOp(Scan("M_mnm"), ex::Eq(Col("mate"), Lit(-1))),
                 {ops::As(Col("ID"), "ID")})});
  // Remaining undirected edges, with the target's node weight attached.
  PlanPtr e1 =
      ProjectOp(JoinOp(Scan("EU_mnm"), Scan("Rv_mnm"), {{"F"}, {"ID"}}),
                {ops::As(Col("EU_mnm.F"), "F"), ops::As(Col("EU_mnm.T"), "T")},
                "E1_mnm");
  PlanPtr e2 =
      ProjectOp(JoinOp(e1, RenameOp(Scan("Rv_mnm"), "Rv2_mnm"),
                       {{"T"}, {"ID"}}),
                {ops::As(Col("E1_mnm.F"), "F"), ops::As(Col("E1_mnm.T"), "T")},
                "E2_mnm");
  rec.computed_by.push_back(
      {"EW_mnm",
       ProjectOp(JoinOp(e2, RenameOp(Scan("V"), "Vw_mnm"), {{"T"}, {"ID"}}),
                 {ops::As(Col("E2_mnm.F"), "F"),
                  ops::As(Col("E2_mnm.T"), "T"),
                  ops::As(Col("Vw_mnm.vw"), "w")})});
  // Each node's best remaining neighbour: max weight, ties to larger id.
  rec.computed_by.push_back(
      {"Bw_mnm", GroupByOp(Scan("EW_mnm"), {"F"},
                           {ra::MaxOf(Col("w"), "bw")})});
  rec.computed_by.push_back(
      {"Ch_mnm",
       ProjectOp(GroupByOp(JoinOp(RenameOp(Scan("EW_mnm"), "WA"),
                                  RenameOp(Scan("Bw_mnm"), "CB"),
                                  {{"F"}, {"F"}},
                                  ex::Eq(Col("WA.w"), Col("CB.bw"))),
                           {"WA.F"}, {ra::MaxOf(Col("WA.T"), "mate")}),
                 {ops::As(Col("F"), "ID"), ops::As(Col("mate"), "mate")})});
  // Mutual choices form matches; both orientations update their tuple.
  rec.plan = ProjectOp(
      JoinOp(RenameOp(Scan("Ch_mnm"), "XA"), RenameOp(Scan("Ch_mnm"), "XB"),
             {{"ID", "mate"}, {"mate", "ID"}}),
      {ops::As(Col("XA.ID"), "ID"), ops::As(Col("XA.mate"), "mate")});
  q.recursive.push_back(std::move(rec));
  q.mode = UnionMode::kUnionByUpdate;
  q.update_keys = {"ID"};
  q.ubu_impl = options.ubu_impl;
  q.maxrecursion = options.max_iterations;
  auto result = RunWithPlus(q, catalog, options);
  DropQuietly(catalog, {"EU_mnm"});
  return result;
}

Result<WithPlusResult> KeywordSearch(ra::Catalog& catalog,
                                     const AlgoOptions& options) {
  const size_t m = options.keywords.size();
  if (m == 0 || m > 8) {
    return Status::InvalidArgument(
        "Keyword-Search expects between 1 and 8 keywords");
  }
  GPR_RETURN_NOT_OK(
      CreateLoopedEdges(catalog, "E", "V", "E_ks", /*loop_weight=*/1.0));
  WithPlusQuery q;
  q.rec_name = "K_ks";
  std::vector<ra::Column> cols{{"ID", ValueType::kInt64}};
  for (size_t i = 0; i < m; ++i) {
    cols.push_back({"k" + std::to_string(i + 1), ValueType::kInt64});
  }
  q.rec_schema = Schema(cols);
  // Indicator vector: k_i = 1 iff the node's label is keyword i.
  std::vector<ops::ProjectItem> init_items{ops::As(Col("ID"), "ID")};
  for (size_t i = 0; i < m; ++i) {
    init_items.push_back(ops::As(
        ex::Eq(Col("label"), Lit(options.keywords[i])),
        "k" + std::to_string(i + 1)));
  }
  q.init.push_back(Subquery{ProjectOp(Scan("VL"), init_items), {}});
  // Each iteration ORs (max) the indicators of out-neighbours; self-loops
  // keep a node's own bits.
  std::vector<ra::AggSpec> aggs;
  std::vector<ops::ProjectItem> out_items{ops::As(Col("F"), "ID")};
  for (size_t i = 0; i < m; ++i) {
    const std::string k = "k" + std::to_string(i + 1);
    aggs.push_back(ra::MaxOf(Col("K_ks." + k), k));
    out_items.push_back(ops::As(Col(k), k));
  }
  q.recursive.push_back(Subquery{
      ProjectOp(GroupByOp(JoinOp(Scan("E_ks"), Scan("K_ks"), {{"T"}, {"ID"}}),
                          {"E_ks.F"}, aggs),
                out_items),
      {}});
  q.mode = UnionMode::kUnionByUpdate;
  q.update_keys = {"ID"};
  q.ubu_impl = options.ubu_impl;
  q.maxrecursion =
      options.max_iterations > 0 ? options.max_iterations : options.depth;
  auto result = RunWithPlus(q, catalog, options);
  DropQuietly(catalog, {"E_ks"});
  return result;
}

Result<WithPlusResult> DiameterEstimation(ra::Catalog& catalog,
                                          const AlgoOptions& options) {
  // HADI-flavoured: reachability indicators from 8 sampled seeds,
  // propagated until no indicator changes; the iteration count bounds the
  // diameter from below.
  GPR_ASSIGN_OR_RETURN(const ra::Table* v, catalog.Get("V"));
  const size_t n = v->NumRows();
  if (n == 0) return Status::InvalidArgument("graph is empty");
  Xoshiro256 rng(options.seed);
  const size_t m = std::min<size_t>(8, n);
  std::vector<int64_t> seeds;
  for (size_t i = 0; i < m; ++i) {
    seeds.push_back(static_cast<int64_t>(rng.NextBounded(n)));
  }
  GPR_RETURN_NOT_OK(
      CreateLoopedEdges(catalog, "E", "V", "E_diam", /*loop_weight=*/1.0));
  WithPlusQuery q;
  q.rec_name = "R_diam";
  std::vector<ra::Column> cols{{"ID", ValueType::kInt64}};
  for (size_t i = 0; i < m; ++i) {
    cols.push_back({"r" + std::to_string(i + 1), ValueType::kInt64});
  }
  q.rec_schema = Schema(cols);
  std::vector<ops::ProjectItem> init_items{ops::As(Col("ID"), "ID")};
  for (size_t i = 0; i < m; ++i) {
    init_items.push_back(
        ops::As(ex::Eq(Col("ID"), Lit(seeds[i])), "r" + std::to_string(i + 1)));
  }
  q.init.push_back(Subquery{ProjectOp(Scan("V"), init_items), {}});
  // Propagate along edges: a node is reached once any in-neighbour is.
  std::vector<ra::AggSpec> aggs;
  std::vector<ops::ProjectItem> out_items{ops::As(Col("T"), "ID")};
  for (size_t i = 0; i < m; ++i) {
    const std::string r = "r" + std::to_string(i + 1);
    aggs.push_back(ra::MaxOf(Col("R_diam." + r), r));
    out_items.push_back(ops::As(Col(r), r));
  }
  q.recursive.push_back(Subquery{
      ProjectOp(
          GroupByOp(JoinOp(Scan("E_diam"), Scan("R_diam"), {{"F"}, {"ID"}}),
                    {"E_diam.T"}, aggs),
          out_items),
      {}});
  q.mode = UnionMode::kUnionByUpdate;
  q.update_keys = {"ID"};
  q.ubu_impl = options.ubu_impl;
  q.maxrecursion = options.max_iterations;
  auto result = RunWithPlus(q, catalog, options);
  DropQuietly(catalog, {"E_diam"});
  return result;
}

Result<WithPlusResult> MarkovClustering(ra::Catalog& catalog,
                                        const AlgoOptions& options) {
  // Column-stochastic flow matrix with self-loops, then iterate
  // expansion (M·M) and inflation (entrywise square + re-normalization),
  // pruning entries below 1e-4 to keep the relation sparse.
  GPR_RETURN_NOT_OK(
      CreateLoopedEdges(catalog, "E", "V", "E_mcl_raw", /*loop_weight=*/1.0));
  GPR_RETURN_NOT_OK(CreateNormalizedEdges(catalog, "E_mcl_raw", "E_mcl",
                                          options.profile, /*by_from=*/false));
  WithPlusQuery q;
  q.rec_name = "M_mcl";
  q.rec_schema = Schema{{"F", ValueType::kInt64},
                        {"T", ValueType::kInt64},
                        {"ew", ValueType::kDouble}};
  q.init.push_back(Subquery{Scan("E_mcl"), {}});
  Subquery rec;
  // Expansion.
  rec.computed_by.push_back(
      {"X_mcl", MMJoinOp(Scan("M_mcl"), Scan("M_mcl"), core::PlusTimes())});
  // Inflation: square entries, then normalize per column.
  rec.computed_by.push_back(
      {"Q_mcl", ProjectOp(Scan("X_mcl"),
                          {ops::As(Col("F"), "F"), ops::As(Col("T"), "T"),
                           ops::As(ex::Mul(Col("ew"), Col("ew")), "ew")})});
  rec.computed_by.push_back(
      {"Cs_mcl", GroupByOp(Scan("Q_mcl"), {"T"},
                           {ra::SumOf(Col("ew"), "s")})});
  rec.plan = SelectOp(
      ProjectOp(JoinOp(RenameOp(Scan("Q_mcl"), "QA"),
                       RenameOp(Scan("Cs_mcl"), "CB"), {{"T"}, {"T"}}),
                {ops::As(Col("QA.F"), "F"), ops::As(Col("QA.T"), "T"),
                 ops::As(ex::Div(Col("QA.ew"), Col("CB.s")), "ew")}),
      ex::Gt(Col("ew"), Lit(1e-4)));
  q.recursive.push_back(std::move(rec));
  q.mode = UnionMode::kUnionByUpdate;
  q.update_keys = {};
  q.ubu_impl = core::UnionByUpdateImpl::kDropAlter;
  q.maxrecursion = options.max_iterations > 0 ? options.max_iterations : 20;
  auto result = RunWithPlus(q, catalog, options);
  DropQuietly(catalog, {"E_mcl_raw", "E_mcl"});
  return result;
}

}  // namespace gpr::algos
