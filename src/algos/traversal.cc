// Traversal / distance algorithms: TC, BFS, WCC, SSSP, APSP (Eqs. 5–8).
#include "algos/algos.h"
#include "core/plan.h"

namespace gpr::algos {

namespace ops = ra::ops;
using core::AntiJoinOp;
using core::GroupByOp;
using core::JoinOp;
using core::MMJoinOp;
using core::MVJoinOp;
using core::PlanPtr;
using core::ProjectOp;
using core::RenameOp;
using core::Scan;
using core::Subquery;
using core::UnionAllOp;
using core::UnionMode;
using core::WithPlusQuery;
using ra::Col;
using ra::Lit;
using ra::Schema;
using ra::Value;
using ra::ValueType;
namespace ex = ra;  // expression builders

namespace {

/// Fills the shared with+ fields from the options.
void ApplyOptions(WithPlusQuery* q, const AlgoOptions& options,
                  int default_iters) {
  q->ubu_impl = options.ubu_impl;
  q->maxrecursion =
      options.max_iterations > 0 ? options.max_iterations : default_iters;
}

}  // namespace

Result<WithPlusResult> TransitiveClosure(ra::Catalog& catalog,
                                         const AlgoOptions& options) {
  WithPlusQuery q;
  q.rec_name = "TC";
  q.rec_schema =
      Schema{{"F", ValueType::kInt64}, {"T", ValueType::kInt64}};
  q.init.push_back(Subquery{
      ProjectOp(Scan("E"), {ops::As(Col("F"), "F"), ops::As(Col("T"), "T")}),
      {}});
  // select TC.F, E.T from TC, E where TC.T = E.F  (Fig 1).
  q.recursive.push_back(Subquery{
      ProjectOp(JoinOp(Scan("TC"), Scan("E"), {{"T"}, {"F"}}),
                {ops::As(Col("TC.F"), "F"), ops::As(Col("E.T"), "T")}),
      {}});
  q.mode = UnionMode::kUnionDistinct;
  q.maxrecursion =
      options.max_iterations > 0 ? options.max_iterations : options.depth;
  return RunWithPlus(q, catalog, options);
}

Result<WithPlusResult> Bfs(ra::Catalog& catalog, const AlgoOptions& options) {
  GPR_RETURN_NOT_OK(
      CreateLoopedEdges(catalog, "E", "V", "E_bfs", /*loop_weight=*/1.0));
  WithPlusQuery q;
  q.rec_name = "R_bfs";
  q.rec_schema =
      Schema{{"ID", ValueType::kInt64}, {"vw", ValueType::kDouble}};
  // vw = 1.0 for the source, 0.0 elsewhere.
  q.init.push_back(Subquery{
      ProjectOp(Scan("V"),
                {ops::As(Col("ID"), "ID"),
                 ops::As(ex::Mul(ex::Eq(Col("ID"), Lit(options.source)),
                                 Lit(1.0)),
                         "vw")}),
      {}});
  // Eq. 5: V ← ρ(E ⋈^{max(vw·ew)}_{F=ID} V)  — Eᵀ·V under max/times.
  q.recursive.push_back(Subquery{
      MVJoinOp(Scan("E_bfs"), Scan("R_bfs"), core::MaxTimes(),
               core::MVOrientation::kTransposed),
      {}});
  q.mode = UnionMode::kUnionByUpdate;
  q.update_keys = {"ID"};
  ApplyOptions(&q, options, /*default_iters=*/0);
  auto result = RunWithPlus(q, catalog, options);
  DropQuietly(catalog, {"E_bfs"});
  return result;
}

Result<WithPlusResult> BfsFrontier(ra::Catalog& catalog,
                                   const AlgoOptions& options) {
  WithPlusQuery q;
  q.rec_name = "R_bfsf";
  q.rec_schema = Schema{{"ID", ValueType::kInt64}};
  // Seed: the source node.
  q.init.push_back(Subquery{
      ProjectOp(SelectOp(Scan("V"), ex::Eq(Col("ID"), Lit(options.source))),
                {ops::As(Col("ID"), "ID")}),
      {}});
  // Frontier expansion: successors of the previous iteration's new nodes.
  q.recursive.push_back(Subquery{
      ProjectOp(JoinOp(Scan("R_bfsf"), Scan("E"), {{"ID"}, {"F"}}),
                {ops::As(Col("E.T"), "ID")}),
      {}});
  q.mode = UnionMode::kUnionDistinct;
  q.sql99_working_table = true;  // the early-selection ingredient
  ApplyOptions(&q, options, /*default_iters=*/0);
  return RunWithPlus(q, catalog, options);
}

Result<WithPlusResult> Wcc(ra::Catalog& catalog, const AlgoOptions& options) {
  // Weak connectivity: propagate along both directions, with self-loops so
  // min() retains a node's own label.
  GPR_RETURN_NOT_OK(CreateLoopedEdges(catalog, "E", "V", "E_wcc",
                                      /*loop_weight=*/1.0,
                                      /*symmetrize=*/true));
  WithPlusQuery q;
  q.rec_name = "R_wcc";
  q.rec_schema =
      Schema{{"ID", ValueType::kInt64}, {"vw", ValueType::kDouble}};
  // vw = own id initially.
  q.init.push_back(Subquery{
      ProjectOp(Scan("V"), {ops::As(Col("ID"), "ID"),
                            ops::As(ex::Mul(Col("ID"), Lit(1.0)), "vw")}),
      {}});
  // Eq. 6: min/× MV-join.
  q.recursive.push_back(Subquery{
      MVJoinOp(Scan("E_wcc"), Scan("R_wcc"), core::MinTimes(),
               core::MVOrientation::kTransposed),
      {}});
  q.mode = UnionMode::kUnionByUpdate;
  q.update_keys = {"ID"};
  ApplyOptions(&q, options, /*default_iters=*/0);
  auto result = RunWithPlus(q, catalog, options);
  DropQuietly(catalog, {"E_wcc"});
  return result;
}

Result<WithPlusResult> SsspBellmanFord(ra::Catalog& catalog,
                                       const AlgoOptions& options) {
  GPR_RETURN_NOT_OK(
      CreateLoopedEdges(catalog, "E", "V", "E_sssp", /*loop_weight=*/0.0));
  WithPlusQuery q;
  q.rec_name = "R_sssp";
  q.rec_schema =
      Schema{{"ID", ValueType::kInt64}, {"vw", ValueType::kDouble}};
  // vw = 0 for the source, ∞ elsewhere.
  q.init.push_back(Subquery{
      ProjectOp(
          Scan("V"),
          {ops::As(Col("ID"), "ID"),
           ops::As(ex::Mul(ex::Sub(Lit(1.0),
                                   ex::Eq(Col("ID"), Lit(options.source))),
                           Lit(core::kInfDistance)),
                   "vw")}),
      {}});
  // Eq. 7: min/+ MV-join (distances relax along in-edges of each target).
  q.recursive.push_back(Subquery{
      MVJoinOp(Scan("E_sssp"), Scan("R_sssp"), core::MinPlus(),
               core::MVOrientation::kTransposed),
      {}});
  q.mode = UnionMode::kUnionByUpdate;
  q.update_keys = {"ID"};
  ApplyOptions(&q, options, /*default_iters=*/0);
  auto result = RunWithPlus(q, catalog, options);
  DropQuietly(catalog, {"E_sssp"});
  return result;
}

namespace {

/// Shared APSP scaffolding: distance relation seeded with the edges plus
/// zero-length self-paths.
WithPlusQuery ApspBase() {
  WithPlusQuery q;
  q.rec_name = "D_apsp";
  q.rec_schema = Schema{{"F", ValueType::kInt64},
                        {"T", ValueType::kInt64},
                        {"ew", ValueType::kDouble}};
  q.init.push_back(Subquery{
      ProjectOp(Scan("E"),
                {ops::As(Col("F"), "F"), ops::As(Col("T"), "T"),
                 ops::As(ex::Mul(Col("ew"), Lit(1.0)), "ew")}),
      {}});
  q.init.push_back(Subquery{
      ProjectOp(Scan("V"), {ops::As(Col("ID"), "F"), ops::As(Col("ID"), "T"),
                            ops::As(Lit(0.0), "ew")}),
      {}});
  q.mode = UnionMode::kUnionByUpdate;
  q.update_keys = {"F", "T"};
  return q;
}

}  // namespace

Result<WithPlusResult> ApspFloydWarshall(ra::Catalog& catalog,
                                         const AlgoOptions& options) {
  WithPlusQuery q = ApspBase();
  // Eq. 8: nonlinear min/+ MM-join of D with itself — path length doubles
  // per iteration, so it converges in ⌈log₂ diameter⌉ rounds.
  q.recursive.push_back(Subquery{
      MMJoinOp(Scan("D_apsp"), Scan("D_apsp"), core::MinPlus()), {}});
  ApplyOptions(&q, options, /*default_iters=*/0);
  return RunWithPlus(q, catalog, options);
}

Result<WithPlusResult> ApspLinear(ra::Catalog& catalog,
                                  const AlgoOptions& options) {
  GPR_RETURN_NOT_OK(
      CreateLoopedEdges(catalog, "E", "V", "E_apsp", /*loop_weight=*/0.0));
  WithPlusQuery q = ApspBase();
  // Linear recursion (Fig 13b): extend every path by at most one edge.
  q.recursive.push_back(Subquery{
      MMJoinOp(Scan("D_apsp"), Scan("E_apsp"), core::MinPlus()), {}});
  ApplyOptions(&q, options,
               /*default_iters=*/options.depth > 0 ? options.depth : 0);
  auto result = RunWithPlus(q, catalog, options);
  DropQuietly(catalog, {"E_apsp"});
  return result;
}

}  // namespace gpr::algos
