// Pass 0 (structural well-formedness) and the analyzer driver.
#include "analysis/analyzer.h"

#include "analysis/dataflow.h"

#include "core/plan.h"

namespace gpr::analysis {

namespace {

std::string Quoted(const std::string& s) { return "'" + s + "'"; }

bool References(const core::Subquery& sq, const std::string& name) {
  std::vector<core::TableRef> refs;
  core::CollectTableRefs(sq.plan, &refs);
  for (const auto& def : sq.computed_by) {
    core::CollectTableRefs(def.plan, &refs);
  }
  for (const auto& r : refs) {
    if (r.name == name) return true;
  }
  return false;
}

}  // namespace

void CheckStructure(const core::WithPlusQuery& query, DiagnosticBag* diags) {
  if (query.rec_name.empty()) {
    diags->AddError("GPR-E001", StatusCode::kInvalidArgument, "with+",
                    "with+ needs a recursive relation name",
                    "name the relation: with R(cols) as (...)");
  }
  if (query.rec_schema.NumColumns() == 0) {
    diags->AddError("GPR-E002", StatusCode::kInvalidArgument, "with+",
                    "recursive relation " + Quoted(query.rec_name) +
                        " needs a schema",
                    "declare the column list of the recursive relation");
  }
  if (query.recursive.empty()) {
    diags->AddError("GPR-E003", StatusCode::kInvalidArgument, "with+",
                    "with+ needs at least one recursive subquery",
                    "a with+ body is <init> union ... <recursive>");
  }
  for (size_t i = 0; i < query.init.size(); ++i) {
    const std::string path = "init[" + std::to_string(i) + "]";
    if (References(query.init[i], query.rec_name)) {
      diags->AddError("GPR-E004", StatusCode::kInvalidArgument, path,
                      "initial subquery references the recursive relation " +
                          Quoted(query.rec_name),
                      "initial subqueries seed the recursion and may only "
                      "read base tables; move the reference to a recursive "
                      "subquery");
    }
    if (!query.init[i].computed_by.empty()) {
      diags->AddError("GPR-E009", StatusCode::kNotSupported, path,
                      "computed by inside initial subqueries is not "
                      "supported",
                      "inline the definitions into the initial subquery");
    }
  }
  for (size_t i = 0; i < query.recursive.size(); ++i) {
    if (!References(query.recursive[i], query.rec_name)) {
      diags->AddError(
          "GPR-E005", StatusCode::kInvalidArgument,
          "recursive[" + std::to_string(i) + "]",
          "a recursive subquery does not reference " +
              Quoted(query.rec_name),
          "move it to the initialization step, or make it read the "
          "recursive relation");
    }
  }
  if (query.mode == core::UnionMode::kUnionByUpdate &&
      query.recursive.size() > 1) {
    diags->AddError("GPR-E006", StatusCode::kInvalidArgument, "with+",
                    "union by update allows exactly one recursive subquery "
                    "(the updated value is not unique otherwise)",
                    "merge the subqueries or switch the union mode");
  }
  if (query.maxrecursion < 0 || query.maxrecursion > 32767) {
    diags->AddError("GPR-E007", StatusCode::kInvalidArgument, "with+",
                    "maxrecursion must be between 0 and 32767",
                    "0 means unbounded; pick a cap within range");
  }
  if (query.sql99_working_table &&
      query.mode == core::UnionMode::kUnionByUpdate) {
    diags->AddError("GPR-E008", StatusCode::kInvalidArgument, "with+",
                    "working-table semantics apply to union all / union, "
                    "not to union by update",
                    "clear sql99_working_table or change the union mode");
  }
}

DiagnosticBag AnalyzeWithPlus(const core::WithPlusQuery& query,
                              const ra::Catalog& catalog) {
  DiagnosticBag diags;
  CheckStructure(query, &diags);
  // A structurally broken query (no recursive subqueries, shadowed names,
  // ...) would only produce cascade noise in the later passes.
  if (diags.HasErrors()) return diags;
  CheckQueryTypes(query, catalog, &diags);
  if (query.check_stratification) {
    CheckStratification(query, &diags);
  }
  CheckConvergence(query, &diags);
  // Pass 4: facts-derived dataflow diagnostics. Offline options: base
  // tables contribute schemas only (their current contents prove nothing
  // about deployment data), so every verdict here is purely structural.
  if (!diags.HasErrors()) {
    const PlanFacts facts = ComputeQueryFacts(query, catalog, FactsOptions{});
    CheckDataflow(query, catalog, facts, &diags);
  }
  return diags;
}

Status GateWithPlus(const core::WithPlusQuery& query,
                    const ra::Catalog& catalog, size_t* num_warnings) {
  DiagnosticBag diags = AnalyzeWithPlus(query, catalog);
  if (num_warnings != nullptr) *num_warnings = diags.NumWarnings();
  return diags.ToStatus();
}

}  // namespace gpr::analysis
