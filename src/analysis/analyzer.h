// Static plan analyzer for with+ queries (the pre-execution gate).
//
// Runs entirely over the bound query — no data is touched — and produces
// Diagnostics (diagnostic.h) instead of late runtime failures:
//
//   1. type-flow pass (type_flow.cc): propagates column types through every
//      plan node, rejecting unknown tables/columns, incompatible set
//      operations, bad join keys, and subquery schemas that do not match
//      the declared recursive relation — each with a precise plan path;
//   2. stratification pass (stratification.cc): re-derives the X/Y temporal
//      labeling from the query structure and reports *which* rule or
//      predicate breaks XY-stratification (Theorem 5.1), instead of the
//      executor's single kNotStratifiable verdict;
//   3. convergence pass (convergence.cc): lints for non-monotone aggregates
//      under union-by-update, unbounded recursion without a maxrecursion
//      guard, and negation that crosses iteration strata under SQL'99
//      working-table semantics.
//
// AnalyzeWithPlus runs all passes; GateWithPlus is the mandatory
// pre-execution hook called by ExecuteWithPlus (bypassable per engine
// profile for A/B testing — EngineProfile::static_analysis_gate).
#pragma once

#include <optional>
#include <string>
#include <unordered_map>

#include "analysis/diagnostic.h"
#include "core/with_plus.h"
#include "ra/catalog.h"

namespace gpr::analysis {

/// Schemas for names not (yet) in the catalog — the recursive relation and
/// computed-by definitions while analyzing a with+ body.
using SchemaOverlays = std::unordered_map<std::string, ra::Schema>;

/// Pass 1 over one plan: mirrors core::InferSchema but records a diagnostic
/// (and keeps going where possible) instead of failing on the first error.
/// Returns the inferred output schema when the plan types, nullopt
/// otherwise. `root_path` prefixes every reported plan path.
std::optional<ra::Schema> CheckPlanTypes(const core::PlanPtr& plan,
                                         const ra::Catalog& catalog,
                                         const SchemaOverlays& overlays,
                                         const std::string& root_path,
                                         DiagnosticBag* diags);

/// Pass 1 over a whole query: every init/recursive subquery and computed-by
/// definition, plus recursive-schema compatibility and update-key checks.
void CheckQueryTypes(const core::WithPlusQuery& query,
                     const ra::Catalog& catalog, DiagnosticBag* diags);

/// Pass 2: static XY-stratification verification with per-rule reporting.
void CheckStratification(const core::WithPlusQuery& query,
                         DiagnosticBag* diags);

/// Pass 3: convergence / monotonicity lints.
void CheckConvergence(const core::WithPlusQuery& query, DiagnosticBag* diags);

/// Structural well-formedness (the GPR-E0xx family): the checks
/// ValidateWithPlus / CompileToPsm perform, reported as diagnostics.
void CheckStructure(const core::WithPlusQuery& query, DiagnosticBag* diags);

/// All passes in order. Passes whose prerequisites failed are skipped to
/// avoid cascading noise (e.g. type flow is skipped for a query with no
/// recursive subqueries).
DiagnosticBag AnalyzeWithPlus(const core::WithPlusQuery& query,
                              const ra::Catalog& catalog);

/// The mandatory pre-execution gate: analyzes and converts error-severity
/// findings into a Status whose StatusCode matches what the executor would
/// have raised at runtime. Warnings never block; their count is reported
/// through `num_warnings` when non-null.
Status GateWithPlus(const core::WithPlusQuery& query,
                    const ra::Catalog& catalog,
                    size_t* num_warnings = nullptr);

}  // namespace gpr::analysis
