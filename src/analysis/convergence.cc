// Pass 3 of the static plan analyzer: convergence / monotonicity lints.
//
// "Algebra + while" runs until the delta is empty; whether that ever
// happens depends on the ⊕ the recursion folds new values with (Section 4)
// and on the union mode. This pass flags the combinations that provably
// cannot converge (errors) or commonly fail to (warnings):
//
//   GPR-E301  avg under union by update — avg is neither monotone nor
//             idempotent, so the per-key value never stabilizes.
//   GPR-W302  non-monotone ⊕ (sum / count / plus_times) under keyed union
//             by update with no maxrecursion cap — value iteration
//             (PageRank-style) only terminates by cap or exact fixpoint.
//   GPR-E303  negation over the recursive relation under SQL'99
//             working-table semantics — the working table holds only the
//             last iteration's tuples, so ¬R reads an incomplete stratum.
//   GPR-W401  union all with no cap, no negation, and whole-relation
//             semantics — every nonempty delta re-derives itself, so the
//             recursion diverges unless some input is empty.
#include <unordered_set>

#include "analysis/analyzer.h"
#include "core/plan.h"
#include "core/semiring.h"

namespace gpr::analysis {

namespace {

using core::PlanKind;
using core::PlanPtr;

/// Collects the ⊕ aggregates a plan folds values with: group-by AggKinds
/// plus the `add` side of every MM/MV-join semiring, with the name of the
/// first non-monotone source for the report.
struct AggScan {
  bool non_monotone = false;  ///< sum / count / avg / plus_times seen
  bool has_avg = false;
  std::string source;  ///< e.g. "sum" or "semiring plus_times"

  void Note(ra::AggKind kind, const std::string& what) {
    if (kind == ra::AggKind::kAvg) has_avg = true;
    if (kind == ra::AggKind::kSum || kind == ra::AggKind::kCount ||
        kind == ra::AggKind::kAvg) {
      if (!non_monotone) source = what;
      non_monotone = true;
    }
  }

  void Walk(const PlanPtr& plan) {
    if (plan->kind == PlanKind::kGroupBy) {
      for (const auto& agg : plan->aggs) {
        Note(agg.kind, std::string(ra::AggKindName(agg.kind)));
      }
    }
    if (plan->kind == PlanKind::kMMJoin || plan->kind == PlanKind::kMVJoin) {
      Note(plan->semiring.add, "semiring " + plan->semiring.name);
    }
    for (const auto& c : plan->children) Walk(c);
  }
};

/// True when any recursive subquery (or its computed-by definitions)
/// references `name` in a negated position.
bool NegatesRelation(const core::WithPlusQuery& query,
                     const std::string& name, std::string* where) {
  for (size_t i = 0; i < query.recursive.size(); ++i) {
    std::vector<core::TableRef> refs;
    core::CollectTableRefs(query.recursive[i].plan, &refs);
    for (const auto& def : query.recursive[i].computed_by) {
      core::CollectTableRefs(def.plan, &refs);
    }
    for (const auto& r : refs) {
      if (r.negated && r.name == name) {
        *where = "recursive[" + std::to_string(i) + "]";
        return true;
      }
    }
  }
  return false;
}

}  // namespace

void CheckConvergence(const core::WithPlusQuery& query,
                      DiagnosticBag* diags) {
  AggScan aggs;
  bool any_negation = false;
  for (const auto& sq : query.recursive) {
    aggs.Walk(sq.plan);
    any_negation = any_negation || core::PlanUsesNegation(sq.plan);
    for (const auto& def : sq.computed_by) {
      aggs.Walk(def.plan);
      any_negation = any_negation || core::PlanUsesNegation(def.plan);
    }
  }

  if (query.mode == core::UnionMode::kUnionByUpdate) {
    if (aggs.has_avg) {
      diags->AddError(
          "GPR-E301", StatusCode::kInvalidArgument, "recursive",
          "avg inside a union-by-update recursion: avg is neither monotone "
          "nor idempotent, so updated values cannot stabilize",
          "fold with sum/min/max and divide outside the recursion");
    } else if (aggs.non_monotone && !query.update_keys.empty() &&
               query.maxrecursion == 0) {
      diags->AddWarning(
          "GPR-W302", "recursive",
          "value recursion folds with non-monotone ⊕ (" + aggs.source +
              ") under union by update without a maxrecursion cap — "
              "termination depends on reaching an exact numeric fixpoint",
          "add `maxrecursion k` (the paper caps PageRank-style iteration) "
          "or switch to a monotone ⊕ (min/max)");
    }
  }

  std::string where;
  if (query.sql99_working_table &&
      NegatesRelation(query, query.rec_name, &where)) {
    diags->AddError(
        "GPR-E303", StatusCode::kInvalidArgument, where,
        "negation over " + std::string("'") + query.rec_name +
            "' under SQL'99 working-table semantics: the working table "
            "holds only the previous iteration's tuples, so the negation "
            "reads an incomplete stratum",
        "clear sql99_working_table (whole-relation semantics) or negate a "
        "materialized computed-by snapshot instead");
  }

  if (query.mode == core::UnionMode::kUnionAll && query.maxrecursion == 0 &&
      !query.sql99_working_table && !any_negation) {
    diags->AddWarning(
        "GPR-W401", "recursive",
        "union all over the whole relation with no maxrecursion cap and no "
        "negation: every nonempty delta re-derives itself, so the "
        "recursion cannot converge",
        "add `maxrecursion k`, use union (distinct), subtract the previous "
        "state (anti-join), or set SQL'99 working-table semantics");
  }
}

}  // namespace gpr::analysis
