// Pass 3 of the static plan analyzer: convergence / monotonicity lints.
//
// "Algebra + while" runs until the delta is empty; whether that ever
// happens depends on the ⊕ the recursion folds new values with (Section 4)
// and on the union mode. This pass flags the combinations that provably
// cannot converge (errors) or commonly fail to (warnings):
//
//   GPR-E301  avg under union by update — avg is neither monotone nor
//             idempotent, so the per-key value never stabilizes.
//   GPR-W302  non-monotone ⊕ (sum / count / plus_times) under keyed union
//             by update with no maxrecursion cap — value iteration
//             (PageRank-style) only terminates by cap or exact fixpoint.
//   GPR-E303  negation over the recursive relation under SQL'99
//             working-table semantics — the working table holds only the
//             last iteration's tuples, so ¬R reads an incomplete stratum.
//   GPR-W401  union all with no cap, no negation, and whole-relation
//             semantics — every nonempty delta re-derives itself, so the
//             recursion diverges unless some input is empty.
//
// The fold / negation evidence comes from the monotonicity instance of
// the shared dataflow framework (analysis/dataflow.h) — fold kinds and
// sources propagate through computed-by relations to the subqueries that
// scan them, rather than being re-collected by a bespoke walk here.
#include "analysis/analyzer.h"
#include "analysis/dataflow.h"
#include "core/plan.h"

namespace gpr::analysis {

void CheckConvergence(const core::WithPlusQuery& query,
                      DiagnosticBag* diags) {
  const PlanFacts facts = ComputeMonotonicityFacts(query);

  bool non_monotone = false;
  bool has_avg = false;
  bool any_negation = false;
  std::string source;
  auto scan = [&](const core::Plan* p) {
    const OperatorFacts* f = facts.Get(p);
    if (f == nullptr) return;
    if (f->has_negation) any_negation = true;
    if (f->FoldsKind(ra::AggKind::kAvg)) has_avg = true;
    if (!non_monotone && f->HasNonMonotoneFold() &&
        !f->fold_sources.empty()) {
      non_monotone = true;
      source = f->fold_sources.front();
    }
  };
  for (const auto& sq : query.recursive) {
    scan(sq.plan.get());
    for (const auto& def : sq.computed_by) scan(def.plan.get());
  }

  if (query.mode == core::UnionMode::kUnionByUpdate) {
    if (has_avg) {
      diags->AddError(
          "GPR-E301", StatusCode::kInvalidArgument, "recursive",
          "avg inside a union-by-update recursion: avg is neither monotone "
          "nor idempotent, so updated values cannot stabilize",
          "fold with sum/min/max and divide outside the recursion");
    } else if (non_monotone && !query.update_keys.empty() &&
               query.maxrecursion == 0) {
      diags->AddWarning(
          "GPR-W302", "recursive",
          "value recursion folds with non-monotone ⊕ (" + source +
              ") under union by update without a maxrecursion cap — "
              "termination depends on reaching an exact numeric fixpoint",
          "add `maxrecursion k` (the paper caps PageRank-style iteration) "
          "or switch to a monotone ⊕ (min/max)");
    }
  }

  if (query.sql99_working_table) {
    // Negation over the recursive relation, read off the negated-tables
    // facts of each block's plans.
    auto negates_rec = [&](const core::Plan* p) {
      const OperatorFacts* f = facts.Get(p);
      if (f == nullptr) return false;
      for (const auto& t : f->negated_tables) {
        if (t == query.rec_name) return true;
      }
      return false;
    };
    for (size_t i = 0; i < query.recursive.size(); ++i) {
      bool found = negates_rec(query.recursive[i].plan.get());
      for (const auto& def : query.recursive[i].computed_by) {
        found = found || negates_rec(def.plan.get());
      }
      if (!found) continue;
      diags->AddError(
          "GPR-E303", StatusCode::kInvalidArgument,
          "recursive[" + std::to_string(i) + "]",
          "negation over " + std::string("'") + query.rec_name +
              "' under SQL'99 working-table semantics: the working table "
              "holds only the previous iteration's tuples, so the negation "
              "reads an incomplete stratum",
          "clear sql99_working_table (whole-relation semantics) or negate "
          "a materialized computed-by snapshot instead");
      break;
    }
  }

  if (query.mode == core::UnionMode::kUnionAll && query.maxrecursion == 0 &&
      !query.sql99_working_table && !any_negation) {
    diags->AddWarning(
        "GPR-W401", "recursive",
        "union all over the whole relation with no maxrecursion cap and no "
        "negation: every nonempty delta re-derives itself, so the "
        "recursion cannot converge",
        "add `maxrecursion k`, use union (distinct), subtract the previous "
        "state (anti-join), or set SQL'99 working-table semantics");
  }
}

}  // namespace gpr::analysis
