// The plan-IR dataflow framework: graph construction, the analysis
// instances (invariance, monotonicity, keys/FDs, intervals, cardinality,
// column liveness), fact assembly, hoisting-set derivation, facts-driven
// plan rewrites, the GPR-W31x/E31x diagnostics, and JSON rendering.
#include "analysis/dataflow.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <functional>
#include <limits>
#include <set>
#include <sstream>
#include <unordered_set>

#include "core/plan.h"
#include "ra/table.h"

namespace gpr::analysis {

using core::Plan;
using core::PlanKind;
using core::PlanPtr;

// ---------------------------------------------------------------------------
// Fact-type implementations (declared in plan_facts.h)
// ---------------------------------------------------------------------------

namespace {

/// Compact numeric rendering: integral doubles print without a fraction.
std::string FormatNum(double v) {
  if (std::isfinite(v) && v == std::floor(v) && std::fabs(v) < 1e15) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(v));
    return buf;
  }
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%g", v);
  return buf;
}

}  // namespace

bool ValueInterval::Join(const ValueInterval& o) {
  if (o.empty) return false;
  if (empty) {
    *this = o;
    return true;
  }
  bool changed = false;
  if (has_lo) {
    if (!o.has_lo) {
      has_lo = false;
      changed = true;
    } else if (o.lo < lo) {
      lo = o.lo;
      changed = true;
    }
  }
  if (has_hi) {
    if (!o.has_hi) {
      has_hi = false;
      changed = true;
    } else if (o.hi > hi) {
      hi = o.hi;
      changed = true;
    }
  }
  return changed;
}

void ValueInterval::Meet(const ValueInterval& o) {
  if (empty) return;
  if (o.empty) {
    *this = ValueInterval{};
    return;
  }
  if (o.has_lo && (!has_lo || o.lo > lo)) {
    has_lo = true;
    lo = o.lo;
  }
  if (o.has_hi && (!has_hi || o.hi < hi)) {
    has_hi = true;
    hi = o.hi;
  }
  if (has_lo && has_hi && lo > hi) *this = ValueInterval{};
}

std::string ValueInterval::ToString() const {
  if (empty) return "empty";
  if (IsTop()) return "top";
  if (IsConst()) return "=" + FormatNum(lo);
  std::string s = "[";
  s += has_lo ? FormatNum(lo) : "-inf";
  s += ", ";
  s += has_hi ? FormatNum(hi) : "+inf";
  s += "]";
  return s;
}

const char* PredicateVerdictName(PredicateVerdict v) {
  switch (v) {
    case PredicateVerdict::kUnknown: return "unknown";
    case PredicateVerdict::kAlwaysTrue: return "always-true";
    case PredicateVerdict::kAlwaysFalse: return "always-false";
  }
  return "unknown";
}

std::string RowBounds::ToString() const {
  if (!known) return "?";
  if (has_max && min_rows == max_rows) {
    return "=" + std::to_string(min_rows);
  }
  std::string s = "[" + std::to_string(min_rows) + ", ";
  s += has_max ? std::to_string(max_rows) + "]" : "+inf)";
  return s;
}

std::string OperatorFacts::ToString() const {
  std::ostringstream os;
  os << "rows=" << rows.ToString();
  if (!unique_sets.empty() && schema_known) {
    os << " unique=";
    for (size_t s = 0; s < unique_sets.size(); ++s) {
      if (s > 0) os << ",";
      os << "{";
      for (size_t i = 0; i < unique_sets[s].size(); ++i) {
        if (i > 0) os << ",";
        os << schema.column(unique_sets[s][i]).name;
      }
      os << "}";
    }
  }
  if (dup_free) os << " dup-free";
  if (predicate != PredicateVerdict::kUnknown) {
    os << " pred=" << PredicateVerdictName(predicate);
  }
  if (schema_known) {
    bool any = false;
    for (size_t c = 0; c < intervals.size(); ++c) {
      if (intervals[c].IsTop() || intervals[c].empty) continue;
      os << (any ? "," : " vals=") << schema.column(c).name
         << intervals[c].ToString();
      any = true;
    }
  }
  if (folds != 0) {
    os << " folds={";
    bool first = true;
    for (uint32_t k = 0; k < 5; ++k) {
      if ((folds & (1u << k)) == 0) continue;
      if (!first) os << ",";
      os << ra::AggKindName(static_cast<ra::AggKind>(k));
      first = false;
    }
    os << "}";
  }
  if (has_negation) os << " negation";
  if (invariant) os << " invariant";
  if (uses_rand) os << " rand";
  if (csr_eligible) os << " csr-eligible";
  if (live_known && schema_known &&
      live_columns.size() < schema.NumColumns()) {
    os << " live=" << live_columns.size() << "/" << schema.NumColumns();
  }
  return os.str();
}

// ---------------------------------------------------------------------------
// Query normalization + graph construction
// ---------------------------------------------------------------------------

DataflowQuery ToDataflowQuery(const core::WithPlusQuery& query) {
  DataflowQuery q;
  q.rec_name = query.rec_name;
  q.rec_schema = query.rec_schema;
  q.mode = query.mode;
  q.update_keys = query.update_keys;
  q.maxrecursion = query.maxrecursion;
  q.sql99_working_table = query.sql99_working_table;
  // Initial subqueries cannot carry computed-by definitions (the PSM
  // compiler rejects them); only their plans matter here.
  for (const auto& sq : query.init) q.init.push_back(sq.plan);
  for (const auto& sq : query.recursive) {
    DataflowUnit u;
    for (const auto& def : sq.computed_by) {
      u.defs.emplace_back(def.name, def.plan);
    }
    u.delta = sq.plan;
    q.blocks.push_back(std::move(u));
  }
  return q;
}

void DataflowGraph::AddEdge(size_t from, size_t to) {
  auto& outs = nodes_[from].outputs;
  if (std::find(outs.begin(), outs.end(), to) != outs.end()) return;
  outs.push_back(to);
  nodes_[to].inputs.push_back(from);
}

size_t DataflowGraph::AddPlanTree(
    const PlanPtr& plan, const std::string& path,
    const std::unordered_map<std::string, ra::Schema>* ov) {
  auto it = plan_index_.find(plan.get());
  if (it != plan_index_.end()) return it->second;  // shared subtree
  std::string label = plan->kind == PlanKind::kScan
                          ? "Scan(" + plan->table_name + ")"
                          : core::PlanKindName(plan->kind);
  const std::string p = path + "/" + label;
  std::vector<size_t> kids;
  kids.reserve(plan->children.size());
  for (const auto& c : plan->children) kids.push_back(AddPlanTree(c, p, ov));
  const size_t idx = nodes_.size();
  DfNode n;
  n.plan = plan.get();
  n.plan_ref = plan;
  n.path = p;
  n.out_name = core::PlanOutputName(plan);
  if (catalog_ != nullptr) {
    auto s = core::InferSchema(plan, *catalog_, ov);
    if (s.ok()) {
      n.schema_known = true;
      n.schema = *s;
    }
  }
  nodes_.push_back(std::move(n));
  plan_index_[plan.get()] = idx;
  for (size_t k : kids) AddEdge(k, idx);
  if (plan->kind == PlanKind::kScan) {
    auto r = relation_index_.find(plan->table_name);
    if (r != relation_index_.end()) AddEdge(r->second, idx);
  }
  return idx;
}

DataflowGraph DataflowGraph::Build(const DataflowQuery& query,
                                   const ra::Catalog* catalog) {
  DataflowGraph g;
  g.query_ = query;
  g.catalog_ = catalog;

  // Relation pseudo-nodes first: R (the back-edge target), then every
  // computed-by definition, so scans anywhere can link to them.
  {
    DfNode r;
    r.relation = query.rec_name;
    r.path = "relation(" + query.rec_name + ")";
    r.back_edge_target = true;
    r.schema_known = query.rec_schema.NumColumns() > 0;
    r.schema = query.rec_schema;
    g.relation_index_[query.rec_name] = g.nodes_.size();
    g.nodes_.push_back(std::move(r));
  }
  for (const auto& block : query.blocks) {
    for (const auto& [name, plan] : block.defs) {
      (void)plan;
      if (g.relation_index_.count(name) > 0) continue;
      DfNode d;
      d.relation = name;
      d.path = "relation(" + name + ")";
      g.relation_index_[name] = g.nodes_.size();
      g.nodes_.push_back(std::move(d));
    }
  }

  std::unordered_map<std::string, ra::Schema> overlays;
  overlays.emplace(query.rec_name, query.rec_schema);

  for (size_t i = 0; i < query.init.size(); ++i) {
    const size_t root = g.AddPlanTree(
        query.init[i], "init[" + std::to_string(i) + "]", &overlays);
    g.nodes_[root].role = DfNode::Role::kInitRoot;
    g.nodes_[root].block = i;
    g.AddEdge(root, g.relation_index_[query.rec_name]);
  }
  for (size_t b = 0; b < query.blocks.size(); ++b) {
    const std::string base = "recursive[" + std::to_string(b) + "]";
    for (const auto& [name, plan] : query.blocks[b].defs) {
      const size_t root =
          g.AddPlanTree(plan, base + "/computed_by[" + name + "]", &overlays);
      g.nodes_[root].role = DfNode::Role::kDefRoot;
      g.nodes_[root].block = b;
      const size_t rel = g.relation_index_[name];
      g.AddEdge(root, rel);
      if (g.nodes_[root].schema_known && !g.nodes_[rel].schema_known) {
        g.nodes_[rel].schema_known = true;
        g.nodes_[rel].schema = g.nodes_[root].schema;
      }
      if (g.nodes_[root].schema_known) {
        overlays.emplace(name, g.nodes_[root].schema);
      }
    }
    const size_t root = g.AddPlanTree(query.blocks[b].delta, base, &overlays);
    g.nodes_[root].role = DfNode::Role::kDeltaRoot;
    g.nodes_[root].block = b;
    g.AddEdge(root, g.relation_index_[query.rec_name]);
  }
  return g;
}

size_t DataflowGraph::IndexOf(const Plan* p) const {
  auto it = plan_index_.find(p);
  return it == plan_index_.end() ? npos : it->second;
}

size_t DataflowGraph::RelationIndex(const std::string& name) const {
  auto it = relation_index_.find(name);
  return it == relation_index_.end() ? npos : it->second;
}

// ---------------------------------------------------------------------------
// Shared helpers
// ---------------------------------------------------------------------------

namespace {

bool ExprCallsRand(const ra::ExprPtr& e) {
  if (e == nullptr) return false;
  if (e->kind == ra::ExprKind::kCall &&
      (e->func_name == "rand" || e->func_name == "random")) {
    return true;
  }
  for (const auto& c : e->children) {
    if (ExprCallsRand(c)) return true;
  }
  return false;
}

void CollectExprColumns(const ra::ExprPtr& e,
                        std::vector<std::string>* out) {
  if (e == nullptr) return;
  if (e->kind == ra::ExprKind::kColumn) out->push_back(e->column_name);
  for (const auto& c : e->children) CollectExprColumns(c, out);
}

bool ExprUsesColumns(const ra::ExprPtr& e) {
  if (e == nullptr) return false;
  if (e->kind == ra::ExprKind::kColumn) return true;
  for (const auto& c : e->children) {
    if (ExprUsesColumns(c)) return true;
  }
  return false;
}

/// The scalar expressions evaluated locally by one plan node.
void LocalExprs(const Plan& p, std::vector<ra::ExprPtr>* out) {
  if (p.predicate != nullptr) out->push_back(p.predicate);
  for (const auto& item : p.items) out->push_back(item.expr);
  for (const auto& agg : p.aggs) {
    if (agg.arg != nullptr) out->push_back(agg.arg);
  }
}

bool NodeCallsRand(const Plan& p) {
  std::vector<ra::ExprPtr> exprs;
  LocalExprs(p, &exprs);
  for (const auto& e : exprs) {
    if (ExprCallsRand(e)) return true;
  }
  return false;
}

/// True for operators that do work beyond pass-through naming: everything
/// except scan and rename (mirrors LoopInvariantSubplans' notion).
bool NodeHasRealWork(PlanKind k) {
  return k != PlanKind::kScan && k != PlanKind::kRename;
}

bool IsNonMonotoneAgg(ra::AggKind k) {
  return k == ra::AggKind::kSum || k == ra::AggKind::kCount ||
         k == ra::AggKind::kAvg;
}

// --- interval arithmetic ---------------------------------------------------

using VI = ValueInterval;

VI AddI(const VI& a, const VI& b) {
  if (a.empty || b.empty) return VI{};
  VI r = VI::Top();
  if (a.has_lo && b.has_lo) {
    r.has_lo = true;
    r.lo = a.lo + b.lo;
  }
  if (a.has_hi && b.has_hi) {
    r.has_hi = true;
    r.hi = a.hi + b.hi;
  }
  return r;
}

VI NegI(const VI& a) {
  if (a.empty) return VI{};
  VI r = VI::Top();
  if (a.has_hi) {
    r.has_lo = true;
    r.lo = -a.hi;
  }
  if (a.has_lo) {
    r.has_hi = true;
    r.hi = -a.lo;
  }
  return r;
}

VI SubI(const VI& a, const VI& b) { return AddI(a, NegI(b)); }

VI MulI(const VI& a, const VI& b) {
  if (a.empty || b.empty) return VI{};
  // Only the fully-bounded case: endpoint products cover the range.
  if (!(a.has_lo && a.has_hi && b.has_lo && b.has_hi)) return VI::Top();
  const double c[4] = {a.lo * b.lo, a.lo * b.hi, a.hi * b.lo, a.hi * b.hi};
  double lo = c[0], hi = c[0];
  for (double v : c) {
    lo = std::min(lo, v);
    hi = std::max(hi, v);
  }
  return VI::Range(lo, hi);
}

VI DivI(const VI& a, const VI& b) {
  if (a.empty || b.empty) return VI{};
  // Divisor must be fully bounded and exclude zero.
  if (!(b.has_lo && b.has_hi) || (b.lo <= 0 && b.hi >= 0)) return VI::Top();
  if (!(a.has_lo && a.has_hi)) return VI::Top();
  const double c[4] = {a.lo / b.lo, a.lo / b.hi, a.hi / b.lo, a.hi / b.hi};
  double lo = c[0], hi = c[0];
  for (double v : c) {
    lo = std::min(lo, v);
    hi = std::max(hi, v);
  }
  return VI::Range(lo, hi);
}

/// Truthiness of a numeric interval standing for a boolean: a predicate is
/// certainly true when its value provably excludes 0 (and, by the non-null
/// convention, NULL), certainly false when it is provably 0.
bool CertainlyTrue(const VI& v) {
  if (v.empty) return false;
  return (v.has_lo && v.lo > 0) || (v.has_hi && v.hi < 0);
}
bool CertainlyFalse(const VI& v) { return v.IsConst() && v.lo == 0; }

VI BoolI(bool b) { return VI::Const(b ? 1 : 0); }
VI BoolTop() { return VI::Range(0, 1); }

/// Tri-state comparison of two intervals under `op`, as a 0/1/[0,1]
/// interval. Soundness: a non-Top interval asserts non-null, and every
/// bound is closed.
VI CompareI(ra::BinaryOp op, const VI& a, const VI& b) {
  if (a.empty || b.empty) return VI{};
  // A Top operand may be NULL at runtime (comparison yields NULL ==
  // false-ish); never conclude anything.
  if (a.IsTop() || b.IsTop()) return BoolTop();
  const bool a_lt_b = a.has_hi && b.has_lo && a.hi < b.lo;    // all a < all b
  const bool a_le_b = a.has_hi && b.has_lo && a.hi <= b.lo;   // all a <= all b
  const bool b_lt_a = b.has_hi && a.has_lo && b.hi < a.lo;
  const bool b_le_a = b.has_hi && a.has_lo && b.hi <= a.lo;
  const bool disjoint = a_lt_b || b_lt_a;
  switch (op) {
    case ra::BinaryOp::kEq:
      if (a.IsConst() && b.IsConst() && a.lo == b.lo) return BoolI(true);
      if (disjoint) return BoolI(false);
      return BoolTop();
    case ra::BinaryOp::kNe:
      if (a.IsConst() && b.IsConst() && a.lo == b.lo) return BoolI(false);
      if (disjoint) return BoolI(true);
      return BoolTop();
    case ra::BinaryOp::kLt:
      if (a_lt_b) return BoolI(true);
      if (b_le_a) return BoolI(false);
      return BoolTop();
    case ra::BinaryOp::kLe:
      if (a_le_b) return BoolI(true);
      if (b_lt_a) return BoolI(false);
      return BoolTop();
    case ra::BinaryOp::kGt:
      if (b_lt_a) return BoolI(true);
      if (a_le_b) return BoolI(false);
      return BoolTop();
    case ra::BinaryOp::kGe:
      if (b_le_a) return BoolI(true);
      if (a_lt_b) return BoolI(false);
      return BoolTop();
    default:
      return BoolTop();
  }
}

/// Environment for abstract expression evaluation: the input schema plus
/// one interval per input column.
struct IntervalEnv {
  const ra::Schema* schema = nullptr;
  const std::vector<VI>* cols = nullptr;
};

VI EvalInterval(const ra::ExprPtr& e, const IntervalEnv& env) {
  if (e == nullptr) return VI::Top();
  switch (e->kind) {
    case ra::ExprKind::kColumn: {
      if (env.schema == nullptr || env.cols == nullptr) return VI::Top();
      auto idx = env.schema->IndexOf(e->column_name);
      if (!idx.has_value() || *idx >= env.cols->size()) return VI::Top();
      return (*env.cols)[*idx];
    }
    case ra::ExprKind::kLiteral: {
      if (e->literal.is_numeric()) return VI::Const(e->literal.ToDouble());
      return VI::Top();  // strings / NULL: no numeric interval
    }
    case ra::ExprKind::kBinary: {
      const VI a = EvalInterval(e->children[0], env);
      const VI b = EvalInterval(e->children[1], env);
      switch (e->bin_op) {
        case ra::BinaryOp::kAdd: return AddI(a, b);
        case ra::BinaryOp::kSub: return SubI(a, b);
        case ra::BinaryOp::kMul: return MulI(a, b);
        case ra::BinaryOp::kDiv: return DivI(a, b);
        case ra::BinaryOp::kMod: return VI::Top();
        case ra::BinaryOp::kAnd: {
          if (CertainlyFalse(a) || CertainlyFalse(b)) return BoolI(false);
          if (CertainlyTrue(a) && CertainlyTrue(b)) return BoolI(true);
          return BoolTop();
        }
        case ra::BinaryOp::kOr: {
          if (CertainlyTrue(a) || CertainlyTrue(b)) return BoolI(true);
          if (CertainlyFalse(a) && CertainlyFalse(b)) return BoolI(false);
          return BoolTop();
        }
        default:
          return CompareI(e->bin_op, a, b);
      }
    }
    case ra::ExprKind::kUnary: {
      const VI a = EvalInterval(e->children[0], env);
      switch (e->un_op) {
        case ra::UnaryOp::kNeg: return NegI(a);
        case ra::UnaryOp::kNot:
          if (CertainlyTrue(a)) return BoolI(false);
          if (CertainlyFalse(a)) return BoolI(true);
          return BoolTop();
        case ra::UnaryOp::kIsNull:
          // A non-Top interval asserts non-null.
          if (!a.empty && !a.IsTop()) return BoolI(false);
          return BoolTop();
        case ra::UnaryOp::kIsNotNull:
          if (!a.empty && !a.IsTop()) return BoolI(true);
          return BoolTop();
      }
      return BoolTop();
    }
    case ra::ExprKind::kCall: {
      if (e->func_name == "rand" || e->func_name == "random") {
        return VI::Range(0, 1);
      }
      return VI::Top();
    }
  }
  return VI::Top();
}

/// Verdict on a predicate under `env`. rand()-containing predicates never
/// get a verdict: removing or short-circuiting them would shift the seeded
/// RNG stream and change downstream draws (MIS's coin flips).
PredicateVerdict JudgePredicate(const ra::ExprPtr& pred,
                                const IntervalEnv& env) {
  if (pred == nullptr || ExprCallsRand(pred)) {
    return PredicateVerdict::kUnknown;
  }
  const VI v = EvalInterval(pred, env);
  if (CertainlyTrue(v)) return PredicateVerdict::kAlwaysTrue;
  if (CertainlyFalse(v)) return PredicateVerdict::kAlwaysFalse;
  return PredicateVerdict::kUnknown;
}

// ---------------------------------------------------------------------------
// Analysis 1: loop invariance (forward; optimistic, decreasing)
// ---------------------------------------------------------------------------
//
// A subtree is invariant when it scans no iteration-varying relation and
// calls no rand(). The recursive relation's pseudo-node is pinned varying;
// a definition's pseudo-node copies its root, so a def built only on base
// tables and settled defs comes out invariant — exactly the sequential
// settling the PSM prologue computes with its bespoke walk.

struct InvFact {
  bool invariant = true;
  bool uses_rand = false;
  bool has_real_work = false;

  bool operator==(const InvFact& o) const {
    return invariant == o.invariant && uses_rand == o.uses_rand &&
           has_real_work == o.has_real_work;
  }
};

class InvarianceAnalysis {
 public:
  using Fact = InvFact;

  DataflowDirection direction() const { return DataflowDirection::kForward; }

  Fact Boundary(const DataflowGraph& g, size_t n) {
    Fact f;
    if (!g.node(n).relation.empty() &&
        g.node(n).relation == g.query().rec_name) {
      f.invariant = false;
    }
    return f;
  }

  Fact Transfer(const DataflowGraph& g, size_t n,
                const std::vector<Fact>& all) {
    const DfNode& node = g.node(n);
    if (!node.relation.empty()) {
      if (node.relation == g.query().rec_name) {
        Fact f;
        f.invariant = false;
        return f;
      }
      // Definition pseudo-node: the meet over its roots.
      Fact f;
      for (size_t in : node.inputs) {
        f.invariant = f.invariant && all[in].invariant;
        f.uses_rand = f.uses_rand || all[in].uses_rand;
        f.has_real_work = f.has_real_work || all[in].has_real_work;
      }
      return f;
    }
    const Plan& p = *node.plan;
    Fact f;
    if (p.kind == PlanKind::kScan) {
      const size_t rel = g.RelationIndex(p.table_name);
      if (rel != DataflowGraph::npos) {
        f.invariant = all[rel].invariant;
        f.uses_rand = all[rel].uses_rand;
      }
      return f;  // base-table scan: invariant, no work
    }
    const bool local_rand = NodeCallsRand(p);
    f.invariant = !local_rand;
    f.uses_rand = local_rand;
    f.has_real_work = NodeHasRealWork(p.kind);
    for (const auto& c : p.children) {
      const size_t ci = g.IndexOf(c.get());
      if (ci == DataflowGraph::npos) continue;
      f.invariant = f.invariant && all[ci].invariant;
      f.uses_rand = f.uses_rand || all[ci].uses_rand;
      f.has_real_work = f.has_real_work || all[ci].has_real_work;
    }
    return f;
  }

  bool Join(Fact* into, const Fact& from) {
    if (*into == from) return false;
    *into = from;
    return true;
  }

  void Widen(Fact* f) { f->invariant = false; }
};

// ---------------------------------------------------------------------------
// Analysis 2: monotonicity / semiring folds (forward, increasing)
// ---------------------------------------------------------------------------
//
// Which ⊕ aggregates does each subtree fold new values with, and which
// tables does it scan (directly) in plain / negated positions? The
// recursive relation's pseudo-node deliberately propagates nothing: folds
// in one iteration's derivation do not belong to the next iteration's
// subtree summary (and init-side folds never taint the loop body).
// Definition pseudo-nodes pass folds and negation through — a delta that
// scans a def inherits the def's aggregate behaviour — but not table sets,
// preserving the "direct scan" semantics GPR-E303 is defined over.

struct MonoFact {
  uint32_t folds = 0;
  std::vector<std::string> fold_sources;  ///< pre-order, deduplicated
  bool has_negation = false;
  std::set<std::string> tables;
  std::set<std::string> negated_tables;

  bool operator==(const MonoFact& o) const {
    return folds == o.folds && fold_sources == o.fold_sources &&
           has_negation == o.has_negation && tables == o.tables &&
           negated_tables == o.negated_tables;
  }

  void AddSource(const std::string& s) {
    for (const auto& e : fold_sources) {
      if (e == s) return;
    }
    fold_sources.push_back(s);
  }
  void MergeSources(const MonoFact& o) {
    for (const auto& s : o.fold_sources) AddSource(s);
  }
};

class MonotonicityAnalysis {
 public:
  using Fact = MonoFact;

  DataflowDirection direction() const { return DataflowDirection::kForward; }

  Fact Boundary(const DataflowGraph&, size_t) { return Fact{}; }

  Fact Transfer(const DataflowGraph& g, size_t n,
                const std::vector<Fact>& all) {
    const DfNode& node = g.node(n);
    Fact f;
    if (!node.relation.empty()) {
      if (node.relation == g.query().rec_name) return f;  // blocks the cycle
      for (size_t in : node.inputs) {
        f.folds |= all[in].folds;
        f.MergeSources(all[in]);
        f.has_negation = f.has_negation || all[in].has_negation;
      }
      return f;
    }
    const Plan& p = *node.plan;
    if (p.kind == PlanKind::kScan) {
      f.tables.insert(p.table_name);
      const size_t rel = g.RelationIndex(p.table_name);
      if (rel != DataflowGraph::npos) {
        f.folds |= all[rel].folds;
        f.MergeSources(all[rel]);
        f.has_negation = f.has_negation || all[rel].has_negation;
      }
      return f;
    }
    // Own folds first (pre-order source naming, matching the historical
    // AggScan walk), then the children's summaries.
    if (p.kind == PlanKind::kGroupBy) {
      for (const auto& agg : p.aggs) {
        f.folds |= 1u << static_cast<uint32_t>(agg.kind);
        if (IsNonMonotoneAgg(agg.kind)) {
          f.AddSource(ra::AggKindName(agg.kind));
        }
      }
    }
    if (p.kind == PlanKind::kMMJoin || p.kind == PlanKind::kMVJoin) {
      f.folds |= 1u << static_cast<uint32_t>(p.semiring.add);
      if (IsNonMonotoneAgg(p.semiring.add)) {
        f.AddSource("semiring " + p.semiring.name);
      }
    }
    for (const auto& c : p.children) {
      const size_t ci = g.IndexOf(c.get());
      if (ci == DataflowGraph::npos) continue;
      f.folds |= all[ci].folds;
      f.MergeSources(all[ci]);
      f.has_negation = f.has_negation || all[ci].has_negation;
      f.tables.insert(all[ci].tables.begin(), all[ci].tables.end());
      f.negated_tables.insert(all[ci].negated_tables.begin(),
                              all[ci].negated_tables.end());
    }
    if (p.kind == PlanKind::kAntiJoin || p.kind == PlanKind::kDifference) {
      f.has_negation = true;
      if (p.children.size() > 1) {
        const size_t ri = g.IndexOf(p.children[1].get());
        if (ri != DataflowGraph::npos) {
          f.negated_tables.insert(all[ri].tables.begin(),
                                  all[ri].tables.end());
        }
      }
    }
    if (p.kind == PlanKind::kIntersect) f.has_negation = true;
    return f;
  }

  bool Join(Fact* into, const Fact& from) {
    if (*into == from) return false;
    *into = from;
    return true;
  }

  void Widen(Fact*) {}  // finite lattice: folds/tables are bounded
};

// ---------------------------------------------------------------------------
// Analysis 3: key / functional-dependency inference (forward, increasing)
// ---------------------------------------------------------------------------
//
// A unique set S proves no two output rows agree on S; the empty set
// proves "at most one row". Proofs are structural only (never derived
// from data statistics), so the executor may act on them: any proof makes
// the output duplicate-free and a downstream Distinct a no-op.

namespace {

/// Resolves column names against `schema`; nullopt if any fails.
std::optional<std::vector<size_t>> ResolveCols(
    const ra::Schema& schema, const std::vector<std::string>& names) {
  std::vector<size_t> out;
  out.reserve(names.size());
  for (const auto& n : names) {
    auto i = schema.IndexOf(n);
    if (!i.has_value()) return std::nullopt;
    out.push_back(*i);
  }
  return out;
}

bool IsSubset(const std::vector<size_t>& a, const std::vector<size_t>& b) {
  // a ⊆ b; both sorted.
  return std::includes(b.begin(), b.end(), a.begin(), a.end());
}

/// Sorted/deduped, supersets of kept sets dropped, capped at 6 minimal
/// sets (smallest first, then lexicographic) for determinism.
std::vector<std::vector<size_t>> NormalizeSets(
    std::vector<std::vector<size_t>> sets) {
  for (auto& s : sets) {
    std::sort(s.begin(), s.end());
    s.erase(std::unique(s.begin(), s.end()), s.end());
  }
  std::sort(sets.begin(), sets.end(),
            [](const std::vector<size_t>& a, const std::vector<size_t>& b) {
              if (a.size() != b.size()) return a.size() < b.size();
              return a < b;
            });
  sets.erase(std::unique(sets.begin(), sets.end()), sets.end());
  std::vector<std::vector<size_t>> kept;
  for (const auto& s : sets) {
    bool redundant = false;
    for (const auto& k : kept) {
      if (IsSubset(k, s)) {
        redundant = true;
        break;
      }
    }
    if (!redundant) kept.push_back(s);
    if (kept.size() >= 6) break;
  }
  return kept;
}

/// True when some kept set is a subset of `positions` (sorted): uniqueness
/// on a subset implies uniqueness on the superset.
bool HasUniqueSubset(const std::vector<std::vector<size_t>>& sets,
                     std::vector<size_t> positions) {
  std::sort(positions.begin(), positions.end());
  for (const auto& s : sets) {
    if (IsSubset(s, positions)) return true;
  }
  return false;
}

struct KeyFact {
  std::vector<std::vector<size_t>> sets;

  bool operator==(const KeyFact& o) const { return sets == o.sets; }
};

}  // namespace

class KeyAnalysis {
 public:
  using Fact = KeyFact;

  DataflowDirection direction() const { return DataflowDirection::kForward; }

  Fact Boundary(const DataflowGraph&, size_t) { return Fact{}; }

  Fact Transfer(const DataflowGraph& g, size_t n,
                const std::vector<Fact>& all) {
    const DfNode& node = g.node(n);
    if (!node.relation.empty()) return RelationTransfer(g, n, all);
    if (!node.schema_known) return Fact{};
    const Plan& p = *node.plan;
    const size_t ncols = node.schema.NumColumns();
    auto child_fact = [&](size_t i) -> const Fact& {
      static const Fact kEmpty;
      if (i >= p.children.size()) return kEmpty;
      const size_t ci = g.IndexOf(p.children[i].get());
      return ci == DataflowGraph::npos ? kEmpty : all[ci];
    };
    auto child_schema = [&](size_t i) -> const ra::Schema* {
      if (i >= p.children.size()) return nullptr;
      const size_t ci = g.IndexOf(p.children[i].get());
      if (ci == DataflowGraph::npos || !g.node(ci).schema_known) {
        return nullptr;
      }
      return &g.node(ci).schema;
    };
    std::vector<std::vector<size_t>> out;
    auto full_set = [&] {
      std::vector<size_t> s(ncols);
      for (size_t i = 0; i < ncols; ++i) s[i] = i;
      return s;
    };
    switch (p.kind) {
      case PlanKind::kScan:
        break;  // structural proofs only: no stats-derived uniqueness
      case PlanKind::kSelect:
      case PlanKind::kSort:
        out = child_fact(0).sets;  // filtering / reordering keeps proofs
        break;
      case PlanKind::kProject: {
        // A set survives when every member column is passed through as a
        // plain column reference; distinct inputs disagreeing on S yield
        // outputs disagreeing on the mapped positions.
        const ra::Schema* cs = child_schema(0);
        if (cs == nullptr) break;
        std::unordered_map<size_t, size_t> child_to_out;
        for (size_t j = 0; j < p.items.size(); ++j) {
          const auto& e = p.items[j].expr;
          if (e == nullptr || e->kind != ra::ExprKind::kColumn) continue;
          auto ci = cs->IndexOf(e->column_name);
          if (ci.has_value() && child_to_out.count(*ci) == 0) {
            child_to_out[*ci] = j;
          }
        }
        for (const auto& s : child_fact(0).sets) {
          std::vector<size_t> mapped;
          bool ok = true;
          for (size_t c : s) {
            auto it = child_to_out.find(c);
            if (it == child_to_out.end()) {
              ok = false;
              break;
            }
            mapped.push_back(it->second);
          }
          if (ok) out.push_back(std::move(mapped));
        }
        break;
      }
      case PlanKind::kDistinct:
        out = child_fact(0).sets;
        out.push_back(full_set());
        break;
      case PlanKind::kGroupBy:
        if (p.group_cols.empty()) {
          out.push_back({});  // scalar aggregate: exactly one row
        } else {
          std::vector<size_t> s(p.group_cols.size());
          for (size_t i = 0; i < s.size(); ++i) s[i] = i;
          out.push_back(std::move(s));  // group cols lead the output schema
        }
        break;
      case PlanKind::kJoin:
      case PlanKind::kLeftOuterJoin: {
        const ra::Schema* ls = child_schema(0);
        const ra::Schema* rs = child_schema(1);
        if (ls == nullptr || rs == nullptr) break;
        const size_t nl = ls->NumColumns();
        auto lk = ResolveCols(*ls, p.keys.left);
        auto rk = ResolveCols(*rs, p.keys.right);
        const bool right_unique =
            rk.has_value() && HasUniqueSubset(child_fact(1).sets, *rk);
        const bool left_unique =
            lk.has_value() && HasUniqueSubset(child_fact(0).sets, *lk);
        if (right_unique) {
          // Each left row matches at most one right row: the output embeds
          // injectively into the left input, so left proofs survive.
          for (const auto& s : child_fact(0).sets) out.push_back(s);
        }
        if (left_unique && p.kind == PlanKind::kJoin) {
          for (const auto& s : child_fact(1).sets) {
            std::vector<size_t> shifted(s);
            for (auto& c : shifted) c += nl;
            out.push_back(std::move(shifted));
          }
        }
        break;
      }
      case PlanKind::kSemiJoin:
      case PlanKind::kAntiJoin:
        out = child_fact(0).sets;  // output ⊆ left rows
        break;
      case PlanKind::kDifference:
      case PlanKind::kIntersect:
        out = child_fact(0).sets;  // subset of the (distinct) left rows
        out.push_back(full_set()); // set semantics: output is distinct
        break;
      case PlanKind::kUnionAll:
        break;
      case PlanKind::kUnionDistinct:
        out.push_back(full_set());
        break;
      case PlanKind::kCrossProduct: {
        const ra::Schema* ls = child_schema(0);
        if (ls == nullptr) break;
        const size_t nl = ls->NumColumns();
        for (const auto& a : child_fact(0).sets) {
          for (const auto& b : child_fact(1).sets) {
            std::vector<size_t> s(a);
            for (size_t c : b) s.push_back(c + nl);
            out.push_back(std::move(s));
          }
        }
        break;
      }
      case PlanKind::kRename:
        out = child_fact(0).sets;  // positional identity
        break;
      case PlanKind::kMVJoin:
        out.push_back({0});  // grouped by ID
        break;
      case PlanKind::kMMJoin:
        out.push_back({0, 1});  // grouped by (F, T)
        break;
    }
    Fact f;
    f.sets = NormalizeSets(std::move(out));
    return f;
  }

  bool Join(Fact* into, const Fact& from) {
    if (*into == from) return false;
    *into = from;
    return true;
  }

  void Widen(Fact* f) { f->sets.clear(); }  // drop to "no proofs"

 private:
  Fact RelationTransfer(const DataflowGraph& g, size_t n,
                        const std::vector<Fact>& all) {
    const DfNode& node = g.node(n);
    const DataflowQuery& q = g.query();
    Fact f;
    if (node.relation != q.rec_name) {
      // Definition pseudo-node: its root's proofs.
      for (size_t in : node.inputs) {
        if (g.node(in).role == DfNode::Role::kDefRoot) {
          f.sets = all[in].sets;
          break;
        }
      }
      return f;
    }
    const size_t ncols = q.rec_schema.NumColumns();
    if (q.mode == core::UnionMode::kUnionDistinct) {
      // The driver maintains R as a set (`seen`): full-row uniqueness.
      std::vector<size_t> s(ncols);
      for (size_t i = 0; i < ncols; ++i) s[i] = i;
      f.sets.push_back(std::move(s));
    } else if (q.mode == core::UnionMode::kUnionByUpdate &&
               !q.update_keys.empty()) {
      // ⊎ keyed on K keeps R K-unique provided it starts K-unique (single
      // init contribution proving a subset of K) and every delta is
      // K-unique (duplicate delta keys would fan out the outer join).
      auto k = ResolveCols(q.rec_schema, q.update_keys);
      if (k.has_value()) {
        size_t init_roots = 0;
        bool ok = true;
        for (size_t in : node.inputs) {
          const auto role = g.node(in).role;
          if (role == DfNode::Role::kInitRoot) {
            ++init_roots;
            ok = ok && HasUniqueSubset(all[in].sets, *k);
          } else if (role == DfNode::Role::kDeltaRoot) {
            ok = ok && HasUniqueSubset(all[in].sets, *k);
          }
        }
        if (ok && init_roots == 1) {
          std::vector<size_t> key(*k);
          std::sort(key.begin(), key.end());
          f.sets.push_back(std::move(key));
        }
      }
    }
    f.sets = NormalizeSets(std::move(f.sets));
    return f;
  }
};

// ---------------------------------------------------------------------------
// Analysis 4: constant / interval propagation (forward, widening)
// ---------------------------------------------------------------------------

struct IntervalFact {
  bool valid = false;  ///< bottom until the node's inputs are computed
  std::vector<VI> cols;
  PredicateVerdict verdict = PredicateVerdict::kUnknown;
};

class IntervalAnalysis {
 public:
  using Fact = IntervalFact;

  IntervalAnalysis(const ra::Catalog* catalog, bool scan_base_values)
      : catalog_(catalog), scan_base_values_(scan_base_values) {}

  DataflowDirection direction() const { return DataflowDirection::kForward; }

  Fact Boundary(const DataflowGraph&, size_t) { return Fact{}; }

  Fact Transfer(const DataflowGraph& g, size_t n,
                const std::vector<Fact>& all) {
    const DfNode& node = g.node(n);
    if (!node.relation.empty()) {
      // R: the hull over every contribution computed so far (optimistic
      // least-fixpoint iteration from the init roots); definitions copy
      // their root.
      Fact f;
      for (size_t in : node.inputs) {
        if (!all[in].valid) continue;
        if (!f.valid) {
          f.valid = true;
          f.cols = all[in].cols;
        } else if (f.cols.size() == all[in].cols.size()) {
          for (size_t c = 0; c < f.cols.size(); ++c) {
            f.cols[c].Join(all[in].cols[c]);
          }
        }
      }
      return f;
    }
    if (!node.schema_known) {
      // Still mark valid with all-Top so downstream nodes can proceed.
      Fact f;
      f.valid = true;
      return f;
    }
    const Plan& p = *node.plan;
    const size_t ncols = node.schema.NumColumns();
    auto child = [&](size_t i) -> const Fact* {
      if (i >= p.children.size()) return nullptr;
      const size_t ci = g.IndexOf(p.children[i].get());
      return ci == DataflowGraph::npos ? nullptr : &all[ci];
    };
    auto child_node = [&](size_t i) -> const DfNode* {
      if (i >= p.children.size()) return nullptr;
      const size_t ci = g.IndexOf(p.children[i].get());
      return ci == DataflowGraph::npos ? nullptr : &g.node(ci);
    };
    auto env_of = [&](size_t i) -> IntervalEnv {
      IntervalEnv e;
      const DfNode* cn = child_node(i);
      const Fact* cf = child(i);
      if (cn != nullptr && cn->schema_known && cf != nullptr && cf->valid &&
          cf->cols.size() == cn->schema.NumColumns()) {
        e.schema = &cn->schema;
        e.cols = &cf->cols;
      }
      return e;
    };
    Fact f;
    f.valid = true;
    f.cols.assign(ncols, VI::Top());

    switch (p.kind) {
      case PlanKind::kScan: {
        const size_t rel = g.RelationIndex(p.table_name);
        if (rel != DataflowGraph::npos) {
          const Fact& rf = all[rel];
          if (!rf.valid) return Fact{};  // wait for the relation
          if (rf.cols.size() == ncols) f.cols = rf.cols;
          return f;
        }
        if (!scan_base_values_ || catalog_ == nullptr) return f;
        auto t = catalog_->Get(p.table_name);
        if (!t.ok() || (*t)->Empty()) return f;
        ScanValues(**t, &f.cols);
        return f;
      }
      case PlanKind::kSelect: {
        const Fact* cf = child(0);
        if (cf == nullptr || !cf->valid) return Fact{};
        if (cf->cols.size() == ncols) f.cols = cf->cols;
        const IntervalEnv env = env_of(0);
        f.verdict = JudgePredicate(p.predicate, env);
        if (env.schema != nullptr && f.verdict != PredicateVerdict::kAlwaysFalse) {
          bool contradiction = false;
          RefineByPredicate(p.predicate, *env.schema, &f.cols,
                            &contradiction);
          if (contradiction && !ExprCallsRand(p.predicate)) {
            f.verdict = PredicateVerdict::kAlwaysFalse;
          }
        }
        return f;
      }
      case PlanKind::kProject: {
        const Fact* cf = child(0);
        if (cf == nullptr || !cf->valid) return Fact{};
        const IntervalEnv env = env_of(0);
        for (size_t j = 0; j < p.items.size() && j < ncols; ++j) {
          f.cols[j] = EvalInterval(p.items[j].expr, env);
        }
        return f;
      }
      case PlanKind::kJoin:
      case PlanKind::kCrossProduct: {
        const Fact* lf = child(0);
        const Fact* rf = child(1);
        if (lf == nullptr || rf == nullptr || !lf->valid || !rf->valid) {
          return Fact{};
        }
        ConcatCols(*lf, *rf, ncols, &f.cols);
        if (p.kind == PlanKind::kJoin) {
          // Residual verdict over the concatenated row.
          IntervalEnv env;
          env.schema = &node.schema;
          env.cols = &f.cols;
          if (p.predicate != nullptr) {
            f.verdict = JudgePredicate(p.predicate, env);
          }
          // Provably-disjoint key intervals: the join emits nothing.
          if (DisjointKeys(p, env_of(0), env_of(1))) {
            f.verdict = PredicateVerdict::kAlwaysFalse;
          }
        }
        return f;
      }
      case PlanKind::kLeftOuterJoin: {
        const Fact* lf = child(0);
        const Fact* rf = child(1);
        if (lf == nullptr || rf == nullptr || !lf->valid || !rf->valid) {
          return Fact{};
        }
        // Right columns may be NULL-padded: Top.
        const size_t nl = lf->cols.size();
        for (size_t c = 0; c < nl && c < ncols; ++c) f.cols[c] = lf->cols[c];
        return f;
      }
      case PlanKind::kSemiJoin:
      case PlanKind::kAntiJoin:
      case PlanKind::kDifference:
      case PlanKind::kIntersect:
      case PlanKind::kDistinct:
      case PlanKind::kSort:
      case PlanKind::kRename: {
        const Fact* cf = child(0);
        if (cf == nullptr || !cf->valid) return Fact{};
        if (cf->cols.size() == ncols) f.cols = cf->cols;
        return f;
      }
      case PlanKind::kUnionAll:
      case PlanKind::kUnionDistinct: {
        const Fact* lf = child(0);
        const Fact* rf = child(1);
        if (lf == nullptr || rf == nullptr || !lf->valid || !rf->valid) {
          return Fact{};
        }
        if (lf->cols.size() == ncols && rf->cols.size() == ncols) {
          for (size_t c = 0; c < ncols; ++c) {
            f.cols[c] = lf->cols[c];
            f.cols[c].Join(rf->cols[c]);
          }
        }
        return f;
      }
      case PlanKind::kGroupBy: {
        const Fact* cf = child(0);
        if (cf == nullptr || !cf->valid) return Fact{};
        const IntervalEnv env = env_of(0);
        const bool scalar = p.group_cols.empty();
        size_t j = 0;
        if (env.schema != nullptr) {
          for (const auto& gcol : p.group_cols) {
            auto i = env.schema->IndexOf(gcol);
            if (i.has_value() && j < ncols) f.cols[j] = (*env.cols)[*i];
            ++j;
          }
        } else {
          j = p.group_cols.size();
        }
        for (const auto& agg : p.aggs) {
          if (j >= ncols) break;
          f.cols[j++] = AggInterval(agg, env, scalar);
        }
        return f;
      }
      case PlanKind::kMMJoin:
      case PlanKind::kMVJoin: {
        const Fact* mf = child(0);
        const Fact* vf = child(1);
        if (mf == nullptr || vf == nullptr || !mf->valid || !vf->valid) {
          return Fact{};
        }
        const IntervalEnv me = env_of(0);
        const IntervalEnv ve = env_of(1);
        auto col_iv = [&](const IntervalEnv& e, const std::string& name) {
          if (e.schema == nullptr) return VI::Top();
          auto i = e.schema->IndexOf(name);
          return i.has_value() ? (*e.cols)[*i] : VI::Top();
        };
        const VI mw = col_iv(me, p.a_cols.weight);
        if (p.kind == PlanKind::kMMJoin) {
          const VI prod = ApplyMul(p.semiring.multiply, mw,
                                   col_iv(ve, p.b_cols.weight));
          f.cols[0] = col_iv(me, p.a_cols.from);
          f.cols[1] = col_iv(ve, p.b_cols.to);
          if (ncols > 2) f.cols[2] = FoldAgg(p.semiring.add, prod);
        } else {
          const VI prod =
              ApplyMul(p.semiring.multiply, mw, col_iv(ve, p.v_cols.weight));
          f.cols[0] = p.orientation == core::MVOrientation::kStandard
                          ? col_iv(me, p.a_cols.from)
                          : col_iv(me, p.a_cols.to);
          if (ncols > 1) f.cols[1] = FoldAgg(p.semiring.add, prod);
        }
        return f;
      }
    }
    return f;
  }

  bool Join(Fact* into, const Fact& from) {
    if (!from.valid) return false;
    if (!into->valid || into->cols.size() != from.cols.size()) {
      *into = from;
      return true;
    }
    bool changed = false;
    for (size_t c = 0; c < into->cols.size(); ++c) {
      changed = into->cols[c].Join(from.cols[c]) || changed;
    }
    if (into->verdict != from.verdict) {
      into->verdict = from.verdict;
      changed = true;
    }
    return changed;
  }

  void Widen(Fact* f) {
    for (auto& c : f->cols) c = VI::Top();
  }

 private:
  static VI ApplyMul(ra::BinaryOp op, const VI& a, const VI& b) {
    return op == ra::BinaryOp::kAdd ? AddI(a, b) : MulI(a, b);
  }

  /// ⊕-fold of group values each drawn from `arg` (≥ 1 row per group).
  static VI FoldAgg(ra::AggKind k, const VI& arg) {
    switch (k) {
      case ra::AggKind::kMin:
      case ra::AggKind::kMax:
      case ra::AggKind::kAvg:
        return arg;  // stays within the hull
      case ra::AggKind::kCount: {
        VI v = VI::Top();
        v.has_lo = true;
        v.lo = 1;
        return v;
      }
      case ra::AggKind::kSum: {
        VI v = VI::Top();
        if (arg.has_lo && arg.lo >= 0) {
          v.has_lo = true;
          v.lo = arg.lo;
        } else if (arg.has_hi && arg.hi <= 0) {
          v.has_hi = true;
          v.hi = arg.hi;
        }
        return v;
      }
    }
    return VI::Top();
  }

  static VI AggInterval(const ra::AggSpec& agg, const IntervalEnv& env,
                        bool scalar) {
    if (scalar) {
      // Scalar aggregates run even over empty input: count yields 0, the
      // rest yield NULL — only count gets a non-Top interval.
      if (agg.kind == ra::AggKind::kCount) {
        VI v = VI::Top();
        v.has_lo = true;
        v.lo = 0;
        return v;
      }
      return VI::Top();
    }
    if (agg.kind == ra::AggKind::kCount && agg.arg != nullptr) {
      // count(expr) skips NULLs: a group could still count 0.
      VI v = VI::Top();
      v.has_lo = true;
      v.lo = 0;
      return v;
    }
    const VI arg =
        agg.arg == nullptr ? VI::Top() : EvalInterval(agg.arg, env);
    return FoldAgg(agg.kind, arg);
  }

  static void ConcatCols(const IntervalFact& l, const IntervalFact& r,
                         size_t ncols, std::vector<VI>* out) {
    size_t j = 0;
    for (const VI& v : l.cols) {
      if (j >= ncols) return;
      (*out)[j++] = v;
    }
    for (const VI& v : r.cols) {
      if (j >= ncols) return;
      (*out)[j++] = v;
    }
  }

  static bool DisjointKeys(const Plan& p, const IntervalEnv& le,
                           const IntervalEnv& re) {
    if (le.schema == nullptr || re.schema == nullptr) return false;
    for (size_t i = 0;
         i < p.keys.left.size() && i < p.keys.right.size(); ++i) {
      auto li = le.schema->IndexOf(p.keys.left[i]);
      auto ri = re.schema->IndexOf(p.keys.right[i]);
      if (!li.has_value() || !ri.has_value()) continue;
      if (CertainlyFalse(
              CompareI(ra::BinaryOp::kEq, (*le.cols)[*li], (*re.cols)[*ri]))) {
        return true;
      }
    }
    return false;
  }

  /// Conjunct-wise refinement: `col op literal` (either order) narrows the
  /// column's interval; an empty meet marks a contradiction.
  static void RefineByPredicate(const ra::ExprPtr& pred,
                                const ra::Schema& schema,
                                std::vector<VI>* cols, bool* contradiction) {
    if (pred == nullptr) return;
    if (pred->kind == ra::ExprKind::kBinary &&
        pred->bin_op == ra::BinaryOp::kAnd) {
      RefineByPredicate(pred->children[0], schema, cols, contradiction);
      RefineByPredicate(pred->children[1], schema, cols, contradiction);
      return;
    }
    if (pred->kind != ra::ExprKind::kBinary) return;
    const auto& l = pred->children[0];
    const auto& r = pred->children[1];
    ra::BinaryOp op = pred->bin_op;
    const Expr* col = nullptr;
    const Expr* lit = nullptr;
    if (l->kind == ra::ExprKind::kColumn &&
        r->kind == ra::ExprKind::kLiteral) {
      col = l.get();
      lit = r.get();
    } else if (r->kind == ra::ExprKind::kColumn &&
               l->kind == ra::ExprKind::kLiteral) {
      col = r.get();
      lit = l.get();
      // Mirror the comparison: 5 < c  ≡  c > 5.
      switch (op) {
        case ra::BinaryOp::kLt: op = ra::BinaryOp::kGt; break;
        case ra::BinaryOp::kLe: op = ra::BinaryOp::kGe; break;
        case ra::BinaryOp::kGt: op = ra::BinaryOp::kLt; break;
        case ra::BinaryOp::kGe: op = ra::BinaryOp::kLe; break;
        default: break;
      }
    } else {
      return;
    }
    if (!lit->literal.is_numeric()) return;
    auto idx = schema.IndexOf(col->column_name);
    if (!idx.has_value() || *idx >= cols->size()) return;
    const double v = lit->literal.ToDouble();
    VI bound = VI::Top();
    switch (op) {
      case ra::BinaryOp::kEq: bound = VI::Const(v); break;
      case ra::BinaryOp::kLt:
      case ra::BinaryOp::kLe:
        bound.has_hi = true;
        bound.hi = v;
        break;
      case ra::BinaryOp::kGt:
      case ra::BinaryOp::kGe:
        bound.has_lo = true;
        bound.lo = v;
        break;
      default:
        return;
    }
    (*cols)[*idx].Meet(bound);
    if ((*cols)[*idx].empty) *contradiction = true;
  }

  const ra::Catalog* catalog_;
  bool scan_base_values_;

  static void ScanValues(const ra::Table& t, std::vector<VI>* cols);
  using Expr = ra::Expr;
};

void IntervalAnalysis::ScanValues(const ra::Table& t, std::vector<VI>* cols) {
  const size_t n = t.schema().NumColumns();
  for (size_t c = 0; c < n && c < cols->size(); ++c) {
    bool ok = true;
    double lo = 0, hi = 0;
    bool first = true;
    for (const auto& row : t.rows()) {
      const ra::Value& v = row[c];
      if (!v.is_numeric()) {
        ok = false;
        break;
      }
      const double d = v.ToDouble();
      if (first) {
        lo = hi = d;
        first = false;
      } else {
        lo = std::min(lo, d);
        hi = std::max(hi, d);
      }
    }
    if (ok && !first) (*cols)[c] = VI::Range(lo, hi);
  }
}

// ---------------------------------------------------------------------------
// Analysis 5: cardinality bounds (forward, widening)
// ---------------------------------------------------------------------------
//
// Reads the key facts (a key-unique join side caps fan-out) and the
// predicate verdicts (a proven-false selection emits nothing) written by
// the earlier passes. Base-table row counts come from fresh TableStats and
// are only consulted on the executor path (options.scan_base_values),
// where base relations cannot change for the lifetime of the facts.

namespace {

constexpr size_t kSizeMax = std::numeric_limits<size_t>::max();

size_t SatAdd(size_t a, size_t b) {
  return a > kSizeMax - b ? kSizeMax : a + b;
}
bool SatMul(size_t a, size_t b, size_t* out) {
  if (a == 0 || b == 0) {
    *out = 0;
    return true;
  }
  if (a > kSizeMax / b) return false;
  *out = a * b;
  return true;
}
bool SameBounds(const RowBounds& a, const RowBounds& b) {
  return a.known == b.known && a.min_rows == b.min_rows &&
         a.has_max == b.has_max && a.max_rows == b.max_rows;
}

}  // namespace (helpers stay in the enclosing anonymous namespace)

class CardinalityAnalysis {
 public:
  using Fact = RowBounds;

  CardinalityAnalysis(const ra::Catalog* catalog, bool use_stats,
                      const PlanFacts* facts)
      : catalog_(catalog), use_stats_(use_stats), facts_(facts) {}

  DataflowDirection direction() const { return DataflowDirection::kForward; }

  Fact Boundary(const DataflowGraph&, size_t) { return Fact{}; }

  Fact Transfer(const DataflowGraph& g, size_t n,
                const std::vector<Fact>& all) {
    const DfNode& node = g.node(n);
    if (!node.relation.empty()) return RelationTransfer(g, n, all);
    const Plan& p = *node.plan;
    auto child = [&](size_t i) -> Fact {
      if (i >= p.children.size()) return Fact{};
      const size_t ci = g.IndexOf(p.children[i].get());
      return ci == DataflowGraph::npos ? Fact{} : all[ci];
    };
    switch (p.kind) {
      case PlanKind::kScan: {
        const size_t rel = g.RelationIndex(p.table_name);
        if (rel != DataflowGraph::npos) return all[rel];
        if (use_stats_ && catalog_ != nullptr) {
          auto t = catalog_->Get(p.table_name);
          if (t.ok() && (*t)->stats().present) {
            return Fact::Exact((*t)->stats().num_rows);
          }
        }
        return Fact::Unbounded();
      }
      case PlanKind::kSelect: {
        const Fact c = child(0);
        if (!c.known) return Fact{};
        const OperatorFacts* f =
            facts_ == nullptr ? nullptr : facts_->Get(node.plan);
        const PredicateVerdict v =
            f == nullptr ? PredicateVerdict::kUnknown : f->predicate;
        if (v == PredicateVerdict::kAlwaysFalse) return Fact::Exact(0);
        if (v == PredicateVerdict::kAlwaysTrue) return c;
        Fact r = c;
        r.min_rows = 0;
        return r;
      }
      case PlanKind::kProject:
      case PlanKind::kRename:
      case PlanKind::kSort:
        return child(0);
      case PlanKind::kDistinct: {
        const Fact c = child(0);
        if (!c.known) return Fact{};
        Fact r = c;
        r.min_rows = c.min_rows > 0 ? 1 : 0;
        return r;
      }
      case PlanKind::kJoin:
      case PlanKind::kLeftOuterJoin: {
        const Fact l = child(0);
        const Fact r = child(1);
        if (!l.known || !r.known) return Fact{};
        Fact out = Fact::Unbounded();
        if (l.has_max && r.has_max) {
          size_t m;
          if (SatMul(l.max_rows, r.max_rows, &m)) {
            out.has_max = true;
            out.max_rows = m;
          }
        }
        // A key-unique right side caps fan-out at one match per left row.
        if (l.has_max && RightKeyUnique(g, p)) {
          if (!out.has_max || l.max_rows < out.max_rows) {
            out.has_max = true;
            out.max_rows = l.max_rows;
          }
        }
        if (p.kind == PlanKind::kLeftOuterJoin) {
          out.min_rows = l.min_rows;  // unmatched left rows are padded
        } else {
          const OperatorFacts* f =
              facts_ == nullptr ? nullptr : facts_->Get(node.plan);
          if (f != nullptr && f->predicate == PredicateVerdict::kAlwaysFalse) {
            return Fact::Exact(0);
          }
        }
        return out;
      }
      case PlanKind::kSemiJoin:
      case PlanKind::kAntiJoin:
      case PlanKind::kDifference: {
        const Fact l = child(0);
        if (!l.known) return Fact{};
        Fact r = l;
        r.min_rows = 0;
        return r;
      }
      case PlanKind::kIntersect: {
        const Fact l = child(0);
        const Fact r = child(1);
        if (!l.known || !r.known) return Fact{};
        Fact out = Fact::Unbounded();
        if (l.has_max) {
          out.has_max = true;
          out.max_rows = l.max_rows;
        }
        if (r.has_max && (!out.has_max || r.max_rows < out.max_rows)) {
          out.has_max = true;
          out.max_rows = r.max_rows;
        }
        return out;
      }
      case PlanKind::kUnionAll: {
        const Fact l = child(0);
        const Fact r = child(1);
        if (!l.known || !r.known) return Fact{};
        Fact out;
        out.known = true;
        out.min_rows = SatAdd(l.min_rows, r.min_rows);
        if (l.has_max && r.has_max) {
          out.has_max = true;
          out.max_rows = SatAdd(l.max_rows, r.max_rows);
        }
        return out;
      }
      case PlanKind::kUnionDistinct: {
        const Fact l = child(0);
        const Fact r = child(1);
        if (!l.known || !r.known) return Fact{};
        Fact out;
        out.known = true;
        out.min_rows = (l.min_rows > 0 || r.min_rows > 0) ? 1 : 0;
        if (l.has_max && r.has_max) {
          out.has_max = true;
          out.max_rows = SatAdd(l.max_rows, r.max_rows);
        }
        return out;
      }
      case PlanKind::kGroupBy: {
        const Fact c = child(0);
        if (!c.known) return Fact{};
        if (p.group_cols.empty()) return Fact::Exact(1);  // scalar: one row
        Fact r = c;
        r.min_rows = c.min_rows > 0 ? 1 : 0;
        return r;
      }
      case PlanKind::kCrossProduct: {
        const Fact l = child(0);
        const Fact r = child(1);
        if (!l.known || !r.known) return Fact{};
        Fact out;
        out.known = true;
        size_t m;
        if (!SatMul(l.min_rows, r.min_rows, &m)) m = kSizeMax;
        out.min_rows = m;
        if (l.has_max && r.has_max && SatMul(l.max_rows, r.max_rows, &m)) {
          out.has_max = true;
          out.max_rows = m;
        }
        return out;
      }
      case PlanKind::kMMJoin: {
        const Fact a = child(0);
        const Fact b = child(1);
        if (!a.known || !b.known) return Fact{};
        Fact out = Fact::Unbounded();
        size_t m;
        if (a.has_max && b.has_max && SatMul(a.max_rows, b.max_rows, &m)) {
          out.has_max = true;
          out.max_rows = m;
        }
        return out;
      }
      case PlanKind::kMVJoin: {
        const Fact m = child(0);
        if (!m.known || !child(1).known) return Fact{};
        Fact out = Fact::Unbounded();
        if (m.has_max) {
          out.has_max = true;
          out.max_rows = m.max_rows;  // ≤ one group per matrix row
        }
        return out;
      }
    }
    return Fact{};
  }

  bool Join(Fact* into, const Fact& from) {
    if (SameBounds(*into, from)) return false;
    *into = from;
    return true;
  }

  void Widen(Fact* f) {
    f->known = true;
    f->min_rows = 0;
    f->has_max = false;
  }

 private:
  bool RightKeyUnique(const DataflowGraph& g, const Plan& p) const {
    if (facts_ == nullptr || p.children.size() < 2 || p.keys.right.empty()) {
      return false;
    }
    const size_t ri = g.IndexOf(p.children[1].get());
    if (ri == DataflowGraph::npos || !g.node(ri).schema_known) return false;
    const OperatorFacts* rf = facts_->Get(p.children[1].get());
    if (rf == nullptr) return false;
    auto rk = ResolveCols(g.node(ri).schema, p.keys.right);
    return rk.has_value() && HasUniqueSubset(rf->unique_sets, *rk);
  }

  const ra::Catalog* catalog_;
  bool use_stats_;
  const PlanFacts* facts_;

  Fact RelationTransfer(const DataflowGraph& g, size_t n,
                        const std::vector<Fact>& all) {
    const DfNode& node = g.node(n);
    const DataflowQuery& q = g.query();
    if (node.relation != q.rec_name) {
      for (size_t in : node.inputs) {
        if (g.node(in).role == DfNode::Role::kDefRoot) return all[in];
      }
      return Fact{};
    }
    Fact f;
    f.known = true;
    // Lower bound: R accumulates every init contribution under union all;
    // union (distinct) may collapse them; ⊎ may replace wholesale. Under
    // SQL'99 working-table semantics R is replaced by each delta, so no
    // accumulation-derived lower bound is sound.
    if (q.sql99_working_table) {
      f.min_rows = 0;
    } else if (q.mode == core::UnionMode::kUnionAll) {
      for (size_t in : node.inputs) {
        if (g.node(in).role == DfNode::Role::kInitRoot && all[in].known) {
          f.min_rows = SatAdd(f.min_rows, all[in].min_rows);
        }
      }
    } else if (q.mode == core::UnionMode::kUnionDistinct) {
      for (size_t in : node.inputs) {
        if (g.node(in).role == DfNode::Role::kInitRoot && all[in].known &&
            all[in].min_rows > 0) {
          f.min_rows = 1;
        }
      }
    }
    // Upper bound only under a maxrecursion cap: init + k iterations each
    // contributing at most the sum of the delta maxima.
    if (q.maxrecursion > 0) {
      size_t init_max = 0, delta_max = 0;
      bool ok = true;
      for (size_t in : node.inputs) {
        const auto role = g.node(in).role;
        if (role != DfNode::Role::kInitRoot &&
            role != DfNode::Role::kDeltaRoot) {
          continue;
        }
        if (!all[in].known || !all[in].has_max) {
          ok = false;
          break;
        }
        if (role == DfNode::Role::kInitRoot) {
          init_max = SatAdd(init_max, all[in].max_rows);
        } else {
          delta_max = SatAdd(delta_max, all[in].max_rows);
        }
      }
      if (ok) {
        size_t iter_total;
        if (!SatMul(static_cast<size_t>(q.maxrecursion), delta_max,
                    &iter_total)) {
          iter_total = kSizeMax;
        }
        f.has_max = true;
        f.max_rows = SatAdd(init_max, iter_total);
      }
    }
    return f;
  }
};

// ---------------------------------------------------------------------------
// Analysis 6: backward column liveness
// ---------------------------------------------------------------------------
//
// Which output columns of each operator can some consumer observe?
// Materialized roots (init / delta / definition plans) are pinned fully
// live — their tables are what the driver appends, merges, and returns —
// so pruning below them is gated on genuine interior demand. Positional
// consumers (set operations, Distinct, column-renaming Rename) demand
// everything; name-addressed consumers demand exactly what they resolve.

struct LiveFact {
  bool all = false;
  std::set<size_t> cols;

  bool operator==(const LiveFact& o) const {
    return all == o.all && cols == o.cols;
  }
  void MergeFrom(const LiveFact& o) {
    if (o.all) {
      all = true;
      cols.clear();
      return;
    }
    if (!all) cols.insert(o.cols.begin(), o.cols.end());
  }
};

class LivenessAnalysis {
 public:
  using Fact = LiveFact;

  DataflowDirection direction() const { return DataflowDirection::kBackward; }

  Fact Boundary(const DataflowGraph& g, size_t n) {
    Fact f;
    if (g.node(n).role != DfNode::Role::kInterior) f.all = true;
    return f;
  }

  Fact Transfer(const DataflowGraph& g, size_t n,
                const std::vector<Fact>& all) {
    const DfNode& node = g.node(n);
    Fact f = Boundary(g, n);
    if (!node.relation.empty()) {
      // Relation liveness = union over its scan sites (identity schemas).
      for (size_t c : node.outputs) f.MergeFrom(all[c]);
      return f;
    }
    for (size_t c : node.outputs) {
      const DfNode& consumer = g.node(c);
      if (!consumer.relation.empty()) continue;  // roots are pinned live
      f.MergeFrom(Contribution(g, consumer, all[c], node));
      if (f.all) break;
    }
    return f;
  }

  bool Join(Fact* into, const Fact& from) {
    if (*into == from) return false;
    *into = from;
    return true;
  }

  void Widen(Fact* f) { f->all = true; }

 private:
  static LiveFact AllLive() {
    LiveFact f;
    f.all = true;
    return f;
  }

  /// Adds the columns `expr` references, resolved against `schema`; an
  /// unresolvable reference makes the whole fact all-live (it belongs to
  /// the other join side, or resolution is beyond us — stay conservative
  /// only when nothing resolves anywhere: here a miss is simply skipped by
  /// callers that try both sides, so this variant reports success).
  static bool AddRefs(const ra::Schema& schema, const ra::ExprPtr& expr,
                      LiveFact* f) {
    std::vector<std::string> names;
    CollectExprColumns(expr, &names);
    bool all_resolved = true;
    for (const auto& name : names) {
      auto i = schema.IndexOf(name);
      if (i.has_value()) {
        if (!f->all) f->cols.insert(*i);
      } else {
        all_resolved = false;
      }
    }
    return all_resolved;
  }

  static void AddNames(const ra::Schema& schema,
                       const std::vector<std::string>& names, LiveFact* f) {
    for (const auto& name : names) {
      auto i = schema.IndexOf(name);
      if (i.has_value()) {
        if (!f->all) f->cols.insert(*i);
      } else {
        *f = AllLive();
        return;
      }
    }
  }

  /// What consumer `c` needs from child `child` given c's own live set.
  static LiveFact Contribution(const DataflowGraph& g, const DfNode& c,
                               const LiveFact& lc, const DfNode& child) {
    const Plan& p = *c.plan;
    LiveFact out;
    for (size_t ord = 0; ord < p.children.size(); ++ord) {
      if (p.children[ord].get() != child.plan) continue;
      out.MergeFrom(ContributionAt(g, c, lc, ord, child));
      if (out.all) break;
    }
    return out;
  }

  static LiveFact ContributionAt(const DataflowGraph& g, const DfNode& c,
                                 const LiveFact& lc, size_t ord,
                                 const DfNode& child) {
    const Plan& p = *c.plan;
    if (!child.schema_known) return AllLive();
    const ra::Schema& cs = child.schema;
    LiveFact f;
    switch (p.kind) {
      case PlanKind::kSelect:
        f = lc;
        AddRefs(cs, p.predicate, &f);
        return f;
      case PlanKind::kProject:
        for (const auto& item : p.items) {
          if (!AddRefs(cs, item.expr, &f)) return AllLive();
        }
        return f;
      case PlanKind::kJoin:
      case PlanKind::kLeftOuterJoin:
      case PlanKind::kCrossProduct: {
        // Map the consumer's live positions onto this side of the concat.
        const size_t li = g.IndexOf(p.children[0].get());
        if (li == DataflowGraph::npos || !g.node(li).schema_known) {
          return AllLive();
        }
        const size_t nl = g.node(li).schema.NumColumns();
        if (lc.all) {
          f.all = true;
        } else {
          for (size_t pos : lc.cols) {
            if (ord == 0 && pos < nl) f.cols.insert(pos);
            if (ord == 1 && pos >= nl) f.cols.insert(pos - nl);
          }
        }
        AddNames(cs, ord == 0 ? p.keys.left : p.keys.right, &f);
        // Residual references resolving on this side are needed here; the
        // rest belong to the other side.
        AddRefs(cs, p.predicate, &f);
        return f;
      }
      case PlanKind::kSemiJoin:
      case PlanKind::kAntiJoin:
        if (ord == 0) {
          f = lc;
          AddNames(cs, p.keys.left, &f);
        } else {
          AddNames(cs, p.keys.right, &f);
        }
        return f;
      case PlanKind::kUnionAll:
      case PlanKind::kUnionDistinct:
      case PlanKind::kDifference:
      case PlanKind::kIntersect:
      case PlanKind::kDistinct:
      case PlanKind::kRename:
        // Positional / whole-row semantics: everything is observable.
        return AllLive();
      case PlanKind::kGroupBy:
        AddNames(cs, p.group_cols, &f);
        for (const auto& agg : p.aggs) {
          if (agg.arg != nullptr && !AddRefs(cs, agg.arg, &f)) {
            return AllLive();
          }
        }
        return f;
      case PlanKind::kSort:
        f = lc;
        AddNames(cs, p.sort_cols, &f);
        return f;
      case PlanKind::kMMJoin: {
        const core::MatrixCols& m = ord == 0 ? p.a_cols : p.b_cols;
        AddNames(cs, {m.from, m.to, m.weight}, &f);
        return f;
      }
      case PlanKind::kMVJoin:
        if (ord == 0) {
          AddNames(cs, {p.a_cols.from, p.a_cols.to, p.a_cols.weight}, &f);
        } else {
          AddNames(cs, {p.v_cols.id, p.v_cols.weight}, &f);
        }
        return f;
      case PlanKind::kScan:
        return AllLive();
    }
    return AllLive();
  }
};

}  // namespace

// ---------------------------------------------------------------------------
// Facts assembly
// ---------------------------------------------------------------------------

namespace {

PlanFacts ComputeFactsOnGraph(const DataflowGraph& g,
                              const ra::Catalog* catalog,
                              const FactsOptions& options) {
  PlanFacts facts;
  InvarianceAnalysis inv;
  const auto invf = RunDataflow(g, inv);
  MonotonicityAnalysis mono;
  const auto monof = RunDataflow(g, mono);
  KeyAnalysis key;
  const auto keyf = RunDataflow(g, key);
  IntervalAnalysis ivl(catalog, options.scan_base_values);
  const auto ivf = RunDataflow(g, ivl);

  // First pass: everything the cardinality analysis reads back through the
  // facts table (predicate verdicts, unique sets).
  for (size_t i = 0; i < g.size(); ++i) {
    const DfNode& n = g.node(i);
    if (n.plan == nullptr) continue;
    OperatorFacts& of = facts.Mutable(n.plan);
    of.schema_known = n.schema_known;
    of.schema = n.schema;
    of.out_name = n.out_name;
    of.path = n.path;
    of.unique_sets = keyf[i].sets;
    of.dup_free = !of.unique_sets.empty();
    if (ivf[i].valid) {
      of.intervals = ivf[i].cols;
      of.predicate = ivf[i].verdict;
    }
    of.folds = monof[i].folds;
    of.fold_sources = monof[i].fold_sources;
    of.has_negation = monof[i].has_negation;
    of.tables.assign(monof[i].tables.begin(), monof[i].tables.end());
    of.negated_tables.assign(monof[i].negated_tables.begin(),
                             monof[i].negated_tables.end());
    of.invariant = invf[i].invariant;
    of.uses_rand = invf[i].uses_rand;
    of.has_real_work = invf[i].has_real_work;
  }

  CardinalityAnalysis card(catalog, options.scan_base_values, &facts);
  const auto cardf = RunDataflow(g, card);
  LivenessAnalysis live;
  const auto livef = RunDataflow(g, live);

  for (size_t i = 0; i < g.size(); ++i) {
    const DfNode& n = g.node(i);
    if (n.plan != nullptr) {
      OperatorFacts& of = facts.Mutable(n.plan);
      of.rows = cardf[i];
      of.live_known = n.schema_known;
      of.live_columns.clear();
      if (n.schema_known) {
        if (livef[i].all) {
          for (size_t c = 0; c < n.schema.NumColumns(); ++c) {
            of.live_columns.push_back(c);
          }
        } else {
          of.live_columns.assign(livef[i].cols.begin(), livef[i].cols.end());
        }
      }
      if ((n.plan->kind == PlanKind::kMMJoin ||
           n.plan->kind == PlanKind::kMVJoin) &&
          !n.plan->children.empty()) {
        const size_t m = g.IndexOf(n.plan->children[0].get());
        if (m != DataflowGraph::npos && invf[m].invariant) {
          of.csr_eligible = true;
        }
      }
    } else {
      RelationFacts& rf = facts.MutableRelation(n.relation);
      rf.schema_known = n.schema_known;
      rf.schema = n.schema;
      rf.unique_sets = keyf[i].sets;
      if (ivf[i].valid) rf.intervals = ivf[i].cols;
      rf.rows = cardf[i];
      rf.invariant = invf[i].invariant;
      // Dead columns only make sense for a definition some plan actually
      // scans (the relation node's consumers are exactly its scan sites).
      if (n.relation != g.query().rec_name && !n.outputs.empty() &&
          n.schema_known && !livef[i].all) {
        for (size_t c = 0; c < n.schema.NumColumns(); ++c) {
          if (livef[i].cols.count(c) == 0) rf.dead_columns.push_back(c);
        }
      }
    }
  }
  return facts;
}

}  // namespace

PlanFacts ComputeFacts(const DataflowQuery& query, const ra::Catalog& catalog,
                       const FactsOptions& options) {
  const DataflowGraph g = DataflowGraph::Build(query, &catalog);
  return ComputeFactsOnGraph(g, &catalog, options);
}

PlanFacts ComputeQueryFacts(const core::WithPlusQuery& query,
                            const ra::Catalog& catalog,
                            const FactsOptions& options) {
  return ComputeFacts(ToDataflowQuery(query), catalog, options);
}

PlanFacts ComputeMonotonicityFacts(const core::WithPlusQuery& query) {
  const DataflowQuery dq = ToDataflowQuery(query);
  const DataflowGraph g = DataflowGraph::Build(dq, nullptr);
  MonotonicityAnalysis mono;
  const auto monof = RunDataflow(g, mono);
  PlanFacts facts;
  for (size_t i = 0; i < g.size(); ++i) {
    const DfNode& n = g.node(i);
    if (n.plan == nullptr) continue;
    OperatorFacts& of = facts.Mutable(n.plan);
    of.path = n.path;
    of.out_name = n.out_name;
    of.folds = monof[i].folds;
    of.fold_sources = monof[i].fold_sources;
    of.has_negation = monof[i].has_negation;
    of.tables.assign(monof[i].tables.begin(), monof[i].tables.end());
    of.negated_tables.assign(monof[i].negated_tables.begin(),
                             monof[i].negated_tables.end());
  }
  return facts;
}

// ---------------------------------------------------------------------------
// Hoist sets from invariance facts
// ---------------------------------------------------------------------------

namespace {

/// True when every computed-by definition `p` references is already
/// settled (materialized before the point the caller is planning for).
bool DefRefsSettled(const core::PlanPtr& p,
                    const std::unordered_set<std::string>& all_defs,
                    const std::unordered_set<std::string>& settled) {
  std::vector<core::TableRef> refs;
  core::CollectTableRefs(p, &refs);
  for (const auto& r : refs) {
    if (all_defs.count(r.name) > 0 && settled.count(r.name) == 0) {
      return false;
    }
  }
  return true;
}

/// Pre-order collection of maximal invariant subtrees with real work —
/// the same frontier core::LoopInvariantSubplans walks, but read off the
/// facts table. A root is only accepted when every definition it scans is
/// settled: a pre-loop materialization cannot scan a table that does not
/// exist yet.
void CollectHoistRoots(const core::PlanPtr& p, const PlanFacts& facts,
                       const std::unordered_set<std::string>& all_defs,
                       const std::unordered_set<std::string>& settled,
                       std::vector<core::PlanPtr>* out) {
  if (p == nullptr) return;
  const OperatorFacts* f = facts.Get(p.get());
  if (f != nullptr && f->invariant && f->has_real_work && !f->uses_rand &&
      DefRefsSettled(p, all_defs, settled)) {
    out->push_back(p);
    return;  // maximal: nothing below a hoisted root hoists separately
  }
  for (const auto& c : p->children) {
    CollectHoistRoots(c, facts, all_defs, settled, out);
  }
}

}  // namespace

HoistSets ComputeHoistSets(const DataflowQuery& query,
                           const PlanFacts& facts) {
  HoistSets hs;
  std::unordered_set<std::string> all_defs;
  std::vector<std::pair<std::string, core::PlanPtr>> ordered_defs;
  for (const auto& block : query.blocks) {
    for (const auto& def : block.defs) {
      all_defs.insert(def.first);
      ordered_defs.push_back(def);
    }
  }
  // Settle invariant definitions in reference-dependency order (a def may
  // read another def's previous-iteration value; hoisting both is only
  // valid when the referenced one materializes first).
  std::unordered_set<std::string> settled;
  bool changed = true;
  while (changed) {
    changed = false;
    for (const auto& def : ordered_defs) {
      if (settled.count(def.first) > 0) continue;
      const RelationFacts* rf = facts.GetRelation(def.first);
      if (rf == nullptr || !rf->invariant) continue;
      if (!DefRefsSettled(def.second, all_defs, settled)) continue;
      hs.invariant_defs.push_back(def.first);
      settled.insert(def.first);
      changed = true;
    }
  }
  for (const auto& block : query.blocks) {
    for (const auto& def : block.defs) {
      if (settled.count(def.first) > 0) continue;
      CollectHoistRoots(def.second, facts, all_defs, settled,
                        &hs.hoist_roots[def.second.get()]);
    }
    CollectHoistRoots(block.delta, facts, all_defs, settled,
                      &hs.hoist_roots[block.delta.get()]);
  }
  return hs;
}

// ---------------------------------------------------------------------------
// Facts-driven rewrites
// ---------------------------------------------------------------------------

namespace {

bool IsJoinFamily(PlanKind k) {
  switch (k) {
    case PlanKind::kJoin:
    case PlanKind::kLeftOuterJoin:
    case PlanKind::kSemiJoin:
    case PlanKind::kAntiJoin:
    case PlanKind::kCrossProduct:
    case PlanKind::kMMJoin:
    case PlanKind::kMVJoin:
      return true;
    default:
      return false;
  }
}

/// Builds the narrowing projection for a join input, or null when the
/// safety proof fails. Facts are looked up under the ORIGINAL node
/// identity; the projection wraps the (possibly already rewritten)
/// current child.
core::PlanPtr MaybeNarrow(const core::PlanPtr& orig_child,
                          const core::PlanPtr& cur_child,
                          const PlanFacts& facts, RewriteStats* stats) {
  const OperatorFacts* f = facts.Get(orig_child.get());
  if (f == nullptr || !f->invariant || !f->has_real_work || f->uses_rand ||
      !f->schema_known || !f->live_known) {
    return nullptr;
  }
  switch (orig_child->kind) {
    case PlanKind::kProject:  // already narrow (or narrowed before)
    case PlanKind::kScan:     // StableScan / hoist temps must stay bare
    case PlanKind::kRename:
      return nullptr;
    default:
      break;
  }
  const size_t n = f->schema.NumColumns();
  if (f->live_columns.empty() || f->live_columns.size() >= n) return nullptr;
  // Safety proof: every kept column must round-trip by name so that the
  // parent's key/residual resolution is unchanged after narrowing.
  std::unordered_set<std::string> names;
  for (size_t c = 0; c < n; ++c) {
    if (!names.insert(f->schema.column(c).name).second) return nullptr;
  }
  std::vector<ra::ops::ProjectItem> items;
  for (size_t idx : f->live_columns) {
    const std::string& name = f->schema.column(idx).name;
    auto r = f->schema.IndexOf(name);
    if (!r.has_value() || *r != idx) return nullptr;
    items.push_back(ra::ops::As(ra::Col(name), name));
  }
  stats->pruned_columns += n - f->live_columns.size();
  // Empty out_name: PlanOutputName falls through to the child, preserving
  // join qualification of the kept columns.
  return core::ProjectOp(cur_child, std::move(items), "");
}

core::PlanPtr RewriteTree(const core::PlanPtr& p, const PlanFacts& facts,
                          bool allow_pushdown, RewriteStats* stats) {
  if (p == nullptr) return p;
  std::vector<core::PlanPtr> kids;
  kids.reserve(p->children.size());
  bool changed = false;
  for (const auto& c : p->children) {
    core::PlanPtr nc = RewriteTree(c, facts, allow_pushdown, stats);
    changed = changed || nc.get() != c.get();
    kids.push_back(std::move(nc));
  }

  core::PlanPtr cur = p;
  auto ensure_own = [&]() {
    if (cur.get() == p.get()) {
      auto own = std::make_shared<Plan>(*p);
      own->children = kids;
      cur = own;
    }
  };
  if (changed) ensure_own();

  // Rewrite 1: drop a selection proven true for every possible input row.
  if (p->kind == PlanKind::kSelect) {
    const OperatorFacts* f = facts.Get(p.get());
    if (f != nullptr && f->predicate == PredicateVerdict::kAlwaysTrue) {
      ++stats->removed_selects;
      return cur->children[0];
    }
  }

  // Rewrite 2: projection pushdown under join-family operators.
  if (allow_pushdown && IsJoinFamily(p->kind)) {
    for (size_t i = 0; i < p->children.size(); ++i) {
      core::PlanPtr narrowed =
          MaybeNarrow(p->children[i], cur->children[i], facts, stats);
      if (narrowed != nullptr) {
        ensure_own();
        const_cast<Plan*>(cur.get())->children[i] = std::move(narrowed);
      }
    }
  }
  return cur;
}

}  // namespace

RewriteStats ApplyFactsRewrites(DataflowQuery* query, const PlanFacts& facts,
                                bool allow_pushdown) {
  RewriteStats stats;
  // Init plans run once, pre-loop: dead-select removal only — a narrowing
  // projection would just add a copy.
  for (auto& p : query->init) {
    p = RewriteTree(p, facts, /*allow_pushdown=*/false, &stats);
  }
  for (auto& block : query->blocks) {
    for (auto& def : block.defs) {
      def.second = RewriteTree(def.second, facts, allow_pushdown, &stats);
    }
    block.delta = RewriteTree(block.delta, facts, allow_pushdown, &stats);
  }
  return stats;
}

// ---------------------------------------------------------------------------
// Facts-derived diagnostics
// ---------------------------------------------------------------------------

namespace {

bool ExprUsesAnyColumn(const ra::ExprPtr& e) {
  std::vector<std::string> names;
  CollectExprColumns(e, &names);
  return !names.empty();
}

/// Pre-order walk emitting the per-operator verdict diagnostics. Shared
/// subtrees are reported once.
void WalkForVerdicts(const core::PlanPtr& p, const PlanFacts& facts,
                     std::unordered_set<const Plan*>* seen,
                     DiagnosticBag* diags) {
  if (p == nullptr || !seen->insert(p.get()).second) return;
  const OperatorFacts* f = facts.Get(p.get());
  if (f != nullptr) {
    if ((p->kind == PlanKind::kSelect || p->kind == PlanKind::kJoin) &&
        f->predicate == PredicateVerdict::kAlwaysFalse) {
      diags->AddWarning(
          "GPR-W310", f->path,
          "predicate is provably false for every input row: this operator "
          "emits no rows",
          "remove the dead branch or fix the comparison bounds");
    }
    if (p->kind == PlanKind::kSelect &&
        f->predicate == PredicateVerdict::kAlwaysTrue &&
        !ExprUsesAnyColumn(p->predicate)) {
      diags->AddWarning(
          "GPR-W311", f->path,
          "predicate is a tautology over literals: the selection filters "
          "nothing",
          "drop the redundant where clause");
    }
    if (p->kind == PlanKind::kDistinct && !p->children.empty()) {
      const OperatorFacts* cf = facts.Get(p->children[0].get());
      if (cf != nullptr && cf->dup_free) {
        diags->AddWarning(
            "GPR-W316", f->path,
            "distinct over a provably duplicate-free input is a no-op",
            "drop the distinct (the executor already skips it when plan "
            "facts are on)");
      }
    }
  }
  for (const auto& c : p->children) {
    WalkForVerdicts(c, facts, seen, diags);
  }
}

}  // namespace

void CheckDataflow(const core::WithPlusQuery& query,
                   const ra::Catalog& catalog, const PlanFacts& facts,
                   DiagnosticBag* diags) {
  (void)catalog;
  std::unordered_set<const Plan*> seen;
  for (const auto& sq : query.init) {
    WalkForVerdicts(sq.plan, facts, &seen, diags);
  }
  bool any_negation = false;
  bool non_monotone = false;
  std::string fold_source;
  std::string fold_path;
  for (size_t b = 0; b < query.recursive.size(); ++b) {
    const auto& sq = query.recursive[b];
    const std::string path = "recursive[" + std::to_string(b) + "]";
    for (const auto& def : sq.computed_by) {
      WalkForVerdicts(def.plan, facts, &seen, diags);
    }
    WalkForVerdicts(sq.plan, facts, &seen, diags);

    auto scan_folds = [&](const Plan* p, const std::string& where) {
      const OperatorFacts* f = facts.Get(p);
      if (f == nullptr) return;
      if (f->has_negation) any_negation = true;
      if (!non_monotone && f->HasNonMonotoneFold() &&
          !f->fold_sources.empty()) {
        non_monotone = true;
        fold_source = f->fold_sources.front();
        fold_path = where;
      }
    };
    scan_folds(sq.plan.get(), path);
    for (const auto& def : sq.computed_by) {
      scan_folds(def.plan.get(), path + "/computed_by[" + def.name + "]");
    }

    const OperatorFacts* df = facts.Get(sq.plan.get());
    if (df == nullptr) continue;

    // GPR-E312: every delta row provably carries the same update key, yet
    // the delta provably has at least two rows — conflicting ⊎ updates.
    if (query.mode == core::UnionMode::kUnionByUpdate &&
        !query.update_keys.empty() && df->rows.known &&
        df->rows.min_rows >= 2 && df->schema_known &&
        !df->intervals.empty()) {
      auto kpos = ResolveCols(df->schema, query.update_keys);
      if (!kpos.has_value()) {
        kpos = ResolveCols(query.rec_schema, query.update_keys);
      }
      if (kpos.has_value()) {
        bool all_const = true;
        for (size_t k : *kpos) {
          if (k >= df->intervals.size() || !df->intervals[k].IsConst()) {
            all_const = false;
            break;
          }
        }
        if (all_const && !HasUniqueSubset(df->unique_sets, *kpos)) {
          diags->AddError(
              "GPR-E312", StatusCode::kInvalidArgument, path,
              "every row of the recursive step provably carries the same "
              "update key, but the step provably produces at least two "
              "rows: conflicting multi-row updates to one key",
              "make the update key a real key of the delta (group by it, "
              "or add the varying columns to update_keys)");
        }
      }
    }

    // GPR-W317: the recursive step provably produces no rows at all.
    if (df->rows.known && df->rows.has_max && df->rows.max_rows == 0) {
      diags->AddWarning(
          "GPR-W317", path,
          "the recursive step provably produces no rows: the recursion is "
          "degenerate and returns the init rows only",
          "remove the recursion or fix the provably-false step");
    }

    // GPR-W313: sharpened W401 — every iteration provably appends rows.
    if (query.mode == core::UnionMode::kUnionAll &&
        query.maxrecursion == 0 && !query.sql99_working_table &&
        df->rows.known && df->rows.min_rows >= 1) {
      diags->AddWarning(
          "GPR-W313", path,
          "every iteration provably appends at least one row under union "
          "all with no maxrecursion: the fixpoint cannot converge",
          "bound the recursion with maxrecursion, or deduplicate with "
          "union / union-by-update");
    }
  }

  // GPR-W314: non-monotone fold inside a union (distinct) recursion.
  if (query.mode == core::UnionMode::kUnionDistinct &&
      query.maxrecursion == 0 && non_monotone) {
    diags->AddWarning(
        "GPR-W314", fold_path,
        "non-monotone fold (" + fold_source +
            ") inside a union (distinct) recursion: refolded values keep "
            "re-entering the working set and may oscillate",
        "fold with min/max, or bound the recursion with maxrecursion");
  }
  (void)any_negation;

  // GPR-W315: dead columns of a computed-by definition.
  for (size_t b = 0; b < query.recursive.size(); ++b) {
    for (const auto& def : query.recursive[b].computed_by) {
      const RelationFacts* rf = facts.GetRelation(def.name);
      if (rf == nullptr || !rf->schema_known || rf->dead_columns.empty()) {
        continue;
      }
      std::string cols;
      for (size_t c : rf->dead_columns) {
        if (!cols.empty()) cols += ", ";
        cols += rf->schema.column(c).name;
      }
      diags->AddWarning(
          "GPR-W315",
          "recursive[" + std::to_string(b) + "]/computed_by[" + def.name +
              "]",
          "definition column(s) " + cols +
              " are never read by any consumer",
          "drop the dead column(s) from the definition's select list");
    }
  }

  // GPR-W318: a semiring aggregate-join whose edge side is provably
  // loop-invariant (csr_eligible) will run on the generic hash-join path
  // because the query turned the CSR kernels off explicitly.
  if (query.csr_kernels == 0) {
    std::unordered_set<const Plan*> warned;
    std::function<void(const PlanPtr&)> walk = [&](const PlanPtr& p) {
      if (p == nullptr || !warned.insert(p.get()).second) return;
      const OperatorFacts* f = facts.Get(p.get());
      if (f != nullptr && f->csr_eligible) {
        diags->AddWarning(
            "GPR-W318", f->path,
            "MV/MM-join is CSR-eligible (loop-invariant edge side) but "
            "executed on the generic path: the query disables the CSR "
            "kernels",
            "drop `kernels off` (the kernel path is row-identical and "
            "caches the CSR layout per table version)");
      }
      for (const auto& c : p->children) walk(c);
    };
    for (const auto& sq : query.init) walk(sq.plan);
    for (const auto& sq : query.recursive) {
      for (const auto& def : sq.computed_by) walk(def.plan);
      walk(sq.plan);
    }
  }
}

// ---------------------------------------------------------------------------
// JSON rendering
// ---------------------------------------------------------------------------

namespace {

std::string JsonStr(const std::string& s) {
  std::string out = "\"";
  for (char ch : s) {
    switch (ch) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(ch) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", ch);
          out += buf;
        } else {
          out += ch;
        }
    }
  }
  out += '"';
  return out;
}

std::string JsonIndexArray(const std::vector<size_t>& xs) {
  std::string out = "[";
  for (size_t i = 0; i < xs.size(); ++i) {
    if (i > 0) out += ",";
    out += std::to_string(xs[i]);
  }
  out += "]";
  return out;
}

void AppendCommonFactsJson(const OperatorFacts& f, const ra::Schema& schema,
                           bool schema_known, std::ostringstream* os) {
  *os << "\"rows\": " << JsonStr(f.rows.ToString());
  *os << ", \"unique\": [";
  for (size_t s = 0; s < f.unique_sets.size(); ++s) {
    if (s > 0) *os << ",";
    *os << JsonIndexArray(f.unique_sets[s]);
  }
  *os << "]";
  *os << ", \"dup_free\": " << (f.dup_free ? "true" : "false");
  *os << ", \"predicate\": " << JsonStr(PredicateVerdictName(f.predicate));
  *os << ", \"invariant\": " << (f.invariant ? "true" : "false");
  *os << ", \"uses_rand\": " << (f.uses_rand ? "true" : "false");
  *os << ", \"has_real_work\": " << (f.has_real_work ? "true" : "false");
  *os << ", \"csr_eligible\": " << (f.csr_eligible ? "true" : "false");
  *os << ", \"negation\": " << (f.has_negation ? "true" : "false");
  *os << ", \"fold_sources\": [";
  for (size_t s = 0; s < f.fold_sources.size(); ++s) {
    if (s > 0) *os << ",";
    *os << JsonStr(f.fold_sources[s]);
  }
  *os << "]";
  *os << ", \"intervals\": {";
  bool first = true;
  if (schema_known) {
    for (size_t c = 0; c < f.intervals.size() && c < schema.NumColumns();
         ++c) {
      if (f.intervals[c].IsTop()) continue;
      if (!first) *os << ", ";
      first = false;
      *os << JsonStr(schema.column(c).name) << ": "
          << JsonStr(f.intervals[c].ToString());
    }
  }
  *os << "}";
  if (f.live_known) {
    *os << ", \"live\": " << JsonIndexArray(f.live_columns);
  }
}

}  // namespace

std::string FactsToJson(const core::WithPlusQuery& query,
                        const ra::Catalog& catalog) {
  const DataflowQuery dq = ToDataflowQuery(query);
  const DataflowGraph g = DataflowGraph::Build(dq, &catalog);
  const PlanFacts facts = ComputeFactsOnGraph(g, &catalog, FactsOptions{});

  std::ostringstream os;
  os << "{\n  \"recursive_relation\": " << JsonStr(dq.rec_name)
     << ",\n  \"operators\": [\n";
  bool first = true;
  for (size_t i = 0; i < g.size(); ++i) {
    const DfNode& n = g.node(i);
    if (n.plan == nullptr) continue;
    const OperatorFacts* f = facts.Get(n.plan);
    if (f == nullptr) continue;
    if (!first) os << ",\n";
    first = false;
    os << "    {\"path\": " << JsonStr(n.path)
       << ", \"kind\": " << JsonStr(core::PlanKindName(n.plan->kind))
       << ", \"out_name\": " << JsonStr(n.out_name) << ", ";
    AppendCommonFactsJson(*f, n.schema, n.schema_known, &os);
    os << "}";
  }
  os << "\n  ],\n  \"relations\": {\n";
  std::vector<std::string> rel_names;
  for (const auto& r : facts.relations()) rel_names.push_back(r.first);
  std::sort(rel_names.begin(), rel_names.end());
  for (size_t i = 0; i < rel_names.size(); ++i) {
    const RelationFacts* rf = facts.GetRelation(rel_names[i]);
    if (i > 0) os << ",\n";
    os << "    " << JsonStr(rel_names[i]) << ": {\"rows\": "
       << JsonStr(rf->rows.ToString())
       << ", \"invariant\": " << (rf->invariant ? "true" : "false")
       << ", \"unique\": [";
    for (size_t s = 0; s < rf->unique_sets.size(); ++s) {
      if (s > 0) os << ",";
      os << JsonIndexArray(rf->unique_sets[s]);
    }
    os << "], \"dead_columns\": " << JsonIndexArray(rf->dead_columns) << "}";
  }
  os << "\n  }\n}\n";
  return os.str();
}

}  // namespace gpr::analysis
