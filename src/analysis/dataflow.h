// A generic forward/backward fixed-point dataflow framework over the RA
// plan graph of a with+ query.
//
// The graph has one node per plan operator plus one pseudo-node per named
// relation (the recursive relation R and each computed-by definition).
// Tree edges run child -> parent; a Scan of a named relation has an edge
// from the relation's pseudo-node; every init and recursive subquery root
// feeds R's pseudo-node — the recursive roots' edges are the with+
// iteration back-edges, which is what makes the analyses genuine
// fixed-point problems rather than tree folds.
//
// An analysis supplies a lattice (Fact + Join + Widen) and a transfer
// function; RunDataflow solves it with a worklist, widening facts that
// keep changing through the back-edge so termination is guaranteed.
//
// Four analyses are implemented as instances of the engine (plus backward
// column liveness and invariance, which power projection pushdown and the
// PR 5 hoisting prologue):
//
//   1. monotonicity / semiring analysis  (⊕ folds per recursive relation)
//   2. key & functional-dependency inference (unique column sets)
//   3. constant / interval propagation over Expr
//   4. cardinality bounds from TableStats
//
// ComputeFacts runs all of them and returns a PlanFacts side table; the
// executor consults it (see plan_facts.h) and CheckDataflow derives the
// GPR-W31x/E31x diagnostics from it.
#pragma once

#include <cstddef>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "analysis/diagnostic.h"
#include "analysis/plan_facts.h"
#include "core/with_plus.h"
#include "ra/catalog.h"

namespace gpr::analysis {

/// Which way facts flow.
enum class DataflowDirection { kForward, kBackward };

/// One node of the dataflow graph: a plan operator, or a relation
/// pseudo-node (plan == nullptr, relation nonempty).
struct DfNode {
  const core::Plan* plan = nullptr;
  core::PlanPtr plan_ref;     ///< keeps the operator alive
  std::string relation;       ///< set for relation pseudo-nodes
  std::string path;           ///< diagnostics path
  std::vector<size_t> inputs;   ///< producers (children / contributing roots)
  std::vector<size_t> outputs;  ///< consumers
  /// Receives a back-edge (the recursive relation's pseudo-node).
  bool back_edge_target = false;
  /// Root kind: which boundary this node is, if any.
  enum class Role { kInterior, kInitRoot, kDeltaRoot, kDefRoot } role =
      Role::kInterior;
  /// For roots: index of the subquery / block they belong to.
  size_t block = 0;
  /// Inferred output schema (empty + !schema_known on type errors).
  bool schema_known = false;
  ra::Schema schema;
  std::string out_name;  ///< PlanOutputName (join qualification)
};

/// The normalized query shape the graph is built from: either a
/// WithPlusQuery (diagnostics path) or the fixpoint driver's post-rewrite
/// run plans (executor path) — both are blocks of (defs, delta).
struct DataflowUnit {
  std::vector<std::pair<std::string, core::PlanPtr>> defs;
  core::PlanPtr delta;
};

struct DataflowQuery {
  std::string rec_name;
  ra::Schema rec_schema;
  core::UnionMode mode = core::UnionMode::kUnionAll;
  std::vector<std::string> update_keys;
  int maxrecursion = 0;
  bool sql99_working_table = false;
  std::vector<core::PlanPtr> init;
  std::vector<DataflowUnit> blocks;
};

/// Flattens a WithPlusQuery into the normalized shape.
DataflowQuery ToDataflowQuery(const core::WithPlusQuery& query);

/// The plan graph with iteration back-edges.
class DataflowGraph {
 public:
  /// Builds the graph. `catalog` may be null: schemas then stay unknown
  /// for scans of catalog tables (the monotonicity analysis does not need
  /// them; the others skip schema-less nodes).
  static DataflowGraph Build(const DataflowQuery& query,
                             const ra::Catalog* catalog);

  const std::vector<DfNode>& nodes() const { return nodes_; }
  const DfNode& node(size_t i) const { return nodes_[i]; }
  size_t size() const { return nodes_.size(); }

  /// Node index of a plan operator (npos if absent).
  size_t IndexOf(const core::Plan* p) const;
  /// Node index of a relation pseudo-node (npos if absent).
  size_t RelationIndex(const std::string& name) const;

  const DataflowQuery& query() const { return query_; }

  static constexpr size_t npos = static_cast<size_t>(-1);

 private:
  size_t AddPlanTree(const core::PlanPtr& plan, const std::string& path,
                     const std::unordered_map<std::string, ra::Schema>* ov);
  void AddEdge(size_t from, size_t to);

  DataflowQuery query_;
  const ra::Catalog* catalog_ = nullptr;  ///< schema inference during Build
  std::vector<DfNode> nodes_;
  std::unordered_map<const core::Plan*, size_t> plan_index_;
  std::unordered_map<std::string, size_t> relation_index_;
};

/// Worklist fixed-point solver.
///
/// Analysis concept:
///   struct A {
///     using Fact = ...;                       // lattice element
///     DataflowDirection direction() const;
///     Fact Boundary(const DataflowGraph&, size_t n);   // initial fact
///     Fact Transfer(const DataflowGraph&, size_t n,
///                   const std::vector<Fact>& all);     // read deps' facts
///     bool Join(Fact* into, const Fact& from);         // true if changed
///     void Widen(Fact* f);                             // jump toward top
///   };
///
/// Every node starts at Boundary; nodes whose fact changes push their
/// dependents back on the worklist. A node joined more than kWidenAfter
/// times is widened, which bounds lattice height and guarantees
/// termination through the iteration back-edge.
inline constexpr size_t kWidenAfter = 16;

template <typename Analysis>
std::vector<typename Analysis::Fact> RunDataflow(const DataflowGraph& g,
                                                 Analysis& a) {
  using Fact = typename Analysis::Fact;
  const bool forward = a.direction() == DataflowDirection::kForward;
  std::vector<Fact> facts(g.size());
  std::vector<size_t> joins(g.size(), 0);
  std::vector<char> queued(g.size(), 1);
  std::vector<size_t> worklist;
  worklist.reserve(g.size());
  // Seed in a helpful order: forward analyses converge fastest processing
  // nodes in creation order (children precede parents), backward ones in
  // reverse.
  for (size_t i = 0; i < g.size(); ++i) {
    facts[i] = a.Boundary(g, i);
    worklist.push_back(forward ? g.size() - 1 - i : i);
  }
  while (!worklist.empty()) {
    const size_t n = worklist.back();
    worklist.pop_back();
    queued[n] = 0;
    Fact out = a.Transfer(g, n, facts);
    if (!a.Join(&facts[n], out)) continue;
    if (++joins[n] > kWidenAfter) a.Widen(&facts[n]);
    const auto& dependents =
        forward ? g.node(n).outputs : g.node(n).inputs;
    for (size_t d : dependents) {
      if (!queued[d]) {
        queued[d] = 1;
        worklist.push_back(d);
      }
    }
  }
  return facts;
}

/// Options for ComputeFacts.
struct FactsOptions {
  /// Scan fresh-statistics base tables for per-column min/max values
  /// (executor path). Off for offline linting, where catalog tables are
  /// schema-only and their emptiness proves nothing about deployment.
  bool scan_base_values = false;
};

/// Runs all analyses over `query` and returns the populated side table.
PlanFacts ComputeFacts(const DataflowQuery& query, const ra::Catalog& catalog,
                       const FactsOptions& options = {});

/// Convenience: facts for a whole WithPlusQuery (diagnostics path).
PlanFacts ComputeQueryFacts(const core::WithPlusQuery& query,
                            const ra::Catalog& catalog,
                            const FactsOptions& options = {});

/// The facts-derived diagnostics pass (GPR-W310..W317, GPR-E312): see
/// docs/diagnostics.md for the catalog.
void CheckDataflow(const core::WithPlusQuery& query,
                   const ra::Catalog& catalog, const PlanFacts& facts,
                   DiagnosticBag* diags);

/// Monotonicity-only convergence input: CheckConvergence's facts source
/// when no catalog is available (schemas unknown — fold/negation facts do
/// not need them).
PlanFacts ComputeMonotonicityFacts(const core::WithPlusQuery& query);

/// Hoisting/caching eligibility re-derived from invariance facts — the
/// facts-driven replacement for core::LoopInvariantSubplans' bespoke walk.
/// `invariant_defs` lists fully-invariant definitions (materialize once,
/// pre-loop); `hoist_roots[p]` lists, in pre-order, the maximal invariant
/// subtrees with real work inside each remaining plan.
struct HoistSets {
  std::vector<std::string> invariant_defs;
  std::unordered_map<const core::Plan*, std::vector<core::PlanPtr>>
      hoist_roots;
};
HoistSets ComputeHoistSets(const DataflowQuery& query, const PlanFacts& facts);

/// Facts-driven plan rewrites (executor path), applied in place:
///   * removes kSelect nodes whose predicate is proven always-true;
///   * projection pushdown with a safety proof: narrows invariant,
///     composite join inputs to the columns some consumer can observe
///     (plus join keys and residual references).
/// Returns counters for ExecCounters. Facts must be recomputed afterwards
/// (node identities change). `allow_pushdown` should be true only when
/// hoisting is enabled: the inserted projections are loop-invariant and
/// are expected to materialize once, pre-loop.
struct RewriteStats {
  size_t removed_selects = 0;
  size_t pruned_columns = 0;
};
RewriteStats ApplyFactsRewrites(DataflowQuery* query, const PlanFacts& facts,
                                bool allow_pushdown);

/// JSON rendering of the facts of every operator (stable order), for
/// `gpr_lint --facts=json` / the ANALYSIS_facts.json CI artifact.
std::string FactsToJson(const core::WithPlusQuery& query,
                        const ra::Catalog& catalog);

}  // namespace gpr::analysis
