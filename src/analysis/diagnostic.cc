#include "analysis/diagnostic.h"

#include <sstream>

namespace gpr::analysis {

const char* SeverityName(Severity s) {
  switch (s) {
    case Severity::kError: return "error";
    case Severity::kWarning: return "warning";
    case Severity::kNote: return "note";
  }
  return "?";
}

std::string Diagnostic::ToString() const {
  std::ostringstream os;
  os << SeverityName(severity) << " " << code;
  if (!plan_path.empty()) os << " [" << plan_path << "]";
  os << ": " << message;
  if (!hint.empty()) os << "\n  fix: " << hint;
  return os.str();
}

void DiagnosticBag::AddError(std::string code, StatusCode status_code,
                             std::string path, std::string message,
                             std::string hint) {
  Add({Severity::kError, std::move(code), std::move(path), std::move(message),
       std::move(hint), status_code});
}

void DiagnosticBag::AddWarning(std::string code, std::string path,
                               std::string message, std::string hint) {
  Add({Severity::kWarning, std::move(code), std::move(path),
       std::move(message), std::move(hint), StatusCode::kInvalidArgument});
}

size_t DiagnosticBag::NumErrors() const {
  size_t n = 0;
  for (const auto& d : diags_) n += d.severity == Severity::kError ? 1 : 0;
  return n;
}

size_t DiagnosticBag::NumWarnings() const {
  size_t n = 0;
  for (const auto& d : diags_) n += d.severity == Severity::kWarning ? 1 : 0;
  return n;
}

bool DiagnosticBag::Has(const std::string& code) const {
  for (const auto& d : diags_) {
    if (d.code == code) return true;
  }
  return false;
}

std::string DiagnosticBag::Render() const {
  std::ostringstream os;
  for (const auto& d : diags_) os << d.ToString() << "\n";
  return os.str();
}

Status DiagnosticBag::ToStatus() const {
  for (const auto& d : diags_) {
    if (d.severity != Severity::kError) continue;
    std::ostringstream os;
    os << d.code;
    if (!d.plan_path.empty()) os << " [" << d.plan_path << "]";
    os << ": " << d.message;
    if (!d.hint.empty()) os << " (fix: " << d.hint << ")";
    if (size() > 1) os << " [+" << size() - 1 << " more diagnostics]";
    return Status(d.status_code, os.str());
  }
  return Status::OK();
}

}  // namespace gpr::analysis
