// The diagnostic model of the static plan analyzer (gpr::analysis).
//
// Every finding carries a stable code ("GPR-E107"), a severity, the plan
// path that locates the offending node inside a with+ query
// ("recursive[0]/computed_by[L_n]/GroupBy"), a message, and an optional
// fix-it hint. docs/diagnostics.md catalogues every code.
#pragma once

#include <string>
#include <vector>

#include "util/status.h"

namespace gpr::analysis {

enum class Severity { kError, kWarning, kNote };

const char* SeverityName(Severity s);

/// One analyzer finding.
struct Diagnostic {
  Severity severity = Severity::kError;
  std::string code;       ///< stable identifier, e.g. "GPR-E107"
  std::string plan_path;  ///< "recursive[0]/Project/Join/Scan(E)"
  std::string message;
  std::string hint;       ///< optional fix-it suggestion
  /// The StatusCode the pre-execution gate reports for this finding —
  /// chosen to match what the executor would have raised at runtime.
  StatusCode status_code = StatusCode::kInvalidArgument;

  /// "error GPR-E107 [init[0]]: message\n  fix: hint".
  std::string ToString() const;
};

/// An ordered collection of diagnostics produced by the analyzer passes.
class DiagnosticBag {
 public:
  void Add(Diagnostic d) { diags_.push_back(std::move(d)); }
  void AddError(std::string code, StatusCode status_code, std::string path,
                std::string message, std::string hint = "");
  void AddWarning(std::string code, std::string path, std::string message,
                  std::string hint = "");

  bool empty() const { return diags_.empty(); }
  size_t size() const { return diags_.size(); }
  size_t NumErrors() const;
  size_t NumWarnings() const;
  bool HasErrors() const { return NumErrors() > 0; }

  const std::vector<Diagnostic>& diagnostics() const { return diags_; }

  /// True if some diagnostic carries `code` (e.g. "GPR-E107").
  bool Has(const std::string& code) const;

  /// Multi-line rendering, one ToString() per diagnostic.
  std::string Render() const;

  /// OK when no error-severity diagnostic is present; otherwise a Status
  /// built from the first error (its mapped StatusCode, its message
  /// prefixed with code and plan path, and the total finding count).
  Status ToStatus() const;

 private:
  std::vector<Diagnostic> diags_;
};

}  // namespace gpr::analysis
