// PlanFacts: the side table of statically-proven facts about plan operators.
//
// Facts are produced by the dataflow framework (analysis/dataflow.h) and
// consulted in two places:
//
//   * the executor (core/plan.cc, core/psm.cc) — a proven-false predicate
//     skips its whole subtree, a proven duplicate-free input skips dedup,
//     proven-dead columns are pruned by projection pushdown, and loop-
//     invariant hoisting re-derives its eligibility from invariance facts;
//   * the diagnostics surface — ExplainWithPlus prints the facts per
//     operator, sql::LintSql and `gpr_lint --facts=json` report them, and
//     the GPR-W31x / GPR-E31x codes are derived from them.
//
// This header holds only the fact *types*: it depends on ra/ but not on
// core/plan.h (core::Plan is an opaque key here), so ra::EvalContext can
// carry a `const analysis::PlanFacts*` without a dependency cycle.
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "ra/aggregate.h"
#include "ra/schema.h"

namespace gpr::core {
struct Plan;
}  // namespace gpr::core

namespace gpr::analysis {

/// A (possibly half-open) numeric interval for one column. Absent bounds
/// mean unbounded on that side; `empty` marks the bottom element (no rows
/// reach this operator, so every column interval is vacuous).
struct ValueInterval {
  bool empty = true;  ///< bottom: no value observed yet
  bool has_lo = false, has_hi = false;
  double lo = 0.0, hi = 0.0;

  static ValueInterval Top() {
    ValueInterval v;
    v.empty = false;
    return v;
  }
  static ValueInterval Const(double c) {
    ValueInterval v;
    v.empty = false;
    v.has_lo = v.has_hi = true;
    v.lo = v.hi = c;
    return v;
  }
  static ValueInterval Range(double lo, double hi) {
    ValueInterval v;
    v.empty = false;
    v.has_lo = v.has_hi = true;
    v.lo = lo;
    v.hi = hi;
    return v;
  }

  bool IsConst() const { return !empty && has_lo && has_hi && lo == hi; }
  bool IsTop() const { return !empty && !has_lo && !has_hi; }

  /// Lattice join (interval hull). Returns true if *this widened.
  bool Join(const ValueInterval& o);
  /// Intersection (predicate refinement). An impossible intersection
  /// becomes `empty`.
  void Meet(const ValueInterval& o);

  std::string ToString() const;
};

/// Verdict of interval analysis on a selection / join-residual predicate.
enum class PredicateVerdict {
  kUnknown,
  kAlwaysTrue,   ///< predicate proven true for every possible input row
  kAlwaysFalse,  ///< predicate proven false: the operator emits no rows
};

const char* PredicateVerdictName(PredicateVerdict v);

/// Cardinality bounds: [min_rows, max_rows], max absent = unbounded.
struct RowBounds {
  bool known = false;
  size_t min_rows = 0;
  bool has_max = false;
  size_t max_rows = 0;

  static RowBounds Exact(size_t n) { return {true, n, true, n}; }
  static RowBounds AtMost(size_t n) { return {true, 0, true, n}; }
  static RowBounds Unbounded() { return {true, 0, false, 0}; }

  std::string ToString() const;
};

/// Everything the framework proved about one plan operator.
struct OperatorFacts {
  /// Inferred output schema (mirrors core::InferSchema). When false the
  /// node failed to type and every other field is meaningless.
  bool schema_known = false;
  ra::Schema schema;
  /// PlanOutputName of the node (join-qualification name).
  std::string out_name;
  /// Diagnostics path of the node ("recursive[0]/Project/Join").
  std::string path;

  // --- key / functional-dependency facts --------------------------------
  /// Proven unique column sets (sorted indexes into `schema`): no two
  /// output rows agree on any of these sets. The empty set ({}) means the
  /// operator emits at most one row. Structural proofs only — never
  /// derived from data statistics, so the executor may act on them.
  std::vector<std::vector<size_t>> unique_sets;
  /// True when some unique set exists: all output rows are distinct, so a
  /// downstream Distinct over this operator is a no-op.
  bool dup_free = false;

  // --- constant / interval propagation ----------------------------------
  /// Per-column value intervals (sized to `schema` when known).
  std::vector<ValueInterval> intervals;
  /// Verdict on this node's own predicate (kSelect / kJoin residual /
  /// provably-disjoint join keys).
  PredicateVerdict predicate = PredicateVerdict::kUnknown;

  // --- cardinality bounds -----------------------------------------------
  RowBounds rows;

  // --- monotonicity / semiring facts ------------------------------------
  /// ⊕ aggregate kinds folded anywhere in this subtree's derivation
  /// (group-by aggregates plus the add side of MM/MV semirings), as a
  /// bitmask of (1 << AggKind).
  uint32_t folds = 0;
  /// Human-readable sources of non-monotone folds, discovery order
  /// ("sum", "semiring plus_times", ...).
  std::vector<std::string> fold_sources;
  /// True when the subtree contains anti-join / difference / intersect.
  bool has_negation = false;
  /// Table names scanned directly by this subtree, and the subset scanned
  /// in a negated position (right of anti-join / difference).
  std::vector<std::string> tables;
  std::vector<std::string> negated_tables;

  // --- invariance (hoisting / caching eligibility) ----------------------
  /// True when the subtree scans no iteration-varying relation and calls
  /// no rand(): its output is identical every fixpoint iteration.
  bool invariant = false;
  /// True when the subtree does work beyond scan/rename.
  bool has_real_work = false;
  bool uses_rand = false;
  /// MV/MM-join whose matrix side is invariant: eligible for a future
  /// compiled CSR kernel path.
  bool csr_eligible = false;

  // --- backward column liveness -----------------------------------------
  /// Columns of `schema` some consumer can observe (sorted). Only valid
  /// when live_known; roots of materialized relations are fully live.
  bool live_known = false;
  std::vector<size_t> live_columns;

  bool FoldsKind(ra::AggKind k) const {
    return (folds & (1u << static_cast<uint32_t>(k))) != 0;
  }
  bool HasNonMonotoneFold() const {
    return FoldsKind(ra::AggKind::kSum) || FoldsKind(ra::AggKind::kCount) ||
           FoldsKind(ra::AggKind::kAvg);
  }

  /// Compact one-line rendering for ExplainWithPlus.
  std::string ToString() const;
};

/// Facts about a named relation of the query: the recursive relation and
/// each computed-by definition.
struct RelationFacts {
  ra::Schema schema;
  bool schema_known = false;
  std::vector<std::vector<size_t>> unique_sets;
  std::vector<ValueInterval> intervals;
  RowBounds rows;
  /// Fully loop-invariant definition: materialized once pre-loop.
  bool invariant = false;
  /// Columns no consumer of the relation ever reads (W315 raw material).
  std::vector<size_t> dead_columns;
};

/// The side table: operator facts keyed by plan-node identity plus
/// relation-level facts keyed by name. Owned by whoever computed it; the
/// executor holds a borrowed pointer for the duration of one query.
class PlanFacts {
 public:
  OperatorFacts& Mutable(const core::Plan* node) { return ops_[node]; }

  const OperatorFacts* Get(const core::Plan* node) const {
    auto it = ops_.find(node);
    return it == ops_.end() ? nullptr : &it->second;
  }

  RelationFacts& MutableRelation(const std::string& name) {
    return relations_[name];
  }
  const RelationFacts* GetRelation(const std::string& name) const {
    auto it = relations_.find(name);
    return it == relations_.end() ? nullptr : &it->second;
  }

  size_t NumOperators() const { return ops_.size(); }
  const std::unordered_map<std::string, RelationFacts>& relations() const {
    return relations_;
  }

 private:
  std::unordered_map<const core::Plan*, OperatorFacts> ops_;
  std::unordered_map<std::string, RelationFacts> relations_;
};

}  // namespace gpr::analysis
