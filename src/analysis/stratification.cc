// Pass 2 of the static plan analyzer: XY-stratification verification.
//
// Re-derives the temporal (X/Y) labeling of Theorem 5.1 directly from the
// query structure — the same lowering core::LowerToDatalog performs — but
// keeps a plan path per rule, so a violation names the subquery or
// computed-by definition responsible instead of a bare kNotStratifiable.
//
// The syntax of with+ guarantees XY-stratifiability for well-ordered
// computed-by chains (the point of Theorem 5.1), so the orderings checks
// (GPR-E201..E203) are the findings with+ programs can actually produce;
// the bi-state cycle check (GPR-E204) is defense-in-depth over the full
// Definition 9.2 condition.
#include <unordered_map>
#include <unordered_set>

#include "analysis/analyzer.h"
#include "core/datalog.h"
#include "core/plan.h"

namespace gpr::analysis {

namespace {

using core::DatalogLiteral;
using core::DatalogProgram;
using core::DatalogRule;
using core::TableRef;
using core::TemporalArg;

std::string Quoted(const std::string& s) { return "'" + s + "'"; }

/// One lowered rule plus the plan path it came from.
struct PathedRule {
  DatalogRule rule;
  std::string path;
};

/// Body literals of one plan, with the temporal arguments of the Theorem
/// 5.1 construction: the recursive relation reads the previous stage (T),
/// computed-by definitions the current stage (s(T)), base tables none.
std::vector<DatalogLiteral> BodyOf(
    const core::PlanPtr& plan, const std::string& rec_name,
    const std::unordered_set<std::string>& defs) {
  std::vector<TableRef> refs;
  core::CollectTableRefs(plan, &refs);
  std::vector<DatalogLiteral> body;
  for (const auto& ref : refs) {
    DatalogLiteral lit;
    lit.predicate = ref.name;
    lit.negated = ref.negated;
    if (ref.name == rec_name) {
      lit.temporal = TemporalArg::kT;
    } else if (defs.count(ref.name)) {
      lit.temporal = TemporalArg::kST;
    }
    body.push_back(std::move(lit));
  }
  return body;
}

/// True when `to` can reach `from` along `adj` — i.e. the edge from→to lies
/// on a cycle.
bool Reaches(const std::unordered_map<std::string,
                                      std::unordered_set<std::string>>& adj,
             const std::string& start, const std::string& goal) {
  std::unordered_set<std::string> seen{start};
  std::vector<std::string> stack{start};
  while (!stack.empty()) {
    std::string cur = stack.back();
    stack.pop_back();
    if (cur == goal) return true;
    auto it = adj.find(cur);
    if (it == adj.end()) continue;
    for (const auto& next : it->second) {
      if (seen.insert(next).second) stack.push_back(next);
    }
  }
  return false;
}

}  // namespace

// GCC 12's uninitialized-use analysis flags the braced PathedRule
// temporaries below as maybe-uninitialized when surrounding code changes
// its inlining decisions (PR 105593 family). Every member is a string or
// vector and is always initialized; suppress the false positive.
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wmaybe-uninitialized"
#endif

void CheckStratification(const core::WithPlusQuery& query,
                         DiagnosticBag* diags) {
  std::vector<PathedRule> rules;
  const size_t errors_before = diags->NumErrors();

  for (size_t i = 0; i < query.recursive.size(); ++i) {
    const core::Subquery& sq = query.recursive[i];
    const std::string path = "recursive[" + std::to_string(i) + "]";

    std::unordered_set<std::string> defs;
    for (const auto& def : sq.computed_by) defs.insert(def.name);

    // Computed-by ordering: each definition may shadow nothing, be defined
    // once, and reference only itself and earlier definitions.
    std::unordered_set<std::string> seen;
    for (const auto& def : sq.computed_by) {
      const std::string dpath = path + "/computed_by[" + def.name + "]";
      if (def.name == query.rec_name) {
        diags->AddError("GPR-E202", StatusCode::kInvalidArgument, dpath,
                        "computed-by definition shadows the recursive "
                        "relation " + Quoted(def.name),
                        "rename the definition; the recursive relation is "
                        "already visible inside the subquery");
        continue;
      }
      if (!seen.insert(def.name).second) {
        diags->AddError("GPR-E203", StatusCode::kInvalidArgument, dpath,
                        "computed-by definition " + Quoted(def.name) +
                            " is defined twice",
                        "each `as`-definition needs a distinct name");
        continue;
      }
      std::vector<TableRef> refs;
      core::CollectTableRefs(def.plan, &refs);
      for (const auto& ref : refs) {
        if (defs.count(ref.name) && !seen.count(ref.name)) {
          diags->AddError(
              "GPR-E201", StatusCode::kNotStratifiable, dpath,
              "computed-by definition " + Quoted(def.name) + " references " +
                  Quoted(ref.name) + " before it is defined — the chain "
                  "must be cycle-free (Section 6)",
              "reorder the definitions so " + Quoted(ref.name) +
                  " comes first, or break the cycle");
        }
      }
      rules.push_back(
          {DatalogRule{{def.name, false, TemporalArg::kST},
                       BodyOf(def.plan, query.rec_name, defs)},
           dpath});
    }

    // Delta rule:  Δ_i(s(T)) :- <subquery body>.
    const std::string delta = "delta_" + std::to_string(i);
    rules.push_back({DatalogRule{{delta, false, TemporalArg::kST},
                                 BodyOf(sq.plan, query.rec_name, defs)},
                     path});

    // Combination rules (union-all copy/add, or the Eq. 22 pair).
    switch (query.mode) {
      case core::UnionMode::kUnionAll:
      case core::UnionMode::kUnionDistinct: {
        rules.push_back(
            {DatalogRule{{query.rec_name, false, TemporalArg::kST},
                         {{query.rec_name, false, TemporalArg::kT}}},
             path});
        rules.push_back({DatalogRule{{query.rec_name, false, TemporalArg::kST},
                                     {{delta, false, TemporalArg::kST}}},
                         path});
        break;
      }
      case core::UnionMode::kUnionByUpdate: {
        rules.push_back(
            {DatalogRule{{query.rec_name, false, TemporalArg::kST},
                         {{query.rec_name, false, TemporalArg::kT},
                          {delta, true, TemporalArg::kST}}},
             path});
        rules.push_back({DatalogRule{{query.rec_name, false, TemporalArg::kST},
                                     {{delta, false, TemporalArg::kST}}},
                         path});
        break;
      }
    }
  }

  // Ordering violations leave the program incomplete; stop before deriving
  // spurious cycle findings from it.
  if (diags->NumErrors() > errors_before) return;

  DatalogProgram program;
  for (const auto& pr : rules) program.rules.push_back(pr.rule);

  // Definition 9.3: every rule must be an X-rule or a Y-rule. The lowering
  // labels stages so this holds by construction; report defensively.
  Status xy = core::CheckXYProgram(program);
  if (!xy.ok()) {
    diags->AddError("GPR-E204", StatusCode::kNotStratifiable, "with+",
                    "not an XY-program: " + xy.message(),
                    "see docs/diagnostics.md#gpr-e204");
    return;
  }

  // Definition 9.2 over the bi-state image: no negative edge on a cycle.
  // Attribute the finding to the source rule that carries the negation.
  DatalogProgram bistate = core::BiState(program);
  std::unordered_map<std::string, std::unordered_set<std::string>> adj;
  for (const auto& rule : bistate.rules) {
    for (const auto& lit : rule.body) {
      adj[lit.predicate].insert(rule.head.predicate);
    }
  }
  for (size_t r = 0; r < bistate.rules.size(); ++r) {
    const DatalogRule& rule = bistate.rules[r];
    for (size_t b = 0; b < rule.body.size(); ++b) {
      const DatalogLiteral& lit = rule.body[b];
      if (!lit.negated) continue;
      if (!Reaches(adj, rule.head.predicate, lit.predicate)) continue;
      // BiState maps rules and body literals 1:1, so (r, b) indexes the
      // original program/paths too.
      const std::string& original = rules[r].rule.body[b].predicate;
      diags->AddError(
          "GPR-E204", StatusCode::kNotStratifiable, rules[r].path,
          "negation of " + Quoted(original) + " (bi-state " +
              Quoted(lit.predicate) + ") lies on a recursive cycle — the "
              "program is not XY-stratified (Definition 9.2)",
          "move the negated relation out of the recursion or negate the "
          "previous iteration's state");
      return;
    }
  }
}

#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic pop
#endif

}  // namespace gpr::analysis
