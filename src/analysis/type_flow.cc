// Pass 1 of the static plan analyzer: schema/type dataflow.
//
// Walks every plan bottom-up, mirroring core::InferSchema *and* the checks
// the executor performs lazily (join-key resolution, set-operation
// compatibility, aggregate-join column bindings), so that a query that
// would fail mid-fixpoint fails here instead — with the plan path of the
// offending node. Where InferSchema stops at the first error, this pass
// keeps checking sibling subtrees to report as many findings as possible.
#include <sstream>

#include "analysis/analyzer.h"
#include "core/plan.h"
#include "ra/expr.h"

namespace gpr::analysis {

namespace {

using core::Plan;
using core::PlanKind;
using core::PlanPtr;
using ra::Schema;
using ra::ValueType;

std::string Quoted(const std::string& s) { return "'" + s + "'"; }

struct TypeChecker {
  const ra::Catalog& catalog;
  const SchemaOverlays& overlays;
  DiagnosticBag* diags;

  /// Path of `plan` under `parent_path`: "Scan(E)" for scans, the node's
  /// kind name otherwise.
  static std::string PathOf(const PlanPtr& plan,
                            const std::string& parent_path) {
    std::string label = core::PlanKindName(plan->kind);
    if (plan->kind == PlanKind::kScan) label += "(" + plan->table_name + ")";
    return parent_path.empty() ? label : parent_path + "/" + label;
  }

  /// Records E102 when `expr` does not bind against `schema` (the same
  /// Compile the executor runs per-tuple-batch at runtime). Returns the
  /// result type when it binds.
  std::optional<ValueType> CheckExpr(const ra::ExprPtr& expr,
                                     const Schema& schema,
                                     const std::string& path,
                                     const std::string& role) {
    auto compiled = ra::Compile(expr, schema);
    if (!compiled.ok()) {
      diags->AddError("GPR-E102", StatusCode::kBindError, path,
                      role + " does not bind: " + compiled.status().message(),
                      "reference one of the input columns " +
                          schema.ToString());
      return std::nullopt;
    }
    return compiled->result_type();
  }

  /// Records E104 when `col` is missing from `schema`.
  bool CheckColumn(const std::string& col, const Schema& schema,
                   const std::string& path, const std::string& role) {
    if (schema.Has(col)) return true;
    diags->AddError("GPR-E104", StatusCode::kBindError, path,
                    role + " column " + Quoted(col) +
                        " is not produced by the input",
                    "available columns: " + schema.ToString());
    return false;
  }

  std::optional<Schema> Check(const PlanPtr& plan,
                              const std::string& parent_path) {
    const std::string path = PathOf(plan, parent_path);
    auto child = [&](size_t i) { return Check(plan->children[i], path); };

    switch (plan->kind) {
      case PlanKind::kScan: {
        auto it = overlays.find(plan->table_name);
        if (it != overlays.end()) return it->second;
        auto t = catalog.Get(plan->table_name);
        if (!t.ok()) {
          diags->AddError("GPR-E101", StatusCode::kNotFound, path,
                          "unknown table " + Quoted(plan->table_name),
                          "create the table or fix the spelling; computed-by "
                          "definitions are visible only after their own "
                          "definition");
          return std::nullopt;
        }
        return (*t)->schema();
      }

      case PlanKind::kSelect: {
        auto in = child(0);
        if (!in) return std::nullopt;
        if (plan->predicate != nullptr) {
          CheckExpr(plan->predicate, *in, path, "selection predicate");
        }
        return in;
      }

      case PlanKind::kProject: {
        auto in = child(0);
        if (!in) return std::nullopt;
        std::vector<ra::Column> cols;
        bool all_ok = true;
        for (const auto& item : plan->items) {
          auto t = CheckExpr(item.expr, *in, path,
                             "projection item " + Quoted(item.name));
          if (t) {
            cols.push_back({item.name, *t});
          } else {
            all_ok = false;
          }
        }
        if (!all_ok) return std::nullopt;
        return Schema(std::move(cols));
      }

      case PlanKind::kJoin:
      case PlanKind::kLeftOuterJoin:
      case PlanKind::kSemiJoin:
      case PlanKind::kAntiJoin: {
        auto l = child(0);
        auto r = child(1);
        if (l && plan->keys.left.size() != plan->keys.right.size()) {
          diags->AddError(
              "GPR-E104", StatusCode::kBindError, path,
              "join has " + std::to_string(plan->keys.left.size()) +
                  " left key(s) but " +
                  std::to_string(plan->keys.right.size()) + " right key(s)",
              "equi-join keys come in pairs");
        }
        if (l) {
          for (const auto& k : plan->keys.left) {
            CheckColumn(k, *l, path, "left join-key");
          }
        }
        if (r) {
          for (const auto& k : plan->keys.right) {
            CheckColumn(k, *r, path, "right join-key");
          }
        }
        if (!l || !r) return std::nullopt;
        // Semi/anti joins produce the left input unchanged.
        if (plan->kind == PlanKind::kSemiJoin ||
            plan->kind == PlanKind::kAntiJoin) {
          return l;
        }
        return Joined(plan, *l, *r, path);
      }

      case PlanKind::kCrossProduct: {
        auto l = child(0);
        auto r = child(1);
        if (!l || !r) return std::nullopt;
        return Joined(plan, *l, *r, path);
      }

      case PlanKind::kUnionAll:
      case PlanKind::kUnionDistinct:
      case PlanKind::kDifference:
      case PlanKind::kIntersect: {
        auto l = child(0);
        auto r = child(1);
        if (l && r && !l->UnionCompatible(*r)) {
          diags->AddError(
              "GPR-E103", StatusCode::kTypeMismatch, path,
              std::string(core::PlanKindName(plan->kind)) +
                  " inputs are not union-compatible: " + l->ToString() +
                  " vs " + r->ToString(),
              "both inputs need the same column count and types");
        }
        return l;
      }

      case PlanKind::kDistinct:
      case PlanKind::kSort: {
        auto in = child(0);
        if (!in) return std::nullopt;
        for (const auto& c : plan->sort_cols) {
          CheckColumn(c, *in, path, "sort");
        }
        return in;
      }

      case PlanKind::kGroupBy: {
        auto in = child(0);
        if (!in) return std::nullopt;
        std::vector<ra::Column> cols;
        bool all_ok = true;
        for (const auto& g : plan->group_cols) {
          auto idx = in->IndexOf(g);
          if (!idx) {
            all_ok = false;
            diags->AddError("GPR-E102", StatusCode::kBindError, path,
                            "group-by column " + Quoted(g) +
                                " is not produced by the input",
                            "available columns: " + in->ToString());
            continue;
          }
          cols.push_back(in->column(*idx));
        }
        for (const auto& agg : plan->aggs) {
          ValueType t = ValueType::kInt64;
          if (agg.arg != nullptr) {
            auto at = CheckExpr(agg.arg, *in, path,
                                "aggregate argument of " + Quoted(agg.out_name));
            if (!at) {
              all_ok = false;
              continue;
            }
            t = *at;
          }
          if (agg.kind == ra::AggKind::kCount) t = ValueType::kInt64;
          if (agg.kind == ra::AggKind::kAvg) t = ValueType::kDouble;
          cols.push_back({agg.out_name, t});
        }
        if (!all_ok) return std::nullopt;
        return Schema(std::move(cols));
      }

      case PlanKind::kRename: {
        auto in = child(0);
        if (!in) return std::nullopt;
        if (plan->col_names.empty()) return in;
        if (plan->col_names.size() != in->NumColumns()) {
          diags->AddError(
              "GPR-E105", StatusCode::kInvalidArgument, path,
              "rename provides " + std::to_string(plan->col_names.size()) +
                  " column name(s) for " + std::to_string(in->NumColumns()) +
                  " column(s)",
              "rename columns positionally, one name per input column");
          return std::nullopt;
        }
        auto renamed = in->Renamed(plan->col_names);
        if (!renamed.ok()) return std::nullopt;
        return *renamed;
      }

      case PlanKind::kMMJoin: {
        auto a = child(0);
        auto b = child(1);
        if (a) {
          CheckColumn(plan->a_cols.from, *a, path, "matrix A");
          CheckColumn(plan->a_cols.to, *a, path, "matrix A");
          CheckColumn(plan->a_cols.weight, *a, path, "matrix A");
        }
        if (b) {
          CheckColumn(plan->b_cols.from, *b, path, "matrix B");
          CheckColumn(plan->b_cols.to, *b, path, "matrix B");
          CheckColumn(plan->b_cols.weight, *b, path, "matrix B");
        }
        if (!a || !b) return std::nullopt;
        return Schema{{"F", ValueType::kInt64},
                      {"T", ValueType::kInt64},
                      {"ew", ValueType::kDouble}};
      }

      case PlanKind::kMVJoin: {
        auto m = child(0);
        auto v = child(1);
        if (m) {
          CheckColumn(plan->a_cols.from, *m, path, "matrix");
          CheckColumn(plan->a_cols.to, *m, path, "matrix");
          CheckColumn(plan->a_cols.weight, *m, path, "matrix");
        }
        if (v) {
          CheckColumn(plan->v_cols.id, *v, path, "vector");
          CheckColumn(plan->v_cols.weight, *v, path, "vector");
        }
        if (!m || !v) return std::nullopt;
        return Schema{{"ID", ValueType::kInt64}, {"vw", ValueType::kDouble}};
      }
    }
    return std::nullopt;
  }

  /// Binary joining nodes: qualify each side by its output name (exactly as
  /// InferSchema does), rejecting self-joins that share a name, then check
  /// the residual predicate against the concatenated schema.
  std::optional<Schema> Joined(const PlanPtr& plan, const Schema& l,
                               const Schema& r, const std::string& path) {
    const std::string ln = core::PlanOutputName(plan->children[0]);
    const std::string rn = core::PlanOutputName(plan->children[1]);
    if (!ln.empty() && ln == rn) {
      diags->AddError("GPR-E106", StatusCode::kBindError, path,
                      "join inputs share the name " + Quoted(ln) +
                          "; column references would be ambiguous",
                      "rename one side (Rename / Project with an output "
                      "name) before joining it with itself");
      return std::nullopt;
    }
    Schema ls = ln.empty() ? l : l.Qualified(ln);
    Schema rs = rn.empty() ? r : r.Qualified(rn);
    Schema out = ls.Concat(rs);
    if (plan->kind == PlanKind::kJoin && plan->predicate != nullptr) {
      CheckExpr(plan->predicate, out, path, "join residual predicate");
    }
    return out;
  }
};

}  // namespace

std::optional<ra::Schema> CheckPlanTypes(const core::PlanPtr& plan,
                                         const ra::Catalog& catalog,
                                         const SchemaOverlays& overlays,
                                         const std::string& root_path,
                                         DiagnosticBag* diags) {
  TypeChecker checker{catalog, overlays, diags};
  return checker.Check(plan, root_path);
}

namespace {

/// Checks one subquery: computed-by definitions in order (each one's schema
/// becomes visible to later definitions and to the main plan), then the main
/// plan, whose schema must be union-compatible with the recursive relation.
void CheckSubquery(const core::Subquery& sq, const core::WithPlusQuery& query,
                   const ra::Catalog& catalog, SchemaOverlays overlays,
                   const std::string& path, bool is_init,
                   DiagnosticBag* diags) {
  for (const auto& def : sq.computed_by) {
    auto schema = CheckPlanTypes(def.plan, catalog, overlays,
                                 path + "/computed_by[" + def.name + "]",
                                 diags);
    if (schema) overlays[def.name] = *schema;
  }
  auto schema = CheckPlanTypes(sq.plan, catalog, overlays, path, diags);
  if (schema && !schema->UnionCompatible(query.rec_schema)) {
    diags->AddError(
        "GPR-E107", StatusCode::kTypeMismatch, path,
        std::string(is_init ? "initial" : "recursive") + " subquery result " +
            schema->ToString() + " is incompatible with " +
            query.rec_schema.ToString(),
        "produce exactly the declared columns of " + Quoted(query.rec_name));
  }
}

}  // namespace

void CheckQueryTypes(const core::WithPlusQuery& query,
                     const ra::Catalog& catalog, DiagnosticBag* diags) {
  SchemaOverlays base;
  // The recursive relation is visible inside every subquery (init subqueries
  // referencing it is a structural error, GPR-E004, reported elsewhere — the
  // overlay just avoids a misleading E101 on top of it).
  base[query.rec_name] = query.rec_schema;

  for (size_t i = 0; i < query.init.size(); ++i) {
    CheckSubquery(query.init[i], query, catalog, base,
                  "init[" + std::to_string(i) + "]", /*is_init=*/true, diags);
  }
  for (size_t i = 0; i < query.recursive.size(); ++i) {
    CheckSubquery(query.recursive[i], query, catalog, base,
                  "recursive[" + std::to_string(i) + "]", /*is_init=*/false,
                  diags);
  }

  // union-by-update keys must be columns of the recursive relation.
  for (const auto& k : query.update_keys) {
    if (!query.rec_schema.Has(k)) {
      diags->AddError("GPR-E108", StatusCode::kBindError, "update_keys",
                      "update key " + Quoted(k) + " is not a column of " +
                          Quoted(query.rec_name) + " " +
                          query.rec_schema.ToString(),
                      "union by update keys must name recursive-relation "
                      "columns");
    }
  }
}

}  // namespace gpr::analysis
