#include "baseline/bsp_engine.h"

#include <limits>

#include "baseline/native_algos.h"

namespace gpr::baseline {

using graph::Graph;
using graph::NodeId;

std::vector<double> BspPageRank(const Graph& g, int iterations,
                                double damping) {
  const auto n = static_cast<double>(g.num_nodes());
  std::vector<double> init(g.num_nodes(), 1.0 / n);
  auto compute = [&](BspContext<double, double>& ctx, NodeId v, double& value,
                     const std::vector<double>& msgs) {
    if (ctx.superstep() > 0) {
      double sum = 0.0;
      for (double m : msgs) sum += m;
      value = damping * sum + (1.0 - damping) / n;
    }
    const size_t deg = g.OutDegree(v);
    if (deg > 0) {
      ctx.SendToNeighbors(v, value / static_cast<double>(deg));
    }
    ctx.SendTo(v, 0.0);  // keep every vertex active across supersteps
  };
  // iterations rank updates need iterations+1 supersteps (first only sends).
  return RunBsp<double, double>(g, std::move(init), compute, iterations + 1);
}

std::vector<NodeId> BspWcc(const Graph& g) {
  std::vector<NodeId> init(g.num_nodes());
  for (NodeId v = 0; v < g.num_nodes(); ++v) init[v] = v;
  auto compute = [&](BspContext<NodeId, NodeId>& ctx, NodeId v, NodeId& value,
                     const std::vector<NodeId>& msgs) {
    NodeId best = value;
    for (NodeId m : msgs) best = std::min(best, m);
    if (best < value || ctx.superstep() == 0) {
      value = best;
      // Components are weakly connected: notify both directions.
      for (NodeId w : ctx.graph().OutNeighbors(v)) ctx.SendTo(w, value);
      for (NodeId w : ctx.graph().InNeighbors(v)) ctx.SendTo(w, value);
    }
  };
  return RunBsp<NodeId, NodeId>(g, std::move(init), compute,
                                static_cast<int>(g.num_nodes()) + 2);
}

std::vector<double> BspSssp(const Graph& g, NodeId src) {
  std::vector<double> init(g.num_nodes(), kUnreachable);
  init[src] = 0.0;
  auto compute = [&](BspContext<double, double>& ctx, NodeId v, double& value,
                     const std::vector<double>& msgs) {
    double best = value;
    for (double m : msgs) best = std::min(best, m);
    const bool improved = best < value;
    if (improved) value = best;
    if (improved || (ctx.superstep() == 0 && v == src)) {
      const auto nbrs = ctx.graph().OutNeighbors(v);
      for (size_t i = 0; i < nbrs.size; ++i) {
        ctx.SendTo(nbrs.ids[i], value + nbrs.weights[i]);
      }
    }
  };
  return RunBsp<double, double>(g, std::move(init), compute,
                                static_cast<int>(g.num_nodes()) + 2);
}

}  // namespace gpr::baseline
