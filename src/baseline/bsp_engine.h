// A small vertex-centric BSP engine (Pregel/Giraph analogue) for the
// Fig 11 comparison: per-superstep message buffers with explicit copies,
// vote-to-halt semantics, and synchronous barriers.
//
// The point is architectural fidelity, not speed: message materialization
// between supersteps is the overhead that separates this engine from the
// direct array implementations in native_algos.h, mirroring the gap the
// paper reports between Giraph and PowerGraph.
#pragma once

#include <functional>
#include <vector>

#include "graph/graph.h"

namespace gpr::baseline {

/// The API a vertex program sees during Compute().
template <typename Value, typename Message>
class BspContext {
 public:
  BspContext(const graph::Graph& g, std::vector<std::vector<Message>>* outbox,
             std::vector<bool>* active, int superstep)
      : graph_(g), outbox_(outbox), active_(active), superstep_(superstep) {}

  int superstep() const { return superstep_; }
  const graph::Graph& graph() const { return graph_; }

  /// Sends a message to `target` for delivery next superstep.
  void SendTo(graph::NodeId target, const Message& msg) {
    (*outbox_)[target].push_back(msg);
    (*active_)[target] = true;
  }

  /// Sends a message along every out-edge of `v`.
  void SendToNeighbors(graph::NodeId v, const Message& msg) {
    for (graph::NodeId w : graph_.OutNeighbors(v)) SendTo(w, msg);
  }

 private:
  const graph::Graph& graph_;
  std::vector<std::vector<Message>>* outbox_;
  std::vector<bool>* active_;
  int superstep_;
};

/// Runs a vertex program to quiescence (all halted, no messages) or to
/// `max_supersteps`. Returns final vertex values.
template <typename Value, typename Message>
std::vector<Value> RunBsp(
    const graph::Graph& g, std::vector<Value> init,
    const std::function<void(BspContext<Value, Message>&, graph::NodeId,
                             Value&, const std::vector<Message>&)>& compute,
    int max_supersteps) {
  const auto n = static_cast<size_t>(g.num_nodes());
  std::vector<Value> value = std::move(init);
  std::vector<std::vector<Message>> inbox(n);
  std::vector<std::vector<Message>> outbox(n);
  std::vector<bool> active(n, true);
  std::vector<bool> next_active(n, false);
  for (int step = 0; step < max_supersteps; ++step) {
    bool any = false;
    BspContext<Value, Message> ctx(g, &outbox, &next_active, step);
    for (graph::NodeId v = 0; v < g.num_nodes(); ++v) {
      if (!active[v] && inbox[v].empty()) continue;
      any = true;
      compute(ctx, v, value[v], inbox[v]);
    }
    if (!any) break;
    // Barrier: deliver the outbox (explicit copy — the BSP materialization
    // cost), clear state for the next superstep.
    for (size_t v = 0; v < n; ++v) {
      inbox[v] = outbox[v];  // deliberate copy, then clear
      outbox[v].clear();
    }
    active = next_active;
    std::fill(next_active.begin(), next_active.end(), false);
  }
  return value;
}

/// Giraph-style PageRank: `iterations` supersteps of rank exchange.
std::vector<double> BspPageRank(const graph::Graph& g, int iterations,
                                double damping);

/// Giraph-style WCC (min-label propagation).
std::vector<graph::NodeId> BspWcc(const graph::Graph& g);

/// Giraph-style SSSP (distance relaxation).
std::vector<double> BspSssp(const graph::Graph& g, graph::NodeId src);

}  // namespace gpr::baseline
