#include "baseline/native_algos.h"

#include <algorithm>
#include <cmath>
#include <deque>
#include <map>
#include <unordered_map>
#include <unordered_set>

namespace gpr::baseline {

std::vector<int64_t> Bfs(const Graph& g, NodeId src) {
  std::vector<int64_t> level(g.num_nodes(), -1);
  std::deque<NodeId> queue{src};
  level[src] = 0;
  while (!queue.empty()) {
    const NodeId v = queue.front();
    queue.pop_front();
    for (NodeId w : g.OutNeighbors(v)) {
      if (level[w] == -1) {
        level[w] = level[v] + 1;
        queue.push_back(w);
      }
    }
  }
  return level;
}

std::vector<NodeId> Wcc(const Graph& g) {
  // Union-find with path halving.
  std::vector<NodeId> parent(g.num_nodes());
  for (NodeId v = 0; v < g.num_nodes(); ++v) parent[v] = v;
  auto find = [&](NodeId v) {
    while (parent[v] != v) {
      parent[v] = parent[parent[v]];
      v = parent[v];
    }
    return v;
  };
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    for (NodeId w : g.OutNeighbors(v)) {
      NodeId a = find(v);
      NodeId b = find(w);
      if (a != b) parent[std::max(a, b)] = std::min(a, b);
    }
  }
  // Compress to the minimum id of the component.
  std::vector<NodeId> label(g.num_nodes());
  for (NodeId v = 0; v < g.num_nodes(); ++v) label[v] = find(v);
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    label[v] = std::min(label[v], label[find(v)]);
  }
  return label;
}

std::vector<double> SsspBellmanFord(const Graph& g, NodeId src) {
  std::vector<double> dist(g.num_nodes(), kUnreachable);
  dist[src] = 0.0;
  bool changed = true;
  for (NodeId round = 0; round < g.num_nodes() && changed; ++round) {
    changed = false;
    for (NodeId v = 0; v < g.num_nodes(); ++v) {
      if (dist[v] >= kUnreachable) continue;
      const auto nbrs = g.OutNeighbors(v);
      for (size_t i = 0; i < nbrs.size; ++i) {
        const double cand = dist[v] + nbrs.weights[i];
        if (cand < dist[nbrs.ids[i]]) {
          dist[nbrs.ids[i]] = cand;
          changed = true;
        }
      }
    }
  }
  return dist;
}

std::vector<std::vector<double>> ApspFloydWarshall(const Graph& g) {
  const size_t n = static_cast<size_t>(g.num_nodes());
  std::vector<std::vector<double>> d(n,
                                     std::vector<double>(n, kUnreachable));
  for (size_t v = 0; v < n; ++v) d[v][v] = 0.0;
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    const auto nbrs = g.OutNeighbors(v);
    for (size_t i = 0; i < nbrs.size; ++i) {
      d[v][nbrs.ids[i]] = std::min(d[v][nbrs.ids[i]], nbrs.weights[i]);
    }
  }
  for (size_t k = 0; k < n; ++k) {
    for (size_t i = 0; i < n; ++i) {
      if (d[i][k] >= kUnreachable) continue;
      for (size_t j = 0; j < n; ++j) {
        d[i][j] = std::min(d[i][j], d[i][k] + d[k][j]);
      }
    }
  }
  return d;
}

std::vector<double> PageRank(const Graph& g, int iterations, double damping) {
  const auto n = static_cast<double>(g.num_nodes());
  std::vector<double> pr(g.num_nodes(), 1.0 / n);
  std::vector<double> next(g.num_nodes());
  for (int it = 0; it < iterations; ++it) {
    std::fill(next.begin(), next.end(), (1.0 - damping) / n);
    for (NodeId v = 0; v < g.num_nodes(); ++v) {
      const size_t deg = g.OutDegree(v);
      if (deg == 0) continue;
      const double share = damping * pr[v] / static_cast<double>(deg);
      for (NodeId w : g.OutNeighbors(v)) next[w] += share;
    }
    std::swap(pr, next);
  }
  return pr;
}

std::vector<double> PaperPageRank(const Graph& g, int iterations,
                                  double damping) {
  const auto n = static_cast<double>(g.num_nodes());
  std::vector<double> w(g.num_nodes(), 0.0);
  std::vector<double> next(g.num_nodes());
  for (int it = 0; it < iterations; ++it) {
    for (NodeId t = 0; t < g.num_nodes(); ++t) {
      if (g.InDegree(t) == 0) {
        next[t] = w[t];  // union-by-update keeps the unmatched tuple
        continue;
      }
      double sum = 0.0;
      const auto nbrs = g.InNeighbors(t);
      for (size_t i = 0; i < nbrs.size; ++i) {
        sum += w[nbrs.ids[i]] * nbrs.weights[i];
      }
      next[t] = damping * sum + (1.0 - damping) / n;
    }
    std::swap(w, next);
  }
  return w;
}

HubAuth PaperHits(const Graph& g, int iterations) {
  HubAuth ha;
  ha.hub.assign(g.num_nodes(), 1.0);
  ha.auth.assign(g.num_nodes(), 1.0);
  for (int it = 0; it < iterations; ++it) {
    // R_a: authority over nodes with in-edges — a(t) = Σ_{f→t} h(f)·ew.
    std::unordered_map<NodeId, double> a_new;
    for (NodeId t = 0; t < g.num_nodes(); ++t) {
      const auto nbrs = g.InNeighbors(t);
      if (nbrs.size == 0) continue;
      double sum = 0.0;
      for (size_t i = 0; i < nbrs.size; ++i) {
        sum += ha.hub[nbrs.ids[i]] * nbrs.weights[i];
      }
      a_new[t] = sum;
    }
    // R_h: hub from the fresh authorities — h(f) = Σ_{f→t} a(t)·ew,
    // over targets that have an authority value.
    std::unordered_map<NodeId, double> h_new;
    for (NodeId f = 0; f < g.num_nodes(); ++f) {
      const auto nbrs = g.OutNeighbors(f);
      double sum = 0.0;
      bool any = false;
      for (size_t i = 0; i < nbrs.size; ++i) {
        auto it2 = a_new.find(nbrs.ids[i]);
        if (it2 == a_new.end()) continue;
        sum += it2->second * nbrs.weights[i];
        any = true;
      }
      if (any) h_new[f] = sum;
    }
    // R_ha: nodes with both; R_n: joint normalizers.
    double nh = 0.0;
    double na = 0.0;
    std::vector<NodeId> both;
    for (const auto& [v, h] : h_new) {
      auto it2 = a_new.find(v);
      if (it2 == a_new.end()) continue;
      both.push_back(v);
      nh += h * h;
      na += it2->second * it2->second;
    }
    // Union-by-update: only nodes in R_ha change.
    for (NodeId v : both) {
      ha.hub[v] = h_new[v] / std::sqrt(nh);
      ha.auth[v] = a_new[v] / std::sqrt(na);
    }
  }
  return ha;
}

std::vector<int64_t> TopoSortLevels(const Graph& g) {
  std::vector<int64_t> level(g.num_nodes(), -1);
  std::vector<size_t> indeg(g.num_nodes());
  for (NodeId v = 0; v < g.num_nodes(); ++v) indeg[v] = g.InDegree(v);
  std::vector<NodeId> frontier;
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    if (indeg[v] == 0) {
      frontier.push_back(v);
      level[v] = 0;
    }
  }
  int64_t depth = 0;
  size_t sorted = frontier.size();
  while (!frontier.empty()) {
    ++depth;
    std::vector<NodeId> next;
    for (NodeId v : frontier) {
      for (NodeId w : g.OutNeighbors(v)) {
        if (--indeg[w] == 0) {
          level[w] = depth;
          next.push_back(w);
        }
      }
    }
    sorted += next.size();
    frontier = std::move(next);
  }
  if (sorted != static_cast<size_t>(g.num_nodes())) return {};  // cycle
  return level;
}

std::vector<bool> KCore(const Graph& g, int k) {
  std::vector<int64_t> deg(g.num_nodes());
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    deg[v] = static_cast<int64_t>(g.OutDegree(v) + g.InDegree(v));
  }
  std::vector<bool> alive(g.num_nodes(), true);
  std::deque<NodeId> doomed;
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    if (deg[v] < k) doomed.push_back(v);
  }
  while (!doomed.empty()) {
    const NodeId v = doomed.front();
    doomed.pop_front();
    if (!alive[v]) continue;
    alive[v] = false;
    auto relax = [&](NodeId w) {
      if (alive[w] && deg[w]-- == k) doomed.push_back(w);
    };
    for (NodeId w : g.OutNeighbors(v)) relax(w);
    for (NodeId w : g.InNeighbors(v)) relax(w);
  }
  return alive;
}

std::vector<int64_t> LabelPropagation(const Graph& g, int iterations) {
  std::vector<int64_t> label(g.node_labels());
  GPR_CHECK(!label.empty()) << "LabelPropagation needs node labels";
  std::vector<int64_t> next(label.size());
  for (int it = 0; it < iterations; ++it) {
    for (NodeId v = 0; v < g.num_nodes(); ++v) {
      const auto nbrs = g.InNeighbors(v);
      if (nbrs.size == 0) {
        next[v] = label[v];
        continue;
      }
      std::unordered_map<int64_t, int> count;
      for (size_t i = 0; i < nbrs.size; ++i) ++count[label[nbrs.ids[i]]];
      int best_count = 0;
      int64_t best_label = 0;
      for (const auto& [l, c] : count) {
        if (c > best_count || (c == best_count && l < best_label)) {
          best_count = c;
          best_label = l;
        }
      }
      next[v] = best_label;
    }
    std::swap(label, next);
  }
  return label;
}

std::vector<bool> MisWithPriorities(
    const Graph& g, const std::vector<std::vector<double>>& priorities) {
  std::vector<bool> in_set(g.num_nodes(), false);
  std::vector<bool> removed(g.num_nodes(), false);
  for (const auto& prio : priorities) {
    GPR_CHECK_EQ(static_cast<NodeId>(prio.size()), g.num_nodes());
    bool any = false;
    std::vector<NodeId> winners;
    for (NodeId v = 0; v < g.num_nodes(); ++v) {
      if (removed[v]) continue;
      any = true;
      bool wins = true;
      auto contest = [&](NodeId w) {
        if (removed[w]) return;
        if (prio[w] < prio[v] || (prio[w] == prio[v] && w < v)) wins = false;
      };
      for (NodeId w : g.OutNeighbors(v)) contest(w);
      for (NodeId w : g.InNeighbors(v)) contest(w);
      if (wins) winners.push_back(v);
    }
    if (!any) break;
    for (NodeId v : winners) {
      in_set[v] = true;
      removed[v] = true;
      for (NodeId w : g.OutNeighbors(v)) removed[w] = true;
      for (NodeId w : g.InNeighbors(v)) removed[w] = true;
    }
  }
  return in_set;
}

std::vector<NodeId> Mnm(const Graph& g) {
  GPR_CHECK(!g.node_weights().empty()) << "MNM needs node weights";
  const auto& weight = g.node_weights();
  std::vector<NodeId> match(g.num_nodes(), -1);
  std::vector<bool> removed(g.num_nodes(), false);
  while (true) {
    // Each remaining node points at its best remaining neighbour.
    std::vector<NodeId> choice(g.num_nodes(), -1);
    for (NodeId v = 0; v < g.num_nodes(); ++v) {
      if (removed[v]) continue;
      NodeId best = -1;
      auto consider = [&](NodeId w) {
        if (removed[w] || w == v) return;
        if (best == -1 || weight[w] > weight[best] ||
            (weight[w] == weight[best] && w > best)) {
          best = w;
        }
      };
      for (NodeId w : g.OutNeighbors(v)) consider(w);
      for (NodeId w : g.InNeighbors(v)) consider(w);
      choice[v] = best;
    }
    bool paired = false;
    for (NodeId v = 0; v < g.num_nodes(); ++v) {
      if (removed[v] || choice[v] == -1) continue;
      const NodeId w = choice[v];
      if (w > v && choice[w] == v) {
        match[v] = w;
        match[w] = v;
        removed[v] = removed[w] = true;
        paired = true;
      }
    }
    if (!paired) break;
  }
  return match;
}

std::vector<bool> KeywordSearchRoots(const Graph& g,
                                     const std::vector<int64_t>& keywords,
                                     int depth) {
  GPR_CHECK(!g.node_labels().empty()) << "Keyword-Search needs labels";
  const size_t k = keywords.size();
  GPR_CHECK_LE(k, 63u);
  std::unordered_map<int64_t, int> key_index;
  for (size_t i = 0; i < k; ++i) key_index[keywords[i]] = static_cast<int>(i);
  const uint64_t all = (uint64_t{1} << k) - 1;
  std::vector<uint64_t> vec(g.num_nodes(), 0);
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    auto it = key_index.find(g.node_labels()[v]);
    if (it != key_index.end()) vec[v] |= uint64_t{1} << it->second;
  }
  std::vector<uint64_t> next(vec.size());
  for (int d = 0; d < depth; ++d) {
    for (NodeId v = 0; v < g.num_nodes(); ++v) {
      uint64_t acc = vec[v];
      for (NodeId w : g.OutNeighbors(v)) acc |= vec[w];
      next[v] = acc;
    }
    std::swap(vec, next);
  }
  std::vector<bool> roots(g.num_nodes());
  for (NodeId v = 0; v < g.num_nodes(); ++v) roots[v] = vec[v] == all;
  return roots;
}

std::vector<std::pair<NodeId, NodeId>> TransitiveClosure(const Graph& g,
                                                         int max_depth) {
  std::vector<std::pair<NodeId, NodeId>> out;
  for (NodeId src = 0; src < g.num_nodes(); ++src) {
    std::vector<int64_t> level(g.num_nodes(), -1);
    std::deque<NodeId> queue;
    // Seed with src's direct successors (TC contains (src, w) for paths of
    // length >= 1).
    for (NodeId w : g.OutNeighbors(src)) {
      if (level[w] == -1) {
        level[w] = 1;
        queue.push_back(w);
      }
    }
    while (!queue.empty()) {
      const NodeId v = queue.front();
      queue.pop_front();
      if (max_depth > 0 && level[v] >= max_depth) continue;
      for (NodeId w : g.OutNeighbors(v)) {
        if (level[w] == -1) {
          level[w] = level[v] + 1;
          queue.push_back(w);
        }
      }
    }
    for (NodeId w = 0; w < g.num_nodes(); ++w) {
      if (level[w] > 0) out.emplace_back(src, w);
    }
  }
  return out;
}

std::vector<std::vector<double>> PaperSimRank(const Graph& g, int iterations,
                                              double c) {
  const size_t n = static_cast<size_t>(g.num_nodes());
  std::vector<std::vector<double>> k(n, std::vector<double>(n, 0.0));
  for (size_t i = 0; i < n; ++i) k[i][i] = 1.0;
  for (int it = 0; it < iterations; ++it) {
    // R1 = Eᵀ·K  (R1[f][t] = Σ_u E[u][f]·K[u][t] — join E.F = K.F per
    // Eq. 11's E ⋈_{E.T=K.T} ... with the paper's renamings unrolled).
    std::vector<std::vector<double>> r1(n, std::vector<double>(n, 0.0));
    for (NodeId u = 0; u < g.num_nodes(); ++u) {
      const auto nbrs = g.OutNeighbors(u);
      for (size_t i = 0; i < nbrs.size; ++i) {
        const NodeId f = nbrs.ids[i];
        for (size_t t = 0; t < n; ++t) {
          r1[f][t] += nbrs.weights[i] * k[u][t];
        }
      }
    }
    // R2 = R1·E (R2[f][t] = Σ_u R1[f][u]·E[u][t]).
    std::vector<std::vector<double>> r2(n, std::vector<double>(n, 0.0));
    for (NodeId u = 0; u < g.num_nodes(); ++u) {
      const auto nbrs = g.OutNeighbors(u);
      for (size_t i = 0; i < nbrs.size; ++i) {
        const NodeId t = nbrs.ids[i];
        for (size_t f = 0; f < n; ++f) {
          r2[f][t] += r1[f][u] * nbrs.weights[i];
        }
      }
    }
    // K = max((1-c)·R2, I) entrywise.
    for (size_t i = 0; i < n; ++i) {
      for (size_t j = 0; j < n; ++j) {
        double v = (1.0 - c) * r2[i][j];
        if (i == j) v = std::max(v, 1.0);
        k[i][j] = v;
      }
    }
  }
  return k;
}

std::vector<std::pair<NodeId, NodeId>> KTruss(const Graph& g, int k) {
  // Undirected adjacency sets.
  std::vector<std::unordered_set<NodeId>> adj(g.num_nodes());
  for (const auto& e : g.EdgeList()) {
    if (e.from == e.to) continue;
    adj[e.from].insert(e.to);
    adj[e.to].insert(e.from);
  }
  bool changed = true;
  while (changed) {
    changed = false;
    for (NodeId u = 0; u < g.num_nodes(); ++u) {
      std::vector<NodeId> doomed;
      for (NodeId v : adj[u]) {
        // Support of (u, v): common neighbours.
        int support = 0;
        const auto& small = adj[u].size() < adj[v].size() ? adj[u] : adj[v];
        const auto& large = adj[u].size() < adj[v].size() ? adj[v] : adj[u];
        for (NodeId w : small) {
          if (w != u && w != v && large.count(w)) ++support;
        }
        if (support < k - 2) doomed.push_back(v);
      }
      for (NodeId v : doomed) {
        adj[u].erase(v);
        adj[v].erase(u);
        changed = true;
      }
    }
  }
  std::vector<std::pair<NodeId, NodeId>> out;
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    for (NodeId v : adj[u]) {
      if (u < v) out.emplace_back(u, v);
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<NodeId> GraphBisimulation(const Graph& g) {
  GPR_CHECK(!g.node_labels().empty()) << "bisimulation needs node labels";
  // Initial blocks: by label, canonicalized to the smallest member.
  std::vector<NodeId> block(g.num_nodes());
  {
    std::unordered_map<int64_t, NodeId> rep;
    for (NodeId v = 0; v < g.num_nodes(); ++v) {
      auto [it, inserted] = rep.try_emplace(g.node_labels()[v], v);
      block[v] = it->second;
    }
  }
  while (true) {
    // Signature: (own block, sorted set of successor blocks).
    std::map<std::pair<NodeId, std::vector<NodeId>>, NodeId> rep;
    std::vector<NodeId> next(g.num_nodes());
    for (NodeId v = 0; v < g.num_nodes(); ++v) {
      std::unordered_set<NodeId> succ;
      for (NodeId w : g.OutNeighbors(v)) succ.insert(block[w]);
      std::vector<NodeId> sorted(succ.begin(), succ.end());
      std::sort(sorted.begin(), sorted.end());
      auto key = std::make_pair(block[v], std::move(sorted));
      auto [it, inserted] = rep.try_emplace(key, v);
      if (!inserted) it->second = std::min(it->second, v);
      next[v] = 0;  // filled after reps are final
    }
    // Second pass with final (minimal) representatives.
    for (NodeId v = 0; v < g.num_nodes(); ++v) {
      std::unordered_set<NodeId> succ;
      for (NodeId w : g.OutNeighbors(v)) succ.insert(block[w]);
      std::vector<NodeId> sorted(succ.begin(), succ.end());
      std::sort(sorted.begin(), sorted.end());
      next[v] = rep.at({block[v], sorted});
    }
    if (next == block) break;
    block = std::move(next);
  }
  return block;
}

std::vector<NodeId> SeminaiveWcc(const Graph& g) {
  // Hash-frontier label propagation: the Datalog-engine flavour.
  std::unordered_map<NodeId, NodeId> label;
  for (NodeId v = 0; v < g.num_nodes(); ++v) label[v] = v;
  std::unordered_set<NodeId> frontier;
  for (NodeId v = 0; v < g.num_nodes(); ++v) frontier.insert(v);
  while (!frontier.empty()) {
    std::unordered_set<NodeId> next;
    for (NodeId v : frontier) {
      auto push = [&](NodeId w) {
        if (label[v] < label[w]) {
          label[w] = label[v];
          next.insert(w);
        }
      };
      for (NodeId w : g.OutNeighbors(v)) push(w);
      for (NodeId w : g.InNeighbors(v)) push(w);
    }
    frontier = std::move(next);
  }
  std::vector<NodeId> out(g.num_nodes());
  for (NodeId v = 0; v < g.num_nodes(); ++v) out[v] = label[v];
  return out;
}

std::vector<double> SeminaiveSssp(const Graph& g, NodeId src) {
  std::unordered_map<NodeId, double> dist;
  dist[src] = 0.0;
  std::unordered_set<NodeId> frontier{src};
  while (!frontier.empty()) {
    std::unordered_set<NodeId> next;
    for (NodeId v : frontier) {
      const auto nbrs = g.OutNeighbors(v);
      for (size_t i = 0; i < nbrs.size; ++i) {
        const double cand = dist[v] + nbrs.weights[i];
        auto it = dist.find(nbrs.ids[i]);
        if (it == dist.end() || cand < it->second) {
          dist[nbrs.ids[i]] = cand;
          next.insert(nbrs.ids[i]);
        }
      }
    }
    frontier = std::move(next);
  }
  std::vector<double> out(g.num_nodes(), kUnreachable);
  for (const auto& [v, d] : dist) out[v] = d;
  return out;
}

std::vector<double> SeminaivePageRank(const Graph& g, int iterations,
                                      double damping) {
  const auto n = static_cast<double>(g.num_nodes());
  std::unordered_map<NodeId, double> pr;
  for (NodeId v = 0; v < g.num_nodes(); ++v) pr[v] = 1.0 / n;
  for (int it = 0; it < iterations; ++it) {
    std::unordered_map<NodeId, double> next;
    for (NodeId v = 0; v < g.num_nodes(); ++v) {
      next[v] = (1.0 - damping) / n;
    }
    for (NodeId v = 0; v < g.num_nodes(); ++v) {
      const size_t deg = g.OutDegree(v);
      if (deg == 0) continue;
      const double share = damping * pr[v] / static_cast<double>(deg);
      for (NodeId w : g.OutNeighbors(v)) next[w] += share;
    }
    pr = std::move(next);
  }
  std::vector<double> out(g.num_nodes());
  for (NodeId v = 0; v < g.num_nodes(); ++v) out[v] = pr[v];
  return out;
}

}  // namespace gpr::baseline
