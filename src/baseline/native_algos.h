// Native CSR graph algorithms.
//
// Two roles: (1) the dedicated-graph-system baselines of Fig 11 (PowerGraph
// analogue = tight array-based implementations; SociaLite analogue =
// hash-based seminaive variants in seminaive_*), and (2) reference
// implementations that mirror the paper's relational semantics exactly
// (Paper* functions) so the with+ implementations can be cross-checked on
// random graphs.
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "graph/graph.h"

namespace gpr::baseline {

using graph::Graph;
using graph::NodeId;

/// BFS level per node from `src`; -1 when unreachable.
std::vector<int64_t> Bfs(const Graph& g, NodeId src);

/// Weakly-connected components: smallest node id in each node's component
/// (edges treated as undirected).
std::vector<NodeId> Wcc(const Graph& g);

/// Bellman-Ford single-source distances; +kUnreachable when unreachable.
constexpr double kUnreachable = 1.0e15;
std::vector<double> SsspBellmanFord(const Graph& g, NodeId src);

/// Floyd-Warshall all-pairs distances (dense n×n; small graphs only).
std::vector<std::vector<double>> ApspFloydWarshall(const Graph& g);

/// Standard power-iteration PageRank (the Fig 11 baseline series):
/// pr = c · Aᵀpr + (1−c)/n with A row-normalized; init 1/n.
std::vector<double> PageRank(const Graph& g, int iterations, double damping);

/// PageRank mirroring the paper's with+ semantics exactly (Fig 3):
/// init 0; each iteration t with ≥1 in-edge gets c·Σ_{f→t} w[f]·ew(f,t)
/// + (1−c)/n, others keep their value (union-by-update). `ew` is taken
/// from the graph's edge weights as-is.
std::vector<double> PaperPageRank(const Graph& g, int iterations,
                                  double damping);

/// HITS mirroring Eq. 12: a = Eᵀh, h = E·a, joint normalization by
/// sqrt(Σh²) / sqrt(Σa²) over nodes present in both; nodes missing either
/// value keep their previous (initially 1.0) scores via union-by-update.
struct HubAuth {
  std::vector<double> hub;
  std::vector<double> auth;
};
HubAuth PaperHits(const Graph& g, int iterations);

/// Kahn topological levels for a DAG: level[v] = longest-path depth; the
/// paper's TopoSort L attribute (Eq. 13). Fails (returns empty) on cycles.
std::vector<int64_t> TopoSortLevels(const Graph& g);

/// K-core: iteratively removes nodes with total degree (in+out) < k;
/// returns membership flags of the k-core.
std::vector<bool> KCore(const Graph& g, int k);

/// Synchronous Label-Propagation (paper mirror): each iteration every node
/// takes the most frequent label among in-neighbours, breaking ties toward
/// the smallest label; nodes with no in-neighbours keep their label.
std::vector<int64_t> LabelPropagation(const Graph& g, int iterations);

/// Random-priority Maximal-Independent-Set given per-round node priorities
/// (priorities[round][v]); deterministic for testing. A node joins I when
/// its priority beats every remaining neighbour's.
std::vector<bool> MisWithPriorities(
    const Graph& g, const std::vector<std::vector<double>>& priorities);

/// Maximal-Node-Matching (paper mirror): each node points at its
/// max-weight remaining neighbour (ties toward larger id); mutual choices
/// match and leave the graph; repeats until no pair forms.
/// Returns match[v] = partner or -1.
std::vector<NodeId> Mnm(const Graph& g);

/// Keyword-Search roots (paper mirror): nodes whose depth-`depth`
/// out-neighbourhood collectively covers all labels in `keywords`.
std::vector<bool> KeywordSearchRoots(const Graph& g,
                                     const std::vector<int64_t>& keywords,
                                     int depth);

/// Transitive-closure pairs up to `max_depth` hops (0 = unbounded);
/// small graphs only.
std::vector<std::pair<NodeId, NodeId>> TransitiveClosure(const Graph& g,
                                                         int max_depth = 0);

/// SimRank mirroring Eq. 11 on the edge relation: K starts as I and each
/// iteration K ← max((1−c)·EᵀKE, I) entrywise over the support produced by
/// the joins; dense n×n — tiny graphs only.
std::vector<std::vector<double>> PaperSimRank(const Graph& g, int iterations,
                                              double c);

/// K-truss over the symmetrized edge set: iteratively removes undirected
/// edges in fewer than k-2 triangles. Returns the surviving undirected
/// edges as ordered pairs (u < v).
std::vector<std::pair<NodeId, NodeId>> KTruss(const Graph& g, int k);

/// Maximum graph bisimulation via partition refinement: two nodes are
/// equivalent iff they have the same label and their successors cover the
/// same set of blocks. Returns block id per node, canonicalized to the
/// smallest member id.
std::vector<NodeId> GraphBisimulation(const Graph& g);

/// Seminaive (hash-based) variants — the SociaLite/Datalog-engine analogue
/// for Fig 11: frontier sets and hash maps instead of dense arrays.
std::vector<NodeId> SeminaiveWcc(const Graph& g);
std::vector<double> SeminaiveSssp(const Graph& g, NodeId src);
std::vector<double> SeminaivePageRank(const Graph& g, int iterations,
                                      double damping);

}  // namespace gpr::baseline
