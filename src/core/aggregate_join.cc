#include "core/aggregate_join.h"

#include <array>
#include <map>
#include <memory>
#include <unordered_map>
#include <utility>
#include <vector>

#include "exec/exec_context.h"
#include "ra/column.h"
#include "ra/csr.h"
#include "ra/plan_cache.h"
#include "ra/tuple.h"
#include "ra/vectorized.h"

namespace gpr::core {

namespace ops = ra::ops;
using ra::AggSpec;
using ra::Col;
using ra::Table;

namespace {

/// True when every named column resolves — the binder-verified shape the
/// CSR kernels require. A failure here routes to the generic path so the
/// error surface (and its messages) stays exactly the generic one's.
bool ResolvesMatrix(const Table& t, const MatrixCols& cols) {
  return t.schema().Resolve(cols.from).ok() &&
         t.schema().Resolve(cols.to).ok() &&
         t.schema().Resolve(cols.weight).ok();
}

bool ResolvesVector(const Table& t, const VectorCols& cols) {
  return t.schema().Resolve(cols.id).ok() &&
         t.schema().Resolve(cols.weight).ok();
}

/// The SpMM kernel path of MMJoin: B compiled to CSR (rows keyed on
/// B.from — the probe side), A's rows probed in order.
Result<Table> MMJoinCsr(const Table& a, const Table& b, const Semiring& sr,
                        const MatrixCols& a_cols, const MatrixCols& b_cols,
                        ra::EvalContext* ctx, bool b_stable) {
  GPR_ASSIGN_OR_RETURN(size_t af, a.schema().Resolve(a_cols.from));
  GPR_ASSIGN_OR_RETURN(size_t at, a.schema().Resolve(a_cols.to));
  GPR_ASSIGN_OR_RETURN(size_t aw, a.schema().Resolve(a_cols.weight));
  GPR_ASSIGN_OR_RETURN(size_t bf, b.schema().Resolve(b_cols.from));
  GPR_ASSIGN_OR_RETURN(size_t bt, b.schema().Resolve(b_cols.to));
  GPR_ASSIGN_OR_RETURN(size_t bw, b.schema().Resolve(b_cols.weight));
  GPR_ASSIGN_OR_RETURN(std::shared_ptr<const ra::CsrMatrix> csr,
                       ra::CsrFor(b, bf, bt, bw, b_stable, ctx));
  ++ctx->kernels->kernel_hits;
  return ra::SpmmKernel(*csr, a, af, at, aw, b, bt, bw, sr.add, sr.multiply,
                        ctx);
}

}  // namespace

Result<Table> MMJoin(const Table& a, const Table& b, const Semiring& sr,
                     const EngineProfile& profile, const MatrixCols& a_cols,
                     const MatrixCols& b_cols, ra::EvalContext* ctx,
                     bool a_stable, bool b_stable) {
  // Fixed qualifiers keep self-joins unambiguous without copying inputs.
  const std::string ln = "mm_a";
  const std::string rn = "mm_b";

  ops::JoinKeys keys{{a_cols.to}, {b_cols.from}};
  ops::JoinOptions opts;
  opts.algo = profile.ChooseJoin(b);
  opts.ctx = ctx;
  opts.left_qualifier = ln;
  opts.right_qualifier = rn;
  // CSR SpMM kernel (ra/csr.h): kernels on (non-null counters), a hash
  // plan (merge-join match order is one the kernel cannot replay), and a
  // binder-verified shape. Row-identical to the generic path below,
  // which stays as the differential-testing oracle.
  if (ctx != nullptr && ctx->kernels != nullptr) {
    if (opts.algo == ops::JoinAlgorithm::kHash && ResolvesMatrix(a, a_cols) &&
        ResolvesMatrix(b, b_cols)) {
      return MMJoinCsr(a, b, sr, a_cols, b_cols, ctx, b_stable);
    }
    ++ctx->kernels->kernel_fallbacks;
  }
  // The build table / sort runs of a catalog-resident side survive across
  // fixpoint iterations (ApspLinear's invariant edge matrix).
  opts.cache_build = b_stable;
  opts.cache_left_sort = a_stable;
  opts.cache_right_sort = b_stable;
  GPR_ASSIGN_OR_RETURN(Table joined, ops::JoinWithOptions(a, b, keys, opts));
  // γ_{A.F, B.T} ⊕(A.ew ⊙ B.ew)
  AggSpec agg{sr.add,
              sr.Multiply(Col(ln + "." + a_cols.weight),
                          Col(rn + "." + b_cols.weight)),
              "ew"};
  GPR_ASSIGN_OR_RETURN(
      Table grouped,
      ops::GroupBy(joined, {ln + "." + a_cols.from, rn + "." + b_cols.to},
                   {agg}, ctx));
  // Normalize output column names to the matrix convention.
  return ops::Rename(grouped, "", {"F", "T", "ew"});
}

namespace {

// Poll cadence of the fused MV-join probe loop (matches the ra operators').
constexpr size_t kFusedPollStride = 8192;

/// The cacheable half of a fused MV-join: the matrix reduced to
/// (group, join, weight) triples in row order, rows with a NULL join value
/// dropped (a hash join never matches them). Immutable once cached, shared
/// read-only across iterations and worker threads.
struct MVTriples {
  std::vector<std::array<ra::Value, 3>> rows;
};

/// Typed image of MVTriples for the vectorized fused path: group / join
/// ids and weights unboxed. Cached under its own "mvv:" key so toggling
/// `vectorize` mid-session never mixes layouts with the boxed triples.
struct MVTypedTriples {
  std::vector<int64_t> group;
  std::vector<int64_t> join;
  bool w_f64 = false;           // product representation, decided statically
  std::vector<int64_t> wi;      // weights when the m column is int64
  std::vector<double> wd;       // weights when the m column is double
};

/// The vectorized fused MV-join (ra/vectorized.h knob): the same
/// probe/fold structure as the boxed loop below, run over unboxed triple
/// and weight arrays with the ⊙ product and the ⊕ fold typed. Binds only
/// when the group/join/id columns are uniformly int64 (join/id NULLs are
/// skipped like the hash join does; a NULL group key falls back), both
/// weight columns are uniformly int64/double with no NULLs, ⊕ ∈
/// {sum, min, max} and ⊙ ∈ {+, ×} — shapes where int64 arithmetic stays
/// integral, double sums fold in match order from a 0.0 seed, and strict
/// compares keep the first of ties, replicating NumericBinary and
/// Accumulator bit for bit. Returns false (untouched *out) to run the
/// boxed loop, which stays intact as the differential oracle.
Result<bool> TryMVJoinFusedTyped(const Table& m, const Table& v,
                                 const Semiring& sr, size_t group_idx,
                                 size_t join_idx, size_t mw, size_t vid,
                                 size_t vwc, const std::string& cache_key,
                                 ra::ValueType group_type,
                                 ra::ValueType out_type,
                                 ra::EvalContext* ctx, Table* out) {
  using Rep = ra::ColumnVec::Rep;
  if (sr.add != ra::AggKind::kSum && sr.add != ra::AggKind::kMin &&
      sr.add != ra::AggKind::kMax) {
    return false;
  }
  if (sr.multiply != ra::BinaryOp::kAdd && sr.multiply != ra::BinaryOp::kMul) {
    return false;
  }
  const ra::ColumnStore& mcols = m.columns();
  const ra::ColumnVec& mg = mcols.column(group_idx);
  const ra::ColumnVec& mj = mcols.column(join_idx);
  const ra::ColumnVec& mwv = mcols.column(mw);
  if (mg.rep() != Rep::kInt64 || mg.has_nulls()) return false;
  if (mj.rep() != Rep::kInt64) return false;
  const bool m_f64 = mwv.rep() == Rep::kDouble;
  if ((mwv.rep() != Rep::kInt64 && !m_f64) || mwv.has_nulls()) return false;
  const ra::ColumnStore& vcols = v.columns();
  const ra::ColumnVec& vi = vcols.column(vid);
  const ra::ColumnVec& vwv = vcols.column(vwc);
  if (vi.rep() != Rep::kInt64) return false;
  const bool v_f64 = vwv.rep() == Rep::kDouble;
  if ((vwv.rep() != Rep::kInt64 && !v_f64) || vwv.has_nulls()) return false;
  const bool f64 = m_f64 || v_f64;

  std::shared_ptr<const MVTypedTriples> triples =
      ctx->cache->Lookup<MVTypedTriples>(cache_key, m.version());
  if (triples == nullptr) {
    auto fresh = std::make_shared<MVTypedTriples>();
    fresh->w_f64 = m_f64;
    const size_t n = m.NumRows();
    fresh->group.reserve(n);
    fresh->join.reserve(n);
    if (m_f64) fresh->wd.reserve(n); else fresh->wi.reserve(n);
    for (size_t i = 0; i < n; ++i) {
      if (mj.has_nulls() && mj.IsNull(i)) continue;
      fresh->group.push_back(mg.i64()[i]);
      fresh->join.push_back(mj.i64()[i]);
      if (m_f64) {
        fresh->wd.push_back(mwv.f64()[i]);
      } else {
        fresh->wi.push_back(mwv.i64()[i]);
      }
    }
    GPR_RETURN_NOT_OK(ctx->cache->Insert<MVTypedTriples>(
        cache_key, m.version(), fresh,
        fresh->group.size() * (2 * sizeof(int64_t) + sizeof(double))));
    triples = std::move(fresh);
  }

  // Per-iteration probe side: vector ID → v row indexes, in v row order.
  std::unordered_map<int64_t, std::vector<size_t>> vmap;
  vmap.reserve(v.NumRows());
  for (size_t i = 0; i < v.NumRows(); ++i) {
    if (vi.has_nulls() && vi.IsNull(i)) continue;
    vmap[vi.i64()[i]].push_back(i);
  }

  // Group slots in first-appearance order; every slot sees ≥1 product, so
  // the empty-accumulator NULL case never arises. Double sums start from
  // 0.0 exactly like Accumulator's any_double_ promotion of a 0 isum_.
  std::unordered_map<int64_t, size_t> group_pos;
  std::vector<int64_t> group_keys;
  std::vector<int64_t> iacc;
  std::vector<double> dacc;
  std::vector<uint8_t> seeded;  // min/max: first product seeds like best_
  exec::ExecContext* gov = ctx->exec;
  const bool is_min = sr.add == ra::AggKind::kMin;
  const bool is_max = sr.add == ra::AggKind::kMax;
  const bool is_mul = sr.multiply == ra::BinaryOp::kMul;
  size_t probes = 0;
  const size_t n = triples->group.size();
  for (size_t t = 0; t < n; ++t) {
    auto vit = vmap.find(triples->join[t]);
    if (vit == vmap.end()) continue;
    auto [pos_it, inserted] =
        group_pos.try_emplace(triples->group[t], group_keys.size());
    const size_t slot = pos_it->second;
    if (inserted) {
      group_keys.push_back(triples->group[t]);
      if (f64) dacc.push_back(0.0); else iacc.push_back(0);
      if (is_min || is_max) seeded.push_back(0);
    }
    for (size_t vr : vit->second) {
      if (gov != nullptr && ++probes % kFusedPollStride == 0) {
        GPR_RETURN_NOT_OK(gov->Poll("mv_join"));
      }
      if (f64) {
        const double a = triples->w_f64
                             ? triples->wd[t]
                             : static_cast<double>(triples->wi[t]);
        const double b =
            v_f64 ? vwv.f64()[vr] : static_cast<double>(vwv.i64()[vr]);
        const double p = is_mul ? a * b : a + b;
        double& acc = dacc[slot];
        if (is_min || is_max) {
          if (!seeded[slot]) {
            acc = p;
            seeded[slot] = 1;
          } else if (is_min ? p < acc : p > acc) {
            acc = p;
          }
        } else {
          acc += p;
        }
      } else {
        const int64_t a = triples->wi[t];
        const int64_t b = vwv.i64()[vr];
        const int64_t p = is_mul ? a * b : a + b;
        int64_t& acc = iacc[slot];
        if (is_min || is_max) {
          if (!seeded[slot]) {
            acc = p;
            seeded[slot] = 1;
          } else if (is_min ? p < acc : p > acc) {
            acc = p;
          }
        } else {
          acc += p;
        }
      }
    }
  }
  if (ctx->vectors != nullptr) {
    ctx->vectors->vector_batches +=
        (n + ra::kVectorBatchRows - 1) / ra::kVectorBatchRows;
  }

  Table result("", ra::Schema{{"ID", group_type}, {"vw", out_type}});
  result.Reserve(group_keys.size());
  for (size_t i = 0; i < group_keys.size(); ++i) {
    ra::Tuple row{ra::Value(group_keys[i])};
    row.push_back(f64 ? ra::Value(dacc[i]) : ra::Value(iacc[i]));
    result.AddRow(std::move(row));
  }
  *out = std::move(result);
  return true;
}

/// The cache-on hash path of MVJoin: instead of materializing m ⋈ v and
/// re-grouping it every fixpoint iteration, cache m's triples once and fold
/// the probe and the γ-aggregation into a single pass over them.
///
/// Byte-identity with the join + group-by + rename path holds because both
/// visit matches in the same order (m rows in order; per m row, matching v
/// rows in v insertion order — exactly a hash join probing a build table
/// over v), group by first appearance in that order, evaluate the same
/// compiled ⊙ expression over the same operand types, and fold through the
/// same Accumulator.
Result<Table> MVJoinFused(const Table& m, const Table& v, const Semiring& sr,
                          MVOrientation orientation, const MatrixCols& m_cols,
                          const VectorCols& v_cols, ra::EvalContext* ctx) {
  GPR_ASSIGN_OR_RETURN(size_t mf, m.schema().Resolve(m_cols.from));
  GPR_ASSIGN_OR_RETURN(size_t mt, m.schema().Resolve(m_cols.to));
  GPR_ASSIGN_OR_RETURN(size_t mw, m.schema().Resolve(m_cols.weight));
  GPR_ASSIGN_OR_RETURN(size_t vid, v.schema().Resolve(v_cols.id));
  GPR_ASSIGN_OR_RETURN(size_t vwc, v.schema().Resolve(v_cols.weight));
  const size_t join_idx = orientation == MVOrientation::kStandard ? mt : mf;
  const size_t group_idx = orientation == MVOrientation::kStandard ? mf : mt;

  // Vectorized fused path first: when the column shapes bind it replaces
  // both the boxed triples cache and the boxed fold; a decline runs the
  // boxed loop below untouched and counts a vector_fallback.
  if (ra::vec::Enabled(ctx)) {
    ra::Schema typed_operands{{"a", m.schema().column(mw).type},
                              {"b", v.schema().column(vwc).type}};
    GPR_ASSIGN_OR_RETURN(
        ra::CompiledExpr typed_mult,
        Compile(sr.Multiply(Col("a"), Col("b")), typed_operands));
    ra::ValueType typed_out_type = typed_mult.result_type();
    switch (sr.add) {  // mirror GroupBy's output-type adjustment
      case ra::AggKind::kCount: typed_out_type = ra::ValueType::kInt64; break;
      case ra::AggKind::kAvg: typed_out_type = ra::ValueType::kDouble; break;
      default: break;
    }
    const std::string typed_key =
        "mvv:" + m.name() + ":" +
        (orientation == MVOrientation::kStandard ? "s" : "t") + ":" +
        m_cols.from + ":" + m_cols.to + ":" + m_cols.weight;
    Table typed_out;
    GPR_ASSIGN_OR_RETURN(
        bool done,
        TryMVJoinFusedTyped(m, v, sr, group_idx, join_idx, mw, vid, vwc,
                            typed_key, m.schema().column(group_idx).type,
                            typed_out_type, ctx, &typed_out));
    if (done) return typed_out;
    ra::vec::CountFallback(ctx);
  }

  const uint64_t mversion = m.version();
  const std::string cache_key =
      "mv:" + m.name() + ":" +
      (orientation == MVOrientation::kStandard ? "s" : "t") + ":" +
      m_cols.from + ":" + m_cols.to + ":" + m_cols.weight;
  std::shared_ptr<const MVTriples> triples =
      ctx->cache->Lookup<MVTriples>(cache_key, mversion);
  if (triples == nullptr) {
    auto fresh = std::make_shared<MVTriples>();
    fresh->rows.reserve(m.NumRows());
    for (const ra::Tuple& mr : m.rows()) {
      if (mr[join_idx].is_null()) continue;
      fresh->rows.push_back({mr[group_idx], mr[join_idx], mr[mw]});
    }
    GPR_RETURN_NOT_OK(ctx->cache->Insert<MVTriples>(
        cache_key, mversion, fresh,
        fresh->rows.size() * 3 * sizeof(ra::Value)));
    triples = std::move(fresh);
  }

  // Per-iteration probe side: vector ID → v row indexes, in v row order
  // (the order a hash-join build table would replay matches in).
  std::unordered_map<ra::Value, std::vector<size_t>, ra::ValueHash> vmap;
  vmap.reserve(v.NumRows());
  for (size_t i = 0; i < v.NumRows(); ++i) {
    const ra::Value& id = v.row(i)[vid];
    if (!id.is_null()) vmap[id].push_back(i);
  }

  // Compile ⊙ once against the weight columns' types — the same expression
  // the group-by path evaluates per joined row.
  ra::Schema operand_schema{{"a", m.schema().column(mw).type},
                            {"b", v.schema().column(vwc).type}};
  GPR_ASSIGN_OR_RETURN(
      ra::CompiledExpr mult,
      Compile(sr.Multiply(Col("a"), Col("b")), operand_schema));
  ra::ValueType out_type = mult.result_type();
  switch (sr.add) {  // mirror GroupBy's output-type adjustment
    case ra::AggKind::kCount: out_type = ra::ValueType::kInt64; break;
    case ra::AggKind::kAvg: out_type = ra::ValueType::kDouble; break;
    default: break;
  }

  std::unordered_map<ra::Tuple, size_t, ra::TupleHash, ra::TupleEq> group_pos;
  std::vector<ra::Tuple> group_keys;  // first-appearance order
  std::vector<ra::Accumulator> accs;
  exec::ExecContext* gov = ctx->exec;
  size_t probes = 0;
  ra::Tuple operand(2);  // reused (a, b) operand row
  for (const auto& t : triples->rows) {
    auto vit = vmap.find(t[1]);
    if (vit == vmap.end()) continue;
    auto [pos_it, inserted] =
        group_pos.try_emplace(ra::Tuple{t[0]}, group_keys.size());
    if (inserted) {
      group_keys.push_back(ra::Tuple{t[0]});
      accs.emplace_back(sr.add);
    }
    ra::Accumulator& acc = accs[pos_it->second];
    for (size_t vi : vit->second) {
      if (gov != nullptr && ++probes % kFusedPollStride == 0) {
        GPR_RETURN_NOT_OK(gov->Poll("mv_join"));
      }
      operand[0] = t[2];
      operand[1] = v.row(vi)[vwc];
      acc.Add(mult.Eval(operand, ctx));
    }
  }

  Table out("", ra::Schema{{"ID", m.schema().column(group_idx).type},
                           {"vw", out_type}});
  out.Reserve(group_keys.size());
  for (size_t i = 0; i < group_keys.size(); ++i) {
    ra::Tuple row = std::move(group_keys[i]);
    row.push_back(accs[i].Finish());
    out.AddRow(std::move(row));
  }
  return out;
}

}  // namespace

Result<Table> MVJoin(const Table& m, const Table& v, const Semiring& sr,
                     MVOrientation orientation, const EngineProfile& profile,
                     const MatrixCols& m_cols, const VectorCols& v_cols,
                     ra::EvalContext* ctx, bool m_stable) {
  const std::string ln = "mv_m";
  const std::string rn = "mv_v";

  const std::string join_col =
      orientation == MVOrientation::kStandard ? m_cols.to : m_cols.from;
  const std::string group_col =
      orientation == MVOrientation::kStandard ? m_cols.from : m_cols.to;

  ops::JoinKeys keys{{join_col}, {v_cols.id}};
  ops::JoinOptions opts;
  opts.algo = profile.ChooseJoin(v);
  opts.ctx = ctx;
  opts.left_qualifier = ln;
  opts.right_qualifier = rn;
  // CSR SpMV kernel (ra/csr.h): kernels on (non-null counters), a hash
  // plan, and a binder-verified shape. The CSR layout rows are keyed on
  // the group column and its columns on the join column, so one cached
  // build (keyed on m's content version) serves every iteration until
  // the matrix mutates. Row-identical to both paths below.
  if (ctx != nullptr && ctx->kernels != nullptr) {
    if (opts.algo == ops::JoinAlgorithm::kHash && ResolvesMatrix(m, m_cols) &&
        ResolvesVector(v, v_cols)) {
      GPR_ASSIGN_OR_RETURN(size_t mf, m.schema().Resolve(m_cols.from));
      GPR_ASSIGN_OR_RETURN(size_t mt, m.schema().Resolve(m_cols.to));
      GPR_ASSIGN_OR_RETURN(size_t mw, m.schema().Resolve(m_cols.weight));
      GPR_ASSIGN_OR_RETURN(size_t vid, v.schema().Resolve(v_cols.id));
      GPR_ASSIGN_OR_RETURN(size_t vwc, v.schema().Resolve(v_cols.weight));
      const size_t join_idx =
          orientation == MVOrientation::kStandard ? mt : mf;
      const size_t group_idx =
          orientation == MVOrientation::kStandard ? mf : mt;
      GPR_ASSIGN_OR_RETURN(std::shared_ptr<const ra::CsrMatrix> csr,
                           ra::CsrFor(m, group_idx, join_idx, mw, m_stable,
                                      ctx));
      ++ctx->kernels->kernel_hits;
      return ra::SpmvKernel(*csr, m, group_idx, mw, v, vid, vwc, sr.add,
                            sr.multiply, ctx);
    }
    ++ctx->kernels->kernel_fallbacks;
  }
  // Fused path: only when the matrix is a named catalog table (its
  // (name, version) pair keys the cache) and the profile would hash-join —
  // merge-join materializes matches in a different row order, which the
  // fused probe cannot reproduce.
  if (m_stable && ctx != nullptr && ctx->cache != nullptr &&
      !m.name().empty() && opts.algo == ops::JoinAlgorithm::kHash) {
    return MVJoinFused(m, v, sr, orientation, m_cols, v_cols, ctx);
  }
  opts.cache_left_sort = m_stable;
  GPR_ASSIGN_OR_RETURN(Table joined, ops::JoinWithOptions(m, v, keys, opts));
  AggSpec agg{sr.add,
              sr.Multiply(Col(ln + "." + m_cols.weight),
                          Col(rn + "." + v_cols.weight)),
              "vw"};
  GPR_ASSIGN_OR_RETURN(
      Table grouped, ops::GroupBy(joined, {ln + "." + group_col}, {agg}, ctx));
  return ops::Rename(grouped, "", {"ID", "vw"});
}

namespace {

/// Applies ⊙ to two scalar values through the expression evaluator, so the
/// reference implementations share exactly the semantics of the main path.
ra::Value ApplyMultiply(const Semiring& sr, const ra::Value& a,
                        const ra::Value& b) {
  ra::Schema s{{"a", a.type()}, {"b", b.type()}};
  auto compiled = Compile(sr.Multiply(Col("a"), Col("b")), s);
  GPR_CHECK(compiled.ok());
  return compiled->Eval({a, b});
}

}  // namespace

Result<Table> MMJoinReference(const Table& a, const Table& b,
                              const Semiring& sr, const MatrixCols& a_cols,
                              const MatrixCols& b_cols) {
  GPR_ASSIGN_OR_RETURN(size_t af, a.schema().Resolve(a_cols.from));
  GPR_ASSIGN_OR_RETURN(size_t at, a.schema().Resolve(a_cols.to));
  GPR_ASSIGN_OR_RETURN(size_t aw, a.schema().Resolve(a_cols.weight));
  GPR_ASSIGN_OR_RETURN(size_t bf, b.schema().Resolve(b_cols.from));
  GPR_ASSIGN_OR_RETURN(size_t bt, b.schema().Resolve(b_cols.to));
  GPR_ASSIGN_OR_RETURN(size_t bw, b.schema().Resolve(b_cols.weight));

  // Accumulate ⊕ over ⊙-products, keyed by (i, j).
  std::map<std::pair<ra::Tuple, ra::Tuple>, ra::Accumulator> cells;
  std::unordered_map<ra::Value, std::vector<size_t>, ra::ValueHash> b_by_from;
  for (size_t i = 0; i < b.NumRows(); ++i) {
    b_by_from[b.row(i)[bf]].push_back(i);
  }
  std::vector<std::pair<ra::Tuple, ra::Tuple>> order;
  for (const ra::Tuple& ar : a.rows()) {
    auto it = b_by_from.find(ar[at]);
    if (it == b_by_from.end()) continue;
    for (size_t bi : it->second) {
      const ra::Tuple& br = b.row(bi);
      auto key = std::make_pair(ra::Tuple{ar[af]}, ra::Tuple{br[bt]});
      auto [cell, inserted] = cells.try_emplace(key, sr.add);
      if (inserted) order.push_back(key);
      cell->second.Add(ApplyMultiply(sr, ar[aw], br[bw]));
    }
  }
  Table out("", ra::Schema{{"F", ra::ValueType::kInt64},
                           {"T", ra::ValueType::kInt64},
                           {"ew", ra::ValueType::kDouble}});
  for (const auto& key : order) {
    out.AddRow({key.first[0], key.second[0], cells.at(key).Finish()});
  }
  return out;
}

Result<Table> MVJoinReference(const Table& m, const Table& v,
                              const Semiring& sr, MVOrientation orientation,
                              const MatrixCols& m_cols,
                              const VectorCols& v_cols) {
  GPR_ASSIGN_OR_RETURN(size_t mf, m.schema().Resolve(m_cols.from));
  GPR_ASSIGN_OR_RETURN(size_t mt, m.schema().Resolve(m_cols.to));
  GPR_ASSIGN_OR_RETURN(size_t mw, m.schema().Resolve(m_cols.weight));
  GPR_ASSIGN_OR_RETURN(size_t vid, v.schema().Resolve(v_cols.id));
  GPR_ASSIGN_OR_RETURN(size_t vw, v.schema().Resolve(v_cols.weight));

  const size_t join_idx = orientation == MVOrientation::kStandard ? mt : mf;
  const size_t group_idx = orientation == MVOrientation::kStandard ? mf : mt;

  std::unordered_map<ra::Value, const ra::Tuple*, ra::ValueHash> vec;
  for (const ra::Tuple& vr : v.rows()) vec[vr[vid]] = &vr;

  std::map<ra::Tuple, ra::Accumulator> cells;
  std::vector<ra::Tuple> order;
  for (const ra::Tuple& mr : m.rows()) {
    auto it = vec.find(mr[join_idx]);
    if (it == vec.end()) continue;
    ra::Tuple key{mr[group_idx]};
    auto [cell, inserted] = cells.try_emplace(key, sr.add);
    if (inserted) order.push_back(key);
    cell->second.Add(ApplyMultiply(sr, mr[mw], (*it->second)[vw]));
  }
  Table out("", ra::Schema{{"ID", ra::ValueType::kInt64},
                           {"vw", ra::ValueType::kDouble}});
  for (const auto& key : order) {
    out.AddRow({key[0], cells.at(key).Finish()});
  }
  return out;
}

Result<Table> Transpose(const Table& m, const MatrixCols& cols) {
  return ops::Project(m,
                      {ops::As(Col(cols.to), "F"), ops::As(Col(cols.from), "T"),
                       ops::As(Col(cols.weight), "ew")},
                      nullptr, m.name().empty() ? "" : m.name() + "_t");
}

Result<Table> MatrixEntrywiseSum(const Table& a, const Table& b,
                                 const Semiring& sr, const MatrixCols& cols) {
  GPR_ASSIGN_OR_RETURN(Table all, ops::UnionAll(a, b));
  AggSpec agg{sr.add, Col(cols.weight), "ew"};
  GPR_ASSIGN_OR_RETURN(Table grouped,
                       ops::GroupBy(all, {cols.from, cols.to}, {agg}));
  return ops::Rename(grouped, "", {"F", "T", "ew"});
}

}  // namespace gpr::core
