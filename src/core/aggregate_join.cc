#include "core/aggregate_join.h"

#include <map>
#include <unordered_map>

#include "ra/tuple.h"

namespace gpr::core {

namespace ops = ra::ops;
using ra::AggSpec;
using ra::Col;
using ra::Table;

Result<Table> MMJoin(const Table& a, const Table& b, const Semiring& sr,
                     const EngineProfile& profile, const MatrixCols& a_cols,
                     const MatrixCols& b_cols) {
  // Fixed qualifiers keep self-joins unambiguous without copying inputs.
  const std::string ln = "mm_a";
  const std::string rn = "mm_b";

  ops::JoinKeys keys{{a_cols.to}, {b_cols.from}};
  ops::JoinOptions opts;
  opts.algo = profile.ChooseJoin(b);
  opts.left_qualifier = ln;
  opts.right_qualifier = rn;
  GPR_ASSIGN_OR_RETURN(Table joined, ops::JoinWithOptions(a, b, keys, opts));
  // γ_{A.F, B.T} ⊕(A.ew ⊙ B.ew)
  AggSpec agg{sr.add,
              sr.Multiply(Col(ln + "." + a_cols.weight),
                          Col(rn + "." + b_cols.weight)),
              "ew"};
  GPR_ASSIGN_OR_RETURN(
      Table grouped,
      ops::GroupBy(joined, {ln + "." + a_cols.from, rn + "." + b_cols.to},
                   {agg}));
  // Normalize output column names to the matrix convention.
  return ops::Rename(grouped, "", {"F", "T", "ew"});
}

Result<Table> MVJoin(const Table& m, const Table& v, const Semiring& sr,
                     MVOrientation orientation, const EngineProfile& profile,
                     const MatrixCols& m_cols, const VectorCols& v_cols) {
  const std::string ln = "mv_m";
  const std::string rn = "mv_v";

  const std::string join_col =
      orientation == MVOrientation::kStandard ? m_cols.to : m_cols.from;
  const std::string group_col =
      orientation == MVOrientation::kStandard ? m_cols.from : m_cols.to;

  ops::JoinKeys keys{{join_col}, {v_cols.id}};
  ops::JoinOptions opts;
  opts.algo = profile.ChooseJoin(v);
  opts.left_qualifier = ln;
  opts.right_qualifier = rn;
  GPR_ASSIGN_OR_RETURN(Table joined, ops::JoinWithOptions(m, v, keys, opts));
  AggSpec agg{sr.add,
              sr.Multiply(Col(ln + "." + m_cols.weight),
                          Col(rn + "." + v_cols.weight)),
              "vw"};
  GPR_ASSIGN_OR_RETURN(
      Table grouped, ops::GroupBy(joined, {ln + "." + group_col}, {agg}));
  return ops::Rename(grouped, "", {"ID", "vw"});
}

namespace {

/// Applies ⊙ to two scalar values through the expression evaluator, so the
/// reference implementations share exactly the semantics of the main path.
ra::Value ApplyMultiply(const Semiring& sr, const ra::Value& a,
                        const ra::Value& b) {
  ra::Schema s{{"a", a.type()}, {"b", b.type()}};
  auto compiled = Compile(sr.Multiply(Col("a"), Col("b")), s);
  GPR_CHECK(compiled.ok());
  return compiled->Eval({a, b});
}

}  // namespace

Result<Table> MMJoinReference(const Table& a, const Table& b,
                              const Semiring& sr, const MatrixCols& a_cols,
                              const MatrixCols& b_cols) {
  GPR_ASSIGN_OR_RETURN(size_t af, a.schema().Resolve(a_cols.from));
  GPR_ASSIGN_OR_RETURN(size_t at, a.schema().Resolve(a_cols.to));
  GPR_ASSIGN_OR_RETURN(size_t aw, a.schema().Resolve(a_cols.weight));
  GPR_ASSIGN_OR_RETURN(size_t bf, b.schema().Resolve(b_cols.from));
  GPR_ASSIGN_OR_RETURN(size_t bt, b.schema().Resolve(b_cols.to));
  GPR_ASSIGN_OR_RETURN(size_t bw, b.schema().Resolve(b_cols.weight));

  // Accumulate ⊕ over ⊙-products, keyed by (i, j).
  std::map<std::pair<ra::Tuple, ra::Tuple>, ra::Accumulator> cells;
  std::unordered_map<ra::Value, std::vector<size_t>, ra::ValueHash> b_by_from;
  for (size_t i = 0; i < b.NumRows(); ++i) {
    b_by_from[b.row(i)[bf]].push_back(i);
  }
  std::vector<std::pair<ra::Tuple, ra::Tuple>> order;
  for (const ra::Tuple& ar : a.rows()) {
    auto it = b_by_from.find(ar[at]);
    if (it == b_by_from.end()) continue;
    for (size_t bi : it->second) {
      const ra::Tuple& br = b.row(bi);
      auto key = std::make_pair(ra::Tuple{ar[af]}, ra::Tuple{br[bt]});
      auto [cell, inserted] = cells.try_emplace(key, sr.add);
      if (inserted) order.push_back(key);
      cell->second.Add(ApplyMultiply(sr, ar[aw], br[bw]));
    }
  }
  Table out("", ra::Schema{{"F", ra::ValueType::kInt64},
                           {"T", ra::ValueType::kInt64},
                           {"ew", ra::ValueType::kDouble}});
  for (const auto& key : order) {
    out.AddRow({key.first[0], key.second[0], cells.at(key).Finish()});
  }
  return out;
}

Result<Table> MVJoinReference(const Table& m, const Table& v,
                              const Semiring& sr, MVOrientation orientation,
                              const MatrixCols& m_cols,
                              const VectorCols& v_cols) {
  GPR_ASSIGN_OR_RETURN(size_t mf, m.schema().Resolve(m_cols.from));
  GPR_ASSIGN_OR_RETURN(size_t mt, m.schema().Resolve(m_cols.to));
  GPR_ASSIGN_OR_RETURN(size_t mw, m.schema().Resolve(m_cols.weight));
  GPR_ASSIGN_OR_RETURN(size_t vid, v.schema().Resolve(v_cols.id));
  GPR_ASSIGN_OR_RETURN(size_t vw, v.schema().Resolve(v_cols.weight));

  const size_t join_idx = orientation == MVOrientation::kStandard ? mt : mf;
  const size_t group_idx = orientation == MVOrientation::kStandard ? mf : mt;

  std::unordered_map<ra::Value, const ra::Tuple*, ra::ValueHash> vec;
  for (const ra::Tuple& vr : v.rows()) vec[vr[vid]] = &vr;

  std::map<ra::Tuple, ra::Accumulator> cells;
  std::vector<ra::Tuple> order;
  for (const ra::Tuple& mr : m.rows()) {
    auto it = vec.find(mr[join_idx]);
    if (it == vec.end()) continue;
    ra::Tuple key{mr[group_idx]};
    auto [cell, inserted] = cells.try_emplace(key, sr.add);
    if (inserted) order.push_back(key);
    cell->second.Add(ApplyMultiply(sr, mr[mw], (*it->second)[vw]));
  }
  Table out("", ra::Schema{{"ID", ra::ValueType::kInt64},
                           {"vw", ra::ValueType::kDouble}});
  for (const auto& key : order) {
    out.AddRow({key[0], cells.at(key).Finish()});
  }
  return out;
}

Result<Table> Transpose(const Table& m, const MatrixCols& cols) {
  return ops::Project(m,
                      {ops::As(Col(cols.to), "F"), ops::As(Col(cols.from), "T"),
                       ops::As(Col(cols.weight), "ew")},
                      nullptr, m.name().empty() ? "" : m.name() + "_t");
}

Result<Table> MatrixEntrywiseSum(const Table& a, const Table& b,
                                 const Semiring& sr, const MatrixCols& cols) {
  GPR_ASSIGN_OR_RETURN(Table all, ops::UnionAll(a, b));
  AggSpec agg{sr.add, Col(cols.weight), "ew"};
  GPR_ASSIGN_OR_RETURN(Table grouped,
                       ops::GroupBy(all, {cols.from, cols.to}, {agg}));
  return ops::Rename(grouped, "", {"F", "T", "ew"});
}

}  // namespace gpr::core
