// MM-join and MV-join (Section 4.1, Eqs. 3–4): the two aggregate-joins that
// implement semiring matrix-matrix and matrix-vector multiplication over
// relations.
//
// Conventions (Section 4): a matrix is a relation M(F, T, ew) with (F, T) as
// primary key; a vector is a relation V(ID, vw).
//
//   MM-join  A ⋈^{⊕(⊙)}_{A.T=B.F} B  =  γ_{A.F,B.T; ⊕(A.ew ⊙ B.ew)}(A ⋈ B)
//   MV-join  A ⋈^{⊕(⊙)}_{T=ID}    C  =  γ_{A.F;    ⊕(A.ew ⊙ C.vw)}(A ⋈ C)
//
// MV-join also supports the transposed form (join F=ID, group by T), which
// computes Eᵀ·V — the direction BFS/WCC/PageRank propagate along.
#pragma once

#include <string>

#include "core/engine_profile.h"
#include "core/semiring.h"
#include "ra/operators.h"
#include "ra/table.h"
#include "util/status.h"

namespace gpr::core {

/// Column-name bindings for a matrix relation (defaults match the paper).
struct MatrixCols {
  std::string from = "F";
  std::string to = "T";
  std::string weight = "ew";
};

/// Column-name bindings for a vector relation.
struct VectorCols {
  std::string id = "ID";
  std::string weight = "vw";
};

/// Which matrix column joins the vector's ID (Eq. 5 note: E ⋈_{T=ID} V
/// computes E·V; E ⋈_{F=ID} V computes Eᵀ·V).
enum class MVOrientation {
  kStandard,    ///< join T = ID, group by F  →  M · V
  kTransposed,  ///< join F = ID, group by T  →  Mᵀ · V
};

/// Computes A ⊙⊕ B (Eq. 3). Output schema: (F, T, ew) with A.F as F and
/// B.T as T. Join algorithm defaults to the profile's choice.
///
/// `ctx` threads governance / parallelism / the plan cache into the
/// internal join and group-by; `a_stable` / `b_stable` mark inputs the
/// caller knows to be catalog-resident (cache-eligible across fixpoint
/// iterations). Results are identical whatever the flags.
Result<ra::Table> MMJoin(
    const ra::Table& a, const ra::Table& b, const Semiring& sr,
    const EngineProfile& profile = OracleLike(),
    const MatrixCols& a_cols = {}, const MatrixCols& b_cols = {},
    ra::EvalContext* ctx = nullptr, bool a_stable = false,
    bool b_stable = false);

/// Computes A ⊙⊕ C (Eq. 4) or Aᵀ ⊙⊕ C. Output schema: (ID, vw).
///
/// When the matrix side is cache-stable (`m_stable`, a catalog-resident
/// scan) and ctx->cache is live and the profile picks a hash join, the
/// join + group-by collapses into a fused probe-and-aggregate over cached
/// matrix triples — byte-identical output, but the per-iteration joined
/// materialization and matrix re-hash disappear (the main Figs 7–10
/// fixpoint win of the plan cache).
Result<ra::Table> MVJoin(
    const ra::Table& m, const ra::Table& v, const Semiring& sr,
    MVOrientation orientation = MVOrientation::kStandard,
    const EngineProfile& profile = OracleLike(),
    const MatrixCols& m_cols = {}, const VectorCols& v_cols = {},
    ra::EvalContext* ctx = nullptr, bool m_stable = false);

/// Reference implementations computing the same products by dense/naive
/// iteration over tuples, used by property tests to validate the joins.
Result<ra::Table> MMJoinReference(const ra::Table& a, const ra::Table& b,
                                  const Semiring& sr,
                                  const MatrixCols& a_cols = {},
                                  const MatrixCols& b_cols = {});
Result<ra::Table> MVJoinReference(const ra::Table& m, const ra::Table& v,
                                  const Semiring& sr,
                                  MVOrientation orientation,
                                  const MatrixCols& m_cols = {},
                                  const VectorCols& v_cols = {});

/// Matrix transpose via rename (Section 4.1): ρ(Π_{T,F,ew} M).
Result<ra::Table> Transpose(const ra::Table& m, const MatrixCols& cols = {});

/// Matrix entrywise sum A + B under ⊕: union then group-by (F,T).
Result<ra::Table> MatrixEntrywiseSum(const ra::Table& a, const ra::Table& b,
                                     const Semiring& sr,
                                     const MatrixCols& cols = {});

}  // namespace gpr::core
