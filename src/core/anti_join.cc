#include "core/anti_join.h"

#include <unordered_set>

#include "ra/tuple.h"

namespace gpr::core {

namespace ops = ra::ops;
using ra::Table;
using ra::Tuple;

const char* AntiJoinImplName(AntiJoinImpl impl) {
  switch (impl) {
    case AntiJoinImpl::kNotExists: return "not exists";
    case AntiJoinImpl::kLeftOuterJoin: return "left outer join";
    case AntiJoinImpl::kNotIn: return "not in";
  }
  return "?";
}

std::vector<AntiJoinImpl> AllAntiJoinImpls() {
  return {AntiJoinImpl::kNotExists, AntiJoinImpl::kLeftOuterJoin,
          AntiJoinImpl::kNotIn};
}

namespace {

Result<std::vector<size_t>> ResolveAll(const ra::Schema& schema,
                                       const std::vector<std::string>& cols) {
  std::vector<size_t> out;
  for (const auto& c : cols) {
    GPR_ASSIGN_OR_RETURN(size_t i, schema.Resolve(c));
    out.push_back(i);
  }
  return out;
}

bool HasNullKey(const Tuple& key) {
  for (const auto& v : key) {
    if (v.is_null()) return true;
  }
  return false;
}

/// `not exists` plan: hash S keys, emit unmatched R rows. Rows of R with
/// NULL keys qualify (the correlated subquery finds no equal row).
Result<Table> NotExistsImpl(const Table& r, const Table& s,
                            const ops::JoinKeys& keys,
                            ra::EvalContext* ctx = nullptr,
                            bool s_stable = false) {
  return ops::AntiJoinBasic(r, s, keys, ctx, s_stable);
}

/// left outer join + `S.key IS NULL` + projection back onto R's columns.
Result<Table> LeftOuterImpl(const Table& r, const Table& s,
                            const ops::JoinKeys& keys,
                            ra::EvalContext* ctx) {
  Table lhs = r;
  Table rhs = s;
  if (lhs.name().empty()) lhs.set_name("R");
  if (rhs.name().empty() || rhs.name() == lhs.name()) {
    rhs.set_name(lhs.name() + "_aj");
  }
  GPR_ASSIGN_OR_RETURN(Table joined, ops::LeftOuterJoin(lhs, rhs, keys, ctx));
  // Filter on the first right-side key column being NULL...
  const std::string right_key = rhs.name() + "." + keys.right.front();
  GPR_ASSIGN_OR_RETURN(Table matched_null,
                       ops::Select(joined, ra::IsNull(ra::Col(right_key)), ctx));
  // ...then project the left columns back out under their original names.
  std::vector<ops::ProjectItem> items;
  for (size_t i = 0; i < r.schema().NumColumns(); ++i) {
    const std::string qualified =
        lhs.name() + "." + std::string(r.schema().column(i).name);
    items.push_back(ops::As(ra::Col(qualified), r.schema().column(i).name));
  }
  GPR_ASSIGN_OR_RETURN(Table out,
                       ops::Project(matched_null, items, nullptr, r.name()));
  // Project can change inferred types; restore R's schema.
  out.set_schema(r.schema());
  return out;
}

/// `not in` NAAJ plan: scan R filtering against the S key set, with the
/// extra NULL bookkeeping (a NULL in S empties the result; NULL keys in R
/// never qualify).
Result<Table> NotInImpl(const Table& r, const Table& s,
                        const ops::JoinKeys& keys) {
  GPR_ASSIGN_OR_RETURN(auto rkeys, ResolveAll(r.schema(), keys.left));
  GPR_ASSIGN_OR_RETURN(auto skeys, ResolveAll(s.schema(), keys.right));
  std::unordered_set<Tuple, ra::TupleHash, ra::TupleEq> sset;
  bool s_has_null = false;
  for (const Tuple& t : s.rows()) {
    Tuple key = ProjectTuple(t, skeys);
    if (HasNullKey(key)) {
      s_has_null = true;
      continue;
    }
    sset.insert(std::move(key));
  }
  Table out(r.name(), r.schema());
  if (s_has_null) return out;  // x NOT IN (..., NULL, ...) is never true
  for (const Tuple& t : r.rows()) {
    Tuple key = ProjectTuple(t, rkeys);
    if (HasNullKey(key)) continue;  // NULL NOT IN (...) is unknown
    if (!sset.count(key)) out.AddRow(t);
  }
  return out;
}

}  // namespace

Result<Table> AntiJoin(const Table& r, const Table& s,
                       const ops::JoinKeys& keys, AntiJoinImpl impl,
                       const EngineProfile& profile, ra::EvalContext* ctx,
                       bool s_stable) {
  if (keys.left.size() != keys.right.size() || keys.left.empty()) {
    return Status::InvalidArgument("anti-join needs matching non-empty keys");
  }
  switch (impl) {
    case AntiJoinImpl::kNotExists:
      return NotExistsImpl(r, s, keys, ctx, s_stable);
    case AntiJoinImpl::kLeftOuterJoin:
      if (profile.rewrites_left_outer_anti_join) {
        // The optimizers compile this spelling to the same plan as
        // `not exists`; the naive materialization below is kept for
        // ablation runs with the rewrite disabled.
        return NotExistsImpl(r, s, keys, ctx, s_stable);
      }
      return LeftOuterImpl(r, s, keys, ctx);
    case AntiJoinImpl::kNotIn:
      if (profile.rewrites_not_in_to_anti_join) {
        // Oracle executes `not in` with its internal anti-join. Note this
        // rewrite is only semantics-preserving when keys are non-nullable,
        // which holds for the graph relations here (F/T/ID are keys).
        return NotExistsImpl(r, s, keys, ctx, s_stable);
      }
      return NotInImpl(r, s, keys);
  }
  GPR_UNREACHABLE();
}

}  // namespace gpr::core
