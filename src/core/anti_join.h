// Anti-join (R ⋉̄ S) with the three physical implementations the paper
// benchmarks in Exp-1 (Tables 6–7): `not in`, `not exists`, and
// `left outer join ... is null`.
//
// Logically R ⋉̄ S = R − (R ⋉ S): the rows of R with no key match in S.
// The three SQL spellings are NOT equivalent in the presence of NULLs:
// `not in` is a null-aware anti-join (NAAJ) — if S contains a NULL key the
// whole result is empty, and rows of R with NULL keys never qualify. The
// paper highlights exactly this ("their logics are not equivalent so that
// RDBMSs generate different query plans").
#pragma once

#include <string>
#include <vector>

#include "core/engine_profile.h"
#include "ra/operators.h"
#include "ra/table.h"
#include "util/status.h"

namespace gpr::core {

enum class AntiJoinImpl {
  kNotExists,      ///< hash anti-join (same plan as left-outer in the paper)
  kLeftOuterJoin,  ///< left outer join + IS NULL filter + projection
  kNotIn,          ///< null-aware anti-join (NAAJ) semantics
};

const char* AntiJoinImplName(AntiJoinImpl impl);

/// All three implementations, in the order of the paper's Tables 6–7.
std::vector<AntiJoinImpl> AllAntiJoinImpls();

/// Computes R ⋉̄ S over the given key columns using the chosen physical
/// implementation under the given engine profile. Under an Oracle-like
/// profile `not in` is rewritten to the internal anti-join (kNotExists path),
/// reproducing the paper's observation; under the other profiles kNotIn runs
/// the NAAJ scan with its extra NULL bookkeeping.
///
/// `s_stable` marks S as a catalog-resident scan whose probe set may be
/// memoized across fixpoint iterations (no-op unless ctx->cache is live).
Result<ra::Table> AntiJoin(const ra::Table& r, const ra::Table& s,
                           const ra::ops::JoinKeys& keys, AntiJoinImpl impl,
                           const EngineProfile& profile = OracleLike(),
                           ra::EvalContext* ctx = nullptr,
                           bool s_stable = false);

}  // namespace gpr::core
