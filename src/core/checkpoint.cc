#include "core/checkpoint.h"

namespace gpr::core {

CheckpointStore& CheckpointStore::Default() {
  static CheckpointStore* store = new CheckpointStore();
  return *store;
}

std::string CheckpointStore::Insert(FixpointCheckpoint cp) {
  MutexLock lock(mu_);
  const std::string token = "ckpt-" + std::to_string(next_id_++);
  cp.token = token;
  by_token_.emplace(token, std::move(cp));
  order_.push_back(token);
  while (by_token_.size() > kMaxEntries) {
    by_token_.erase(order_.front());
    order_.pop_front();
  }
  return token;
}

std::optional<FixpointCheckpoint> CheckpointStore::Find(
    const std::string& token) const {
  MutexLock lock(mu_);
  auto it = by_token_.find(token);
  if (it == by_token_.end()) return std::nullopt;
  return it->second;  // copy — restored tables draw fresh versions
}

bool CheckpointStore::Remove(const std::string& token) {
  MutexLock lock(mu_);
  const bool removed = by_token_.erase(token) > 0;
  if (removed) {
    for (auto it = order_.begin(); it != order_.end(); ++it) {
      if (*it == token) {
        order_.erase(it);
        break;
      }
    }
  }
  return removed;
}

size_t CheckpointStore::Size() const {
  MutexLock lock(mu_);
  return by_token_.size();
}

}  // namespace gpr::core
