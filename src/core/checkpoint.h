// Iteration-granular checkpoint/resume for the fixpoint engines
// (docs/robustness.md).
//
// Every K completed iterations (K = the `checkpoint every K` SQL option /
// EngineProfile::checkpoint_every / AlgoOptions::checkpoint_every) the
// fixpoint drivers — core::CallProcedure for with+ and
// core::ExecuteMutual for mutual recursion — snapshot everything the loop
// needs to continue: the recursive relation(s), the SQL'99 working-table
// accumulator, the iteration counter and per-iteration stats, the
// ExecCounters, and the rand() generator state. The snapshot lives in a
// CheckpointStore under a fresh token; the engine publishes the token to
// the execution governor, so any later trip (deadline, budget,
// cancellation, injected fault) carries it in its ProgressDetail payload.
// Passing the token back through WithPlusQuery::resume_from /
// MutualQuery::resume_from continues the fixpoint from the snapshot
// instead of repeating completed iterations.
//
// Restored tables are *copies* of the stored ones, and ra::Table's copy
// constructor draws a fresh content version — so the plan cache can never
// serve an artifact built for a pre-interruption incarnation of the
// relation (the PR 5 invalidation substrate does the work; see
// docs/performance.md).
#pragma once

#include <deque>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/plan.h"
#include "core/with_plus.h"
#include "ra/table.h"
#include "util/mutex.h"
#include "util/rng.h"
#include "util/thread_annotations.h"

namespace gpr::core {

/// One resumable fixpoint snapshot. Exactly one of the two shapes is
/// populated: the with+ shape (rec / full_accum / iters / counters) or
/// the mutual shape (mutual_names / mutual_tables).
struct FixpointCheckpoint {
  std::string token;      ///< assigned by CheckpointStore::Insert
  std::string rec_table;  ///< with+ recursive relation; "" for mutual
  uint64_t seed = 0;      ///< the seed the interrupted run started with
  size_t iterations = 0;  ///< fully completed iterations
  Xoshiro256 rng{0};      ///< rand() state right after iteration #iterations

  // with+ (CallProcedure) ------------------------------------------------
  bool working_mode = false;  ///< SQL'99 working-table semantics
  ra::Table rec;              ///< catalog contents of the recursive relation
  ra::Table full_accum;       ///< the working-mode accumulator
  std::vector<IterationStats> iters;
  ExecCounters counters;

  // mutual recursion (ExecuteMutual) -------------------------------------
  std::vector<std::string> mutual_names;  ///< declaration order
  std::vector<ra::Table> mutual_tables;
};

/// Process-wide, thread-safe store of resumable snapshots. Bounded: the
/// oldest snapshot is evicted once kMaxEntries live ones accumulate, so
/// abandoned tokens (a caller that never resumes) cannot grow memory
/// without bound. The engines remove their own tokens on success and
/// replace them as newer snapshots supersede older ones, so a healthy
/// process stays far below the cap.
class CheckpointStore {
 public:
  static constexpr size_t kMaxEntries = 64;

  CheckpointStore() = default;
  CheckpointStore(const CheckpointStore&) = delete;
  CheckpointStore& operator=(const CheckpointStore&) = delete;

  /// The default store used when no explicit one is supplied
  /// (WithPlusQuery::checkpoint_store == nullptr).
  static CheckpointStore& Default();

  /// Stores `cp` under a fresh token ("ckpt-<n>") and returns it.
  std::string Insert(FixpointCheckpoint cp);

  /// Copy of the snapshot under `token`, or nullopt. The copy is what
  /// gives restored tables fresh content versions (ra::Table copy ctor).
  std::optional<FixpointCheckpoint> Find(const std::string& token) const;

  /// Drops the snapshot; false when the token is unknown (already
  /// removed, evicted, or never issued).
  bool Remove(const std::string& token);

  size_t Size() const;

 private:
  mutable Mutex mu_;
  std::unordered_map<std::string, FixpointCheckpoint> by_token_
      GPR_GUARDED_BY(mu_);
  /// Insertion order, for FIFO eviction at the cap.
  std::deque<std::string> order_ GPR_GUARDED_BY(mu_);
  uint64_t next_id_ GPR_GUARDED_BY(mu_) = 1;
};

}  // namespace gpr::core
