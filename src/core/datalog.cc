#include "core/datalog.h"

#include <algorithm>
#include <functional>
#include <sstream>

#include "util/logging.h"

namespace gpr::core {

const char* TemporalArgName(TemporalArg t) {
  switch (t) {
    case TemporalArg::kNone: return "";
    case TemporalArg::kT: return "T";
    case TemporalArg::kST: return "s(T)";
  }
  return "?";
}

namespace {

std::string LiteralToString(const DatalogLiteral& lit) {
  std::string out;
  if (lit.negated) out += "~";
  out += lit.predicate;
  if (lit.temporal != TemporalArg::kNone) {
    out += "[";
    out += TemporalArgName(lit.temporal);
    out += "]";
  }
  return out;
}

}  // namespace

std::string DatalogRule::ToString() const {
  std::string out = LiteralToString(head) + " :- ";
  for (size_t i = 0; i < body.size(); ++i) {
    if (i > 0) out += ", ";
    out += LiteralToString(body[i]);
  }
  return out;
}

std::string DatalogProgram::ToString() const {
  std::string out;
  for (const auto& r : rules) {
    out += r.ToString();
    out += "\n";
  }
  return out;
}

DependencyGraph::DependencyGraph(const DatalogProgram& program) {
  for (const auto& rule : program.rules) {
    AddNode(rule.head.predicate);
    for (const auto& lit : rule.body) {
      AddEdge(lit.predicate, rule.head.predicate, lit.negated);
    }
  }
}

void DependencyGraph::AddNode(const std::string& name) {
  nodes_.insert(name);
  adj_.try_emplace(name);
}

void DependencyGraph::AddEdge(const std::string& from, const std::string& to,
                              bool negated) {
  AddNode(from);
  AddNode(to);
  adj_[from].push_back({to, negated});
}

std::unordered_map<std::string, int> DependencyGraph::ComputeSccs() const {
  // Iterative Tarjan.
  std::unordered_map<std::string, int> index, lowlink, comp;
  std::vector<std::string> stack;
  std::unordered_set<std::string> on_stack;
  int next_index = 0;
  int next_comp = 0;

  struct Frame {
    std::string node;
    size_t edge = 0;
  };

  for (const auto& start : nodes_) {
    if (index.count(start)) continue;
    std::vector<Frame> frames{{start}};
    index[start] = lowlink[start] = next_index++;
    stack.push_back(start);
    on_stack.insert(start);
    while (!frames.empty()) {
      Frame& f = frames.back();
      const auto& edges = adj_.at(f.node);
      if (f.edge < edges.size()) {
        const std::string& next = edges[f.edge++].to;
        if (!index.count(next)) {
          index[next] = lowlink[next] = next_index++;
          stack.push_back(next);
          on_stack.insert(next);
          frames.push_back({next});
        } else if (on_stack.count(next)) {
          lowlink[f.node] = std::min(lowlink[f.node], index[next]);
        }
      } else {
        if (lowlink[f.node] == index[f.node]) {
          while (true) {
            std::string w = stack.back();
            stack.pop_back();
            on_stack.erase(w);
            comp[w] = next_comp;
            if (w == f.node) break;
          }
          ++next_comp;
        }
        std::string done = f.node;
        frames.pop_back();
        if (!frames.empty()) {
          lowlink[frames.back().node] =
              std::min(lowlink[frames.back().node], lowlink[done]);
        }
      }
    }
  }
  return comp;
}

std::unordered_set<std::string> DependencyGraph::RecursivePredicates() const {
  auto comp = ComputeSccs();
  // Count component sizes.
  std::unordered_map<int, int> size;
  for (const auto& [node, c] : comp) ++size[c];
  std::unordered_set<std::string> out;
  for (const auto& [node, c] : comp) {
    if (size[c] > 1) {
      out.insert(node);
      continue;
    }
    // Self-loop?
    for (const auto& e : adj_.at(node)) {
      if (e.to == node) {
        out.insert(node);
        break;
      }
    }
  }
  return out;
}

bool DependencyGraph::HasAtMostOneCycle() const {
  auto comp = ComputeSccs();
  auto recursive = RecursivePredicates();
  // Component ids of recursive nodes.
  std::unordered_set<int> rec_comps;
  for (const auto& n : recursive) rec_comps.insert(comp.at(n));
  if (rec_comps.size() > 1) return false;
  // Within the single recursive SCC, each node must have at most one
  // out-edge staying in the SCC; otherwise two distinct cycles share a node.
  for (const auto& n : recursive) {
    int in_scc = 0;
    for (const auto& e : adj_.at(n)) {
      if (recursive.count(e.to) && comp.at(e.to) == comp.at(n)) ++in_scc;
    }
    if (in_scc > 1) return false;
  }
  return true;
}

bool DependencyGraph::IsStratifiable(std::string* why) const {
  // A negative edge violates stratifiability iff it lies on a cycle: either
  // it is a self-loop, or its endpoints share a (necessarily cyclic,
  // since multi-node) strongly connected component.
  const auto comp = ComputeSccs();
  for (const auto& [from, edges] : adj_) {
    for (const auto& e : edges) {
      if (!e.negated) continue;
      const bool on_cycle = from == e.to || comp.at(from) == comp.at(e.to);
      if (on_cycle) {
        if (why) {
          *why = "negative edge " + from + " -> " + e.to + " lies on a cycle";
        }
        return false;
      }
    }
  }
  return true;
}

Result<std::unordered_map<std::string, int>> DependencyGraph::Stratify()
    const {
  std::string why;
  if (!IsStratifiable(&why)) return Status::NotStratifiable(why);
  // Longest-path style relaxation: stratum(h) >= stratum(g) for positive
  // g->h, stratum(h) > stratum(g) for negative. Iterate to fixpoint; the
  // absence of negative cycles bounds strata by the node count.
  std::unordered_map<std::string, int> stratum;
  for (const auto& n : nodes_) stratum[n] = 0;
  const int n = static_cast<int>(nodes_.size());
  bool changed = true;
  int guard = 0;
  while (changed) {
    changed = false;
    if (++guard > n + 2) {
      return Status::Internal("stratification failed to converge");
    }
    for (const auto& [from, edges] : adj_) {
      for (const auto& e : edges) {
        const int need = stratum[from] + (e.negated ? 1 : 0);
        if (stratum[e.to] < need) {
          stratum[e.to] = need;
          changed = true;
        }
      }
    }
  }
  return stratum;
}

bool IsStratified(const DatalogProgram& program, std::string* why) {
  return DependencyGraph(program).IsStratifiable(why);
}

Status CheckXYProgram(const DatalogProgram& program) {
  DependencyGraph graph(program);
  const auto recursive = graph.RecursivePredicates();
  for (const auto& rule : program.rules) {
    const bool head_recursive = recursive.count(rule.head.predicate) > 0;
    bool body_recursive = false;
    for (const auto& lit : rule.body) {
      if (recursive.count(lit.predicate)) body_recursive = true;
    }
    if (!head_recursive && !body_recursive) continue;  // exit/base rule

    // X-rule condition: every recursive predicate (head and body) carries
    // the same temporal variable. A rule whose head and recursive body
    // subgoals all carry s(T) is an X-rule under the substitution U = s(T).
    // Y-rule condition: head carries s(T), at least one body recursive
    // subgoal carries T, the rest carry T or s(T).
    if (head_recursive && rule.head.temporal == TemporalArg::kNone) {
      return Status::NotStratifiable(
          "rule '" + rule.ToString() +
          "': recursive head lacks a temporal argument (X-rule check)");
    }
    bool saw_t = false;
    bool saw_st = false;
    for (const auto& lit : rule.body) {
      if (!recursive.count(lit.predicate)) continue;
      if (lit.temporal == TemporalArg::kNone) {
        return Status::NotStratifiable(
            "rule '" + rule.ToString() + "': recursive subgoal " +
            lit.predicate + " lacks a temporal argument");
      }
      if (lit.temporal == TemporalArg::kT) saw_t = true;
      if (lit.temporal == TemporalArg::kST) saw_st = true;
    }
    if (rule.head.temporal == TemporalArg::kT) {
      // Plain X-rule: body must stay at T.
      if (saw_st) {
        return Status::NotStratifiable(
            "rule '" + rule.ToString() +
            "': X-rule mixes temporal arguments");
      }
    } else {
      // Head at s(T): either a same-stage X-rule (no T subgoal needed when
      // every recursive subgoal is s(T)) or a genuine Y-rule.
      const bool same_stage_x = body_recursive && !saw_t;
      if (same_stage_x && saw_st) {
        // All recursive subgoals at s(T): X-rule under U = s(T). Fine.
      } else if (body_recursive && !saw_t) {
        return Status::NotStratifiable(
            "rule '" + rule.ToString() +
            "': Y-rule needs a body subgoal with temporal argument T");
      }
    }
  }
  return Status::OK();
}

DatalogProgram BiState(const DatalogProgram& program) {
  DependencyGraph graph(program);
  const auto recursive = graph.RecursivePredicates();
  DatalogProgram out;
  for (const auto& rule : program.rules) {
    DatalogRule r = rule;
    const TemporalArg head_t = rule.head.temporal;
    auto transform = [&](DatalogLiteral& lit, bool is_head) {
      if (!recursive.count(lit.predicate)) {
        lit.temporal = TemporalArg::kNone;
        return;
      }
      // Same temporal argument as the head -> new_; otherwise -> old_.
      const bool same = lit.temporal == head_t;
      lit.predicate =
          (is_head || same ? "new_" : "old_") + lit.predicate;
      lit.temporal = TemporalArg::kNone;
    };
    transform(r.head, /*is_head=*/true);
    for (auto& lit : r.body) transform(lit, /*is_head=*/false);
    out.rules.push_back(std::move(r));
  }
  return out;
}

Status CheckXYStratified(const DatalogProgram& program) {
  GPR_RETURN_NOT_OK(CheckXYProgram(program));
  std::string why;
  if (!IsStratified(BiState(program), &why)) {
    return Status::NotStratifiable("bi-state program is not stratified: " +
                                   why);
  }
  return Status::OK();
}

}  // namespace gpr::core
