// DATALOG rule IR, predicate dependency graphs, stratification, the bi-state
// transform, and the XY-stratification test (Section 5, Definitions 9.1–9.3,
// Theorem 5.1).
//
// with+ plans are lowered to this IR (stratify.h) and the executor refuses to
// run plans whose program is not XY-stratified — the paper's guarantee that
// the recursion reaches a fixpoint with a unique answer.
#pragma once

#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "util/status.h"

namespace gpr::core {

/// Temporal (stage) argument carried by a recursive predicate occurrence in
/// an XY-program: none, T, or s(T).
enum class TemporalArg { kNone, kT, kST };

const char* TemporalArgName(TemporalArg t);

/// One subgoal (or head) occurrence of a predicate.
struct DatalogLiteral {
  std::string predicate;
  bool negated = false;  ///< ¬P — also set for aggregate-consuming subgoals,
                         ///< which behave like negation for stratification
  TemporalArg temporal = TemporalArg::kNone;
};

/// A rule  head :- body₁, …, bodyₙ.
struct DatalogRule {
  DatalogLiteral head;
  std::vector<DatalogLiteral> body;

  std::string ToString() const;
};

/// A DATALOG program: a set of rules plus the set of base (EDB) predicates.
struct DatalogProgram {
  std::vector<DatalogRule> rules;

  std::string ToString() const;
};

/// The predicate dependency graph: edge g → h when g occurs in the body of a
/// rule with head h; the edge is negative when any such occurrence is
/// negated. Equivalent to the SQL dependency graph of Definition 9.1.
class DependencyGraph {
 public:
  /// Builds the graph of `program`.
  explicit DependencyGraph(const DatalogProgram& program);

  /// Adds an edge directly (used by the SQL-side Def. 9.1 construction).
  void AddEdge(const std::string& from, const std::string& to, bool negated);
  void AddNode(const std::string& name);

  const std::unordered_set<std::string>& nodes() const { return nodes_; }

  /// Predicates that participate in a cycle (nontrivial SCC or self-loop) —
  /// the recursive predicates.
  std::unordered_set<std::string> RecursivePredicates() const;

  /// Number of simple cycles is expensive; the with+ restriction only needs
  /// "at most one cycle", which we approximate as: at most one nontrivial
  /// SCC, and within it every node has ≤1 in-cycle out-edge.
  bool HasAtMostOneCycle() const;

  /// True if no negative edge lies on a cycle (Definition 9.2's
  /// stratifiability condition).
  bool IsStratifiable(std::string* why = nullptr) const;

  /// Stratum index per predicate (0-based); fails if not stratifiable.
  Result<std::unordered_map<std::string, int>> Stratify() const;

 private:
  struct Edge {
    std::string to;
    bool negated;
  };
  /// Strongly connected components (Tarjan); returns component id per node.
  std::unordered_map<std::string, int> ComputeSccs() const;

  std::unordered_set<std::string> nodes_;
  std::unordered_map<std::string, std::vector<Edge>> adj_;
};

/// True if `program` is stratified (no negation through recursion).
bool IsStratified(const DatalogProgram& program, std::string* why = nullptr);

/// Checks the syntactic XY-program conditions of Definition 9.3 over the
/// given set of recursive predicates: every recursive occurrence carries a
/// temporal argument and every recursive rule is an X-rule or a Y-rule.
Status CheckXYProgram(const DatalogProgram& program);

/// The bi-state transform of Section 5: in each rule, recursive predicates
/// sharing the head's temporal argument become `new_P`, other occurrences
/// become `old_P`, and temporal arguments are dropped.
DatalogProgram BiState(const DatalogProgram& program);

/// A program is XY-stratified iff it is an XY-program whose bi-state
/// version is stratified (the compile-time test of Theorem 5.1).
Status CheckXYStratified(const DatalogProgram& program);

}  // namespace gpr::core
