#include "core/engine_profile.h"

namespace gpr::core {

const char* EngineKindName(EngineKind k) {
  switch (k) {
    case EngineKind::kOracleLike: return "oracle-like";
    case EngineKind::kDb2Like: return "db2-like";
    case EngineKind::kPostgresLike: return "postgres-like";
  }
  return "?";
}

EngineProfile OracleLike() {
  EngineProfile p;
  p.kind = EngineKind::kOracleLike;
  p.name = "oracle-like";
  p.no_stats_join = ra::ops::JoinAlgorithm::kHash;
  p.adopts_temp_indexes = false;
  p.build_temp_indexes = false;
  p.insert_logging = false;  // direct-path /*+APPEND*/ insert
  p.supports_merge = true;
  p.supports_update_from = false;
  p.rewrites_not_in_to_anti_join = true;
  // Table 1, Oracle column.
  p.with_features.multiple_recursive_queries = false;
  p.with_features.union_across_init_and_recursive = false;
  p.with_features.distinct_in_recursion = false;
  p.with_features.partition_by_in_recursion = true;
  p.with_features.general_functions_in_recursion = true;
  p.with_features.cycle_detection = true;  // search/cycle clauses
  return p;
}

EngineProfile Db2Like() {
  EngineProfile p;
  p.kind = EngineKind::kDb2Like;
  p.name = "db2-like";
  p.no_stats_join = ra::ops::JoinAlgorithm::kHash;
  p.adopts_temp_indexes = false;
  p.build_temp_indexes = false;
  p.insert_logging = true;
  p.supports_merge = true;
  p.supports_update_from = false;
  p.rewrites_not_in_to_anti_join = false;
  // Table 1, DB2 column.
  p.with_features.multiple_recursive_queries = true;
  p.with_features.union_across_init_and_recursive = false;
  p.with_features.distinct_in_recursion = false;
  p.with_features.partition_by_in_recursion = true;
  p.with_features.general_functions_in_recursion = false;
  p.with_features.cycle_detection = false;
  return p;
}

EngineProfile PostgresLike(bool build_temp_indexes) {
  EngineProfile p;
  p.kind = EngineKind::kPostgresLike;
  p.name = "postgres-like";
  // Without statistics on temp tables PostgreSQL's optimizer falls back to
  // merge-join plans (paper Section 7 and Exp-A).
  p.no_stats_join = ra::ops::JoinAlgorithm::kSortMerge;
  p.adopts_temp_indexes = true;
  p.build_temp_indexes = build_temp_indexes;
  p.insert_logging = true;  // non-durable still writes WAL for temp spills
  p.supports_merge = false;  // merge arrives only in PostgreSQL 9.5+
  p.supports_update_from = true;
  p.rewrites_not_in_to_anti_join = false;
  // Table 1, PostgreSQL column.
  p.with_features.multiple_recursive_queries = false;
  p.with_features.union_across_init_and_recursive = true;
  p.with_features.distinct_in_recursion = true;
  p.with_features.partition_by_in_recursion = true;
  p.with_features.general_functions_in_recursion = true;
  p.with_features.cycle_detection = false;
  return p;
}

std::vector<EngineProfile> AllProfiles() {
  return {OracleLike(), Db2Like(), PostgresLike()};
}

void RedoLog::LogInsert(const ra::Tuple& row) {
  // Copying the tuple is the charge; the buffer is recycled so that long
  // benchmarks do not exhaust memory.
  bytes_logged_ += row.size() * sizeof(ra::Value);
  buffer_.push_back(row);
  if (buffer_.size() >= 1u << 16) buffer_.clear();
}

}  // namespace gpr::core
