// Engine profiles: the three RDBMS personalities of the paper's evaluation.
//
// The paper runs every experiment on Oracle 11gR2, IBM DB2 10.5 and
// PostgreSQL 9.4 and attributes their performance differences to concrete
// plan-level behaviours (Section 7, Exp-A/B/C and Table 1). We reproduce
// those behaviours — not the engines — as profiles over one executor:
//
//  * join algorithm selection on temp tables (hash vs merge when statistics
//    are missing — the PostgreSQL sub-optimality the paper reports);
//  * whether an index built on a temp table is adopted by the plan;
//  * redo/undo-style logging overhead on temp-table inserts (Oracle's
//    direct-path /*+APPEND*/ insert skips it);
//  * which union-by-update and `not in` implementations are available
//    (update-from is PostgreSQL-only, merge is Oracle/DB2-only, Oracle
//    rewrites `not in` to its internal anti-join);
//  * the recursive-with feature matrix of Table 1.
#pragma once

#include <cstdint>
#include <string>

#include "ra/operators.h"
#include "ra/table.h"

namespace gpr::core {

enum class EngineKind { kOracleLike, kDb2Like, kPostgresLike };

const char* EngineKindName(EngineKind k);

/// Table 1 — the recursive `with` feature matrix, used by tests and by the
/// SQL'99-compatibility checks of the with/with+ comparison benchmarks.
struct WithFeatureMatrix {
  bool linear_recursion = true;
  bool nonlinear_recursion = false;
  bool mutual_recursion = false;
  bool multiple_initial_queries = true;
  bool multiple_recursive_queries = false;
  bool union_across_init_and_recursive = false;
  bool negation_in_recursion = false;
  bool aggregates_in_recursion = false;
  bool group_by_in_recursion = false;
  bool partition_by_in_recursion = false;
  bool distinct_in_recursion = false;
  bool general_functions_in_recursion = false;
  bool subquery_with_recursive_ref = false;
  bool cycle_detection = false;
};

/// One engine personality.
struct EngineProfile {
  EngineKind kind = EngineKind::kOracleLike;
  std::string name;

  /// Plan behaviour --------------------------------------------------

  /// True if the optimizer keeps statistics for temp tables. None of the
  /// three engines does; kept as a knob for ablation benchmarks.
  bool temp_table_stats = false;

  /// Join algorithm chosen when the inner input lacks statistics.
  /// Oracle/DB2: hash join. PostgreSQL: merge join (paper Section 7/Exp-A).
  ra::ops::JoinAlgorithm no_stats_join = ra::ops::JoinAlgorithm::kHash;

  /// Whether the plan adopts an index present on a temp table
  /// (PostgreSQL's merge-join plans do; Oracle/DB2 hash plans do not).
  bool adopts_temp_indexes = false;

  /// Whether the executor builds sort indexes on temp-table join columns
  /// (the Fig 10 with/without-indexing toggle; meaningful only when
  /// adopts_temp_indexes is true).
  bool build_temp_indexes = false;

  /// Per-row insert logging overhead. Direct-path inserts (Oracle's
  /// /*+APPEND*/) skip row-level logging; the other engines pay a copy of
  /// each inserted row into a log buffer. Simulated as real work, not sleep.
  bool insert_logging = false;

  /// Feature support -------------------------------------------------

  bool supports_merge = true;        ///< SQL MERGE statement
  bool supports_update_from = false; ///< PostgreSQL UPDATE ... FROM
  /// Oracle rewrites `not in` to its internal anti-join; PostgreSQL/DB2 scan
  /// with a NULL-aware filter (slower — Tables 6/7).
  bool rewrites_not_in_to_anti_join = false;

  /// All three optimizers compile `left outer join ... IS NULL` to the same
  /// anti-join plan as `not exists` (the paper: "not exists and left outer
  /// join will generate the same query plan"). Off = naive materialization,
  /// kept for the ablation benchmarks.
  bool rewrites_left_outer_anti_join = true;

  /// Run the static plan analyzer (gpr::analysis) before executing a with+
  /// query. On for every personality; off only for A/B-testing the gate
  /// itself — a bypassed query can still fail the same checks at runtime,
  /// just later and without plan paths.
  bool static_analysis_gate = true;

  /// Degree of parallelism for the ra operators (docs/performance.md):
  /// 1 (the default) keeps the untouched serial path, so the paper's
  /// single-threaded comparisons stay reproducible bit-for-bit; >1 runs
  /// the hot row loops as morsels on exec::ThreadPool with results
  /// guaranteed identical to DOP=1. Overridable per query via the SQL
  /// `parallel N` hint / WithPlusQuery::degree_of_parallelism.
  int degree_of_parallelism = 1;

  /// Cross-iteration plan-state cache (ra/plan_cache.h, docs/performance.md):
  /// memoizes hash-join build tables, merge-join sort runs, anti-join probe
  /// sets, and MV-join matrix triples across fixpoint iterations, keyed on
  /// the input table's (name, version). Results are guaranteed identical
  /// on or off; overridable per query via the SQL `cache on|off` option /
  /// WithPlusQuery::plan_cache.
  bool plan_cache = true;

  /// Plan facts (analysis/dataflow.h, docs/architecture.md): run the
  /// static dataflow analyses over the compiled with+ plans before the
  /// fixpoint loop and let the executor act on the proofs — skip dedup
  /// over proven duplicate-free inputs, skip proven-false selection
  /// subtrees, prune proven-dead columns, and drive loop-invariant
  /// hoisting from invariance facts. Results are guaranteed identical on
  /// or off; overridable per query via the SQL `facts on|off` option /
  /// WithPlusQuery::plan_facts.
  bool plan_facts = true;

  /// CSR-backed semiring SpMV/SpMM kernels (ra/csr.h,
  /// docs/performance.md): execute MV-join / MM-join on a compressed-
  /// sparse-row layout of the edge side (cached per table content
  /// version) instead of the generic hash-join + group-by whenever the
  /// plan would hash-join and the shape binds. Results are guaranteed
  /// row-identical on or off; overridable per query via the SQL
  /// `kernels on|off` option / WithPlusQuery::csr_kernels.
  bool csr_kernels = true;

  /// Vectorized batch execution (ra/vectorized.h, docs/performance.md):
  /// evaluate filters, projections, hash joins, group-bys and ⊎ merges
  /// over typed ~2048-row column batches (ra/column.h) instead of one
  /// boxed Value row at a time, whenever the operand shapes bind.
  /// Results are guaranteed row-identical (order included) on or off;
  /// overridable per query via the SQL `vectorize on|off` option /
  /// WithPlusQuery::vectorized.
  bool vectorized = true;

  /// Parallel-admission threshold (exec::AdmittedDop,
  /// docs/performance.md): inputs below this many rows run serial at any
  /// DOP — morsel dispatch on tiny inputs costs more than it saves (the
  /// BENCH_fixpoint er-4k regression). The GPR_MIN_PARALLEL_ROWS
  /// environment variable overrides it process-wide
  /// (exec::ResolveMinParallelRows); 0 admits everything, < 0 falls back
  /// to the 8192-row default. Results are identical either way.
  int parallel_min_rows = 8192;

  /// Rows between mid-operator governor polls (docs/robustness.md): the
  /// cadence at which long row loops check cancellation and deadlines.
  /// Lower = snappier interrupts, higher = less poll overhead. The
  /// GPR_POLL_INTERVAL environment variable overrides it process-wide
  /// (exec::ResolvePollInterval); <= 0 falls back to the 8192 default.
  int governor_poll_interval = 8192;

  /// Fixpoint checkpoint cadence (core/checkpoint.h, docs/robustness.md):
  /// snapshot the recursive state every N completed iterations so a
  /// governor trip or injected fault can be resumed from the last
  /// snapshot instead of restarting. 0 (the default) = off; overridable
  /// per query via the SQL `checkpoint every N` option /
  /// WithPlusQuery::checkpoint_every.
  int checkpoint_every = 0;

  WithFeatureMatrix with_features;

  /// The algorithm used for a join whose inner input is `inner`.
  ra::ops::JoinAlgorithm ChooseJoin(const ra::Table& inner) const {
    if (!inner.stats().present && !temp_table_stats) return no_stats_join;
    return ra::ops::JoinAlgorithm::kHash;
  }
};

/// Oracle-11gR2-like profile (AMM analogue: no insert logging, hash joins,
/// internal anti-join rewrite of `not in`).
EngineProfile OracleLike();

/// DB2-10.5-like profile (hash joins, insert logging, no update-from, most
/// restrictive with-clause feature set).
EngineProfile Db2Like();

/// PostgreSQL-9.4-like profile (merge joins on stat-less temp tables, index
/// adoption, update-from and distinct support).
EngineProfile PostgresLike(bool build_temp_indexes = true);

/// All three profiles in the order the paper's tables list them.
std::vector<EngineProfile> AllProfiles();

/// Simulated redo-log buffer used to charge insert logging as real work.
/// Appends a copy of each row; periodically discards to bound memory.
class RedoLog {
 public:
  void LogInsert(const ra::Tuple& row);
  uint64_t bytes_logged() const { return bytes_logged_; }

 private:
  std::vector<ra::Tuple> buffer_;
  uint64_t bytes_logged_ = 0;
};

}  // namespace gpr::core
