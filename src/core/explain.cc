#include "core/explain.h"

#include <sstream>

#include "analysis/analyzer.h"
#include "analysis/dataflow.h"
#include "core/psm.h"

namespace gpr::core {
namespace {

namespace ops = ra::ops;

/// The join algorithm the profile would pick for this node's inner input.
ops::JoinAlgorithm PredictedJoinAlgo(const Plan& node,
                                     const ra::Catalog& catalog,
                                     const EngineProfile& profile) {
  if (node.join_algo) return *node.join_algo;
  // Stats are only known for direct scans of catalog tables; any computed
  // input behaves like a stat-less temp table.
  const PlanPtr& inner = node.children[1];
  if (inner->kind == PlanKind::kScan) {
    auto t = catalog.Get(inner->table_name);
    if (t.ok()) return profile.ChooseJoin(**t);
  }
  return profile.no_stats_join;
}

struct ExplainPrinter {
  const ra::Catalog& catalog;
  const EngineProfile& profile;
  const std::unordered_map<std::string, ra::Schema>* overlays;
  /// Roots of loop-invariant subtrees the fixpoint driver would
  /// materialize once before the loop (nullptr = not a with+ explain).
  const std::unordered_set<const Plan*>* hoisted = nullptr;
  /// Statically-proven facts to print under each operator (nullptr = facts
  /// off or not a with+ explain).
  const analysis::PlanFacts* facts = nullptr;
  /// True when the resolved knobs enable the CSR SpMV/SpMM kernels: MV/MM
  /// joins are marked as kernel candidates (the final shape check happens
  /// at execution time against the bound tables).
  bool kernels_on = false;
  /// True when the resolved knobs enable vectorized batch execution:
  /// batchable operators are marked as vector candidates (the final shape
  /// check happens at execution time against the bound columns).
  bool vectors_on = false;
  std::ostringstream out;

  void Print(const PlanPtr& plan, int depth) {
    out << std::string(static_cast<size_t>(depth) * 2, ' ');
    if (hoisted != nullptr && hoisted->count(plan.get()) > 0) {
      out << "[hoisted pre-loop] ";
    }
    out << PlanKindName(plan->kind);
    switch (plan->kind) {
      case PlanKind::kScan: {
        out << " " << plan->table_name;
        if (overlays != nullptr && overlays->count(plan->table_name)) {
          out << " [recursive/def]";
        } else if (auto t = catalog.Get(plan->table_name); t.ok()) {
          out << " [" << (*t)->NumRows() << " rows"
              << ((*t)->stats().present ? ", stats" : ", no stats");
          if (catalog.IsTemporary(plan->table_name)) out << ", temp";
          out << "]";
        } else {
          out << " [unbound]";
        }
        break;
      }
      case PlanKind::kSelect:
        out << "{" << plan->predicate->ToString() << "}";
        if (vectors_on) out << " [vector]";
        break;
      case PlanKind::kJoin: {
        out << "(" << ops::JoinAlgorithmName(
                          PredictedJoinAlgo(*plan, catalog, profile))
            << "){";
        for (size_t i = 0; i < plan->keys.left.size(); ++i) {
          if (i > 0) out << ", ";
          out << plan->keys.left[i] << " = " << plan->keys.right[i];
        }
        out << "}";
        if (profile.adopts_temp_indexes && profile.build_temp_indexes &&
            PredictedJoinAlgo(*plan, catalog, profile) ==
                ops::JoinAlgorithm::kSortMerge) {
          out << " [index adopted]";
        }
        if (vectors_on && PredictedJoinAlgo(*plan, catalog, profile) ==
                              ops::JoinAlgorithm::kHash) {
          out << " [vector]";
        }
        break;
      }
      case PlanKind::kAntiJoin:
        out << "(" << AntiJoinImplName(plan->anti_impl) << ")";
        if (plan->anti_impl == AntiJoinImpl::kNotIn &&
            profile.rewrites_not_in_to_anti_join) {
          out << " [rewritten to internal anti-join]";
        }
        if (plan->anti_impl == AntiJoinImpl::kLeftOuterJoin &&
            profile.rewrites_left_outer_anti_join) {
          out << " [rewritten to anti-join plan]";
        }
        break;
      case PlanKind::kGroupBy: {
        out << "{";
        for (size_t i = 0; i < plan->group_cols.size(); ++i) {
          if (i > 0) out << ", ";
          out << plan->group_cols[i];
        }
        out << "; ";
        for (size_t i = 0; i < plan->aggs.size(); ++i) {
          if (i > 0) out << ", ";
          out << ra::AggKindName(plan->aggs[i].kind);
        }
        out << "}";
        if (vectors_on && !plan->group_cols.empty()) out << " [vector]";
        break;
      }
      case PlanKind::kProject:
        if (vectors_on) out << " [vector]";
        break;
      case PlanKind::kMMJoin:
      case PlanKind::kMVJoin:
        out << "{" << plan->semiring.name << "}";
        if (kernels_on) out << " [csr kernel]";
        break;
      case PlanKind::kRename:
        out << "->" << plan->new_name;
        break;
      default:
        break;
    }
    if (auto schema = InferSchema(plan, catalog, overlays); schema.ok()) {
      out << " " << schema->ToString();
    }
    out << "\n";
    if (facts != nullptr) {
      if (const analysis::OperatorFacts* f = facts->Get(plan.get());
          f != nullptr) {
        out << std::string(static_cast<size_t>(depth) * 2, ' ')
            << "~ facts: " << f->ToString() << "\n";
      }
    }
    for (const auto& child : plan->children) Print(child, depth + 1);
  }
};

}  // namespace

std::string Explain(
    const PlanPtr& plan, const ra::Catalog& catalog,
    const EngineProfile& profile,
    const std::unordered_map<std::string, ra::Schema>* overlays) {
  ExplainPrinter printer{catalog, profile, overlays, nullptr,
                         nullptr, false,   false,    {}};
  printer.Print(plan, 0);
  return printer.out.str();
}

std::string ExplainWithPlus(const WithPlusQuery& query,
                            const ra::Catalog& catalog,
                            const EngineProfile& profile) {
  std::ostringstream out;
  out << "recursive relation: " << query.rec_name
      << query.rec_schema.ToString() << "\n";
  out << "mode: " << UnionModeName(query.mode);
  if (!query.update_keys.empty()) {
    out << " keys(";
    for (size_t i = 0; i < query.update_keys.size(); ++i) {
      if (i > 0) out << ", ";
      out << query.update_keys[i];
    }
    out << ")";
  }
  if (query.maxrecursion > 0) out << ", maxrecursion " << query.maxrecursion;
  out << ", profile " << profile.name << "\n";

  const bool cache_on =
      query.plan_cache < 0 ? profile.plan_cache : query.plan_cache > 0;
  const bool facts_on =
      query.plan_facts < 0 ? profile.plan_facts : query.plan_facts > 0;
  const bool kernels_on =
      query.csr_kernels < 0 ? profile.csr_kernels : query.csr_kernels > 0;
  const bool vectors_on =
      query.vectorized < 0 ? profile.vectorized : query.vectorized > 0;
  out << "plan cache: " << (cache_on ? "on" : "off") << "\n";
  out << "plan facts: " << (facts_on ? "on" : "off") << "\n";
  out << "csr kernels: " << (kernels_on ? "on" : "off") << "\n";
  out << "vectorized: " << (vectors_on ? "on" : "off") << "\n";
  const int ckpt_every = query.checkpoint_every < 0
                             ? profile.checkpoint_every
                             : query.checkpoint_every;
  if (ckpt_every > 0) {
    out << "checkpoint: every " << ckpt_every << " iterations";
    if (!query.resume_from.empty()) {
      out << " (resume from '" << query.resume_from << "')";
    }
    out << "\n";
  } else {
    out << "checkpoint: off\n";
  }

  // Mirror the fixpoint driver's pre-loop pipeline (core/psm.cc) exactly,
  // so the printed plans, [invariant] annotations and [hoisted pre-loop]
  // markers are the ones CallProcedure actually runs and materializes.
  // With facts on that means: facts-driven rewrites first (the rewritten
  // plans are shown), then hoisting decisions from the invariance facts
  // (ComputeHoistSets — including nested invariant subtrees uncovered by
  // dependency-ordered definition settlement). With facts off, the legacy
  // cache-driven walk over the original plans.
  analysis::DataflowQuery dfq = analysis::ToDataflowQuery(query);
  analysis::PlanFacts facts;
  const analysis::PlanFacts* facts_ptr = nullptr;
  std::unordered_set<const Plan*> hoisted;
  std::unordered_set<std::string> invariant_defs;
  if (facts_on) {
    analysis::FactsOptions fopts;
    fopts.scan_base_values = true;  // mirror the executor path
    const analysis::PlanFacts facts0 =
        analysis::ComputeFacts(dfq, catalog, fopts);
    analysis::ApplyFactsRewrites(&dfq, facts0, /*allow_pushdown=*/cache_on);
    facts = analysis::ComputeFacts(dfq, catalog, fopts);
    facts_ptr = &facts;
    if (cache_on) {
      const analysis::HoistSets hs = analysis::ComputeHoistSets(dfq, facts);
      invariant_defs.insert(hs.invariant_defs.begin(),
                            hs.invariant_defs.end());
      for (const auto& entry : hs.hoist_roots) {
        for (const PlanPtr& sub : entry.second) hoisted.insert(sub.get());
      }
    }
  } else {
    std::unordered_set<std::string> varying;
    varying.insert(query.rec_name);
    for (const auto& block : dfq.blocks) {
      for (const auto& def : block.defs) varying.insert(def.first);
    }
    auto references_varying = [&varying](const PlanPtr& p) {
      std::vector<TableRef> refs;
      CollectTableRefs(p, &refs);
      for (const auto& r : refs) {
        if (varying.count(r.name) > 0) return true;
      }
      return false;
    };
    for (const auto& block : dfq.blocks) {
      for (const auto& def : block.defs) {
        const bool invariant = cache_on && !PlanUsesRand(def.second) &&
                               !references_varying(def.second);
        if (invariant) {
          varying.erase(def.first);
          invariant_defs.insert(def.first);
        } else if (cache_on) {
          for (const PlanPtr& sub :
               LoopInvariantSubplans(def.second, varying)) {
            hoisted.insert(sub.get());
          }
        }
      }
      if (cache_on) {
        for (const PlanPtr& sub : LoopInvariantSubplans(block.delta, varying)) {
          hoisted.insert(sub.get());
        }
      }
    }
  }

  std::unordered_map<std::string, ra::Schema> overlays;
  overlays.emplace(query.rec_name, query.rec_schema);
  for (size_t i = 0; i < dfq.init.size(); ++i) {
    ExplainPrinter printer{catalog,   profile,    nullptr,    nullptr,
                           facts_ptr, kernels_on, vectors_on, {}};
    printer.Print(dfq.init[i], 0);
    out << "\ninitial subquery " << i + 1 << ":\n" << printer.out.str();
  }
  for (size_t i = 0; i < dfq.blocks.size(); ++i) {
    const auto& block = dfq.blocks[i];
    for (const auto& def : block.defs) {
      const bool invariant = invariant_defs.count(def.first) > 0;
      ExplainPrinter printer{catalog,   profile,    &overlays,  &hoisted,
                             facts_ptr, kernels_on, vectors_on, {}};
      printer.Print(def.second, 0);
      out << "\ncomputed by " << def.first
          << (invariant ? " [invariant — materialized once pre-loop]" : "")
          << ":\n"
          << printer.out.str();
      if (auto s = InferSchema(def.second, catalog, &overlays); s.ok()) {
        overlays.emplace(def.first, *s);
      }
    }
    ExplainPrinter printer{catalog,   profile,    &overlays,  &hoisted,
                           facts_ptr, kernels_on, vectors_on, {}};
    printer.Print(block.delta, 0);
    out << "\nrecursive subquery " << i + 1 << ":\n" << printer.out.str();
  }
  if (auto proc = CompileToPsm(query); proc.ok()) {
    out << "\nSQL/PSM procedure:\n" << proc->ToSqlSketch();
  }

  analysis::DiagnosticBag diags = analysis::AnalyzeWithPlus(query, catalog);
  if (diags.empty()) {
    out << "\nstatic analysis: clean\n";
  } else {
    out << "\nstatic analysis (" << diags.NumErrors() << " error(s), "
        << diags.NumWarnings() << " warning(s)):\n"
        << diags.Render();
  }
  return out.str();
}

}  // namespace gpr::core
