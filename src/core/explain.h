// EXPLAIN: renders the physical shape a plan takes under an engine
// profile — join algorithms, index adoption, inferred output schemas —
// without executing it.
#pragma once

#include <string>
#include <unordered_map>

#include "core/plan.h"
#include "core/with_plus.h"

namespace gpr::core {

/// Multi-line indented tree, e.g.
///
///   Project [(ID:Int64, W:Double)]
///     GroupBy{E_pr.T; sum} [(E_pr.T:Int64, s:Double)]
///       Join(hash){F = ID}
///         Scan E_pr [6676 rows, stats]
///         Scan P [temp, no stats]
std::string Explain(
    const PlanPtr& plan, const ra::Catalog& catalog,
    const EngineProfile& profile,
    const std::unordered_map<std::string, ra::Schema>* overlays = nullptr);

/// Explains a full with+ query: the PSM sketch plus the physical plan of
/// every initial and recursive subquery and computed-by definition.
std::string ExplainWithPlus(const WithPlusQuery& query,
                            const ra::Catalog& catalog,
                            const EngineProfile& profile);

}  // namespace gpr::core
