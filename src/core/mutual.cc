#include "core/mutual.h"

#include <algorithm>
#include <optional>
#include <unordered_map>
#include <unordered_set>

#include "core/checkpoint.h"
#include "core/psm.h"
#include "ra/csr.h"
#include "ra/vectorized.h"
#include "util/timer.h"

namespace gpr::core {
namespace {

using ra::Table;

Status ValidateMutual(const MutualQuery& query) {
  if (query.relations.size() < 2) {
    return Status::InvalidArgument(
        "mutual recursion needs at least two relations (use with+ "
        "otherwise)");
  }
  std::unordered_set<std::string> names;
  for (const auto& rel : query.relations) {
    if (rel.name.empty() || rel.schema.NumColumns() == 0) {
      return Status::InvalidArgument("every relation needs a name and "
                                     "schema");
    }
    if (!names.insert(rel.name).second) {
      return Status::InvalidArgument("relation '" + rel.name +
                                     "' declared twice");
    }
    if (rel.init.empty()) {
      return Status::InvalidArgument("relation '" + rel.name +
                                     "' has no initialization");
    }
  }
  // Every relation must depend on some relation of the system, and the
  // initializations must not.
  for (const auto& rel : query.relations) {
    std::vector<TableRef> refs;
    CollectTableRefs(rel.recursive.plan, &refs);
    for (const auto& def : rel.recursive.computed_by) {
      CollectTableRefs(def.plan, &refs);
    }
    bool recursive = false;
    for (const auto& r : refs) recursive |= names.count(r.name) > 0;
    if (!recursive) {
      return Status::InvalidArgument(
          "relation '" + rel.name +
          "' does not reference any recursive relation");
    }
    for (const auto& init : rel.init) {
      std::vector<TableRef> irefs;
      CollectTableRefs(init, &irefs);
      for (const auto& r : irefs) {
        if (names.count(r.name)) {
          return Status::InvalidArgument(
              "initialization of '" + rel.name +
              "' references recursive relation '" + r.name + "'");
        }
      }
    }
  }
  return Status::OK();
}

}  // namespace

Result<DatalogProgram> LowerMutualToDatalog(const MutualQuery& query) {
  // Position of each relation in the refresh order.
  std::unordered_map<std::string, size_t> position;
  for (size_t i = 0; i < query.relations.size(); ++i) {
    position.emplace(query.relations[i].name, i);
  }
  DatalogProgram program;
  for (size_t i = 0; i < query.relations.size(); ++i) {
    const MutualRelation& rel = query.relations[i];
    std::unordered_set<std::string> defs;
    for (const auto& def : rel.recursive.computed_by) defs.insert(def.name);

    auto body_of = [&](const PlanPtr& plan) {
      std::vector<TableRef> refs;
      CollectTableRefs(plan, &refs);
      std::vector<DatalogLiteral> body;
      for (const auto& ref : refs) {
        DatalogLiteral lit;
        lit.predicate = ref.name;
        lit.negated = ref.negated;
        auto it = position.find(ref.name);
        if (it != position.end()) {
          // Earlier relations were refreshed this iteration: stage s(T);
          // self and later relations: previous iteration, stage T.
          lit.temporal = it->second < i ? TemporalArg::kST : TemporalArg::kT;
        } else if (defs.count(ref.name)) {
          lit.temporal = TemporalArg::kST;
        }
        body.push_back(std::move(lit));
      }
      return body;
    };

    std::unordered_set<std::string> seen;
    for (const auto& def : rel.recursive.computed_by) {
      if (position.count(def.name) || !seen.insert(def.name).second) {
        return Status::NotStratifiable(
            "computed-by definition '" + def.name +
            "' shadows a relation or repeats");
      }
      std::vector<TableRef> refs;
      CollectTableRefs(def.plan, &refs);
      for (const auto& ref : refs) {
        if (defs.count(ref.name) && !seen.count(ref.name)) {
          return Status::NotStratifiable("computed-by definition '" +
                                         def.name + "' references '" +
                                         ref.name + "' before definition");
        }
      }
      DatalogRule rule;
      rule.head = {def.name, false, TemporalArg::kST};
      rule.body = body_of(def.plan);
      program.rules.push_back(std::move(rule));
    }

    const std::string delta = "delta_" + rel.name;
    DatalogRule delta_rule;
    delta_rule.head = {delta, false, TemporalArg::kST};
    delta_rule.body = body_of(rel.recursive.plan);
    program.rules.push_back(std::move(delta_rule));

    switch (rel.mode) {
      case UnionMode::kUnionAll:
      case UnionMode::kUnionDistinct: {
        DatalogRule copy;
        copy.head = {rel.name, false, TemporalArg::kST};
        copy.body = {{rel.name, false, TemporalArg::kT}};
        program.rules.push_back(std::move(copy));
        break;
      }
      case UnionMode::kUnionByUpdate: {
        DatalogRule keep;
        keep.head = {rel.name, false, TemporalArg::kST};
        keep.body = {{rel.name, false, TemporalArg::kT},
                     {delta, true, TemporalArg::kST}};
        program.rules.push_back(std::move(keep));
        break;
      }
    }
    DatalogRule add;
    add.head = {rel.name, false, TemporalArg::kST};
    add.body = {{delta, false, TemporalArg::kST}};
    program.rules.push_back(std::move(add));
  }
  return program;
}

Result<MutualResult> ExecuteMutual(const MutualQuery& query,
                                   ra::Catalog& catalog,
                                   const EngineProfile& base_profile,
                                   uint64_t seed) {
  GPR_RETURN_NOT_OK(ValidateMutual(query));
  // Query-level DOP overrides the profile's (same resolution as
  // CallProcedure); the resolved value rides on the profile copy.
  EngineProfile profile = base_profile;
  if (query.degree_of_parallelism > 0) {
    profile.degree_of_parallelism = query.degree_of_parallelism;
  }
  if (query.check_stratification) {
    GPR_ASSIGN_OR_RETURN(DatalogProgram program,
                         LowerMutualToDatalog(query));
    GPR_RETURN_NOT_OK(CheckXYStratified(program));
  }

  // Build the execution governor (nullopt = fully ungoverned fast path)
  // and the RAII scope that drops every temp table on all exit paths.
  GPR_ASSIGN_OR_RETURN(
      std::optional<exec::ExecContext> gov,
      exec::MakeGovernor(query.governor, query.cancel, query.fault_spec));
  Xoshiro256 rng(seed);
  ra::EvalContext ctx{&rng};
  ctx.exec = gov ? &*gov : nullptr;
  ctx.dop = std::max(1, profile.degree_of_parallelism);
  ctx.poll_stride = exec::ResolvePollInterval(profile.governor_poll_interval);
  ctx.min_parallel_rows =
      exec::ResolveMinParallelRows(profile.parallel_min_rows);
  // Mutual fixpoints (HITS) inherit the profile's kernel and vectorize
  // toggles directly: MutualQuery has no per-query override.
  ra::KernelCounters kernels;
  if (profile.csr_kernels) ctx.kernels = &kernels;
  ra::VectorCounters vectors;
  if (profile.vectorized) ctx.vectors = &vectors;
  ra::TempTableScope scope(catalog);

  // ---- Checkpoint/resume (core/checkpoint.h) — same protocol as
  // CallProcedure: active_token is replaced by newer snapshots, removed on
  // success, and left in the store on failure for the retry to resume.
  const int ckpt_every = query.checkpoint_every < 0
                             ? profile.checkpoint_every
                             : query.checkpoint_every;
  CheckpointStore& store = query.checkpoint_store != nullptr
                               ? *query.checkpoint_store
                               : CheckpointStore::Default();
  std::string active_token;
  std::optional<FixpointCheckpoint> cp_resume;
  if (!query.resume_from.empty()) {
    cp_resume = store.Find(query.resume_from);
    if (!cp_resume.has_value()) {
      return Status::NotFound("resume token '" + query.resume_from +
                              "' not found (completed, evicted, or never "
                              "issued)");
    }
    bool names_match =
        cp_resume->mutual_names.size() == query.relations.size();
    for (size_t i = 0; names_match && i < query.relations.size(); ++i) {
      names_match = cp_resume->mutual_names[i] == query.relations[i].name;
    }
    // A token from a different fixpoint (e.g. a with+ stage of the same
    // pipeline): run fresh and let the issuing stage resume it.
    if (!names_match) cp_resume.reset();
  }
  const bool resumed = cp_resume.has_value();

  // Create every relation; initialize it from its init plans on a fresh
  // run, from the snapshot on a resumed one (the Find copy gives the
  // restored tables fresh content versions — see checkpoint.h).
  for (size_t i = 0; i < query.relations.size(); ++i) {
    const MutualRelation& rel = query.relations[i];
    if (catalog.Has(rel.name)) {
      return Status::AlreadyExists("relation '" + rel.name +
                                   "' collides with a table");
    }
    GPR_RETURN_NOT_OK(scope.Create(rel.name, rel.schema));
    if (resumed) {
      GPR_RETURN_NOT_OK(catalog.ReplaceTable(
          rel.name, std::move(cp_resume->mutual_tables[i])));
      continue;
    }
    for (const auto& init : rel.init) {
      GPR_ASSIGN_OR_RETURN(Table t, ExecutePlan(init, catalog, profile, &ctx));
      GPR_ASSIGN_OR_RETURN(Table * rec, catalog.Get(rel.name));
      if (!rec->schema().UnionCompatible(t.schema())) {
        return Status::TypeMismatch("initialization of '" + rel.name +
                                    "' produces " + t.schema().ToString());
      }
      for (auto& row : t.mutable_rows()) rec->AddRow(std::move(row));
    }
  }

  // Per-relation seen-sets for union (distinct) combining.
  std::vector<std::unordered_set<ra::Tuple, ra::TupleHash, ra::TupleEq>>
      seen(query.relations.size());
  for (size_t i = 0; i < query.relations.size(); ++i) {
    if (query.relations[i].mode == UnionMode::kUnionDistinct) {
      GPR_ASSIGN_OR_RETURN(Table * rec,
                           catalog.Get(query.relations[i].name));
      seen[i].insert(rec->rows().begin(), rec->rows().end());
    }
  }

  MutualResult result;
  if (resumed) {
    result.iterations = cp_resume->iterations;
    rng = cp_resume->rng;
    active_token = cp_resume->token;
    if (gov) gov->set_resume_token(active_token);
  }
  while (true) {
    if (gov) {
      GPR_RETURN_NOT_OK(gov->CheckIteration(result.iterations));
    }
    bool changed_any = false;
    for (size_t i = 0; i < query.relations.size(); ++i) {
      const MutualRelation& rel = query.relations[i];
      std::unordered_set<std::string> known_empty;
      for (const auto& def : rel.recursive.computed_by) {
        Table t;
        if (PlanMustBeEmpty(def.plan, known_empty) &&
            catalog.Has(def.name)) {
          GPR_ASSIGN_OR_RETURN(Table * prev, catalog.Get(def.name));
          t = Table(def.name, prev->schema());
        } else {
          GPR_ASSIGN_OR_RETURN(t,
                               ExecutePlan(def.plan, catalog, profile, &ctx));
          t.set_name(def.name);
        }
        if (t.Empty()) known_empty.insert(def.name);
        if (!catalog.Has(def.name)) {
          GPR_RETURN_NOT_OK(scope.Create(def.name, t.schema()));
        }
        GPR_RETURN_NOT_OK(catalog.ReplaceTable(def.name, std::move(t)));
      }
      if (PlanMustBeEmpty(rel.recursive.plan, known_empty)) continue;
      GPR_ASSIGN_OR_RETURN(
          Table delta, ExecutePlan(rel.recursive.plan, catalog, profile,
                                   &ctx));
      if (delta.Empty()) continue;
      GPR_ASSIGN_OR_RETURN(Table * r, catalog.Get(rel.name));
      if (!r->schema().UnionCompatible(delta.schema())) {
        return Status::TypeMismatch("recursive subquery of '" + rel.name +
                                    "' produces " +
                                    delta.schema().ToString());
      }
      switch (rel.mode) {
        case UnionMode::kUnionAll:
          for (auto& row : delta.mutable_rows()) {
            r->AddRow(std::move(row));
            changed_any = true;
          }
          break;
        case UnionMode::kUnionDistinct:
          for (auto& row : delta.mutable_rows()) {
            if (!seen[i].insert(row).second) continue;
            r->AddRow(std::move(row));
            changed_any = true;
          }
          break;
        case UnionMode::kUnionByUpdate: {
          UbuStats ustats;
          GPR_ASSIGN_OR_RETURN(Table updated,
                               UnionByUpdate(*r, delta, rel.update_keys,
                                             rel.ubu_impl, profile, &ustats,
                                             &ctx));
          if (ustats.changed) changed_any = true;
          GPR_RETURN_NOT_OK(
              catalog.ReplaceTable(rel.name, std::move(updated)));
          break;
        }
      }
    }
    ++result.iterations;
    // Snapshot every ckpt_every completed iterations, except when this
    // iteration ends the run anyway (see CallProcedure).
    if (ckpt_every > 0 && changed_any &&
        (query.maxrecursion == 0 ||
         static_cast<int>(result.iterations) < query.maxrecursion) &&
        result.iterations % static_cast<size_t>(ckpt_every) == 0) {
      FixpointCheckpoint cp;
      cp.seed = seed;
      cp.iterations = result.iterations;
      cp.rng = rng;
      for (const auto& rel : query.relations) {
        GPR_ASSIGN_OR_RETURN(Table * rec, catalog.Get(rel.name));
        cp.mutual_names.push_back(rel.name);
        cp.mutual_tables.push_back(*rec);  // copy; the store owns it
      }
      const std::string token = store.Insert(std::move(cp));
      if (!active_token.empty()) store.Remove(active_token);
      active_token = token;
      if (gov) gov->set_resume_token(active_token);
    }
    if (!changed_any) {
      result.converged = true;
      break;
    }
    if (query.maxrecursion > 0 &&
        static_cast<int>(result.iterations) >= query.maxrecursion) {
      break;
    }
  }

  for (const auto& rel : query.relations) {
    GPR_ASSIGN_OR_RETURN(Table * rec, catalog.Get(rel.name));
    result.tables.push_back(std::move(*rec));
    result.tables.back().DropIndexes();
  }
  // Success: nothing will resume this run (failure paths return above and
  // keep the active snapshot for the retry).
  if (!active_token.empty()) store.Remove(active_token);
  // TempTableScope drops every relation and computed-by temporary here.
  return result;
}

}  // namespace gpr::core
