// Native mutual recursion — the extension the paper leaves on the table.
//
// SQL'99 permits (limited) mutual recursion but none of the three engines
// implements it, so Section 6 folds mutually recursive relations (HITS's
// Hub/Authority) into one recursive relation with a computed-by chain.
// This module supports the direct form: several recursive relations that
// reference each other, evaluated Gauss-Seidel style — within an
// iteration the relations are refreshed in declaration order, each seeing
// the current iteration's values of the relations before it and the
// previous iteration's values of itself and the relations after it.
//
// The XY-stratification argument extends naturally: a reference to an
// earlier relation carries stage s(T), every other recursive reference
// carries stage T, and the combination rules are per-relation (Eq. 22 for
// union-by-update). The lowered program is checked before execution.
#pragma once

#include <string>
#include <vector>

#include "core/datalog.h"
#include "core/with_plus.h"
#include "util/status.h"

namespace gpr::core {

/// One recursive relation of a mutually recursive system.
struct MutualRelation {
  std::string name;
  ra::Schema schema;
  std::vector<PlanPtr> init;       ///< initialization (union all)
  Subquery recursive;              ///< one recursive subquery
  UnionMode mode = UnionMode::kUnionByUpdate;
  std::vector<std::string> update_keys;
  UnionByUpdateImpl ubu_impl = UnionByUpdateImpl::kFullOuterJoin;
};

struct MutualQuery {
  std::vector<MutualRelation> relations;  ///< refresh order = vector order
  int maxrecursion = 0;
  bool check_stratification = true;
  /// Degree of parallelism for the ra operators; 0 = inherit the
  /// profile's setting, 1 = serial. Results are DOP-invariant
  /// (docs/performance.md).
  int degree_of_parallelism = 0;

  /// Execution-governance knobs — same semantics as WithPlusQuery's:
  /// all-zero limits + null token + empty spec = ungoverned fast path.
  exec::ExecLimits governor;
  exec::CancellationToken cancel;
  /// "" consults GPR_FAULTS; "none" disables fault injection.
  std::string fault_spec;

  /// Checkpoint/resume — same semantics as WithPlusQuery's
  /// (core/checkpoint.h): -1 inherits the profile's checkpoint_every,
  /// 0 = off, N = snapshot every N iterations; resume_from restores a
  /// prior snapshot; nullptr store = CheckpointStore::Default().
  int checkpoint_every = -1;
  std::string resume_from;
  CheckpointStore* checkpoint_store = nullptr;
};

struct MutualResult {
  /// Final contents, one table per relation, in declaration order.
  std::vector<ra::Table> tables;
  size_t iterations = 0;
  bool converged = false;
};

/// Lowers the mutual system to DATALOG (for the XY gate and for tests).
Result<DatalogProgram> LowerMutualToDatalog(const MutualQuery& query);

/// Validates, checks XY-stratification, and runs the alternating fixpoint.
Result<MutualResult> ExecuteMutual(const MutualQuery& query,
                                   ra::Catalog& catalog,
                                   const EngineProfile& profile,
                                   uint64_t seed = 42);

}  // namespace gpr::core
