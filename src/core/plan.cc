#include "core/plan.h"

#include <sstream>

#include "analysis/plan_facts.h"
#include "exec/exec_context.h"

namespace gpr::core {

namespace ops = ra::ops;
using ra::Table;

const char* PlanKindName(PlanKind k) {
  switch (k) {
    case PlanKind::kScan: return "Scan";
    case PlanKind::kSelect: return "Select";
    case PlanKind::kProject: return "Project";
    case PlanKind::kJoin: return "Join";
    case PlanKind::kLeftOuterJoin: return "LeftOuterJoin";
    case PlanKind::kSemiJoin: return "SemiJoin";
    case PlanKind::kAntiJoin: return "AntiJoin";
    case PlanKind::kUnionAll: return "UnionAll";
    case PlanKind::kUnionDistinct: return "UnionDistinct";
    case PlanKind::kDifference: return "Difference";
    case PlanKind::kIntersect: return "Intersect";
    case PlanKind::kDistinct: return "Distinct";
    case PlanKind::kGroupBy: return "GroupBy";
    case PlanKind::kRename: return "Rename";
    case PlanKind::kCrossProduct: return "CrossProduct";
    case PlanKind::kMMJoin: return "MMJoin";
    case PlanKind::kMVJoin: return "MVJoin";
    case PlanKind::kSort: return "Sort";
  }
  return "?";
}

const char* PlanKindSite(PlanKind k) {
  switch (k) {
    case PlanKind::kScan: return "scan";
    case PlanKind::kSelect: return "select";
    case PlanKind::kProject: return "project";
    case PlanKind::kJoin: return "join";
    case PlanKind::kLeftOuterJoin: return "left_outer_join";
    case PlanKind::kSemiJoin: return "semi_join";
    case PlanKind::kAntiJoin: return "anti_join";
    case PlanKind::kUnionAll: return "union_all";
    case PlanKind::kUnionDistinct: return "union_distinct";
    case PlanKind::kDifference: return "difference";
    case PlanKind::kIntersect: return "intersect";
    case PlanKind::kDistinct: return "distinct";
    case PlanKind::kGroupBy: return "group_by";
    case PlanKind::kRename: return "rename";
    case PlanKind::kCrossProduct: return "cross_product";
    case PlanKind::kMMJoin: return "mm_join";
    case PlanKind::kMVJoin: return "mv_join";
    case PlanKind::kSort: return "sort";
  }
  return "?";
}

std::string Plan::ToString() const {
  std::ostringstream os;
  os << PlanKindName(kind);
  if (kind == PlanKind::kScan) os << " " << table_name;
  if (kind == PlanKind::kRename) os << "->" << new_name;
  if (!children.empty()) {
    os << "(";
    for (size_t i = 0; i < children.size(); ++i) {
      if (i > 0) os << ", ";
      os << children[i]->ToString();
    }
    os << ")";
  }
  return os.str();
}

namespace {

std::shared_ptr<Plan> Node(PlanKind kind, std::vector<PlanPtr> children) {
  auto p = std::make_shared<Plan>();
  p->kind = kind;
  p->children = std::move(children);
  return p;
}

}  // namespace

PlanPtr Scan(std::string table) {
  auto p = Node(PlanKind::kScan, {});
  p->table_name = std::move(table);
  return p;
}

PlanPtr SelectOp(PlanPtr in, ra::ExprPtr pred) {
  auto p = Node(PlanKind::kSelect, {std::move(in)});
  p->predicate = std::move(pred);
  return p;
}

PlanPtr ProjectOp(PlanPtr in, std::vector<ra::ops::ProjectItem> items,
                  std::string out_name) {
  auto p = Node(PlanKind::kProject, {std::move(in)});
  p->items = std::move(items);
  p->new_name = std::move(out_name);
  return p;
}

PlanPtr JoinOp(PlanPtr l, PlanPtr r, ra::ops::JoinKeys keys,
               ra::ExprPtr residual) {
  auto p = Node(PlanKind::kJoin, {std::move(l), std::move(r)});
  p->keys = std::move(keys);
  p->predicate = std::move(residual);
  return p;
}

PlanPtr LeftOuterJoinOp(PlanPtr l, PlanPtr r, ra::ops::JoinKeys keys) {
  auto p = Node(PlanKind::kLeftOuterJoin, {std::move(l), std::move(r)});
  p->keys = std::move(keys);
  return p;
}

PlanPtr SemiJoinOp(PlanPtr l, PlanPtr r, ra::ops::JoinKeys keys) {
  auto p = Node(PlanKind::kSemiJoin, {std::move(l), std::move(r)});
  p->keys = std::move(keys);
  return p;
}

PlanPtr AntiJoinOp(PlanPtr l, PlanPtr r, ra::ops::JoinKeys keys,
                   AntiJoinImpl impl) {
  auto p = Node(PlanKind::kAntiJoin, {std::move(l), std::move(r)});
  p->keys = std::move(keys);
  p->anti_impl = impl;
  return p;
}

PlanPtr UnionAllOp(PlanPtr l, PlanPtr r) {
  return Node(PlanKind::kUnionAll, {std::move(l), std::move(r)});
}
PlanPtr UnionDistinctOp(PlanPtr l, PlanPtr r) {
  return Node(PlanKind::kUnionDistinct, {std::move(l), std::move(r)});
}
PlanPtr DifferenceOp(PlanPtr l, PlanPtr r) {
  return Node(PlanKind::kDifference, {std::move(l), std::move(r)});
}
PlanPtr IntersectOp(PlanPtr l, PlanPtr r) {
  return Node(PlanKind::kIntersect, {std::move(l), std::move(r)});
}
PlanPtr DistinctOp(PlanPtr in) {
  return Node(PlanKind::kDistinct, {std::move(in)});
}

PlanPtr GroupByOp(PlanPtr in, std::vector<std::string> group_cols,
                  std::vector<ra::AggSpec> aggs) {
  auto p = Node(PlanKind::kGroupBy, {std::move(in)});
  p->group_cols = std::move(group_cols);
  p->aggs = std::move(aggs);
  return p;
}

PlanPtr RenameOp(PlanPtr in, std::string new_name,
                 std::vector<std::string> col_names) {
  auto p = Node(PlanKind::kRename, {std::move(in)});
  p->new_name = std::move(new_name);
  p->col_names = std::move(col_names);
  return p;
}

PlanPtr CrossProductOp(PlanPtr l, PlanPtr r) {
  return Node(PlanKind::kCrossProduct, {std::move(l), std::move(r)});
}

PlanPtr MMJoinOp(PlanPtr a, PlanPtr b, Semiring sr, MatrixCols a_cols,
                 MatrixCols b_cols) {
  auto p = Node(PlanKind::kMMJoin, {std::move(a), std::move(b)});
  p->semiring = std::move(sr);
  p->a_cols = std::move(a_cols);
  p->b_cols = std::move(b_cols);
  return p;
}

PlanPtr MVJoinOp(PlanPtr m, PlanPtr v, Semiring sr, MVOrientation orientation,
                 MatrixCols m_cols, VectorCols v_cols) {
  auto p = Node(PlanKind::kMVJoin, {std::move(m), std::move(v)});
  p->semiring = std::move(sr);
  p->orientation = orientation;
  p->a_cols = std::move(m_cols);
  p->v_cols = std::move(v_cols);
  return p;
}

PlanPtr SortOp(PlanPtr in, std::vector<std::string> cols) {
  auto p = Node(PlanKind::kSort, {std::move(in)});
  p->sort_cols = std::move(cols);
  return p;
}

namespace {

using TablePtr = std::shared_ptr<const Table>;

TablePtr Borrow(const Table* t) {
  return TablePtr(TablePtr(), t);  // aliasing ctor: non-owning view
}

TablePtr Own(Table t) { return std::make_shared<Table>(std::move(t)); }

/// True when `node` is a scan whose cached artifacts stay valid across
/// fixpoint iterations: a catalog-resident table the fixpoint driver did
/// not flag as iteration-varying. Only such inputs get cache flags — the
/// (name, version) pair of a stable scan identifies the artifact; caching
/// a varying table would insert an entry each iteration only to invalidate
/// it on the next.
bool StableScan(const PlanPtr& node, ra::EvalContext* ctx) {
  if (node->kind != PlanKind::kScan) return false;
  return ctx == nullptr || ctx->cache_unstable == nullptr ||
         ctx->cache_unstable->count(node->table_name) == 0;
}

struct Executor {
  ra::Catalog& catalog;
  const EngineProfile& profile;
  ra::EvalContext* ctx;
  ExecCounters* counters;
  /// Execution governor (from ctx->exec); null = ungoverned.
  exec::ExecContext* gov;

  /// Builds (once) and reuses a sort index on a scanned table when the
  /// profile adopts temp-table indexes — the Fig 10 mechanism.
  void MaybeIndex(const PlanPtr& node, const Table* table,
                  const std::vector<std::string>& key_cols) {
    if (!profile.adopts_temp_indexes || !profile.build_temp_indexes) return;
    if (node->kind != PlanKind::kScan) return;
    auto r = catalog.Get(node->table_name);
    if (!r.ok()) return;
    Table* t = *r;
    GPR_CHECK(t == table);
    if (t->sort_index() != nullptr) return;  // still valid: reuse
    if (t->BuildSortIndex(key_cols).ok() && counters) {
      ++counters->index_builds;
    }
  }

  /// Operator-boundary governance: a checkpoint (cancellation, deadline,
  /// fault injection) before the operator runs, and row/byte accounting of
  /// its materialized output after. Scans are borrowed, not materialized,
  /// so they checkpoint but never charge the budget.
  Result<TablePtr> Exec(const PlanPtr& plan) {
    if (gov == nullptr) return ExecNode(plan);
    const char* site = PlanKindSite(plan->kind);
    GPR_RETURN_NOT_OK(gov->Checkpoint(site));
    GPR_ASSIGN_OR_RETURN(TablePtr out, ExecNode(plan));
    if (plan->kind != PlanKind::kScan) {
      // Byte estimate: fixed-width value slots; strings count as one slot.
      const uint64_t bytes = out->NumRows() *
                             out->schema().NumColumns() * sizeof(ra::Value);
      GPR_RETURN_NOT_OK(gov->ChargeRows(site, out->NumRows(), bytes));
    }
    return out;
  }

  Result<TablePtr> ExecNode(const PlanPtr& plan) {
    switch (plan->kind) {
      case PlanKind::kScan: {
        GPR_ASSIGN_OR_RETURN(const Table* t, catalog.Get(plan->table_name));
        return Borrow(t);
      }
      case PlanKind::kSelect: {
        // A facts-proven always-false predicate emits no rows: skip the
        // whole subtree and return an empty table with the proven schema.
        if (ctx != nullptr && ctx->facts != nullptr) {
          const analysis::OperatorFacts* f = ctx->facts->Get(plan.get());
          if (f != nullptr && f->schema_known && !f->uses_rand &&
              f->predicate == analysis::PredicateVerdict::kAlwaysFalse) {
            if (counters) ++counters->facts_dead_selects;
            return Own(Table(f->out_name, f->schema));
          }
        }
        GPR_ASSIGN_OR_RETURN(TablePtr in, Exec(plan->children[0]));
        GPR_ASSIGN_OR_RETURN(Table out,
                             ops::Select(*in, plan->predicate, ctx));
        return Own(std::move(out));
      }
      case PlanKind::kProject: {
        GPR_ASSIGN_OR_RETURN(TablePtr in, Exec(plan->children[0]));
        GPR_ASSIGN_OR_RETURN(
            Table out, ops::Project(*in, plan->items, ctx, plan->new_name));
        return Own(std::move(out));
      }
      case PlanKind::kJoin: {
        GPR_ASSIGN_OR_RETURN(TablePtr l, Exec(plan->children[0]));
        GPR_ASSIGN_OR_RETURN(TablePtr r, Exec(plan->children[1]));
        const ops::JoinAlgorithm algo =
            plan->join_algo.value_or(profile.ChooseJoin(*r));
        if (algo == ops::JoinAlgorithm::kSortMerge) {
          MaybeIndex(plan->children[0], l.get(), plan->keys.left);
          MaybeIndex(plan->children[1], r.get(), plan->keys.right);
        }
        ops::JoinOptions opts;
        opts.algo = algo;
        opts.residual = plan->predicate;
        opts.ctx = ctx;
        opts.cache_build = StableScan(plan->children[1], ctx);
        opts.cache_left_sort = StableScan(plan->children[0], ctx);
        opts.cache_right_sort = opts.cache_build;
        GPR_ASSIGN_OR_RETURN(Table out,
                             ops::JoinWithOptions(*l, *r, plan->keys, opts));
        if (counters) {
          ++counters->joins;
          counters->rows_joined += out.NumRows();
        }
        return Own(std::move(out));
      }
      case PlanKind::kLeftOuterJoin: {
        GPR_ASSIGN_OR_RETURN(TablePtr l, Exec(plan->children[0]));
        GPR_ASSIGN_OR_RETURN(TablePtr r, Exec(plan->children[1]));
        GPR_ASSIGN_OR_RETURN(Table out,
                             ops::LeftOuterJoin(*l, *r, plan->keys, ctx));
        return Own(std::move(out));
      }
      case PlanKind::kSemiJoin: {
        GPR_ASSIGN_OR_RETURN(TablePtr l, Exec(plan->children[0]));
        GPR_ASSIGN_OR_RETURN(TablePtr r, Exec(plan->children[1]));
        GPR_ASSIGN_OR_RETURN(Table out, ops::SemiJoin(*l, *r, plan->keys, ctx));
        return Own(std::move(out));
      }
      case PlanKind::kAntiJoin: {
        GPR_ASSIGN_OR_RETURN(TablePtr l, Exec(plan->children[0]));
        GPR_ASSIGN_OR_RETURN(TablePtr r, Exec(plan->children[1]));
        GPR_ASSIGN_OR_RETURN(
            Table out,
            AntiJoin(*l, *r, plan->keys, plan->anti_impl, profile, ctx,
                     StableScan(plan->children[1], ctx)));
        return Own(std::move(out));
      }
      case PlanKind::kUnionAll:
      case PlanKind::kUnionDistinct:
      case PlanKind::kDifference:
      case PlanKind::kIntersect: {
        GPR_ASSIGN_OR_RETURN(TablePtr l, Exec(plan->children[0]));
        GPR_ASSIGN_OR_RETURN(TablePtr r, Exec(plan->children[1]));
        Result<Table> out = [&]() -> Result<Table> {
          switch (plan->kind) {
            case PlanKind::kUnionAll: return ops::UnionAll(*l, *r, ctx);
            case PlanKind::kUnionDistinct:
              return ops::UnionDistinct(*l, *r, ctx);
            case PlanKind::kDifference: return ops::Difference(*l, *r, ctx);
            default: return ops::Intersect(*l, *r, ctx);
          }
        }();
        if (!out.ok()) return out.status();
        return Own(std::move(out).value());
      }
      case PlanKind::kDistinct: {
        GPR_ASSIGN_OR_RETURN(TablePtr in, Exec(plan->children[0]));
        // A facts-proven duplicate-free input makes dedup the identity
        // (Distinct keeps first occurrences, so order is also unchanged).
        if (ctx != nullptr && ctx->facts != nullptr) {
          const analysis::OperatorFacts* f =
              ctx->facts->Get(plan->children[0].get());
          if (f != nullptr && f->dup_free) {
            if (counters) ++counters->facts_dedup_skips;
            return in;
          }
        }
        GPR_ASSIGN_OR_RETURN(Table out, ops::Distinct(*in, ctx));
        return Own(std::move(out));
      }
      case PlanKind::kGroupBy: {
        GPR_ASSIGN_OR_RETURN(TablePtr in, Exec(plan->children[0]));
        GPR_ASSIGN_OR_RETURN(
            Table out, ops::GroupBy(*in, plan->group_cols, plan->aggs, ctx));
        return Own(std::move(out));
      }
      case PlanKind::kRename: {
        GPR_ASSIGN_OR_RETURN(TablePtr in, Exec(plan->children[0]));
        GPR_ASSIGN_OR_RETURN(
            Table out, ops::Rename(*in, plan->new_name, plan->col_names));
        return Own(std::move(out));
      }
      case PlanKind::kCrossProduct: {
        GPR_ASSIGN_OR_RETURN(TablePtr l, Exec(plan->children[0]));
        GPR_ASSIGN_OR_RETURN(TablePtr r, Exec(plan->children[1]));
        GPR_ASSIGN_OR_RETURN(Table out, ops::CrossProduct(*l, *r, ctx));
        return Own(std::move(out));
      }
      case PlanKind::kMMJoin: {
        GPR_ASSIGN_OR_RETURN(TablePtr a, Exec(plan->children[0]));
        GPR_ASSIGN_OR_RETURN(TablePtr b, Exec(plan->children[1]));
        GPR_ASSIGN_OR_RETURN(
            Table out,
            MMJoin(*a, *b, plan->semiring, profile, plan->a_cols,
                   plan->b_cols, ctx, StableScan(plan->children[0], ctx),
                   StableScan(plan->children[1], ctx)));
        if (counters) ++counters->joins;
        return Own(std::move(out));
      }
      case PlanKind::kMVJoin: {
        GPR_ASSIGN_OR_RETURN(TablePtr m, Exec(plan->children[0]));
        GPR_ASSIGN_OR_RETURN(TablePtr v, Exec(plan->children[1]));
        GPR_ASSIGN_OR_RETURN(
            Table out,
            MVJoin(*m, *v, plan->semiring, plan->orientation, profile,
                   plan->a_cols, plan->v_cols, ctx,
                   StableScan(plan->children[0], ctx)));
        if (counters) ++counters->joins;
        return Own(std::move(out));
      }
      case PlanKind::kSort: {
        GPR_ASSIGN_OR_RETURN(TablePtr in, Exec(plan->children[0]));
        GPR_ASSIGN_OR_RETURN(Table out, ops::Sort(*in, plan->sort_cols));
        return Own(std::move(out));
      }
    }
    GPR_UNREACHABLE();
  }
};

}  // namespace

Result<Table> ExecutePlan(const PlanPtr& plan, ra::Catalog& catalog,
                          const EngineProfile& profile, ra::EvalContext* ctx,
                          ExecCounters* counters) {
  // Callers without an evaluation context (one-shot plans outside a
  // fixpoint) still get the profile's degree of parallelism.
  ra::EvalContext local;
  if (ctx == nullptr && profile.degree_of_parallelism > 1) {
    local.dop = profile.degree_of_parallelism;
    local.min_parallel_rows =
        exec::ResolveMinParallelRows(profile.parallel_min_rows);
    ctx = &local;
  }
  Executor exec{catalog, profile, ctx, counters,
                ctx != nullptr ? ctx->exec : nullptr};
  GPR_ASSIGN_OR_RETURN(TablePtr out, exec.Exec(plan));
  // Borrowed scans (non-owning aliasing pointers, use_count 0) must be
  // copied out; owned intermediates can be moved.
  if (out.use_count() == 0) return Table(*out);
  return std::move(*std::const_pointer_cast<Table>(out));
}

std::string PlanOutputName(const PlanPtr& plan) {
  switch (plan->kind) {
    case PlanKind::kScan:
      return plan->table_name;
    case PlanKind::kRename:
      return plan->new_name;
    case PlanKind::kProject:
      return !plan->new_name.empty() ? plan->new_name
                                     : PlanOutputName(plan->children[0]);
    case PlanKind::kSelect:
    case PlanKind::kDistinct:
    case PlanKind::kSort:
    case PlanKind::kUnionAll:
    case PlanKind::kUnionDistinct:
    case PlanKind::kDifference:
    case PlanKind::kIntersect:
    case PlanKind::kSemiJoin:
    case PlanKind::kAntiJoin:
      return PlanOutputName(plan->children[0]);
    default:
      return "";
  }
}

Result<ra::Schema> InferSchema(
    const PlanPtr& plan, const ra::Catalog& catalog,
    const std::unordered_map<std::string, ra::Schema>* overlays) {
  using ra::Schema;
  using ra::ValueType;
  auto child = [&](size_t i) {
    return InferSchema(plan->children[i], catalog, overlays);
  };
  auto joined = [&]() -> Result<Schema> {
    GPR_ASSIGN_OR_RETURN(Schema l, child(0));
    GPR_ASSIGN_OR_RETURN(Schema r, child(1));
    const std::string ln = PlanOutputName(plan->children[0]);
    const std::string rn = PlanOutputName(plan->children[1]);
    if (!ln.empty() && ln == rn) {
      return Status::BindError("join inputs share the name '" + ln + "'");
    }
    Schema ls = ln.empty() ? l : l.Qualified(ln);
    Schema rs = rn.empty() ? r : r.Qualified(rn);
    return ls.Concat(rs);
  };
  switch (plan->kind) {
    case PlanKind::kScan: {
      if (overlays != nullptr) {
        auto it = overlays->find(plan->table_name);
        if (it != overlays->end()) return it->second;
      }
      GPR_ASSIGN_OR_RETURN(const ra::Table* t, catalog.Get(plan->table_name));
      return t->schema();
    }
    case PlanKind::kSelect:
    case PlanKind::kDistinct:
    case PlanKind::kSort:
    case PlanKind::kUnionAll:
    case PlanKind::kUnionDistinct:
    case PlanKind::kDifference:
    case PlanKind::kIntersect:
    case PlanKind::kSemiJoin:
    case PlanKind::kAntiJoin:
      return child(0);
    case PlanKind::kProject: {
      GPR_ASSIGN_OR_RETURN(Schema in, child(0));
      std::vector<ra::Column> cols;
      for (const auto& item : plan->items) {
        GPR_ASSIGN_OR_RETURN(ra::CompiledExpr e, Compile(item.expr, in));
        cols.push_back({item.name, e.result_type()});
      }
      return Schema(std::move(cols));
    }
    case PlanKind::kJoin:
    case PlanKind::kLeftOuterJoin:
    case PlanKind::kCrossProduct:
      return joined();
    case PlanKind::kGroupBy: {
      GPR_ASSIGN_OR_RETURN(Schema in, child(0));
      std::vector<ra::Column> cols;
      for (const auto& g : plan->group_cols) {
        GPR_ASSIGN_OR_RETURN(size_t idx, in.Resolve(g));
        cols.push_back(in.column(idx));
      }
      for (const auto& agg : plan->aggs) {
        ValueType t = ValueType::kInt64;
        if (agg.arg) {
          GPR_ASSIGN_OR_RETURN(ra::CompiledExpr e, Compile(agg.arg, in));
          t = e.result_type();
        }
        if (agg.kind == ra::AggKind::kCount) t = ValueType::kInt64;
        if (agg.kind == ra::AggKind::kAvg) t = ValueType::kDouble;
        cols.push_back({agg.out_name, t});
      }
      return Schema(std::move(cols));
    }
    case PlanKind::kRename: {
      GPR_ASSIGN_OR_RETURN(Schema in, child(0));
      if (plan->col_names.empty()) return in;
      return in.Renamed(plan->col_names);
    }
    case PlanKind::kMMJoin:
      return Schema{{"F", ValueType::kInt64},
                    {"T", ValueType::kInt64},
                    {"ew", ValueType::kDouble}};
    case PlanKind::kMVJoin:
      return Schema{{"ID", ValueType::kInt64}, {"vw", ValueType::kDouble}};
  }
  GPR_UNREACHABLE();
}

void CollectTableRefs(const PlanPtr& plan, std::vector<TableRef>* out,
                      bool negated) {
  if (plan->kind == PlanKind::kScan) {
    out->push_back({plan->table_name, negated});
    return;
  }
  for (size_t i = 0; i < plan->children.size(); ++i) {
    bool child_negated = negated;
    if ((plan->kind == PlanKind::kAntiJoin ||
         plan->kind == PlanKind::kDifference) &&
        i == 1) {
      child_negated = true;
    }
    CollectTableRefs(plan->children[i], out, child_negated);
  }
}

bool PlanMustBeEmpty(const PlanPtr& plan,
                     const std::unordered_set<std::string>& empty_tables) {
  auto left_empty = [&] {
    return PlanMustBeEmpty(plan->children[0], empty_tables);
  };
  auto right_empty = [&] {
    return PlanMustBeEmpty(plan->children[1], empty_tables);
  };
  switch (plan->kind) {
    case PlanKind::kScan:
      return empty_tables.count(plan->table_name) > 0;
    case PlanKind::kSelect:
    case PlanKind::kProject:
    case PlanKind::kDistinct:
    case PlanKind::kSort:
    case PlanKind::kRename:
      return left_empty();
    case PlanKind::kJoin:
    case PlanKind::kCrossProduct:
    case PlanKind::kIntersect:
    case PlanKind::kMMJoin:
    case PlanKind::kMVJoin:
      return left_empty() || right_empty();
    case PlanKind::kSemiJoin:
      return left_empty() || right_empty();
    case PlanKind::kLeftOuterJoin:
    case PlanKind::kAntiJoin:
    case PlanKind::kDifference:
      return left_empty();
    case PlanKind::kUnionAll:
    case PlanKind::kUnionDistinct:
      return left_empty() && right_empty();
    case PlanKind::kGroupBy:
      // Scalar aggregation produces one row even over empty input.
      return !plan->group_cols.empty() && left_empty();
  }
  return false;
}

bool PlanUsesAggregation(const PlanPtr& plan) {
  if (plan->kind == PlanKind::kGroupBy || plan->kind == PlanKind::kMMJoin ||
      plan->kind == PlanKind::kMVJoin) {
    return true;
  }
  for (const auto& c : plan->children) {
    if (PlanUsesAggregation(c)) return true;
  }
  return false;
}

bool PlanUsesNegation(const PlanPtr& plan) {
  if (plan->kind == PlanKind::kAntiJoin ||
      plan->kind == PlanKind::kDifference ||
      plan->kind == PlanKind::kIntersect) {
    return true;
  }
  for (const auto& c : plan->children) {
    if (PlanUsesNegation(c)) return true;
  }
  return false;
}

namespace {

bool ExprUsesRand(const ra::ExprPtr& e) {
  if (e == nullptr) return false;
  if (e->kind == ra::ExprKind::kCall &&
      (e->func_name == "rand" || e->func_name == "random")) {
    return true;
  }
  for (const auto& c : e->children) {
    if (ExprUsesRand(c)) return true;
  }
  return false;
}

inline void HashMix(uint64_t* h, uint64_t v) {
  *h ^= v + 0x9e3779b97f4a7c15ULL + (*h << 6) + (*h >> 2);
}

void HashStr(uint64_t* h, const std::string& s) {
  uint64_t x = 1469598103934665603ULL;  // FNV-1a 64
  for (char c : s) {
    x ^= static_cast<unsigned char>(c);
    x *= 1099511628211ULL;
  }
  HashMix(h, x);
}

void HashStrs(uint64_t* h, const std::vector<std::string>& ss) {
  HashMix(h, ss.size());
  for (const auto& s : ss) HashStr(h, s);
}

}  // namespace

bool PlanUsesRand(const PlanPtr& plan) {
  if (ExprUsesRand(plan->predicate)) return true;
  for (const auto& item : plan->items) {
    if (ExprUsesRand(item.expr)) return true;
  }
  for (const auto& agg : plan->aggs) {
    if (ExprUsesRand(agg.arg)) return true;
  }
  for (const auto& c : plan->children) {
    if (PlanUsesRand(c)) return true;
  }
  return false;
}

uint64_t PlanFingerprint(const PlanPtr& plan) {
  uint64_t h = 0xcbf29ce484222325ULL;
  HashMix(&h, static_cast<uint64_t>(plan->kind));
  HashStr(&h, plan->table_name);
  if (plan->predicate != nullptr) HashStr(&h, plan->predicate->ToString());
  HashMix(&h, plan->items.size());
  for (const auto& item : plan->items) {
    HashStr(&h, item.expr != nullptr ? item.expr->ToString() : "");
    HashStr(&h, item.name);
  }
  HashStrs(&h, plan->keys.left);
  HashStrs(&h, plan->keys.right);
  if (plan->join_algo.has_value()) {
    HashMix(&h, static_cast<uint64_t>(*plan->join_algo) + 1);
  }
  HashMix(&h, static_cast<uint64_t>(plan->anti_impl));
  HashStrs(&h, plan->group_cols);
  HashMix(&h, plan->aggs.size());
  for (const auto& agg : plan->aggs) {
    HashMix(&h, static_cast<uint64_t>(agg.kind));
    HashStr(&h, agg.arg != nullptr ? agg.arg->ToString() : "");
    HashStr(&h, agg.out_name);
  }
  HashStr(&h, plan->new_name);
  HashStrs(&h, plan->col_names);
  HashStr(&h, plan->semiring.name);
  HashMix(&h, static_cast<uint64_t>(plan->orientation));
  HashStrs(&h, {plan->a_cols.from, plan->a_cols.to, plan->a_cols.weight,
                plan->b_cols.from, plan->b_cols.to, plan->b_cols.weight,
                plan->v_cols.id, plan->v_cols.weight});
  HashStrs(&h, plan->sort_cols);
  HashMix(&h, plan->children.size());
  for (const auto& c : plan->children) HashMix(&h, PlanFingerprint(c));
  return h;
}

namespace {

/// True when the subtree contains an operator that does real work —
/// anything beyond borrowing a table (scan) or relabeling it (rename).
/// Hoisting a scan/rename-only subtree would just copy the table.
bool HasRealWork(const PlanPtr& plan) {
  if (plan->kind != PlanKind::kScan && plan->kind != PlanKind::kRename) {
    return true;
  }
  for (const auto& c : plan->children) {
    if (HasRealWork(c)) return true;
  }
  return false;
}

bool ReferencesAny(const PlanPtr& plan,
                   const std::unordered_set<std::string>& names) {
  std::vector<TableRef> refs;
  CollectTableRefs(plan, &refs);
  for (const auto& r : refs) {
    if (names.count(r.name) > 0) return true;
  }
  return false;
}

void CollectInvariant(const PlanPtr& plan,
                      const std::unordered_set<std::string>& varying,
                      std::vector<PlanPtr>* out) {
  if (!ReferencesAny(plan, varying) && !PlanUsesRand(plan)) {
    if (HasRealWork(plan)) out->push_back(plan);
    return;  // maximal: don't descend into an invariant subtree
  }
  for (const auto& c : plan->children) CollectInvariant(c, varying, out);
}

}  // namespace

std::vector<PlanPtr> LoopInvariantSubplans(
    const PlanPtr& plan, const std::unordered_set<std::string>& varying) {
  std::vector<PlanPtr> out;
  CollectInvariant(plan, varying, &out);
  return out;
}

PlanPtr ReplaceSubplans(
    const PlanPtr& plan,
    const std::unordered_map<const Plan*, PlanPtr>& replacements) {
  auto it = replacements.find(plan.get());
  if (it != replacements.end()) return it->second;
  bool changed = false;
  std::vector<PlanPtr> children;
  children.reserve(plan->children.size());
  for (const auto& c : plan->children) {
    PlanPtr nc = ReplaceSubplans(c, replacements);
    changed |= nc != c;
    children.push_back(std::move(nc));
  }
  if (!changed) return plan;
  auto copy = std::make_shared<Plan>(*plan);
  copy->children = std::move(children);
  return copy;
}

}  // namespace gpr::core
