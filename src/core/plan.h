// Logical query plans: the composable IR that with+ subqueries, `computed
// by` definitions, and the graph-algorithm library are written in.
//
// Plans are executed against a Catalog under an EngineProfile (which chooses
// the physical join algorithm and the index behaviour) by ExecutePlan().
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "core/aggregate_join.h"
#include "core/anti_join.h"
#include "core/engine_profile.h"
#include "core/semiring.h"
#include "ra/catalog.h"
#include "ra/operators.h"
#include "util/status.h"

namespace gpr::core {

enum class PlanKind {
  kScan,
  kSelect,
  kProject,
  kJoin,
  kLeftOuterJoin,
  kSemiJoin,
  kAntiJoin,
  kUnionAll,
  kUnionDistinct,
  kDifference,
  kIntersect,
  kDistinct,
  kGroupBy,
  kRename,
  kCrossProduct,
  kMMJoin,
  kMVJoin,
  kSort,
};

const char* PlanKindName(PlanKind k);

/// snake_case operator-site name for `k` ("anti_join", "group_by", ...):
/// the names the execution governor reports in checkpoint failures and the
/// fault-injection harness (exec::FaultInjector) matches its spec against.
const char* PlanKindSite(PlanKind k);

struct Plan;
using PlanPtr = std::shared_ptr<const Plan>;

/// One logical operator node. Only the fields relevant to `kind` are used.
struct Plan {
  PlanKind kind = PlanKind::kScan;
  std::vector<PlanPtr> children;

  // kScan
  std::string table_name;

  // kSelect (predicate) / kJoin (residual predicate)
  ra::ExprPtr predicate;

  // kProject
  std::vector<ra::ops::ProjectItem> items;

  // kJoin / kLeftOuterJoin / kSemiJoin / kAntiJoin
  ra::ops::JoinKeys keys;
  std::optional<ra::ops::JoinAlgorithm> join_algo;  ///< profile override
  AntiJoinImpl anti_impl = AntiJoinImpl::kNotExists;

  // kGroupBy
  std::vector<std::string> group_cols;
  std::vector<ra::AggSpec> aggs;

  // kRename / kProject (output table name)
  std::string new_name;
  std::vector<std::string> col_names;

  // kMMJoin / kMVJoin
  Semiring semiring = PlusTimes();
  MVOrientation orientation = MVOrientation::kStandard;
  MatrixCols a_cols, b_cols;
  VectorCols v_cols;

  // kSort
  std::vector<std::string> sort_cols;

  /// Compact one-line rendering ("Join[T=F](Scan TC, Scan E)").
  std::string ToString() const;
};

/// Builders -------------------------------------------------------------

PlanPtr Scan(std::string table);
PlanPtr SelectOp(PlanPtr in, ra::ExprPtr pred);
PlanPtr ProjectOp(PlanPtr in, std::vector<ra::ops::ProjectItem> items,
                  std::string out_name = "");
PlanPtr JoinOp(PlanPtr l, PlanPtr r, ra::ops::JoinKeys keys,
               ra::ExprPtr residual = nullptr);
PlanPtr LeftOuterJoinOp(PlanPtr l, PlanPtr r, ra::ops::JoinKeys keys);
PlanPtr SemiJoinOp(PlanPtr l, PlanPtr r, ra::ops::JoinKeys keys);
PlanPtr AntiJoinOp(PlanPtr l, PlanPtr r, ra::ops::JoinKeys keys,
                   AntiJoinImpl impl = AntiJoinImpl::kNotExists);
PlanPtr UnionAllOp(PlanPtr l, PlanPtr r);
PlanPtr UnionDistinctOp(PlanPtr l, PlanPtr r);
PlanPtr DifferenceOp(PlanPtr l, PlanPtr r);
PlanPtr IntersectOp(PlanPtr l, PlanPtr r);
PlanPtr DistinctOp(PlanPtr in);
PlanPtr GroupByOp(PlanPtr in, std::vector<std::string> group_cols,
                  std::vector<ra::AggSpec> aggs);
PlanPtr RenameOp(PlanPtr in, std::string new_name,
                 std::vector<std::string> col_names = {});
PlanPtr CrossProductOp(PlanPtr l, PlanPtr r);
PlanPtr MMJoinOp(PlanPtr a, PlanPtr b, Semiring sr, MatrixCols a_cols = {},
                 MatrixCols b_cols = {});
PlanPtr MVJoinOp(PlanPtr m, PlanPtr v, Semiring sr,
                 MVOrientation orientation = MVOrientation::kStandard,
                 MatrixCols m_cols = {}, VectorCols v_cols = {});
PlanPtr SortOp(PlanPtr in, std::vector<std::string> cols);

/// Per-plan execution counters (accumulated into WithPlusStats).
struct ExecCounters {
  size_t joins = 0;
  size_t rows_joined = 0;
  size_t index_builds = 0;
  // Cross-iteration plan-state cache (ra/plan_cache.h), populated by the
  // fixpoint driver from PlanCache::stats() when caching is enabled.
  size_t cache_hits = 0;
  size_t cache_misses = 0;
  size_t cache_invalidations = 0;
  size_t cache_bytes = 0;  ///< bytes held live by the cache at query end
  /// Loop-invariant subplans materialized once before the fixpoint loop
  /// (includes fully-invariant computed-by definitions).
  size_t hoisted_subplans = 0;
  /// Wall-clock spent in the pre-loop hoisting prologue, microseconds.
  size_t hoist_setup_us = 0;
  /// Wall-clock spent computing plan facts (analysis/dataflow.h) before
  /// the fixpoint loop, microseconds. Zero when facts are off.
  size_t facts_setup_us = 0;
  /// Selections removed (always-true predicate) or skipped without
  /// executing their subtree (always-false predicate).
  size_t facts_dead_selects = 0;
  /// Distinct operators skipped because the input was proven dup-free.
  size_t facts_dedup_skips = 0;
  /// Columns pruned by the facts-proven projection pushdown.
  size_t facts_pruned_columns = 0;
  // CSR SpMV/SpMM kernels (ra/csr.h), populated by the fixpoint driver
  // from ra::KernelCounters when kernels are enabled.
  size_t csr_builds = 0;        ///< CSR layouts built (misses + uncached)
  size_t kernel_hits = 0;       ///< aggregate-joins run on a CSR kernel
  size_t kernel_fallbacks = 0;  ///< kernels on, generic path taken
  // Vectorized batch execution (ra/vectorized.h), populated by the
  // fixpoint driver from ra::VectorCounters when vectorize is enabled.
  size_t vector_batches = 0;    ///< ~2048-row column batches processed
  size_t vector_fallbacks = 0;  ///< vectorize on, row-at-a-time path taken
};

/// The "table name" a plan output carries for join qualification purposes:
/// the scanned/renamed table name, or "" for anonymous intermediates. Used
/// by InferSchema and by the static analyzer (gpr::analysis) to mirror the
/// executor's schema qualification.
std::string PlanOutputName(const PlanPtr& plan);

/// Computes the output schema of `plan` without executing it. `overlays`
/// supplies schemas for tables not (yet) in the catalog — the recursive
/// relation and computed-by definitions during SQL binding.
Result<ra::Schema> InferSchema(
    const PlanPtr& plan, const ra::Catalog& catalog,
    const std::unordered_map<std::string, ra::Schema>* overlays = nullptr);

/// Evaluates `plan` against `catalog` under `profile`.
///
/// Join algorithms are chosen per profile unless the node overrides them;
/// under an index-adopting profile with build_temp_indexes set, sort indexes
/// are built (and reused across iterations) on scanned tables' join columns.
Result<ra::Table> ExecutePlan(const PlanPtr& plan, ra::Catalog& catalog,
                              const EngineProfile& profile,
                              ra::EvalContext* ctx = nullptr,
                              ExecCounters* counters = nullptr);

/// All table names scanned by the plan, with a flag telling whether any
/// occurrence sits in a negated position (right side of anti-join or
/// difference) — the raw material of the Def. 9.1 dependency graph.
struct TableRef {
  std::string name;
  bool negated = false;
};
void CollectTableRefs(const PlanPtr& plan, std::vector<TableRef>* out,
                      bool negated = false);

/// True if the plan is guaranteed to produce no rows when every table in
/// `empty_tables` is empty — the sound version of the paper's empty-
/// temp-table short-circuit (Appendix, "some implementation details").
/// Conservative: emptiness propagates through selection/projection/joins
/// but not through union, outer joins' left side, anti-join, or scalar
/// aggregation (which yields one row over empty input).
bool PlanMustBeEmpty(const PlanPtr& plan,
                     const std::unordered_set<std::string>& empty_tables);

/// True if the plan contains group-by & aggregation, MM-join or MV-join —
/// the aggregate operations SQL'99 forbids in recursion.
bool PlanUsesAggregation(const PlanPtr& plan);

/// True if the plan contains anti-join, difference or intersect — the
/// negation-like operations.
bool PlanUsesNegation(const PlanPtr& plan);

/// True if any expression in the plan calls rand()/random(). Such plans are
/// never hoisted out of the fixpoint loop and never cached: re-evaluation
/// is observable.
bool PlanUsesRand(const PlanPtr& plan);

/// Structural fingerprint over the plan tree — kinds, table names, keys,
/// expressions, semirings, column lists. Equal plans hash equal; the hash
/// is deterministic within a process (it feeds plan-cache keys together
/// with input table versions, never persisted).
uint64_t PlanFingerprint(const PlanPtr& plan);

/// The maximal subtrees of `plan` that scan none of the tables in
/// `varying`, call no rand(), and contain at least one operator beyond
/// scan/rename — the loop-invariant subplans the fixpoint driver
/// materializes once before the recursive loop (and ExplainWithPlus
/// annotates). A fully invariant plan returns itself as the single entry.
std::vector<PlanPtr> LoopInvariantSubplans(
    const PlanPtr& plan, const std::unordered_set<std::string>& varying);

/// Rewrites `plan` by substituting nodes: wherever a node pointer equals a
/// key of `replacements`, the mapped subtree is spliced in (children are
/// not descended below a replaced node). Untouched subtrees are shared.
PlanPtr ReplaceSubplans(
    const PlanPtr& plan,
    const std::unordered_map<const Plan*, PlanPtr>& replacements);

}  // namespace gpr::core
