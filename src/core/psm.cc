#include "core/psm.h"

#include <algorithm>
#include <optional>
#include <sstream>
#include <unordered_map>
#include <unordered_set>
#include <utility>

#include "analysis/dataflow.h"
#include "core/checkpoint.h"
#include "ra/csr.h"
#include "ra/plan_cache.h"
#include "ra/vectorized.h"
#include "util/timer.h"

namespace gpr::core {

using ra::Table;

std::string PsmProcedure::ToSqlSketch() const {
  std::ostringstream os;
  os << "create procedure " << name << " (\n";
  for (size_t i = 0; i < blocks.size(); ++i) {
    os << "  declare " << blocks[i].cond_var << " int;\n";
  }
  os << "  create temporary table " << rec_table << " "
     << rec_schema.ToString() << ";\n";
  for (const auto& b : blocks) {
    for (const auto& def : b.defs) {
      os << "  create temporary table " << def.name << " as "
         << def.plan->ToString() << ";\n";
    }
  }
  for (const auto& p : init_plans) {
    os << "  insert into " << rec_table << " " << p->ToString() << ";\n";
  }
  os << "  loop\n";
  for (const auto& b : blocks) {
    for (const auto& def : b.defs) {
      os << "    truncate table " << def.name << "; insert into " << def.name
         << " " << def.plan->ToString() << ";\n";
    }
    os << "    " << b.cond_var << " := count(delta of "
       << b.delta_plan->ToString() << ");\n";
  }
  os << "    exit when ";
  for (size_t i = 0; i < blocks.size(); ++i) {
    if (i > 0) os << " and ";
    os << blocks[i].cond_var << " = 0";
  }
  os << ";\n    " << rec_table << " := " << rec_table << " "
     << UnionModeName(mode) << " delta;\n";
  if (maxrecursion > 0) {
    os << "    exit when iteration = " << maxrecursion << ";\n";
  }
  os << "  end loop)\n";
  return os.str();
}

Result<PsmProcedure> CompileToPsm(const WithPlusQuery& query) {
  PsmProcedure proc;
  proc.name = "F_" + query.rec_name;
  proc.rec_table = query.rec_name;
  proc.rec_schema = query.rec_schema;
  proc.mode = query.mode;
  proc.update_keys = query.update_keys;
  proc.ubu_impl = query.ubu_impl;
  proc.maxrecursion = query.maxrecursion;
  proc.degree_of_parallelism = query.degree_of_parallelism;
  proc.plan_cache = query.plan_cache;
  proc.plan_facts = query.plan_facts;
  proc.csr_kernels = query.csr_kernels;
  proc.vectorized = query.vectorized;
  proc.sql99_working_table = query.sql99_working_table;
  proc.checkpoint_every = query.checkpoint_every;
  proc.resume_from = query.resume_from;
  proc.checkpoint_store = query.checkpoint_store;
  if (proc.sql99_working_table && query.mode == UnionMode::kUnionByUpdate) {
    return Status::InvalidArgument(
        "working-table semantics apply to union all / union, not to "
        "union by update");
  }
  for (const auto& sq : query.init) {
    if (!sq.computed_by.empty()) {
      return Status::NotSupported(
          "computed by inside initial subqueries is not supported; inline "
          "the definitions");
    }
    proc.init_plans.push_back(sq.plan);
  }
  for (size_t i = 0; i < query.recursive.size(); ++i) {
    PsmRecursiveBlock block;
    block.defs = query.recursive[i].computed_by;
    block.delta_plan = query.recursive[i].plan;
    block.cond_var = "C_" + std::to_string(i + 1);
    proc.blocks.push_back(std::move(block));
  }
  return proc;
}

namespace {

/// The compiled procedure's loop plans in the dataflow framework's
/// normalized shape. Init plans are included so the interval/cardinality
/// analyses seed the recursive relation's least fixpoint from them, even
/// though by facts time they have already executed.
analysis::DataflowQuery ProcDataflowQuery(const PsmProcedure& proc) {
  analysis::DataflowQuery q;
  q.rec_name = proc.rec_table;
  q.rec_schema = proc.rec_schema;
  q.mode = proc.mode;
  q.update_keys = proc.update_keys;
  q.maxrecursion = proc.maxrecursion;
  q.sql99_working_table = proc.sql99_working_table;
  q.init = proc.init_plans;
  for (const auto& b : proc.blocks) {
    analysis::DataflowUnit u;
    for (const auto& def : b.defs) u.defs.emplace_back(def.name, def.plan);
    u.delta = b.delta_plan;
    q.blocks.push_back(std::move(u));
  }
  return q;
}

}  // namespace

Result<WithPlusResult> CallProcedure(const PsmProcedure& proc,
                                     ra::Catalog& catalog,
                                     const EngineProfile& base_profile,
                                     uint64_t seed,
                                     exec::ExecContext* gov) {
  WithPlusResult result;
  // The query-level `parallel N` hint overrides the profile's DOP; the
  // resolved value rides on the profile so ⊎ (which takes no EvalContext)
  // and the plan executor agree on it.
  EngineProfile profile = base_profile;
  if (proc.degree_of_parallelism > 0) {
    profile.degree_of_parallelism = proc.degree_of_parallelism;
  }
  Xoshiro256 rng(seed);
  ra::EvalContext ctx{&rng};
  ctx.exec = gov;
  ctx.dop = std::max(1, profile.degree_of_parallelism);
  ctx.poll_stride = exec::ResolvePollInterval(profile.governor_poll_interval);
  // Cross-iteration plan-state cache: the query-level `cache on|off`
  // option overrides the profile default. Cache memory is charged to the
  // governor's byte budget on insert (PlanCache owns no budget of its
  // own), so a byte-capped run trips with ResourceExhausted +
  // ProgressDetail instead of growing without bound.
  const bool cache_on =
      proc.plan_cache < 0 ? profile.plan_cache : proc.plan_cache > 0;
  // Plan facts: the query-level `facts on|off` option overrides the
  // profile default. Facts never change results — every executor consult
  // acts only on a structural proof.
  const bool facts_on =
      proc.plan_facts < 0 ? profile.plan_facts : proc.plan_facts > 0;
  // CSR kernels: the query-level `kernels on|off` option overrides the
  // profile default. A non-null counters pointer on the context is the
  // executor-side on switch (ra/csr.h); results are row-identical
  // either way.
  const bool kernels_on =
      proc.csr_kernels < 0 ? profile.csr_kernels : proc.csr_kernels > 0;
  ra::KernelCounters kernels;
  if (kernels_on) ctx.kernels = &kernels;
  // Vectorized batches: same override chain and executor-side switch
  // shape as kernels (ra/vectorized.h); results are row-identical
  // either way.
  const bool vectors_on =
      proc.vectorized < 0 ? profile.vectorized : proc.vectorized > 0;
  ra::VectorCounters vectors;
  if (vectors_on) ctx.vectors = &vectors;
  ctx.min_parallel_rows =
      exec::ResolveMinParallelRows(profile.parallel_min_rows);
  ra::PlanCache cache(gov);
  if (cache_on) ctx.cache = &cache;
  RedoLog redo;
  // Every temp table is registered here; the destructor drops them on all
  // exit paths (success, plan errors, governed aborts, injected faults).
  ra::TempTableScope scope(catalog);

  // create temporary table R.
  if (catalog.Has(proc.rec_table)) {
    return Status::AlreadyExists("recursive relation '" + proc.rec_table +
                                 "' collides with an existing table");
  }
  GPR_RETURN_NOT_OK(scope.Create(proc.rec_table, proc.rec_schema));

  // SQL'99 working-table mode: the catalog's recursive table holds only
  // the previous iteration's output; the full result accumulates here.
  const bool working_mode = proc.sql99_working_table;
  Table full_accum(proc.rec_table, proc.rec_schema);

  // ---- Checkpoint/resume (core/checkpoint.h, docs/robustness.md) -------
  //
  // `active_token` names the snapshot currently covering this run: it is
  // replaced as newer snapshots supersede it, removed on success, and
  // deliberately left in the store on every failure path — it is exactly
  // what a retry resumes from.
  const int ckpt_every = proc.checkpoint_every < 0 ? profile.checkpoint_every
                                                   : proc.checkpoint_every;
  CheckpointStore& store = proc.checkpoint_store != nullptr
                               ? *proc.checkpoint_store
                               : CheckpointStore::Default();
  std::string active_token;
  std::optional<FixpointCheckpoint> resume;
  if (!proc.resume_from.empty()) {
    resume = store.Find(proc.resume_from);
    if (!resume.has_value()) {
      return Status::NotFound("resume token '" + proc.resume_from +
                              "' not found (completed, evicted, or never "
                              "issued)");
    }
    if (resume->rec_table != proc.rec_table) {
      // A token from a different fixpoint stage: multi-stage algorithms
      // run several with+ queries back to back and pass the token to each;
      // the settled stages replay fresh (deterministically) and only the
      // stage that issued the token actually resumes.
      resume.reset();
    }
  }
  const bool resumed = resume.has_value();

  if (resumed) {
    // Restore the snapshot instead of running the initial subqueries: the
    // recursive relation's catalog contents, the working-table
    // accumulator, and the iteration record. The restored tables are
    // copies out of the store (CheckpointStore::Find), so they carry
    // fresh content versions — the plan cache can never serve an
    // artifact built for the interrupted incarnation of the relation.
    GPR_RETURN_NOT_OK(
        catalog.ReplaceTable(proc.rec_table, std::move(resume->rec)));
    if (working_mode) full_accum = std::move(resume->full_accum);
    result.iterations = resume->iterations;
    result.iters = resume->iters;
    result.counters = resume->counters;
    active_token = resume->token;
    if (gov != nullptr) gov->set_resume_token(active_token);
  } else {
    // Initialization: union all of the initial subqueries. In
    // working-table mode each row is copied into the accumulator before
    // it moves into the catalog table — no full-table copy afterwards.
    for (const auto& plan : proc.init_plans) {
      GPR_ASSIGN_OR_RETURN(
          Table init,
          ExecutePlan(plan, catalog, profile, &ctx, &result.counters));
      GPR_ASSIGN_OR_RETURN(Table * rec, catalog.Get(proc.rec_table));
      if (!rec->schema().UnionCompatible(init.schema())) {
        return Status::TypeMismatch(
            "initial subquery result " + init.schema().ToString() +
            " is incompatible with " + proc.rec_schema.ToString());
      }
      for (auto& row : init.mutable_rows()) {
        if (profile.insert_logging) redo.LogInsert(row);
        if (working_mode) full_accum.AddRow(row);
        rec->AddRow(std::move(row));
      }
    }
  }

  // The set of rows already in R, maintained for union (distinct) mode.
  // In working-table mode the catalog table holds only the last delta, so
  // the set comes from the accumulator (identical on the fresh path, and
  // the only complete record on the resumed one).
  std::unordered_set<ra::Tuple, ra::TupleHash, ra::TupleEq> seen;
  if (proc.mode == UnionMode::kUnionDistinct) {
    if (working_mode) {
      seen.insert(full_accum.rows().begin(), full_accum.rows().end());
    } else {
      GPR_ASSIGN_OR_RETURN(Table * rec, catalog.Get(proc.rec_table));
      seen.insert(rec->rows().begin(), rec->rows().end());
    }
  }

  // ---- Loop-invariant hoisting prologue (cache_on only) ----------------
  //
  // Names whose contents change across iterations: the recursive relation
  // and every per-iteration-refreshed definition. A definition that
  // references none of them (and no rand()) is fully invariant: it runs
  // once here, its name leaves the varying set (so a later definition
  // built only on settled ones is invariant too), and the loop never
  // refreshes it. Within the remaining varying plans, maximal invariant
  // subtrees are materialized once into __hoist_* temps and the plans
  // rewritten to scan them.
  std::unordered_set<std::string> varying;
  varying.insert(proc.rec_table);
  for (const auto& block : proc.blocks) {
    for (const auto& def : block.defs) varying.insert(def.name);
  }

  // ---- Plan-facts pipeline (facts_on only) -----------------------------
  //
  // Three analysis passes bracket the hoisting prologue:
  //   #1 facts over the compiled plans drive the proven rewrites
  //      (always-true-select removal; projection pushdown of invariant
  //      join inputs, so the narrowed subtree is what gets hoisted);
  //   #2 facts over the rewritten plans re-derive hoisting/caching
  //      eligibility — ComputeHoistSets replaces the bespoke
  //      LoopInvariantSubplans walk on this path;
  //   #3 (after the prologue) facts over the final run plans ride on the
  //      EvalContext for the whole loop, letting the executor skip
  //      proven-false selection subtrees and proven-redundant dedups.
  analysis::PlanFacts loop_facts;  // pass #3; lifetime spans the loop
  std::optional<analysis::HoistSets> hoist_sets;
  analysis::DataflowQuery dfq;
  analysis::FactsOptions fopts;
  fopts.scan_base_values = true;  // base tables are loop-constant here
  if (facts_on) {
    WallTimer facts_timer;
    dfq = ProcDataflowQuery(proc);
    const analysis::PlanFacts facts0 =
        analysis::ComputeFacts(dfq, catalog, fopts);
    const analysis::RewriteStats rw = analysis::ApplyFactsRewrites(
        &dfq, facts0, /*allow_pushdown=*/cache_on);
    result.counters.facts_dead_selects += rw.removed_selects;
    result.counters.facts_pruned_columns += rw.pruned_columns;
    const analysis::PlanFacts facts1 =
        analysis::ComputeFacts(dfq, catalog, fopts);
    hoist_sets = analysis::ComputeHoistSets(dfq, facts1);
    result.counters.facts_setup_us +=
        static_cast<size_t>(facts_timer.ElapsedMillis() * 1000.0);
  }

  struct RunDef {
    std::string name;
    PlanPtr plan;
  };
  struct RunBlock {
    std::vector<RunDef> defs;  ///< per-iteration (varying) definitions
    PlanPtr delta_plan;
  };
  std::vector<RunBlock> run_blocks;
  // Empty pre-materialized temps (invariant defs and hoisted subtrees):
  // seeds for the per-iteration empty-table short-circuit.
  std::unordered_set<std::string> preloop_empty;
  {
    WallTimer hoist_timer;
    size_t hoisted = 0;
    size_t hoist_idx = 0;
    auto references_varying = [&varying](const PlanPtr& p) {
      std::vector<TableRef> refs;
      CollectTableRefs(p, &refs);
      for (const auto& r : refs) {
        if (varying.count(r.name) > 0) return true;
      }
      return false;
    };
    auto materialize = [&](const PlanPtr& p,
                           const std::string& name) -> Status {
      GPR_ASSIGN_OR_RETURN(
          Table t, ExecutePlan(p, catalog, profile, &ctx, &result.counters));
      t.set_name(name);
      if (profile.insert_logging) {
        for (const auto& row : t.rows()) redo.LogInsert(row);
      }
      if (t.Empty()) preloop_empty.insert(name);
      if (!catalog.Has(name)) {
        GPR_RETURN_NOT_OK(scope.Create(name, t.schema()));
      }
      GPR_RETURN_NOT_OK(catalog.ReplaceTable(name, std::move(t)));
      ++hoisted;
      return Status::OK();
    };
    std::unordered_map<const Plan*, PlanPtr> replacements;
    auto hoist_subtrees = [&](PlanPtr plan) -> Result<PlanPtr> {
      if (!cache_on) return plan;
      std::vector<PlanPtr> subs;
      if (hoist_sets.has_value()) {
        auto it = hoist_sets->hoist_roots.find(plan.get());
        if (it != hoist_sets->hoist_roots.end()) subs = it->second;
      } else {
        subs = LoopInvariantSubplans(plan, varying);
      }
      for (const PlanPtr& sub : subs) {
        if (replacements.count(sub.get()) > 0) continue;  // shared subtree
        const std::string hname =
            "__hoist_" + proc.rec_table + "_" + std::to_string(hoist_idx++);
        GPR_RETURN_NOT_OK(materialize(sub, hname));
        // The rename preserves the subplan's output name, keeping join
        // qualification in the enclosing plan unchanged.
        replacements[sub.get()] =
            RenameOp(Scan(hname), PlanOutputName(sub));
      }
      return replacements.empty() ? plan
                                  : ReplaceSubplans(plan, replacements);
    };
    // The plans the loop will run: with facts on, the rewritten ones
    // (same block/def structure as the procedure's).
    std::vector<RunBlock> src_blocks;
    if (facts_on) {
      for (const auto& b : dfq.blocks) {
        RunBlock sb;
        for (const auto& def : b.defs) sb.defs.push_back({def.first, def.second});
        sb.delta_plan = b.delta;
        src_blocks.push_back(std::move(sb));
      }
    } else {
      for (const auto& b : proc.blocks) {
        RunBlock sb;
        for (const auto& def : b.defs) sb.defs.push_back({def.name, def.plan});
        sb.delta_plan = b.delta_plan;
        src_blocks.push_back(std::move(sb));
      }
    }

    // Facts-driven pre-materialization of fully-invariant definitions, in
    // reference-dependency order (ComputeHoistSets guarantees a settled
    // def never scans an unsettled one, so each materialize finds every
    // table it needs).
    std::unordered_set<std::string> facts_invariant;
    if (hoist_sets.has_value() && cache_on) {
      for (const auto& name : hoist_sets->invariant_defs) {
        for (const auto& sb : src_blocks) {
          for (const auto& def : sb.defs) {
            if (def.name != name) continue;
            GPR_RETURN_NOT_OK(materialize(def.plan, name));
            varying.erase(name);
            facts_invariant.insert(name);
          }
        }
      }
    }

    for (const auto& block : src_blocks) {
      RunBlock rb;
      for (const auto& def : block.defs) {
        if (facts_on) {
          if (facts_invariant.count(def.name) > 0) continue;  // settled
        } else if (cache_on && !PlanUsesRand(def.plan) &&
                   !references_varying(def.plan)) {
          GPR_RETURN_NOT_OK(materialize(def.plan, def.name));
          varying.erase(def.name);
          continue;
        }
        GPR_ASSIGN_OR_RETURN(PlanPtr hoisted_plan, hoist_subtrees(def.plan));
        rb.defs.push_back({def.name, std::move(hoisted_plan)});
      }
      GPR_ASSIGN_OR_RETURN(rb.delta_plan, hoist_subtrees(block.delta_plan));
      run_blocks.push_back(std::move(rb));
    }
    result.counters.hoisted_subplans = hoisted;
    result.counters.hoist_setup_us =
        static_cast<size_t>(hoist_timer.ElapsedMillis() * 1000.0);
  }
  if (cache_on) ctx.cache_unstable = &varying;

  // ---- Facts pass #3: the final run plans ------------------------------
  if (facts_on) {
    WallTimer facts_timer;
    analysis::DataflowQuery runq;
    runq.rec_name = proc.rec_table;
    runq.rec_schema = proc.rec_schema;
    runq.mode = proc.mode;
    runq.update_keys = proc.update_keys;
    runq.maxrecursion = proc.maxrecursion;
    runq.sql99_working_table = proc.sql99_working_table;
    runq.init = proc.init_plans;
    for (const auto& rb : run_blocks) {
      analysis::DataflowUnit u;
      for (const auto& def : rb.defs) u.defs.emplace_back(def.name, def.plan);
      u.delta = rb.delta_plan;
      runq.blocks.push_back(std::move(u));
    }
    loop_facts = analysis::ComputeFacts(runq, catalog, fopts);
    ctx.facts = &loop_facts;
    result.counters.facts_setup_us +=
        static_cast<size_t>(facts_timer.ElapsedMillis() * 1000.0);
  }

  if (resumed) {
    // The prologue above runs only rand()-free plans (hoisting refuses
    // PlanUsesRand subtrees and the facts analyses are static), so the
    // generator is untouched since seeding; restoring it here continues
    // the exact random sequence the interrupted run was drawing (MIS).
    rng = resume->rng;
  }

  const int cap = proc.maxrecursion;
  while (true) {
    if (gov != nullptr) {
      GPR_RETURN_NOT_OK(gov->CheckIteration(result.iterations));
    }
    WallTimer iter_timer;
    // Compute the deltas of every recursive subquery.
    Table delta("delta", proc.rec_schema);
    bool any_rows = false;
    for (size_t b = 0; b < run_blocks.size(); ++b) {
      const auto& block = run_blocks[b];
      // The sound variant of the paper's empty-temp-table short-circuit:
      // once a materialized definition comes out empty, any downstream plan
      // whose output provably must be empty is skipped. Pre-materialized
      // invariant temps that came out empty seed the set.
      std::unordered_set<std::string> known_empty = preloop_empty;
      for (const auto& def : block.defs) {
        Table t;
        if (PlanMustBeEmpty(def.plan, known_empty) &&
            catalog.Has(def.name)) {
          // Reuse the existing (emptied) definition without executing.
          GPR_ASSIGN_OR_RETURN(Table * prev, catalog.Get(def.name));
          t = Table(def.name, prev->schema());
        } else {
          GPR_ASSIGN_OR_RETURN(
              t, ExecutePlan(def.plan, catalog, profile, &ctx,
                             &result.counters));
          t.set_name(def.name);
        }
        if (profile.insert_logging) {
          for (const auto& row : t.rows()) redo.LogInsert(row);
        }
        if (t.Empty()) known_empty.insert(def.name);
        if (!catalog.Has(def.name)) {
          GPR_RETURN_NOT_OK(scope.Create(def.name, t.schema()));
        }
        GPR_RETURN_NOT_OK(catalog.ReplaceTable(def.name, std::move(t)));
      }
      if (PlanMustBeEmpty(block.delta_plan, known_empty)) {
        continue;  // C_b = 0
      }
      GPR_ASSIGN_OR_RETURN(
          Table dres, ExecutePlan(block.delta_plan, catalog, profile, &ctx,
                                  &result.counters));
      if (!delta.schema().UnionCompatible(dres.schema())) {
        return Status::TypeMismatch(
            "recursive subquery result " + dres.schema().ToString() +
            " is incompatible with " + proc.rec_schema.ToString());
      }
      if (!dres.Empty()) {
        any_rows = true;
        for (auto& row : dres.mutable_rows()) delta.AddRow(std::move(row));
      }
    }

    // Exit check: all C_i are zero.
    if (!any_rows) {
      GPR_ASSIGN_OR_RETURN(Table * rec, catalog.Get(proc.rec_table));
      result.converged = true;
      result.iters.push_back(
          {iter_timer.ElapsedMillis(),
           working_mode ? full_accum.NumRows() : rec->NumRows(), 0});
      ++result.iterations;
      break;
    }

    // Combine delta into R.
    GPR_ASSIGN_OR_RETURN(Table * r, catalog.Get(proc.rec_table));
    bool changed = false;
    switch (proc.mode) {
      case UnionMode::kUnionAll: {
        if (working_mode) {
          for (const auto& row : delta.rows()) {
            if (profile.insert_logging) redo.LogInsert(row);
            full_accum.AddRow(row);
            changed = true;
          }
          delta.set_name(proc.rec_table);
          GPR_RETURN_NOT_OK(catalog.ReplaceTable(proc.rec_table, delta));
          break;
        }
        for (auto& row : delta.mutable_rows()) {
          if (profile.insert_logging) redo.LogInsert(row);
          r->AddRow(std::move(row));
          changed = true;
        }
        break;
      }
      case UnionMode::kUnionDistinct: {
        if (working_mode) {
          Table working(proc.rec_table, full_accum.schema());
          for (auto& row : delta.mutable_rows()) {
            if (!seen.insert(row).second) continue;
            if (profile.insert_logging) redo.LogInsert(row);
            full_accum.AddRow(row);
            working.AddRow(std::move(row));
            changed = true;
          }
          GPR_RETURN_NOT_OK(
              catalog.ReplaceTable(proc.rec_table, std::move(working)));
          break;
        }
        for (auto& row : delta.mutable_rows()) {
          if (!seen.insert(row).second) continue;
          if (profile.insert_logging) redo.LogInsert(row);
          r->AddRow(std::move(row));
          changed = true;
        }
        break;
      }
      case UnionMode::kUnionByUpdate: {
        // ⊎ reports updated/inserted counts as it merges, so convergence
        // needs no after-the-fact multiset comparison against the old R.
        UbuStats ustats;
        GPR_ASSIGN_OR_RETURN(Table updated,
                             UnionByUpdate(*r, delta, proc.update_keys,
                                           proc.ubu_impl, profile, &ustats,
                                           &ctx));
        changed = ustats.changed;
        if (profile.insert_logging) {
          for (const auto& row : updated.rows()) redo.LogInsert(row);
        }
        GPR_RETURN_NOT_OK(
            catalog.ReplaceTable(proc.rec_table, std::move(updated)));
        break;
      }
    }

    ++result.iterations;
    {
      GPR_ASSIGN_OR_RETURN(Table * rec, catalog.Get(proc.rec_table));
      result.iters.push_back(
          {iter_timer.ElapsedMillis(),
           working_mode ? full_accum.NumRows() : rec->NumRows(),
           delta.NumRows()});
    }
    // Snapshot every ckpt_every completed iterations — but not when this
    // iteration ends the run anyway (convergence or the maxrecursion cap):
    // a snapshot nothing can resume from would only be store churn.
    if (ckpt_every > 0 && changed &&
        (cap == 0 || static_cast<int>(result.iterations) < cap) &&
        result.iterations % static_cast<size_t>(ckpt_every) == 0) {
      FixpointCheckpoint cp;
      cp.rec_table = proc.rec_table;
      cp.seed = seed;
      cp.iterations = result.iterations;
      cp.rng = rng;
      cp.working_mode = working_mode;
      {
        GPR_ASSIGN_OR_RETURN(Table * rec, catalog.Get(proc.rec_table));
        cp.rec = *rec;  // the store owns its own incarnation
      }
      if (working_mode) cp.full_accum = full_accum;
      cp.iters = result.iters;
      cp.counters = result.counters;
      const std::string token = store.Insert(std::move(cp));
      if (!active_token.empty()) store.Remove(active_token);
      active_token = token;
      if (gov != nullptr) gov->set_resume_token(active_token);
    }
    if (!changed) {
      result.converged = true;
      break;
    }
    if (cap > 0 && static_cast<int>(result.iterations) >= cap) {
      break;  // iteration cap (maxrecursion hint)
    }
  }

  // select ... from R — move the result out (the catalog keeps an empty
  // husk that TempTableScope drops with the other temporaries).
  if (working_mode) {
    result.table = std::move(full_accum);
    result.table.set_name(proc.rec_table);
  } else {
    GPR_ASSIGN_OR_RETURN(Table * rec, catalog.Get(proc.rec_table));
    result.table = std::move(*rec);
    result.table.DropIndexes();
  }
  if (cache_on) {
    const ra::PlanCacheStats cs = cache.stats();
    result.counters.cache_hits = cs.hits;
    result.counters.cache_misses = cs.misses;
    result.counters.cache_invalidations = cs.invalidations;
    result.counters.cache_bytes = cs.bytes_live;
  }
  if (kernels_on) {
    result.counters.csr_builds = kernels.csr_builds;
    result.counters.kernel_hits = kernels.kernel_hits;
    result.counters.kernel_fallbacks = kernels.kernel_fallbacks;
  }
  if (vectors_on) {
    result.counters.vector_batches = vectors.vector_batches;
    result.counters.vector_fallbacks = vectors.vector_fallbacks;
  }
  // Success: the run is complete, nothing will resume it. Failure paths
  // return above and leave the active snapshot in the store on purpose.
  if (!active_token.empty()) store.Remove(active_token);
  return result;
}

}  // namespace gpr::core
