// SQL/PSM compilation of with+ queries (Section 6, Algorithm 1).
//
// A with+ statement is processed by creating a PSM procedure F_Q that
// declares per-subquery exit-condition variables, creates temp tables for
// every `computed by` relation, seeds the recursive relation from the
// initial subqueries, then loops: materialize temporaries, compute each
// recursive subquery's delta, exit when every delta is empty (or the
// iteration cap fires), and combine the delta into the recursive relation
// with union all / union / union-by-update.
#pragma once

#include <string>
#include <vector>

#include "core/with_plus.h"
#include "util/status.h"

namespace gpr::core {

/// One recursive subquery compiled into the procedure's loop body.
struct PsmRecursiveBlock {
  std::vector<ComputedByDef> defs;  ///< temp tables refreshed per iteration
  PlanPtr delta_plan;               ///< produces this block's delta
  std::string cond_var;             ///< the C_i emptiness-check variable
};

/// The compiled procedure F_Q.
struct PsmProcedure {
  std::string name;
  std::string rec_table;
  ra::Schema rec_schema;
  std::vector<PlanPtr> init_plans;
  std::vector<PsmRecursiveBlock> blocks;
  UnionMode mode = UnionMode::kUnionAll;
  std::vector<std::string> update_keys;
  UnionByUpdateImpl ubu_impl = UnionByUpdateImpl::kFullOuterJoin;
  int maxrecursion = 0;
  /// 0 = inherit the profile's degree_of_parallelism.
  int degree_of_parallelism = 0;
  /// -1 = inherit the profile's plan_cache; 0 = off; 1 = on.
  int plan_cache = -1;
  /// -1 = inherit the profile's plan_facts; 0 = off; 1 = on.
  int plan_facts = -1;
  /// -1 = inherit the profile's csr_kernels; 0 = off; 1 = on.
  int csr_kernels = -1;
  /// -1 = inherit the profile's vectorized; 0 = off; 1 = on.
  int vectorized = -1;
  bool sql99_working_table = false;
  /// Checkpoint cadence: -1 = inherit the profile's checkpoint_every;
  /// 0 = off; N = snapshot every N completed iterations.
  int checkpoint_every = -1;
  /// Resume token of a prior snapshot; "" = start fresh.
  std::string resume_from;
  /// Snapshot store; nullptr = CheckpointStore::Default().
  CheckpointStore* checkpoint_store = nullptr;

  /// A human-readable SQL/PSM sketch of the procedure (documentation and
  /// REPL output; not re-parsed).
  std::string ToSqlSketch() const;
};

/// Algorithm 1, lines 1–4: validate and build the procedure. The query must
/// already have passed CheckWithPlusStratified.
Result<PsmProcedure> CompileToPsm(const WithPlusQuery& query);

/// Algorithm 1, line 5: "call F_Q". Runs the procedure against `catalog`
/// under `profile`; all temporaries are dropped before returning — on
/// success, on error, and on governed aborts alike (ra::TempTableScope).
///
/// `gov` (optional) is the execution governor: checked once per fixpoint
/// iteration and at every operator boundary of the plans executed inside.
/// nullptr = ungoverned (no per-operator overhead).
Result<WithPlusResult> CallProcedure(const PsmProcedure& proc,
                                     ra::Catalog& catalog,
                                     const EngineProfile& profile,
                                     uint64_t seed = 42,
                                     exec::ExecContext* gov = nullptr);

}  // namespace gpr::core
