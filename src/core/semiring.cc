#include "core/semiring.h"

#include "util/string_util.h"

namespace gpr::core {

using ra::AggKind;
using ra::BinaryOp;
using ra::Value;

const Semiring& PlusTimes() {
  static const Semiring s{"plus_times", AggKind::kSum, BinaryOp::kMul,
                          Value(0.0), Value(1.0)};
  return s;
}

const Semiring& MinPlus() {
  static const Semiring s{"min_plus", AggKind::kMin, BinaryOp::kAdd,
                          Value(kInfDistance), Value(0.0)};
  return s;
}

const Semiring& MaxTimes() {
  static const Semiring s{"max_times", AggKind::kMax, BinaryOp::kMul,
                          Value(0.0), Value(1.0)};
  return s;
}

const Semiring& MinTimes() {
  static const Semiring s{"min_times", AggKind::kMin, BinaryOp::kMul,
                          Value(kInfDistance), Value(1.0)};
  return s;
}

const Semiring& OrAnd() {
  static const Semiring s{"or_and", AggKind::kMax, BinaryOp::kMul,
                          Value(int64_t{0}), Value(int64_t{1})};
  return s;
}

Result<Semiring> SemiringByName(const std::string& name) {
  const std::string n = ToLower(name);
  if (n == "plus_times") return PlusTimes();
  if (n == "min_plus") return MinPlus();
  if (n == "max_times") return MaxTimes();
  if (n == "min_times") return MinTimes();
  if (n == "or_and") return OrAnd();
  return Status::InvalidArgument("unknown semiring '" + name + "'");
}

}  // namespace gpr::core
