// Semirings (Section 4): the algebraic structure (M, ⊕, ⊙, 0, 1) by which
// many graph algorithms are expressed as matrix/vector products.
//
// The ⊕ (addition) side maps onto a SQL aggregate function; the ⊙
// (multiplication) side maps onto a scalar binary expression evaluated while
// joining. MM-join and MV-join (aggregate_join.h) take a Semiring and build
// the corresponding join + group-by & aggregation.
#pragma once

#include <string>

#include "ra/aggregate.h"
#include "ra/expr.h"
#include "ra/value.h"
#include "util/status.h"

namespace gpr::core {

/// A semiring instance over the Value domain.
struct Semiring {
  std::string name;
  ra::AggKind add;        ///< ⊕ as an aggregate (sum / min / max / count)
  ra::BinaryOp multiply;  ///< ⊙ as a scalar operator (* or +)
  ra::Value zero;         ///< additive identity (annihilates under ⊙)
  ra::Value one;          ///< multiplicative identity

  /// The ⊙ expression over two operand expressions.
  ra::ExprPtr Multiply(ra::ExprPtr a, ra::ExprPtr b) const {
    return ra::Binary(multiply, std::move(a), std::move(b));
  }
};

/// (ℝ, +, ×, 0, 1) — PageRank, RWR, SimRank, HITS.
const Semiring& PlusTimes();

/// (ℝ∪{∞}, min, +, ∞, 0) — shortest distances (Bellman-Ford,
/// Floyd-Warshall). `zero` is represented by a large sentinel distance.
const Semiring& MinPlus();

/// (ℝ, max, ×, 0, 1) — BFS reachability over 0/1 values, Keyword-Search.
const Semiring& MaxTimes();

/// (ℝ, min, ×, +∞, 1) — Connected-Component label spreading (min of
/// neighbour labels).
const Semiring& MinTimes();

/// ({0,1}, ∨, ∧, 0, 1) — boolean reachability / transitive closure.
const Semiring& OrAnd();

/// The large-but-finite distance standing in for ∞ in MinPlus relations.
/// Kept well below numeric limits so `dist + ew` cannot overflow.
constexpr double kInfDistance = 1.0e15;

/// Looks a semiring up by name ("plus_times", "min_plus", ...).
Result<Semiring> SemiringByName(const std::string& name);

}  // namespace gpr::core
