#include "core/sql99_compat.h"

#include "core/plan.h"

namespace gpr::core {
namespace {

/// True if any expression under `e` is a general function call. rand() and
/// friends count; the binder never produces calls for plain arithmetic.
bool ExprHasCall(const ra::ExprPtr& e) {
  if (e == nullptr) return false;
  if (e->kind == ra::ExprKind::kCall) return true;
  for (const auto& child : e->children) {
    if (ExprHasCall(child)) return true;
  }
  return false;
}

bool PlanHasCall(const PlanPtr& plan) {
  if (ExprHasCall(plan->predicate)) return true;
  for (const auto& item : plan->items) {
    if (ExprHasCall(item.expr)) return true;
  }
  for (const auto& agg : plan->aggs) {
    if (ExprHasCall(agg.arg)) return true;
  }
  for (const auto& child : plan->children) {
    if (PlanHasCall(child)) return true;
  }
  return false;
}

bool PlanHasDistinct(const PlanPtr& plan) {
  if (plan->kind == PlanKind::kDistinct ||
      plan->kind == PlanKind::kUnionDistinct) {
    return true;
  }
  for (const auto& child : plan->children) {
    if (PlanHasDistinct(child)) return true;
  }
  return false;
}

/// Number of scans of `name` anywhere under the plan.
size_t CountRefs(const PlanPtr& plan, const std::string& name) {
  std::vector<TableRef> refs;
  CollectTableRefs(plan, &refs);
  size_t n = 0;
  for (const auto& r : refs) n += r.name == name;
  return n;
}

}  // namespace

std::vector<CompatViolation> Sql99Violations(const WithPlusQuery& query,
                                             const EngineProfile& profile) {
  const WithFeatureMatrix& f = profile.with_features;
  std::vector<CompatViolation> out;

  // (A) linear / nonlinear / mutual recursion.
  for (size_t i = 0; i < query.recursive.size(); ++i) {
    size_t refs = CountRefs(query.recursive[i].plan, query.rec_name);
    for (const auto& def : query.recursive[i].computed_by) {
      refs += CountRefs(def.plan, query.rec_name);
    }
    if (refs > 1 && !f.nonlinear_recursion) {
      out.push_back({"nonlinear recursion",
                     "recursive subquery " + std::to_string(i + 1) +
                         " references " + query.rec_name + " " +
                         std::to_string(refs) + " times"});
    }
  }

  // (B) multiple queries in the recursive step.
  if (query.recursive.size() > 1 && !f.multiple_recursive_queries) {
    out.push_back({"multiple recursive queries",
                   std::to_string(query.recursive.size()) +
                       " recursive subqueries"});
  }

  // (C) set operations between queries.
  if (query.mode == UnionMode::kUnionByUpdate) {
    out.push_back({"union by update",
                   "no RDBMS supports value updates in recursion (the "
                   "paper's new operation)"});
  }
  if (query.mode == UnionMode::kUnionDistinct &&
      !f.union_across_init_and_recursive) {
    out.push_back({"union (distinct) across initial and recursive queries",
                   "only PostgreSQL accepts union instead of union all"});
  }

  // computed by is a with+ extension, full stop.
  for (size_t i = 0; i < query.recursive.size(); ++i) {
    if (!query.recursive[i].computed_by.empty()) {
      out.push_back({"computed by",
                     "recursive subquery " + std::to_string(i + 1) +
                         " uses a computed by chain (with+ extension)"});
      break;
    }
  }

  // (D) restrictions inside the recursive step.
  for (size_t i = 0; i < query.recursive.size(); ++i) {
    const auto tag = "recursive subquery " + std::to_string(i + 1);
    std::vector<PlanPtr> plans{query.recursive[i].plan};
    for (const auto& def : query.recursive[i].computed_by) {
      plans.push_back(def.plan);
    }
    bool negation = false;
    bool aggregation = false;
    bool distinct = false;
    bool calls = false;
    for (const auto& p : plans) {
      negation |= PlanUsesNegation(p);
      aggregation |= PlanUsesAggregation(p);
      distinct |= PlanHasDistinct(p);
      calls |= PlanHasCall(p);
    }
    if (negation && !f.negation_in_recursion) {
      out.push_back({"negation", tag});
    }
    if (aggregation && !f.aggregates_in_recursion) {
      out.push_back({"aggregate functions / group by", tag});
    }
    if (distinct && !f.distinct_in_recursion) {
      out.push_back({"distinct", tag});
    }
    if (calls && !f.general_functions_in_recursion) {
      out.push_back({"general functions", tag});
    }
  }
  return out;
}

Status CheckSql99Compatible(const WithPlusQuery& query,
                            const EngineProfile& profile) {
  auto violations = Sql99Violations(query, profile);
  if (violations.empty()) return Status::OK();
  return Status::NotSupported(
      profile.name + " recursive with rejects: " + violations[0].feature +
      " (" + violations[0].detail + ")" +
      (violations.size() > 1
           ? " and " + std::to_string(violations.size() - 1) + " more"
           : ""));
}

}  // namespace gpr::core
