// SQL'99 compatibility checking — Table 1 made executable.
//
// Given a with+ query, decides whether the *standard* recursive with
// clause of a given engine (per its Table 1 feature column) could run it,
// and reports the first violated restriction otherwise. This
// operationalizes the paper's motivating claim: the 4 operations
// (MM-join, MV-join, anti-join, union-by-update) are non-monotonic and
// none of them is accepted by the recursive with of Oracle 11gR2,
// DB2 10.5, or PostgreSQL 9.4 — hence with+.
#pragma once

#include <string>
#include <vector>

#include "core/engine_profile.h"
#include "core/with_plus.h"
#include "util/status.h"

namespace gpr::core {

/// One violated SQL'99/engine restriction.
struct CompatViolation {
  std::string feature;  ///< Table 1 row, e.g. "aggregate functions"
  std::string detail;   ///< where it occurs in the query
};

/// All restrictions `query` violates under `profile`'s with clause
/// (empty = the engine's plain recursive with could run it).
std::vector<CompatViolation> Sql99Violations(const WithPlusQuery& query,
                                             const EngineProfile& profile);

/// Status form: OK or NotSupported with the first violation.
Status CheckSql99Compatible(const WithPlusQuery& query,
                            const EngineProfile& profile);

}  // namespace gpr::core
