#include "core/stratify.h"

#include <unordered_map>
#include <unordered_set>

namespace gpr::core {
namespace {

/// Names visible inside a subquery at stage s(T): the computed-by defs.
std::unordered_set<std::string> DefNames(const Subquery& sq) {
  std::unordered_set<std::string> out;
  for (const auto& def : sq.computed_by) out.insert(def.name);
  return out;
}

/// Body literals for one plan: refs to the recursive relation carry T, refs
/// to computed-by definitions carry s(T), base tables carry no stage.
std::vector<DatalogLiteral> BodyOf(const PlanPtr& plan,
                                   const std::string& rec_name,
                                   const std::unordered_set<std::string>& defs) {
  std::vector<TableRef> refs;
  CollectTableRefs(plan, &refs);
  std::vector<DatalogLiteral> body;
  for (const auto& ref : refs) {
    DatalogLiteral lit;
    lit.predicate = ref.name;
    lit.negated = ref.negated;
    if (ref.name == rec_name) {
      lit.temporal = TemporalArg::kT;
    } else if (defs.count(ref.name)) {
      lit.temporal = TemporalArg::kST;
    }
    body.push_back(std::move(lit));
  }
  return body;
}

}  // namespace

Result<DatalogProgram> LowerToDatalog(const WithPlusQuery& query) {
  DatalogProgram program;
  for (size_t i = 0; i < query.recursive.size(); ++i) {
    const Subquery& sq = query.recursive[i];
    const auto defs = DefNames(sq);

    // computed-by rules: D_j(s(T)) :- ...
    std::unordered_set<std::string> seen;
    for (const auto& def : sq.computed_by) {
      if (def.name == query.rec_name) {
        return Status::InvalidArgument(
            "computed-by definition shadows the recursive relation '" +
            def.name + "'");
      }
      if (!seen.insert(def.name).second) {
        return Status::InvalidArgument("computed-by definition '" + def.name +
                                       "' is defined twice");
      }
      // A definition may reference only earlier definitions.
      std::vector<TableRef> refs;
      CollectTableRefs(def.plan, &refs);
      for (const auto& ref : refs) {
        if (defs.count(ref.name) && !seen.count(ref.name)) {
          return Status::NotStratifiable(
              "computed-by definition '" + def.name +
              "' references '" + ref.name +
              "' before it is defined (the chain must be cycle free)");
        }
      }
      DatalogRule rule;
      rule.head = {def.name, false, TemporalArg::kST};
      rule.body = BodyOf(def.plan, query.rec_name, defs);
      program.rules.push_back(std::move(rule));
    }

    // Delta rule: Δ_i(s(T)) :- <main plan body>.
    const std::string delta = "delta_" + std::to_string(i);
    DatalogRule delta_rule;
    delta_rule.head = {delta, false, TemporalArg::kST};
    delta_rule.body = BodyOf(sq.plan, query.rec_name, defs);
    program.rules.push_back(std::move(delta_rule));

    // Combination rules.
    switch (query.mode) {
      case UnionMode::kUnionAll:
      case UnionMode::kUnionDistinct: {
        // R(s(T)) :- R(T).   R(s(T)) :- Δ_i(s(T)).
        DatalogRule copy;
        copy.head = {query.rec_name, false, TemporalArg::kST};
        copy.body = {{query.rec_name, false, TemporalArg::kT}};
        program.rules.push_back(std::move(copy));
        DatalogRule add;
        add.head = {query.rec_name, false, TemporalArg::kST};
        add.body = {{delta, false, TemporalArg::kST}};
        program.rules.push_back(std::move(add));
        break;
      }
      case UnionMode::kUnionByUpdate: {
        // Eq. 22: R(s(T)) :- R(T), ¬Δ(s(T)).   R(s(T)) :- Δ(s(T)).
        DatalogRule keep;
        keep.head = {query.rec_name, false, TemporalArg::kST};
        keep.body = {{query.rec_name, false, TemporalArg::kT},
                     {delta, true, TemporalArg::kST}};
        program.rules.push_back(std::move(keep));
        DatalogRule add;
        add.head = {query.rec_name, false, TemporalArg::kST};
        add.body = {{delta, false, TemporalArg::kST}};
        program.rules.push_back(std::move(add));
        break;
      }
    }
  }
  return program;
}

Result<DependencyGraph> LocalDependencyGraph(const WithPlusQuery& query,
                                             const Subquery& subquery) {
  DatalogProgram local;
  const auto defs = DefNames(subquery);
  for (const auto& def : subquery.computed_by) {
    DatalogRule rule;
    rule.head = {def.name, false, TemporalArg::kNone};
    // The recursive relation is treated as known (previous iteration), so it
    // contributes a node but its edge cannot close a cycle through defs.
    rule.body = BodyOf(def.plan, query.rec_name, defs);
    local.rules.push_back(std::move(rule));
  }
  DatalogRule main_rule;
  main_rule.head = {"__result__", false, TemporalArg::kNone};
  main_rule.body = BodyOf(subquery.plan, query.rec_name, defs);
  local.rules.push_back(std::move(main_rule));
  return DependencyGraph(local);
}

Status CheckWithPlusStratified(const WithPlusQuery& query) {
  // (1) computed-by chains cycle-free — enforced during lowering; also check
  //     the local dependency graphs directly (Algorithm 1, line 2).
  for (const auto& sq : query.recursive) {
    GPR_ASSIGN_OR_RETURN(DependencyGraph local,
                         LocalDependencyGraph(query, sq));
    // Cycles among computed-by definitions would appear as recursive
    // predicates other than the recursive relation.
    for (const auto& pred : local.RecursivePredicates()) {
      if (pred != query.rec_name) {
        return Status::NotStratifiable(
            "computed-by definition '" + pred +
            "' participates in a cycle inside one subquery");
      }
    }
  }
  // (2) lower and run the XY-stratification test.
  GPR_ASSIGN_OR_RETURN(DatalogProgram program, LowerToDatalog(query));
  GPR_RETURN_NOT_OK(CheckXYStratified(program));
  return Status::OK();
}

}  // namespace gpr::core
