// Lowering with+ queries to DATALOG and the plan-level stratification
// checks of Section 5 / Algorithm 1.
#pragma once

#include "core/datalog.h"
#include "core/with_plus.h"
#include "util/status.h"

namespace gpr::core {

/// Lowers the recursive part of `query` to a DATALOG program with temporal
/// arguments, following the construction in the proof sketch of Theorem 5.1:
///
///  * a scan of the recursive relation inside a recursive subquery refers to
///    the previous stage —  R_q(..., T);
///  * `computed by` definitions are same-stage predicates — R_i(..., s(T));
///  * the recursive subquery's result feeds a delta predicate Δ_i(..., s(T));
///  * union-all contributes   R_q(s(T)) :- R_q(T)  and  R_q(s(T)) :- Δ_i(s(T));
///  * union-by-update contributes the Eq. 22 pair
///      R_q(s(T)) :- R_q(T), ¬Δ_i(s(T))   and   R_q(s(T)) :- Δ_i(s(T)).
Result<DatalogProgram> LowerToDatalog(const WithPlusQuery& query);

/// The Def. 9.1-style dependency graph of one subquery: nodes are the
/// recursive relation, computed-by definitions, and base tables; edges carry
/// negation labels. The recursive relation is treated as already known
/// (base), so the graph must be acyclic — the `computed by` cycle-freeness
/// requirement of Section 6.
Result<DependencyGraph> LocalDependencyGraph(const WithPlusQuery& query,
                                             const Subquery& subquery);

/// The full Algorithm-1 gate: local graphs cycle-free, union-by-update
/// restrictions honoured, lowered program XY-stratified.
Status CheckWithPlusStratified(const WithPlusQuery& query);

}  // namespace gpr::core
