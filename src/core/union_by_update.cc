#include "core/union_by_update.h"

#include <unordered_map>
#include <unordered_set>

#include "ra/operators.h"
#include "ra/tuple.h"

namespace gpr::core {

namespace ops = ra::ops;
using ra::Table;
using ra::Tuple;

const char* UnionByUpdateImplName(UnionByUpdateImpl impl) {
  switch (impl) {
    case UnionByUpdateImpl::kMerge: return "merge";
    case UnionByUpdateImpl::kFullOuterJoin: return "full outer join";
    case UnionByUpdateImpl::kUpdateFrom: return "update from";
    case UnionByUpdateImpl::kDropAlter: return "drop/alter";
  }
  return "?";
}

std::vector<UnionByUpdateImpl> AllUnionByUpdateImpls() {
  return {UnionByUpdateImpl::kUpdateFrom, UnionByUpdateImpl::kMerge,
          UnionByUpdateImpl::kFullOuterJoin, UnionByUpdateImpl::kDropAlter};
}

namespace {

Result<std::vector<size_t>> ResolveAll(const ra::Schema& schema,
                                       const std::vector<std::string>& cols) {
  std::vector<size_t> out;
  for (const auto& c : cols) {
    GPR_ASSIGN_OR_RETURN(size_t i, schema.Resolve(c));
    out.push_back(i);
  }
  return out;
}

Status CheckCompatible(const Table& r, const Table& s) {
  if (!r.schema().UnionCompatible(s.schema())) {
    return Status::TypeMismatch(
        "union-by-update between incompatible schemas " +
        r.schema().ToString() + " and " + s.schema().ToString());
  }
  return Status::OK();
}

/// Shared row-matching machinery for the merge / update-from plans.
/// `reject_duplicate_source` reproduces MERGE's duplicate-source check.
/// `update_images` simulates the per-updated-row cost of a *real update*
/// (the paper: "full outer join outperforms merge, as it essentially does
/// join instead of real update"): MERGE writes an undo and a redo image
/// per modified row (2), UPDATE ... FROM one image (1). The images are
/// genuinely materialized copies, not sleeps.
Result<Table> MergeStyle(const Table& r, const Table& s,
                         const std::vector<std::string>& keys,
                         bool reject_duplicate_source, int update_images) {
  GPR_RETURN_NOT_OK(CheckCompatible(r, s));
  GPR_ASSIGN_OR_RETURN(auto rkeys, ResolveAll(r.schema(), keys));
  GPR_ASSIGN_OR_RETURN(auto skeys, ResolveAll(s.schema(), keys));

  std::unordered_map<Tuple, size_t, ra::TupleHash, ra::TupleEq> s_by_key;
  s_by_key.reserve(s.NumRows());
  for (size_t i = 0; i < s.NumRows(); ++i) {
    Tuple key = ProjectTuple(s.row(i), skeys);
    auto [it, inserted] = s_by_key.try_emplace(std::move(key), i);
    if (!inserted) {
      if (reject_duplicate_source) {
        return Status::InvalidArgument(
            "union-by-update: multiple source tuples match key " +
            TupleToString(ProjectTuple(s.row(i), skeys)) +
            " (MERGE reports duplicates in the source table)");
      }
      it->second = i;  // UPDATE ... FROM: silent last-write-wins
    }
  }

  Table out(r.name(), r.schema());
  out.Reserve(r.NumRows());
  std::unordered_set<Tuple, ra::TupleHash, ra::TupleEq> matched;
  std::vector<Tuple> image_log;  // undo/redo images of updated rows
  image_log.reserve(update_images > 0 ? s.NumRows() : 0);
  std::vector<bool> is_key(r.schema().NumColumns(), false);
  for (size_t k : rkeys) is_key[k] = true;
  for (const Tuple& rr : r.rows()) {
    Tuple key = ProjectTuple(rr, rkeys);
    auto it = s_by_key.find(key);
    if (it == s_by_key.end()) {
      out.AddRow(rr);
      continue;
    }
    matched.insert(key);
    // Update non-key attributes from s (positional; key positions keep r's
    // values, which equal s's by definition of the match).
    const Tuple& sr = s.row(it->second);
    if (update_images >= 1) image_log.push_back(rr);  // undo image
    Tuple updated = rr;
    // s columns correspond positionally via the union-compatible schemas.
    for (size_t c = 0; c < updated.size(); ++c) {
      if (!is_key[c]) updated[c] = sr[c];
    }
    if (update_images >= 2) image_log.push_back(updated);  // redo image
    out.AddRow(std::move(updated));
    if (image_log.size() >= 1u << 16) image_log.clear();  // bound memory
  }
  // Insert unmatched source tuples.
  for (size_t i = 0; i < s.NumRows(); ++i) {
    Tuple key = ProjectTuple(s.row(i), skeys);
    if (s_by_key.at(key) != i) continue;  // superseded duplicate
    if (!matched.count(key)) out.AddRow(s.row(i));
  }
  return out;
}

Result<Table> FullOuterJoinImpl(const Table& r, const Table& s,
                                const std::vector<std::string>& keys) {
  GPR_RETURN_NOT_OK(CheckCompatible(r, s));
  GPR_ASSIGN_OR_RETURN(Table lhs, ops::Rename(r, "ubu_r"));
  GPR_ASSIGN_OR_RETURN(Table rhs, ops::Rename(s, "ubu_s"));
  // Align s's column names with r's so coalesce pairs line up.
  {
    std::vector<std::string> rnames;
    for (const auto& c : r.schema().columns()) rnames.push_back(c.name);
    GPR_ASSIGN_OR_RETURN(rhs, ops::Rename(rhs, "ubu_s", rnames));
  }
  ops::JoinKeys jk{keys, keys};
  GPR_ASSIGN_OR_RETURN(Table joined, ops::FullOuterJoin(lhs, rhs, jk));
  // select coalesce(R.key, S.key) as key, coalesce(S.val, R.val) as val.
  std::unordered_set<std::string> key_set(keys.begin(), keys.end());
  std::vector<ops::ProjectItem> items;
  for (const auto& col : r.schema().columns()) {
    const std::string rq = "ubu_r." + col.name;
    const std::string sq = "ubu_s." + col.name;
    const bool is_key = key_set.count(col.name) > 0;
    ra::ExprPtr e =
        is_key ? ra::Call("coalesce", {ra::Col(rq), ra::Col(sq)})
               : ra::Call("coalesce", {ra::Col(sq), ra::Col(rq)});
    items.push_back(ops::As(std::move(e), col.name));
  }
  GPR_ASSIGN_OR_RETURN(Table out, ops::Project(joined, items, nullptr,
                                               r.name()));
  out.set_schema(r.schema());  // coalesce defeats type inference
  return out;
}

Result<Table> DropAlterImpl(const Table& r, const Table& s,
                            const std::vector<std::string>& keys) {
  GPR_RETURN_NOT_OK(CheckCompatible(r, s));
  if (!keys.empty()) {
    // Replacement is only equivalent to ⊎ when S covers every key of R.
    GPR_ASSIGN_OR_RETURN(auto rkeys, ResolveAll(r.schema(), keys));
    GPR_ASSIGN_OR_RETURN(auto skeys, ResolveAll(s.schema(), keys));
    std::unordered_set<Tuple, ra::TupleHash, ra::TupleEq> s_keys;
    s_keys.reserve(s.NumRows());
    for (const Tuple& t : s.rows()) s_keys.insert(ProjectTuple(t, skeys));
    for (const Tuple& t : r.rows()) {
      if (!s_keys.count(ProjectTuple(t, rkeys))) {
        return Status::InvalidArgument(
            "drop/alter union-by-update would lose row " +
            TupleToString(t) + "; the source does not cover every key");
      }
    }
  }
  Table out(r.name(), r.schema());
  out.mutable_rows() = s.rows();
  return out;
}

}  // namespace

Result<Table> UnionByUpdate(const Table& r, const Table& s,
                            const std::vector<std::string>& keys,
                            UnionByUpdateImpl impl,
                            const EngineProfile& profile) {
  if (keys.empty() && impl != UnionByUpdateImpl::kDropAlter) {
    // ⊎ without attributes replaces the relation as a whole; every
    // implementation degenerates to the same assignment.
    return DropAlterImpl(r, s, keys);
  }
  switch (impl) {
    case UnionByUpdateImpl::kMerge:
      if (!profile.supports_merge) {
        return Status::NotSupported("MERGE is not available under " +
                                    profile.name);
      }
      return MergeStyle(r, s, keys, /*reject_duplicate_source=*/true,
                        /*update_images=*/2);
    case UnionByUpdateImpl::kUpdateFrom:
      if (!profile.supports_update_from) {
        return Status::NotSupported("UPDATE ... FROM is not available under " +
                                    profile.name);
      }
      return MergeStyle(r, s, keys, /*reject_duplicate_source=*/false,
                        /*update_images=*/1);
    case UnionByUpdateImpl::kFullOuterJoin:
      return FullOuterJoinImpl(r, s, keys);
    case UnionByUpdateImpl::kDropAlter:
      return DropAlterImpl(r, s, keys);
  }
  GPR_UNREACHABLE();
}

Status UnionByUpdateInPlace(ra::Catalog& catalog, const std::string& r_name,
                            const Table& s,
                            const std::vector<std::string>& keys,
                            UnionByUpdateImpl impl,
                            const EngineProfile& profile) {
  GPR_ASSIGN_OR_RETURN(Table * r, catalog.Get(r_name));
  GPR_ASSIGN_OR_RETURN(Table out, UnionByUpdate(*r, s, keys, impl, profile));
  if (profile.insert_logging) {
    RedoLog log;
    for (const Tuple& t : out.rows()) log.LogInsert(t);
  }
  return catalog.ReplaceTable(r_name, std::move(out));
}

}  // namespace gpr::core
