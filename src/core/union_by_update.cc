#include "core/union_by_update.h"

#include <algorithm>
#include <cstdint>
#include <unordered_map>
#include <unordered_set>

#include "exec/thread_pool.h"
#include "ra/operators.h"
#include "ra/tuple.h"

namespace gpr::core {

namespace ops = ra::ops;
using ra::Table;
using ra::Tuple;

const char* UnionByUpdateImplName(UnionByUpdateImpl impl) {
  switch (impl) {
    case UnionByUpdateImpl::kMerge: return "merge";
    case UnionByUpdateImpl::kFullOuterJoin: return "full outer join";
    case UnionByUpdateImpl::kUpdateFrom: return "update from";
    case UnionByUpdateImpl::kDropAlter: return "drop/alter";
  }
  return "?";
}

std::vector<UnionByUpdateImpl> AllUnionByUpdateImpls() {
  return {UnionByUpdateImpl::kUpdateFrom, UnionByUpdateImpl::kMerge,
          UnionByUpdateImpl::kFullOuterJoin, UnionByUpdateImpl::kDropAlter};
}

namespace {

Result<std::vector<size_t>> ResolveAll(const ra::Schema& schema,
                                       const std::vector<std::string>& cols) {
  std::vector<size_t> out;
  for (const auto& c : cols) {
    GPR_ASSIGN_OR_RETURN(size_t i, schema.Resolve(c));
    out.push_back(i);
  }
  return out;
}

Status CheckCompatible(const Table& r, const Table& s) {
  if (!r.schema().UnionCompatible(s.schema())) {
    return Status::TypeMismatch(
        "union-by-update between incompatible schemas " +
        r.schema().ToString() + " and " + s.schema().ToString());
  }
  return Status::OK();
}

/// Morsel decomposition for the ⊎ row loops — same shape as the one in
/// ra/operators.cc (fixed task count from (rows, dop), outputs spliced in
/// morsel order), but without a governor to poll: ⊎ runs between
/// operator boundaries, which the fixpoint engines already checkpoint.
constexpr size_t kMorselRows = 8192;

inline size_t MorselRowsFor(size_t rows, int dop) {
  const size_t per_worker = (rows + dop - 1) / static_cast<size_t>(dop);
  return std::clamp<size_t>(per_worker, 1, kMorselRows);
}

template <typename Fn>
Status RunMorsels(size_t rows, int dop, const Fn& morsel) {
  const size_t morsel_rows = MorselRowsFor(rows, dop);
  const size_t num_morsels = exec::NumMorsels(rows, morsel_rows);
  return exec::ThreadPool::Global().RunTasks(
      num_morsels, static_cast<size_t>(dop), [&](size_t m) -> Status {
        const size_t begin = m * morsel_rows;
        return morsel(m, begin, std::min(rows, begin + morsel_rows));
      });
}

/// Shared row-matching machinery for the merge / update-from plans.
/// `reject_duplicate_source` reproduces MERGE's duplicate-source check.
/// `update_images` simulates the per-updated-row cost of a *real update*
/// (the paper: "full outer join outperforms merge, as it essentially does
/// join instead of real update"): MERGE writes an undo and a redo image
/// per modified row (2), UPDATE ... FROM one image (1). The images are
/// genuinely materialized copies, not sleeps.
///
/// `dop` > 1 partitions the source map by key hash and splits the update
/// scan into morsels (docs/performance.md); the result — including which
/// duplicate MERGE reports — is identical to the serial run.
Result<Table> MergeStyle(const Table& r, const Table& s,
                         const std::vector<std::string>& keys,
                         bool reject_duplicate_source, int update_images,
                         int dop) {
  GPR_RETURN_NOT_OK(CheckCompatible(r, s));
  GPR_ASSIGN_OR_RETURN(auto rkeys, ResolveAll(r.schema(), keys));
  GPR_ASSIGN_OR_RETURN(auto skeys, ResolveAll(s.schema(), keys));

  using KeyMap = std::unordered_map<Tuple, size_t, ra::TupleHash, ra::TupleEq>;
  const size_t num_parts =
      dop > 1 && (r.NumRows() > 1 || s.NumRows() > 1)
          ? static_cast<size_t>(dop)
          : 1;
  // Dedup-map build: partition p owns the keys hashing to it and scans s
  // in row order, so last-write-wins picks the same winner as the serial
  // single map, and partition-local first duplicates combine (min) to the
  // globally first one.
  std::vector<KeyMap> s_by_key(num_parts);
  std::vector<size_t> first_dup(num_parts, SIZE_MAX);
  GPR_RETURN_NOT_OK(exec::ThreadPool::Global().RunTasks(
      num_parts, num_parts, [&](size_t p) -> Status {
        KeyMap& map = s_by_key[p];
        map.reserve(s.NumRows() / num_parts + 1);
        Tuple key;
        for (size_t i = 0; i < s.NumRows(); ++i) {
          ra::ProjectTupleInto(s.row(i), skeys, &key);
          if (num_parts > 1 && ra::TupleHash{}(key) % num_parts != p) {
            continue;
          }
          auto [it, inserted] = map.try_emplace(key, i);
          if (!inserted) {
            if (reject_duplicate_source) {
              first_dup[p] = i;
              return Status::OK();  // the whole merge fails below
            }
            it->second = i;  // UPDATE ... FROM: silent last-write-wins
          }
        }
        return Status::OK();
      }));
  const size_t dup = *std::min_element(first_dup.begin(), first_dup.end());
  if (dup != SIZE_MAX) {
    return Status::InvalidArgument(
        "union-by-update: multiple source tuples match key " +
        TupleToString(ProjectTuple(s.row(dup), skeys)) +
        " (MERGE reports duplicates in the source table)");
  }
  auto lookup = [&](const Tuple& key) -> const size_t* {
    const KeyMap& map =
        s_by_key[num_parts == 1 ? 0 : ra::TupleHash{}(key) % num_parts];
    auto it = map.find(key);
    return it == map.end() ? nullptr : &it->second;
  };

  Table out(r.name(), r.schema());
  std::unordered_set<Tuple, ra::TupleHash, ra::TupleEq> matched;
  std::vector<bool> is_key(r.schema().NumColumns(), false);
  for (size_t k : rkeys) is_key[k] = true;
  // Applies the update scan to r's rows [begin, end), appending result
  // rows to `part` and the keys of updated rows to `hits`. The image log
  // is the *real work* of an in-place update; each morsel pays for its
  // own updated rows.
  auto update_scan = [&](size_t begin, size_t end, std::vector<Tuple>& part,
                         std::vector<Tuple>& hits) {
    Tuple key;
    std::vector<Tuple> image_log;  // undo/redo images of updated rows
    for (size_t i = begin; i < end; ++i) {
      const Tuple& rr = r.row(i);
      ra::ProjectTupleInto(rr, rkeys, &key);
      const size_t* si = lookup(key);
      if (si == nullptr) {
        part.push_back(rr);
        continue;
      }
      hits.push_back(key);
      // Update non-key attributes from s (positional; key positions keep
      // r's values, which equal s's by definition of the match).
      const Tuple& sr = s.row(*si);
      if (update_images >= 1) image_log.push_back(rr);  // undo image
      Tuple updated = rr;
      // s columns correspond positionally via union-compatible schemas.
      for (size_t c = 0; c < updated.size(); ++c) {
        if (!is_key[c]) updated[c] = sr[c];
      }
      if (update_images >= 2) image_log.push_back(updated);  // redo image
      part.push_back(std::move(updated));
      if (image_log.size() >= 1u << 16) image_log.clear();  // bound memory
    }
  };
  // Appends s's rows [begin, end) that neither matched an r row nor were
  // superseded by a later duplicate.
  auto insert_scan = [&](size_t begin, size_t end,
                         std::vector<Tuple>& part) {
    Tuple key;
    for (size_t i = begin; i < end; ++i) {
      ra::ProjectTupleInto(s.row(i), skeys, &key);
      if (*lookup(key) != i) continue;  // superseded duplicate
      if (!matched.count(key)) part.push_back(s.row(i));
    }
  };
  auto splice = [&out](std::vector<std::vector<Tuple>>& parts) {
    size_t total = 0;
    for (const auto& part : parts) total += part.size();
    out.Reserve(out.NumRows() + total);
    for (auto& part : parts) {
      for (Tuple& t : part) out.AddRow(std::move(t));
      part.clear();
    }
  };

  if (num_parts > 1) {
    const size_t rn = r.NumRows();
    const size_t rm = exec::NumMorsels(rn, MorselRowsFor(rn, dop));
    std::vector<std::vector<Tuple>> outs(rm);
    std::vector<std::vector<Tuple>> hits(rm);
    GPR_RETURN_NOT_OK(
        RunMorsels(rn, dop, [&](size_t m, size_t begin, size_t end) {
          outs[m].reserve(end - begin);
          update_scan(begin, end, outs[m], hits[m]);
          return Status::OK();
        }));
    splice(outs);
    for (auto& part : hits) {
      for (Tuple& key : part) matched.insert(std::move(key));
    }
    const size_t sn = s.NumRows();
    const size_t sm = exec::NumMorsels(sn, MorselRowsFor(sn, dop));
    std::vector<std::vector<Tuple>> inserts(sm);
    GPR_RETURN_NOT_OK(
        RunMorsels(sn, dop, [&](size_t m, size_t begin, size_t end) {
          insert_scan(begin, end, inserts[m]);
          return Status::OK();
        }));
    splice(inserts);
    return out;
  }
  out.Reserve(r.NumRows());
  std::vector<Tuple> hits;
  update_scan(0, r.NumRows(), out.mutable_rows(), hits);
  for (Tuple& key : hits) matched.insert(std::move(key));
  std::vector<Tuple> inserts;
  insert_scan(0, s.NumRows(), inserts);
  for (Tuple& t : inserts) out.AddRow(std::move(t));
  return out;
}

Result<Table> FullOuterJoinImpl(const Table& r, const Table& s,
                                const std::vector<std::string>& keys) {
  GPR_RETURN_NOT_OK(CheckCompatible(r, s));
  GPR_ASSIGN_OR_RETURN(Table lhs, ops::Rename(r, "ubu_r"));
  GPR_ASSIGN_OR_RETURN(Table rhs, ops::Rename(s, "ubu_s"));
  // Align s's column names with r's so coalesce pairs line up.
  {
    std::vector<std::string> rnames;
    for (const auto& c : r.schema().columns()) rnames.push_back(c.name);
    GPR_ASSIGN_OR_RETURN(rhs, ops::Rename(rhs, "ubu_s", rnames));
  }
  ops::JoinKeys jk{keys, keys};
  GPR_ASSIGN_OR_RETURN(Table joined, ops::FullOuterJoin(lhs, rhs, jk));
  // select coalesce(R.key, S.key) as key, coalesce(S.val, R.val) as val.
  std::unordered_set<std::string> key_set(keys.begin(), keys.end());
  std::vector<ops::ProjectItem> items;
  for (const auto& col : r.schema().columns()) {
    const std::string rq = "ubu_r." + col.name;
    const std::string sq = "ubu_s." + col.name;
    const bool is_key = key_set.count(col.name) > 0;
    ra::ExprPtr e =
        is_key ? ra::Call("coalesce", {ra::Col(rq), ra::Col(sq)})
               : ra::Call("coalesce", {ra::Col(sq), ra::Col(rq)});
    items.push_back(ops::As(std::move(e), col.name));
  }
  GPR_ASSIGN_OR_RETURN(Table out, ops::Project(joined, items, nullptr,
                                               r.name()));
  out.set_schema(r.schema());  // coalesce defeats type inference
  return out;
}

Result<Table> DropAlterImpl(const Table& r, const Table& s,
                            const std::vector<std::string>& keys) {
  GPR_RETURN_NOT_OK(CheckCompatible(r, s));
  if (!keys.empty()) {
    // Replacement is only equivalent to ⊎ when S covers every key of R.
    GPR_ASSIGN_OR_RETURN(auto rkeys, ResolveAll(r.schema(), keys));
    GPR_ASSIGN_OR_RETURN(auto skeys, ResolveAll(s.schema(), keys));
    std::unordered_set<Tuple, ra::TupleHash, ra::TupleEq> s_keys;
    s_keys.reserve(s.NumRows());
    for (const Tuple& t : s.rows()) s_keys.insert(ProjectTuple(t, skeys));
    for (const Tuple& t : r.rows()) {
      if (!s_keys.count(ProjectTuple(t, rkeys))) {
        return Status::InvalidArgument(
            "drop/alter union-by-update would lose row " +
            TupleToString(t) + "; the source does not cover every key");
      }
    }
  }
  Table out(r.name(), r.schema());
  out.mutable_rows() = s.rows();
  return out;
}

}  // namespace

Result<Table> UnionByUpdate(const Table& r, const Table& s,
                            const std::vector<std::string>& keys,
                            UnionByUpdateImpl impl,
                            const EngineProfile& profile) {
  if (keys.empty() && impl != UnionByUpdateImpl::kDropAlter) {
    // ⊎ without attributes replaces the relation as a whole; every
    // implementation degenerates to the same assignment.
    return DropAlterImpl(r, s, keys);
  }
  switch (impl) {
    case UnionByUpdateImpl::kMerge:
      if (!profile.supports_merge) {
        return Status::NotSupported("MERGE is not available under " +
                                    profile.name);
      }
      return MergeStyle(r, s, keys, /*reject_duplicate_source=*/true,
                        /*update_images=*/2, profile.degree_of_parallelism);
    case UnionByUpdateImpl::kUpdateFrom:
      if (!profile.supports_update_from) {
        return Status::NotSupported("UPDATE ... FROM is not available under " +
                                    profile.name);
      }
      return MergeStyle(r, s, keys, /*reject_duplicate_source=*/false,
                        /*update_images=*/1, profile.degree_of_parallelism);
    case UnionByUpdateImpl::kFullOuterJoin:
      return FullOuterJoinImpl(r, s, keys);
    case UnionByUpdateImpl::kDropAlter:
      return DropAlterImpl(r, s, keys);
  }
  GPR_UNREACHABLE();
}

Status UnionByUpdateInPlace(ra::Catalog& catalog, const std::string& r_name,
                            const Table& s,
                            const std::vector<std::string>& keys,
                            UnionByUpdateImpl impl,
                            const EngineProfile& profile) {
  GPR_ASSIGN_OR_RETURN(Table * r, catalog.Get(r_name));
  GPR_ASSIGN_OR_RETURN(Table out, UnionByUpdate(*r, s, keys, impl, profile));
  if (profile.insert_logging) {
    RedoLog log;
    for (const Tuple& t : out.rows()) log.LogInsert(t);
  }
  return catalog.ReplaceTable(r_name, std::move(out));
}

}  // namespace gpr::core
