#include "core/union_by_update.h"

#include <algorithm>
#include <cstdint>
#include <unordered_map>
#include <unordered_set>

#include "exec/exec_context.h"
#include "exec/thread_pool.h"
#include "ra/column.h"
#include "ra/operators.h"
#include "ra/tuple.h"
#include "ra/vectorized.h"

namespace gpr::core {

namespace ops = ra::ops;
using ra::Table;
using ra::Tuple;

const char* UnionByUpdateImplName(UnionByUpdateImpl impl) {
  switch (impl) {
    case UnionByUpdateImpl::kMerge: return "merge";
    case UnionByUpdateImpl::kFullOuterJoin: return "full outer join";
    case UnionByUpdateImpl::kUpdateFrom: return "update from";
    case UnionByUpdateImpl::kDropAlter: return "drop/alter";
  }
  return "?";
}

std::vector<UnionByUpdateImpl> AllUnionByUpdateImpls() {
  return {UnionByUpdateImpl::kUpdateFrom, UnionByUpdateImpl::kMerge,
          UnionByUpdateImpl::kFullOuterJoin, UnionByUpdateImpl::kDropAlter};
}

namespace {

Result<std::vector<size_t>> ResolveAll(const ra::Schema& schema,
                                       const std::vector<std::string>& cols) {
  std::vector<size_t> out;
  for (const auto& c : cols) {
    GPR_ASSIGN_OR_RETURN(size_t i, schema.Resolve(c));
    out.push_back(i);
  }
  return out;
}

Status CheckCompatible(const Table& r, const Table& s) {
  if (!r.schema().UnionCompatible(s.schema())) {
    return Status::TypeMismatch(
        "union-by-update between incompatible schemas " +
        r.schema().ToString() + " and " + s.schema().ToString());
  }
  return Status::OK();
}

/// Morsel decomposition for the ⊎ row loops — same shape as the one in
/// ra/operators.cc (fixed task count from (rows, dop), outputs spliced in
/// morsel order), but without a governor to poll: ⊎ runs between
/// operator boundaries, which the fixpoint engines already checkpoint.
constexpr size_t kMorselRows = 8192;

inline size_t MorselRowsFor(size_t rows, int dop) {
  const size_t per_worker = (rows + dop - 1) / static_cast<size_t>(dop);
  return std::clamp<size_t>(per_worker, 1, kMorselRows);
}

template <typename Fn>
Status RunMorsels(size_t rows, int dop, const Fn& morsel) {
  const size_t morsel_rows = MorselRowsFor(rows, dop);
  const size_t num_morsels = exec::NumMorsels(rows, morsel_rows);
  return exec::ThreadPool::Global().RunTasks(
      num_morsels, static_cast<size_t>(dop), [&](size_t m) -> Status {
        const size_t begin = m * morsel_rows;
        return morsel(m, begin, std::min(rows, begin + morsel_rows));
      });
}

/// Shared row-matching machinery for the merge / update-from plans.
/// `reject_duplicate_source` reproduces MERGE's duplicate-source check.
/// `update_images` simulates the per-updated-row cost of a *real update*
/// (the paper: "full outer join outperforms merge, as it essentially does
/// join instead of real update"): MERGE writes an undo and a redo image
/// per modified row (2), UPDATE ... FROM one image (1). The images are
/// genuinely materialized copies, not sleeps.
///
/// `dop` > 1 partitions the source map by key hash and splits the update
/// scan into morsels (docs/performance.md); the result — including which
/// duplicate MERGE reports — is identical to the serial run.
Result<Table> MergeStyle(const Table& r, const Table& s,
                         const std::vector<std::string>& keys,
                         bool reject_duplicate_source, int update_images,
                         int dop, UbuStats* stats) {
  GPR_RETURN_NOT_OK(CheckCompatible(r, s));
  GPR_ASSIGN_OR_RETURN(auto rkeys, ResolveAll(r.schema(), keys));
  GPR_ASSIGN_OR_RETURN(auto skeys, ResolveAll(s.schema(), keys));

  using KeyMap = std::unordered_map<Tuple, size_t, ra::TupleHash, ra::TupleEq>;
  const size_t num_parts =
      dop > 1 && (r.NumRows() > 1 || s.NumRows() > 1)
          ? static_cast<size_t>(dop)
          : 1;
  // Dedup-map build: partition p owns the keys hashing to it and scans s
  // in row order, so last-write-wins picks the same winner as the serial
  // single map, and partition-local first duplicates combine (min) to the
  // globally first one.
  std::vector<KeyMap> s_by_key(num_parts);
  std::vector<size_t> first_dup(num_parts, SIZE_MAX);
  GPR_RETURN_NOT_OK(exec::ThreadPool::Global().RunTasks(
      num_parts, num_parts, [&](size_t p) -> Status {
        KeyMap& map = s_by_key[p];
        map.reserve(s.NumRows() / num_parts + 1);
        Tuple key;
        for (size_t i = 0; i < s.NumRows(); ++i) {
          ra::ProjectTupleInto(s.row(i), skeys, &key);
          if (num_parts > 1 && ra::TupleHash{}(key) % num_parts != p) {
            continue;
          }
          auto [it, inserted] = map.try_emplace(key, i);
          if (!inserted) {
            if (reject_duplicate_source) {
              first_dup[p] = i;
              return Status::OK();  // the whole merge fails below
            }
            it->second = i;  // UPDATE ... FROM: silent last-write-wins
          }
        }
        return Status::OK();
      }));
  const size_t dup = *std::min_element(first_dup.begin(), first_dup.end());
  if (dup != SIZE_MAX) {
    return Status::InvalidArgument(
        "union-by-update: multiple source tuples match key " +
        TupleToString(ProjectTuple(s.row(dup), skeys)) +
        " (MERGE reports duplicates in the source table)");
  }
  auto lookup = [&](const Tuple& key) -> const size_t* {
    const KeyMap& map =
        s_by_key[num_parts == 1 ? 0 : ra::TupleHash{}(key) % num_parts];
    auto it = map.find(key);
    return it == map.end() ? nullptr : &it->second;
  };

  Table out(r.name(), r.schema());
  std::unordered_set<Tuple, ra::TupleHash, ra::TupleEq> matched;
  std::vector<bool> is_key(r.schema().NumColumns(), false);
  for (size_t k : rkeys) is_key[k] = true;
  // Applies the update scan to r's rows [begin, end), appending result
  // rows to `part` and the keys of updated rows to `hits`. `num_updated`
  // counts the rows whose tuple actually changed — the free convergence
  // signal (UbuStats). The image log is the *real work* of an in-place
  // update; each morsel pays for its own updated rows.
  auto update_scan = [&](size_t begin, size_t end, std::vector<Tuple>& part,
                         std::vector<Tuple>& hits, size_t& num_updated) {
    Tuple key;
    std::vector<Tuple> image_log;  // undo/redo images of updated rows
    for (size_t i = begin; i < end; ++i) {
      const Tuple& rr = r.row(i);
      ra::ProjectTupleInto(rr, rkeys, &key);
      const size_t* si = lookup(key);
      if (si == nullptr) {
        part.push_back(rr);
        continue;
      }
      hits.push_back(key);
      // Update non-key attributes from s (positional; key positions keep
      // r's values, which equal s's by definition of the match).
      const Tuple& sr = s.row(*si);
      if (update_images >= 1) image_log.push_back(rr);  // undo image
      Tuple updated = rr;
      bool diff = false;
      // s columns correspond positionally via union-compatible schemas.
      for (size_t c = 0; c < updated.size(); ++c) {
        if (!is_key[c]) {
          if (!diff && !rr[c].Equals(sr[c])) diff = true;
          updated[c] = sr[c];
        }
      }
      if (diff) ++num_updated;
      if (update_images >= 2) image_log.push_back(updated);  // redo image
      part.push_back(std::move(updated));
      if (image_log.size() >= 1u << 16) image_log.clear();  // bound memory
    }
  };
  // Appends s's rows [begin, end) that neither matched an r row nor were
  // superseded by a later duplicate.
  auto insert_scan = [&](size_t begin, size_t end,
                         std::vector<Tuple>& part) {
    Tuple key;
    for (size_t i = begin; i < end; ++i) {
      ra::ProjectTupleInto(s.row(i), skeys, &key);
      if (*lookup(key) != i) continue;  // superseded duplicate
      if (!matched.count(key)) part.push_back(s.row(i));
    }
  };
  auto splice = [&out](std::vector<std::vector<Tuple>>& parts) {
    size_t total = 0;
    for (const auto& part : parts) total += part.size();
    out.Reserve(out.NumRows() + total);
    for (auto& part : parts) {
      for (Tuple& t : part) out.AddRow(std::move(t));
      part.clear();
    }
  };

  if (num_parts > 1) {
    const size_t rn = r.NumRows();
    const size_t rm = exec::NumMorsels(rn, MorselRowsFor(rn, dop));
    std::vector<std::vector<Tuple>> outs(rm);
    std::vector<std::vector<Tuple>> hits(rm);
    std::vector<size_t> updated_counts(rm, 0);
    GPR_RETURN_NOT_OK(
        RunMorsels(rn, dop, [&](size_t m, size_t begin, size_t end) {
          outs[m].reserve(end - begin);
          update_scan(begin, end, outs[m], hits[m], updated_counts[m]);
          return Status::OK();
        }));
    splice(outs);
    for (auto& part : hits) {
      for (Tuple& key : part) matched.insert(std::move(key));
    }
    const size_t sn = s.NumRows();
    const size_t sm = exec::NumMorsels(sn, MorselRowsFor(sn, dop));
    std::vector<std::vector<Tuple>> inserts(sm);
    GPR_RETURN_NOT_OK(
        RunMorsels(sn, dop, [&](size_t m, size_t begin, size_t end) {
          insert_scan(begin, end, inserts[m]);
          return Status::OK();
        }));
    if (stats != nullptr) {
      for (size_t c : updated_counts) stats->updated += c;
      for (const auto& part : inserts) stats->inserted += part.size();
      stats->changed = stats->updated > 0 || stats->inserted > 0;
    }
    splice(inserts);
    return out;
  }
  out.Reserve(r.NumRows());
  std::vector<Tuple> hits;
  size_t num_updated = 0;
  update_scan(0, r.NumRows(), out.mutable_rows(), hits, num_updated);
  for (Tuple& key : hits) matched.insert(std::move(key));
  std::vector<Tuple> inserts;
  insert_scan(0, s.NumRows(), inserts);
  if (stats != nullptr) {
    stats->updated = num_updated;
    stats->inserted = inserts.size();
    stats->changed = num_updated > 0 || !inserts.empty();
  }
  for (Tuple& t : inserts) out.AddRow(std::move(t));
  return out;
}

/// full outer join + coalesce, written out by hand so the convergence
/// counters fall out of the scan. The output is row-for-row what
/// `Project(FullOuterJoin(R, ρS), coalesce...)` used to produce: R rows in
/// order (each matched row expanded per matching S row, in S insertion
/// order), then unmatched S rows appended in S order. The projection is
/// per column `coalesce(R.key, S.key)` for keys and `coalesce(S.val,
/// R.val)` for non-keys.
/// Vectorized ⊎ fast path: when the single key column is non-null int64 on
/// both sides, build and probe an unboxed int64 key map over column
/// batches instead of hashing boxed key tuples per row. The per-column
/// coalesce/diff merge is byte-identical to the plain scan below; with no
/// NULL keys anywhere the oracle's null-key handling is trivially
/// preserved. Returns false when the shape doesn't bind.
bool TryFullOuterJoinVec(const Table& r, const Table& s,
                         const std::vector<size_t>& rkeys,
                         const std::vector<bool>& is_key,
                         ra::EvalContext* ctx, UbuStats* stats, Table* out) {
  if (rkeys.size() != 1) return false;
  const ra::ColumnStore& rstore = r.columns();
  const ra::ColumnStore& sstore = s.columns();
  const ra::ColumnVec& rkey = rstore.column(rkeys[0]);
  const ra::ColumnVec& skey = sstore.column(rkeys[0]);
  if (rkey.rep() != ra::ColumnVec::Rep::kInt64 ||
      skey.rep() != ra::ColumnVec::Rep::kInt64 || rkey.has_nulls() ||
      skey.has_nulls()) {
    return false;
  }
  std::unordered_map<int64_t, std::vector<size_t>> s_by_key;
  s_by_key.reserve(s.NumRows());
  const std::vector<int64_t>& sk = skey.i64();
  for (size_t i = 0; i < s.NumRows(); ++i) s_by_key[sk[i]].push_back(i);

  std::vector<Tuple> rows;
  rows.reserve(r.NumRows());
  std::vector<bool> smatched(s.NumRows(), false);
  size_t updated = 0;
  bool dup_match = false;
  const std::vector<int64_t>& rk = rkey.i64();
  for (size_t ri = 0; ri < r.NumRows(); ++ri) {
    const Tuple& rr = r.row(ri);
    auto it = s_by_key.find(rk[ri]);
    if (it == s_by_key.end()) {
      rows.push_back(rr);
      continue;
    }
    if (it->second.size() > 1) dup_match = true;
    for (size_t si : it->second) {
      smatched[si] = true;
      const Tuple& sr = s.row(si);
      Tuple merged = rr;
      bool diff = false;
      for (size_t c = 0; c < merged.size(); ++c) {
        // Key columns are non-null here, so the oracle's NULL-coalesce of
        // the key side never fires; non-keys take s's value when present.
        if (!is_key[c] && !sr[c].is_null()) merged[c] = sr[c];
        if (!diff && !merged[c].Equals(rr[c])) diff = true;
      }
      if (diff) ++updated;
      rows.push_back(std::move(merged));
    }
  }
  size_t inserted = 0;
  for (size_t si = 0; si < s.NumRows(); ++si) {
    if (smatched[si]) continue;
    rows.push_back(s.row(si));
    ++inserted;
  }
  out->mutable_rows() = std::move(rows);
  if (stats != nullptr) {
    stats->updated = updated;
    stats->inserted = inserted;
    stats->changed = updated > 0 || inserted > 0 || dup_match;
  }
  if (ctx->vectors != nullptr) {
    ctx->vectors->vector_batches +=
        (r.NumRows() + ra::kVectorBatchRows - 1) / ra::kVectorBatchRows +
        (s.NumRows() + ra::kVectorBatchRows - 1) / ra::kVectorBatchRows;
  }
  return true;
}

Result<Table> FullOuterJoinImpl(const Table& r, const Table& s,
                                const std::vector<std::string>& keys,
                                UbuStats* stats, ra::EvalContext* ctx) {
  GPR_RETURN_NOT_OK(CheckCompatible(r, s));
  GPR_ASSIGN_OR_RETURN(auto rkeys, ResolveAll(r.schema(), keys));
  // s's columns correspond to r's positionally (union-compatible), so r's
  // key positions apply to s rows directly — exactly what the old rename-
  // to-r's-names + resolve dance computed.
  const std::vector<size_t>& skeys = rkeys;

  std::vector<bool> is_key_flags(r.schema().NumColumns(), false);
  for (size_t k : rkeys) is_key_flags[k] = true;
  if (ra::vec::Enabled(ctx)) {
    Table out(r.name(), r.schema());
    if (TryFullOuterJoinVec(r, s, rkeys, is_key_flags, ctx, stats, &out)) {
      return out;
    }
    ra::vec::CountFallback(ctx);
  }

  auto has_null_key = [](const Tuple& t, const std::vector<size_t>& idx) {
    for (size_t k : idx) {
      if (t[k].is_null()) return true;
    }
    return false;
  };

  std::unordered_map<Tuple, std::vector<size_t>, ra::TupleHash, ra::TupleEq>
      s_by_key;
  s_by_key.reserve(s.NumRows());
  for (size_t i = 0; i < s.NumRows(); ++i) {
    if (has_null_key(s.row(i), skeys)) continue;  // never joins
    s_by_key[ProjectTuple(s.row(i), skeys)].push_back(i);
  }

  std::vector<bool> is_key(r.schema().NumColumns(), false);
  for (size_t k : rkeys) is_key[k] = true;

  Table out(r.name(), r.schema());
  out.Reserve(r.NumRows());
  std::vector<bool> smatched(s.NumRows(), false);
  size_t updated = 0;
  bool dup_match = false;  // an r row matched by ≥2 s rows duplicates it
  Tuple key;
  for (const Tuple& rr : r.rows()) {
    ra::ProjectTupleInto(rr, rkeys, &key);
    auto it = has_null_key(rr, rkeys) ? s_by_key.end() : s_by_key.find(key);
    if (it == s_by_key.end()) {
      // Unmatched r: the s side is all-NULL, every coalesce yields r.
      out.AddRow(rr);
      continue;
    }
    if (it->second.size() > 1) dup_match = true;
    for (size_t si : it->second) {
      smatched[si] = true;
      const Tuple& sr = s.row(si);
      Tuple merged = rr;
      bool diff = false;
      for (size_t c = 0; c < merged.size(); ++c) {
        if (is_key[c]) {
          if (rr[c].is_null()) merged[c] = sr[c];
        } else if (!sr[c].is_null()) {
          merged[c] = sr[c];
        }
        if (!diff && !merged[c].Equals(rr[c])) diff = true;
      }
      if (diff) ++updated;
      out.AddRow(std::move(merged));
    }
  }
  // Unmatched s rows (including NULL-key ones, which never join): the r
  // side is all-NULL, every coalesce yields s. These are the inserts.
  size_t inserted = 0;
  for (size_t si = 0; si < s.NumRows(); ++si) {
    if (smatched[si]) continue;
    out.AddRow(s.row(si));
    ++inserted;
  }
  if (stats != nullptr) {
    stats->updated = updated;
    stats->inserted = inserted;
    stats->changed = updated > 0 || inserted > 0 || dup_match;
  }
  return out;
}

Result<Table> DropAlterImpl(const Table& r, const Table& s,
                            const std::vector<std::string>& keys,
                            UbuStats* stats) {
  GPR_RETURN_NOT_OK(CheckCompatible(r, s));
  if (stats != nullptr) {
    // Whole-table replacement: "did anything change" is an O(n) hash
    // multiset comparison (vs the sort-based SameRowsAs the driver would
    // otherwise run). Per-row update/insert counts are not meaningful for
    // a wholesale swap and stay 0.
    stats->changed = r.NumRows() != s.NumRows();
    if (!stats->changed) {
      std::unordered_map<Tuple, size_t, ra::TupleHash, ra::TupleEq> counts;
      counts.reserve(r.NumRows());
      for (const Tuple& t : r.rows()) ++counts[t];
      for (const Tuple& t : s.rows()) {
        auto it = counts.find(t);
        if (it == counts.end() || it->second == 0) {
          stats->changed = true;
          break;
        }
        --it->second;
      }
    }
  }
  if (!keys.empty()) {
    // Replacement is only equivalent to ⊎ when S covers every key of R.
    GPR_ASSIGN_OR_RETURN(auto rkeys, ResolveAll(r.schema(), keys));
    GPR_ASSIGN_OR_RETURN(auto skeys, ResolveAll(s.schema(), keys));
    std::unordered_set<Tuple, ra::TupleHash, ra::TupleEq> s_keys;
    s_keys.reserve(s.NumRows());
    for (const Tuple& t : s.rows()) s_keys.insert(ProjectTuple(t, skeys));
    for (const Tuple& t : r.rows()) {
      if (!s_keys.count(ProjectTuple(t, rkeys))) {
        return Status::InvalidArgument(
            "drop/alter union-by-update would lose row " +
            TupleToString(t) + "; the source does not cover every key");
      }
    }
  }
  Table out(r.name(), r.schema());
  out.mutable_rows() = s.rows();
  return out;
}

}  // namespace

Result<Table> UnionByUpdate(const Table& r, const Table& s,
                            const std::vector<std::string>& keys,
                            UnionByUpdateImpl impl,
                            const EngineProfile& profile, UbuStats* stats,
                            ra::EvalContext* ctx) {
  if (keys.empty() && impl != UnionByUpdateImpl::kDropAlter) {
    // ⊎ without attributes replaces the relation as a whole; every
    // implementation degenerates to the same assignment.
    return DropAlterImpl(r, s, keys, stats);
  }
  // Parallel admission (exec::AdmittedDop): tiny ⊎ inputs run serial at
  // any DOP, same threshold as the ra operators (docs/performance.md).
  const int dop = exec::AdmittedDop(
      std::max(r.NumRows(), s.NumRows()), profile.degree_of_parallelism,
      exec::ResolveMinParallelRows(profile.parallel_min_rows));
  switch (impl) {
    case UnionByUpdateImpl::kMerge:
      if (!profile.supports_merge) {
        return Status::NotSupported("MERGE is not available under " +
                                    profile.name);
      }
      return MergeStyle(r, s, keys, /*reject_duplicate_source=*/true,
                        /*update_images=*/2, dop, stats);
    case UnionByUpdateImpl::kUpdateFrom:
      if (!profile.supports_update_from) {
        return Status::NotSupported("UPDATE ... FROM is not available under " +
                                    profile.name);
      }
      return MergeStyle(r, s, keys, /*reject_duplicate_source=*/false,
                        /*update_images=*/1, dop, stats);
    case UnionByUpdateImpl::kFullOuterJoin:
      return FullOuterJoinImpl(r, s, keys, stats, ctx);
    case UnionByUpdateImpl::kDropAlter:
      return DropAlterImpl(r, s, keys, stats);
  }
  GPR_UNREACHABLE();
}

Status UnionByUpdateInPlace(ra::Catalog& catalog, const std::string& r_name,
                            const Table& s,
                            const std::vector<std::string>& keys,
                            UnionByUpdateImpl impl,
                            const EngineProfile& profile, UbuStats* stats,
                            ra::EvalContext* ctx) {
  GPR_ASSIGN_OR_RETURN(Table * r, catalog.Get(r_name));
  GPR_ASSIGN_OR_RETURN(
      Table out, UnionByUpdate(*r, s, keys, impl, profile, stats, ctx));
  if (profile.insert_logging) {
    RedoLog log;
    for (const Tuple& t : out.rows()) log.LogInsert(t);
  }
  return catalog.ReplaceTable(r_name, std::move(out));
}

}  // namespace gpr::core
