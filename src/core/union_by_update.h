// Union-by-update (R ⊎_A S) — the new operation the paper proposes
// (Section 4.1), with the four physical implementations benchmarked in
// Exp-1 (Tables 4–5).
//
// Semantics: tuples r ∈ R and s ∈ S are identical when they agree on the
// key attributes A. For each matched r, its non-key attributes are updated
// to s's; unmatched r survive; unmatched s are inserted. Multiple r may
// match one s, but multiple s matching one r is rejected (the result would
// not be unique). With an empty key list, ⊎ replaces R by S wholesale
// (the noninflationary assignment of Section 4.2).
#pragma once

#include <string>
#include <vector>

#include "core/engine_profile.h"
#include "ra/catalog.h"
#include "ra/expr.h"
#include "ra/table.h"
#include "util/status.h"

namespace gpr::core {

enum class UnionByUpdateImpl {
  kMerge,          ///< SQL MERGE: update matched, insert unmatched;
                   ///< detects duplicate source keys (Oracle/DB2)
  kFullOuterJoin,  ///< full outer join + coalesce (all three engines)
  kUpdateFrom,     ///< UPDATE ... FROM + insert of unmatched (PostgreSQL);
                   ///< does not check duplicate source keys
  kDropAlter,      ///< drop old table / rename new one: whole-table
                   ///< replacement; valid when S covers every key of R
                   ///< (e.g. PageRank) or when no key is given
};

const char* UnionByUpdateImplName(UnionByUpdateImpl impl);

/// The four implementations in the order of the paper's Tables 4–5.
std::vector<UnionByUpdateImpl> AllUnionByUpdateImpls();

/// Byproduct counters of one ⊎ evaluation, collected while the operation
/// already scans every row — `changed` gives the fixpoint driver its
/// convergence answer for free, replacing the O(|R| log |R|) post-hoc
/// SameRowsAs comparison it used to run per iteration.
///
/// `changed` ⟺ result multiset ≠ R multiset. The equivalence holds because
/// tuples embed their key attributes: an updated row that differs from its
/// original shifts the per-key sub-multiset, and an insert changes the row
/// count. For kDropAlter (and the empty-key wholesale replacement) only
/// `changed` is meaningful — it comes from an O(n) hash-multiset compare —
/// and the per-row counters stay 0.
struct UbuStats {
  size_t updated = 0;   ///< matched R rows whose tuple actually changed
  size_t inserted = 0;  ///< unmatched S rows appended
  bool changed = false; ///< result differs from R as a multiset
};

/// Computes R ⊎_keys S with the chosen implementation. `keys` empty means
/// whole-table replacement. Fails with NotSupported when the engine profile
/// lacks the statement (merge on PostgreSQL < 9.5, update-from elsewhere),
/// and with InvalidArgument when multiple s match one r (kMerge detects
/// this; kUpdateFrom reproduces PostgreSQL's silent last-write behaviour).
///
/// `ctx` is optional and only consulted for the vectorized batch path
/// (ctx->vectors, ra/vectorized.h): when set and the key shape binds, the
/// full-outer-join implementation probes typed int64 key columns instead
/// of hashing boxed tuples — row-identical to the plain scan.
Result<ra::Table> UnionByUpdate(const ra::Table& r, const ra::Table& s,
                                const std::vector<std::string>& keys,
                                UnionByUpdateImpl impl,
                                const EngineProfile& profile = OracleLike(),
                                UbuStats* stats = nullptr,
                                ra::EvalContext* ctx = nullptr);

/// In-place variant against a catalog table (the PSM executor's path): the
/// kDropAlter implementation truly swaps the catalog entry; the others
/// compute the result and overwrite the table body.
Status UnionByUpdateInPlace(ra::Catalog& catalog, const std::string& r_name,
                            const ra::Table& s,
                            const std::vector<std::string>& keys,
                            UnionByUpdateImpl impl,
                            const EngineProfile& profile = OracleLike(),
                            UbuStats* stats = nullptr,
                            ra::EvalContext* ctx = nullptr);

}  // namespace gpr::core
