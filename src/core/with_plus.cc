#include "core/with_plus.h"

#include "analysis/analyzer.h"
#include "core/psm.h"
#include "core/stratify.h"

namespace gpr::core {

const char* UnionModeName(UnionMode m) {
  switch (m) {
    case UnionMode::kUnionAll: return "union all";
    case UnionMode::kUnionDistinct: return "union";
    case UnionMode::kUnionByUpdate: return "union by update";
  }
  return "?";
}

Status ValidateWithPlus(const WithPlusQuery& query) {
  if (query.rec_name.empty()) {
    return Status::InvalidArgument("with+ needs a recursive relation name");
  }
  if (query.rec_schema.NumColumns() == 0) {
    return Status::InvalidArgument("recursive relation '" + query.rec_name +
                                   "' needs a schema");
  }
  if (query.recursive.empty()) {
    return Status::InvalidArgument("with+ needs at least one recursive "
                                   "subquery");
  }
  // Initial subqueries must not reference the recursive relation.
  for (const auto& sq : query.init) {
    std::vector<TableRef> refs;
    CollectTableRefs(sq.plan, &refs);
    for (const auto& def : sq.computed_by) CollectTableRefs(def.plan, &refs);
    for (const auto& r : refs) {
      if (r.name == query.rec_name) {
        return Status::InvalidArgument(
            "initial subquery references the recursive relation '" +
            query.rec_name + "'");
      }
    }
  }
  // Recursive subqueries must reference it (directly or via computed by).
  for (const auto& sq : query.recursive) {
    std::vector<TableRef> refs;
    CollectTableRefs(sq.plan, &refs);
    for (const auto& def : sq.computed_by) CollectTableRefs(def.plan, &refs);
    bool found = false;
    for (const auto& r : refs) found |= r.name == query.rec_name;
    if (!found) {
      return Status::InvalidArgument(
          "a recursive subquery does not reference '" + query.rec_name +
          "'; move it to the initialization step");
    }
  }
  // Section 6 restriction: union-by-update cannot be mixed with other
  // recursive subqueries — the updated value would not be unique.
  if (query.mode == UnionMode::kUnionByUpdate && query.recursive.size() > 1) {
    return Status::InvalidArgument(
        "union by update allows exactly one recursive subquery (the update "
        "is not unique otherwise)");
  }
  if (query.maxrecursion < 0 || query.maxrecursion > 32767) {
    return Status::InvalidArgument(
        "maxrecursion must be between 0 and 32767");
  }
  if (query.degree_of_parallelism < 0 ||
      query.degree_of_parallelism > 1024) {
    return Status::InvalidArgument(
        "parallel degree must be between 0 and 1024");
  }
  if (query.checkpoint_every < -1 || query.checkpoint_every > 32767) {
    return Status::InvalidArgument(
        "checkpoint every must be between 0 and 32767 (-1 inherits the "
        "profile)");
  }
  return Status::OK();
}

Result<WithPlusResult> ExecuteWithPlus(const WithPlusQuery& query,
                                       ra::Catalog& catalog,
                                       const EngineProfile& profile,
                                       uint64_t seed) {
  GPR_RETURN_NOT_OK(ValidateWithPlus(query));
  if (query.check_stratification) {
    GPR_RETURN_NOT_OK(CheckWithPlusStratified(query));
  }
  // The static analysis gate runs after the legacy checks so established
  // error codes/messages stay stable, and catches everything they miss
  // (type flow, update keys, convergence) before any table is created.
  size_t gate_warnings = 0;
  if (profile.static_analysis_gate) {
    GPR_RETURN_NOT_OK(
        analysis::GateWithPlus(query, catalog, &gate_warnings));
  }
  GPR_ASSIGN_OR_RETURN(PsmProcedure proc, CompileToPsm(query));
  // Build the execution governor (nullopt = fully ungoverned fast path).
  GPR_ASSIGN_OR_RETURN(
      std::optional<exec::ExecContext> gov,
      exec::MakeGovernor(query.governor, query.cancel, query.fault_spec));
  GPR_ASSIGN_OR_RETURN(
      WithPlusResult result,
      CallProcedure(proc, catalog, profile, seed, gov ? &*gov : nullptr));
  result.gate_warnings = gate_warnings;
  return result;
}

}  // namespace gpr::core
