// The enhanced recursive `with` clause — with+ (Section 6).
//
// A WithPlusQuery is the plan-level form of
//
//   with R(cols) as (
//     <init subqueries>                       -- union all between them
//     union all | union | union by update [keys]
//     <recursive subqueries with computed by>
//     maxrecursion k )
//
// Executed under "algebra + while" (Section 4.2): union all / union are the
// inflationary semantics, union-by-update is the noninflationary assignment.
// Before execution the query is lowered to a DATALOG program and checked to
// be XY-stratified (Theorem 5.1); non-stratifiable queries are rejected.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/plan.h"
#include "core/union_by_update.h"
#include "exec/exec_context.h"
#include "ra/catalog.h"
#include "util/status.h"

namespace gpr::core {

class CheckpointStore;  // core/checkpoint.h

/// How the recursive subqueries' results combine with R each iteration.
enum class UnionMode {
  kUnionAll,       ///< bag append (SQL'99 default; inflationary)
  kUnionDistinct,  ///< set append — only genuinely new tuples (seminaive)
  kUnionByUpdate,  ///< ⊎: update matched tuples in place (noninflationary)
};

const char* UnionModeName(UnionMode m);

/// One `as`-defined relation inside a `computed by` block. Definitions are
/// evaluated in order; each may reference base tables, the recursive
/// relation (previous iteration), and earlier definitions (current
/// iteration). The chain must be cycle-free (Section 6).
struct ComputedByDef {
  std::string name;
  PlanPtr plan;
};

/// One subquery of the with+ body.
struct Subquery {
  PlanPtr plan;
  std::vector<ComputedByDef> computed_by;
};

/// A full with+ statement.
struct WithPlusQuery {
  std::string rec_name;                  ///< the single recursive relation
  ra::Schema rec_schema;
  std::vector<Subquery> init;            ///< non-recursive subqueries
  std::vector<Subquery> recursive;       ///< recursive subqueries
  UnionMode mode = UnionMode::kUnionAll;
  /// union-by-update key attributes; empty = replace R wholesale.
  std::vector<std::string> update_keys;
  /// physical ⊎ implementation (paper settles on full outer join, Exp-1).
  UnionByUpdateImpl ubu_impl = UnionByUpdateImpl::kFullOuterJoin;
  /// iteration cap (SQL-Server-style query hint); 0 = unbounded.
  int maxrecursion = 0;
  /// degree of parallelism for the ra operators (the SQL `parallel N`
  /// hint); 0 = inherit the profile's setting, 1 = serial. DOP > 1 is
  /// guaranteed to produce results identical to DOP = 1
  /// (docs/performance.md).
  int degree_of_parallelism = 0;
  /// Cross-iteration plan-state cache (the SQL `cache on|off` option):
  /// -1 = inherit the profile's plan_cache setting, 0 = off, 1 = on.
  /// Results are guaranteed identical either way.
  int plan_cache = -1;
  /// Plan facts (the SQL `facts on|off` option): static dataflow analyses
  /// whose proofs the executor acts on (analysis/dataflow.h).
  /// -1 = inherit the profile's plan_facts setting, 0 = off, 1 = on.
  /// Results are guaranteed identical either way.
  int plan_facts = -1;
  /// CSR SpMV/SpMM kernels behind MV/MM-join (the SQL `kernels on|off`
  /// option, ra/csr.h): -1 = inherit the profile's csr_kernels setting,
  /// 0 = off, 1 = on. Pure physical tuning — results are guaranteed
  /// row-identical either way.
  int csr_kernels = -1;
  /// Vectorized batch execution (the SQL `vectorize on|off` option,
  /// ra/vectorized.h): -1 = inherit the profile's vectorized setting,
  /// 0 = off, 1 = on. Pure physical tuning — results are guaranteed
  /// row-identical either way.
  int vectorized = -1;
  /// when false, skip the XY-stratification gate (for ablation only).
  bool check_stratification = true;
  /// SQL'99 working-table semantics (union all / union modes only): the
  /// recursive subqueries see the tuples produced by the previous
  /// iteration, not the whole accumulated relation — how PostgreSQL/DB2/
  /// Oracle actually evaluate a recursive CTE (and why union-all TC
  /// terminates on DAGs there). Default (false) is the paper's
  /// "algebra + while" reading where R is the full relation.
  bool sql99_working_table = false;

  /// Execution-governance knobs (docs/robustness.md). All-zero limits, a
  /// null token, and an empty fault spec keep the run ungoverned (the
  /// zero-overhead fast path). A violation fails the query with
  /// DeadlineExceeded / ResourceExhausted / Cancelled carrying
  /// partial-progress metadata; all temporaries are dropped either way.
  exec::ExecLimits governor;
  /// Cooperative cancellation: keep a copy of this token (after
  /// CancellationToken::Create()) and RequestCancel() from anywhere.
  exec::CancellationToken cancel;
  /// Fault-injection spec (exec::FaultInjector); "" consults the
  /// GPR_FAULTS environment variable, "none" disables injection.
  std::string fault_spec;

  /// Checkpoint/resume (core/checkpoint.h, docs/robustness.md) -------

  /// Snapshot the fixpoint state every N completed iterations (the SQL
  /// `checkpoint every N` option): -1 = inherit the profile's
  /// checkpoint_every, 0 = off, N > 0 = every N iterations. A governor
  /// trip or injected fault then carries the latest snapshot's token in
  /// its ProgressDetail (ExecProgress::resume_token).
  int checkpoint_every = -1;
  /// Resume token from a previous interrupted run of this same query.
  /// Non-empty = restore the snapshot and continue the fixpoint from it
  /// instead of re-running the initial subqueries and completed
  /// iterations. Unknown tokens fail with NotFound.
  std::string resume_from;
  /// Snapshot store; nullptr = CheckpointStore::Default(). Tests inject
  /// a private store to keep runs isolated.
  CheckpointStore* checkpoint_store = nullptr;
};

/// Wall-clock and cardinality record of one fixpoint iteration — the raw
/// series behind Figs 12 and 13.
struct IterationStats {
  double millis = 0;
  size_t rec_rows = 0;    ///< |R| after the iteration
  size_t delta_rows = 0;  ///< tuples produced by the recursive subqueries
};

struct WithPlusResult {
  ra::Table table;
  size_t iterations = 0;
  bool converged = false;  ///< true if a fixpoint was reached (vs. cap hit)
  std::vector<IterationStats> iters;
  ExecCounters counters;
  /// Warning-severity diagnostics the pre-execution static analysis gate
  /// reported (0 when the gate is disabled by the profile). Errors never
  /// reach here — they fail ExecuteWithPlus before the fixpoint starts.
  size_t gate_warnings = 0;
};

/// Validates `query` (single recursive relation, cycle-free computed-by,
/// union-by-update restrictions, XY-stratification) and runs the fixpoint.
///
/// Base tables are read from `catalog`; all temporaries created during
/// execution are dropped before returning. `seed` feeds rand() (MIS).
Result<WithPlusResult> ExecuteWithPlus(const WithPlusQuery& query,
                                       ra::Catalog& catalog,
                                       const EngineProfile& profile,
                                       uint64_t seed = 42);

/// Static validation only (the checks Algorithm 1 performs before creating
/// the PSM procedure). Exposed separately for tests and the REPL.
Status ValidateWithPlus(const WithPlusQuery& query);

}  // namespace gpr::core
