#include "exec/exec_context.h"

#include <sstream>

namespace gpr::exec {

std::string ProgressDetail::ToString() const {
  std::ostringstream os;
  os << "progress: iterations=" << progress_.iterations
     << " rows=" << progress_.rows_produced
     << " bytes=" << progress_.bytes_produced
     << " checkpoints=" << progress_.checkpoints;
  if (!progress_.tripped.empty()) os << " tripped=" << progress_.tripped;
  return os.str();
}

const ProgressDetail* ProgressDetail::FromStatus(const Status& s) {
  const auto& d = s.detail();
  if (d == nullptr || std::string(d->type_id()) != kTypeId) return nullptr;
  return static_cast<const ProgressDetail*>(d.get());
}

Status ExecContext::Trip(StatusCode code, const char* budget,
                         const char* site, std::string why) {
  progress_.tripped = budget;
  Status st(code, std::move(why) + " (at operator '" + site + "')");
  return std::move(st).WithDetail(
      std::make_shared<ProgressDetail>(progress_));
}

Status ExecContext::Checkpoint(const char* site) {
  ++progress_.checkpoints;
  if (faults_.has_value()) {
    Status injected = faults_->OnCheckpoint(site, cancel_);
    if (!injected.ok()) return injected;
  }
  return Poll(site);
}

Status ExecContext::Poll(const char* site) {
  if (cancel_.cancel_requested()) {
    return Trip(StatusCode::kCancelled, "cancelled", site,
                "execution cancelled");
  }
  if (limits_.deadline_ms > 0) {
    const double elapsed = timer_.ElapsedMillis();
    if (elapsed > limits_.deadline_ms) {
      std::ostringstream os;
      os << "deadline of " << limits_.deadline_ms << " ms exceeded after "
         << elapsed << " ms";
      return Trip(StatusCode::kDeadlineExceeded, "deadline", site, os.str());
    }
  }
  return Status::OK();
}

Status ExecContext::ChargeRows(const char* site, uint64_t rows,
                               uint64_t bytes) {
  progress_.rows_produced += rows;
  progress_.bytes_produced += bytes;
  if (limits_.row_budget > 0 && progress_.rows_produced > limits_.row_budget) {
    return Trip(StatusCode::kResourceExhausted, "rows", site,
                "row budget of " + std::to_string(limits_.row_budget) +
                    " exhausted (" +
                    std::to_string(progress_.rows_produced) +
                    " rows materialized)");
  }
  if (limits_.byte_budget > 0 &&
      progress_.bytes_produced > limits_.byte_budget) {
    return Trip(StatusCode::kResourceExhausted, "bytes", site,
                "byte budget of " + std::to_string(limits_.byte_budget) +
                    " exhausted (~" +
                    std::to_string(progress_.bytes_produced) +
                    " bytes materialized)");
  }
  return Status::OK();
}

Status ExecContext::CheckIteration(uint64_t completed) {
  progress_.iterations = completed;
  if (limits_.iteration_cap > 0 &&
      completed >= static_cast<uint64_t>(limits_.iteration_cap)) {
    return Trip(StatusCode::kResourceExhausted, "iterations", "iteration",
                "iteration cap of " +
                    std::to_string(limits_.iteration_cap) +
                    " reached without convergence");
  }
  return Checkpoint("iteration");
}

Result<std::optional<ExecContext>> MakeGovernor(
    const ExecLimits& limits, const CancellationToken& cancel,
    const std::string& fault_spec) {
  std::optional<FaultInjector> injector;
  if (fault_spec == "none") {
    // Explicitly ungoverned injection: ignore the environment too.
  } else if (!fault_spec.empty()) {
    GPR_ASSIGN_OR_RETURN(FaultInjector fi,
                         FaultInjector::FromSpec(fault_spec));
    injector = std::move(fi);
  } else {
    GPR_ASSIGN_OR_RETURN(std::optional<FaultInjector> fi,
                         FaultInjector::FromEnv());
    injector = std::move(fi);
  }
  if (!limits.Any() && !cancel.valid() && !injector.has_value()) {
    return std::optional<ExecContext>();  // ungoverned fast path
  }
  return std::optional<ExecContext>(
      ExecContext(limits, cancel, std::move(injector)));
}

}  // namespace gpr::exec
