#include "exec/exec_context.h"

#include <cstdlib>
#include <sstream>

namespace gpr::exec {

std::string ProgressDetail::ToString() const {
  std::ostringstream os;
  os << "progress: iterations=" << progress_.iterations
     << " rows=" << progress_.rows_produced
     << " bytes=" << progress_.bytes_produced
     << " checkpoints=" << progress_.checkpoints;
  if (!progress_.tripped.empty()) {
    // The post-mortem fields: which budget stopped the run, how far it
    // got, and whether a checkpoint exists to resume from.
    os << " tripped=" << progress_.tripped
       << " last_completed_iteration=" << progress_.iterations
       << " resumable=" << (progress_.resume_token.empty() ? "no" : "yes");
  }
  if (!progress_.resume_token.empty()) {
    os << " resume_token=" << progress_.resume_token;
  }
  return os.str();
}

const ProgressDetail* ProgressDetail::FromStatus(const Status& s) {
  const auto& d = s.detail();
  if (d == nullptr || std::string(d->type_id()) != kTypeId) return nullptr;
  return static_cast<const ProgressDetail*>(d.get());
}

ExecContext::ExecContext(ExecContext&& other) noexcept
    : limits_(other.limits_),
      cancel_(std::move(other.cancel_)),
      faults_(std::move(other.faults_)),
      timer_(other.timer_),
      iterations_(other.iterations_.load(std::memory_order_relaxed)),
      rows_produced_(other.rows_produced_.load(std::memory_order_relaxed)),
      bytes_produced_(other.bytes_produced_.load(std::memory_order_relaxed)),
      checkpoints_(other.checkpoints_.load(std::memory_order_relaxed)) {
  // Guarded-member access is safe without other.trip_mu_ here: moves only
  // happen while the governor is being set up (see the header), strictly
  // before any worker can alias `other`.
  tripped_ = std::move(other.tripped_);
  resume_token_ = std::move(other.resume_token_);
}

ExecContext& ExecContext::operator=(ExecContext&& other) noexcept {
  limits_ = other.limits_;
  cancel_ = std::move(other.cancel_);
  faults_ = std::move(other.faults_);
  timer_ = other.timer_;
  iterations_.store(other.iterations_.load(std::memory_order_relaxed),
                    std::memory_order_relaxed);
  rows_produced_.store(other.rows_produced_.load(std::memory_order_relaxed),
                       std::memory_order_relaxed);
  bytes_produced_.store(other.bytes_produced_.load(std::memory_order_relaxed),
                        std::memory_order_relaxed);
  checkpoints_.store(other.checkpoints_.load(std::memory_order_relaxed),
                     std::memory_order_relaxed);
  {
    // Setup-only like the move constructor, but assignment runs on fully
    // constructed objects, so take both locks and let the analysis check
    // it instead of exempting the access.
    MutexLock other_lock(other.trip_mu_);
    MutexLock my_lock(trip_mu_);
    tripped_ = std::move(other.tripped_);
    resume_token_ = std::move(other.resume_token_);
  }
  return *this;
}

ExecProgress ExecContext::progress() const {
  ExecProgress p;
  p.iterations = iterations_.load(std::memory_order_relaxed);
  p.rows_produced = rows_produced_.load(std::memory_order_relaxed);
  p.bytes_produced = bytes_produced_.load(std::memory_order_relaxed);
  p.checkpoints = checkpoints_.load(std::memory_order_relaxed);
  MutexLock lock(trip_mu_);
  p.tripped = tripped_;
  p.resume_token = resume_token_;
  return p;
}

void ExecContext::set_resume_token(std::string token) {
  MutexLock lock(trip_mu_);
  resume_token_ = std::move(token);
}

Status ExecContext::Trip(StatusCode code, const char* budget,
                         const char* site, std::string why) {
  {
    // First trip wins the `tripped` label; racing workers still fail with
    // their own cause, so no violation is ever silently swallowed.
    MutexLock lock(trip_mu_);
    if (tripped_.empty()) tripped_ = budget;
  }
  ExecProgress snapshot = progress();
  snapshot.tripped = budget;
  Status st(code, std::move(why) + " (at operator '" + site + "')");
  return std::move(st).WithDetail(
      std::make_shared<ProgressDetail>(std::move(snapshot)));
}

Status ExecContext::Checkpoint(const char* site) {
  checkpoints_.fetch_add(1, std::memory_order_relaxed);
  if (faults_.has_value()) {
    Status injected = faults_->OnCheckpoint(site, cancel_);
    if (!injected.ok()) {
      // Injected faults carry the same ProgressDetail as governor trips so
      // callers (exec::RetryState + resume_from) can classify and resume
      // them without special-casing the failure source.
      {
        MutexLock lock(trip_mu_);
        if (tripped_.empty()) tripped_ = "fault";
      }
      ExecProgress snapshot = progress();
      snapshot.tripped = "fault";
      return std::move(injected).WithDetail(
          std::make_shared<ProgressDetail>(std::move(snapshot)));
    }
  }
  return Poll(site);
}

Status ExecContext::Poll(const char* site) {
  if (cancel_.cancel_requested()) {
    return Trip(StatusCode::kCancelled, "cancelled", site,
                "execution cancelled");
  }
  if (limits_.deadline_ms > 0) {
    const double elapsed = timer_.ElapsedMillis();
    if (elapsed > limits_.deadline_ms) {
      std::ostringstream os;
      os << "deadline of " << limits_.deadline_ms << " ms exceeded after "
         << elapsed << " ms";
      return Trip(StatusCode::kDeadlineExceeded, "deadline", site, os.str());
    }
  }
  return Status::OK();
}

Status ExecContext::ChargeRows(const char* site, uint64_t rows,
                               uint64_t bytes) {
  const uint64_t total_rows =
      rows_produced_.fetch_add(rows, std::memory_order_relaxed) + rows;
  const uint64_t total_bytes =
      bytes_produced_.fetch_add(bytes, std::memory_order_relaxed) + bytes;
  if (limits_.row_budget > 0 && total_rows > limits_.row_budget) {
    return Trip(StatusCode::kResourceExhausted, "rows", site,
                "row budget of " + std::to_string(limits_.row_budget) +
                    " exhausted (" + std::to_string(total_rows) +
                    " rows materialized)");
  }
  if (limits_.byte_budget > 0 && total_bytes > limits_.byte_budget) {
    return Trip(StatusCode::kResourceExhausted, "bytes", site,
                "byte budget of " + std::to_string(limits_.byte_budget) +
                    " exhausted (~" + std::to_string(total_bytes) +
                    " bytes materialized)");
  }
  return Status::OK();
}

Status ExecContext::CheckIteration(uint64_t completed) {
  iterations_.store(completed, std::memory_order_relaxed);
  if (limits_.iteration_cap > 0 &&
      completed >= static_cast<uint64_t>(limits_.iteration_cap)) {
    return Trip(StatusCode::kResourceExhausted, "iterations", "iteration",
                "iteration cap of " +
                    std::to_string(limits_.iteration_cap) +
                    " reached without convergence");
  }
  return Checkpoint("iteration");
}

Result<std::optional<ExecContext>> MakeGovernor(
    const ExecLimits& limits, const CancellationToken& cancel,
    const std::string& fault_spec) {
  std::optional<FaultInjector> injector;
  if (fault_spec == "none") {
    // Explicitly ungoverned injection: ignore the environment too.
  } else if (!fault_spec.empty()) {
    GPR_ASSIGN_OR_RETURN(FaultInjector fi,
                         FaultInjector::FromSpec(fault_spec));
    injector = std::move(fi);
  } else {
    GPR_ASSIGN_OR_RETURN(std::optional<FaultInjector> fi,
                         FaultInjector::FromEnv());
    injector = std::move(fi);
  }
  if (!limits.Any() && !cancel.valid() && !injector.has_value()) {
    return std::optional<ExecContext>();  // ungoverned fast path
  }
  return std::optional<ExecContext>(
      ExecContext(limits, cancel, std::move(injector)));
}

size_t ResolvePollInterval(int configured) {
  const char* env = std::getenv("GPR_POLL_INTERVAL");
  if (env != nullptr && *env != '\0') {
    char* end = nullptr;
    const long v = std::strtol(env, &end, 10);
    if (end != env && v > 0) return static_cast<size_t>(v);
  }
  return configured > 0 ? static_cast<size_t>(configured) : 8192;
}

size_t ResolveMinParallelRows(int configured) {
  const char* env = std::getenv("GPR_MIN_PARALLEL_ROWS");
  if (env != nullptr && *env != '\0') {
    char* end = nullptr;
    const long v = std::strtol(env, &end, 10);
    if (end != env && v >= 0) return static_cast<size_t>(v);
  }
  return configured >= 0 ? static_cast<size_t>(configured) : 8192;
}

}  // namespace gpr::exec
