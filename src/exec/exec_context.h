// The execution governor: resource budgets, deadlines, cooperative
// cancellation, and fault injection for the with+ fixpoint engines.
//
// A production RDBMS never runs an unbounded recursive query without
// statement timeouts and resource governance. ExecContext supplies that
// layer for the "algebra + while" executors: it carries a wall-clock
// deadline, a row/byte budget over materialized intermediates, an
// iteration cap, and a cancellation token, and is consulted
//
//   * at every operator boundary of the plan executor
//     (ExecContext::Checkpoint + ChargeRows, via core::ExecutePlan),
//   * once per fixpoint iteration (ExecContext::CheckIteration, by
//     core::CallProcedure and core::ExecuteMutual),
//   * and — sampled every few thousand rows — inside the long row loops of
//     the ra operators (ExecContext::Poll, via ra::EvalContext::exec).
//
// A violation returns Status::DeadlineExceeded / ResourceExhausted /
// Cancelled carrying a ProgressDetail payload (iterations completed, rows
// and bytes produced, which budget tripped) — never an abort. Catalog
// hygiene on those paths is guaranteed by ra::TempTableScope.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <optional>
#include <string>

#include "exec/fault_injector.h"
#include "util/mutex.h"
#include "util/status.h"
#include "util/thread_annotations.h"
#include "util/timer.h"

namespace gpr::exec {

/// Resource limits; 0 means "unbounded" for every field.
struct ExecLimits {
  /// Wall-clock budget, measured from ExecContext construction.
  double deadline_ms = 0;
  /// Total rows materialized by operators (scans are borrowed, not
  /// counted; a row flowing through k materializing operators costs k).
  uint64_t row_budget = 0;
  /// Estimated bytes materialized (rows × columns × slot size).
  uint64_t byte_budget = 0;
  /// Fixpoint iterations; unlike the `maxrecursion` hint — which stops
  /// quietly and returns the partial result — tripping this cap is an
  /// error (ResourceExhausted).
  int iteration_cap = 0;

  bool Any() const {
    return deadline_ms > 0 || row_budget > 0 || byte_budget > 0 ||
           iteration_cap > 0;
  }
};

/// Shared cooperative-cancellation handle. Copies alias the same flag; the
/// default-constructed token is null ("cancellation not possible"), which
/// lets the engines skip governance entirely when no knob is set.
class CancellationToken {
 public:
  CancellationToken() = default;
  static CancellationToken Create() {
    CancellationToken t;
    t.flag_ = std::make_shared<std::atomic<bool>>(false);
    return t;
  }

  bool valid() const { return flag_ != nullptr; }
  /// No-op on a null token.
  void RequestCancel() const {
    if (flag_) flag_->store(true, std::memory_order_relaxed);
  }
  /// False on a null token.
  bool cancel_requested() const {
    return flag_ && flag_->load(std::memory_order_relaxed);
  }

 private:
  std::shared_ptr<std::atomic<bool>> flag_;
};

/// Partial-progress record carried by governor failures.
struct ExecProgress {
  uint64_t iterations = 0;      ///< fixpoint iterations completed
  uint64_t rows_produced = 0;   ///< rows materialized by operators
  uint64_t bytes_produced = 0;  ///< estimated bytes materialized
  uint64_t checkpoints = 0;     ///< operator boundaries crossed
  std::string tripped;          ///< which budget tripped ("deadline",
                                ///< "rows", "bytes", "iterations",
                                ///< "cancelled"); empty while healthy
  /// Resume token of the last fixpoint checkpoint the engine published
  /// (core::CheckpointStore); empty when checkpointing is off or no
  /// iteration completed a snapshot yet. Passing it back through
  /// WithPlusQuery::resume_from continues the fixpoint from that state.
  std::string resume_token;
};

/// StatusDetail payload attaching ExecProgress to a governor Status.
class ProgressDetail : public StatusDetail {
 public:
  static constexpr const char* kTypeId = "gpr.exec.progress";

  explicit ProgressDetail(ExecProgress progress)
      : progress_(std::move(progress)) {}

  const char* type_id() const override { return kTypeId; }
  std::string ToString() const override;
  const ExecProgress& progress() const { return progress_; }

  /// Downcasts the detail of `s`, or nullptr when absent / another type.
  static const ProgressDetail* FromStatus(const Status& s);

 private:
  ExecProgress progress_;
};

/// Thread-safety: the counters are atomic and Trip serializes through a
/// mutex, so Poll and ChargeRows may be called concurrently from morsel
/// workers (exec::ThreadPool). Checkpoint / CheckIteration — the sites
/// where FaultInjector fires — are only ever reached from the engine's
/// coordinating thread, which keeps injected-fault sequences deterministic
/// under any degree of parallelism.
class ExecContext {
 public:
  /// Unbounded, uncancellable, fault-free (still counts progress).
  ExecContext() : ExecContext(ExecLimits{}, CancellationToken::Create()) {}

  /// `cancel` may be a null token; one is created internally so that
  /// fault-injected cancellation (cancel:<n>) always has a flag to flip.
  explicit ExecContext(ExecLimits limits,
                       CancellationToken cancel = CancellationToken(),
                       std::optional<FaultInjector> faults = std::nullopt)
      : limits_(limits),
        cancel_(cancel.valid() ? cancel : CancellationToken::Create()),
        faults_(std::move(faults)) {}

  /// Moves happen only while the governor is being set up (MakeGovernor
  /// returns through Result), strictly before any worker can touch it.
  ExecContext(ExecContext&& other) noexcept;
  ExecContext& operator=(ExecContext&& other) noexcept;

  /// Operator-boundary check: fault injection, cancellation, deadline.
  Status Checkpoint(const char* site);

  /// Accounts `rows`/`bytes` of materialized output against the budgets.
  Status ChargeRows(const char* site, uint64_t rows, uint64_t bytes);

  /// Fixpoint-iteration check; `completed` is the engine's count of fully
  /// finished iterations (recorded as progress and checked against the
  /// iteration cap).
  Status CheckIteration(uint64_t completed);

  /// Cheap mid-operator poll (cancellation + deadline only — no fault
  /// injection, so injected-fault determinism is independent of row
  /// counts). Callers sample it every few thousand rows.
  Status Poll(const char* site);

  const ExecLimits& limits() const { return limits_; }
  /// Snapshot of the counters (by value — the live fields keep moving
  /// under parallel execution).
  ExecProgress progress() const;
  /// Publishes the latest checkpoint's resume token; any later trip
  /// carries it in its ProgressDetail. Called from the engine's
  /// coordinating thread only (like Checkpoint / CheckIteration).
  void set_resume_token(std::string token);
  const CancellationToken& cancel_token() const { return cancel_; }
  FaultInjector* faults() {
    return faults_.has_value() ? &*faults_ : nullptr;
  }

 private:
  /// Builds the governed failure for `budget`, attaching ProgressDetail.
  /// Concurrent trips all fail, but `tripped` records the first cause.
  Status Trip(StatusCode code, const char* budget, const char* site,
              std::string why);

  ExecLimits limits_;
  CancellationToken cancel_;
  std::optional<FaultInjector> faults_;
  WallTimer timer_;
  // Memory-order contract: the four progress counters are plain tallies —
  // no worker publishes data through them and no decision orders against
  // another thread's increment, so every access is relaxed. Cross-thread
  // ordering of the *results* workers produce is provided elsewhere
  // (ThreadPool::Batch::finished acquire/release); a progress() snapshot
  // is explicitly approximate while workers are still running. The
  // cancellation flag (CancellationToken) is relaxed for the same reason:
  // it only requests a stop, it transports no data.
  std::atomic<uint64_t> iterations_{0};
  std::atomic<uint64_t> rows_produced_{0};
  std::atomic<uint64_t> bytes_produced_{0};
  std::atomic<uint64_t> checkpoints_{0};
  mutable Mutex trip_mu_;
  /// First budget to trip ("deadline", "rows", ...); empty while healthy.
  std::string tripped_ GPR_GUARDED_BY(trip_mu_);
  /// Latest published checkpoint token; empty = nothing to resume from.
  std::string resume_token_ GPR_GUARDED_BY(trip_mu_);
};

/// Governor poll interval (rows between mid-operator Poll()s): the
/// GPR_POLL_INTERVAL environment variable when set to a positive integer,
/// else `configured` (EngineProfile::governor_poll_interval), else the
/// 8192-row default. Always >= 1.
size_t ResolvePollInterval(int configured);

/// Parallel-admission threshold (rows below which an input runs serial
/// at any DOP — exec::AdmittedDop): the GPR_MIN_PARALLEL_ROWS
/// environment variable when set to a non-negative integer, else
/// `configured` (EngineProfile::parallel_min_rows) when non-negative,
/// else the 8192-row default. 0 admits every input.
size_t ResolveMinParallelRows(int configured);

/// Builds the governor for one query execution: nullopt when ungoverned
/// (no limits, null token, no fault spec — the zero-overhead fast path).
/// `fault_spec` "" consults GPR_FAULTS; "none" disables injection.
Result<std::optional<ExecContext>> MakeGovernor(
    const ExecLimits& limits, const CancellationToken& cancel,
    const std::string& fault_spec);

}  // namespace gpr::exec
