#include "exec/fault_injector.h"

#include <cstdlib>

#include "exec/exec_context.h"
#include "util/string_util.h"

namespace gpr::exec {

Result<FaultInjector> FaultInjector::FromSpec(const std::string& spec) {
  FaultInjector fi;
  fi.spec_ = spec;
  for (const std::string& raw : Split(spec, ',')) {
    const std::string entry(Trim(raw));
    if (entry.empty()) continue;
    const auto parts = Split(entry, ':');
    if (parts.size() < 2 || parts.size() > 3 || parts[0].empty() ||
        parts[1].empty()) {
      return Status::InvalidArgument(
          "fault spec entry '" + entry +
          "' is not of the form <site>:<n>[:<class>] (spec '" + spec +
          "')");
    }
    const std::string key = ToLower(std::string(Trim(parts[0])));
    const std::string val(Trim(parts[1]));
    // Optional third part: the fault class, permanent (default) or
    // transient. Cancel/seed directives take no class.
    bool transient = false;
    if (parts.size() == 3) {
      const std::string cls = ToLower(std::string(Trim(parts[2])));
      if (key == "cancel" || key == "seed") {
        return Status::InvalidArgument("fault spec entry '" + entry +
                                       "' does not take a fault class");
      }
      if (cls == "transient") {
        transient = true;
      } else if (cls != "permanent") {
        return Status::InvalidArgument(
            "fault class in '" + entry +
            "' must be 'transient' or 'permanent'");
      }
    }
    char* end = nullptr;
    const double num = std::strtod(val.c_str(), &end);
    if (end == val.c_str() || *end != '\0' || num < 0) {
      return Status::InvalidArgument("fault spec entry '" + entry +
                                     "' needs a non-negative number");
    }
    if (key == "rate") {
      if (num > 100) {
        return Status::InvalidArgument(
            "fault rate is a percentage; got " + val);
      }
      fi.rate_percent_ = num;
      fi.rate_transient_ = transient;
    } else if (key == "seed") {
      fi.seed_ = static_cast<uint64_t>(num);
    } else {
      if (num < 1 || num != static_cast<uint64_t>(num)) {
        return Status::InvalidArgument(
            "fault spec entry '" + entry +
            "' needs a positive integer checkpoint count");
      }
      Directive d;
      d.site = key == "cancel" ? "any" : key;
      d.nth = static_cast<uint64_t>(num);
      d.cancel = key == "cancel";
      d.transient = transient;
      fi.directives_.push_back(std::move(d));
    }
  }
  if (fi.rate_percent_ > 0) fi.rng_.emplace(fi.seed_);
  return fi;
}

Result<std::optional<FaultInjector>> FaultInjector::FromEnv() {
  const char* env = std::getenv("GPR_FAULTS");
  if (env == nullptr || *env == '\0' || std::string(env) == "none") {
    return std::optional<FaultInjector>();
  }
  GPR_ASSIGN_OR_RETURN(FaultInjector fi, FromSpec(env));
  return std::optional<FaultInjector>(std::move(fi));
}

Status FaultInjector::OnCheckpoint(const char* site,
                                   const CancellationToken& token) {
  ++total_;
  const uint64_t site_count = ++site_hits_[site];
  for (const Directive& d : directives_) {
    const uint64_t count = d.site == "any" ? total_ : site_count;
    const bool match = (d.site == "any" || d.site == site) && count == d.nth;
    if (!match) continue;
    if (d.cancel) {
      token.RequestCancel();
      continue;  // the governor's next poll observes the flag
    }
    ++injected_;
    return Injected(d.transient,
                    "injected fault at operator '" + std::string(site) +
                        "' (" + d.site + " checkpoint #" +
                        std::to_string(d.nth) + ", spec '" + spec_ + "')");
  }
  if (rate_percent_ > 0 && rng_.has_value() &&
      rng_->NextDouble() * 100.0 < rate_percent_) {
    ++injected_;
    return Injected(rate_transient_,
                    "injected fault at operator '" + std::string(site) +
                        "' (seeded rate " + std::to_string(rate_percent_) +
                        "%, seed " + std::to_string(seed_) +
                        ", checkpoint #" + std::to_string(total_) + ")");
  }
  return Status::OK();
}

Status FaultInjector::Injected(bool transient, std::string msg) {
  return transient ? Status::Unavailable(std::move(msg))
                   : Status::ExecutionError(std::move(msg));
}

uint64_t FaultInjector::hits(const std::string& site) const {
  auto it = site_hits_.find(site);
  return it == site_hits_.end() ? 0 : it->second;
}

}  // namespace gpr::exec
