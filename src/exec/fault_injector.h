// Deterministic fault injection at operator boundaries.
//
// The execution governor (exec_context.h) consults a FaultInjector at every
// operator checkpoint; the injector decides — from a fully deterministic,
// user-supplied spec — whether to force a Status failure (simulating an
// operator error) or to flip the cooperative cancellation token. Tests use
// it to prove that every error path of the with+ fixpoint engines
// propagates cleanly and leaks no catalog state.
//
// Spec grammar (comma-separated directives; counts are 1-based):
//
//   <site>:<n>    fail the n-th checkpoint at operator site <site>
//                 (sites are the snake_case PlanKind names — "anti_join",
//                 "join", "scan", ... — plus "iteration" for fixpoint
//                 passes [core::PlanKindSite] and the I/O sites "io_open",
//                 "io_read", "io_write", "io_fsync", "io_rename" consulted
//                 by ra/table_io)
//   any:<n>       fail the n-th checkpoint overall, whatever the site
//   cancel:<n>    at the n-th checkpoint overall, request cooperative
//                 cancellation instead of failing (deterministic mid-run
//                 cancellation for tests)
//   rate:<p>      fail each checkpoint with probability p percent, drawn
//                 from a seeded generator (deterministic for a fixed seed
//                 and execution order)
//   seed:<s>      seed for rate-based injection (default 42)
//
// A site/any/rate directive may carry a fault class as a third part:
// ":permanent" (the default — an ExecutionError, never retried) or
// ":transient" (an Unavailable, the class exec::RetryPolicy classifies as
// retryable). Example: "join:2:transient".
//
// Example: GPR_FAULTS="anti_join:3,rate:0.5,seed:7"
//
// The spec comes either from the query (WithPlusQuery::fault_spec) or,
// when that is empty, from the GPR_FAULTS environment variable; the
// literal spec "none" disables injection including the environment.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "util/rng.h"
#include "util/status.h"

namespace gpr::exec {

class CancellationToken;

class FaultInjector {
 public:
  /// Parses a spec string. Fails with InvalidArgument on malformed specs.
  static Result<FaultInjector> FromSpec(const std::string& spec);

  /// Reads GPR_FAULTS; nullopt when unset, empty, or "none".
  static Result<std::optional<FaultInjector>> FromEnv();

  /// Called by ExecContext at each operator checkpoint. Returns the
  /// injected failure when a directive matches, OK otherwise. `token` is
  /// flipped by cancel:<n> directives.
  Status OnCheckpoint(const char* site, const CancellationToken& token);

  /// Checkpoints observed at `site` so far.
  uint64_t hits(const std::string& site) const;
  uint64_t total_hits() const { return total_; }
  /// Failures injected (not counting cancel directives).
  uint64_t injected() const { return injected_; }
  const std::string& spec() const { return spec_; }

 private:
  struct Directive {
    std::string site;  ///< operator site, or "any"
    uint64_t nth = 0;  ///< 1-based checkpoint count that triggers
    bool cancel = false;
    bool transient = false;  ///< inject Unavailable instead of ExecutionError
  };

  /// Builds the injected Status for a fault of the given class.
  Status Injected(bool transient, std::string msg);

  std::string spec_;
  std::vector<Directive> directives_;
  double rate_percent_ = 0;
  bool rate_transient_ = false;
  uint64_t seed_ = 42;
  std::optional<Xoshiro256> rng_;

  std::unordered_map<std::string, uint64_t> site_hits_;
  uint64_t total_ = 0;
  uint64_t injected_ = 0;
};

}  // namespace gpr::exec
