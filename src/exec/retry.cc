#include "exec/retry.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <thread>

namespace gpr::exec {

bool RetryableStatus(const Status& s, const RetryPolicy& policy) {
  switch (s.code()) {
    case StatusCode::kUnavailable:
      return true;
    case StatusCode::kDeadlineExceeded:
    case StatusCode::kResourceExhausted:
      return policy.retry_governed;
    default:
      return false;
  }
}

bool RetryState::ShouldRetry(const Status& s) {
  ++attempts_;
  if (attempts_ >= policy_.max_attempts) return false;
  return RetryableStatus(s, policy_);
}

double RetryState::NextBackoffMs() {
  // attempts_ counts the failures so far, so the first retry uses the
  // base value. The exponential is capped before jitter so the cap is a
  // real ceiling up to the jitter fraction.
  const int exponent = std::max(0, attempts_ - 1);
  double backoff = policy_.backoff_base_ms *
                   std::pow(policy_.backoff_multiplier, exponent);
  if (policy_.backoff_cap_ms > 0) {
    backoff = std::min(backoff, policy_.backoff_cap_ms);
  }
  if (policy_.jitter_fraction > 0) {
    const double u = rng_.NextDouble();  // [0, 1)
    backoff *= 1.0 + policy_.jitter_fraction * (2.0 * u - 1.0);
  }
  return std::max(0.0, backoff);
}

void RetryState::SleepBeforeNextAttempt() {
  const double ms = NextBackoffMs();
  if (ms < 1.0) return;  // tests with base 0 never block
  std::this_thread::sleep_for(
      std::chrono::microseconds(static_cast<int64_t>(ms * 1000.0)));
}

}  // namespace gpr::exec
