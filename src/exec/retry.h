// Retry with exponential backoff for fixpoint segments (docs/robustness.md).
//
// A long-running with+ fixpoint can fail transiently — an injected
// Unavailable fault, a deadline that a less-loaded retry would make, a
// temporarily exhausted budget. RetryPolicy classifies which Status codes
// are worth retrying and RetryState paces the attempts: exponential
// backoff with deterministic seeded jitter, so two runs of the same
// chaos schedule retry at identical instants (no wall-clock or libc
// randomness — the repo's determinism invariant, GPR-C405).
//
// The retry driver is algos::RunWithPlus: on a retryable failure it pulls
// the resume token out of the ProgressDetail payload and re-executes with
// WithPlusQuery::resume_from set, so each attempt continues from the last
// checkpoint instead of repeating completed iterations.
#pragma once

#include <cstdint>

#include "util/rng.h"
#include "util/status.h"

namespace gpr::exec {

/// Knobs of one retry loop. The default (max_attempts = 1) disables
/// retrying entirely — the zero-surprise path.
struct RetryPolicy {
  /// Total attempts including the first; 1 = never retry.
  int max_attempts = 1;
  /// Backoff before retry k (1-based) is
  /// min(cap, base * multiplier^(k-1)), then jittered.
  double backoff_base_ms = 0;
  double backoff_multiplier = 2.0;
  double backoff_cap_ms = 1000;
  /// Uniform jitter of +-fraction around the exponential value, drawn
  /// from a generator seeded with jitter_seed (deterministic schedule).
  double jitter_fraction = 0.1;
  uint64_t jitter_seed = 42;
  /// Also retry governed trips (DeadlineExceeded / ResourceExhausted).
  /// Budgets are measured per attempt, so a retry genuinely restarts the
  /// clock; combined with checkpoint/resume each attempt still makes
  /// monotonic progress. Off by default — a spent budget usually means
  /// the query is too big, not unlucky.
  bool retry_governed = false;
};

/// True when `s` is worth retrying under `policy`: Unavailable (transient
/// faults) always; DeadlineExceeded / ResourceExhausted only with
/// retry_governed. Cancelled is never retryable — cancellation is intent,
/// not misfortune.
bool RetryableStatus(const Status& s, const RetryPolicy& policy);

/// Mutable state of one retry loop.
class RetryState {
 public:
  explicit RetryState(RetryPolicy policy)
      : policy_(policy), rng_(policy.jitter_seed) {}

  /// Decides whether the attempt that just failed with `s` should be
  /// retried; counts the attempt either way.
  bool ShouldRetry(const Status& s);

  /// Deterministic backoff before the next attempt, in milliseconds.
  /// Advances the jitter stream; call once per retry.
  double NextBackoffMs();

  /// NextBackoffMs + blocking sleep (skipped for sub-millisecond waits).
  void SleepBeforeNextAttempt();

  /// Attempts that have failed so far.
  int attempts() const { return attempts_; }

 private:
  RetryPolicy policy_;
  Xoshiro256 rng_;
  int attempts_ = 0;
};

}  // namespace gpr::exec
