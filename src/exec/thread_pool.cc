#include "exec/thread_pool.h"

#include <cstdlib>

namespace gpr::exec {
namespace {

/// Set while a thread executes tasks for some batch; nested RunTasks calls
/// observe it and run inline instead of waiting on the pool they occupy.
thread_local bool t_in_worker = false;

size_t DefaultPoolSize() {
  if (const char* env = std::getenv("GPR_THREADS")) {
    const long n = std::strtol(env, nullptr, 10);
    if (n >= 1) return static_cast<size_t>(n);
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

}  // namespace

ThreadPool& ThreadPool::Global() {
  static ThreadPool pool(DefaultPoolSize());
  return pool;
}

bool ThreadPool::InWorker() { return t_in_worker; }

ThreadPool::ThreadPool(size_t num_threads) {
  workers_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    MutexLock lock(mu_);
    stop_ = true;
  }
  cv_.NotifyAll();
  for (std::thread& w : workers_) w.join();
}

void ThreadPool::Drain(Batch& b) {
  while (true) {
    const size_t i = b.next.fetch_add(1, std::memory_order_relaxed);
    if (i >= b.num_tasks) return;
    // After a failure the remaining tasks are claimed but skipped, so the
    // finished counter still reaches num_tasks and the caller wakes up.
    if (!b.failed.load(std::memory_order_relaxed)) {
      Status st = (*b.fn)(i);
      if (!st.ok()) {
        MutexLock lock(b.mu);
        if (i < b.first_failed) {
          b.first_failed = i;
          b.error = std::move(st);
        }
        b.failed.store(true, std::memory_order_relaxed);
      }
    }
    if (b.finished.fetch_add(1, std::memory_order_acq_rel) + 1 ==
        b.num_tasks) {
      // Lock pairs with the caller's wait so the notification cannot slip
      // between its predicate check and its sleep.
      MutexLock lock(b.mu);
      b.cv.NotifyAll();
    }
  }
}

Status ThreadPool::RunTasks(size_t num_tasks, size_t max_claimers,
                            const TaskFn& fn) {
  if (num_tasks == 0) return Status::OK();
  // Serial fast path; also taken for nested calls from inside a worker,
  // where waiting on the pool could deadlock it.
  if (num_tasks == 1 || max_claimers <= 1 || workers_.empty() ||
      t_in_worker) {
    for (size_t i = 0; i < num_tasks; ++i) {
      GPR_RETURN_NOT_OK(fn(i));
    }
    return Status::OK();
  }

  dispatched_batches_.fetch_add(1, std::memory_order_relaxed);
  auto batch = std::make_shared<Batch>();
  batch->fn = &fn;
  batch->num_tasks = num_tasks;
  batch->max_claimers = max_claimers;
  batch->claimers.store(1, std::memory_order_relaxed);  // the caller
  {
    MutexLock lock(mu_);
    current_ = batch;
    ++generation_;
  }
  cv_.NotifyAll();

  // The caller is claimer #0 — with an empty pool this is just the serial
  // loop, and under contention it guarantees forward progress.
  t_in_worker = true;
  Drain(*batch);
  t_in_worker = false;

  {
    MutexLock lock(batch->mu);
    while (batch->finished.load(std::memory_order_acquire) !=
           batch->num_tasks) {
      batch->cv.Wait(batch->mu);
    }
  }
  // Unpublish so late-waking workers do not pick up a drained batch; any
  // worker already holding a reference keeps the Batch alive via its own
  // shared_ptr and simply finds no task left to claim.
  {
    MutexLock lock(mu_);
    if (current_ == batch) current_.reset();
  }
  MutexLock lock(batch->mu);
  return batch->first_failed == SIZE_MAX ? Status::OK()
                                         : std::move(batch->error);
}

void ThreadPool::WorkerLoop() {
  uint64_t seen_generation = 0;
  while (true) {
    std::shared_ptr<Batch> batch;
    {
      MutexLock lock(mu_);
      while (!stop_ &&
             (current_ == nullptr || generation_ == seen_generation)) {
        cv_.Wait(mu_);
      }
      if (stop_) return;
      batch = current_;
      seen_generation = generation_;
    }
    // Admission control: physical parallelism is capped at max_claimers
    // (the DOP knob); extra workers go back to sleep.
    if (batch->claimers.fetch_add(1, std::memory_order_relaxed) >=
        batch->max_claimers) {
      continue;
    }
    t_in_worker = true;
    Drain(*batch);
    t_in_worker = false;
  }
}

}  // namespace gpr::exec
