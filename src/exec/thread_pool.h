// Morsel-driven parallel execution (Leis et al., SIGMOD 2014) for the ra
// operators: a lazy, process-wide worker pool plus a task scheduler whose
// unit of work is a fixed *logical* index, not a thread.
//
// The determinism contract every caller relies on:
//
//   * Work is split into numbered tasks (morsels of ~8192 rows, hash
//     partitions, ...) whose count depends only on the input and the
//     requested degree of parallelism — never on the machine or on
//     scheduling. Workers claim task indexes from an atomic counter; each
//     task writes into its own slot, and the caller splices the slots in
//     task order. The result is therefore byte-identical to a serial run.
//   * Errors are deterministic too: when several tasks fail, RunTasks
//     reports the status of the lowest-numbered failed task, which is the
//     error the serial loop would have hit first.
//
// The pool is created on first use (`ThreadPool::Global()`), sized to
// std::thread::hardware_concurrency() (override: GPR_THREADS), and shared
// by every operator in the process, as in the paper's design — operators
// never spawn threads of their own. Nested RunTasks calls from inside a
// worker run inline on that worker, so composed operators cannot deadlock
// the pool.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <thread>
#include <vector>

#include "util/mutex.h"
#include "util/status.h"
#include "util/thread_annotations.h"

namespace gpr::exec {

class ThreadPool {
 public:
  /// A task body: receives the task index in [0, num_tasks).
  using TaskFn = std::function<Status(size_t)>;

  /// The process-wide pool, created lazily on first call. Thread count is
  /// max(1, hardware_concurrency), overridable with GPR_THREADS.
  static ThreadPool& Global();

  /// Number of pool workers (excluding callers, which also participate).
  size_t num_workers() const { return workers_.size(); }

  /// Runs `fn(i)` for every i in [0, num_tasks) and blocks until all have
  /// finished. At most `max_claimers` threads (the caller plus pool
  /// workers) execute tasks concurrently, so the physical parallelism is
  /// min(max_claimers, num_workers() + 1) — but the task decomposition,
  /// and hence the result, never depends on it.
  ///
  /// Runs entirely inline on the calling thread when num_tasks <= 1,
  /// max_claimers <= 1, or the caller is itself a pool worker (nested
  /// parallelism). Returns the status of the lowest-numbered failed task,
  /// or OK.
  Status RunTasks(size_t num_tasks, size_t max_claimers, const TaskFn& fn);

  /// True when the calling thread is one of this process's pool workers.
  static bool InWorker();

  /// Number of RunTasks calls that actually dispatched a batch to the
  /// pool (i.e. did not take the inline serial path). Monotonic,
  /// process-wide; tests use deltas of it to assert that small inputs
  /// fall back to serial execution under the admission threshold.
  uint64_t dispatched_batches() const {
    return dispatched_batches_.load(std::memory_order_relaxed);
  }

  explicit ThreadPool(size_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

 private:
  /// One RunTasks invocation. Heap-allocated and shared so that a worker
  /// waking up late (after the caller already returned) holds a valid
  /// reference and sees an exhausted task counter instead of freed memory.
  ///
  /// `fn` / `num_tasks` / `max_claimers` are written once by RunTasks
  /// before the batch is published under the pool mutex and are immutable
  /// afterwards; workers only reach the batch through that publication, so
  /// the fields are safely read lock-free (const-after-publish).
  ///
  /// Memory-order contract for the atomics:
  ///   * `next`, `claimers`: relaxed — pure tickets; no data is published
  ///     through them, claiming order is irrelevant to the result.
  ///   * `failed`: relaxed — an optimistic skip hint only; the
  ///     authoritative failure record (first_failed/error) is under `mu`.
  ///   * `finished`: release on increment / acquire on the caller's read,
  ///     so every task's writes happen-before the caller observes
  ///     finished == num_tasks and splices the output slots.
  struct Batch {
    const TaskFn* fn = nullptr;
    size_t num_tasks = 0;
    size_t max_claimers = 1;
    std::atomic<size_t> next{0};      ///< next unclaimed task index
    std::atomic<size_t> finished{0};  ///< tasks completed (or skipped)
    std::atomic<size_t> claimers{0};  ///< threads admitted so far
    std::atomic<bool> failed{false};
    Mutex mu;    ///< guards the failure record + pairs with cv
    CondVar cv;  ///< caller waits for completion here
    size_t first_failed GPR_GUARDED_BY(mu) = SIZE_MAX;
    /// Status of task `first_failed`.
    Status error GPR_GUARDED_BY(mu);
  };

  void WorkerLoop();
  /// Claims and runs tasks until the batch is drained; records failures.
  static void Drain(Batch& b);

  Mutex mu_;    ///< guards the batch-publication state below
  CondVar cv_;  ///< workers wait for a new batch here
  std::shared_ptr<Batch> current_ GPR_GUARDED_BY(mu_);
  uint64_t generation_ GPR_GUARDED_BY(mu_) = 0;
  bool stop_ GPR_GUARDED_BY(mu_) = false;
  /// Joined in the destructor; written only during construction.
  std::vector<std::thread> workers_;
  std::atomic<uint64_t> dispatched_batches_{0};
};

/// Number of ~`morsel_rows`-row morsels covering `rows` inputs; at least 1.
inline size_t NumMorsels(size_t rows, size_t morsel_rows) {
  return rows == 0 ? 1 : (rows - 1) / morsel_rows + 1;
}

/// Parallel-admission threshold: an input below `min_rows` rows runs
/// serial regardless of the requested DOP — dispatching and joining a
/// batch costs more than scanning a tiny input does (the BENCH_fixpoint
/// er-4k regression), and results are DOP-invariant either way. min_rows
/// of 0 admits everything (the TSan suites use it to keep tiny fixtures
/// on the parallel paths).
inline int AdmittedDop(size_t rows, int dop, size_t min_rows) {
  return dop > 1 && rows < min_rows ? 1 : dop;
}

}  // namespace gpr::exec
