#include "graph/datasets.h"

#include "graph/generators.h"
#include "util/string_util.h"

namespace gpr::graph {

const std::vector<DatasetSpec>& PaperDatasets() {
  // Scaled so the largest relation stays ≈1.5e5 rows: per-dataset divisors
  // chosen to preserve each graph's edge/node ratio (Table 3's "Avg.
  // Degree" column) — the property the paper's observations hinge on.
  static const std::vector<DatasetSpec> kDatasets = {
      // Undirected (maintained as directed with both edge directions).
      {"Youtube", "YT", false, 11349, 29876, 1134890, 2987624},
      {"LiveJournal", "LJ", false, 15992, 138725, 3997962, 34681189},
      {"Orkut", "OK", false, 3841, 146481, 3072441, 117185083},
      // Directed.
      {"Wiki Vote", "WV", true, 7115, 103689, 7115, 103689},  // original size
      {"Twitter", "TT", true, 4065, 88407, 81306, 1768149},
      {"Web Google", "WG", true, 14595, 85084, 875713, 5105039},
      {"Wiki Talk", "WT", true, 29930, 62767, 2394385, 5021410},
      {"Google+", "GP", true, 1076, 136734, 107614, 13673453},
      {"U.S. Patent Citation", "PC", true, 37748, 165189, 3774768, 16518948},
  };
  return kDatasets;
}

Result<DatasetSpec> DatasetByAbbrev(const std::string& abbrev) {
  const std::string want = ToUpper(abbrev);
  for (const auto& spec : PaperDatasets()) {
    if (spec.abbrev == want) return spec;
  }
  return Status::NotFound("no dataset with abbreviation '" + abbrev + "'");
}

Graph MakeDataset(const DatasetSpec& spec, double scale) {
  const auto n =
      static_cast<NodeId>(static_cast<double>(spec.nodes) * scale);
  const auto m = static_cast<size_t>(static_cast<double>(spec.edges) * scale);
  // Deterministic per-dataset seed.
  uint64_t seed = 0x9e3779b97f4a7c15ULL;
  for (char c : spec.abbrev) seed = seed * 131 + static_cast<uint64_t>(c);

  Graph g = Rmat(std::max<NodeId>(n, 2), m, seed);
  if (!spec.directed) {
    Graph sym(g.num_nodes(), DedupeEdges(Symmetrize(g.EdgeList())));
    g = std::move(sym);
  }
  AttachRandomNodeData(&g, seed ^ 0xabcdef, /*weight_lo=*/0.0,
                       /*weight_hi=*/20.0, /*num_labels=*/10);
  return g;
}

Result<Graph> MakeDatasetByAbbrev(const std::string& abbrev, double scale) {
  GPR_ASSIGN_OR_RETURN(DatasetSpec spec, DatasetByAbbrev(abbrev));
  return MakeDataset(spec, scale);
}

}  // namespace gpr::graph
