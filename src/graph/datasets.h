// The 9 evaluation datasets of Table 3 — synthetic analogues.
//
// The paper's SNAP downloads are unavailable offline, so each dataset is
// recreated as an R-MAT graph matching the original's directedness and
// edge/node ratio at a reduced scale (SCALED so the entire benchmark suite
// runs on one machine; see DESIGN.md for the substitution rationale).
// R-MAT's recursive quadrant skew reproduces the heavy-tailed degree
// distributions that drive the paper's qualitative observations — e.g.
// dense Orkut/Google+ behaving differently from sparse Wiki-Talk.
#pragma once

#include <string>
#include <vector>

#include "graph/graph.h"
#include "util/status.h"

namespace gpr::graph {

/// One row of Table 3.
struct DatasetSpec {
  std::string name;     ///< paper name ("Web Google")
  std::string abbrev;   ///< paper abbreviation ("WG")
  bool directed = true;
  NodeId nodes = 0;     ///< scaled-down node count
  size_t edges = 0;     ///< scaled-down directed edge count (before
                        ///< symmetrization of undirected graphs)
  NodeId paper_nodes = 0;  ///< original |V| from Table 3
  size_t paper_edges = 0;  ///< original |E| from Table 3
};

/// All 9 datasets in Table 3 order (YT, LJ, OK undirected; WV, TT, WG, WT,
/// GP, PC directed).
const std::vector<DatasetSpec>& PaperDatasets();

/// Lookup by abbreviation ("WG"). Case-insensitive.
Result<DatasetSpec> DatasetByAbbrev(const std::string& abbrev);

/// Materializes the dataset: R-MAT at spec.nodes/spec.edges × scale,
/// symmetrized when undirected, with random node weights in [0,20] and
/// labels (LP / KS / MNM need them). Deterministic per dataset.
Graph MakeDataset(const DatasetSpec& spec, double scale = 1.0);

/// Convenience: MakeDataset(DatasetByAbbrev(abbrev)).
Result<Graph> MakeDatasetByAbbrev(const std::string& abbrev,
                                  double scale = 1.0);

}  // namespace gpr::graph
