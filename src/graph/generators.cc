#include "graph/generators.h"

#include <algorithm>
#include <cmath>

#include "util/rng.h"

namespace gpr::graph {

Graph ErdosRenyi(NodeId n, size_t m, uint64_t seed) {
  Xoshiro256 rng(seed);
  std::vector<Edge> edges;
  edges.reserve(m);
  for (size_t i = 0; i < m; ++i) {
    const NodeId f = static_cast<NodeId>(rng.NextBounded(n));
    const NodeId t = static_cast<NodeId>(rng.NextBounded(n));
    if (f == t) continue;
    edges.push_back({f, t, 1.0});
  }
  return Graph(n, DedupeEdges(std::move(edges)));
}

Graph Rmat(NodeId n, size_t m, uint64_t seed, RmatParams params) {
  Xoshiro256 rng(seed);
  // Round n up to a power of two for the quadrant descent, then discard
  // out-of-range endpoints (keeps the degree skew, costs a few edges).
  int levels = 0;
  while ((NodeId{1} << levels) < n) ++levels;
  std::vector<Edge> edges;
  edges.reserve(m);
  const double ab = params.a + params.b;
  const double abc = ab + params.c;
  for (size_t i = 0; i < m; ++i) {
    NodeId f = 0;
    NodeId t = 0;
    for (int l = 0; l < levels; ++l) {
      const double r = rng.NextDouble();
      if (r < params.a) {
        // top-left: nothing to add
      } else if (r < ab) {
        t |= NodeId{1} << l;
      } else if (r < abc) {
        f |= NodeId{1} << l;
      } else {
        f |= NodeId{1} << l;
        t |= NodeId{1} << l;
      }
    }
    if (f >= n || t >= n || f == t) continue;
    edges.push_back({f, t, 1.0});
  }
  return Graph(n, DedupeEdges(std::move(edges)));
}

Graph RandomDag(NodeId n, size_t m, uint64_t seed) {
  Xoshiro256 rng(seed);
  // Random permutation as the topological order.
  std::vector<NodeId> order(n);
  for (NodeId i = 0; i < n; ++i) order[i] = i;
  for (NodeId i = n - 1; i > 0; --i) {
    std::swap(order[i], order[rng.NextBounded(static_cast<uint64_t>(i + 1))]);
  }
  std::vector<Edge> edges;
  edges.reserve(m);
  for (size_t i = 0; i < m; ++i) {
    NodeId a = static_cast<NodeId>(rng.NextBounded(n));
    NodeId b = static_cast<NodeId>(rng.NextBounded(n));
    if (a == b) continue;
    if (a > b) std::swap(a, b);
    edges.push_back({order[a], order[b], 1.0});
  }
  return Graph(n, DedupeEdges(std::move(edges)));
}

Graph Clustered(NodeId n, size_t m, int k, uint64_t seed,
                double intra_prob) {
  Xoshiro256 rng(seed);
  const NodeId per = n / k;
  std::vector<Edge> edges;
  edges.reserve(m);
  for (size_t i = 0; i < m; ++i) {
    if (rng.NextDouble() < intra_prob) {
      const int c = static_cast<int>(rng.NextBounded(k));
      const NodeId base = c * per;
      const NodeId span = (c == k - 1) ? n - base : per;
      const NodeId f = base + static_cast<NodeId>(rng.NextBounded(span));
      const NodeId t = base + static_cast<NodeId>(rng.NextBounded(span));
      if (f != t) edges.push_back({f, t, 1.0});
    } else {
      const NodeId f = static_cast<NodeId>(rng.NextBounded(n));
      const NodeId t = static_cast<NodeId>(rng.NextBounded(n));
      if (f != t) edges.push_back({f, t, 1.0});
    }
  }
  return Graph(n, DedupeEdges(std::move(edges)));
}

Graph DagifyByPermutation(const Graph& g, uint64_t seed) {
  Xoshiro256 rng(seed);
  std::vector<NodeId> position(g.num_nodes());
  for (NodeId i = 0; i < g.num_nodes(); ++i) position[i] = i;
  for (NodeId i = g.num_nodes() - 1; i > 0; --i) {
    std::swap(position[i],
              position[rng.NextBounded(static_cast<uint64_t>(i + 1))]);
  }
  std::vector<Edge> edges = g.EdgeList();
  for (Edge& e : edges) {
    if (position[e.from] > position[e.to]) std::swap(e.from, e.to);
  }
  Graph out(g.num_nodes(), DedupeEdges(std::move(edges)));
  if (!g.node_weights().empty()) out.set_node_weights(g.node_weights());
  if (!g.node_labels().empty()) out.set_node_labels(g.node_labels());
  return out;
}

void AttachRandomNodeData(Graph* g, uint64_t seed, double weight_lo,
                          double weight_hi, int64_t num_labels) {
  Xoshiro256 rng(seed);
  std::vector<double> weights(g->num_nodes());
  std::vector<int64_t> labels(g->num_nodes());
  for (NodeId v = 0; v < g->num_nodes(); ++v) {
    weights[v] = weight_lo + rng.NextDouble() * (weight_hi - weight_lo);
    labels[v] = static_cast<int64_t>(
        rng.NextBounded(static_cast<uint64_t>(num_labels)));
  }
  g->set_node_weights(std::move(weights));
  g->set_node_labels(std::move(labels));
}

Graph WithRandomEdgeWeights(const Graph& g, uint64_t seed, double lo,
                            double hi) {
  Xoshiro256 rng(seed);
  std::vector<Edge> edges = g.EdgeList();
  for (Edge& e : edges) e.weight = lo + rng.NextDouble() * (hi - lo);
  Graph out(g.num_nodes(), std::move(edges));
  if (!g.node_weights().empty()) {
    out.set_node_weights(g.node_weights());
  }
  if (!g.node_labels().empty()) {
    out.set_node_labels(g.node_labels());
  }
  return out;
}

}  // namespace gpr::graph
