// Synthetic graph generators.
//
// The paper evaluates on 9 SNAP datasets (Table 3) which are not available
// offline; datasets.h recreates scaled-down analogues with these generators.
// R-MAT reproduces the skewed degree distributions of social networks;
// Erdős–Rényi provides near-uniform graphs; RandomDag feeds TopoSort.
#pragma once

#include <cstdint>

#include "graph/graph.h"

namespace gpr::graph {

/// G(n, m): m directed edges drawn uniformly (no self-loops, deduped — the
/// result can have slightly fewer than m edges).
Graph ErdosRenyi(NodeId n, size_t m, uint64_t seed);

/// R-MAT generator (Chakrabarti et al.): recursive quadrant descent with
/// probabilities (a, b, c, d). Defaults are the conventional skewed setting.
struct RmatParams {
  double a = 0.57;
  double b = 0.19;
  double c = 0.19;  // d = 1 - a - b - c
};
Graph Rmat(NodeId n, size_t m, uint64_t seed, RmatParams params = {});

/// A uniformly random DAG: each edge points from a lower to a higher
/// position of a random topological order.
Graph RandomDag(NodeId n, size_t m, uint64_t seed);

/// A dense-community graph: `k` Erdős–Rényi clusters joined sparsely.
/// `intra_prob` is the probability an edge stays inside its cluster
/// (1.0 produces k disconnected communities for WCC tests).
Graph Clustered(NodeId n, size_t m, int k, uint64_t seed,
                double intra_prob = 0.95);

/// Reorients every edge along a random topological order (low position →
/// high position), turning any graph into a DAG while preserving its
/// degree structure — the TopoSort workload for Tables 6–7.
Graph DagifyByPermutation(const Graph& g, uint64_t seed);

/// Assigns uniform random node weights in [lo, hi] (paper: [0, 20] for MNM)
/// and uniform random labels in [0, num_labels) for LP / Keyword-Search.
void AttachRandomNodeData(Graph* g, uint64_t seed, double weight_lo = 0.0,
                          double weight_hi = 20.0, int64_t num_labels = 10);

/// Assigns uniform random edge weights in [lo, hi] (for SSSP/APSP).
Graph WithRandomEdgeWeights(const Graph& g, uint64_t seed, double lo = 1.0,
                            double hi = 10.0);

}  // namespace gpr::graph
