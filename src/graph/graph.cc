#include "graph/graph.h"

#include <algorithm>
#include <unordered_set>

namespace gpr::graph {

Graph::Graph(NodeId num_nodes, std::vector<Edge> edges)
    : num_nodes_(num_nodes) {
  offsets_.assign(num_nodes_ + 1, 0);
  in_offsets_.assign(num_nodes_ + 1, 0);
  for (const Edge& e : edges) {
    GPR_CHECK(e.from >= 0 && e.from < num_nodes_) << "edge from " << e.from;
    GPR_CHECK(e.to >= 0 && e.to < num_nodes_) << "edge to " << e.to;
    ++offsets_[e.from + 1];
    ++in_offsets_[e.to + 1];
  }
  for (NodeId v = 0; v < num_nodes_; ++v) {
    offsets_[v + 1] += offsets_[v];
    in_offsets_[v + 1] += in_offsets_[v];
  }
  targets_.resize(edges.size());
  weights_.resize(edges.size());
  in_targets_.resize(edges.size());
  in_weights_.resize(edges.size());
  std::vector<int64_t> out_pos(offsets_.begin(), offsets_.end() - 1);
  std::vector<int64_t> in_pos(in_offsets_.begin(), in_offsets_.end() - 1);
  for (const Edge& e : edges) {
    targets_[out_pos[e.from]] = e.to;
    weights_[out_pos[e.from]++] = e.weight;
    in_targets_[in_pos[e.to]] = e.from;
    in_weights_[in_pos[e.to]++] = e.weight;
  }
}

std::vector<Edge> Graph::EdgeList() const {
  std::vector<Edge> out;
  out.reserve(num_edges());
  for (NodeId v = 0; v < num_nodes_; ++v) {
    const auto nbrs = OutNeighbors(v);
    for (size_t i = 0; i < nbrs.size; ++i) {
      out.push_back({v, nbrs.ids[i], nbrs.weights[i]});
    }
  }
  return out;
}

std::vector<Edge> Symmetrize(std::vector<Edge> edges) {
  const size_t n = edges.size();
  edges.reserve(2 * n);
  for (size_t i = 0; i < n; ++i) {
    edges.push_back({edges[i].to, edges[i].from, edges[i].weight});
  }
  return edges;
}

std::vector<Edge> DedupeEdges(std::vector<Edge> edges) {
  std::sort(edges.begin(), edges.end(), [](const Edge& a, const Edge& b) {
    return a.from != b.from ? a.from < b.from : a.to < b.to;
  });
  std::vector<Edge> out;
  out.reserve(edges.size());
  for (const Edge& e : edges) {
    if (e.from == e.to) continue;
    if (!out.empty() && out.back().from == e.from && out.back().to == e.to) {
      continue;
    }
    out.push_back(e);
  }
  return out;
}

}  // namespace gpr::graph
