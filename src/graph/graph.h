// In-memory directed weighted graphs in CSR form.
//
// This is the substrate the native baselines (src/baseline) run on and the
// source from which the relational representation E(F,T,ew) / V(ID,vw) is
// derived (relations.h). Node ids are dense 0..n-1.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "util/logging.h"
#include "util/status.h"

namespace gpr::graph {

using NodeId = int64_t;

/// One directed edge (used while building; CSR is the query format).
struct Edge {
  NodeId from = 0;
  NodeId to = 0;
  double weight = 1.0;
};

/// Compressed-sparse-row directed graph with out- and in-adjacency.
class Graph {
 public:
  Graph() = default;

  /// Builds from an edge list over nodes 0..num_nodes-1. Parallel edges are
  /// kept (callers dedupe first if needed).
  Graph(NodeId num_nodes, std::vector<Edge> edges);

  NodeId num_nodes() const { return num_nodes_; }
  size_t num_edges() const { return targets_.size(); }

  /// Out-neighbour range of `v`: targets and weights, parallel arrays.
  struct NeighborRange {
    const NodeId* ids;
    const double* weights;
    size_t size;
    const NodeId* begin() const { return ids; }
    const NodeId* end() const { return ids + size; }
  };

  NeighborRange OutNeighbors(NodeId v) const {
    return {targets_.data() + offsets_[v], weights_.data() + offsets_[v],
            static_cast<size_t>(offsets_[v + 1] - offsets_[v])};
  }
  NeighborRange InNeighbors(NodeId v) const {
    return {in_targets_.data() + in_offsets_[v],
            in_weights_.data() + in_offsets_[v],
            static_cast<size_t>(in_offsets_[v + 1] - in_offsets_[v])};
  }

  size_t OutDegree(NodeId v) const {
    return static_cast<size_t>(offsets_[v + 1] - offsets_[v]);
  }
  size_t InDegree(NodeId v) const {
    return static_cast<size_t>(in_offsets_[v + 1] - in_offsets_[v]);
  }

  /// All edges in (from, to, weight) form (CSR order).
  std::vector<Edge> EdgeList() const;

  /// Optional per-node data -------------------------------------------

  /// Node weights (empty when unset).
  const std::vector<double>& node_weights() const { return node_weights_; }
  void set_node_weights(std::vector<double> w) {
    GPR_CHECK_EQ(static_cast<NodeId>(w.size()), num_nodes_);
    node_weights_ = std::move(w);
  }

  /// Node labels (empty when unset) — Label-Propagation / Keyword-Search.
  const std::vector<int64_t>& node_labels() const { return node_labels_; }
  void set_node_labels(std::vector<int64_t> l) {
    GPR_CHECK_EQ(static_cast<NodeId>(l.size()), num_nodes_);
    node_labels_ = std::move(l);
  }

  /// Average out-degree m/n.
  double AverageDegree() const {
    return num_nodes_ == 0
               ? 0.0
               : static_cast<double>(num_edges()) /
                     static_cast<double>(num_nodes_);
  }

 private:
  NodeId num_nodes_ = 0;
  // Out-CSR.
  std::vector<int64_t> offsets_;  // size n+1
  std::vector<NodeId> targets_;
  std::vector<double> weights_;
  // In-CSR (reverse edges).
  std::vector<int64_t> in_offsets_;
  std::vector<NodeId> in_targets_;
  std::vector<double> in_weights_;

  std::vector<double> node_weights_;
  std::vector<int64_t> node_labels_;
};

/// Adds the reverse of every edge (undirected graphs are maintained as
/// directed graphs with both directions — Section 7).
std::vector<Edge> Symmetrize(std::vector<Edge> edges);

/// Removes parallel edges and self-loops.
std::vector<Edge> DedupeEdges(std::vector<Edge> edges);

}  // namespace gpr::graph
