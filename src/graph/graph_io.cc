#include "graph/graph_io.h"

#include <fstream>
#include <sstream>
#include <unordered_map>

namespace gpr::graph {

Result<Graph> LoadEdgeList(const std::string& path, bool symmetrize) {
  std::ifstream in(path);
  if (!in) return Status::IoError("cannot open '" + path + "'");
  std::unordered_map<int64_t, NodeId> remap;
  std::vector<Edge> edges;
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '#') continue;
    std::istringstream ls(line);
    int64_t f_raw = 0;
    int64_t t_raw = 0;
    double w = 1.0;
    if (!(ls >> f_raw >> t_raw)) {
      return Status::IoError("malformed edge line: '" + line + "'");
    }
    ls >> w;  // optional
    auto intern = [&](int64_t raw) {
      auto [it, inserted] =
          remap.try_emplace(raw, static_cast<NodeId>(remap.size()));
      return it->second;
    };
    edges.push_back({intern(f_raw), intern(t_raw), w});
  }
  if (symmetrize) edges = Symmetrize(std::move(edges));
  return Graph(static_cast<NodeId>(remap.size()),
               DedupeEdges(std::move(edges)));
}

Status SaveEdgeList(const Graph& g, const std::string& path) {
  std::ofstream out(path);
  if (!out) return Status::IoError("cannot open '" + path + "' for writing");
  out << "# nodes " << g.num_nodes() << " edges " << g.num_edges() << "\n";
  for (const Edge& e : g.EdgeList()) {
    out << e.from << "\t" << e.to << "\t" << e.weight << "\n";
  }
  if (!out.good()) return Status::IoError("write to '" + path + "' failed");
  return Status::OK();
}

}  // namespace gpr::graph
