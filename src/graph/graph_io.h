// Edge-list text IO (the SNAP dataset format: "from<TAB>to" per line,
// '#' comments), so users can load real datasets when available.
#pragma once

#include <string>

#include "graph/graph.h"
#include "util/status.h"

namespace gpr::graph {

/// Loads a whitespace-separated edge list. Lines starting with '#' are
/// comments. An optional third column is the edge weight. Node ids are
/// remapped to a dense 0..n-1 range preserving first-appearance order.
Result<Graph> LoadEdgeList(const std::string& path,
                           bool symmetrize = false);

/// Writes "from\tto\tweight" lines.
Status SaveEdgeList(const Graph& g, const std::string& path);

}  // namespace gpr::graph
