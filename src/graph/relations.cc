#include "graph/relations.h"

#include <algorithm>

namespace gpr::graph {

using ra::Schema;
using ra::Table;
using ra::Value;
using ra::ValueType;

Table EdgeRelation(const Graph& g, const std::string& name) {
  Table e(name, Schema{{"F", ValueType::kInt64},
                       {"T", ValueType::kInt64},
                       {"ew", ValueType::kDouble}});
  e.Reserve(g.num_edges());
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    const auto nbrs = g.OutNeighbors(v);
    for (size_t i = 0; i < nbrs.size; ++i) {
      e.AddRow({Value(v), Value(nbrs.ids[i]), Value(nbrs.weights[i])});
    }
  }
  return e;
}

Table NodeRelation(const Graph& g, const std::string& name) {
  Table v(name,
          Schema{{"ID", ValueType::kInt64}, {"vw", ValueType::kDouble}});
  v.Reserve(g.num_nodes());
  const auto& weights = g.node_weights();
  for (NodeId i = 0; i < g.num_nodes(); ++i) {
    const double w = weights.empty() ? 0.0 : weights[i];
    v.AddRow({Value(i), Value(w)});
  }
  return v;
}

Table LabelRelation(const Graph& g, const std::string& name) {
  GPR_CHECK(!g.node_labels().empty()) << "graph has no labels attached";
  Table t(name,
          Schema{{"ID", ValueType::kInt64}, {"label", ValueType::kInt64}});
  t.Reserve(g.num_nodes());
  for (NodeId i = 0; i < g.num_nodes(); ++i) {
    t.AddRow({Value(i), Value(g.node_labels()[i])});
  }
  return t;
}

Status RegisterGraph(const Graph& g, ra::Catalog* catalog,
                     const std::string& edge_name,
                     const std::string& node_name,
                     const std::string& label_name) {
  Table e = EdgeRelation(g, edge_name);
  e.Analyze();
  GPR_RETURN_NOT_OK(catalog->CreateTable(std::move(e)));
  Table v = NodeRelation(g, node_name);
  v.Analyze();
  GPR_RETURN_NOT_OK(catalog->CreateTable(std::move(v)));
  if (!g.node_labels().empty()) {
    Table l = LabelRelation(g, label_name);
    l.Analyze();
    GPR_RETURN_NOT_OK(catalog->CreateTable(std::move(l)));
  }
  return Status::OK();
}

Result<Graph> GraphFromEdgeRelation(const ra::Table& e) {
  GPR_ASSIGN_OR_RETURN(size_t f, e.schema().Resolve("F"));
  GPR_ASSIGN_OR_RETURN(size_t t, e.schema().Resolve("T"));
  auto wcol = e.schema().IndexOf("ew");
  std::vector<Edge> edges;
  edges.reserve(e.NumRows());
  NodeId max_id = -1;
  for (const auto& row : e.rows()) {
    Edge edge;
    edge.from = row[f].ToInt64();
    edge.to = row[t].ToInt64();
    edge.weight = wcol && !row[*wcol].is_null() ? row[*wcol].ToDouble() : 1.0;
    max_id = std::max({max_id, edge.from, edge.to});
    edges.push_back(edge);
  }
  return Graph(max_id + 1, std::move(edges));
}

}  // namespace gpr::graph
