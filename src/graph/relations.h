// Conversion between graphs and their relation representation (Section 4):
// a matrix relation E(F, T, ew) and a vector relation V(ID, vw), plus the
// label relation VL(ID, label) used by Label-Propagation / Keyword-Search.
#pragma once

#include <string>

#include "graph/graph.h"
#include "ra/catalog.h"
#include "ra/table.h"
#include "util/status.h"

namespace gpr::graph {

/// E(F, T, ew) — one tuple per directed edge.
ra::Table EdgeRelation(const Graph& g, const std::string& name = "E");

/// V(ID, vw) — one tuple per node; vw from the graph's node weights
/// (0 when unset).
ra::Table NodeRelation(const Graph& g, const std::string& name = "V");

/// VL(ID, label) — one tuple per node; labels must be attached.
ra::Table LabelRelation(const Graph& g, const std::string& name = "VL");

/// Registers E and V (and VL when labels exist) in `catalog` as base
/// tables, with statistics analyzed (base tables have stats; temp tables do
/// not — the distinction the engine profiles key off).
Status RegisterGraph(const Graph& g, ra::Catalog* catalog,
                     const std::string& edge_name = "E",
                     const std::string& node_name = "V",
                     const std::string& label_name = "VL");

/// Rebuilds a Graph from an edge relation (columns F, T, ew).
Result<Graph> GraphFromEdgeRelation(const ra::Table& e);

}  // namespace gpr::graph
