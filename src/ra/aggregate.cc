#include "ra/aggregate.h"

#include "util/string_util.h"

namespace gpr::ra {

const char* AggKindName(AggKind kind) {
  switch (kind) {
    case AggKind::kSum: return "sum";
    case AggKind::kMin: return "min";
    case AggKind::kMax: return "max";
    case AggKind::kCount: return "count";
    case AggKind::kAvg: return "avg";
  }
  return "?";
}

Result<AggKind> ParseAggKind(const std::string& name) {
  const std::string n = ToLower(name);
  if (n == "sum") return AggKind::kSum;
  if (n == "min") return AggKind::kMin;
  if (n == "max") return AggKind::kMax;
  if (n == "count") return AggKind::kCount;
  if (n == "avg") return AggKind::kAvg;
  return Status::InvalidArgument("unknown aggregate '" + name + "'");
}

void Accumulator::Add(const Value& v) {
  if (v.is_null()) return;
  seen_ = true;
  ++count_;
  switch (kind_) {
    case AggKind::kSum:
    case AggKind::kAvg:
      if (v.is_int64() && !any_double_) {
        isum_ += v.AsInt64();
      } else {
        if (!any_double_) {
          dsum_ = static_cast<double>(isum_);
          any_double_ = true;
        }
        dsum_ += v.ToDouble();
      }
      break;
    case AggKind::kMin:
      if (best_.is_null() || v.Compare(best_) < 0) best_ = v;
      break;
    case AggKind::kMax:
      if (best_.is_null() || v.Compare(best_) > 0) best_ = v;
      break;
    case AggKind::kCount:
      break;
  }
}

Value Accumulator::Finish() const {
  switch (kind_) {
    case AggKind::kCount:
      return Value(count_);
    case AggKind::kSum:
      if (!seen_) return Value::Null();
      return any_double_ ? Value(dsum_) : Value(isum_);
    case AggKind::kAvg: {
      if (!seen_) return Value::Null();
      const double total = any_double_ ? dsum_ : static_cast<double>(isum_);
      return Value(total / static_cast<double>(count_));
    }
    case AggKind::kMin:
    case AggKind::kMax:
      return best_;
  }
  return Value::Null();
}

}  // namespace gpr::ra
