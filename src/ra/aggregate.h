// Aggregate functions for group-by & aggregation and for the ⊕ side of the
// semiring aggregate-joins (MM-join / MV-join).
#pragma once

#include <string>

#include "ra/expr.h"
#include "ra/value.h"
#include "util/status.h"

namespace gpr::ra {

/// The aggregate functions the paper uses (Table 2): sum, min, max, count —
/// plus avg for completeness.
enum class AggKind { kSum, kMin, kMax, kCount, kAvg };

const char* AggKindName(AggKind kind);

/// Parses "sum"/"min"/"max"/"count"/"avg" (case-insensitive).
Result<AggKind> ParseAggKind(const std::string& name);

/// Running state for one aggregate over one group.
class Accumulator {
 public:
  explicit Accumulator(AggKind kind) : kind_(kind) {}

  /// Folds one input value. NULLs are ignored (SQL semantics) except for
  /// count(*) which is expressed by feeding non-null literals.
  void Add(const Value& v);

  /// Final value: NULL for empty sum/min/max/avg, 0 for empty count.
  Value Finish() const;

 private:
  AggKind kind_;
  bool seen_ = false;
  bool any_double_ = false;
  int64_t count_ = 0;
  int64_t isum_ = 0;
  double dsum_ = 0;
  Value best_;  // min/max
};

/// One aggregate column in a group-by: kind(arg) as out_name.
struct AggSpec {
  AggKind kind;
  ExprPtr arg;           ///< input expression; null means count(*)
  std::string out_name;  ///< output column name
};

/// Convenience builders.
inline AggSpec SumOf(ExprPtr arg, std::string name) {
  return {AggKind::kSum, std::move(arg), std::move(name)};
}
inline AggSpec MinOf(ExprPtr arg, std::string name) {
  return {AggKind::kMin, std::move(arg), std::move(name)};
}
inline AggSpec MaxOf(ExprPtr arg, std::string name) {
  return {AggKind::kMax, std::move(arg), std::move(name)};
}
inline AggSpec CountOf(ExprPtr arg, std::string name) {
  return {AggKind::kCount, std::move(arg), std::move(name)};
}
inline AggSpec CountStar(std::string name) {
  return {AggKind::kCount, nullptr, std::move(name)};
}

}  // namespace gpr::ra
