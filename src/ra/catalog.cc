#include "ra/catalog.h"

#include <algorithm>

namespace gpr::ra {

Status Catalog::CreateTable(Table table, bool temporary) {
  const std::string name = table.name();
  if (name.empty()) {
    return Status::InvalidArgument("catalog tables must be named");
  }
  if (tables_.count(name)) {
    return Status::AlreadyExists("table '" + name + "' already exists");
  }
  Entry entry;
  entry.table = std::make_unique<Table>(std::move(table));
  entry.temporary = temporary;
  tables_.emplace(name, std::move(entry));
  return Status::OK();
}

Status Catalog::CreateTempTable(const std::string& name, Schema schema) {
  if (name.empty()) {
    return Status::InvalidArgument("catalog tables must be named");
  }
  auto it = tables_.find(name);
  if (it != tables_.end()) {
    if (!it->second.temporary) {
      return Status::AlreadyExists("base table '" + name +
                                   "' shadows the temp table");
    }
    tables_.erase(it);
  }
  Entry entry;
  entry.table = std::make_unique<Table>(name, std::move(schema));
  entry.temporary = true;
  tables_.emplace(name, std::move(entry));
  return Status::OK();
}

Status Catalog::DropTable(const std::string& name) {
  if (tables_.erase(name) == 0) {
    return Status::NotFound("table '" + name + "' does not exist");
  }
  return Status::OK();
}

Status Catalog::Truncate(const std::string& name) {
  GPR_ASSIGN_OR_RETURN(Table * t, Get(name));
  t->Clear();
  return Status::OK();
}

Status Catalog::ReplaceTable(const std::string& name, Table content) {
  auto it = tables_.find(name);
  if (it == tables_.end()) {
    return Status::NotFound("table '" + name + "' does not exist");
  }
  content.set_name(name);
  *it->second.table = std::move(content);
  // The entry is a new physical incarnation: force a fresh version so any
  // cache entry keyed on the old (name, version) pair is dead, even if the
  // moved-in content was never mutated after construction.
  it->second.table->BumpVersion();
  return Status::OK();
}

bool Catalog::IsTemporary(const std::string& name) const {
  auto it = tables_.find(name);
  return it != tables_.end() && it->second.temporary;
}

Result<Table*> Catalog::Get(const std::string& name) {
  auto it = tables_.find(name);
  if (it == tables_.end()) {
    return Status::NotFound("table '" + name + "' does not exist");
  }
  return it->second.table.get();
}

Result<const Table*> Catalog::Get(const std::string& name) const {
  auto it = tables_.find(name);
  if (it == tables_.end()) {
    return Status::NotFound("table '" + name + "' does not exist");
  }
  return const_cast<const Table*>(it->second.table.get());
}

std::vector<std::string> Catalog::TableNames() const {
  std::vector<std::string> base;
  std::vector<std::string> temp;
  for (const auto& [name, entry] : tables_) {
    (entry.temporary ? temp : base).push_back(name);
  }
  std::sort(base.begin(), base.end());
  std::sort(temp.begin(), temp.end());
  base.insert(base.end(), temp.begin(), temp.end());
  return base;
}

void Catalog::DropAllTemporary() {
  for (auto it = tables_.begin(); it != tables_.end();) {
    it = it->second.temporary ? tables_.erase(it) : std::next(it);
  }
}

}  // namespace gpr::ra
