// The catalog: named base tables and session-scoped temporary tables.
//
// The PSM executor creates temp tables for `computed by` relations, truncates
// them between iterations, and implements the drop/alter variant of
// union-by-update by swapping table bodies — all through this interface.
#pragma once

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "ra/table.h"
#include "util/status.h"

namespace gpr::ra {

/// A collection of named tables. Temporary tables mirror the paper's use of
/// session temp tables: they bypass durability (a no-op here) and, crucially,
/// lack statistics until explicitly analyzed.
class Catalog {
 public:
  /// Registers a base table. Fails if the name exists.
  Status CreateTable(Table table, bool temporary = false);

  /// Creates an empty temp table with the given schema, replacing any
  /// existing temp table of the same name.
  Status CreateTempTable(const std::string& name, Schema schema);

  /// Removes a table.
  Status DropTable(const std::string& name);

  /// Removes all rows but keeps the definition (SQL `truncate table`).
  Status Truncate(const std::string& name);

  /// Replaces the body of `name` with `content` (rows and schema), keeping
  /// the catalog entry — the drop/alter union-by-update implementation.
  Status ReplaceTable(const std::string& name, Table content);

  bool Has(const std::string& name) const { return tables_.count(name) > 0; }
  bool IsTemporary(const std::string& name) const;

  Result<Table*> Get(const std::string& name);
  Result<const Table*> Get(const std::string& name) const;

  /// All table names, base tables first, each group sorted.
  std::vector<std::string> TableNames() const;

  /// Drops every temporary table (end-of-procedure cleanup).
  void DropAllTemporary();

 private:
  struct Entry {
    std::unique_ptr<Table> table;
    bool temporary = false;
  };
  std::unordered_map<std::string, Entry> tables_;
};

/// RAII scope over the temp tables one execution creates: every table made
/// through Create() (or adopted via Track()) is dropped when the scope
/// dies — on success, governed budget trips, operator errors, and early
/// returns alike. This is what guarantees the fixpoint engines leave the
/// catalog exactly as they found it on every exit path.
class TempTableScope {
 public:
  explicit TempTableScope(Catalog& catalog) : catalog_(catalog) {}
  ~TempTableScope() {
    // Reverse creation order, mirroring nested lifetimes. A table may
    // legitimately be gone already (e.g. replaced then dropped); only
    // genuinely tracked names are expected here, so ignore NotFound.
    for (auto it = names_.rbegin(); it != names_.rend(); ++it) {
      // NotFound is fine: a replaced-then-dropped table is already gone.
      (void)catalog_.DropTable(*it);
    }
  }
  TempTableScope(const TempTableScope&) = delete;
  TempTableScope& operator=(const TempTableScope&) = delete;

  /// CreateTempTable + Track in one step.
  Status Create(const std::string& name, Schema schema) {
    GPR_RETURN_NOT_OK(catalog_.CreateTempTable(name, std::move(schema)));
    Track(name);
    return Status::OK();
  }

  /// Adopts an existing table into the scope's cleanup set.
  void Track(std::string name) { names_.push_back(std::move(name)); }

  size_t NumTracked() const { return names_.size(); }

 private:
  Catalog& catalog_;
  std::vector<std::string> names_;
};

}  // namespace gpr::ra
