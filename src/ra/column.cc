#include "ra/column.h"

#include <utility>

#include "util/logging.h"

namespace gpr::ra {

Value ColumnVec::Get(size_t i) const {
  GPR_CHECK(i < size_) << "column slot " << i << " out of range " << size_;
  if (IsNull(i)) return Value::Null();
  switch (rep_) {
    case Rep::kInt64:
      return Value(i64_[i]);
    case Rep::kDouble:
      return Value(f64_[i]);
    case Rep::kString:
      return Value(strs_[i]);
    case Rep::kBoxed:
      return boxed_[i];
  }
  return Value::Null();
}

void ColumnVec::GrowBitmap(bool null) {
  if ((size_ & 7) == 0) null_bits_.push_back(0);
  if (null) {
    null_bits_[size_ >> 3] |= static_cast<uint8_t>(1u << (size_ & 7));
    ++null_count_;
  }
  ++size_;
}

void ColumnVec::AppendNull() {
  switch (rep_) {
    case Rep::kInt64:
      i64_.push_back(0);
      break;
    case Rep::kDouble:
      f64_.push_back(0.0);
      break;
    case Rep::kString:
      strs_.emplace_back();
      break;
    case Rep::kBoxed:
      boxed_.emplace_back();
      break;
  }
  GrowBitmap(/*null=*/true);
}

void ColumnVec::AppendInt64(int64_t v) {
  GPR_CHECK(rep_ == Rep::kInt64) << "AppendInt64 on non-int64 column";
  i64_.push_back(v);
  GrowBitmap(/*null=*/false);
}

void ColumnVec::AppendDouble(double v) {
  GPR_CHECK(rep_ == Rep::kDouble) << "AppendDouble on non-double column";
  f64_.push_back(v);
  GrowBitmap(/*null=*/false);
}

void ColumnVec::AppendString(std::string v) {
  GPR_CHECK(rep_ == Rep::kString) << "AppendString on non-string column";
  strs_.push_back(std::move(v));
  GrowBitmap(/*null=*/false);
}

void ColumnVec::Append(const Value& v) {
  if (v.is_null()) {
    AppendNull();
    return;
  }
  if (rep_ == Rep::kBoxed) {
    boxed_.push_back(v);
    GrowBitmap(/*null=*/false);
    return;
  }
  switch (v.type()) {
    case ValueType::kInt64:
      AppendInt64(v.AsInt64());
      return;
    case ValueType::kDouble:
      AppendDouble(v.AsDouble());
      return;
    case ValueType::kString:
      AppendString(v.AsString());
      return;
    default:
      GPR_CHECK(false) << "unreachable value type";
  }
}

void ColumnVec::Reserve(size_t n) {
  switch (rep_) {
    case Rep::kInt64:
      i64_.reserve(n);
      break;
    case Rep::kDouble:
      f64_.reserve(n);
      break;
    case Rep::kString:
      strs_.reserve(n);
      break;
    case Rep::kBoxed:
      boxed_.reserve(n);
      break;
  }
  null_bits_.reserve((n + 7) / 8);
}

namespace {

ColumnVec::Rep ClassifyColumn(const std::vector<Tuple>& rows, size_t c) {
  bool saw_int = false, saw_double = false, saw_string = false;
  for (const Tuple& row : rows) {
    const Value& v = row[c];
    if (v.is_null()) continue;
    if (v.is_int64()) {
      saw_int = true;
    } else if (v.is_double()) {
      saw_double = true;
    } else {
      saw_string = true;
    }
    if ((saw_int + saw_double + saw_string) > 1) return ColumnVec::Rep::kBoxed;
  }
  if (saw_double) return ColumnVec::Rep::kDouble;
  if (saw_string) return ColumnVec::Rep::kString;
  // All-int, empty, or all-NULL columns: the int64 representation is the
  // cheapest carrier (NULL slots are placeholders either way).
  return ColumnVec::Rep::kInt64;
}

}  // namespace

ColumnStore ColumnStore::FromRows(const Schema& schema,
                                  const std::vector<Tuple>& rows) {
  ColumnStore store;
  const size_t ncols = schema.NumColumns();
  store.cols_.reserve(ncols);
  for (size_t c = 0; c < ncols; ++c) {
    store.cols_.emplace_back(ClassifyColumn(rows, c));
    store.cols_.back().Reserve(rows.size());
  }
  for (const Tuple& row : rows) {
    GPR_CHECK(row.size() == ncols) << "row arity " << row.size()
                                   << " != schema arity " << ncols;
    for (size_t c = 0; c < ncols; ++c) store.cols_[c].Append(row[c]);
  }
  store.num_rows_ = rows.size();
  return store;
}

ColumnStore ColumnStore::WithReps(const std::vector<ColumnVec::Rep>& reps) {
  ColumnStore store;
  store.cols_.reserve(reps.size());
  for (ColumnVec::Rep rep : reps) store.cols_.emplace_back(rep);
  return store;
}

void ColumnStore::AppendRow(const Tuple& row) {
  GPR_CHECK(row.size() == cols_.size())
      << "row arity " << row.size() << " != store arity " << cols_.size();
  for (size_t c = 0; c < cols_.size(); ++c) cols_[c].Append(row[c]);
  ++num_rows_;
}

void ColumnStore::FinishRows() {
  if (cols_.empty()) return;
  const size_t n = cols_[0].size();
  for (const ColumnVec& col : cols_) {
    GPR_CHECK(col.size() == n) << "ragged column store: " << col.size()
                               << " vs " << n;
  }
  num_rows_ = n;
}

void ColumnStore::MaterializeRow(size_t i, Tuple* out) const {
  out->clear();
  out->reserve(cols_.size());
  for (const ColumnVec& col : cols_) out->push_back(col.Get(i));
}

void ColumnStore::Reserve(size_t n) {
  for (ColumnVec& col : cols_) col.Reserve(n);
}

}  // namespace gpr::ra
