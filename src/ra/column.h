// Typed columnar projection of a Table (docs/architecture.md, storage
// layout): one ColumnVec per schema column, holding the column's values
// unboxed when they are uniformly typed (int64 / double / string) and as
// boxed Values otherwise, plus a per-column null bitmap.
//
// The columnar image is what the vectorized batch path (ra/vectorized.h)
// scans instead of the row store: a column batch is a contiguous slice of
// a typed vector, so hot loops run without per-cell Value variant
// dispatch. Rows remain the canonical representation — the store is a
// per-content-version cache on Table (same lifetime discipline as the CSR
// layout in ra/csr.h) and is rebuilt whenever the version moves.
//
// Growth goes through the batch append API only (Append* / AppendRow):
// it keeps the value buffers and the null bitmap in sync — linter rule
// GPR-C410 pins this invariant.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "ra/schema.h"
#include "ra/tuple.h"
#include "ra/value.h"
#include "util/status.h"

namespace gpr::ra {

/// Rows per execution batch on the vectorized path: large enough to
/// amortize dispatch, small enough that a batch's working set stays
/// cache-resident.
inline constexpr size_t kVectorBatchRows = 2048;

/// One typed column. The representation is fixed at construction
/// (classified over the source rows): kInt64 / kDouble / kString hold
/// unboxed values with NULL slots carrying a zero placeholder; kBoxed is
/// the fallback for mixed-type columns and stores full Values.
class ColumnVec {
 public:
  enum class Rep { kInt64, kDouble, kString, kBoxed };

  explicit ColumnVec(Rep rep = Rep::kBoxed) : rep_(rep) {}

  Rep rep() const { return rep_; }
  size_t size() const { return size_; }
  bool has_nulls() const { return null_count_ > 0; }
  size_t null_count() const { return null_count_; }

  bool IsNull(size_t i) const {
    return (null_bits_[i >> 3] >> (i & 7)) & 1u;
  }

  /// Typed readers; valid only for the matching representation. NULL slots
  /// hold placeholders — consult IsNull first.
  const std::vector<int64_t>& i64() const { return i64_; }
  const std::vector<double>& f64() const { return f64_; }
  const std::vector<std::string>& strs() const { return strs_; }
  const std::vector<Value>& boxed() const { return boxed_; }

  /// Boxes slot `i` back into a Value (identical to the source Value).
  Value Get(size_t i) const;

  // Batch append API (GPR-C410): the only way to grow a column, so the
  // value buffer and the null bitmap advance together.
  void AppendNull();
  void AppendInt64(int64_t v);
  void AppendDouble(double v);
  void AppendString(std::string v);
  /// Dispatches on the value's type; CHECKs it fits the representation
  /// (anything fits kBoxed, NULL fits everything).
  void Append(const Value& v);

  void Reserve(size_t n);

 private:
  void GrowBitmap(bool null);

  Rep rep_;
  size_t size_ = 0;
  size_t null_count_ = 0;
  std::vector<int64_t> i64_;
  std::vector<double> f64_;
  std::vector<std::string> strs_;
  std::vector<Value> boxed_;
  std::vector<uint8_t> null_bits_;  // bit i of word i>>3, 1 = NULL
};

/// A full columnar image: one ColumnVec per schema column, all the same
/// length. Built via FromRows (which classifies each column's
/// representation over the actual values) or grown row-wise through
/// AppendRow.
class ColumnStore {
 public:
  ColumnStore() = default;

  /// Classifies and fills one column per schema entry. A column whose
  /// non-null values are uniformly int64 / double / string gets the
  /// corresponding unboxed representation; anything mixed falls back to
  /// kBoxed. Empty or all-NULL columns classify as kInt64.
  static ColumnStore FromRows(const Schema& schema,
                              const std::vector<Tuple>& rows);

  /// An empty store with pre-chosen column representations (for builders
  /// that know their output types, e.g. the vectorized projection).
  static ColumnStore WithReps(const std::vector<ColumnVec::Rep>& reps);

  size_t NumRows() const { return num_rows_; }
  size_t NumColumns() const { return cols_.size(); }
  const ColumnVec& column(size_t c) const { return cols_[c]; }
  ColumnVec* mutable_column(size_t c) { return &cols_[c]; }

  /// Appends one row across all columns (batch API — keeps every column
  /// and its null bitmap in sync). Arity must match.
  void AppendRow(const Tuple& row);
  /// Called by builders that appended to the columns directly through the
  /// ColumnVec batch API; CHECKs all columns reached the same length.
  void FinishRows();

  /// Boxes row `i` back into `out` (cleared and refilled).
  void MaterializeRow(size_t i, Tuple* out) const;

  void Reserve(size_t n);

 private:
  size_t num_rows_ = 0;
  std::vector<ColumnVec> cols_;
};

}  // namespace gpr::ra
