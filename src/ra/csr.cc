#include "ra/csr.h"

#include <algorithm>
#include <cstdint>
#include <utility>

#include "exec/exec_context.h"
#include "exec/thread_pool.h"
#include "ra/column.h"
#include "ra/plan_cache.h"
#include "ra/tuple.h"

namespace gpr::ra {
namespace {

constexpr uint32_t kNoRow = UINT32_MAX;

inline Status PollEvery(EvalContext* ctx, size_t counter, const char* site) {
  if (ctx != nullptr && ctx->exec != nullptr &&
      counter % ctx->poll_stride == ctx->poll_stride - 1) {
    return ctx->exec->Poll(site);
  }
  return Status::OK();
}

/// Boxes edge weight `e` back into a Value; for the unboxed
/// representations this reproduces exactly the Value the build saw.
inline Value EdgeWeight(const CsrMatrix& csr, size_t e) {
  switch (csr.wclass) {
    case CsrMatrix::WeightClass::kInt64: return Value(csr.iweights[e]);
    case CsrMatrix::WeightClass::kDouble: return Value(csr.dweights[e]);
    case CsrMatrix::WeightClass::kBoxed: return csr.vweights[e];
  }
  return Value::Null();
}

/// GroupBy's output-type adjustment for the ⊕ column, mirrored so the
/// kernel output schema is byte-identical to join + group-by + rename.
inline ValueType AddOutType(AggKind add, ValueType mult_type) {
  switch (add) {
    case AggKind::kCount: return ValueType::kInt64;
    case AggKind::kAvg: return ValueType::kDouble;
    default: return mult_type;
  }
}

}  // namespace

size_t CsrMatrix::ApproxBytes() const {
  size_t bytes = offsets.size() * sizeof(uint32_t) +
                 col_ids.size() * sizeof(uint32_t) +
                 src_rows.size() * sizeof(uint32_t) +
                 iweights.size() * sizeof(int64_t) +
                 dweights.size() * sizeof(double) +
                 vweights.size() * sizeof(Value);
  bytes += col_values.size() * sizeof(Value);
  // Dictionary entries: value + dense id + bucket overhead, roughly.
  bytes += (col_index.size() + row_index.size()) *
           (sizeof(Value) + 2 * sizeof(size_t));
  return bytes;
}

Result<std::shared_ptr<const CsrMatrix>> BuildCsr(const Table& m,
                                                  size_t row_idx,
                                                  size_t col_idx,
                                                  size_t weight_idx,
                                                  EvalContext* ctx) {
  auto csr = std::make_shared<CsrMatrix>();
  const size_t n = m.NumRows();

  // Pass 1, in scan order: assign dense row/col ids by first appearance
  // (NULL keys are ordinary dictionary values — the kernels never probe
  // them, replaying the hash join's null-key skip) and classify the
  // weight column for the unboxed representations.
  std::vector<uint32_t> row_of(n);
  std::vector<uint32_t> col_of(n);
  std::vector<uint32_t> degree;
  // With vectorize on (ctx->vectors set, ra/vectorized.h), classify and
  // read the weight column through the table's typed column store
  // (ra/column.h) instead of per-row boxed reads — value-identical by
  // construction, since the store is built from these very rows.
  const ColumnVec* wvec = nullptr;
  if (ctx != nullptr && ctx->vectors != nullptr) {
    const ColumnVec& c = m.columns().column(weight_idx);
    if (!c.has_nulls() && (c.rep() == ColumnVec::Rep::kInt64 ||
                           c.rep() == ColumnVec::Rep::kDouble)) {
      wvec = &c;
    }
  }
  bool all_int = true;
  bool all_double = true;
  for (size_t i = 0; i < n; ++i) {
    GPR_RETURN_NOT_OK(PollEvery(ctx, i, "csr_build"));
    const Tuple& r = m.row(i);
    auto [rit, rins] =
        csr->row_index.try_emplace(r[row_idx],
                                   static_cast<uint32_t>(degree.size()));
    if (rins) degree.push_back(0);
    ++degree[rit->second];
    row_of[i] = rit->second;
    auto [cit, cins] = csr->col_index.try_emplace(
        r[col_idx], static_cast<uint32_t>(csr->col_values.size()));
    if (cins) csr->col_values.push_back(r[col_idx]);
    col_of[i] = cit->second;
    if (wvec == nullptr) {
      const Value& w = r[weight_idx];
      all_int = all_int && w.is_int64();
      all_double = all_double && w.is_double();
    }
  }
  if (wvec != nullptr) {
    // A null-free kInt64/kDouble column is exactly an all-int64 /
    // all-double weight set — the per-row scan would conclude the same.
    all_int = wvec->rep() == ColumnVec::Rep::kInt64;
    all_double = wvec->rep() == ColumnVec::Rep::kDouble;
  }
  csr->wclass = all_int      ? CsrMatrix::WeightClass::kInt64
                : all_double ? CsrMatrix::WeightClass::kDouble
                             : CsrMatrix::WeightClass::kBoxed;

  // Pass 2: prefix offsets, then fill edge lists with a per-row write
  // cursor. Scan order means every row's edges end up ascending by
  // original row index — the order every downstream identity argument
  // leans on.
  const size_t nrows = degree.size();
  csr->offsets.assign(nrows + 1, 0);
  for (size_t r = 0; r < nrows; ++r) {
    csr->offsets[r + 1] = csr->offsets[r] + degree[r];
  }
  csr->col_ids.resize(n);
  csr->src_rows.resize(n);
  switch (csr->wclass) {
    case CsrMatrix::WeightClass::kInt64: csr->iweights.resize(n); break;
    case CsrMatrix::WeightClass::kDouble: csr->dweights.resize(n); break;
    case CsrMatrix::WeightClass::kBoxed: csr->vweights.resize(n); break;
  }
  std::vector<uint32_t> cursor(csr->offsets.begin(), csr->offsets.end() - 1);
  for (size_t i = 0; i < n; ++i) {
    GPR_RETURN_NOT_OK(PollEvery(ctx, i, "csr_build"));
    const uint32_t e = cursor[row_of[i]]++;
    csr->col_ids[e] = col_of[i];
    csr->src_rows[e] = static_cast<uint32_t>(i);
    if (wvec != nullptr) {
      if (csr->wclass == CsrMatrix::WeightClass::kInt64) {
        csr->iweights[e] = wvec->i64()[i];
      } else {
        csr->dweights[e] = wvec->f64()[i];
      }
    } else {
      const Value& w = m.row(i)[weight_idx];
      switch (csr->wclass) {
        case CsrMatrix::WeightClass::kInt64:
          csr->iweights[e] = w.AsInt64();
          break;
        case CsrMatrix::WeightClass::kDouble:
          csr->dweights[e] = w.AsDouble();
          break;
        case CsrMatrix::WeightClass::kBoxed: csr->vweights[e] = w; break;
      }
    }
  }
  return std::shared_ptr<const CsrMatrix>(std::move(csr));
}

Result<std::shared_ptr<const CsrMatrix>> CsrFor(const Table& m,
                                                size_t row_idx,
                                                size_t col_idx,
                                                size_t weight_idx,
                                                bool m_stable,
                                                EvalContext* ctx) {
  // Same cacheability contract as the operators' CacheFor: a stable,
  // named input with a cache on the context. Anything else builds a
  // throwaway layout (keeps kernels usable with the cache off, at the
  // cost of a rebuild per call).
  PlanCache* cache = m_stable && ctx != nullptr && ctx->cache != nullptr &&
                             !m.name().empty()
                         ? ctx->cache
                         : nullptr;
  const uint64_t mversion = m.version();
  std::string key;
  if (cache != nullptr) {
    key = "csr:" + m.name() + ":" + std::to_string(row_idx) + ":" +
          std::to_string(col_idx) + ":" + std::to_string(weight_idx);
    std::shared_ptr<const CsrMatrix> hit =
        cache->Lookup<CsrMatrix>(key, mversion);
    if (hit != nullptr) return hit;
  }
  GPR_ASSIGN_OR_RETURN(std::shared_ptr<const CsrMatrix> built,
                       BuildCsr(m, row_idx, col_idx, weight_idx, ctx));
  if (ctx != nullptr && ctx->kernels != nullptr) {
    ++ctx->kernels->csr_builds;
  }
  if (cache != nullptr) {
    GPR_RETURN_NOT_OK(cache->Insert<CsrMatrix>(key, mversion, built,
                                               built->ApproxBytes()));
  }
  return built;
}

Result<Table> SpmvKernel(const CsrMatrix& csr, const Table& m,
                         size_t group_idx, size_t weight_idx, const Table& v,
                         size_t vid_idx, size_t vw_idx, AggKind add,
                         BinaryOp multiply, EvalContext* ctx) {
  // Compile ⊙ once against the weight columns' declared types — the same
  // expression over the same operand types as the generic group-by path.
  Schema operand_schema{{"a", m.schema().column(weight_idx).type},
                        {"b", v.schema().column(vw_idx).type}};
  GPR_ASSIGN_OR_RETURN(
      CompiledExpr mult,
      Compile(Binary(multiply, Col("a"), Col("b")), operand_schema));
  const ValueType out_type = AddOutType(add, mult.result_type());

  // Per-iteration probe side: bucket v's row indexes by dense column id,
  // preserving v insertion order within each bucket (the order a
  // hash-join build table replays matches in). NULL vector ids never
  // match. Two passes: count, prefix, fill.
  const size_t ncols = csr.col_values.size();
  const size_t vn = v.NumRows();
  std::vector<uint32_t> vcol(vn, kNoRow);
  std::vector<uint32_t> voffsets(ncols + 1, 0);
  bool v_all_int = true;
  bool v_all_double = true;
  for (size_t i = 0; i < vn; ++i) {
    GPR_RETURN_NOT_OK(PollEvery(ctx, i, "mv_kernel"));
    const Tuple& vr = v.row(i);
    const Value& id = vr[vid_idx];
    if (id.is_null()) continue;
    auto it = csr.col_index.find(id);
    if (it == csr.col_index.end()) continue;
    vcol[i] = it->second;
    ++voffsets[it->second + 1];
    const Value& w = vr[vw_idx];
    v_all_int = v_all_int && w.is_int64();
    v_all_double = v_all_double && w.is_double();
  }
  for (size_t c = 0; c < ncols; ++c) voffsets[c + 1] += voffsets[c];
  std::vector<uint32_t> vrows(voffsets[ncols]);
  {
    std::vector<uint32_t> cursor(voffsets.begin(), voffsets.end() - 1);
    for (size_t i = 0; i < vn; ++i) {
      if (vcol[i] != kNoRow) {
        vrows[cursor[vcol[i]]++] = static_cast<uint32_t>(i);
      }
    }
  }

  // The unboxed fast path: a uniformly-typed numeric fold with ⊙ in
  // {*, +} and ⊕ in {sum, min, max} computes on raw int64/double exactly
  // what NumericBinary + Accumulator compute on the boxed Values —
  // integer arithmetic while both sides are integers, double arithmetic
  // (with the same static_cast widening) otherwise, 0-seeded in-order
  // sums, strict-compare min/max keeping the first on ties.
  const bool fold_ok = add == AggKind::kSum || add == AggKind::kMin ||
                       add == AggKind::kMax;
  const bool mult_ok =
      multiply == BinaryOp::kMul || multiply == BinaryOp::kAdd;
  const bool m_unboxed = csr.wclass != CsrMatrix::WeightClass::kBoxed;
  const bool v_unboxed = v_all_int || v_all_double;
  enum class Mode { kBoxed, kInt64, kDouble };
  Mode mode = Mode::kBoxed;
  if (fold_ok && mult_ok && m_unboxed && v_unboxed) {
    mode = csr.wclass == CsrMatrix::WeightClass::kInt64 && v_all_int
               ? Mode::kInt64
               : Mode::kDouble;
  }

  // Gather the matched v weights unboxed, aligned with `vrows`. With
  // vectorize on, read straight out of v's typed column store instead of
  // chasing boxed rows — same values (the store mirrors the rows), and
  // the matched-row typing already proved the reads well-formed.
  const ColumnVec* vwvec = nullptr;
  if (ctx != nullptr && ctx->vectors != nullptr) {
    const ColumnVec& c = v.columns().column(vw_idx);
    if (!c.has_nulls() && (c.rep() == ColumnVec::Rep::kInt64 ||
                           c.rep() == ColumnVec::Rep::kDouble)) {
      vwvec = &c;
    }
  }
  std::vector<int64_t> viw;
  std::vector<double> vdw;
  if (mode == Mode::kInt64) {
    viw.resize(vrows.size());
    const bool typed = vwvec != nullptr &&
                       vwvec->rep() == ColumnVec::Rep::kInt64;
    for (size_t k = 0; k < vrows.size(); ++k) {
      GPR_RETURN_NOT_OK(PollEvery(ctx, k, "mv_kernel"));
      viw[k] = typed ? vwvec->i64()[vrows[k]]
                     : v.row(vrows[k])[vw_idx].AsInt64();
    }
  } else if (mode == Mode::kDouble) {
    vdw.resize(vrows.size());
    const bool typed_int = vwvec != nullptr &&
                           vwvec->rep() == ColumnVec::Rep::kInt64;
    for (size_t k = 0; k < vrows.size(); ++k) {
      GPR_RETURN_NOT_OK(PollEvery(ctx, k, "mv_kernel"));
      if (vwvec != nullptr) {
        vdw[k] = typed_int ? static_cast<double>(vwvec->i64()[vrows[k]])
                           : vwvec->f64()[vrows[k]];
      } else {
        vdw[k] = v.row(vrows[k])[vw_idx].ToDouble();
      }
    }
  }

  // Row sweep: every CSR row is an independent output slot, so morsels
  // over row ranges need no merge step and the result is DOP-invariant
  // by construction. first_src[r] records the originating m-row of the
  // row's first matched edge (edges are ascending, so this is the
  // group-creation point of the generic path).
  const size_t nrows = csr.NumRows();
  std::vector<uint32_t> first_src(nrows, kNoRow);
  std::vector<int64_t> ires;
  std::vector<double> dres;
  std::vector<Value> vres;
  switch (mode) {
    case Mode::kInt64: ires.resize(nrows); break;
    case Mode::kDouble: dres.resize(nrows); break;
    case Mode::kBoxed: vres.resize(nrows); break;
  }

  exec::ExecContext* gov = ctx != nullptr ? ctx->exec : nullptr;
  const size_t stride = ctx != nullptr ? ctx->poll_stride : 8192;
  const bool by_mul = multiply == BinaryOp::kMul;
  auto sweep = [&](size_t begin, size_t end) -> Status {
    Tuple operand(2);  // reused (a, b) operand row of the boxed fold
    size_t products = 0;
    for (size_t r = begin; r < end; ++r) {
      const uint32_t eb = csr.offsets[r];
      const uint32_t ee = csr.offsets[r + 1];
      switch (mode) {
        case Mode::kInt64: {
          int64_t acc = 0;
          bool seen = false;
          for (uint32_t e = eb; e < ee; ++e) {
            const uint32_t c = csr.col_ids[e];
            const uint32_t kb = voffsets[c];
            const uint32_t ke = voffsets[c + 1];
            if (kb == ke) continue;
            if (first_src[r] == kNoRow) first_src[r] = csr.src_rows[e];
            const int64_t mw = csr.iweights[e];
            for (uint32_t k = kb; k < ke; ++k) {
              if (gov != nullptr && ++products % stride == 0) {
                GPR_RETURN_NOT_OK(gov->Poll("mv_kernel"));
              }
              const int64_t p = by_mul ? mw * viw[k] : mw + viw[k];
              if (add == AggKind::kSum) {
                acc += p;
              } else if (!seen || (add == AggKind::kMin ? p < acc : p > acc)) {
                acc = p;
              }
              seen = true;
            }
          }
          ires[r] = acc;
          break;
        }
        case Mode::kDouble: {
          const bool m_int = csr.wclass == CsrMatrix::WeightClass::kInt64;
          double acc = 0.0;
          bool seen = false;
          for (uint32_t e = eb; e < ee; ++e) {
            const uint32_t c = csr.col_ids[e];
            const uint32_t kb = voffsets[c];
            const uint32_t ke = voffsets[c + 1];
            if (kb == ke) continue;
            if (first_src[r] == kNoRow) first_src[r] = csr.src_rows[e];
            const double mw = m_int ? static_cast<double>(csr.iweights[e])
                                    : csr.dweights[e];
            for (uint32_t k = kb; k < ke; ++k) {
              if (gov != nullptr && ++products % stride == 0) {
                GPR_RETURN_NOT_OK(gov->Poll("mv_kernel"));
              }
              const double p = by_mul ? mw * vdw[k] : mw + vdw[k];
              if (add == AggKind::kSum) {
                acc += p;
              } else if (!seen || (add == AggKind::kMin ? p < acc : p > acc)) {
                acc = p;
              }
              seen = true;
            }
          }
          dres[r] = acc;
          break;
        }
        case Mode::kBoxed: {
          Accumulator acc(add);
          bool matched = false;
          for (uint32_t e = eb; e < ee; ++e) {
            const uint32_t c = csr.col_ids[e];
            const uint32_t kb = voffsets[c];
            const uint32_t ke = voffsets[c + 1];
            if (kb == ke) continue;
            if (first_src[r] == kNoRow) first_src[r] = csr.src_rows[e];
            matched = true;
            operand[0] = EdgeWeight(csr, e);
            for (uint32_t k = kb; k < ke; ++k) {
              if (gov != nullptr && ++products % stride == 0) {
                GPR_RETURN_NOT_OK(gov->Poll("mv_kernel"));
              }
              operand[1] = v.row(vrows[k])[vw_idx];
              acc.Add(mult.Eval(operand, ctx));
            }
          }
          if (matched) vres[r] = acc.Finish();
          break;
        }
      }
    }
    return Status::OK();
  };

  const int dop = exec::AdmittedDop(
      nrows, ctx != nullptr && ctx->dop > 1 ? ctx->dop : 1,
      ctx != nullptr ? ctx->min_parallel_rows : 8192);
  if (dop > 1 && nrows > 1) {
    const size_t per_worker =
        (nrows + static_cast<size_t>(dop) - 1) / static_cast<size_t>(dop);
    const size_t morsel_rows = std::clamp<size_t>(per_worker, 1, 8192);
    const size_t num_morsels = exec::NumMorsels(nrows, morsel_rows);
    GPR_RETURN_NOT_OK(exec::ThreadPool::Global().RunTasks(
        num_morsels, static_cast<size_t>(dop), [&](size_t t) -> Status {
          if (gov != nullptr) {
            GPR_RETURN_NOT_OK(gov->Poll("mv_kernel"));
          }
          const size_t begin = t * morsel_rows;
          return sweep(begin, std::min(nrows, begin + morsel_rows));
        }));
  } else {
    GPR_RETURN_NOT_OK(sweep(0, nrows));
  }

  // Emit matched rows ordered by first matched m-row — exactly the
  // first-appearance group order of the generic path. The group key is
  // re-read from that originating row, so even the kept representative
  // of numerically-equal keys matches the generic path's.
  std::vector<std::pair<uint32_t, uint32_t>> order;  // (first_src, row)
  order.reserve(nrows);
  for (size_t r = 0; r < nrows; ++r) {
    if (first_src[r] != kNoRow) {
      order.emplace_back(first_src[r], static_cast<uint32_t>(r));
    }
  }
  std::sort(order.begin(), order.end());

  Table out("", Schema{{"ID", m.schema().column(group_idx).type},
                       {"vw", out_type}});
  out.Reserve(order.size());
  for (size_t i = 0; i < order.size(); ++i) {
    GPR_RETURN_NOT_OK(PollEvery(ctx, i, "mv_kernel"));
    const auto [src, r] = order[i];
    Tuple row;
    row.reserve(2);
    row.push_back(m.row(src)[group_idx]);
    switch (mode) {
      case Mode::kInt64: row.push_back(Value(ires[r])); break;
      case Mode::kDouble: row.push_back(Value(dres[r])); break;
      case Mode::kBoxed: row.push_back(vres[r]); break;
    }
    out.AddRow(std::move(row));
  }
  return out;
}

Result<Table> SpmmKernel(const CsrMatrix& csr, const Table& a,
                         size_t a_from_idx, size_t a_to_idx,
                         size_t a_weight_idx, const Table& b,
                         size_t b_to_idx, size_t b_weight_idx, AggKind add,
                         BinaryOp multiply, EvalContext* ctx) {
  Schema operand_schema{{"a", a.schema().column(a_weight_idx).type},
                        {"b", b.schema().column(b_weight_idx).type}};
  GPR_ASSIGN_OR_RETURN(
      CompiledExpr mult,
      Compile(Binary(multiply, Col("a"), Col("b")), operand_schema));
  const ValueType out_type = AddOutType(add, mult.result_type());

  // Probe A's rows in order against B's CSR row dictionary; per match,
  // fold into the (A.from, B.to) cell. Cells are created in first-match
  // order and edges within a CSR row are ascending, so the cell order
  // and every fold order replay hash-join + group-by exactly.
  std::unordered_map<Tuple, size_t, TupleHash, TupleEq> cell_pos;
  std::vector<Tuple> cell_keys;
  std::vector<Accumulator> accs;
  // With vectorize on, read A's weight through its typed column store and
  // the edge weight from the CSR's unboxed array (BuildCsr filled it from
  // the same source row) — value-identical to the boxed row reads.
  const ColumnVec* awvec = nullptr;
  if (ctx != nullptr && ctx->vectors != nullptr) {
    const ColumnVec& c = a.columns().column(a_weight_idx);
    if (c.rep() != ColumnVec::Rep::kBoxed) awvec = &c;
  }
  const bool edge_typed = ctx != nullptr && ctx->vectors != nullptr &&
                          csr.wclass != CsrMatrix::WeightClass::kBoxed;
  exec::ExecContext* gov = ctx != nullptr ? ctx->exec : nullptr;
  const size_t stride = ctx != nullptr ? ctx->poll_stride : 8192;
  Tuple operand(2);
  Tuple key(2);
  size_t products = 0;
  for (size_t i = 0; i < a.NumRows(); ++i) {
    GPR_RETURN_NOT_OK(PollEvery(ctx, i, "mm_kernel"));
    const Tuple& ar = a.row(i);
    const Value& join = ar[a_to_idx];
    if (join.is_null()) continue;  // a hash join never matches NULL keys
    auto rit = csr.row_index.find(join);
    if (rit == csr.row_index.end()) continue;
    const uint32_t eb = csr.offsets[rit->second];
    const uint32_t ee = csr.offsets[rit->second + 1];
    operand[0] = awvec != nullptr ? awvec->Get(i) : ar[a_weight_idx];
    for (uint32_t e = eb; e < ee; ++e) {
      if (gov != nullptr && ++products % stride == 0) {
        GPR_RETURN_NOT_OK(gov->Poll("mm_kernel"));
      }
      const Tuple& br = b.row(csr.src_rows[e]);
      key[0] = ar[a_from_idx];
      key[1] = br[b_to_idx];
      auto [it, inserted] = cell_pos.try_emplace(key, cell_keys.size());
      if (inserted) {
        cell_keys.push_back(key);
        accs.emplace_back(add);
      }
      operand[1] = edge_typed ? EdgeWeight(csr, e) : br[b_weight_idx];
      accs[it->second].Add(mult.Eval(operand, ctx));
    }
  }

  Table out("", Schema{{"F", a.schema().column(a_from_idx).type},
                       {"T", b.schema().column(b_to_idx).type},
                       {"ew", out_type}});
  out.Reserve(cell_keys.size());
  for (size_t i = 0; i < cell_keys.size(); ++i) {
    GPR_RETURN_NOT_OK(PollEvery(ctx, i, "mm_kernel"));
    Tuple row = std::move(cell_keys[i]);
    row.push_back(accs[i].Finish());
    out.AddRow(std::move(row));
  }
  return out;
}

}  // namespace gpr::ra
