// CSR-backed semiring kernels (paper Eqs. 3/4): the physical layout and
// the SpMV/SpMM execution paths behind MV-join / MM-join.
//
// A CsrMatrix is the edge-side input of an aggregate-join compiled into
// compressed-sparse-row form: rows grouped by the row-key column in
// first-appearance order, per-row edge lists in original row order, and a
// dictionary mapping the column-key values to dense column ids (node ids
// are arbitrary Values, not dense integers). The build is pure layout —
// no semiring is baked in — so one cached CsrMatrix serves every
// semiring and both MV orientations that share its (row, col, weight)
// columns. Cached builds go through ra::PlanCache keyed on the table's
// content version, so any mutation of the edge table invalidates the
// CSR for free (gpr_check rule GPR-C409 pins this).
//
// The kernels are row-identical to the generic hash-join + group-by
// path at any DOP (see MVJoinCsr for the order argument); the generic
// path stays in the tree as the differential-testing oracle.
#pragma once

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "ra/aggregate.h"
#include "ra/expr.h"
#include "ra/table.h"
#include "util/status.h"

namespace gpr::ra {

/// Kernel observability, owned by the fixpoint driver for one query and
/// copied into core::ExecCounters afterwards. A non-null
/// EvalContext::kernels pointer doubles as the "kernels on" signal.
/// Mutated only on the coordinating thread (the kernels update it after
/// their parallel regions complete), so plain fields suffice.
struct KernelCounters {
  size_t csr_builds = 0;        ///< CSR layouts built (cache misses + uncached)
  size_t kernel_hits = 0;       ///< aggregate-joins executed on a CSR kernel
  size_t kernel_fallbacks = 0;  ///< kernels on, but the generic path ran
};

/// The edge-side input of an aggregate-join in compressed-sparse-row
/// form. Immutable once built; shared read-only across fixpoint
/// iterations and morsel workers.
struct CsrMatrix {
  /// Dense row id -> [offsets[r], offsets[r+1]) edge range.
  std::vector<uint32_t> offsets;
  /// Per edge: dense column id (index into col_values).
  std::vector<uint32_t> col_ids;
  /// Per edge: the originating row index of the source table, ascending
  /// within each CSR row (the build preserves scan order). Lets the
  /// kernels replay hash-join match order and group-creation order.
  std::vector<uint32_t> src_rows;
  /// Per edge: the weight. A uniformly-typed non-null weight column is
  /// stored unboxed (the typed SpMV fast path reads it directly; the
  /// boxed path reconstructs identical Values on the fly); anything
  /// mixed, null-bearing or non-numeric falls back to boxed Values.
  enum class WeightClass { kInt64, kDouble, kBoxed };
  WeightClass wclass = WeightClass::kBoxed;
  std::vector<int64_t> iweights;  ///< valid iff wclass == kInt64
  std::vector<double> dweights;   ///< valid iff wclass == kDouble
  std::vector<Value> vweights;    ///< valid iff wclass == kBoxed
  /// Dense column id -> first-appearing column-key value.
  std::vector<Value> col_values;
  std::unordered_map<Value, uint32_t, ValueHash> col_index;
  /// Row-key value -> dense row id (the SpMM probe side).
  std::unordered_map<Value, uint32_t, ValueHash> row_index;

  size_t NumRows() const { return offsets.empty() ? 0 : offsets.size() - 1; }
  size_t NumEdges() const { return col_ids.size(); }
  /// Approximate footprint, charged to the governor at cache insert.
  size_t ApproxBytes() const;
};

/// Builds the CSR layout of `m` with rows keyed on column `row_idx`,
/// columns keyed on `col_idx` and weights from `weight_idx`. Rows of `m`
/// whose row key or column key is NULL are dropped (a hash join never
/// matches them). Polls the governor every ctx->poll_stride rows.
Result<std::shared_ptr<const CsrMatrix>> BuildCsr(const Table& m,
                                                  size_t row_idx,
                                                  size_t col_idx,
                                                  size_t weight_idx,
                                                  EvalContext* ctx);

/// Looks the CSR layout of `m` up in ctx->cache (when `m` is a named,
/// cache-stable table and the context carries a cache), building and
/// inserting on miss; builds an uncached throwaway otherwise. Bumps
/// ctx->kernels->csr_builds on every real build. The cache entry is
/// keyed on m.version(), so mutating `m` invalidates it.
Result<std::shared_ptr<const CsrMatrix>> CsrFor(const Table& m,
                                                size_t row_idx,
                                                size_t col_idx,
                                                size_t weight_idx,
                                                bool m_stable,
                                                EvalContext* ctx);

/// Semiring SpMV: γ_{row; ⊕(ew ⊙ vw)}(M ⋈ V) over the CSR layout.
/// `csr` must be BuildCsr(m, group_idx, join_idx, weight_idx). The result
/// is row-identical to hash-join + group-by (and to the fused MV path):
/// groups appear in the order of their first matched m row, every group
/// folds its matches in m-row order with v duplicates in v insertion
/// order, ⊙ is the same compiled expression over the same operand types
/// and ⊕ the same Accumulator. Rows are processed morsel-parallel at
/// ctx->dop (each CSR row is an independent output — no merge step);
/// matched rows are emitted serially in first-match order.
Result<Table> SpmvKernel(const CsrMatrix& csr, const Table& m,
                         size_t group_idx, size_t weight_idx, const Table& v,
                         size_t vid_idx, size_t vw_idx, AggKind add,
                         BinaryOp multiply, EvalContext* ctx);

/// Semiring SpMM: γ_{A.row, B.col; ⊕(A.ew ⊙ B.ew)}(A ⋈ B) over B's CSR
/// layout (`csr` = BuildCsr(b, b_from_idx, b_to_idx, b_weight_idx)).
/// Probes A's rows in order against the CSR row dictionary, replaying
/// the hash-join + group-by cell order exactly. Serial: the cell map is
/// shared across A rows, and the inputs the kernels accelerate are
/// matrix-matrix products far off the per-iteration hot path.
Result<Table> SpmmKernel(const CsrMatrix& csr, const Table& a,
                         size_t a_from_idx, size_t a_to_idx,
                         size_t a_weight_idx, const Table& b,
                         size_t b_to_idx, size_t b_weight_idx, AggKind add,
                         BinaryOp multiply, EvalContext* ctx);

}  // namespace gpr::ra
