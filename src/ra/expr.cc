#include "ra/expr.h"

#include <cmath>
#include <sstream>

#include "util/string_util.h"

namespace gpr::ra {
namespace {

enum FuncId {
  kFuncSqrt = 1,
  kFuncAbs,
  kFuncCoalesce,
  kFuncRand,
  kFuncLeast,
  kFuncGreatest,
  kFuncFloor,
  kFuncCeil,
  kFuncLog,
  kFuncExp,
  kFuncPow,
  kFuncMod,
  kFuncSign,
};

int LookupFunc(const std::string& name) {
  const std::string n = ToLower(name);
  if (n == "sqrt") return kFuncSqrt;
  if (n == "abs") return kFuncAbs;
  if (n == "coalesce") return kFuncCoalesce;
  if (n == "rand" || n == "random") return kFuncRand;
  if (n == "least") return kFuncLeast;
  if (n == "greatest") return kFuncGreatest;
  if (n == "floor") return kFuncFloor;
  if (n == "ceil" || n == "ceiling") return kFuncCeil;
  if (n == "ln" || n == "log") return kFuncLog;
  if (n == "exp") return kFuncExp;
  if (n == "pow" || n == "power") return kFuncPow;
  if (n == "mod") return kFuncMod;
  if (n == "sign") return kFuncSign;
  return 0;
}

Value NumericBinary(BinaryOp op, const Value& l, const Value& r) {
  if (l.is_null() || r.is_null()) return Value::Null();
  // Integer arithmetic stays integral except division, which widens.
  if (l.is_int64() && r.is_int64() && op != BinaryOp::kDiv) {
    const int64_t a = l.AsInt64();
    const int64_t b = r.AsInt64();
    switch (op) {
      case BinaryOp::kAdd: return a + b;
      case BinaryOp::kSub: return a - b;
      case BinaryOp::kMul: return a * b;
      case BinaryOp::kMod: return b == 0 ? Value::Null() : Value(a % b);
      default: break;
    }
  }
  const double a = l.ToDouble();
  const double b = r.ToDouble();
  switch (op) {
    case BinaryOp::kAdd: return a + b;
    case BinaryOp::kSub: return a - b;
    case BinaryOp::kMul: return a * b;
    case BinaryOp::kDiv: return b == 0.0 ? Value::Null() : Value(a / b);
    case BinaryOp::kMod: return b == 0.0 ? Value::Null() : Value(std::fmod(a, b));
    default: break;
  }
  GPR_UNREACHABLE();
}

Value CompareBinary(BinaryOp op, const Value& l, const Value& r) {
  if (l.is_null() || r.is_null()) return Value::Null();
  const int c = l.Compare(r);
  bool out = false;
  switch (op) {
    case BinaryOp::kEq: out = (c == 0); break;
    case BinaryOp::kNe: out = (c != 0); break;
    case BinaryOp::kLt: out = (c < 0); break;
    case BinaryOp::kLe: out = (c <= 0); break;
    case BinaryOp::kGt: out = (c > 0); break;
    case BinaryOp::kGe: out = (c >= 0); break;
    default: GPR_UNREACHABLE();
  }
  return Value(int64_t{out});
}

/// SQL three-valued truth of a value: 1 / 0 / null.
enum class Truth { kTrue, kFalse, kNull };

Truth TruthOf(const Value& v) {
  if (v.is_null()) return Truth::kNull;
  if (v.is_numeric()) return v.ToDouble() != 0.0 ? Truth::kTrue : Truth::kFalse;
  return v.AsString().empty() ? Truth::kFalse : Truth::kTrue;
}

Value TruthValue(Truth t) {
  switch (t) {
    case Truth::kTrue: return Value(int64_t{1});
    case Truth::kFalse: return Value(int64_t{0});
    case Truth::kNull: return Value::Null();
  }
  GPR_UNREACHABLE();
}

}  // namespace

const char* BinaryOpName(BinaryOp op) {
  switch (op) {
    case BinaryOp::kAdd: return "+";
    case BinaryOp::kSub: return "-";
    case BinaryOp::kMul: return "*";
    case BinaryOp::kDiv: return "/";
    case BinaryOp::kMod: return "%";
    case BinaryOp::kEq: return "=";
    case BinaryOp::kNe: return "<>";
    case BinaryOp::kLt: return "<";
    case BinaryOp::kLe: return "<=";
    case BinaryOp::kGt: return ">";
    case BinaryOp::kGe: return ">=";
    case BinaryOp::kAnd: return "and";
    case BinaryOp::kOr: return "or";
  }
  return "?";
}

std::string Expr::ToString() const {
  switch (kind) {
    case ExprKind::kColumn:
      return column_name;
    case ExprKind::kLiteral:
      return literal.ToString();
    case ExprKind::kBinary: {
      const std::string l = children[0]->ToString();
      const std::string r = children[1]->ToString();
      return "(" + l + " " + BinaryOpName(bin_op) + " " + r + ")";
    }
    case ExprKind::kUnary: {
      const std::string c = children[0]->ToString();
      switch (un_op) {
        case UnaryOp::kNot: return "(not " + c + ")";
        case UnaryOp::kNeg: return "(-" + c + ")";
        case UnaryOp::kIsNull: return "(" + c + " is null)";
        case UnaryOp::kIsNotNull: return "(" + c + " is not null)";
      }
      return "?";
    }
    case ExprKind::kCall: {
      std::ostringstream os;
      os << func_name << "(";
      for (size_t i = 0; i < children.size(); ++i) {
        if (i > 0) os << ", ";
        os << children[i]->ToString();
      }
      os << ")";
      return os.str();
    }
  }
  return "?";
}

ExprPtr Col(std::string name) {
  auto e = std::make_shared<Expr>();
  e->kind = ExprKind::kColumn;
  e->column_name = std::move(name);
  return e;
}

ExprPtr Lit(Value v) {
  auto e = std::make_shared<Expr>();
  e->kind = ExprKind::kLiteral;
  e->literal = std::move(v);
  return e;
}

ExprPtr Binary(BinaryOp op, ExprPtr l, ExprPtr r) {
  auto e = std::make_shared<Expr>();
  e->kind = ExprKind::kBinary;
  e->bin_op = op;
  e->children = {std::move(l), std::move(r)};
  return e;
}

ExprPtr Unary(UnaryOp op, ExprPtr c) {
  auto e = std::make_shared<Expr>();
  e->kind = ExprKind::kUnary;
  e->un_op = op;
  e->children = {std::move(c)};
  return e;
}

ExprPtr Call(std::string func, std::vector<ExprPtr> args) {
  auto e = std::make_shared<Expr>();
  e->kind = ExprKind::kCall;
  e->func_name = std::move(func);
  e->children = std::move(args);
  return e;
}

Result<CompiledExpr> Compile(const ExprPtr& expr, const Schema& schema) {
  CompiledExpr out;
  // Recursive lowering into the flat node array.
  struct Lowerer {
    const Schema& schema;
    CompiledExpr& out;
    Result<int> Lower(const Expr& e) {
      CompiledExpr::Node node;
      node.kind = e.kind;
      switch (e.kind) {
        case ExprKind::kColumn: {
          GPR_ASSIGN_OR_RETURN(node.column_index,
                               schema.Resolve(e.column_name));
          node.type = schema.column(node.column_index).type;
          break;
        }
        case ExprKind::kLiteral:
          node.literal = e.literal;
          node.type = e.literal.type();
          break;
        case ExprKind::kBinary: {
          node.bin_op = e.bin_op;
          GPR_ASSIGN_OR_RETURN(int l, Lower(*e.children[0]));
          GPR_ASSIGN_OR_RETURN(int r, Lower(*e.children[1]));
          node.children = {l, r};
          switch (e.bin_op) {
            case BinaryOp::kAdd:
            case BinaryOp::kSub:
            case BinaryOp::kMul:
            case BinaryOp::kMod: {
              const ValueType lt = out.nodes_[l].type;
              const ValueType rt = out.nodes_[r].type;
              node.type = (lt == ValueType::kInt64 && rt == ValueType::kInt64)
                              ? ValueType::kInt64
                              : ValueType::kDouble;
              break;
            }
            case BinaryOp::kDiv:
              node.type = ValueType::kDouble;
              break;
            default:
              node.type = ValueType::kInt64;  // booleans are Int64 0/1
          }
          break;
        }
        case ExprKind::kUnary: {
          node.un_op = e.un_op;
          GPR_ASSIGN_OR_RETURN(int c, Lower(*e.children[0]));
          node.children = {c};
          node.type = e.un_op == UnaryOp::kNeg ? out.nodes_[c].type
                                               : ValueType::kInt64;
          break;
        }
        case ExprKind::kCall: {
          node.func = LookupFunc(e.func_name);
          if (node.func == 0) {
            return Status::BindError("unknown function '" + e.func_name + "'");
          }
          if (node.func == kFuncRand) out.deterministic_ = false;
          for (const auto& child : e.children) {
            GPR_ASSIGN_OR_RETURN(int c, Lower(*child));
            node.children.push_back(c);
          }
          node.type = ValueType::kDouble;
          if (node.func == kFuncCoalesce || node.func == kFuncLeast ||
              node.func == kFuncGreatest) {
            node.type = node.children.empty()
                            ? ValueType::kNull
                            : out.nodes_[node.children[0]].type;
          }
          break;
        }
      }
      out.nodes_.push_back(std::move(node));
      return static_cast<int>(out.nodes_.size()) - 1;
    }
  } lowerer{schema, out};
  GPR_ASSIGN_OR_RETURN(out.root_, lowerer.Lower(*expr));
  out.result_type_ = out.nodes_[out.root_].type;
  return out;
}

Value CompiledExpr::EvalNode(int id, const Tuple& row,
                             EvalContext* ctx) const {
  const Node& n = nodes_[id];
  switch (n.kind) {
    case ExprKind::kColumn:
      return row[n.column_index];
    case ExprKind::kLiteral:
      return n.literal;
    case ExprKind::kBinary: {
      if (n.bin_op == BinaryOp::kAnd || n.bin_op == BinaryOp::kOr) {
        const Truth l = TruthOf(EvalNode(n.children[0], row, ctx));
        // Short-circuit where three-valued logic allows it.
        if (n.bin_op == BinaryOp::kAnd && l == Truth::kFalse) {
          return Value(int64_t{0});
        }
        if (n.bin_op == BinaryOp::kOr && l == Truth::kTrue) {
          return Value(int64_t{1});
        }
        const Truth r = TruthOf(EvalNode(n.children[1], row, ctx));
        if (n.bin_op == BinaryOp::kAnd) {
          if (r == Truth::kFalse) return Value(int64_t{0});
          if (l == Truth::kTrue && r == Truth::kTrue) return Value(int64_t{1});
          return Value::Null();
        }
        if (r == Truth::kTrue) return Value(int64_t{1});
        if (l == Truth::kFalse && r == Truth::kFalse) return Value(int64_t{0});
        return Value::Null();
      }
      const Value l = EvalNode(n.children[0], row, ctx);
      const Value r = EvalNode(n.children[1], row, ctx);
      switch (n.bin_op) {
        case BinaryOp::kAdd:
        case BinaryOp::kSub:
        case BinaryOp::kMul:
        case BinaryOp::kDiv:
        case BinaryOp::kMod:
          return NumericBinary(n.bin_op, l, r);
        default:
          return CompareBinary(n.bin_op, l, r);
      }
    }
    case ExprKind::kUnary: {
      const Value c = EvalNode(n.children[0], row, ctx);
      switch (n.un_op) {
        case UnaryOp::kNot: {
          const Truth t = TruthOf(c);
          if (t == Truth::kNull) return Value::Null();
          return TruthValue(t == Truth::kTrue ? Truth::kFalse : Truth::kTrue);
        }
        case UnaryOp::kNeg:
          if (c.is_null()) return Value::Null();
          if (c.is_int64()) return Value(-c.AsInt64());
          return Value(-c.ToDouble());
        case UnaryOp::kIsNull:
          return Value(int64_t{c.is_null()});
        case UnaryOp::kIsNotNull:
          return Value(int64_t{!c.is_null()});
      }
      GPR_UNREACHABLE();
    }
    case ExprKind::kCall: {
      switch (n.func) {
        case kFuncCoalesce: {
          for (int c : n.children) {
            Value v = EvalNode(c, row, ctx);
            if (!v.is_null()) return v;
          }
          return Value::Null();
        }
        case kFuncRand: {
          GPR_CHECK(ctx != nullptr && ctx->rng != nullptr)
              << "rand() requires an EvalContext with a generator";
          return Value(ctx->rng->NextDouble());
        }
        case kFuncLeast:
        case kFuncGreatest: {
          Value best;
          for (int c : n.children) {
            Value v = EvalNode(c, row, ctx);
            if (v.is_null()) continue;
            if (best.is_null() ||
                (n.func == kFuncLeast ? v.Compare(best) < 0
                                      : v.Compare(best) > 0)) {
              best = std::move(v);
            }
          }
          return best;
        }
        default:
          break;
      }
      // Unary / binary numeric functions.
      const Value a = EvalNode(n.children[0], row, ctx);
      if (a.is_null()) return Value::Null();
      switch (n.func) {
        case kFuncSqrt: return std::sqrt(a.ToDouble());
        case kFuncAbs:
          return a.is_int64() ? Value(std::abs(a.AsInt64()))
                              : Value(std::fabs(a.ToDouble()));
        case kFuncFloor: return std::floor(a.ToDouble());
        case kFuncCeil: return std::ceil(a.ToDouble());
        case kFuncLog: return std::log(a.ToDouble());
        case kFuncExp: return std::exp(a.ToDouble());
        case kFuncSign: {
          const double d = a.ToDouble();
          return Value(int64_t{d > 0 ? 1 : (d < 0 ? -1 : 0)});
        }
        case kFuncPow:
        case kFuncMod: {
          const Value b = EvalNode(n.children[1], row, ctx);
          if (b.is_null()) return Value::Null();
          if (n.func == kFuncPow) {
            return std::pow(a.ToDouble(), b.ToDouble());
          }
          return NumericBinary(BinaryOp::kMod, a, b);
        }
        default:
          GPR_UNREACHABLE();
      }
    }
  }
  GPR_UNREACHABLE();
}

Value CompiledExpr::Eval(const Tuple& row, EvalContext* ctx) const {
  return EvalNode(root_, row, ctx);
}

bool CompiledExpr::EvalBool(const Tuple& row, EvalContext* ctx) const {
  return TruthOf(Eval(row, ctx)) == Truth::kTrue;
}

}  // namespace gpr::ra
