// Scalar expression trees: construction, binding (name -> column index
// resolution against a schema), and evaluation over tuples.
//
// Selections, projections, join conditions, and the ⊙ (multiply) side of the
// semiring aggregate-joins are all expressed as Expr trees.
#pragma once

#include <memory>
#include <string>
#include <unordered_set>
#include <vector>

#include "ra/schema.h"
#include "ra/tuple.h"
#include "util/rng.h"
#include "util/status.h"

namespace gpr::exec {
class ExecContext;
}

namespace gpr::analysis {
class PlanFacts;
}

namespace gpr::ra {

class PlanCache;
struct KernelCounters;
struct VectorCounters;

enum class ExprKind { kColumn, kLiteral, kBinary, kUnary, kCall };

enum class BinaryOp {
  kAdd, kSub, kMul, kDiv, kMod,
  kEq, kNe, kLt, kLe, kGt, kGe,
  kAnd, kOr,
};

enum class UnaryOp { kNot, kNeg, kIsNull, kIsNotNull };

const char* BinaryOpName(BinaryOp op);

class Expr;
using ExprPtr = std::shared_ptr<const Expr>;

/// An immutable scalar expression node.
class Expr {
 public:
  ExprKind kind;

  // kColumn
  std::string column_name;

  // kLiteral
  Value literal;

  // kBinary / kUnary
  BinaryOp bin_op = BinaryOp::kAdd;
  UnaryOp un_op = UnaryOp::kNot;

  // kCall: function name (lower case) + arguments.
  std::string func_name;

  std::vector<ExprPtr> children;

  std::string ToString() const;
};

/// Builders ------------------------------------------------------------

ExprPtr Col(std::string name);
ExprPtr Lit(Value v);
ExprPtr Binary(BinaryOp op, ExprPtr l, ExprPtr r);
ExprPtr Unary(UnaryOp op, ExprPtr c);
ExprPtr Call(std::string func, std::vector<ExprPtr> args);

inline ExprPtr Add(ExprPtr l, ExprPtr r) { return Binary(BinaryOp::kAdd, l, r); }
inline ExprPtr Sub(ExprPtr l, ExprPtr r) { return Binary(BinaryOp::kSub, l, r); }
inline ExprPtr Mul(ExprPtr l, ExprPtr r) { return Binary(BinaryOp::kMul, l, r); }
inline ExprPtr Div(ExprPtr l, ExprPtr r) { return Binary(BinaryOp::kDiv, l, r); }
inline ExprPtr Eq(ExprPtr l, ExprPtr r) { return Binary(BinaryOp::kEq, l, r); }
inline ExprPtr Ne(ExprPtr l, ExprPtr r) { return Binary(BinaryOp::kNe, l, r); }
inline ExprPtr Lt(ExprPtr l, ExprPtr r) { return Binary(BinaryOp::kLt, l, r); }
inline ExprPtr Le(ExprPtr l, ExprPtr r) { return Binary(BinaryOp::kLe, l, r); }
inline ExprPtr Gt(ExprPtr l, ExprPtr r) { return Binary(BinaryOp::kGt, l, r); }
inline ExprPtr Ge(ExprPtr l, ExprPtr r) { return Binary(BinaryOp::kGe, l, r); }
inline ExprPtr And(ExprPtr l, ExprPtr r) { return Binary(BinaryOp::kAnd, l, r); }
inline ExprPtr Or(ExprPtr l, ExprPtr r) { return Binary(BinaryOp::kOr, l, r); }
inline ExprPtr Not(ExprPtr c) { return Unary(UnaryOp::kNot, c); }
inline ExprPtr Neg(ExprPtr c) { return Unary(UnaryOp::kNeg, c); }
inline ExprPtr IsNull(ExprPtr c) { return Unary(UnaryOp::kIsNull, c); }
inline ExprPtr IsNotNull(ExprPtr c) { return Unary(UnaryOp::kIsNotNull, c); }

/// Evaluation-time services available to expressions (rand()) and
/// operators (the execution governor's cooperative checks).
struct EvalContext {
  Xoshiro256* rng = nullptr;
  /// Execution governor, when this evaluation runs governed (deadline /
  /// budgets / cancellation / fault injection); null = ungoverned. The ra
  /// operators Poll() it inside long row loops; the plan executor
  /// checkpoints it at operator boundaries.
  exec::ExecContext* exec = nullptr;
  /// Degree of parallelism for the ra operators (docs/performance.md).
  /// 1 = the untouched serial path; >1 lets the long row loops split into
  /// morsels on exec::ThreadPool. Results are identical either way.
  int dop = 1;
  /// Cross-iteration plan-state cache (plan_cache.h); null = caching off.
  /// Owned by the fixpoint driver; operators consult it only for inputs
  /// the plan executor marked as cache-stable (catalog-resident scans).
  PlanCache* cache = nullptr;
  /// Names of tables whose contents change across fixpoint iterations
  /// (the recursive relation and the refreshed computed-by temps), set by
  /// the fixpoint driver. Scans of these are never treated as
  /// cache-stable: caching them would insert an entry each iteration only
  /// to invalidate it the next, wasting work and governor byte budget.
  const std::unordered_set<std::string>* cache_unstable = nullptr;
  /// Rows between mid-operator governor Poll()s (the long-row-loop
  /// cancellation/deadline cadence). Set by the fixpoint drivers from
  /// exec::ResolvePollInterval(EngineProfile::governor_poll_interval) /
  /// GPR_POLL_INTERVAL. Affects only the poll cadence — the morsel
  /// decomposition stays fixed so results remain DOP-invariant.
  size_t poll_stride = 8192;
  /// Parallel-admission threshold (exec::AdmittedDop): inputs below this
  /// many rows run serial regardless of `dop` — splitting a tiny input
  /// into morsels costs more than scanning it. Set by the fixpoint
  /// drivers from exec::ResolveMinParallelRows(
  /// EngineProfile::parallel_min_rows) / GPR_MIN_PARALLEL_ROWS; 0 admits
  /// everything. Results are identical either way.
  size_t min_parallel_rows = 8192;
  /// CSR kernel observability (ra/csr.h), owned by the fixpoint driver.
  /// Doubles as the kernel knob: non-null = the aggregate-joins may take
  /// the CSR SpMV/SpMM path, null = generic paths only.
  KernelCounters* kernels = nullptr;
  /// Vectorized-execution observability (ra/vectorized.h), owned by the
  /// fixpoint driver. Doubles as the vectorize knob, mirroring `kernels`:
  /// non-null = the hot operators may run over column batches when the
  /// shape binds, null = row-at-a-time only (the differential oracle).
  VectorCounters* vectors = nullptr;
  /// Statically-proven plan facts (analysis/plan_facts.h), keyed by plan
  /// node identity; null = facts off. Owned by the fixpoint driver for the
  /// duration of one query. The plan executor consults it to skip work
  /// whose result is proven: a false-verdict selection subtree, a dedup
  /// over a proven duplicate-free input.
  const analysis::PlanFacts* facts = nullptr;
};

/// A bound expression: column references resolved to indexes, evaluable
/// per-tuple without string lookups.
class CompiledExpr {
 public:
  /// Evaluates against a row. SQL three-valued logic: comparisons and
  /// arithmetic over NULL yield NULL; NULL predicates are treated as false
  /// where a boolean is required.
  Value Eval(const Tuple& row, EvalContext* ctx = nullptr) const;

  /// Eval() coerced to a predicate: non-null, non-zero numeric => true.
  bool EvalBool(const Tuple& row, EvalContext* ctx = nullptr) const;

  /// Static result type of the expression (best effort).
  ValueType result_type() const { return result_type_; }

  /// False when the expression calls rand()/random(), whose value depends
  /// on evaluation order. Operators only evaluate deterministic
  /// expressions in parallel; the rest (MIS's coin flips) stay serial so
  /// every DOP reproduces the seeded sequence exactly.
  bool deterministic() const { return deterministic_; }

  struct Node {
    ExprKind kind;
    size_t column_index = 0;
    Value literal;
    BinaryOp bin_op = BinaryOp::kAdd;
    UnaryOp un_op = UnaryOp::kNot;
    int func = 0;  // FuncId
    std::vector<int> children;
    ValueType type = ValueType::kNull;
  };

  /// Read-only view of the lowered node array for the vectorized batch
  /// evaluator (ra/vectorized.cc), which compiles its own typed program
  /// from these nodes against a table's column representations. The static
  /// `type` tags are advisory (the engine is dynamically typed); the batch
  /// evaluator keys off column representations instead.
  const std::vector<Node>& nodes() const { return nodes_; }
  int root() const { return root_; }

 private:
  friend Result<CompiledExpr> Compile(const ExprPtr&, const Schema&);

  Value EvalNode(int id, const Tuple& row, EvalContext* ctx) const;

  std::vector<Node> nodes_;
  int root_ = -1;
  ValueType result_type_ = ValueType::kNull;
  bool deterministic_ = true;
};

/// Binds `expr` against `schema`. Fails with BindError on unknown columns or
/// unknown functions.
Result<CompiledExpr> Compile(const ExprPtr& expr, const Schema& schema);

}  // namespace gpr::ra
