// Shared machinery for the long loops of the ra operators: cooperative
// governor polling and morsel-driven parallel decomposition. Used by the
// row-at-a-time operators (operators.cc) and the vectorized batch path
// (vectorized.cc); extracting it keeps the two paths on the exact same
// admission, morsel-shape, and poll-cadence rules — a precondition for
// their differential row-identity guarantee.
#pragma once

#include <algorithm>
#include <vector>

#include "exec/exec_context.h"
#include "exec/thread_pool.h"
#include "ra/expr.h"
#include "ra/table.h"
#include "util/status.h"

namespace gpr::ra {

/// Cooperative governance inside long row loops: every poll_stride rows
/// (EvalContext::poll_stride, default kPollStride) the operator consults
/// the execution governor so cancellation and deadlines can interrupt a
/// large materialization mid-flight rather than only at operator
/// boundaries. Ungoverned runs pay two compares per row.
constexpr size_t kPollStride = 8192;

inline Status PollGovernor(EvalContext* ctx, size_t counter,
                           const char* site) {
  if (ctx != nullptr && ctx->exec != nullptr &&
      counter % ctx->poll_stride == ctx->poll_stride - 1) {
    return ctx->exec->Poll(site);
  }
  return Status::OK();
}

/// Morsel-driven parallelism (docs/performance.md). A DOP above 1 splits
/// the long row loops into numbered morsels executed on exec::ThreadPool;
/// each morsel fills a private output slot and the slots are spliced in
/// morsel order, so the result is byte-identical to the serial loop. The
/// decomposition depends only on (rows, dop) — never on the machine.
inline int EffectiveDop(const EvalContext* ctx) {
  return ctx == nullptr || ctx->dop < 1 ? 1 : ctx->dop;
}

/// EffectiveDop gated by the parallel-admission threshold
/// (exec::AdmittedDop): inputs under ctx->min_parallel_rows run serial at
/// any DOP — morsel dispatch on tiny inputs costs more than it saves
/// (docs/performance.md). A null ctx admits everything, preserving the
/// plain EffectiveDop behaviour.
inline int AdmitDop(const EvalContext* ctx, size_t rows) {
  return exec::AdmittedDop(rows, EffectiveDop(ctx),
                           ctx == nullptr ? 0 : ctx->min_parallel_rows);
}

/// Morsel size: kPollStride rows at scale, shrinking on small inputs so a
/// DOP-parallel run over a tiny table still splits into `dop` morsels
/// (what the determinism tests exercise).
inline size_t MorselRowsFor(size_t rows, int dop) {
  const size_t per_worker = (rows + dop - 1) / static_cast<size_t>(dop);
  return std::clamp<size_t>(per_worker, 1, kPollStride);
}

/// Runs `morsel(index, begin, end)` for every morsel of [0, rows) with up
/// to `dop` threads, polling the governor once per morsel so cancellation
/// and deadlines keep the serial poll cadence or better. The first failed
/// morsel's status is returned (lowest index — same as the serial loop).
template <typename Fn>
Status RunMorsels(EvalContext* ctx, size_t rows, int dop, const char* site,
                  const Fn& morsel) {
  const size_t morsel_rows = MorselRowsFor(rows, dop);
  const size_t num_morsels = exec::NumMorsels(rows, morsel_rows);
  exec::ExecContext* gov = ctx != nullptr ? ctx->exec : nullptr;
  return exec::ThreadPool::Global().RunTasks(
      num_morsels, static_cast<size_t>(dop), [&](size_t m) -> Status {
        if (gov != nullptr) {
          GPR_RETURN_NOT_OK(gov->Poll(site));
        }
        const size_t begin = m * morsel_rows;
        const size_t end = std::min(rows, begin + morsel_rows);
        return morsel(m, begin, end);
      });
}

/// Moves per-morsel output buffers into `out` in morsel order.
inline void SpliceInto(std::vector<std::vector<Tuple>>& parts, Table* out) {
  size_t total = 0;
  for (const auto& part : parts) total += part.size();
  out->Reserve(out->NumRows() + total);
  for (auto& part : parts) {
    for (Tuple& t : part) out->AddRow(std::move(t));
    part.clear();
  }
}

}  // namespace gpr::ra
