#include "ra/operators.h"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

#include "exec/exec_context.h"
#include "exec/thread_pool.h"
#include "ra/morsel.h"
#include "ra/plan_cache.h"
#include "ra/vectorized.h"

namespace gpr::ra::ops {
namespace {

// The poll / morsel helpers (PollGovernor, AdmitDop, RunMorsels,
// SpliceInto, ...) live in ra/morsel.h, shared with the vectorized batch
// path so both execute under identical admission and cadence rules.

using RowSet = std::unordered_set<Tuple, TupleHash, TupleEq>;
using RowMultiMap =
    std::unordered_map<Tuple, std::vector<size_t>, TupleHash, TupleEq>;

/// The plan cache to consult for an input, or null when caching does not
/// apply: the caller must have marked the input cache-stable, the context
/// must carry a cache, and the table must be named (anonymous intermediates
/// die with the operator, so their globally-unique versions never recur).
PlanCache* CacheFor(EvalContext* ctx, bool stable, const Table& t) {
  if (!stable || ctx == nullptr || ctx->cache == nullptr) return nullptr;
  return t.name().empty() ? nullptr : ctx->cache;
}

std::string KeyColsSuffix(const std::vector<size_t>& cols) {
  std::string out;
  for (size_t c : cols) {
    out += ':';
    out += std::to_string(c);
  }
  return out;
}

/// Memoized hash-join build side: per-key match lists in increasing row
/// order, partitioned by key hash. Shared read-only across morsel workers
/// and across fixpoint iterations; `num_parts` is carried so probes route
/// keys the way the build partitioned them regardless of the current DOP.
struct HashBuild {
  size_t num_parts = 1;
  std::vector<RowMultiMap> parts;
};

Result<std::vector<size_t>> ResolveAll(const Schema& schema,
                                       const std::vector<std::string>& cols) {
  std::vector<size_t> out;
  out.reserve(cols.size());
  for (const auto& c : cols) {
    GPR_ASSIGN_OR_RETURN(size_t i, schema.Resolve(c));
    out.push_back(i);
  }
  return out;
}

bool HasNullKey(const Tuple& key) {
  for (const Value& v : key) {
    if (v.is_null()) return true;
  }
  return false;
}

/// Builds the qualified concat schema for a two-input join/product.
/// A side with a name (or explicit qualifier) gets its columns qualified;
/// an unnamed side — typically an intermediate join whose columns are
/// already qualified — keeps its column names as-is.
Result<Schema> JoinedSchema(const Table& l, const Table& r,
                            const std::string& lqual = "",
                            const std::string& rqual = "") {
  const std::string ln = !lqual.empty() ? lqual : l.name();
  const std::string rn = !rqual.empty() ? rqual : r.name();
  if (!ln.empty() && ln == rn) {
    return Status::BindError(
        "join inputs share the name '" + ln +
        "'; rename one side first (self-joins need explicit aliases)");
  }
  Schema ls = ln.empty() ? l.schema() : l.schema().Qualified(ln);
  Schema rs = rn.empty() ? r.schema() : r.schema().Qualified(rn);
  return ls.Concat(rs);
}

Tuple ConcatRows(const Tuple& a, const Tuple& b) {
  Tuple out;
  out.reserve(a.size() + b.size());
  out.insert(out.end(), a.begin(), a.end());
  out.insert(out.end(), b.begin(), b.end());
  return out;
}

Tuple NullRow(size_t n) { return Tuple(n, Value::Null()); }

}  // namespace

const char* JoinAlgorithmName(JoinAlgorithm a) {
  switch (a) {
    case JoinAlgorithm::kHash: return "hash";
    case JoinAlgorithm::kSortMerge: return "sort-merge";
    case JoinAlgorithm::kNestedLoop: return "nested-loop";
    case JoinAlgorithm::kIndexNestedLoop: return "index-nested-loop";
  }
  return "?";
}

Result<Table> Select(const Table& in, const ExprPtr& pred, EvalContext* ctx) {
  GPR_ASSIGN_OR_RETURN(CompiledExpr p, Compile(pred, in.schema()));
  Table out(in.name(), in.schema());
  if (vec::Enabled(ctx)) {
    GPR_ASSIGN_OR_RETURN(bool done, vec::TrySelect(in, p, ctx, &out));
    if (done) return out;
    vec::CountFallback(ctx);
  }
  const size_t n = in.NumRows();
  const int dop = AdmitDop(ctx, n);
  if (dop > 1 && n > 1 && p.deterministic()) {
    std::vector<std::vector<Tuple>> parts(
        exec::NumMorsels(n, MorselRowsFor(n, dop)));
    GPR_RETURN_NOT_OK(RunMorsels(
        ctx, n, dop, "select", [&](size_t m, size_t begin, size_t end) {
          std::vector<Tuple>& part = parts[m];
          for (size_t i = begin; i < end; ++i) {
            const Tuple& row = in.row(i);
            if (p.EvalBool(row, ctx)) part.push_back(row);
          }
          return Status::OK();
        }));
    SpliceInto(parts, &out);
    return out;
  }
  out.Reserve(n);
  for (size_t i = 0; i < n; ++i) {
    GPR_RETURN_NOT_OK(PollGovernor(ctx, i, "select"));
    const Tuple& row = in.row(i);
    if (p.EvalBool(row, ctx)) out.AddRow(row);
  }
  return out;
}

Result<Table> Project(const Table& in, const std::vector<ProjectItem>& items,
                      EvalContext* ctx, std::string out_name) {
  std::vector<CompiledExpr> exprs;
  std::vector<Column> cols;
  exprs.reserve(items.size());
  for (const auto& item : items) {
    GPR_ASSIGN_OR_RETURN(CompiledExpr e, Compile(item.expr, in.schema()));
    cols.push_back({item.name, e.result_type()});
    exprs.push_back(std::move(e));
  }
  Table out(out_name.empty() ? in.name() : std::move(out_name),
            Schema(std::move(cols)));
  if (vec::Enabled(ctx)) {
    GPR_ASSIGN_OR_RETURN(bool done, vec::TryProject(in, exprs, ctx, &out));
    if (done) return out;
    vec::CountFallback(ctx);
  }
  const size_t n = in.NumRows();
  const int dop = AdmitDop(ctx, n);
  const bool deterministic =
      std::all_of(exprs.begin(), exprs.end(),
                  [](const CompiledExpr& e) { return e.deterministic(); });
  if (dop > 1 && n > 1 && deterministic) {
    std::vector<std::vector<Tuple>> parts(
        exec::NumMorsels(n, MorselRowsFor(n, dop)));
    GPR_RETURN_NOT_OK(RunMorsels(
        ctx, n, dop, "project", [&](size_t m, size_t begin, size_t end) {
          std::vector<Tuple>& part = parts[m];
          part.reserve(end - begin);
          for (size_t i = begin; i < end; ++i) {
            const Tuple& row = in.row(i);
            Tuple t;
            t.reserve(exprs.size());
            for (const auto& e : exprs) t.push_back(e.Eval(row, ctx));
            part.push_back(std::move(t));
          }
          return Status::OK();
        }));
    SpliceInto(parts, &out);
    return out;
  }
  out.Reserve(n);
  for (size_t i = 0; i < n; ++i) {
    GPR_RETURN_NOT_OK(PollGovernor(ctx, i, "project"));
    const Tuple& row = in.row(i);
    Tuple t;
    t.reserve(exprs.size());
    for (const auto& e : exprs) t.push_back(e.Eval(row, ctx));
    out.AddRow(std::move(t));
  }
  return out;
}

Result<Table> Rename(const Table& in, const std::string& new_name,
                     const std::vector<std::string>& col_names) {
  Schema schema = in.schema();
  if (!col_names.empty()) {
    GPR_ASSIGN_OR_RETURN(schema, in.schema().Renamed(col_names));
  }
  Table out(new_name, std::move(schema));
  out.mutable_rows() = in.rows();
  return out;
}

Result<Table> UnionAll(const Table& a, const Table& b, EvalContext* ctx) {
  if (!a.schema().UnionCompatible(b.schema())) {
    return Status::TypeMismatch("union between incompatible schemas " +
                                a.schema().ToString() + " and " +
                                b.schema().ToString());
  }
  Table out(a.name(), a.schema());
  out.Reserve(a.NumRows() + b.NumRows());
  out.mutable_rows() = a.rows();
  size_t i = 0;
  for (const Tuple& t : b.rows()) {
    GPR_RETURN_NOT_OK(PollGovernor(ctx, i++, "union_all"));
    out.AddRow(t);
  }
  return out;
}

Result<Table> UnionDistinct(const Table& a, const Table& b,
                            EvalContext* ctx) {
  GPR_ASSIGN_OR_RETURN(Table all, UnionAll(a, b, ctx));
  return Distinct(all, ctx);
}

Result<Table> Difference(const Table& a, const Table& b, EvalContext* ctx) {
  if (!a.schema().UnionCompatible(b.schema())) {
    return Status::TypeMismatch("difference between incompatible schemas");
  }
  RowSet bset(b.rows().begin(), b.rows().end());
  Table out(a.name(), a.schema());
  RowSet emitted;
  size_t i = 0;
  for (const Tuple& t : a.rows()) {
    GPR_RETURN_NOT_OK(PollGovernor(ctx, i++, "difference"));
    if (!bset.count(t) && emitted.insert(t).second) out.AddRow(t);
  }
  return out;
}

Result<Table> Intersect(const Table& a, const Table& b, EvalContext* ctx) {
  if (!a.schema().UnionCompatible(b.schema())) {
    return Status::TypeMismatch("intersect between incompatible schemas");
  }
  RowSet bset(b.rows().begin(), b.rows().end());
  Table out(a.name(), a.schema());
  RowSet emitted;
  size_t i = 0;
  for (const Tuple& t : a.rows()) {
    GPR_RETURN_NOT_OK(PollGovernor(ctx, i++, "intersect"));
    if (bset.count(t) && emitted.insert(t).second) out.AddRow(t);
  }
  return out;
}

Result<Table> Distinct(const Table& in, EvalContext* ctx) {
  Table out(in.name(), in.schema());
  RowSet seen;
  size_t i = 0;
  for (const Tuple& t : in.rows()) {
    GPR_RETURN_NOT_OK(PollGovernor(ctx, i++, "distinct"));
    if (seen.insert(t).second) out.AddRow(t);
  }
  return out;
}

Result<Table> CrossProduct(const Table& a, const Table& b, EvalContext* ctx) {
  GPR_ASSIGN_OR_RETURN(Schema schema, JoinedSchema(a, b));
  Table out("", std::move(schema));
  out.Reserve(a.NumRows() * b.NumRows());
  size_t emitted = 0;
  for (const Tuple& ra : a.rows()) {
    for (const Tuple& rb : b.rows()) {
      GPR_RETURN_NOT_OK(PollGovernor(ctx, emitted++, "cross_product"));
      out.AddRow(ConcatRows(ra, rb));
    }
  }
  return out;
}

namespace {

struct JoinPlan {
  std::vector<size_t> lkeys;
  std::vector<size_t> rkeys;
  Schema out_schema;
};

Result<JoinPlan> PlanJoin(const Table& l, const Table& r,
                          const JoinKeys& keys, const std::string& lqual = "",
                          const std::string& rqual = "") {
  if (keys.left.size() != keys.right.size()) {
    return Status::InvalidArgument("join key arity mismatch");
  }
  JoinPlan plan;
  GPR_ASSIGN_OR_RETURN(plan.lkeys, ResolveAll(l.schema(), keys.left));
  GPR_ASSIGN_OR_RETURN(plan.rkeys, ResolveAll(r.schema(), keys.right));
  GPR_ASSIGN_OR_RETURN(plan.out_schema, JoinedSchema(l, r, lqual, rqual));
  return plan;
}

Result<Table> HashJoinImpl(const Table& l, const Table& r,
                           const JoinPlan& plan, const ExprPtr& residual,
                           EvalContext* ctx, bool cache_build) {
  Table out("", plan.out_schema);
  std::optional<CompiledExpr> res;
  if (residual) {
    GPR_ASSIGN_OR_RETURN(CompiledExpr e, Compile(residual, plan.out_schema));
    res = std::move(e);
  }
  int dop = EffectiveDop(ctx);
  if (res && !res->deterministic()) dop = 1;
  // Per-side admission: the build parallelizes over r, the probe over l,
  // and either side alone may be too small to be worth dispatching.
  const int bdop = dop == 1 ? 1 : AdmitDop(ctx, r.NumRows());
  const int pdop = dop == 1 ? 1 : AdmitDop(ctx, l.NumRows());
  // Reuse the right table's hash index when it covers exactly the join key.
  const HashIndex* index = r.hash_index();
  const bool index_usable =
      index != nullptr && index->key_cols() == plan.rkeys;

  // Vectorized fast path: serial single-int64-key probe over column
  // batches, residual-free (a residual would re-box every joined row
  // anyway). An existing hash index already gives the row path an unboxed
  // probe, so it keeps precedence.
  if (vec::Enabled(ctx) && !res && !index_usable) {
    GPR_ASSIGN_OR_RETURN(
        bool done, vec::TryHashJoin(l, r, plan.lkeys, plan.rkeys, cache_build,
                                    ctx, &out));
    if (done) return out;
    vec::CountFallback(ctx);
  }

  // Build side. Serial: one map. Parallel: radix-style two-stage build —
  // morsels bucket right-row indexes by hash partition, then partition p
  // builds its own map by walking its buckets in morsel order, which keeps
  // every per-key match list in increasing row order, exactly as the
  // serial build produces it. When the right side is cache-stable the
  // finished build is memoized keyed on its (name, version) + key columns,
  // so later fixpoint iterations skip the build entirely.
  PlanCache* cache = index_usable ? nullptr : CacheFor(ctx, cache_build, r);
  std::shared_ptr<const HashBuild> built;
  std::string cache_key;
  const uint64_t rversion = r.version();
  if (cache != nullptr) {
    cache_key = "hj:" + r.name() + KeyColsSuffix(plan.rkeys);
    built = cache->Lookup<HashBuild>(cache_key, rversion);
  }
  if (!index_usable && built == nullptr) {
    auto fresh = std::make_shared<HashBuild>();
    fresh->num_parts = bdop > 1 && r.NumRows() > 1
                           ? static_cast<size_t>(bdop)
                           : 1;
    fresh->parts.resize(fresh->num_parts);
    if (fresh->num_parts == 1) {
      fresh->parts[0].reserve(r.NumRows());
      for (size_t i = 0; i < r.NumRows(); ++i) {
        GPR_RETURN_NOT_OK(PollGovernor(ctx, i, "join"));
        Tuple key = ProjectTuple(r.row(i), plan.rkeys);
        if (HasNullKey(key)) continue;
        fresh->parts[0][std::move(key)].push_back(i);
      }
    } else {
      const size_t rn = r.NumRows();
      const size_t num_parts = fresh->num_parts;
      const size_t num_morsels = exec::NumMorsels(rn, MorselRowsFor(rn, bdop));
      std::vector<std::vector<std::vector<size_t>>> buckets(
          num_morsels, std::vector<std::vector<size_t>>(num_parts));
      GPR_RETURN_NOT_OK(RunMorsels(
          ctx, rn, bdop, "join", [&](size_t m, size_t begin, size_t end) {
            Tuple key;
            for (size_t i = begin; i < end; ++i) {
              ProjectTupleInto(r.row(i), plan.rkeys, &key);
              if (HasNullKey(key)) continue;
              buckets[m][TupleHash{}(key) % num_parts].push_back(i);
            }
            return Status::OK();
          }));
      GPR_RETURN_NOT_OK(exec::ThreadPool::Global().RunTasks(
          num_parts, static_cast<size_t>(bdop), [&](size_t p) {
            RowMultiMap& map = fresh->parts[p];
            map.reserve(rn / num_parts + 1);
            Tuple key;
            size_t merged = 0;
            for (size_t m = 0; m < num_morsels; ++m) {
              for (size_t i : buckets[m][p]) {
                GPR_RETURN_NOT_OK(PollGovernor(ctx, merged++, "join"));
                ProjectTupleInto(r.row(i), plan.rkeys, &key);
                map[key].push_back(i);
              }
            }
            return Status::OK();
          }));
    }
    if (cache != nullptr) {
      const size_t bytes =
          r.NumRows() *
          (plan.rkeys.size() * sizeof(Value) + 2 * sizeof(size_t));
      GPR_RETURN_NOT_OK(cache->Insert<HashBuild>(cache_key, rversion, fresh,
                                                 bytes));
    }
    built = std::move(fresh);
  }
  auto find_matches = [&](const Tuple& key) -> const std::vector<size_t>* {
    if (index_usable) return index->Lookup(key);
    const RowMultiMap& map =
        built->parts[built->num_parts == 1
                         ? 0
                         : TupleHash{}(key) % built->num_parts];
    auto it = map.find(key);
    return it == map.end() ? nullptr : &it->second;
  };

  // Probe side: morsels over l, outputs spliced in morsel order.
  if (pdop > 1 && l.NumRows() > 1) {
    const size_t ln = l.NumRows();
    std::vector<std::vector<Tuple>> parts(
        exec::NumMorsels(ln, MorselRowsFor(ln, pdop)));
    GPR_RETURN_NOT_OK(RunMorsels(
        ctx, ln, pdop, "join", [&](size_t m, size_t begin, size_t end) {
          std::vector<Tuple>& part = parts[m];
          Tuple key;
          for (size_t li = begin; li < end; ++li) {
            const Tuple& lrow = l.row(li);
            ProjectTupleInto(lrow, plan.lkeys, &key);
            if (HasNullKey(key)) continue;
            const std::vector<size_t>* matches = find_matches(key);
            if (!matches) continue;
            for (size_t ri : *matches) {
              Tuple joined = ConcatRows(lrow, r.row(ri));
              if (res && !res->EvalBool(joined, ctx)) continue;
              part.push_back(std::move(joined));
            }
          }
          return Status::OK();
        }));
    SpliceInto(parts, &out);
    return out;
  }
  Tuple key;
  for (size_t li = 0; li < l.NumRows(); ++li) {
    GPR_RETURN_NOT_OK(PollGovernor(ctx, li, "join"));
    const Tuple& lrow = l.row(li);
    ProjectTupleInto(lrow, plan.lkeys, &key);
    if (HasNullKey(key)) continue;
    const std::vector<size_t>* matches = find_matches(key);
    if (!matches) continue;
    for (size_t ri : *matches) {
      Tuple joined = ConcatRows(lrow, r.row(ri));
      if (res && !res->EvalBool(joined, ctx)) continue;
      out.AddRow(std::move(joined));
    }
  }
  return out;
}

Result<Table> SortMergeJoinImpl(const Table& l, const Table& r,
                                const JoinPlan& plan, const ExprPtr& residual,
                                EvalContext* ctx, bool cache_left_sort,
                                bool cache_right_sort) {
  Table out("", plan.out_schema);
  std::optional<CompiledExpr> res;
  if (residual) {
    GPR_ASSIGN_OR_RETURN(CompiledExpr e, Compile(residual, plan.out_schema));
    res = std::move(e);
  }
  // Order both sides by key; reuse a matching sort index on the right
  // (this is what makes indexes pay off under the PostgreSQL-like profile).
  // Cache-stable inputs additionally memoize the computed sort run keyed on
  // (name, version, key columns) so fixpoint iterations sort only once.
  auto order_of = [](const Table& t, const std::vector<size_t>& keys) {
    std::vector<size_t> order(t.NumRows());
    for (size_t i = 0; i < order.size(); ++i) order[i] = i;
    std::stable_sort(order.begin(), order.end(), [&](size_t a, size_t b) {
      return CompareTuples(ProjectTuple(t.row(a), keys),
                           ProjectTuple(t.row(b), keys)) < 0;
    });
    return order;
  };
  auto ordered = [&](const Table& t, const std::vector<size_t>& keys,
                     bool cacheable)
      -> Result<std::shared_ptr<const std::vector<size_t>>> {
    const SortIndex* idx = t.sort_index();
    if (idx != nullptr && idx->key_cols() == keys) {
      return std::make_shared<const std::vector<size_t>>(idx->order());
    }
    PlanCache* cache = CacheFor(ctx, cacheable, t);
    std::string key;
    const uint64_t version = t.version();
    if (cache != nullptr) {
      key = "sort:" + t.name() + KeyColsSuffix(keys);
      auto hit = cache->Lookup<std::vector<size_t>>(key, version);
      if (hit != nullptr) return hit;
    }
    auto run = std::make_shared<const std::vector<size_t>>(order_of(t, keys));
    if (cache != nullptr) {
      GPR_RETURN_NOT_OK(cache->Insert<std::vector<size_t>>(
          key, version, run, run->size() * sizeof(size_t)));
    }
    return run;
  };
  GPR_ASSIGN_OR_RETURN(auto lrun, ordered(l, plan.lkeys, cache_left_sort));
  GPR_ASSIGN_OR_RETURN(auto rrun, ordered(r, plan.rkeys, cache_right_sort));
  const std::vector<size_t>& lorder = *lrun;
  const std::vector<size_t>& rorder = *rrun;
  size_t i = 0;
  size_t j = 0;
  size_t steps = 0;
  while (i < lorder.size() && j < rorder.size()) {
    GPR_RETURN_NOT_OK(PollGovernor(ctx, steps++, "join"));
    Tuple lkey = ProjectTuple(l.row(lorder[i]), plan.lkeys);
    Tuple rkey = ProjectTuple(r.row(rorder[j]), plan.rkeys);
    if (HasNullKey(lkey)) { ++i; continue; }
    if (HasNullKey(rkey)) { ++j; continue; }
    const int c = CompareTuples(lkey, rkey);
    if (c < 0) { ++i; continue; }
    if (c > 0) { ++j; continue; }
    // Equal block: find extents on both sides.
    size_t i2 = i;
    while (i2 < lorder.size() &&
           CompareTuples(ProjectTuple(l.row(lorder[i2]), plan.lkeys), lkey) ==
               0) {
      ++i2;
    }
    size_t j2 = j;
    while (j2 < rorder.size() &&
           CompareTuples(ProjectTuple(r.row(rorder[j2]), plan.rkeys), rkey) ==
               0) {
      ++j2;
    }
    for (size_t a = i; a < i2; ++a) {
      for (size_t b = j; b < j2; ++b) {
        GPR_RETURN_NOT_OK(PollGovernor(ctx, steps++, "join"));
        Tuple joined = ConcatRows(l.row(lorder[a]), r.row(rorder[b]));
        if (res && !res->EvalBool(joined, ctx)) continue;
        out.AddRow(std::move(joined));
      }
    }
    i = i2;
    j = j2;
  }
  return out;
}

Result<Table> NestedLoopJoinImpl(const Table& l, const Table& r,
                                 const JoinPlan& plan, const ExprPtr& residual,
                                 EvalContext* ctx) {
  Table out("", plan.out_schema);
  std::optional<CompiledExpr> res;
  if (residual) {
    GPR_ASSIGN_OR_RETURN(CompiledExpr e, Compile(residual, plan.out_schema));
    res = std::move(e);
  }
  for (size_t li = 0; li < l.NumRows(); ++li) {
    GPR_RETURN_NOT_OK(PollGovernor(ctx, li, "join"));
    const Tuple& lrow = l.row(li);
    Tuple lkey = ProjectTuple(lrow, plan.lkeys);
    if (HasNullKey(lkey)) continue;
    for (const Tuple& rrow : r.rows()) {
      if (!TupleEq()(lkey, ProjectTuple(rrow, plan.rkeys))) continue;
      Tuple joined = ConcatRows(lrow, rrow);
      if (res && !res->EvalBool(joined, ctx)) continue;
      out.AddRow(std::move(joined));
    }
  }
  return out;
}

}  // namespace

Result<Table> Join(const Table& l, const Table& r, const JoinKeys& keys,
                   JoinAlgorithm algo, const ExprPtr& residual,
                   EvalContext* ctx) {
  JoinOptions opts;
  opts.algo = algo;
  opts.residual = residual;
  opts.ctx = ctx;
  return JoinWithOptions(l, r, keys, opts);
}

Result<Table> JoinWithOptions(const Table& l, const Table& r,
                              const JoinKeys& keys, const JoinOptions& opts) {
  const JoinAlgorithm algo = opts.algo;
  const ExprPtr& residual = opts.residual;
  EvalContext* ctx = opts.ctx;
  GPR_ASSIGN_OR_RETURN(
      JoinPlan plan,
      PlanJoin(l, r, keys, opts.left_qualifier, opts.right_qualifier));
  switch (algo) {
    case JoinAlgorithm::kHash:
    case JoinAlgorithm::kIndexNestedLoop:
      // Index-nested-loop degenerates to a hash probe in this engine; the
      // distinction matters only for plan accounting.
      return HashJoinImpl(l, r, plan, residual, ctx, opts.cache_build);
    case JoinAlgorithm::kSortMerge:
      return SortMergeJoinImpl(l, r, plan, residual, ctx,
                               opts.cache_left_sort, opts.cache_right_sort);
    case JoinAlgorithm::kNestedLoop:
      return NestedLoopJoinImpl(l, r, plan, residual, ctx);
  }
  GPR_UNREACHABLE();
}

Result<Table> LeftOuterJoin(const Table& l, const Table& r,
                            const JoinKeys& keys, EvalContext* ctx) {
  GPR_ASSIGN_OR_RETURN(JoinPlan plan, PlanJoin(l, r, keys));
  Table out("", plan.out_schema);
  RowMultiMap built;
  built.reserve(r.NumRows());
  for (size_t i = 0; i < r.NumRows(); ++i) {
    GPR_RETURN_NOT_OK(PollGovernor(ctx, i, "left_outer_join"));
    Tuple key = ProjectTuple(r.row(i), plan.rkeys);
    if (HasNullKey(key)) continue;
    built[std::move(key)].push_back(i);
  }
  const size_t rwidth = r.schema().NumColumns();
  size_t steps = 0;
  for (const Tuple& lrow : l.rows()) {
    GPR_RETURN_NOT_OK(PollGovernor(ctx, steps++, "left_outer_join"));
    Tuple key = ProjectTuple(lrow, plan.lkeys);
    auto it = HasNullKey(key) ? built.end() : built.find(key);
    if (it == built.end()) {
      out.AddRow(ConcatRows(lrow, NullRow(rwidth)));
      continue;
    }
    for (size_t ri : it->second) {
      GPR_RETURN_NOT_OK(PollGovernor(ctx, steps++, "left_outer_join"));
      out.AddRow(ConcatRows(lrow, r.row(ri)));
    }
  }
  return out;
}

Result<Table> FullOuterJoin(const Table& l, const Table& r,
                            const JoinKeys& keys, EvalContext* ctx) {
  GPR_ASSIGN_OR_RETURN(JoinPlan plan, PlanJoin(l, r, keys));
  Table out("", plan.out_schema);
  RowMultiMap built;
  built.reserve(r.NumRows());
  for (size_t i = 0; i < r.NumRows(); ++i) {
    GPR_RETURN_NOT_OK(PollGovernor(ctx, i, "full_outer_join"));
    Tuple key = ProjectTuple(r.row(i), plan.rkeys);
    if (HasNullKey(key)) continue;
    built[std::move(key)].push_back(i);
  }
  std::vector<bool> rmatched(r.NumRows(), false);
  const size_t lwidth = l.schema().NumColumns();
  const size_t rwidth = r.schema().NumColumns();
  size_t steps = 0;
  for (const Tuple& lrow : l.rows()) {
    GPR_RETURN_NOT_OK(PollGovernor(ctx, steps++, "full_outer_join"));
    Tuple key = ProjectTuple(lrow, plan.lkeys);
    auto it = HasNullKey(key) ? built.end() : built.find(key);
    if (it == built.end()) {
      out.AddRow(ConcatRows(lrow, NullRow(rwidth)));
      continue;
    }
    for (size_t ri : it->second) {
      GPR_RETURN_NOT_OK(PollGovernor(ctx, steps++, "full_outer_join"));
      rmatched[ri] = true;
      out.AddRow(ConcatRows(lrow, r.row(ri)));
    }
  }
  for (size_t ri = 0; ri < r.NumRows(); ++ri) {
    GPR_RETURN_NOT_OK(PollGovernor(ctx, ri, "full_outer_join"));
    if (!rmatched[ri]) out.AddRow(ConcatRows(NullRow(lwidth), r.row(ri)));
  }
  return out;
}

Result<Table> SemiJoin(const Table& l, const Table& r, const JoinKeys& keys,
                       EvalContext* ctx) {
  if (keys.left.size() != keys.right.size()) {
    return Status::InvalidArgument("join key arity mismatch");
  }
  GPR_ASSIGN_OR_RETURN(auto lkeys, ResolveAll(l.schema(), keys.left));
  GPR_ASSIGN_OR_RETURN(auto rkeys, ResolveAll(r.schema(), keys.right));
  RowSet rset;
  size_t i = 0;
  for (const Tuple& rrow : r.rows()) {
    GPR_RETURN_NOT_OK(PollGovernor(ctx, i++, "semi_join"));
    Tuple key = ProjectTuple(rrow, rkeys);
    if (!HasNullKey(key)) rset.insert(std::move(key));
  }
  Table out(l.name(), l.schema());
  i = 0;
  for (const Tuple& lrow : l.rows()) {
    GPR_RETURN_NOT_OK(PollGovernor(ctx, i++, "semi_join"));
    Tuple key = ProjectTuple(lrow, lkeys);
    if (!HasNullKey(key) && rset.count(key)) out.AddRow(lrow);
  }
  return out;
}

Result<Table> AntiJoinBasic(const Table& l, const Table& r,
                            const JoinKeys& keys, EvalContext* ctx,
                            bool cache_probe) {
  if (keys.left.size() != keys.right.size()) {
    return Status::InvalidArgument("join key arity mismatch");
  }
  GPR_ASSIGN_OR_RETURN(auto lkeys, ResolveAll(l.schema(), keys.left));
  GPR_ASSIGN_OR_RETURN(auto rkeys, ResolveAll(r.schema(), keys.right));
  PlanCache* cache = CacheFor(ctx, cache_probe, r);
  std::shared_ptr<const RowSet> rset;
  std::string cache_key;
  const uint64_t rversion = r.version();
  if (cache != nullptr) {
    cache_key = "aj:" + r.name() + KeyColsSuffix(rkeys);
    rset = cache->Lookup<RowSet>(cache_key, rversion);
  }
  if (rset == nullptr) {
    auto fresh = std::make_shared<RowSet>();
    fresh->reserve(r.NumRows());
    size_t bi = 0;
    for (const Tuple& rrow : r.rows()) {
      GPR_RETURN_NOT_OK(PollGovernor(ctx, bi++, "anti_join"));
      Tuple key = ProjectTuple(rrow, rkeys);
      if (!HasNullKey(key)) fresh->insert(std::move(key));
    }
    if (cache != nullptr) {
      GPR_RETURN_NOT_OK(cache->Insert<RowSet>(
          cache_key, rversion, fresh,
          fresh->size() * rkeys.size() * sizeof(Value)));
    }
    rset = std::move(fresh);
  }
  Table out(l.name(), l.schema());
  size_t pi = 0;
  for (const Tuple& lrow : l.rows()) {
    GPR_RETURN_NOT_OK(PollGovernor(ctx, pi++, "anti_join"));
    Tuple key = ProjectTuple(lrow, lkeys);
    if (HasNullKey(key) || !rset->count(key)) out.AddRow(lrow);
  }
  return out;
}

Result<Table> GroupBy(const Table& in,
                      const std::vector<std::string>& group_cols,
                      const std::vector<AggSpec>& aggs, EvalContext* ctx) {
  GPR_ASSIGN_OR_RETURN(auto gidx, ResolveAll(in.schema(), group_cols));

  std::vector<std::optional<CompiledExpr>> args(aggs.size());
  std::vector<Column> out_cols;
  for (size_t g : gidx) out_cols.push_back(in.schema().column(g));
  for (size_t i = 0; i < aggs.size(); ++i) {
    ValueType t = ValueType::kInt64;
    if (aggs[i].arg) {
      GPR_ASSIGN_OR_RETURN(CompiledExpr e, Compile(aggs[i].arg, in.schema()));
      t = e.result_type();
      args[i] = std::move(e);
    }
    switch (aggs[i].kind) {
      case AggKind::kCount: t = ValueType::kInt64; break;
      case AggKind::kAvg: t = ValueType::kDouble; break;
      default: break;
    }
    out_cols.push_back({aggs[i].out_name, t});
  }
  Table out("", Schema(std::move(out_cols)));

  if (vec::Enabled(ctx) && !gidx.empty()) {
    GPR_ASSIGN_OR_RETURN(bool done,
                         vec::TryGroupBy(in, gidx, aggs, args, ctx, &out));
    if (done) return out;
    vec::CountFallback(ctx);
  }

  const size_t n = in.NumRows();
  const int dop = AdmitDop(ctx, n);
  const bool deterministic = std::all_of(
      args.begin(), args.end(),
      [](const std::optional<CompiledExpr>& e) {
        return !e || e->deterministic();
      });
  if (!group_cols.empty() && dop > 1 && n > 1 && deterministic) {
    // Parallel aggregation partitions by *group-key hash*, not by input
    // morsel: partition p owns every group whose key hashes to it and
    // scans the whole input in row order, accumulating only its groups.
    // Each group therefore sees its rows in exactly the serial order —
    // floating-point sums come out bit-identical, with no partial-state
    // merge step. Output order is rebuilt by sorting groups on the row
    // index of their first appearance (= the serial first-appearance
    // order).
    struct Group {
      size_t first_row;
      std::vector<Accumulator> accs;
    };
    using GroupMap = std::unordered_map<Tuple, Group, TupleHash, TupleEq>;
    const size_t num_parts = static_cast<size_t>(dop);
    std::vector<GroupMap> parts(num_parts);
    exec::ExecContext* gov = ctx != nullptr ? ctx->exec : nullptr;
    const size_t poll_stride = ctx != nullptr ? ctx->poll_stride : kPollStride;
    GPR_RETURN_NOT_OK(exec::ThreadPool::Global().RunTasks(
        num_parts, num_parts, [&](size_t p) -> Status {
          GroupMap& groups = parts[p];
          Tuple key;
          for (size_t ri = 0; ri < n; ++ri) {
            if (gov != nullptr && ri % poll_stride == poll_stride - 1) {
              GPR_RETURN_NOT_OK(gov->Poll("group_by"));
            }
            const Tuple& row = in.row(ri);
            ProjectTupleInto(row, gidx, &key);
            if (TupleHash{}(key) % num_parts != p) continue;
            auto [it, inserted] = groups.try_emplace(key);
            if (inserted) {
              it->second.first_row = ri;
              it->second.accs.reserve(aggs.size());
              for (const auto& a : aggs) it->second.accs.emplace_back(a.kind);
            }
            for (size_t i = 0; i < aggs.size(); ++i) {
              const Value v =
                  args[i] ? args[i]->Eval(row, ctx) : Value(int64_t{1});
              it->second.accs[i].Add(v);
            }
          }
          return Status::OK();
        }));
    std::vector<std::pair<size_t, std::pair<const Tuple*, const Group*>>>
        ordered;
    for (const GroupMap& part : parts) {
      for (const auto& [key, group] : part) {
        ordered.push_back({group.first_row, {&key, &group}});
      }
    }
    std::sort(ordered.begin(), ordered.end(),
              [](const auto& a, const auto& b) { return a.first < b.first; });
    out.Reserve(ordered.size());
    for (const auto& [first_row, entry] : ordered) {
      Tuple t = *entry.first;
      for (const auto& acc : entry.second->accs) t.push_back(acc.Finish());
      out.AddRow(std::move(t));
    }
    return out;
  }

  std::unordered_map<Tuple, std::vector<Accumulator>, TupleHash, TupleEq>
      groups;
  std::vector<Tuple> group_order;  // deterministic output order
  for (size_t ri = 0; ri < n; ++ri) {
    GPR_RETURN_NOT_OK(PollGovernor(ctx, ri, "group_by"));
    const Tuple& row = in.row(ri);
    Tuple key = ProjectTuple(row, gidx);
    auto [it, inserted] = groups.try_emplace(key);
    if (inserted) {
      it->second.reserve(aggs.size());
      for (const auto& a : aggs) it->second.emplace_back(a.kind);
      group_order.push_back(key);
    }
    for (size_t i = 0; i < aggs.size(); ++i) {
      const Value v =
          args[i] ? args[i]->Eval(row, ctx) : Value(int64_t{1});  // count(*)
      it->second[i].Add(v);
    }
  }
  // SQL: aggregation with no group-by over an empty input yields one row.
  if (group_cols.empty() && groups.empty()) {
    Tuple t;
    for (const auto& a : aggs) t.push_back(Accumulator(a.kind).Finish());
    out.AddRow(std::move(t));
    return out;
  }
  for (const Tuple& key : group_order) {
    auto& accs = groups.at(key);
    Tuple t = key;
    for (const auto& acc : accs) t.push_back(acc.Finish());
    out.AddRow(std::move(t));
  }
  return out;
}

Result<Table> Sort(const Table& in, const std::vector<std::string>& cols) {
  GPR_ASSIGN_OR_RETURN(auto idx, ResolveAll(in.schema(), cols));
  Table out(in.name(), in.schema());
  out.mutable_rows() = in.rows();
  std::stable_sort(out.mutable_rows().begin(), out.mutable_rows().end(),
                   [&](const Tuple& a, const Tuple& b) {
                     return CompareTuples(ProjectTuple(a, idx),
                                          ProjectTuple(b, idx)) < 0;
                   });
  return out;
}

}  // namespace gpr::ra::ops
