#include "ra/operators.h"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

#include "exec/exec_context.h"

namespace gpr::ra::ops {
namespace {

/// Cooperative governance inside long row loops: every kPollStride rows the
/// operator consults the execution governor so cancellation and deadlines
/// can interrupt a large materialization mid-flight rather than only at
/// operator boundaries. Ungoverned runs pay two compares per row.
constexpr size_t kPollStride = 8192;

inline Status PollGovernor(EvalContext* ctx, size_t counter,
                           const char* site) {
  if (ctx != nullptr && ctx->exec != nullptr &&
      counter % kPollStride == kPollStride - 1) {
    return ctx->exec->Poll(site);
  }
  return Status::OK();
}

using RowSet = std::unordered_set<Tuple, TupleHash, TupleEq>;
using RowMultiMap =
    std::unordered_map<Tuple, std::vector<size_t>, TupleHash, TupleEq>;

Result<std::vector<size_t>> ResolveAll(const Schema& schema,
                                       const std::vector<std::string>& cols) {
  std::vector<size_t> out;
  out.reserve(cols.size());
  for (const auto& c : cols) {
    GPR_ASSIGN_OR_RETURN(size_t i, schema.Resolve(c));
    out.push_back(i);
  }
  return out;
}

bool HasNullKey(const Tuple& key) {
  for (const Value& v : key) {
    if (v.is_null()) return true;
  }
  return false;
}

/// Builds the qualified concat schema for a two-input join/product.
/// A side with a name (or explicit qualifier) gets its columns qualified;
/// an unnamed side — typically an intermediate join whose columns are
/// already qualified — keeps its column names as-is.
Result<Schema> JoinedSchema(const Table& l, const Table& r,
                            const std::string& lqual = "",
                            const std::string& rqual = "") {
  const std::string ln = !lqual.empty() ? lqual : l.name();
  const std::string rn = !rqual.empty() ? rqual : r.name();
  if (!ln.empty() && ln == rn) {
    return Status::BindError(
        "join inputs share the name '" + ln +
        "'; rename one side first (self-joins need explicit aliases)");
  }
  Schema ls = ln.empty() ? l.schema() : l.schema().Qualified(ln);
  Schema rs = rn.empty() ? r.schema() : r.schema().Qualified(rn);
  return ls.Concat(rs);
}

Tuple ConcatRows(const Tuple& a, const Tuple& b) {
  Tuple out;
  out.reserve(a.size() + b.size());
  out.insert(out.end(), a.begin(), a.end());
  out.insert(out.end(), b.begin(), b.end());
  return out;
}

Tuple NullRow(size_t n) { return Tuple(n, Value::Null()); }

}  // namespace

const char* JoinAlgorithmName(JoinAlgorithm a) {
  switch (a) {
    case JoinAlgorithm::kHash: return "hash";
    case JoinAlgorithm::kSortMerge: return "sort-merge";
    case JoinAlgorithm::kNestedLoop: return "nested-loop";
    case JoinAlgorithm::kIndexNestedLoop: return "index-nested-loop";
  }
  return "?";
}

Result<Table> Select(const Table& in, const ExprPtr& pred, EvalContext* ctx) {
  GPR_ASSIGN_OR_RETURN(CompiledExpr p, Compile(pred, in.schema()));
  Table out(in.name(), in.schema());
  for (size_t i = 0; i < in.NumRows(); ++i) {
    GPR_RETURN_NOT_OK(PollGovernor(ctx, i, "select"));
    const Tuple& row = in.row(i);
    if (p.EvalBool(row, ctx)) out.AddRow(row);
  }
  return out;
}

Result<Table> Project(const Table& in, const std::vector<ProjectItem>& items,
                      EvalContext* ctx, std::string out_name) {
  std::vector<CompiledExpr> exprs;
  std::vector<Column> cols;
  exprs.reserve(items.size());
  for (const auto& item : items) {
    GPR_ASSIGN_OR_RETURN(CompiledExpr e, Compile(item.expr, in.schema()));
    cols.push_back({item.name, e.result_type()});
    exprs.push_back(std::move(e));
  }
  Table out(out_name.empty() ? in.name() : std::move(out_name),
            Schema(std::move(cols)));
  out.Reserve(in.NumRows());
  for (size_t i = 0; i < in.NumRows(); ++i) {
    GPR_RETURN_NOT_OK(PollGovernor(ctx, i, "project"));
    const Tuple& row = in.row(i);
    Tuple t;
    t.reserve(exprs.size());
    for (const auto& e : exprs) t.push_back(e.Eval(row, ctx));
    out.AddRow(std::move(t));
  }
  return out;
}

Result<Table> Rename(const Table& in, const std::string& new_name,
                     const std::vector<std::string>& col_names) {
  Schema schema = in.schema();
  if (!col_names.empty()) {
    GPR_ASSIGN_OR_RETURN(schema, in.schema().Renamed(col_names));
  }
  Table out(new_name, std::move(schema));
  out.mutable_rows() = in.rows();
  return out;
}

Result<Table> UnionAll(const Table& a, const Table& b) {
  if (!a.schema().UnionCompatible(b.schema())) {
    return Status::TypeMismatch("union between incompatible schemas " +
                                a.schema().ToString() + " and " +
                                b.schema().ToString());
  }
  Table out(a.name(), a.schema());
  out.Reserve(a.NumRows() + b.NumRows());
  out.mutable_rows() = a.rows();
  for (const Tuple& t : b.rows()) out.AddRow(t);
  return out;
}

Result<Table> UnionDistinct(const Table& a, const Table& b) {
  GPR_ASSIGN_OR_RETURN(Table all, UnionAll(a, b));
  return Distinct(all);
}

Result<Table> Difference(const Table& a, const Table& b) {
  if (!a.schema().UnionCompatible(b.schema())) {
    return Status::TypeMismatch("difference between incompatible schemas");
  }
  RowSet bset(b.rows().begin(), b.rows().end());
  Table out(a.name(), a.schema());
  RowSet emitted;
  for (const Tuple& t : a.rows()) {
    if (!bset.count(t) && emitted.insert(t).second) out.AddRow(t);
  }
  return out;
}

Result<Table> Intersect(const Table& a, const Table& b) {
  if (!a.schema().UnionCompatible(b.schema())) {
    return Status::TypeMismatch("intersect between incompatible schemas");
  }
  RowSet bset(b.rows().begin(), b.rows().end());
  Table out(a.name(), a.schema());
  RowSet emitted;
  for (const Tuple& t : a.rows()) {
    if (bset.count(t) && emitted.insert(t).second) out.AddRow(t);
  }
  return out;
}

Result<Table> Distinct(const Table& in) {
  Table out(in.name(), in.schema());
  RowSet seen;
  for (const Tuple& t : in.rows()) {
    if (seen.insert(t).second) out.AddRow(t);
  }
  return out;
}

Result<Table> CrossProduct(const Table& a, const Table& b) {
  GPR_ASSIGN_OR_RETURN(Schema schema, JoinedSchema(a, b));
  Table out("", std::move(schema));
  out.Reserve(a.NumRows() * b.NumRows());
  for (const Tuple& ra : a.rows()) {
    for (const Tuple& rb : b.rows()) {
      out.AddRow(ConcatRows(ra, rb));
    }
  }
  return out;
}

namespace {

struct JoinPlan {
  std::vector<size_t> lkeys;
  std::vector<size_t> rkeys;
  Schema out_schema;
};

Result<JoinPlan> PlanJoin(const Table& l, const Table& r,
                          const JoinKeys& keys, const std::string& lqual = "",
                          const std::string& rqual = "") {
  if (keys.left.size() != keys.right.size()) {
    return Status::InvalidArgument("join key arity mismatch");
  }
  JoinPlan plan;
  GPR_ASSIGN_OR_RETURN(plan.lkeys, ResolveAll(l.schema(), keys.left));
  GPR_ASSIGN_OR_RETURN(plan.rkeys, ResolveAll(r.schema(), keys.right));
  GPR_ASSIGN_OR_RETURN(plan.out_schema, JoinedSchema(l, r, lqual, rqual));
  return plan;
}

Result<Table> HashJoinImpl(const Table& l, const Table& r,
                           const JoinPlan& plan, const ExprPtr& residual,
                           EvalContext* ctx) {
  Table out("", plan.out_schema);
  std::optional<CompiledExpr> res;
  if (residual) {
    GPR_ASSIGN_OR_RETURN(CompiledExpr e, Compile(residual, plan.out_schema));
    res = std::move(e);
  }
  // Reuse the right table's hash index when it covers exactly the join key.
  const HashIndex* index = r.hash_index();
  const bool index_usable =
      index != nullptr && index->key_cols() == plan.rkeys;
  RowMultiMap built;
  if (!index_usable) {
    built.reserve(r.NumRows());
    for (size_t i = 0; i < r.NumRows(); ++i) {
      Tuple key = ProjectTuple(r.row(i), plan.rkeys);
      if (HasNullKey(key)) continue;
      built[std::move(key)].push_back(i);
    }
  }
  for (size_t li = 0; li < l.NumRows(); ++li) {
    GPR_RETURN_NOT_OK(PollGovernor(ctx, li, "join"));
    const Tuple& lrow = l.row(li);
    Tuple key = ProjectTuple(lrow, plan.lkeys);
    if (HasNullKey(key)) continue;
    const std::vector<size_t>* matches = nullptr;
    if (index_usable) {
      matches = index->Lookup(key);
    } else {
      auto it = built.find(key);
      if (it != built.end()) matches = &it->second;
    }
    if (!matches) continue;
    for (size_t ri : *matches) {
      Tuple joined = ConcatRows(lrow, r.row(ri));
      if (res && !res->EvalBool(joined, ctx)) continue;
      out.AddRow(std::move(joined));
    }
  }
  return out;
}

Result<Table> SortMergeJoinImpl(const Table& l, const Table& r,
                                const JoinPlan& plan, const ExprPtr& residual,
                                EvalContext* ctx) {
  Table out("", plan.out_schema);
  std::optional<CompiledExpr> res;
  if (residual) {
    GPR_ASSIGN_OR_RETURN(CompiledExpr e, Compile(residual, plan.out_schema));
    res = std::move(e);
  }
  // Order both sides by key; reuse a matching sort index on the right
  // (this is what makes indexes pay off under the PostgreSQL-like profile).
  auto order_of = [](const Table& t, const std::vector<size_t>& keys) {
    std::vector<size_t> order(t.NumRows());
    for (size_t i = 0; i < order.size(); ++i) order[i] = i;
    std::stable_sort(order.begin(), order.end(), [&](size_t a, size_t b) {
      return CompareTuples(ProjectTuple(t.row(a), keys),
                           ProjectTuple(t.row(b), keys)) < 0;
    });
    return order;
  };
  std::vector<size_t> lorder;
  const SortIndex* lidx = l.sort_index();
  if (lidx != nullptr && lidx->key_cols() == plan.lkeys) {
    lorder = lidx->order();
  } else {
    lorder = order_of(l, plan.lkeys);
  }
  std::vector<size_t> rorder;
  const SortIndex* ridx = r.sort_index();
  if (ridx != nullptr && ridx->key_cols() == plan.rkeys) {
    rorder = ridx->order();
  } else {
    rorder = order_of(r, plan.rkeys);
  }
  size_t i = 0;
  size_t j = 0;
  size_t steps = 0;
  while (i < lorder.size() && j < rorder.size()) {
    GPR_RETURN_NOT_OK(PollGovernor(ctx, steps++, "join"));
    Tuple lkey = ProjectTuple(l.row(lorder[i]), plan.lkeys);
    Tuple rkey = ProjectTuple(r.row(rorder[j]), plan.rkeys);
    if (HasNullKey(lkey)) { ++i; continue; }
    if (HasNullKey(rkey)) { ++j; continue; }
    const int c = CompareTuples(lkey, rkey);
    if (c < 0) { ++i; continue; }
    if (c > 0) { ++j; continue; }
    // Equal block: find extents on both sides.
    size_t i2 = i;
    while (i2 < lorder.size() &&
           CompareTuples(ProjectTuple(l.row(lorder[i2]), plan.lkeys), lkey) ==
               0) {
      ++i2;
    }
    size_t j2 = j;
    while (j2 < rorder.size() &&
           CompareTuples(ProjectTuple(r.row(rorder[j2]), plan.rkeys), rkey) ==
               0) {
      ++j2;
    }
    for (size_t a = i; a < i2; ++a) {
      for (size_t b = j; b < j2; ++b) {
        Tuple joined = ConcatRows(l.row(lorder[a]), r.row(rorder[b]));
        if (res && !res->EvalBool(joined, ctx)) continue;
        out.AddRow(std::move(joined));
      }
    }
    i = i2;
    j = j2;
  }
  return out;
}

Result<Table> NestedLoopJoinImpl(const Table& l, const Table& r,
                                 const JoinPlan& plan, const ExprPtr& residual,
                                 EvalContext* ctx) {
  Table out("", plan.out_schema);
  std::optional<CompiledExpr> res;
  if (residual) {
    GPR_ASSIGN_OR_RETURN(CompiledExpr e, Compile(residual, plan.out_schema));
    res = std::move(e);
  }
  for (size_t li = 0; li < l.NumRows(); ++li) {
    GPR_RETURN_NOT_OK(PollGovernor(ctx, li, "join"));
    const Tuple& lrow = l.row(li);
    Tuple lkey = ProjectTuple(lrow, plan.lkeys);
    if (HasNullKey(lkey)) continue;
    for (const Tuple& rrow : r.rows()) {
      if (!TupleEq()(lkey, ProjectTuple(rrow, plan.rkeys))) continue;
      Tuple joined = ConcatRows(lrow, rrow);
      if (res && !res->EvalBool(joined, ctx)) continue;
      out.AddRow(std::move(joined));
    }
  }
  return out;
}

}  // namespace

Result<Table> Join(const Table& l, const Table& r, const JoinKeys& keys,
                   JoinAlgorithm algo, const ExprPtr& residual,
                   EvalContext* ctx) {
  JoinOptions opts;
  opts.algo = algo;
  opts.residual = residual;
  opts.ctx = ctx;
  return JoinWithOptions(l, r, keys, opts);
}

Result<Table> JoinWithOptions(const Table& l, const Table& r,
                              const JoinKeys& keys, const JoinOptions& opts) {
  const JoinAlgorithm algo = opts.algo;
  const ExprPtr& residual = opts.residual;
  EvalContext* ctx = opts.ctx;
  GPR_ASSIGN_OR_RETURN(
      JoinPlan plan,
      PlanJoin(l, r, keys, opts.left_qualifier, opts.right_qualifier));
  switch (algo) {
    case JoinAlgorithm::kHash:
    case JoinAlgorithm::kIndexNestedLoop:
      // Index-nested-loop degenerates to a hash probe in this engine; the
      // distinction matters only for plan accounting.
      return HashJoinImpl(l, r, plan, residual, ctx);
    case JoinAlgorithm::kSortMerge:
      return SortMergeJoinImpl(l, r, plan, residual, ctx);
    case JoinAlgorithm::kNestedLoop:
      return NestedLoopJoinImpl(l, r, plan, residual, ctx);
  }
  GPR_UNREACHABLE();
}

Result<Table> LeftOuterJoin(const Table& l, const Table& r,
                            const JoinKeys& keys) {
  GPR_ASSIGN_OR_RETURN(JoinPlan plan, PlanJoin(l, r, keys));
  Table out("", plan.out_schema);
  RowMultiMap built;
  built.reserve(r.NumRows());
  for (size_t i = 0; i < r.NumRows(); ++i) {
    Tuple key = ProjectTuple(r.row(i), plan.rkeys);
    if (HasNullKey(key)) continue;
    built[std::move(key)].push_back(i);
  }
  const size_t rwidth = r.schema().NumColumns();
  for (const Tuple& lrow : l.rows()) {
    Tuple key = ProjectTuple(lrow, plan.lkeys);
    auto it = HasNullKey(key) ? built.end() : built.find(key);
    if (it == built.end()) {
      out.AddRow(ConcatRows(lrow, NullRow(rwidth)));
      continue;
    }
    for (size_t ri : it->second) out.AddRow(ConcatRows(lrow, r.row(ri)));
  }
  return out;
}

Result<Table> FullOuterJoin(const Table& l, const Table& r,
                            const JoinKeys& keys) {
  GPR_ASSIGN_OR_RETURN(JoinPlan plan, PlanJoin(l, r, keys));
  Table out("", plan.out_schema);
  RowMultiMap built;
  built.reserve(r.NumRows());
  for (size_t i = 0; i < r.NumRows(); ++i) {
    Tuple key = ProjectTuple(r.row(i), plan.rkeys);
    if (HasNullKey(key)) continue;
    built[std::move(key)].push_back(i);
  }
  std::vector<bool> rmatched(r.NumRows(), false);
  const size_t lwidth = l.schema().NumColumns();
  const size_t rwidth = r.schema().NumColumns();
  for (const Tuple& lrow : l.rows()) {
    Tuple key = ProjectTuple(lrow, plan.lkeys);
    auto it = HasNullKey(key) ? built.end() : built.find(key);
    if (it == built.end()) {
      out.AddRow(ConcatRows(lrow, NullRow(rwidth)));
      continue;
    }
    for (size_t ri : it->second) {
      rmatched[ri] = true;
      out.AddRow(ConcatRows(lrow, r.row(ri)));
    }
  }
  for (size_t ri = 0; ri < r.NumRows(); ++ri) {
    if (!rmatched[ri]) out.AddRow(ConcatRows(NullRow(lwidth), r.row(ri)));
  }
  return out;
}

Result<Table> SemiJoin(const Table& l, const Table& r, const JoinKeys& keys) {
  if (keys.left.size() != keys.right.size()) {
    return Status::InvalidArgument("join key arity mismatch");
  }
  GPR_ASSIGN_OR_RETURN(auto lkeys, ResolveAll(l.schema(), keys.left));
  GPR_ASSIGN_OR_RETURN(auto rkeys, ResolveAll(r.schema(), keys.right));
  RowSet rset;
  for (const Tuple& rrow : r.rows()) {
    Tuple key = ProjectTuple(rrow, rkeys);
    if (!HasNullKey(key)) rset.insert(std::move(key));
  }
  Table out(l.name(), l.schema());
  for (const Tuple& lrow : l.rows()) {
    Tuple key = ProjectTuple(lrow, lkeys);
    if (!HasNullKey(key) && rset.count(key)) out.AddRow(lrow);
  }
  return out;
}

Result<Table> AntiJoinBasic(const Table& l, const Table& r,
                            const JoinKeys& keys) {
  if (keys.left.size() != keys.right.size()) {
    return Status::InvalidArgument("join key arity mismatch");
  }
  GPR_ASSIGN_OR_RETURN(auto lkeys, ResolveAll(l.schema(), keys.left));
  GPR_ASSIGN_OR_RETURN(auto rkeys, ResolveAll(r.schema(), keys.right));
  RowSet rset;
  for (const Tuple& rrow : r.rows()) {
    Tuple key = ProjectTuple(rrow, rkeys);
    if (!HasNullKey(key)) rset.insert(std::move(key));
  }
  Table out(l.name(), l.schema());
  for (const Tuple& lrow : l.rows()) {
    Tuple key = ProjectTuple(lrow, lkeys);
    if (HasNullKey(key) || !rset.count(key)) out.AddRow(lrow);
  }
  return out;
}

Result<Table> GroupBy(const Table& in,
                      const std::vector<std::string>& group_cols,
                      const std::vector<AggSpec>& aggs, EvalContext* ctx) {
  GPR_ASSIGN_OR_RETURN(auto gidx, ResolveAll(in.schema(), group_cols));

  std::vector<std::optional<CompiledExpr>> args(aggs.size());
  std::vector<Column> out_cols;
  for (size_t g : gidx) out_cols.push_back(in.schema().column(g));
  for (size_t i = 0; i < aggs.size(); ++i) {
    ValueType t = ValueType::kInt64;
    if (aggs[i].arg) {
      GPR_ASSIGN_OR_RETURN(CompiledExpr e, Compile(aggs[i].arg, in.schema()));
      t = e.result_type();
      args[i] = std::move(e);
    }
    switch (aggs[i].kind) {
      case AggKind::kCount: t = ValueType::kInt64; break;
      case AggKind::kAvg: t = ValueType::kDouble; break;
      default: break;
    }
    out_cols.push_back({aggs[i].out_name, t});
  }
  Table out("", Schema(std::move(out_cols)));

  std::unordered_map<Tuple, std::vector<Accumulator>, TupleHash, TupleEq>
      groups;
  std::vector<Tuple> group_order;  // deterministic output order
  for (size_t ri = 0; ri < in.NumRows(); ++ri) {
    GPR_RETURN_NOT_OK(PollGovernor(ctx, ri, "group_by"));
    const Tuple& row = in.row(ri);
    Tuple key = ProjectTuple(row, gidx);
    auto [it, inserted] = groups.try_emplace(key);
    if (inserted) {
      it->second.reserve(aggs.size());
      for (const auto& a : aggs) it->second.emplace_back(a.kind);
      group_order.push_back(key);
    }
    for (size_t i = 0; i < aggs.size(); ++i) {
      const Value v =
          args[i] ? args[i]->Eval(row, ctx) : Value(int64_t{1});  // count(*)
      it->second[i].Add(v);
    }
  }
  // SQL: aggregation with no group-by over an empty input yields one row.
  if (group_cols.empty() && groups.empty()) {
    Tuple t;
    for (const auto& a : aggs) t.push_back(Accumulator(a.kind).Finish());
    out.AddRow(std::move(t));
    return out;
  }
  for (const Tuple& key : group_order) {
    auto& accs = groups.at(key);
    Tuple t = key;
    for (const auto& acc : accs) t.push_back(acc.Finish());
    out.AddRow(std::move(t));
  }
  return out;
}

Result<Table> Sort(const Table& in, const std::vector<std::string>& cols) {
  GPR_ASSIGN_OR_RETURN(auto idx, ResolveAll(in.schema(), cols));
  Table out(in.name(), in.schema());
  out.mutable_rows() = in.rows();
  std::stable_sort(out.mutable_rows().begin(), out.mutable_rows().end(),
                   [&](const Tuple& a, const Tuple& b) {
                     return CompareTuples(ProjectTuple(a, idx),
                                          ProjectTuple(b, idx)) < 0;
                   });
  return out;
}

}  // namespace gpr::ra::ops
