// The basic relational algebra: selection, projection, rename, set
// operations, Cartesian product, θ-joins (hash / sort-merge / nested-loop),
// outer joins, semi-join, group-by & aggregation, distinct, sort.
//
// All operators are materializing: they consume const Table& inputs and
// return a fresh Table. The paper's 4 derived operations (MM-join, MV-join,
// anti-join variants, union-by-update variants) live in src/core and are
// built from these.
#pragma once

#include <string>
#include <vector>

#include "ra/aggregate.h"
#include "ra/expr.h"
#include "ra/table.h"
#include "util/status.h"

namespace gpr::ra::ops {

/// One output column of a projection: expression + output name.
struct ProjectItem {
  ExprPtr expr;
  std::string name;
};

inline ProjectItem As(ExprPtr e, std::string name) {
  return {std::move(e), std::move(name)};
}

/// σ — rows of `in` satisfying `pred`.
Result<Table> Select(const Table& in, const ExprPtr& pred,
                     EvalContext* ctx = nullptr);

/// Π — evaluates `items` per row. `out_name` names the result table.
Result<Table> Project(const Table& in, const std::vector<ProjectItem>& items,
                      EvalContext* ctx = nullptr, std::string out_name = "");

/// ρ — renames the table and optionally its columns (positional).
Result<Table> Rename(const Table& in, const std::string& new_name,
                     const std::vector<std::string>& col_names = {});

/// ∪ (bag semantics) — requires union-compatible schemas.
Result<Table> UnionAll(const Table& a, const Table& b,
                       EvalContext* ctx = nullptr);

/// ∪ (set semantics) — duplicates eliminated.
Result<Table> UnionDistinct(const Table& a, const Table& b,
                            EvalContext* ctx = nullptr);

/// − (set semantics): rows of `a` not present in `b`.
Result<Table> Difference(const Table& a, const Table& b,
                         EvalContext* ctx = nullptr);

/// ∩ (set semantics).
Result<Table> Intersect(const Table& a, const Table& b,
                        EvalContext* ctx = nullptr);

/// Duplicate elimination.
Result<Table> Distinct(const Table& in, EvalContext* ctx = nullptr);

/// × — concatenates every pair of rows. Output columns are the inputs'
/// columns qualified by their table names when that disambiguates.
Result<Table> CrossProduct(const Table& a, const Table& b,
                           EvalContext* ctx = nullptr);

/// Physical join algorithm; chosen by the engine profile (src/core).
enum class JoinAlgorithm { kHash, kSortMerge, kNestedLoop, kIndexNestedLoop };

const char* JoinAlgorithmName(JoinAlgorithm a);

/// Equi-join keys: parallel lists of column names resolved against the left
/// and right inputs respectively.
struct JoinKeys {
  std::vector<std::string> left;
  std::vector<std::string> right;
};

/// Options for Join. The qualifiers override the input table names when
/// building the output schema (avoiding a rename-copy for self-joins).
struct JoinOptions {
  JoinAlgorithm algo = JoinAlgorithm::kHash;
  ExprPtr residual;
  EvalContext* ctx = nullptr;
  std::string left_qualifier;
  std::string right_qualifier;
  // Cross-iteration caching (plan_cache.h). The plan executor sets these
  // only when the corresponding input is a catalog-resident scan, whose
  // (name, version) pair makes the cached artifact's validity checkable;
  // they are no-ops unless ctx->cache is set.
  bool cache_build = false;       ///< hash-join build table (right input)
  bool cache_left_sort = false;   ///< merge-join sort run for the left input
  bool cache_right_sort = false;  ///< merge-join sort run for the right input
};

/// Equi-join (⋈θ with conjunctive equality condition plus an optional
/// residual predicate evaluated over the concatenated row).
///
/// The output schema is left-columns then right-columns, each qualified by
/// its input's table name ("E.F") so self-referencing predicates stay
/// unambiguous. Inputs with identical names must be renamed first (or given
/// distinct qualifiers via JoinOptions).
Result<Table> Join(const Table& l, const Table& r, const JoinKeys& keys,
                   JoinAlgorithm algo = JoinAlgorithm::kHash,
                   const ExprPtr& residual = nullptr,
                   EvalContext* ctx = nullptr);

/// Join with full options.
Result<Table> JoinWithOptions(const Table& l, const Table& r,
                              const JoinKeys& keys, const JoinOptions& opts);

/// Left outer join: unmatched left rows are padded with NULLs.
Result<Table> LeftOuterJoin(const Table& l, const Table& r,
                            const JoinKeys& keys, EvalContext* ctx = nullptr);

/// Full outer join: unmatched rows of either side are padded with NULLs.
Result<Table> FullOuterJoin(const Table& l, const Table& r,
                            const JoinKeys& keys, EvalContext* ctx = nullptr);

/// ⋉ — rows of `l` with at least one key match in `r`.
Result<Table> SemiJoin(const Table& l, const Table& r, const JoinKeys& keys,
                       EvalContext* ctx = nullptr);

/// ⋉̄ — rows of `l` with no key match in `r` (the canonical hash-based
/// implementation; the physical variants of Section 6 live in core/).
/// When `cache_probe` is set and ctx->cache is live, the probe set built
/// over `r` is memoized across iterations keyed on `r`'s (name, version).
Result<Table> AntiJoinBasic(const Table& l, const Table& r,
                            const JoinKeys& keys, EvalContext* ctx = nullptr,
                            bool cache_probe = false);

/// γ — group-by & aggregation. `group_cols` may be empty (single group; the
/// result then has exactly one row, even over empty input, matching SQL's
/// scalar-aggregate behaviour).
Result<Table> GroupBy(const Table& in,
                      const std::vector<std::string>& group_cols,
                      const std::vector<AggSpec>& aggs,
                      EvalContext* ctx = nullptr);

/// Ascending sort by the given columns.
Result<Table> Sort(const Table& in, const std::vector<std::string>& cols);

}  // namespace gpr::ra::ops
