#include "ra/plan_cache.h"

#include "exec/exec_context.h"

namespace gpr::ra {

std::shared_ptr<const void> PlanCache::LookupErased(const std::string& key,
                                                    uint64_t version) {
  MutexLock lock(mu_);
  auto it = entries_.find(key);
  if (it == entries_.end()) {
    ++stats_.misses;
    return nullptr;
  }
  if (it->second.version != version) {
    stats_.bytes_live -= it->second.bytes;
    entries_.erase(it);
    ++stats_.invalidations;
    ++stats_.misses;
    return nullptr;
  }
  ++stats_.hits;
  return it->second.data;
}

Status PlanCache::InsertErased(const std::string& key, uint64_t version,
                               std::shared_ptr<const void> data,
                               size_t bytes) {
  // Charge the governor before storing: a tripped byte budget must surface
  // as ResourceExhausted (with ProgressDetail) and leave the cache without
  // the oversized entry, never OOM.
  if (gov_ != nullptr) {
    GPR_RETURN_NOT_OK(gov_->ChargeRows("plan_cache", 0, bytes));
  }
  MutexLock lock(mu_);
  Entry& e = entries_[key];
  stats_.bytes_live -= e.bytes;  // no-op for a fresh entry (bytes == 0)
  e.version = version;
  e.data = std::move(data);
  e.bytes = bytes;
  stats_.bytes_live += bytes;
  stats_.bytes_charged += bytes;
  ++stats_.inserts;
  return Status::OK();
}

PlanCacheStats PlanCache::stats() const {
  MutexLock lock(mu_);
  return stats_;
}

size_t PlanCache::NumEntries() const {
  MutexLock lock(mu_);
  return entries_.size();
}

void PlanCache::Clear() {
  MutexLock lock(mu_);
  entries_.clear();
  stats_.bytes_live = 0;
}

}  // namespace gpr::ra
