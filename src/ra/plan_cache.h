// Cross-iteration plan-state cache (the PR-5 tentpole).
//
// The with+ fixpoint loop re-executes the same relational plans every
// iteration; most of their physical setup work — hash-join build tables,
// sort runs for merge join, anti-join probe sets, MV-join matrix triples —
// depends only on an input table that never changes across iterations
// (e.g. the edge relation E). The PlanCache memoizes those artifacts,
// keyed by
//
//   (artifact kind + plan-node parameters, input table name, input table
//    version)
//
// where the version is the table's globally-unique content version
// (ra::NextTableVersion): any mutation of the input — AddRow, Clear,
// ReplaceTable, index build/drop — assigns a fresh version, so a lookup
// against the current version can never observe a stale artifact. A
// version mismatch erases the entry (counted as an invalidation).
//
// Ownership and concurrency: the cache is owned by the fixpoint driver
// (core::CallProcedure) and threaded through ra::EvalContext; it lives
// exactly as long as one query. Lookup/Insert are mutex-guarded, and
// artifacts are handed out as shared_ptr<const T> so morsel workers can
// share a build read-only while the coordinator keeps the cache alive.
//
// Budget accounting: every inserted artifact's byte estimate is charged
// to the execution governor (site "plan_cache") before the entry is
// stored, so a query whose cached state would exceed the `maxbytes`
// budget fails with ResourceExhausted + ProgressDetail instead of
// growing without bound.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>

#include "util/mutex.h"
#include "util/status.h"
#include "util/thread_annotations.h"

namespace gpr::exec {
class ExecContext;
}  // namespace gpr::exec

namespace gpr::ra {

/// Counters surfaced through ExecCounters / WithPlusResult::counters.
struct PlanCacheStats {
  uint64_t hits = 0;           ///< lookups satisfied from the cache
  uint64_t misses = 0;         ///< lookups with no (valid) entry
  uint64_t invalidations = 0;  ///< entries dropped on version mismatch
  uint64_t inserts = 0;        ///< successful Insert calls
  uint64_t bytes_live = 0;     ///< bytes currently held by live entries
  uint64_t bytes_charged = 0;  ///< cumulative bytes charged to the governor
};

class PlanCache {
 public:
  explicit PlanCache(exec::ExecContext* gov = nullptr) : gov_(gov) {}

  PlanCache(const PlanCache&) = delete;
  PlanCache& operator=(const PlanCache&) = delete;

  /// Governor charged for every insert; may be null (ungoverned query).
  void set_governor(exec::ExecContext* gov) { gov_ = gov; }

  /// Returns the artifact stored under `key` if its recorded version
  /// matches `version`, null otherwise. A present-but-mismatched entry is
  /// erased and counted as an invalidation.
  template <typename T>
  std::shared_ptr<const T> Lookup(const std::string& key, uint64_t version) {
    return std::static_pointer_cast<const T>(LookupErased(key, version));
  }

  /// Stores `data` under `key` for input-table version `version`,
  /// charging `bytes` to the governor's byte budget first. On a tripped
  /// budget the entry is NOT stored and the governor's ResourceExhausted
  /// status (with ProgressDetail) is returned — callers must propagate it.
  template <typename T>
  Status Insert(const std::string& key, uint64_t version,
                std::shared_ptr<const T> data, size_t bytes) {
    return InsertErased(key, version,
                        std::static_pointer_cast<const void>(std::move(data)),
                        bytes);
  }

  std::shared_ptr<const void> LookupErased(const std::string& key,
                                           uint64_t version);
  Status InsertErased(const std::string& key, uint64_t version,
                      std::shared_ptr<const void> data, size_t bytes);

  PlanCacheStats stats() const;
  size_t NumEntries() const;

  /// Drops every entry (stats keep accumulating).
  void Clear();

 private:
  struct Entry {
    uint64_t version = 0;
    std::shared_ptr<const void> data;
    size_t bytes = 0;
  };

  mutable Mutex mu_;
  std::unordered_map<std::string, Entry> entries_ GPR_GUARDED_BY(mu_);
  /// Set once by the coordinating thread before workers share the cache
  /// (set_governor is setup-only); read lock-free afterwards. The pointee
  /// is internally thread-safe.
  exec::ExecContext* gov_ = nullptr;
  PlanCacheStats stats_ GPR_GUARDED_BY(mu_);
};

}  // namespace gpr::ra
