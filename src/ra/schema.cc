#include "ra/schema.h"

#include <sstream>

namespace gpr::ra {
namespace {

/// Unqualified suffix of a possibly qualified name ("E.F" -> "F").
std::string_view Suffix(const std::string& name) {
  const size_t pos = name.rfind('.');
  return pos == std::string::npos
             ? std::string_view(name)
             : std::string_view(name).substr(pos + 1);
}

}  // namespace

std::optional<size_t> Schema::IndexOf(const std::string& name) const {
  for (size_t i = 0; i < cols_.size(); ++i) {
    if (cols_[i].name == name) return i;
  }
  // Qualified lookup: "E.F" matches column "F"; "F" matches column "E.F".
  const std::string_view want = Suffix(name);
  std::optional<size_t> found;
  for (size_t i = 0; i < cols_.size(); ++i) {
    if (Suffix(cols_[i].name) == want) {
      if (found) return std::nullopt;  // ambiguous
      found = i;
    }
  }
  return found;
}

Result<size_t> Schema::Resolve(const std::string& name) const {
  if (auto idx = IndexOf(name)) return *idx;
  return Status::BindError("column '" + name + "' not found in schema " +
                           ToString());
}

Schema Schema::Qualified(const std::string& qualifier) const {
  std::vector<Column> cols;
  cols.reserve(cols_.size());
  for (const Column& c : cols_) {
    cols.push_back({qualifier + "." + std::string(Suffix(c.name)), c.type});
  }
  return Schema(std::move(cols));
}

Result<Schema> Schema::Renamed(const std::vector<std::string>& names) const {
  if (names.size() != cols_.size()) {
    return Status::InvalidArgument(
        "rename expects " + std::to_string(cols_.size()) + " names, got " +
        std::to_string(names.size()));
  }
  std::vector<Column> cols = cols_;
  for (size_t i = 0; i < cols.size(); ++i) cols[i].name = names[i];
  return Schema(std::move(cols));
}

Schema Schema::Concat(const Schema& other) const {
  std::vector<Column> cols = cols_;
  cols.insert(cols.end(), other.cols_.begin(), other.cols_.end());
  return Schema(std::move(cols));
}

bool Schema::UnionCompatible(const Schema& other) const {
  if (cols_.size() != other.cols_.size()) return false;
  for (size_t i = 0; i < cols_.size(); ++i) {
    const ValueType a = cols_[i].type;
    const ValueType b = other.cols_[i].type;
    if (a == b) continue;
    // Numeric types are mutually compatible.
    const bool anum = a == ValueType::kInt64 || a == ValueType::kDouble;
    const bool bnum = b == ValueType::kInt64 || b == ValueType::kDouble;
    if (!(anum && bnum)) return false;
  }
  return true;
}

std::string Schema::ToString() const {
  std::ostringstream os;
  os << "(";
  for (size_t i = 0; i < cols_.size(); ++i) {
    if (i > 0) os << ", ";
    os << cols_[i].name << ":" << ValueTypeName(cols_[i].type);
  }
  os << ")";
  return os.str();
}

}  // namespace gpr::ra
