// Relation schemas: ordered, named, typed columns.
#pragma once

#include <initializer_list>
#include <optional>
#include <string>
#include <vector>

#include "ra/value.h"
#include "util/status.h"

namespace gpr::ra {

/// One column of a relation.
struct Column {
  std::string name;
  ValueType type = ValueType::kInt64;

  bool operator==(const Column& o) const {
    return name == o.name && type == o.type;
  }
};

/// An ordered list of columns. Column lookup is by (case-sensitive) name;
/// qualified references ("E.F") fall back to the unqualified suffix.
class Schema {
 public:
  Schema() = default;
  Schema(std::initializer_list<Column> cols)
      : cols_(cols.begin(), cols.end()) {}
  explicit Schema(std::vector<Column> cols) : cols_(std::move(cols)) {}

  size_t NumColumns() const { return cols_.size(); }
  const Column& column(size_t i) const { return cols_[i]; }
  const std::vector<Column>& columns() const { return cols_; }

  /// Index of the column named `name`, trying the exact name first, then
  /// matching `name` against each column's unqualified suffix and vice versa.
  std::optional<size_t> IndexOf(const std::string& name) const;

  bool Has(const std::string& name) const { return IndexOf(name).has_value(); }

  /// Resolved index or a BindError mentioning the available columns.
  Result<size_t> Resolve(const std::string& name) const;

  /// A copy of this schema with all columns prefixed "qualifier.".
  Schema Qualified(const std::string& qualifier) const;

  /// A copy with columns renamed positionally (sizes must match).
  Result<Schema> Renamed(const std::vector<std::string>& names) const;

  /// Concatenation (for joins / products). Duplicate names permitted; lookups
  /// return the first match.
  Schema Concat(const Schema& other) const;

  /// True if both schemas have the same column count and types (names may
  /// differ) — the compatibility requirement for set operations.
  bool UnionCompatible(const Schema& other) const;

  bool operator==(const Schema& o) const { return cols_ == o.cols_; }

  std::string ToString() const;

 private:
  std::vector<Column> cols_;
};

}  // namespace gpr::ra
