#include "ra/table.h"

#include <algorithm>
#include <atomic>
#include <sstream>
#include <unordered_set>

namespace gpr::ra {

uint64_t NextTableVersion() {
  // Relaxed is sufficient: the counter only needs to hand out distinct
  // values — fetch_add is atomic under any ordering. Publication of the
  // table contents a version describes is ordered by whoever shares the
  // table across threads (the fixpoint drivers run mutations on the
  // coordinating thread; morsel workers only ever read, after a
  // ThreadPool::RunTasks publication barrier).
  static std::atomic<uint64_t> counter{0};
  return counter.fetch_add(1, std::memory_order_relaxed) + 1;
}

void SortIndex::Build(const std::vector<Tuple>& rows) {
  order_.resize(rows.size());
  for (size_t i = 0; i < rows.size(); ++i) order_[i] = i;
  std::stable_sort(order_.begin(), order_.end(), [&](size_t a, size_t b) {
    return CompareTuples(ProjectTuple(rows[a], key_cols_),
                         ProjectTuple(rows[b], key_cols_)) < 0;
  });
}

void Table::AddRow(Tuple row) {
  GPR_CHECK_EQ(row.size(), schema_.NumColumns())
      << "row arity mismatch for table " << name_;
  if (hash_index_) hash_index_->Add(row, rows_.size());
  rows_.push_back(std::move(row));
  if (sort_index_) sort_index_.reset();  // sorted order invalidated
  stats_.present = false;
  BumpVersion();
}

void Table::AppendFrom(const Table& other) {
  GPR_CHECK(schema_.UnionCompatible(other.schema_))
      << "append between incompatible schemas " << schema_.ToString()
      << " and " << other.schema_.ToString();
  rows_.reserve(rows_.size() + other.rows_.size());
  for (const Tuple& t : other.rows_) {
    if (hash_index_) hash_index_->Add(t, rows_.size());
    rows_.push_back(t);
  }
  if (sort_index_) sort_index_.reset();
  stats_.present = false;
  BumpVersion();  // one bump per entry point, not per appended row
}

void Table::Clear() {
  rows_.clear();
  ResetIndexes();
  stats_.present = false;
  columns_.reset();  // version bump would invalidate it anyway; free now
  BumpVersion();
}

const ColumnStore& Table::columns() const {
  if (!columns_ || columns_version_ != version_) {
    columns_ = std::make_shared<const ColumnStore>(
        ColumnStore::FromRows(schema_, rows_));
    columns_version_ = version_;
  }
  return *columns_;
}

void Table::AdoptColumns(std::shared_ptr<const ColumnStore> cols) {
  GPR_CHECK(cols != nullptr);
  GPR_CHECK_EQ(cols->NumRows(), rows_.size());
  GPR_CHECK_EQ(cols->NumColumns(), schema_.NumColumns());
  columns_ = std::move(cols);
  columns_version_ = version_;
}

Status Table::BuildHashIndex(const std::vector<std::string>& cols) {
  std::vector<size_t> idx;
  for (const auto& c : cols) {
    GPR_ASSIGN_OR_RETURN(size_t i, schema_.Resolve(c));
    idx.push_back(i);
  }
  hash_index_ = std::make_unique<HashIndex>(std::move(idx));
  for (size_t i = 0; i < rows_.size(); ++i) hash_index_->Add(rows_[i], i);
  BumpVersion();
  return Status::OK();
}

Status Table::BuildSortIndex(const std::vector<std::string>& cols) {
  std::vector<size_t> idx;
  for (const auto& c : cols) {
    GPR_ASSIGN_OR_RETURN(size_t i, schema_.Resolve(c));
    idx.push_back(i);
  }
  sort_index_ = std::make_unique<SortIndex>(std::move(idx));
  sort_index_->Build(rows_);
  BumpVersion();
  return Status::OK();
}

void Table::DropIndexes() {
  ResetIndexes();
  BumpVersion();
}

void Table::Analyze() {
  stats_.present = true;
  stats_.num_rows = rows_.size();
  stats_.distinct.assign(schema_.NumColumns(), 0);
  // Exact distinct counts; tables here are small enough that sampling is
  // unnecessary, and exactness keeps planner tests deterministic.
  for (size_t c = 0; c < schema_.NumColumns(); ++c) {
    std::unordered_set<Value, ValueHash> seen;
    for (const Tuple& t : rows_) seen.insert(t[c]);
    stats_.distinct[c] = seen.size();
  }
}

void Table::SortRows() {
  std::sort(rows_.begin(), rows_.end(),
            [](const Tuple& a, const Tuple& b) {
              return CompareTuples(a, b) < 0;
            });
  ResetIndexes();
  BumpVersion();
}

std::vector<Tuple> Table::SortedRows() const {
  std::vector<Tuple> out = rows_;
  std::sort(out.begin(), out.end(), [](const Tuple& a, const Tuple& b) {
    return CompareTuples(a, b) < 0;
  });
  return out;
}

bool Table::SameRowsAs(const Table& other) const {
  if (rows_.size() != other.rows_.size()) return false;
  const auto a = SortedRows();
  const auto b = other.SortedRows();
  for (size_t i = 0; i < a.size(); ++i) {
    if (CompareTuples(a[i], b[i]) != 0) return false;
  }
  return true;
}

std::string Table::ToString(size_t limit) const {
  std::ostringstream os;
  os << name_ << schema_.ToString() << " [" << rows_.size() << " rows]\n";
  const size_t n =
      limit == 0 ? rows_.size() : std::min(limit, rows_.size());
  for (size_t i = 0; i < n; ++i) os << "  " << TupleToString(rows_[i]) << "\n";
  if (n < rows_.size()) os << "  ... (" << rows_.size() - n << " more)\n";
  return os.str();
}

}  // namespace gpr::ra
