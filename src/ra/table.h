// Materialized relations: a schema plus a row store, with optional indexes.
//
// Tables are the unit the fixpoint executor iterates over, the unit the PSM
// compiler creates as temporaries, and the unit benchmarks measure. A hash
// index accelerates hash-join probes and point lookups; a sort index stands
// in for a B+-tree and is what the PostgreSQL-like profile adopts for its
// merge-join plans (paper Exp-A).
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "ra/column.h"
#include "ra/schema.h"
#include "ra/tuple.h"
#include "util/status.h"

namespace gpr::ra {

/// Hash index mapping a key (projection of a row) to row positions.
class HashIndex {
 public:
  HashIndex(std::vector<size_t> key_cols) : key_cols_(std::move(key_cols)) {}

  const std::vector<size_t>& key_cols() const { return key_cols_; }

  void Add(const Tuple& row, size_t pos) {
    map_[ProjectTuple(row, key_cols_)].push_back(pos);
  }

  /// Row positions whose key equals `key` (empty if none).
  const std::vector<size_t>* Lookup(const Tuple& key) const {
    auto it = map_.find(key);
    return it == map_.end() ? nullptr : &it->second;
  }

  size_t NumKeys() const { return map_.size(); }

 private:
  std::vector<size_t> key_cols_;
  std::unordered_map<Tuple, std::vector<size_t>, TupleHash, TupleEq> map_;
};

/// Sorted index: row positions ordered by key columns (B+-tree stand-in).
class SortIndex {
 public:
  SortIndex(std::vector<size_t> key_cols) : key_cols_(std::move(key_cols)) {}

  const std::vector<size_t>& key_cols() const { return key_cols_; }
  const std::vector<size_t>& order() const { return order_; }

  /// Rebuilds the ordering over `rows`.
  void Build(const std::vector<Tuple>& rows);

 private:
  std::vector<size_t> key_cols_;
  std::vector<size_t> order_;
};

/// Basic cardinality statistics; "absent" models the paper's observation that
/// temp tables lack statistics, driving PostgreSQL to sub-optimal plans.
struct TableStats {
  bool present = false;
  size_t num_rows = 0;
  /// Rough per-column distinct counts (sampled).
  std::vector<size_t> distinct;
};

/// Draws a fresh value from the process-wide table-version counter.
///
/// Versions are globally unique (one counter for all tables), so a table
/// that is dropped and re-created under the same name can never collide
/// with a cached artifact built against the old incarnation — the plan
/// cache (plan_cache.h) keys on (name, version) and relies on this.
uint64_t NextTableVersion();

/// A named, materialized relation.
class Table {
 public:
  Table() = default;
  Table(std::string name, Schema schema)
      : name_(std::move(name)), schema_(std::move(schema)) {}

  // Copies carry name, schema and rows; indexes and statistics are
  // per-instance and are rebuilt on demand. A copy is a distinct physical
  // incarnation, so it gets a fresh version; a move keeps the source's
  // version because the physical contents are the same bytes.
  Table(const Table& other)
      : name_(other.name_), schema_(other.schema_), rows_(other.rows_) {}
  Table& operator=(const Table& other) {
    if (this != &other) {
      name_ = other.name_;
      schema_ = other.schema_;
      rows_ = other.rows_;
      ResetIndexes();
      stats_ = TableStats{};
      columns_.reset();
      columns_version_ = 0;
      version_ = NextTableVersion();
    }
    return *this;
  }
  Table(Table&&) = default;
  Table& operator=(Table&&) = default;

  /// Monotonic content version; every mutating entry point assigns a fresh
  /// globally-unique value exactly once. Equal versions imply identical
  /// physical contents for cache-validity purposes.
  uint64_t version() const { return version_; }
  /// Forces a fresh version without touching contents (used by Catalog
  /// mutations such as ReplaceTable so dependent cache entries die).
  void BumpVersion() { version_ = NextTableVersion(); }

  const std::string& name() const { return name_; }
  void set_name(std::string n) { name_ = std::move(n); }

  const Schema& schema() const { return schema_; }
  /// Replaces the schema in place; row shapes must already match.
  void set_schema(Schema s) {
    schema_ = std::move(s);
    BumpVersion();
  }

  size_t NumRows() const { return rows_.size(); }
  bool Empty() const { return rows_.empty(); }

  const std::vector<Tuple>& rows() const { return rows_; }
  /// Hands out write access to the row store; conservatively bumps the
  /// version since the caller may mutate through the reference.
  std::vector<Tuple>& mutable_rows() {
    BumpVersion();
    return rows_;
  }
  const Tuple& row(size_t i) const { return rows_[i]; }

  /// Appends a row; arity must match the schema. Invalidates indexes.
  void AddRow(Tuple row);

  /// Appends rows from another table (schemas must be union-compatible).
  void AppendFrom(const Table& other);

  void Clear();

  /// Reserve capacity for `n` rows.
  void Reserve(size_t n) { rows_.reserve(n); }

  /// Creates (or replaces) the hash index on the given columns.
  Status BuildHashIndex(const std::vector<std::string>& cols);
  /// Creates (or replaces) the sort index on the given columns.
  Status BuildSortIndex(const std::vector<std::string>& cols);

  const HashIndex* hash_index() const { return hash_index_.get(); }
  const SortIndex* sort_index() const { return sort_index_.get(); }
  void DropIndexes();

  /// Marks statistics as collected (ANALYZE analogue).
  void Analyze();
  const TableStats& stats() const { return stats_; }
  void InvalidateStats() { stats_.present = false; }

  /// Typed columnar image of the current contents, built lazily and cached
  /// per content version (same discipline as the CSR layout: a stale image
  /// is detected by version mismatch and rebuilt from rows). Not
  /// thread-safe against concurrent first calls — the vectorized operators
  /// materialize it on the coordinating thread before fanning out.
  const ColumnStore& columns() const;

  /// Installs a columnar image a builder produced alongside the rows, so
  /// the next columns() call needn't re-derive it. Must describe exactly
  /// the current rows (arity and row count are CHECKed); call only after
  /// the final row mutation of the producing operator.
  void AdoptColumns(std::shared_ptr<const ColumnStore> cols);

  /// Sorts rows lexicographically (used for deterministic output/tests).
  void SortRows();

  /// Sorted copy of rows — convenient for order-insensitive comparisons.
  std::vector<Tuple> SortedRows() const;

  /// True if both tables hold the same multiset of rows.
  bool SameRowsAs(const Table& other) const;

  /// Pretty-prints up to `limit` rows (0 = all).
  std::string ToString(size_t limit = 20) const;

 private:
  void RebuildIndexes();
  /// Drops indexes without a version bump (for use inside entry points
  /// that already bump exactly once).
  void ResetIndexes() {
    hash_index_.reset();
    sort_index_.reset();
  }

  std::string name_;
  Schema schema_;
  std::vector<Tuple> rows_;
  std::unique_ptr<HashIndex> hash_index_;
  std::unique_ptr<SortIndex> sort_index_;
  TableStats stats_;
  // Lazily cached columnar image (see columns()); valid only while
  // columns_version_ == version_. Copies deliberately do not carry it —
  // the copy's fresh version would invalidate it anyway.
  mutable std::shared_ptr<const ColumnStore> columns_;
  mutable uint64_t columns_version_ = 0;
  uint64_t version_ = NextTableVersion();
};

}  // namespace gpr::ra
