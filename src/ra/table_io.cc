#include "ra/table_io.h"

#include <fcntl.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string_view>

#include "exec/exec_context.h"
#include "exec/fault_injector.h"
#include "util/string_util.h"

namespace gpr::ra {
namespace {

std::string EscapeString(const std::string& s) {
  std::string out = "\"";
  for (char c : s) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

/// Splits one CSV line honouring double-quoted fields.
Result<std::vector<std::string>> SplitCsvLine(const std::string& line,
                                              std::vector<bool>* quoted) {
  std::vector<std::string> fields;
  quoted->clear();
  std::string cur;
  bool in_quotes = false;
  bool was_quoted = false;
  for (size_t i = 0; i < line.size(); ++i) {
    const char c = line[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < line.size() && line[i + 1] == '"') {
          cur += '"';
          ++i;
        } else {
          in_quotes = false;
        }
      } else {
        cur += c;
      }
      continue;
    }
    if (c == '"') {
      in_quotes = true;
      was_quoted = true;
      continue;
    }
    if (c == ',') {
      fields.push_back(std::move(cur));
      quoted->push_back(was_quoted);
      cur.clear();
      was_quoted = false;
      continue;
    }
    cur += c;
  }
  if (in_quotes) {
    return Status::IoError("unterminated quote in CSV line: " + line);
  }
  fields.push_back(std::move(cur));
  quoted->push_back(was_quoted);
  return fields;
}

Result<ValueType> ParseType(const std::string& name) {
  if (name == "Int64") return ValueType::kInt64;
  if (name == "Double") return ValueType::kDouble;
  if (name == "String") return ValueType::kString;
  if (name == "Null") return ValueType::kNull;
  return Status::IoError("unknown column type '" + name + "'");
}

/// Consults the I/O fault site `site` when an injector is present.
Status IoSite(exec::FaultInjector* faults, const char* site) {
  if (faults == nullptr) return Status::OK();
  // A default token: io sites never carry cancel directives in practice,
  // and a flip on a throwaway token is a harmless no-op.
  exec::CancellationToken token;
  return faults->OnCheckpoint(site, token);
}

/// Staged atomic write shared by AtomicWriteFile and SaveCsv: open a
/// uniquely named temp sibling, Append() data (buffered, flushed in
/// chunks so large exports never materialize whole in memory), then
/// Finish() runs the fsync + rename + directory-fsync protocol. Any
/// failure — or destruction before Finish() — closes the fd and unlinks
/// the temp, leaving the target untouched. The temp name carries the pid
/// plus a process-wide counter so concurrent writers targeting the same
/// path never share a staging file.
class AtomicFileWriter {
 public:
  AtomicFileWriter(const std::string& path, exec::FaultInjector* faults)
      : path_(path), faults_(faults) {
    static std::atomic<uint64_t> counter{0};
    tmp_ = path + ".tmp." + std::to_string(::getpid()) + "." +
           std::to_string(counter.fetch_add(1, std::memory_order_relaxed));
  }
  ~AtomicFileWriter() {
    if (!done_) Discard();
  }
  AtomicFileWriter(const AtomicFileWriter&) = delete;
  AtomicFileWriter& operator=(const AtomicFileWriter&) = delete;

  Status Open() {
    if (Status s = IoSite(faults_, "io_open"); !s.ok()) return Fail(s);
    fd_ = ::open(tmp_.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
    if (fd_ < 0) {
      done_ = true;  // nothing staged; leave any unrelated file alone
      return Status::IoError("cannot open '" + tmp_ +
                             "' for writing: " + std::strerror(errno));
    }
    if (Status s = IoSite(faults_, "io_write"); !s.ok()) return Fail(s);
    return Status::OK();
  }

  Status Append(std::string_view data) {
    buf_.append(data);
    if (buf_.size() >= kFlushBytes) return FlushBuf();
    return Status::OK();
  }

  Status Finish() {
    if (Status s = FlushBuf(); !s.ok()) return s;
    if (Status s = IoSite(faults_, "io_fsync"); !s.ok()) return Fail(s);
    if (::fsync(fd_) != 0) {
      return Fail(Status::IoError("fsync of '" + tmp_ +
                                  "' failed: " + std::strerror(errno)));
    }
    const int fd = fd_;
    fd_ = -1;
    if (::close(fd) != 0) {
      return Fail(Status::IoError("close of '" + tmp_ +
                                  "' failed: " + std::strerror(errno)));
    }
    if (Status s = IoSite(faults_, "io_rename"); !s.ok()) return Fail(s);
    if (::rename(tmp_.c_str(), path_.c_str()) != 0) {
      return Fail(Status::IoError("rename '" + tmp_ + "' -> '" + path_ +
                                  "' failed: " + std::strerror(errno)));
    }
    done_ = true;
    // Durability of the rename itself needs the directory flushed; failure
    // here is non-fatal (the file content is already complete and atomic).
    const auto slash = path_.find_last_of('/');
    const std::string dir = slash == std::string::npos
                                ? std::string(".")
                                : path_.substr(0, slash == 0 ? 1 : slash);
    const int dfd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
    if (dfd >= 0) {
      ::fsync(dfd);
      ::close(dfd);
    }
    return Status::OK();
  }

 private:
  static constexpr size_t kFlushBytes = 1 << 20;

  Status FlushBuf() {
    size_t off = 0;
    while (off < buf_.size()) {
      const ssize_t n = ::write(fd_, buf_.data() + off, buf_.size() - off);
      if (n < 0) {
        if (errno == EINTR) continue;
        return Fail(Status::IoError("write to '" + tmp_ +
                                    "' failed: " + std::strerror(errno)));
      }
      off += static_cast<size_t>(n);
    }
    buf_.clear();
    return Status::OK();
  }

  void Discard() {
    if (fd_ >= 0) ::close(fd_);
    fd_ = -1;
    ::unlink(tmp_.c_str());
    done_ = true;
  }

  Status Fail(Status s) {
    Discard();
    return s;
  }

  std::string path_;
  std::string tmp_;
  exec::FaultInjector* faults_;
  int fd_ = -1;
  bool done_ = false;
  std::string buf_;
};

}  // namespace

Status AtomicWriteFile(const std::string& path, const std::string& content,
                       exec::FaultInjector* faults) {
  AtomicFileWriter out(path, faults);
  if (Status s = out.Open(); !s.ok()) return s;
  if (Status s = out.Append(content); !s.ok()) return s;
  return out.Finish();
}

Status SaveCsv(const Table& table, const std::string& path,
               exec::FaultInjector* faults) {
  AtomicFileWriter out(path, faults);
  if (Status s = out.Open(); !s.ok()) return s;
  std::ostringstream line;
  line.precision(17);
  // Header: name:Type per column.
  for (size_t c = 0; c < table.schema().NumColumns(); ++c) {
    if (c > 0) line << ",";
    const auto& col = table.schema().column(c);
    line << col.name << ":" << ValueTypeName(col.type);
  }
  line << "\n";
  if (Status s = out.Append(line.str()); !s.ok()) return s;
  // CSV export runs outside governed query execution: callers invoke it
  // directly, never through a plan with a deadline or cancellation context.
  // gpr_check(disable: GPR-C401): ungoverned by design (see above)
  for (const auto& row : table.rows()) {
    line.str("");
    for (size_t c = 0; c < row.size(); ++c) {
      if (c > 0) line << ",";
      const Value& v = row[c];
      if (v.is_null()) {
        // empty field
      } else if (v.is_string()) {
        line << EscapeString(v.AsString());
      } else if (v.is_int64()) {
        line << v.AsInt64();
      } else {
        line << v.AsDouble();
      }
    }
    line << "\n";
    if (Status s = out.Append(line.str()); !s.ok()) return s;
  }
  return out.Finish();
}

// GCC 12's -Wmaybe-uninitialized fires a false positive here: the Value
// temporaries' string variant member is flagged through the inlined
// vector push_back at -O2. Nothing is read uninitialized.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wmaybe-uninitialized"
Result<Table> LoadCsv(const std::string& path, const std::string& name,
                      exec::FaultInjector* faults) {
  if (Status s = IoSite(faults, "io_open"); !s.ok()) return s;
  std::ifstream in(path);
  if (!in) return Status::IoError("cannot open '" + path + "'");
  std::string line;
  if (!std::getline(in, line)) {
    return Status::IoError("'" + path + "' is empty (no header)");
  }
  std::vector<bool> quoted;
  GPR_ASSIGN_OR_RETURN(auto header, SplitCsvLine(line, &quoted));
  std::vector<Column> cols;
  for (const auto& field : header) {
    const auto parts = Split(field, ':');
    if (parts.size() != 2) {
      return Status::IoError("header field '" + field +
                             "' is not name:Type");
    }
    GPR_ASSIGN_OR_RETURN(ValueType t, ParseType(parts[1]));
    cols.push_back({parts[0], t});
  }
  Table table(name, Schema(cols));
  size_t line_no = 1;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty()) continue;
    if (Status s = IoSite(faults, "io_read"); !s.ok()) return s;
    GPR_ASSIGN_OR_RETURN(auto fields, SplitCsvLine(line, &quoted));
    if (fields.size() != cols.size()) {
      return Status::IoError("line " + std::to_string(line_no) + " has " +
                             std::to_string(fields.size()) + " fields, want " +
                             std::to_string(cols.size()));
    }
    Tuple row;
    row.reserve(fields.size());
    for (size_t c = 0; c < fields.size(); ++c) {
      if (fields[c].empty() && !quoted[c]) {
        row.push_back(Value::Null());
        continue;
      }
      switch (cols[c].type) {
        case ValueType::kInt64:
          row.push_back(
              Value(static_cast<int64_t>(std::strtoll(fields[c].c_str(),
                                                      nullptr, 10))));
          break;
        case ValueType::kDouble:
          row.push_back(Value(std::strtod(fields[c].c_str(), nullptr)));
          break;
        case ValueType::kString:
        case ValueType::kNull:
          row.push_back(Value(fields[c]));
          break;
      }
    }
    table.AddRow(std::move(row));
  }
  return table;
}
#pragma GCC diagnostic pop

}  // namespace gpr::ra
