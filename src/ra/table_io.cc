#include "ra/table_io.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>

#include "exec/exec_context.h"
#include "exec/fault_injector.h"
#include "util/string_util.h"

namespace gpr::ra {
namespace {

std::string EscapeString(const std::string& s) {
  std::string out = "\"";
  for (char c : s) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

/// Splits one CSV line honouring double-quoted fields.
Result<std::vector<std::string>> SplitCsvLine(const std::string& line,
                                              std::vector<bool>* quoted) {
  std::vector<std::string> fields;
  quoted->clear();
  std::string cur;
  bool in_quotes = false;
  bool was_quoted = false;
  for (size_t i = 0; i < line.size(); ++i) {
    const char c = line[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < line.size() && line[i + 1] == '"') {
          cur += '"';
          ++i;
        } else {
          in_quotes = false;
        }
      } else {
        cur += c;
      }
      continue;
    }
    if (c == '"') {
      in_quotes = true;
      was_quoted = true;
      continue;
    }
    if (c == ',') {
      fields.push_back(std::move(cur));
      quoted->push_back(was_quoted);
      cur.clear();
      was_quoted = false;
      continue;
    }
    cur += c;
  }
  if (in_quotes) {
    return Status::IoError("unterminated quote in CSV line: " + line);
  }
  fields.push_back(std::move(cur));
  quoted->push_back(was_quoted);
  return fields;
}

Result<ValueType> ParseType(const std::string& name) {
  if (name == "Int64") return ValueType::kInt64;
  if (name == "Double") return ValueType::kDouble;
  if (name == "String") return ValueType::kString;
  if (name == "Null") return ValueType::kNull;
  return Status::IoError("unknown column type '" + name + "'");
}

/// Consults the I/O fault site `site` when an injector is present.
Status IoSite(exec::FaultInjector* faults, const char* site) {
  if (faults == nullptr) return Status::OK();
  // A default token: io sites never carry cancel directives in practice,
  // and a flip on a throwaway token is a harmless no-op.
  exec::CancellationToken token;
  return faults->OnCheckpoint(site, token);
}

/// Closes `fd` if still open, removes the temp file, and forwards `s` —
/// the single exit ramp for every AtomicWriteFile failure.
Status FailWrite(int fd, const std::string& tmp, Status s) {
  if (fd >= 0) ::close(fd);
  ::unlink(tmp.c_str());
  return s;
}

}  // namespace

Status AtomicWriteFile(const std::string& path, const std::string& content,
                       exec::FaultInjector* faults) {
  const std::string tmp = path + ".tmp." + std::to_string(::getpid());
  if (Status s = IoSite(faults, "io_open"); !s.ok()) {
    return FailWrite(-1, tmp, std::move(s));
  }
  const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) {
    return Status::IoError("cannot open '" + tmp +
                           "' for writing: " + std::strerror(errno));
  }
  if (Status s = IoSite(faults, "io_write"); !s.ok()) {
    return FailWrite(fd, tmp, std::move(s));
  }
  size_t off = 0;
  while (off < content.size()) {
    const ssize_t n = ::write(fd, content.data() + off, content.size() - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      return FailWrite(fd, tmp,
                       Status::IoError("write to '" + tmp +
                                       "' failed: " + std::strerror(errno)));
    }
    off += static_cast<size_t>(n);
  }
  if (Status s = IoSite(faults, "io_fsync"); !s.ok()) {
    return FailWrite(fd, tmp, std::move(s));
  }
  if (::fsync(fd) != 0) {
    return FailWrite(fd, tmp,
                     Status::IoError("fsync of '" + tmp +
                                     "' failed: " + std::strerror(errno)));
  }
  if (::close(fd) != 0) {
    return FailWrite(-1, tmp,
                     Status::IoError("close of '" + tmp +
                                     "' failed: " + std::strerror(errno)));
  }
  if (Status s = IoSite(faults, "io_rename"); !s.ok()) {
    return FailWrite(-1, tmp, std::move(s));
  }
  if (::rename(tmp.c_str(), path.c_str()) != 0) {
    return FailWrite(-1, tmp,
                     Status::IoError("rename '" + tmp + "' -> '" + path +
                                     "' failed: " + std::strerror(errno)));
  }
  // Durability of the rename itself needs the directory flushed; failure
  // here is non-fatal (the file content is already complete and atomic).
  const auto slash = path.find_last_of('/');
  const std::string dir = slash == std::string::npos
                              ? std::string(".")
                              : path.substr(0, slash == 0 ? 1 : slash);
  const int dfd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (dfd >= 0) {
    ::fsync(dfd);
    ::close(dfd);
  }
  return Status::OK();
}

Status SaveCsv(const Table& table, const std::string& path,
               exec::FaultInjector* faults) {
  std::ostringstream out;
  // Header: name:Type per column.
  for (size_t c = 0; c < table.schema().NumColumns(); ++c) {
    if (c > 0) out << ",";
    const auto& col = table.schema().column(c);
    out << col.name << ":" << ValueTypeName(col.type);
  }
  out << "\n";
  // CSV export runs outside governed query execution: callers invoke it
  // directly, never through a plan with a deadline or cancellation context.
  // gpr_check(disable: GPR-C401): ungoverned by design (see above)
  for (const auto& row : table.rows()) {
    for (size_t c = 0; c < row.size(); ++c) {
      if (c > 0) out << ",";
      const Value& v = row[c];
      if (v.is_null()) {
        // empty field
      } else if (v.is_string()) {
        out << EscapeString(v.AsString());
      } else if (v.is_int64()) {
        out << v.AsInt64();
      } else {
        out.precision(17);
        out << v.AsDouble();
      }
    }
    out << "\n";
  }
  return AtomicWriteFile(path, out.str(), faults);
}

// GCC 12's -Wmaybe-uninitialized fires a false positive here: the Value
// temporaries' string variant member is flagged through the inlined
// vector push_back at -O2. Nothing is read uninitialized.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wmaybe-uninitialized"
Result<Table> LoadCsv(const std::string& path, const std::string& name,
                      exec::FaultInjector* faults) {
  if (Status s = IoSite(faults, "io_open"); !s.ok()) return s;
  std::ifstream in(path);
  if (!in) return Status::IoError("cannot open '" + path + "'");
  std::string line;
  if (!std::getline(in, line)) {
    return Status::IoError("'" + path + "' is empty (no header)");
  }
  std::vector<bool> quoted;
  GPR_ASSIGN_OR_RETURN(auto header, SplitCsvLine(line, &quoted));
  std::vector<Column> cols;
  for (const auto& field : header) {
    const auto parts = Split(field, ':');
    if (parts.size() != 2) {
      return Status::IoError("header field '" + field +
                             "' is not name:Type");
    }
    GPR_ASSIGN_OR_RETURN(ValueType t, ParseType(parts[1]));
    cols.push_back({parts[0], t});
  }
  Table table(name, Schema(cols));
  size_t line_no = 1;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty()) continue;
    if (Status s = IoSite(faults, "io_read"); !s.ok()) return s;
    GPR_ASSIGN_OR_RETURN(auto fields, SplitCsvLine(line, &quoted));
    if (fields.size() != cols.size()) {
      return Status::IoError("line " + std::to_string(line_no) + " has " +
                             std::to_string(fields.size()) + " fields, want " +
                             std::to_string(cols.size()));
    }
    Tuple row;
    row.reserve(fields.size());
    for (size_t c = 0; c < fields.size(); ++c) {
      if (fields[c].empty() && !quoted[c]) {
        row.push_back(Value::Null());
        continue;
      }
      switch (cols[c].type) {
        case ValueType::kInt64:
          row.push_back(
              Value(static_cast<int64_t>(std::strtoll(fields[c].c_str(),
                                                      nullptr, 10))));
          break;
        case ValueType::kDouble:
          row.push_back(Value(std::strtod(fields[c].c_str(), nullptr)));
          break;
        case ValueType::kString:
        case ValueType::kNull:
          row.push_back(Value(fields[c]));
          break;
      }
    }
    table.AddRow(std::move(row));
  }
  return table;
}
#pragma GCC diagnostic pop

}  // namespace gpr::ra
