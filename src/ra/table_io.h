// CSV import/export for relations. The header row carries the schema
// ("F:Int64,T:Int64,ew:Double"), so tables round-trip losslessly.
#pragma once

#include <string>

#include "ra/table.h"
#include "util/status.h"

namespace gpr::ra {

/// Writes `table` to `path`. Strings are double-quoted with "" escaping;
/// NULL is an empty unquoted field.
Status SaveCsv(const Table& table, const std::string& path);

/// Loads a CSV written by SaveCsv (or hand-written with the same header
/// convention). `name` overrides the table name.
Result<Table> LoadCsv(const std::string& path, const std::string& name);

}  // namespace gpr::ra
