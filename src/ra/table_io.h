// CSV import/export for relations. The header row carries the schema
// ("F:Int64,T:Int64,ew:Double"), so tables round-trip losslessly.
//
// Writes are atomic (docs/robustness.md): the content is staged in a
// temporary sibling file, fsync'd, then rename(2)'d over the target, so a
// crash or injected fault mid-write can never leave a torn table file —
// readers see either the old complete file or the new complete one.
// gpr_check rule GPR-C408 keeps it that way: table_io write sites must go
// through AtomicWriteFile, never a bare ofstream/fopen.
#pragma once

#include <string>

#include "ra/table.h"
#include "util/status.h"

namespace gpr::exec {
class FaultInjector;
}  // namespace gpr::exec

namespace gpr::ra {

/// Atomically replaces the file at `path` with `content`: write to a
/// temporary sibling (named uniquely per call, so concurrent writers to
/// the same path never share a staging file), fsync, rename over `path`,
/// then a best-effort fsync of the containing directory. On any failure —
/// real or injected — the temporary is removed and `path` is untouched.
///
/// `faults` (optional) is consulted at the I/O fault sites "io_open",
/// "io_write", "io_fsync" and "io_rename", making torn-write and
/// lost-write scenarios deterministically testable.
Status AtomicWriteFile(const std::string& path, const std::string& content,
                       exec::FaultInjector* faults = nullptr);

/// Writes `table` to `path` atomically, streaming rows through the same
/// staged temp + fsync + rename protocol as AtomicWriteFile (large
/// exports are never materialized whole in memory). Strings are
/// double-quoted with "" escaping; NULL is an empty unquoted field.
Status SaveCsv(const Table& table, const std::string& path,
               exec::FaultInjector* faults = nullptr);

/// Loads a CSV written by SaveCsv (or hand-written with the same header
/// convention). `name` overrides the table name. `faults` (optional) is
/// consulted at the "io_open" and "io_read" sites.
Result<Table> LoadCsv(const std::string& path, const std::string& name,
                      exec::FaultInjector* faults = nullptr);

}  // namespace gpr::ra
