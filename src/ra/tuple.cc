#include "ra/tuple.h"

#include <sstream>

namespace gpr::ra {

int CompareTuples(const Tuple& a, const Tuple& b) {
  const size_t n = a.size() < b.size() ? a.size() : b.size();
  for (size_t i = 0; i < n; ++i) {
    const int c = a[i].Compare(b[i]);
    if (c != 0) return c;
  }
  if (a.size() == b.size()) return 0;
  return a.size() < b.size() ? -1 : 1;
}

Tuple ProjectTuple(const Tuple& t, const std::vector<size_t>& idx) {
  Tuple out;
  out.reserve(idx.size());
  for (size_t i : idx) out.push_back(t[i]);
  return out;
}

void ProjectTupleInto(const Tuple& t, const std::vector<size_t>& idx,
                      Tuple* out) {
  out->clear();
  out->reserve(idx.size());
  for (size_t i : idx) out->push_back(t[i]);
}

std::string TupleToString(const Tuple& t) {
  std::ostringstream os;
  os << "(";
  for (size_t i = 0; i < t.size(); ++i) {
    if (i > 0) os << ", ";
    os << t[i];
  }
  os << ")";
  return os.str();
}

}  // namespace gpr::ra
