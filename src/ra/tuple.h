// Tuples (rows) and tuple hashing for joins and grouping.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "ra/value.h"

namespace gpr::ra {

using Tuple = std::vector<Value>;

/// Combines two hashes (boost::hash_combine recipe).
inline size_t HashCombine(size_t seed, size_t h) {
  return seed ^ (h + 0x9e3779b97f4a7c15ULL + (seed << 6) + (seed >> 2));
}

/// Hash of a full tuple, consistent with element-wise Value::Equals.
struct TupleHash {
  size_t operator()(const Tuple& t) const {
    size_t seed = t.size();
    for (const Value& v : t) seed = HashCombine(seed, v.Hash());
    return seed;
  }
};

/// Element-wise grouping equality (NULL == NULL).
struct TupleEq {
  bool operator()(const Tuple& a, const Tuple& b) const {
    if (a.size() != b.size()) return false;
    for (size_t i = 0; i < a.size(); ++i) {
      if (!a[i].Equals(b[i])) return false;
    }
    return true;
  }
};

/// Lexicographic comparison using Value::Compare.
int CompareTuples(const Tuple& a, const Tuple& b);

/// Projection of `t` onto the given column indexes.
Tuple ProjectTuple(const Tuple& t, const std::vector<size_t>& idx);

/// Projection into a caller-owned scratch tuple — the allocation-free
/// variant for hot probe loops, where `out`'s capacity is reused across
/// millions of rows instead of constructing a fresh Tuple per row.
void ProjectTupleInto(const Tuple& t, const std::vector<size_t>& idx,
                      Tuple* out);

/// "(v1, v2, ...)" debug rendering.
std::string TupleToString(const Tuple& t);

}  // namespace gpr::ra
