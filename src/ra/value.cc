#include "ra/value.h"

#include <cmath>
#include <sstream>

namespace gpr::ra {

const char* ValueTypeName(ValueType t) {
  switch (t) {
    case ValueType::kNull: return "Null";
    case ValueType::kInt64: return "Int64";
    case ValueType::kDouble: return "Double";
    case ValueType::kString: return "String";
  }
  return "Unknown";
}

bool Value::Equals(const Value& other) const {
  if (is_null() || other.is_null()) return is_null() && other.is_null();
  if (is_numeric() && other.is_numeric()) {
    if (is_int64() && other.is_int64()) return AsInt64() == other.AsInt64();
    return ToDouble() == other.ToDouble();
  }
  if (is_string() && other.is_string()) return AsString() == other.AsString();
  return false;
}

int Value::Compare(const Value& other) const {
  // NULL sorts first.
  if (is_null() || other.is_null()) {
    if (is_null() && other.is_null()) return 0;
    return is_null() ? -1 : 1;
  }
  const bool lnum = is_numeric();
  const bool rnum = other.is_numeric();
  if (lnum && rnum) {
    if (is_int64() && other.is_int64()) {
      const int64_t a = AsInt64();
      const int64_t b = other.AsInt64();
      return a < b ? -1 : (a > b ? 1 : 0);
    }
    const double a = ToDouble();
    const double b = other.ToDouble();
    return a < b ? -1 : (a > b ? 1 : 0);
  }
  if (lnum != rnum) return lnum ? -1 : 1;  // numbers < strings
  const int c = AsString().compare(other.AsString());
  return c < 0 ? -1 : (c > 0 ? 1 : 0);
}

size_t Value::Hash() const {
  switch (type()) {
    case ValueType::kNull:
      return 0x9e3779b97f4a7c15ULL;
    case ValueType::kInt64: {
      // Hash by numeric value so that Int64(3) and Double(3.0) collide,
      // consistent with Equals.
      const double d = ToDouble();
      if (static_cast<double>(static_cast<int64_t>(d)) == d) {
        return std::hash<int64_t>()(static_cast<int64_t>(d));
      }
      return std::hash<double>()(d);
    }
    case ValueType::kDouble: {
      const double d = AsDouble();
      if (std::nearbyint(d) == d && std::abs(d) < 9.0e18) {
        return std::hash<int64_t>()(static_cast<int64_t>(d));
      }
      return std::hash<double>()(d);
    }
    case ValueType::kString:
      return std::hash<std::string>()(AsString());
  }
  return 0;
}

std::string Value::ToString() const {
  switch (type()) {
    case ValueType::kNull:
      return "NULL";
    case ValueType::kInt64:
      return std::to_string(AsInt64());
    case ValueType::kDouble: {
      std::ostringstream os;
      os << AsDouble();
      return os.str();
    }
    case ValueType::kString:
      return "'" + AsString() + "'";
  }
  return "?";
}

std::ostream& operator<<(std::ostream& os, const Value& v) {
  return os << v.ToString();
}

}  // namespace gpr::ra
