// The scalar value type flowing through the relational engine.
//
// Relations hold tuples of Value. Graph workloads use mostly Int64 (node
// identifiers) and Double (weights, ranks); String supports labels for
// Label-Propagation / Keyword-Search; Null supports outer joins and SQL
// three-valued comparisons.
#pragma once

#include <cstdint>
#include <functional>
#include <ostream>
#include <string>
#include <variant>

#include "util/logging.h"
#include "util/status.h"

namespace gpr::ra {

/// Runtime type tag of a Value / declared type of a column.
enum class ValueType { kNull, kInt64, kDouble, kString };

const char* ValueTypeName(ValueType t);

/// A dynamically typed scalar: NULL, 64-bit integer, double, or string.
class Value {
 public:
  Value() : v_(std::monostate{}) {}
  Value(int64_t v) : v_(v) {}              // NOLINT: implicit by design
  Value(int v) : v_(int64_t{v}) {}         // NOLINT
  Value(double v) : v_(v) {}               // NOLINT
  Value(std::string v) : v_(std::move(v)) {}  // NOLINT
  Value(const char* v) : v_(std::string(v)) {}  // NOLINT

  static Value Null() { return Value(); }

  ValueType type() const {
    switch (v_.index()) {
      case 0: return ValueType::kNull;
      case 1: return ValueType::kInt64;
      case 2: return ValueType::kDouble;
      default: return ValueType::kString;
    }
  }

  bool is_null() const { return v_.index() == 0; }
  bool is_int64() const { return v_.index() == 1; }
  bool is_double() const { return v_.index() == 2; }
  bool is_string() const { return v_.index() == 3; }
  bool is_numeric() const { return is_int64() || is_double(); }

  int64_t AsInt64() const {
    GPR_CHECK(is_int64()) << "Value is " << ValueTypeName(type());
    return std::get<int64_t>(v_);
  }
  double AsDouble() const {
    GPR_CHECK(is_double()) << "Value is " << ValueTypeName(type());
    return std::get<double>(v_);
  }
  const std::string& AsString() const {
    GPR_CHECK(is_string()) << "Value is " << ValueTypeName(type());
    return std::get<std::string>(v_);
  }

  /// Numeric view: Int64 widened to double. CHECK-fails on non-numeric.
  double ToDouble() const {
    if (is_int64()) return static_cast<double>(std::get<int64_t>(v_));
    return AsDouble();
  }

  /// Numeric view truncated toward zero. CHECK-fails on non-numeric.
  int64_t ToInt64() const {
    if (is_double()) return static_cast<int64_t>(std::get<double>(v_));
    return AsInt64();
  }

  /// Grouping equality: NULL equals NULL; Int64/Double compare numerically.
  bool Equals(const Value& other) const;

  /// Total order for sorting and sort-merge join: NULL < numbers < strings;
  /// numbers compare numerically across Int64/Double.
  /// Returns -1, 0, or 1.
  int Compare(const Value& other) const;

  /// Hash consistent with Equals (numeric values hash by double value).
  size_t Hash() const;

  std::string ToString() const;

  bool operator==(const Value& other) const { return Equals(other); }
  bool operator!=(const Value& other) const { return !Equals(other); }
  bool operator<(const Value& other) const { return Compare(other) < 0; }

 private:
  std::variant<std::monostate, int64_t, double, std::string> v_;
};

std::ostream& operator<<(std::ostream& os, const Value& v);

struct ValueHash {
  size_t operator()(const Value& v) const { return v.Hash(); }
};

}  // namespace gpr::ra
