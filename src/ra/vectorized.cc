#include "ra/vectorized.h"

#include <cmath>
#include <cstring>
#include <memory>
#include <string>
#include <unordered_map>
#include <utility>

#include "exec/exec_context.h"
#include "ra/morsel.h"
#include "ra/plan_cache.h"

namespace gpr::ra::vec {
namespace {

/// One governor poll per column batch. A batch is kVectorBatchRows = 2048
/// rows, at or under the morsel-granular cadence the row path's parallel
/// legs already use (morsels are at most kPollStride = 8192 rows), so
/// cancellation and deadline latency stay bounded at least as tightly as
/// on the row path. Poll() carries no fault injection — only Checkpoint()
/// does — so the differing poll count cannot perturb fault determinism.
Status PollBatch(EvalContext* ctx, const char* site) {
  if (ctx != nullptr && ctx->exec != nullptr) {
    return ctx->exec->Poll(site);
  }
  return Status::OK();
}

void CountBatches(EvalContext* ctx, size_t batches) {
  if (ctx != nullptr && ctx->vectors != nullptr) {
    ctx->vectors->vector_batches += batches;
  }
}

/// The per-batch result of one expression node: an unboxed int64 or
/// double payload plus a byte-per-row null mask. NULL slots carry
/// placeholder payloads and must never be read without consulting the
/// mask. The int64 tag doubles as the three-valued boolean carrier
/// (0 / 1 / NULL), matching the row evaluator's Int64 booleans.
struct Vec {
  bool is_f64 = false;
  std::vector<int64_t> i;
  std::vector<double> d;
  std::vector<uint8_t> null;  // 1 = NULL

  void Resize(size_t n, bool f64) {
    is_f64 = f64;
    if (f64) {
      d.resize(n);
    } else {
      i.resize(n);
    }
    null.assign(n, 0);
  }
  double F64At(size_t k) const {
    return is_f64 ? d[k] : static_cast<double>(i[k]);
  }
};

/// Three-valued truth of a (numeric) vec slot, replicating TruthOf: a
/// non-null slot is true iff its numeric value is non-zero. Batch vecs are
/// always numeric — string columns never enter the batchable subset except
/// through the fused null tests, which produce Int64 vecs.
inline bool Truthy(const Vec& v, size_t k) {
  return v.is_f64 ? v.d[k] != 0.0 : v.i[k] != 0;
}

/// A CompiledExpr lowered against one table's column representations into
/// straight-line batch steps. Binding fails (returns false) whenever a
/// node falls outside the batchable subset: string/boxed columns (except
/// directly under IS [NOT] NULL, which reads the null bitmap), string
/// literals, and function calls. The batchable subset is deterministic by
/// construction (rand() is a call), so batch evaluation of and/or without
/// short-circuiting is observationally identical to the row evaluator's
/// Kleene short-circuit.
class BatchProgram {
 public:
  bool Bind(const CompiledExpr& expr, const ColumnStore& store);

  /// Evaluates rows [begin, end) of `store`; scratch must hold
  /// num_steps() vecs (reused across batches and private per worker).
  void Run(const ColumnStore& store, size_t begin, size_t end,
           std::vector<Vec>* scratch) const;

  size_t num_steps() const { return steps_.size(); }
  const Vec& Root(const std::vector<Vec>& scratch) const {
    return scratch[root_];
  }
  /// Whether the root produces doubles (known statically from the column
  /// representations — used to pick output column representations).
  bool root_is_f64() const { return steps_[root_].is_f64; }

 private:
  struct Step {
    enum class Op {
      kSkip,         // column consumed only by a fused null test
      kLoadColumn,   // unbox an int64/double column slice
      kLiteral,      // splat a constant
      kArith,        // + - * / %
      kCompare,      // = <> < <= > >=
      kAndOr,        // Kleene and/or
      kNot,
      kNeg,
      kIsNull,       // null mask of an evaluated child
      kNullTestCol,  // IS [NOT] NULL fused onto a column's bitmap
    };
    Op op = Op::kSkip;
    bool is_f64 = false;  // result representation
    size_t col = 0;
    bool lit_null = false;
    int64_t lit_i = 0;
    double lit_d = 0;
    BinaryOp bin = BinaryOp::kAdd;
    bool negate = false;  // kNullTestCol / kIsNull: IS NOT NULL
    int c0 = -1;
    int c1 = -1;
  };

  std::vector<Step> steps_;
  int root_ = -1;
};

bool BatchProgram::Bind(const CompiledExpr& expr, const ColumnStore& store) {
  const auto& nodes = expr.nodes();
  steps_.assign(nodes.size(), Step{});
  root_ = expr.root();
  // Mark columns consumed only through IS [NOT] NULL: those read the
  // bitmap directly and may be of any representation.
  std::vector<uint8_t> fused(nodes.size(), 0);
  for (const auto& n : nodes) {
    if (n.kind == ExprKind::kUnary &&
        (n.un_op == UnaryOp::kIsNull || n.un_op == UnaryOp::kIsNotNull) &&
        nodes[n.children[0]].kind == ExprKind::kColumn) {
      fused[n.children[0]] = 1;
    }
  }
  for (size_t id = 0; id < nodes.size(); ++id) {
    const auto& n = nodes[id];
    Step& s = steps_[id];
    switch (n.kind) {
      case ExprKind::kColumn: {
        const ColumnVec::Rep rep = store.column(n.column_index).rep();
        if (rep != ColumnVec::Rep::kInt64 && rep != ColumnVec::Rep::kDouble) {
          if (!fused[id]) return false;
          s.op = Step::Op::kSkip;  // only its bitmap is ever read
          s.col = n.column_index;
          break;
        }
        s.op = Step::Op::kLoadColumn;
        s.col = n.column_index;
        s.is_f64 = rep == ColumnVec::Rep::kDouble;
        break;
      }
      case ExprKind::kLiteral:
        s.op = Step::Op::kLiteral;
        if (n.literal.is_null()) {
          s.lit_null = true;
        } else if (n.literal.is_int64()) {
          s.lit_i = n.literal.AsInt64();
        } else if (n.literal.is_double()) {
          s.is_f64 = true;
          s.lit_d = n.literal.AsDouble();
        } else {
          return false;  // string literal
        }
        break;
      case ExprKind::kBinary: {
        s.bin = n.bin_op;
        s.c0 = n.children[0];
        s.c1 = n.children[1];
        const Step& l = steps_[s.c0];
        const Step& r = steps_[s.c1];
        if (l.op == Step::Op::kSkip || r.op == Step::Op::kSkip) return false;
        switch (n.bin_op) {
          case BinaryOp::kAdd:
          case BinaryOp::kSub:
          case BinaryOp::kMul:
          case BinaryOp::kMod:
            s.op = Step::Op::kArith;
            s.is_f64 = l.is_f64 || r.is_f64;
            break;
          case BinaryOp::kDiv:
            s.op = Step::Op::kArith;
            s.is_f64 = true;
            break;
          case BinaryOp::kAnd:
          case BinaryOp::kOr:
            s.op = Step::Op::kAndOr;
            break;
          default:
            s.op = Step::Op::kCompare;
        }
        break;
      }
      case ExprKind::kUnary: {
        s.c0 = n.children[0];
        const Step& c = steps_[s.c0];
        switch (n.un_op) {
          case UnaryOp::kNot:
            if (c.op == Step::Op::kSkip) return false;
            s.op = Step::Op::kNot;
            break;
          case UnaryOp::kNeg:
            if (c.op == Step::Op::kSkip) return false;
            s.op = Step::Op::kNeg;
            s.is_f64 = c.is_f64;
            break;
          case UnaryOp::kIsNull:
          case UnaryOp::kIsNotNull:
            s.negate = n.un_op == UnaryOp::kIsNotNull;
            if (nodes[s.c0].kind == ExprKind::kColumn) {
              s.op = Step::Op::kNullTestCol;
              s.col = nodes[s.c0].column_index;
            } else {
              if (c.op == Step::Op::kSkip) return false;
              s.op = Step::Op::kIsNull;
            }
            break;
        }
        break;
      }
      case ExprKind::kCall:
        return false;
    }
  }
  return true;
}

void BatchProgram::Run(const ColumnStore& store, size_t begin, size_t end,
                       std::vector<Vec>* scratch) const {
  const size_t n = end - begin;
  for (size_t id = 0; id < steps_.size(); ++id) {
    const Step& s = steps_[id];
    Vec& out = (*scratch)[id];
    switch (s.op) {
      case Step::Op::kSkip:
        break;
      case Step::Op::kLoadColumn: {
        const ColumnVec& col = store.column(s.col);
        out.Resize(n, s.is_f64);
        if (s.is_f64) {
          std::memcpy(out.d.data(), col.f64().data() + begin,
                      n * sizeof(double));
        } else {
          std::memcpy(out.i.data(), col.i64().data() + begin,
                      n * sizeof(int64_t));
        }
        if (col.has_nulls()) {
          for (size_t k = 0; k < n; ++k) {
            out.null[k] = col.IsNull(begin + k) ? 1 : 0;
          }
        }
        break;
      }
      case Step::Op::kLiteral:
        out.Resize(n, s.is_f64);
        if (s.lit_null) {
          std::fill(out.null.begin(), out.null.end(), uint8_t{1});
        } else if (s.is_f64) {
          std::fill(out.d.begin(), out.d.end(), s.lit_d);
        } else {
          std::fill(out.i.begin(), out.i.end(), s.lit_i);
        }
        break;
      case Step::Op::kArith: {
        const Vec& l = (*scratch)[s.c0];
        const Vec& r = (*scratch)[s.c1];
        out.Resize(n, s.is_f64);
        if (!s.is_f64) {
          // Both sides integral and op != div: integer arithmetic, with
          // mod-by-zero yielding NULL — exactly NumericBinary's integral
          // branch. Placeholder payloads under NULL slots are zero, so
          // the unguarded ops are safe; mod guards explicitly.
          switch (s.bin) {
            case BinaryOp::kAdd:
              for (size_t k = 0; k < n; ++k) out.i[k] = l.i[k] + r.i[k];
              break;
            case BinaryOp::kSub:
              for (size_t k = 0; k < n; ++k) out.i[k] = l.i[k] - r.i[k];
              break;
            case BinaryOp::kMul:
              for (size_t k = 0; k < n; ++k) out.i[k] = l.i[k] * r.i[k];
              break;
            case BinaryOp::kMod:
              for (size_t k = 0; k < n; ++k) {
                if (r.i[k] == 0) {
                  out.null[k] = 1;
                } else {
                  out.i[k] = l.i[k] % r.i[k];
                }
              }
              break;
            default:
              break;
          }
          for (size_t k = 0; k < n; ++k) {
            out.null[k] |= l.null[k] | r.null[k];
          }
          break;
        }
        // Double branch of NumericBinary: either side double (or division).
        for (size_t k = 0; k < n; ++k) {
          const double a = l.F64At(k);
          const double b = r.F64At(k);
          switch (s.bin) {
            case BinaryOp::kAdd: out.d[k] = a + b; break;
            case BinaryOp::kSub: out.d[k] = a - b; break;
            case BinaryOp::kMul: out.d[k] = a * b; break;
            case BinaryOp::kDiv:
              if (b == 0.0) {
                out.null[k] = 1;
              } else {
                out.d[k] = a / b;
              }
              break;
            case BinaryOp::kMod:
              if (b == 0.0) {
                out.null[k] = 1;
              } else {
                out.d[k] = std::fmod(a, b);
              }
              break;
            default:
              break;
          }
          out.null[k] |= l.null[k] | r.null[k];
        }
        break;
      }
      case Step::Op::kCompare: {
        const Vec& l = (*scratch)[s.c0];
        const Vec& r = (*scratch)[s.c1];
        out.Resize(n, false);
        const bool both_int = !l.is_f64 && !r.is_f64;
        for (size_t k = 0; k < n; ++k) {
          if (l.null[k] || r.null[k]) {
            out.null[k] = 1;
            continue;
          }
          // Value::Compare's numeric branches: integer compare when both
          // sides are Int64, else compare widened to double (NaN compares
          // as equal, like the row path).
          int c;
          if (both_int) {
            c = l.i[k] < r.i[k] ? -1 : (l.i[k] > r.i[k] ? 1 : 0);
          } else {
            const double a = l.F64At(k);
            const double b = r.F64At(k);
            c = a < b ? -1 : (a > b ? 1 : 0);
          }
          bool res = false;
          switch (s.bin) {
            case BinaryOp::kEq: res = c == 0; break;
            case BinaryOp::kNe: res = c != 0; break;
            case BinaryOp::kLt: res = c < 0; break;
            case BinaryOp::kLe: res = c <= 0; break;
            case BinaryOp::kGt: res = c > 0; break;
            case BinaryOp::kGe: res = c >= 0; break;
            default: break;
          }
          out.i[k] = res ? 1 : 0;
        }
        break;
      }
      case Step::Op::kAndOr: {
        const Vec& l = (*scratch)[s.c0];
        const Vec& r = (*scratch)[s.c1];
        out.Resize(n, false);
        const bool is_and = s.bin == BinaryOp::kAnd;
        for (size_t k = 0; k < n; ++k) {
          const bool ln = l.null[k] != 0;
          const bool rn = r.null[k] != 0;
          const bool lt = !ln && Truthy(l, k);
          const bool rt = !rn && Truthy(r, k);
          if (is_and) {
            if ((!ln && !lt) || (!rn && !rt)) {
              out.i[k] = 0;  // a definite false dominates
            } else if (lt && rt) {
              out.i[k] = 1;
            } else {
              out.null[k] = 1;
            }
          } else {
            if (lt || rt) {
              out.i[k] = 1;  // a definite true dominates
            } else if (!ln && !rn) {
              out.i[k] = 0;
            } else {
              out.null[k] = 1;
            }
          }
        }
        break;
      }
      case Step::Op::kNot: {
        const Vec& c = (*scratch)[s.c0];
        out.Resize(n, false);
        for (size_t k = 0; k < n; ++k) {
          if (c.null[k]) {
            out.null[k] = 1;
          } else {
            out.i[k] = Truthy(c, k) ? 0 : 1;
          }
        }
        break;
      }
      case Step::Op::kNeg: {
        const Vec& c = (*scratch)[s.c0];
        out.Resize(n, s.is_f64);
        if (s.is_f64) {
          for (size_t k = 0; k < n; ++k) out.d[k] = -c.d[k];
        } else {
          for (size_t k = 0; k < n; ++k) out.i[k] = -c.i[k];
        }
        for (size_t k = 0; k < n; ++k) out.null[k] = c.null[k];
        break;
      }
      case Step::Op::kIsNull: {
        const Vec& c = (*scratch)[s.c0];
        out.Resize(n, false);
        for (size_t k = 0; k < n; ++k) {
          const bool isnull = c.null[k] != 0;
          out.i[k] = (isnull != s.negate) ? 1 : 0;
        }
        break;
      }
      case Step::Op::kNullTestCol: {
        const ColumnVec& col = store.column(s.col);
        out.Resize(n, false);
        for (size_t k = 0; k < n; ++k) {
          const bool isnull = col.IsNull(begin + k);
          out.i[k] = (isnull != s.negate) ? 1 : 0;
        }
        break;
      }
    }
  }
}

/// Boxes one vec slot back into a Value; replicates the row evaluator's
/// result types (Int64 booleans/integers, Double arithmetic).
inline Value VecValue(const Vec& v, size_t k) {
  if (v.null[k]) return Value::Null();
  return v.is_f64 ? Value(v.d[k]) : Value(v.i[k]);
}

/// The plan cache to consult for an input (same gate as the row path: the
/// caller marked the input cache-stable, a cache is live, and the table is
/// named so its (name, version) identifies the artifact).
PlanCache* CacheFor(EvalContext* ctx, bool stable, const Table& t) {
  if (!stable || ctx == nullptr || ctx->cache == nullptr) return nullptr;
  return t.name().empty() ? nullptr : ctx->cache;
}

Tuple ConcatRows(const Tuple& a, const Tuple& b) {
  Tuple out;
  out.reserve(a.size() + b.size());
  out.insert(out.end(), a.begin(), a.end());
  out.insert(out.end(), b.begin(), b.end());
  return out;
}

/// Memoized unboxed hash-join build side: int64 key → right-row match
/// list in increasing row order. The vectorized analogue of the row
/// path's HashBuild, cached under "hjv:" instead of "hj:" so the two
/// paths' artifacts never alias.
struct Int64Build {
  std::unordered_map<int64_t, std::vector<size_t>> map;
};

}  // namespace

Result<bool> TrySelect(const Table& in, const CompiledExpr& pred,
                       EvalContext* ctx, Table* out) {
  const size_t n = in.NumRows();
  const ColumnStore& store = in.columns();
  BatchProgram prog;
  if (!prog.Bind(pred, store)) return false;
  const int dop = AdmitDop(ctx, n);
  if (dop > 1 && n > 1) {
    // Morsel-parallel: same decomposition as the row path, each morsel
    // scanning its row range batch-wise and gathering survivors in order.
    const size_t num_morsels = exec::NumMorsels(n, MorselRowsFor(n, dop));
    std::vector<std::vector<Tuple>> parts(num_morsels);
    std::vector<size_t> batch_counts(num_morsels, 0);
    GPR_RETURN_NOT_OK(RunMorsels(
        ctx, n, dop, "select", [&](size_t m, size_t begin, size_t end) {
          std::vector<Tuple>& part = parts[m];
          std::vector<Vec> scratch(prog.num_steps());
          for (size_t b = begin; b < end; b += kVectorBatchRows) {
            const size_t e = std::min(end, b + kVectorBatchRows);
            prog.Run(store, b, e, &scratch);
            const Vec& root = prog.Root(scratch);
            for (size_t k = 0; k < e - b; ++k) {
              if (!root.null[k] && Truthy(root, k)) {
                part.push_back(in.row(b + k));
              }
            }
            ++batch_counts[m];
          }
          return Status::OK();
        }));
    SpliceInto(parts, out);
    size_t batches = 0;
    for (size_t c : batch_counts) batches += c;
    CountBatches(ctx, batches);
    return true;
  }
  std::vector<Vec> scratch(prog.num_steps());
  std::vector<Tuple> rows;
  rows.reserve(n);
  size_t batches = 0;
  for (size_t b = 0; b < n; b += kVectorBatchRows) {
    GPR_RETURN_NOT_OK(PollBatch(ctx, "select"));
    const size_t e = std::min(n, b + kVectorBatchRows);
    prog.Run(store, b, e, &scratch);
    const Vec& root = prog.Root(scratch);
    for (size_t k = 0; k < e - b; ++k) {
      if (!root.null[k] && Truthy(root, k)) rows.push_back(in.row(b + k));
    }
    ++batches;
  }
  out->mutable_rows() = std::move(rows);
  CountBatches(ctx, batches);
  return true;
}

Result<bool> TryProject(const Table& in,
                        const std::vector<CompiledExpr>& exprs,
                        EvalContext* ctx, Table* out) {
  const size_t n = in.NumRows();
  if (exprs.empty()) return false;  // zero-column projection: oracle's edge
  if (AdmitDop(ctx, n) > 1 && n > 1) return false;  // row path has the morsel leg
  const ColumnStore& store = in.columns();
  // Each output item is either a bare column passthrough (any
  // representation, including string/boxed) or a batchable expression.
  struct Item {
    int passthrough = -1;  // input column index, or -1
    BatchProgram prog;
  };
  std::vector<Item> items(exprs.size());
  std::vector<ColumnVec::Rep> reps(exprs.size());
  for (size_t i = 0; i < exprs.size(); ++i) {
    const auto& nodes = exprs[i].nodes();
    const auto& root = nodes[exprs[i].root()];
    if (root.kind == ExprKind::kColumn) {
      items[i].passthrough = static_cast<int>(root.column_index);
      reps[i] = store.column(root.column_index).rep();
      continue;
    }
    if (!items[i].prog.Bind(exprs[i], store)) return false;
    reps[i] = items[i].prog.root_is_f64() ? ColumnVec::Rep::kDouble
                                          : ColumnVec::Rep::kInt64;
  }
  auto built = std::make_shared<ColumnStore>(ColumnStore::WithReps(reps));
  built->Reserve(n);
  std::vector<Vec> scratch;
  size_t batches = 0;
  for (size_t b = 0; b < n; b += kVectorBatchRows) {
    GPR_RETURN_NOT_OK(PollBatch(ctx, "project"));
    const size_t e = std::min(n, b + kVectorBatchRows);
    for (size_t i = 0; i < items.size(); ++i) {
      ColumnVec* col = built->mutable_column(i);
      if (items[i].passthrough >= 0) {
        const ColumnVec& src =
            store.column(static_cast<size_t>(items[i].passthrough));
        for (size_t r = b; r < e; ++r) col->Append(src.Get(r));
        continue;
      }
      const BatchProgram& prog = items[i].prog;
      if (scratch.size() < prog.num_steps()) scratch.resize(prog.num_steps());
      prog.Run(store, b, e, &scratch);
      const Vec& root = prog.Root(scratch);
      for (size_t k = 0; k < e - b; ++k) {
        if (root.null[k]) {
          col->AppendNull();
        } else if (root.is_f64) {
          col->AppendDouble(root.d[k]);
        } else {
          col->AppendInt64(root.i[k]);
        }
      }
    }
    ++batches;
  }
  built->FinishRows();
  std::vector<Tuple> rows(n);
  for (size_t r = 0; r < n; ++r) built->MaterializeRow(r, &rows[r]);
  out->mutable_rows() = std::move(rows);
  out->AdoptColumns(std::move(built));
  CountBatches(ctx, batches);
  return true;
}

Result<bool> TryHashJoin(const Table& l, const Table& r,
                         const std::vector<size_t>& lkeys,
                         const std::vector<size_t>& rkeys, bool cache_build,
                         EvalContext* ctx, Table* out) {
  if (lkeys.size() != 1) return false;
  if (AdmitDop(ctx, l.NumRows()) > 1 || AdmitDop(ctx, r.NumRows()) > 1) {
    return false;  // the row path owns the morsel build/probe legs
  }
  const ColumnStore& lstore = l.columns();
  const ColumnStore& rstore = r.columns();
  const ColumnVec& lkey = lstore.column(lkeys[0]);
  const ColumnVec& rkey = rstore.column(rkeys[0]);
  if (lkey.rep() != ColumnVec::Rep::kInt64 ||
      rkey.rep() != ColumnVec::Rep::kInt64) {
    return false;
  }
  size_t batches = 0;
  // Build side, memoized like the row path's HashBuild but with unboxed
  // int64 keys; byte charge mirrors the row build's accounting shape.
  PlanCache* cache = CacheFor(ctx, cache_build, r);
  std::shared_ptr<const Int64Build> built;
  std::string cache_key;
  const uint64_t rversion = r.version();
  if (cache != nullptr) {
    cache_key = "hjv:" + r.name() + ":" + std::to_string(rkeys[0]);
    built = cache->Lookup<Int64Build>(cache_key, rversion);
  }
  if (built == nullptr) {
    auto fresh = std::make_shared<Int64Build>();
    const size_t rn = r.NumRows();
    fresh->map.reserve(rn);
    for (size_t b = 0; b < rn; b += kVectorBatchRows) {
      GPR_RETURN_NOT_OK(PollBatch(ctx, "join"));
      const size_t e = std::min(rn, b + kVectorBatchRows);
      for (size_t i = b; i < e; ++i) {
        if (rkey.IsNull(i)) continue;  // NULL keys never match
        fresh->map[rkey.i64()[i]].push_back(i);
      }
      ++batches;
    }
    if (cache != nullptr) {
      const size_t bytes =
          r.NumRows() * (sizeof(int64_t) + 2 * sizeof(size_t));
      GPR_RETURN_NOT_OK(
          cache->Insert<Int64Build>(cache_key, rversion, fresh, bytes));
    }
    built = std::move(fresh);
  }
  // Probe in l-row order; per-key match lists are in increasing r-row
  // order, so output order matches the row path exactly.
  const size_t ln = l.NumRows();
  std::vector<Tuple> rows;
  for (size_t b = 0; b < ln; b += kVectorBatchRows) {
    GPR_RETURN_NOT_OK(PollBatch(ctx, "join"));
    const size_t e = std::min(ln, b + kVectorBatchRows);
    for (size_t li = b; li < e; ++li) {
      if (lkey.IsNull(li)) continue;
      auto it = built->map.find(lkey.i64()[li]);
      if (it == built->map.end()) continue;
      const Tuple& lrow = l.row(li);
      for (size_t ri : it->second) {
        rows.push_back(ConcatRows(lrow, r.row(ri)));
      }
    }
    ++batches;
  }
  out->mutable_rows() = std::move(rows);
  CountBatches(ctx, batches);
  return true;
}

Result<bool> TryGroupBy(const Table& in, const std::vector<size_t>& gidx,
                        const std::vector<AggSpec>& aggs,
                        const std::vector<std::optional<CompiledExpr>>& args,
                        EvalContext* ctx, Table* out) {
  const size_t n = in.NumRows();
  if (gidx.size() != 1) return false;
  if (AdmitDop(ctx, n) > 1 && n > 1) return false;  // row path partitions
  const ColumnStore& store = in.columns();
  const ColumnVec& key = store.column(gidx[0]);
  if (key.rep() != ColumnVec::Rep::kInt64 || key.has_nulls()) return false;
  // Aggregate arguments must be count(*) or bare int64/double columns.
  struct AggCol {
    int col = -1;  // -1 = count(*)
    bool is_f64 = false;
  };
  std::vector<AggCol> acols(aggs.size());
  for (size_t i = 0; i < aggs.size(); ++i) {
    if (!args[i]) {
      // A missing argument is count(*); the row path feeds Value(1) into
      // any kind, so a null-arg sum/avg/min/max would fold literal ones —
      // leave that oddity to the oracle.
      if (aggs[i].kind != AggKind::kCount) return false;
      continue;
    }
    const auto& nodes = args[i]->nodes();
    const auto& root = nodes[args[i]->root()];
    if (root.kind != ExprKind::kColumn) return false;
    const ColumnVec::Rep rep = store.column(root.column_index).rep();
    if (rep != ColumnVec::Rep::kInt64 && rep != ColumnVec::Rep::kDouble) {
      return false;
    }
    acols[i].col = static_cast<int>(root.column_index);
    acols[i].is_f64 = rep == ColumnVec::Rep::kDouble;
  }
  // Typed accumulator state replicating Accumulator field-for-field:
  // integer sums stay integral until the first double (never, on a typed
  // column), double sums fold in row order from 0.0, min/max keep the
  // first of ties (strict compare) with Compare's NaN behaviour.
  struct TypedAcc {
    bool seen = false;
    int64_t count = 0;
    int64_t isum = 0;
    double dsum = 0;
    bool has_best = false;
    int64_t ibest = 0;
    double dbest = 0;
  };
  std::unordered_map<int64_t, size_t> slots;
  slots.reserve(64);
  std::vector<int64_t> order;               // first-appearance key order
  std::vector<std::vector<TypedAcc>> accs;  // per group, per aggregate
  const std::vector<int64_t>& keys = key.i64();
  size_t batches = 0;
  for (size_t b = 0; b < n; b += kVectorBatchRows) {
    GPR_RETURN_NOT_OK(PollBatch(ctx, "group_by"));
    const size_t e = std::min(n, b + kVectorBatchRows);
    for (size_t ri = b; ri < e; ++ri) {
      auto [it, inserted] = slots.try_emplace(keys[ri], order.size());
      if (inserted) {
        order.push_back(keys[ri]);
        accs.emplace_back(aggs.size());
      }
      std::vector<TypedAcc>& g = accs[it->second];
      for (size_t i = 0; i < aggs.size(); ++i) {
        TypedAcc& a = g[i];
        const AggCol& ac = acols[i];
        if (ac.col < 0) {  // count(*): the row path feeds Value(1)
          a.seen = true;
          ++a.count;
          continue;
        }
        const ColumnVec& col = store.column(static_cast<size_t>(ac.col));
        if (col.has_nulls() && col.IsNull(ri)) continue;  // SQL: skip NULLs
        a.seen = true;
        ++a.count;
        switch (aggs[i].kind) {
          case AggKind::kSum:
          case AggKind::kAvg:
            if (ac.is_f64) {
              a.dsum += col.f64()[ri];
            } else {
              a.isum += col.i64()[ri];
            }
            break;
          case AggKind::kMin:
            if (ac.is_f64) {
              const double v = col.f64()[ri];
              if (!a.has_best || v < a.dbest) {
                a.dbest = v;
                a.has_best = true;
              }
            } else {
              const int64_t v = col.i64()[ri];
              if (!a.has_best || v < a.ibest) {
                a.ibest = v;
                a.has_best = true;
              }
            }
            break;
          case AggKind::kMax:
            if (ac.is_f64) {
              const double v = col.f64()[ri];
              if (!a.has_best || v > a.dbest) {
                a.dbest = v;
                a.has_best = true;
              }
            } else {
              const int64_t v = col.i64()[ri];
              if (!a.has_best || v > a.ibest) {
                a.ibest = v;
                a.has_best = true;
              }
            }
            break;
          case AggKind::kCount:
            break;
        }
      }
    }
    ++batches;
  }
  std::vector<Tuple> rows;
  rows.reserve(order.size());
  for (size_t g = 0; g < order.size(); ++g) {
    Tuple t;
    t.reserve(1 + aggs.size());
    t.push_back(Value(order[g]));
    for (size_t i = 0; i < aggs.size(); ++i) {
      const TypedAcc& a = accs[g][i];
      const AggCol& ac = acols[i];
      switch (aggs[i].kind) {
        case AggKind::kCount:
          t.push_back(Value(a.count));
          break;
        case AggKind::kSum:
          if (!a.seen) {
            t.push_back(Value::Null());
          } else if (ac.col >= 0 && ac.is_f64) {
            t.push_back(Value(a.dsum));
          } else {
            t.push_back(Value(a.isum));
          }
          break;
        case AggKind::kAvg: {
          if (!a.seen) {
            t.push_back(Value::Null());
            break;
          }
          const double total =
              ac.col >= 0 && ac.is_f64 ? a.dsum : static_cast<double>(a.isum);
          t.push_back(Value(total / static_cast<double>(a.count)));
          break;
        }
        case AggKind::kMin:
        case AggKind::kMax:
          if (!a.has_best) {
            t.push_back(Value::Null());
          } else if (ac.is_f64) {
            t.push_back(Value(a.dbest));
          } else {
            t.push_back(Value(a.ibest));
          }
          break;
      }
    }
    rows.push_back(std::move(t));
  }
  out->mutable_rows() = std::move(rows);
  CountBatches(ctx, batches);
  return true;
}

}  // namespace gpr::ra::vec
