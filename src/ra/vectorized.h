// Vectorized batch execution over the typed columnar image (ra/column.h).
//
// Each vec::Try* entry point is a shape-gated fast path for one hot
// operator: it executes over fixed-size column batches (kVectorBatchRows)
// with unboxed typed inner loops, and is row-identical — order included —
// to the row-at-a-time operator it shadows. When the input shape doesn't
// bind (mixed-type columns, non-batchable expressions, multi-column keys,
// parallel admission where only the row path has a morsel leg), the entry
// point returns false and the caller runs the row path, which stays fully
// intact as the differential oracle.
//
// The knob chain mirrors the CSR kernels exactly (docs/performance.md):
// EvalContext::vectors non-null = vectorize on; EngineProfile::vectorized
// → WithPlusQuery/AlgoOptions overrides → SQL `vectorize on|off`.
#pragma once

#include <optional>
#include <vector>

#include "ra/aggregate.h"
#include "ra/column.h"
#include "ra/expr.h"
#include "ra/table.h"
#include "util/status.h"

namespace gpr::ra {

/// Observability for the vectorized path, owned by the fixpoint driver and
/// surfaced through ExecCounters (vector_batches / vector_fallbacks). Its
/// presence on EvalContext doubles as the on/off knob, like KernelCounters
/// does for the CSR kernels.
struct VectorCounters {
  size_t vector_batches = 0;    ///< column batches executed vectorized
  size_t vector_fallbacks = 0;  ///< operator calls that fell back to rows
};

namespace vec {

/// σ over column batches. `out` must be constructed with the output name
/// and schema; on true it holds the full result. Serial and morsel-parallel
/// legs mirror the row operator's admission exactly.
Result<bool> TrySelect(const Table& in, const CompiledExpr& pred,
                       EvalContext* ctx, Table* out);

/// Π over column batches: every item must be a bare column passthrough
/// (any representation) or a batchable expression. Serial only — parallel
/// admission falls back to the row operator's morsel leg. On success the
/// output table also adopts the typed columns built alongside its rows.
Result<bool> TryProject(const Table& in,
                        const std::vector<CompiledExpr>& exprs,
                        EvalContext* ctx, Table* out);

/// Serial hash-join fast path: single int64-typed key pair, no residual.
/// Builds (or reuses, via the plan cache under "hjv:") an unboxed int64
/// key map over `r` and probes `l`'s key column batch-wise. NULL keys are
/// skipped on both sides, match lists are in increasing row order, and
/// output is l-row-order × match-order — exactly the row path's contract.
Result<bool> TryHashJoin(const Table& l, const Table& r,
                         const std::vector<size_t>& lkeys,
                         const std::vector<size_t>& rkeys, bool cache_build,
                         EvalContext* ctx, Table* out);

/// Serial group-by fast path: single non-null int64 group key, aggregates
/// limited to count(*) and sum/min/max/count/avg over bare int64/double
/// columns. Folds replicate Accumulator bit-for-bit (integer sums stay
/// integral; double sums accumulate in row order; min/max keep the first
/// of ties) and groups emit in first-appearance order.
Result<bool> TryGroupBy(const Table& in, const std::vector<size_t>& gidx,
                        const std::vector<AggSpec>& aggs,
                        const std::vector<std::optional<CompiledExpr>>& args,
                        EvalContext* ctx, Table* out);

/// Bumps the fallback counter when the vectorized path was on but a Try*
/// declined; callers use this to keep accounting in one place.
inline void CountFallback(EvalContext* ctx) {
  if (ctx != nullptr && ctx->vectors != nullptr) {
    ++ctx->vectors->vector_fallbacks;
  }
}

/// True when the vectorized path is enabled on this context.
inline bool Enabled(const EvalContext* ctx) {
  return ctx != nullptr && ctx->vectors != nullptr;
}

}  // namespace vec
}  // namespace gpr::ra
