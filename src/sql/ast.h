// AST for the with+ SQL dialect.
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <vector>

namespace gpr::sql {

struct SqlExpr;
using SqlExprPtr = std::shared_ptr<SqlExpr>;

struct SelectCore;

/// Scalar / predicate expression node.
struct SqlExpr {
  enum class Kind {
    kColumn,    ///< possibly qualified column reference
    kNumber,
    kString,
    kStar,      ///< "*" — only valid inside count(*)
    kBinary,    ///< op in {+ - * / % = <> < <= > >= and or}
    kUnary,     ///< op in {not, -}
    kCall,      ///< function or aggregate call
    kIsNull,
    kIsNotNull,
    kInSelect,  ///< expr [not] in (select ...)
  };
  Kind kind = Kind::kColumn;
  std::string name;          ///< column name / function name / operator
  double number = 0;
  bool is_integer = false;
  std::string string_value;
  std::vector<SqlExprPtr> args;
  std::shared_ptr<SelectCore> subquery;  ///< kInSelect
  bool negated = false;                  ///< kInSelect: NOT IN
};

struct SelectItem {
  SqlExprPtr expr;
  std::string alias;  ///< empty when none given
};

struct TableRefAst {
  std::string table;
  std::string alias;  ///< empty when none given
};

/// One select-from-where-groupby block.
struct SelectCore {
  bool distinct = false;
  std::vector<SelectItem> items;
  std::vector<TableRefAst> from;
  SqlExprPtr where;                  ///< null when absent
  std::vector<std::string> group_by;
};

/// name(cols) as select ... ;   inside a computed by block.
struct ComputedDefAst {
  std::string name;
  std::vector<std::string> columns;
  SelectCore query;
};

struct SubqueryAst {
  SelectCore core;
  std::vector<ComputedDefAst> computed_by;
};

enum class CombinatorAst { kUnionAll, kUnion, kUnionByUpdate };

/// with R(cols) as ( q1 <combinator> q2 ... options ) final-select.
///
/// Options (any order, each at most once): `maxrecursion k` (quiet
/// iteration cap, SQL-Server style), plus the execution-governor hints
/// `maxtime ms`, `maxrows n`, `maxbytes n` — hard budgets that fail the
/// query with DeadlineExceeded / ResourceExhausted when tripped
/// (docs/robustness.md).
struct WithStatementAst {
  std::string rec_name;
  std::vector<std::string> rec_columns;
  std::vector<SubqueryAst> subqueries;
  std::vector<CombinatorAst> combinators;  ///< between consecutive queries
  std::vector<std::string> update_keys;    ///< union by update attributes
  int maxrecursion = 0;
  int64_t maxtime_ms = 0;   ///< governor wall-clock deadline; 0 = none
  int64_t maxrows = 0;      ///< governor row budget; 0 = none
  int64_t maxbytes = 0;     ///< governor byte budget; 0 = none
  int parallel_dop = 0;     ///< `parallel N` hint; 0 = inherit profile
  int plan_cache = -1;      ///< `cache on|off`; -1 = inherit profile
  int plan_facts = -1;      ///< `facts on|off`; -1 = inherit profile
  int csr_kernels = -1;     ///< `kernels on|off`; -1 = inherit profile
  int vectorized = -1;      ///< `vectorize on|off`; -1 = inherit profile
  int checkpoint_every = -1;  ///< `checkpoint every N`; -1 = inherit profile
  std::optional<SelectCore> final_select;
};

}  // namespace gpr::sql
