#include "sql/binder.h"

#include <algorithm>
#include <unordered_set>

#include "core/plan.h"
#include "sql/parser.h"
#include "util/string_util.h"

namespace gpr::sql {
namespace {

namespace ops = ra::ops;
using core::PlanPtr;
using ra::Schema;

/// True if `name` names an aggregate function.
bool IsAggName(const std::string& lower) {
  return lower == "sum" || lower == "min" || lower == "max" ||
         lower == "count" || lower == "avg";
}

/// Lowers a SqlExpr to an ra::Expr. kInSelect / kStar must have been
/// handled by the caller.
Result<ra::ExprPtr> LowerExpr(const SqlExprPtr& e) {
  switch (e->kind) {
    case SqlExpr::Kind::kColumn:
      return ra::Col(e->name);
    case SqlExpr::Kind::kNumber:
      if (e->is_integer) {
        return ra::Lit(ra::Value(static_cast<int64_t>(e->number)));
      }
      return ra::Lit(ra::Value(e->number));
    case SqlExpr::Kind::kString:
      return ra::Lit(ra::Value(e->string_value));
    case SqlExpr::Kind::kStar:
      return Status::BindError("'*' is only valid inside count(*)");
    case SqlExpr::Kind::kBinary: {
      GPR_ASSIGN_OR_RETURN(ra::ExprPtr l, LowerExpr(e->args[0]));
      GPR_ASSIGN_OR_RETURN(ra::ExprPtr r, LowerExpr(e->args[1]));
      static const std::pair<const char*, ra::BinaryOp> kOps[] = {
          {"+", ra::BinaryOp::kAdd}, {"-", ra::BinaryOp::kSub},
          {"*", ra::BinaryOp::kMul}, {"/", ra::BinaryOp::kDiv},
          {"%", ra::BinaryOp::kMod}, {"=", ra::BinaryOp::kEq},
          {"<>", ra::BinaryOp::kNe}, {"<", ra::BinaryOp::kLt},
          {"<=", ra::BinaryOp::kLe}, {">", ra::BinaryOp::kGt},
          {">=", ra::BinaryOp::kGe}, {"and", ra::BinaryOp::kAnd},
          {"or", ra::BinaryOp::kOr}};
      for (const auto& [name, op] : kOps) {
        if (e->name == name) return ra::Binary(op, l, r);
      }
      return Status::BindError("unknown operator '" + e->name + "'");
    }
    case SqlExpr::Kind::kUnary: {
      GPR_ASSIGN_OR_RETURN(ra::ExprPtr c, LowerExpr(e->args[0]));
      if (e->name == "not") return ra::Not(c);
      if (e->name == "-") return ra::Neg(c);
      return Status::BindError("unknown unary operator '" + e->name + "'");
    }
    case SqlExpr::Kind::kCall: {
      std::vector<ra::ExprPtr> args;
      for (const auto& a : e->args) {
        GPR_ASSIGN_OR_RETURN(ra::ExprPtr la, LowerExpr(a));
        args.push_back(la);
      }
      return ra::Call(e->name, std::move(args));
    }
    case SqlExpr::Kind::kIsNull: {
      GPR_ASSIGN_OR_RETURN(ra::ExprPtr c, LowerExpr(e->args[0]));
      return ra::IsNull(c);
    }
    case SqlExpr::Kind::kIsNotNull: {
      GPR_ASSIGN_OR_RETURN(ra::ExprPtr c, LowerExpr(e->args[0]));
      return ra::IsNotNull(c);
    }
    case SqlExpr::Kind::kInSelect:
      return Status::BindError(
          "[not] in (select ...) is only supported as a top-level WHERE "
          "conjunct");
  }
  GPR_UNREACHABLE();
}

/// Splits a WHERE tree into top-level AND conjuncts.
void SplitConjuncts(const SqlExprPtr& e, std::vector<SqlExprPtr>* out) {
  if (e->kind == SqlExpr::Kind::kBinary && e->name == "and") {
    SplitConjuncts(e->args[0], out);
    SplitConjuncts(e->args[1], out);
    return;
  }
  out->push_back(e);
}

/// Unqualified suffix of a column name.
std::string Suffix(const std::string& name) {
  const size_t pos = name.rfind('.');
  return pos == std::string::npos ? name : name.substr(pos + 1);
}

struct FromItem {
  std::string name;  ///< alias or table name
  PlanPtr plan;
  Schema schema;
};

/// Resolves a (possibly qualified) column reference to a from-item index.
Result<size_t> ResolveItem(const std::vector<FromItem>& items,
                           const std::string& column) {
  const size_t dot = column.rfind('.');
  if (dot != std::string::npos) {
    const std::string qual = column.substr(0, dot);
    for (size_t i = 0; i < items.size(); ++i) {
      if (items[i].name == qual) return i;
    }
    return Status::BindError("unknown table qualifier '" + qual + "'");
  }
  std::optional<size_t> found;
  for (size_t i = 0; i < items.size(); ++i) {
    if (items[i].schema.Has(column)) {
      if (found) {
        return Status::BindError("ambiguous column '" + column + "'");
      }
      found = i;
    }
  }
  if (!found) return Status::BindError("unknown column '" + column + "'");
  return *found;
}

class SelectBinder {
 public:
  SelectBinder(const ra::Catalog& catalog, const SchemaOverlays* overlays)
      : catalog_(catalog), overlays_(overlays) {}

  Result<PlanPtr> Bind(const SelectCore& core) {
    if (core.from.empty()) {
      return Status::BindError("FROM clause is required");
    }
    // FROM items.
    std::vector<FromItem> items;
    for (const auto& ref : core.from) {
      FromItem item;
      item.plan = core::Scan(ref.table);
      item.name = ref.alias.empty() ? ref.table : ref.alias;
      if (!ref.alias.empty()) {
        item.plan = core::RenameOp(item.plan, ref.alias);
      }
      GPR_ASSIGN_OR_RETURN(item.schema,
                           core::InferSchema(item.plan, catalog_, overlays_));
      items.push_back(std::move(item));
    }
    // WHERE conjunct classification.
    std::vector<SqlExprPtr> conjuncts;
    if (core.where) SplitConjuncts(core.where, &conjuncts);
    struct JoinPred {
      size_t left_item, right_item;
      std::string left_col, right_col;
    };
    std::vector<JoinPred> join_preds;
    std::vector<SqlExprPtr> in_preds;
    std::vector<SqlExprPtr> residual;
    for (const auto& c : conjuncts) {
      if (c->kind == SqlExpr::Kind::kInSelect) {
        if (c->args[0]->kind != SqlExpr::Kind::kColumn) {
          return Status::BindError(
              "[not] in requires a column on the left-hand side");
        }
        in_preds.push_back(c);
        continue;
      }
      if (items.size() > 1 && c->kind == SqlExpr::Kind::kBinary &&
          c->name == "=" && c->args[0]->kind == SqlExpr::Kind::kColumn &&
          c->args[1]->kind == SqlExpr::Kind::kColumn) {
        auto li = ResolveItem(items, c->args[0]->name);
        auto ri = ResolveItem(items, c->args[1]->name);
        if (li.ok() && ri.ok() && *li != *ri) {
          JoinPred p{*li, *ri, c->args[0]->name, c->args[1]->name};
          if (p.left_item > p.right_item) {
            std::swap(p.left_item, p.right_item);
            std::swap(p.left_col, p.right_col);
          }
          join_preds.push_back(std::move(p));
          continue;
        }
      }
      residual.push_back(c);
    }

    // Greedy join tree: start at item 0, connect via join predicates,
    // cross-product anything unconnected.
    PlanPtr plan = items[0].plan;
    std::vector<bool> bound(items.size(), false);
    bound[0] = true;
    std::vector<bool> used(join_preds.size(), false);
    size_t remaining = items.size() - 1;
    while (remaining > 0) {
      // Find a predicate connecting the bound set to a new item.
      ssize_t pick = -1;
      for (size_t p = 0; p < join_preds.size(); ++p) {
        if (used[p]) continue;
        const auto& jp = join_preds[p];
        if (bound[jp.left_item] != bound[jp.right_item]) {
          pick = static_cast<ssize_t>(p);
          break;
        }
      }
      if (pick < 0) {
        // Cross product with the next unbound item.
        for (size_t i = 0; i < items.size(); ++i) {
          if (bound[i]) continue;
          plan = core::CrossProductOp(plan, items[i].plan);
          bound[i] = true;
          --remaining;
          break;
        }
        continue;
      }
      const auto jp = join_preds[pick];
      used[pick] = true;
      const size_t new_item = bound[jp.left_item] ? jp.right_item
                                                  : jp.left_item;
      const std::string bound_col =
          bound[jp.left_item] ? jp.left_col : jp.right_col;
      const std::string new_col =
          bound[jp.left_item] ? jp.right_col : jp.left_col;
      // Collect further predicates between the bound set and this item as
      // extra key pairs.
      ops::JoinKeys keys{{bound_col}, {Suffix(new_col)}};
      for (size_t p = 0; p < join_preds.size(); ++p) {
        if (used[p]) continue;
        const auto& other = join_preds[p];
        const bool connects =
            (other.left_item == new_item && bound[other.right_item]) ||
            (other.right_item == new_item && bound[other.left_item]);
        if (!connects) continue;
        used[p] = true;
        if (other.left_item == new_item) {
          keys.left.push_back(other.right_col);
          keys.right.push_back(Suffix(other.left_col));
        } else {
          keys.left.push_back(other.left_col);
          keys.right.push_back(Suffix(other.right_col));
        }
      }
      plan = core::JoinOp(plan, items[new_item].plan, std::move(keys));
      bound[new_item] = true;
      --remaining;
    }
    // Any join predicate left over (e.g. between two already-bound items)
    // becomes a residual filter.
    for (size_t p = 0; p < join_preds.size(); ++p) {
      if (used[p]) continue;
      residual.push_back(nullptr);  // placeholder; lowered below
      const auto& jp = join_preds[p];
      auto eq = std::make_shared<SqlExpr>();
      eq->kind = SqlExpr::Kind::kBinary;
      eq->name = "=";
      auto lc = std::make_shared<SqlExpr>();
      lc->kind = SqlExpr::Kind::kColumn;
      lc->name = jp.left_col;
      auto rc = std::make_shared<SqlExpr>();
      rc->kind = SqlExpr::Kind::kColumn;
      rc->name = jp.right_col;
      eq->args = {lc, rc};
      residual.back() = eq;
    }

    // Residual selection.
    for (const auto& c : residual) {
      GPR_ASSIGN_OR_RETURN(ra::ExprPtr pred, LowerExpr(c));
      plan = core::SelectOp(plan, pred);
    }

    // Semi-/anti-join subqueries.
    for (const auto& c : in_preds) {
      GPR_ASSIGN_OR_RETURN(PlanPtr sub, Bind(*c->subquery));
      GPR_ASSIGN_OR_RETURN(Schema sub_schema,
                           core::InferSchema(sub, catalog_, overlays_));
      if (sub_schema.NumColumns() != 1) {
        return Status::BindError(
            "[not] in subquery must produce exactly one column");
      }
      ops::JoinKeys keys{{c->args[0]->name},
                         {sub_schema.column(0).name}};
      plan = c->negated
                 ? core::AntiJoinOp(plan, sub, std::move(keys),
                                    core::AntiJoinImpl::kNotIn)
                 : core::SemiJoinOp(plan, sub, std::move(keys));
    }

    // Select list: aggregates + group by.
    const bool single_star =
        core.items.size() == 1 &&
        core.items[0].expr->kind == SqlExpr::Kind::kStar;
    if (single_star) {
      if (!core.group_by.empty()) {
        return Status::BindError("select * cannot be combined with group by");
      }
      if (core.distinct) plan = core::DistinctOp(plan);
      return plan;
    }

    std::vector<ra::AggSpec> aggs;
    std::vector<SqlExprPtr> rewritten;
    bool has_agg = false;
    for (const auto& item : core.items) {
      GPR_ASSIGN_OR_RETURN(SqlExprPtr rw,
                           ExtractAggregates(item.expr, &aggs));
      rewritten.push_back(rw);
    }
    has_agg = !aggs.empty();

    if (has_agg || !core.group_by.empty()) {
      plan = core::GroupByOp(plan, core.group_by, aggs);
    }

    std::vector<ops::ProjectItem> proj;
    for (size_t i = 0; i < core.items.size(); ++i) {
      GPR_ASSIGN_OR_RETURN(ra::ExprPtr e, LowerExpr(rewritten[i]));
      std::string name = core.items[i].alias;
      if (name.empty()) {
        name = core.items[i].expr->kind == SqlExpr::Kind::kColumn
                   ? Suffix(core.items[i].expr->name)
                   : "col" + std::to_string(i + 1);
      }
      proj.push_back(ops::As(std::move(e), std::move(name)));
    }
    plan = core::ProjectOp(plan, std::move(proj));
    if (core.distinct) plan = core::DistinctOp(plan);
    return plan;
  }

 private:
  /// Replaces aggregate calls with references to generated columns,
  /// appending the corresponding AggSpecs.
  Result<SqlExprPtr> ExtractAggregates(const SqlExprPtr& e,
                                       std::vector<ra::AggSpec>* aggs) {
    if (e->kind == SqlExpr::Kind::kCall && IsAggName(e->name)) {
      GPR_ASSIGN_OR_RETURN(ra::AggKind kind, ra::ParseAggKind(e->name));
      ra::ExprPtr arg;
      if (e->args.size() == 1 &&
          e->args[0]->kind != SqlExpr::Kind::kStar) {
        GPR_ASSIGN_OR_RETURN(arg, LowerExpr(e->args[0]));
      } else if (e->args.size() > 1) {
        return Status::BindError("aggregates take one argument");
      } else if (kind != ra::AggKind::kCount &&
                 (e->args.empty() ||
                  e->args[0]->kind == SqlExpr::Kind::kStar)) {
        return Status::BindError("only count(*) may take '*'");
      }
      const std::string name = "agg" + std::to_string(aggs->size() + 1);
      aggs->push_back({kind, arg, name});
      auto ref = std::make_shared<SqlExpr>();
      ref->kind = SqlExpr::Kind::kColumn;
      ref->name = name;
      return ref;
    }
    if (e->args.empty()) return e;
    auto copy = std::make_shared<SqlExpr>(*e);
    for (auto& child : copy->args) {
      GPR_ASSIGN_OR_RETURN(child, ExtractAggregates(child, aggs));
    }
    return SqlExprPtr(copy);
  }

  const ra::Catalog& catalog_;
  const SchemaOverlays* overlays_;
};

/// True when the subquery (or its computed-by chain) references `rec`.
bool ReferencesRelation(const SubqueryAst& sq, const std::string& rec) {
  auto core_refs = [&](const SelectCore& core) {
    for (const auto& ref : core.from) {
      if (ref.table == rec) return true;
    }
    // Nested [not] in subqueries.
    std::vector<SqlExprPtr> stack;
    if (core.where) stack.push_back(core.where);
    while (!stack.empty()) {
      SqlExprPtr e = stack.back();
      stack.pop_back();
      if (e->kind == SqlExpr::Kind::kInSelect && e->subquery) {
        for (const auto& ref : e->subquery->from) {
          if (ref.table == rec) return true;
        }
        if (e->subquery->where) stack.push_back(e->subquery->where);
      }
      for (const auto& a : e->args) stack.push_back(a);
    }
    return false;
  };
  if (core_refs(sq.core)) return true;
  for (const auto& def : sq.computed_by) {
    if (core_refs(def.query)) return true;
  }
  return false;
}

}  // namespace

Result<core::PlanPtr> BindSelect(const SelectCore& core,
                                 const ra::Catalog& catalog,
                                 const SchemaOverlays* overlays) {
  SelectBinder binder(catalog, overlays);
  return binder.Bind(core);
}

Result<BoundWithStatement> BindWithStatement(const WithStatementAst& ast,
                                             const ra::Catalog& catalog) {
  BoundWithStatement out;
  core::WithPlusQuery& q = out.query;
  q.rec_name = ast.rec_name;

  // Union mode from the combinators.
  bool has_ubu = false;
  bool has_union = false;
  bool has_union_all = false;
  for (auto c : ast.combinators) {
    has_ubu |= c == CombinatorAst::kUnionByUpdate;
    has_union |= c == CombinatorAst::kUnion;
    has_union_all |= c == CombinatorAst::kUnionAll;
  }
  if (has_ubu && (has_union || has_union_all)) {
    return Status::InvalidArgument(
        "union by update cannot be combined with union all (Section 6)");
  }
  q.mode = has_ubu ? core::UnionMode::kUnionByUpdate
                   : (has_union ? core::UnionMode::kUnionDistinct
                                : core::UnionMode::kUnionAll);
  q.update_keys = ast.update_keys;
  q.maxrecursion = ast.maxrecursion;
  // Governor budgets (maxtime/maxrows/maxbytes hints). Unlike
  // maxrecursion — which stops quietly — these fail the query when
  // tripped (DeadlineExceeded / ResourceExhausted).
  if (ast.maxtime_ms < 0 || ast.maxrows < 0 || ast.maxbytes < 0) {
    return Status::BindError(
        "maxtime/maxrows/maxbytes must be non-negative");
  }
  q.governor.deadline_ms = static_cast<double>(ast.maxtime_ms);
  q.governor.row_budget = static_cast<uint64_t>(ast.maxrows);
  q.governor.byte_budget = static_cast<uint64_t>(ast.maxbytes);
  // `parallel N` degree-of-parallelism hint; results are DOP-invariant,
  // so the hint is pure physical tuning (docs/performance.md).
  if (ast.parallel_dop < 0 || ast.parallel_dop > 1024) {
    return Status::BindError("parallel degree must be between 0 and 1024");
  }
  q.degree_of_parallelism = ast.parallel_dop;
  // `cache on|off` plan-state-cache toggle; results are identical either
  // way, so this too is pure physical tuning.
  q.plan_cache = ast.plan_cache;
  // `facts on|off` plan-facts toggle; every executor consult acts only on
  // a structural proof, so results are identical either way.
  q.plan_facts = ast.plan_facts;
  // `kernels on|off` CSR-kernel toggle (docs/performance.md); the kernel
  // path is guaranteed row-identical to the generic one, so this is pure
  // physical tuning as well.
  q.csr_kernels = ast.csr_kernels;
  // `vectorize on|off` batch-execution toggle (ra/vectorized.h); the
  // batch path is guaranteed row-identical to row-at-a-time, so this is
  // pure physical tuning as well.
  q.vectorized = ast.vectorized;
  // `checkpoint every N` fixpoint-snapshot cadence (docs/robustness.md);
  // N = 0 turns checkpointing off explicitly, -1 inherits the profile.
  if (ast.checkpoint_every < -1 || ast.checkpoint_every > 32767) {
    return Status::BindError(
        "checkpoint every must be between 0 and 32767");
  }
  q.checkpoint_every = ast.checkpoint_every;

  // Classify subqueries; the initialization prefix must not reference R.
  std::vector<const SubqueryAst*> init;
  std::vector<const SubqueryAst*> recursive;
  for (const auto& sq : ast.subqueries) {
    (ReferencesRelation(sq, ast.rec_name) ? recursive : init).push_back(&sq);
  }
  if (init.empty()) {
    return Status::BindError("with+ needs at least one initial subquery");
  }
  if (recursive.empty()) {
    return Status::BindError(
        "with+ needs at least one subquery referencing '" + ast.rec_name +
        "'");
  }

  // Bind the first initial subquery to fix the recursive schema.
  GPR_ASSIGN_OR_RETURN(core::PlanPtr first_init,
                       BindSelect(init[0]->core, catalog, nullptr));
  GPR_ASSIGN_OR_RETURN(ra::Schema init_schema,
                       core::InferSchema(first_init, catalog));
  if (!ast.rec_columns.empty()) {
    GPR_ASSIGN_OR_RETURN(init_schema, init_schema.Renamed(ast.rec_columns));
  }
  q.rec_schema = init_schema;
  q.init.push_back({first_init, {}});
  for (size_t i = 1; i < init.size(); ++i) {
    if (!init[i]->computed_by.empty()) {
      return Status::NotSupported(
          "computed by inside initial subqueries is not supported");
    }
    GPR_ASSIGN_OR_RETURN(core::PlanPtr p,
                         BindSelect(init[i]->core, catalog, nullptr));
    q.init.push_back({p, {}});
  }

  // Bind the recursive subqueries under the rec/defs overlays.
  for (const SubqueryAst* sq : recursive) {
    SchemaOverlays overlays;
    overlays.emplace(ast.rec_name, q.rec_schema);
    core::Subquery bound;
    for (const auto& def : sq->computed_by) {
      GPR_ASSIGN_OR_RETURN(core::PlanPtr p,
                           BindSelect(def.query, catalog, &overlays));
      GPR_ASSIGN_OR_RETURN(ra::Schema s,
                           core::InferSchema(p, catalog, &overlays));
      if (!def.columns.empty()) {
        GPR_ASSIGN_OR_RETURN(s, s.Renamed(def.columns));
        p = core::RenameOp(p, def.name, def.columns);
      }
      overlays.emplace(def.name, s);
      bound.computed_by.push_back({def.name, p});
    }
    GPR_ASSIGN_OR_RETURN(bound.plan, BindSelect(sq->core, catalog, &overlays));
    q.recursive.push_back(std::move(bound));
  }

  if (ast.final_select) {
    SchemaOverlays overlays;
    overlays.emplace(ast.rec_name, q.rec_schema);
    GPR_ASSIGN_OR_RETURN(out.final_select,
                         BindSelect(*ast.final_select, catalog, &overlays));
  }
  return out;
}

Result<ra::Table> RunSql(const std::string& text, ra::Catalog& catalog,
                         const core::EngineProfile& profile, uint64_t seed) {
  GPR_ASSIGN_OR_RETURN(WithStatementAst ast, ParseWithStatement(text));
  GPR_ASSIGN_OR_RETURN(BoundWithStatement bound,
                       BindWithStatement(ast, catalog));
  GPR_ASSIGN_OR_RETURN(core::WithPlusResult result,
                       core::ExecuteWithPlus(bound.query, catalog, profile,
                                             seed));
  if (!bound.final_select) return result.table;
  // Run the final select against the materialized recursive relation.
  result.table.set_name(bound.query.rec_name);
  const bool existed = catalog.Has(bound.query.rec_name);
  if (existed) {
    return Status::AlreadyExists("table '" + bound.query.rec_name +
                                 "' already exists in the catalog");
  }
  GPR_RETURN_NOT_OK(catalog.CreateTempTable(bound.query.rec_name,
                                            result.table.schema()));
  GPR_RETURN_NOT_OK(
      catalog.ReplaceTable(bound.query.rec_name, std::move(result.table)));
  auto fin = core::ExecutePlan(bound.final_select, catalog, profile);
  // Best-effort: the result is already materialized in `fin`, and a failed
  // drop of the recursive temp must not mask its status.
  (void)catalog.DropTable(bound.query.rec_name);
  return fin;
}

}  // namespace gpr::sql
