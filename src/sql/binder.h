// Binder: turns parsed with+ ASTs into executable WithPlusQuery plans.
//
// The binder performs the light query planning an RDBMS frontend would:
// FROM items become scans, equality conjuncts in WHERE drive a greedy
// hash-join tree, [NOT] IN (select …) subqueries become semi-/anti-joins,
// aggregates in the select list plus GROUP BY become group-by & aggregation
// followed by a projection, and DISTINCT becomes duplicate elimination.
#pragma once

#include <unordered_map>

#include "core/with_plus.h"
#include "sql/ast.h"
#include "util/status.h"

namespace gpr::sql {

/// Schemas for tables not (yet) in the catalog during binding.
using SchemaOverlays = std::unordered_map<std::string, ra::Schema>;

/// A fully bound with+ statement.
struct BoundWithStatement {
  core::WithPlusQuery query;
  /// The trailing select over the recursive relation; null when the
  /// statement ends at the with body (result = the recursive relation).
  core::PlanPtr final_select;
};

/// Binds a select-from-where-groupby block to a logical plan.
Result<core::PlanPtr> BindSelect(const SelectCore& core,
                                 const ra::Catalog& catalog,
                                 const SchemaOverlays* overlays = nullptr);

/// Binds a with+ statement.
Result<BoundWithStatement> BindWithStatement(const WithStatementAst& ast,
                                             const ra::Catalog& catalog);

/// Convenience: parse, bind, execute, and (when present) run the final
/// select. Returns the result table.
Result<ra::Table> RunSql(const std::string& text, ra::Catalog& catalog,
                         const core::EngineProfile& profile,
                         uint64_t seed = 42);

}  // namespace gpr::sql
