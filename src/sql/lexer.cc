#include "sql/lexer.h"

#include <cctype>
#include <cstdlib>

#include "util/string_util.h"

namespace gpr::sql {

Result<std::vector<Token>> Lex(const std::string& input) {
  std::vector<Token> tokens;
  size_t i = 0;
  const size_t n = input.size();
  auto peek = [&](size_t k = 0) -> char {
    return i + k < n ? input[i + k] : '\0';
  };
  while (i < n) {
    const char c = input[i];
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    // -- comment to end of line.
    if (c == '-' && peek(1) == '-') {
      while (i < n && input[i] != '\n') ++i;
      continue;
    }
    Token tok;
    tok.offset = i;
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      size_t start = i;
      while (i < n && (std::isalnum(static_cast<unsigned char>(input[i])) ||
                       input[i] == '_')) {
        ++i;
      }
      tok.type = TokenType::kIdentifier;
      tok.text = input.substr(start, i - start);
      tokens.push_back(std::move(tok));
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c)) ||
        (c == '.' && std::isdigit(static_cast<unsigned char>(peek(1))))) {
      size_t start = i;
      bool integer = true;
      while (i < n && std::isdigit(static_cast<unsigned char>(input[i]))) ++i;
      if (i < n && input[i] == '.') {
        integer = false;
        ++i;
        while (i < n && std::isdigit(static_cast<unsigned char>(input[i]))) {
          ++i;
        }
      }
      if (i < n && (input[i] == 'e' || input[i] == 'E')) {
        integer = false;
        ++i;
        if (i < n && (input[i] == '+' || input[i] == '-')) ++i;
        while (i < n && std::isdigit(static_cast<unsigned char>(input[i]))) {
          ++i;
        }
      }
      tok.type = TokenType::kNumber;
      tok.text = input.substr(start, i - start);
      tok.number = std::strtod(tok.text.c_str(), nullptr);
      tok.is_integer = integer;
      tokens.push_back(std::move(tok));
      continue;
    }
    if (c == '\'') {
      size_t start = ++i;
      std::string value;
      while (i < n && input[i] != '\'') {
        value += input[i];
        ++i;
      }
      if (i >= n) {
        return Status::ParseError("unterminated string literal at offset " +
                                  std::to_string(start - 1));
      }
      ++i;  // closing quote
      tok.type = TokenType::kString;
      tok.text = std::move(value);
      tokens.push_back(std::move(tok));
      continue;
    }
    // Two-character operators first.
    if ((c == '<' && (peek(1) == '>' || peek(1) == '=')) ||
        (c == '>' && peek(1) == '=') || (c == '!' && peek(1) == '=')) {
      tok.type = TokenType::kSymbol;
      tok.text = input.substr(i, 2);
      if (tok.text == "!=") tok.text = "<>";
      i += 2;
      tokens.push_back(std::move(tok));
      continue;
    }
    if (std::string("(),;.*+-/%=<>").find(c) != std::string::npos) {
      tok.type = TokenType::kSymbol;
      tok.text = std::string(1, c);
      ++i;
      tokens.push_back(std::move(tok));
      continue;
    }
    return Status::ParseError("unexpected character '" + std::string(1, c) +
                              "' at offset " + std::to_string(i));
  }
  Token end;
  end.type = TokenType::kEnd;
  end.offset = n;
  tokens.push_back(end);
  return tokens;
}

}  // namespace gpr::sql
