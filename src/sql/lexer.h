// Lexer for the with+ SQL dialect (Section 6 syntax: Figs 1, 3, 5, 6).
#pragma once

#include <string>
#include <vector>

#include "util/status.h"

namespace gpr::sql {

enum class TokenType {
  kIdentifier,  ///< unquoted identifiers and keywords (case-insensitive)
  kNumber,      ///< integer or decimal literal
  kString,      ///< 'quoted string'
  kSymbol,      ///< punctuation / operators: ( ) , ; . * + - / % = <> < <= > >=
  kEnd,
};

struct Token {
  TokenType type = TokenType::kEnd;
  std::string text;    ///< raw text (identifiers lower-cased for keywords)
  double number = 0;   ///< value for kNumber
  bool is_integer = false;
  size_t offset = 0;   ///< byte offset in the input, for error messages
};

/// Tokenizes `input`. Comments ("-- ..." to end of line) are skipped.
Result<std::vector<Token>> Lex(const std::string& input);

}  // namespace gpr::sql
