#include "sql/lint.h"

#include <cctype>

#include "analysis/analyzer.h"
#include "analysis/dataflow.h"
#include "sql/binder.h"
#include "sql/parser.h"

namespace gpr::sql {

namespace {

/// True when the first keyword of `text` is `kw` (case-insensitive),
/// skipping whitespace and `--` line comments like the lexer does.
bool FirstKeywordIs(const std::string& text, const std::string& kw) {
  size_t i = 0;
  while (i < text.size()) {
    if (std::isspace(static_cast<unsigned char>(text[i]))) {
      ++i;
    } else if (text[i] == '-' && i + 1 < text.size() &&
               text[i + 1] == '-') {
      while (i < text.size() && text[i] != '\n') ++i;
    } else {
      break;
    }
  }
  size_t j = 0;
  while (i < text.size() && j < kw.size()) {
    if (std::tolower(static_cast<unsigned char>(text[i])) != kw[j]) {
      return false;
    }
    ++i;
    ++j;
  }
  return j == kw.size() &&
         (i == text.size() ||
          !std::isalnum(static_cast<unsigned char>(text[i])));
}

}  // namespace

analysis::DiagnosticBag LintSql(const std::string& text,
                                const ra::Catalog& catalog) {
  analysis::DiagnosticBag diags;

  if (!FirstKeywordIs(text, "with")) {
    // Bare select: parse, bind, and type-check the resulting plan.
    auto ast = ParseSelect(text);
    if (!ast.ok()) {
      diags.AddError("GPR-E901", StatusCode::kParseError, "select",
                     ast.status().message(),
                     "see the grammar sketch in src/sql/parser.h");
      return diags;
    }
    auto plan = BindSelect(*ast, catalog);
    if (!plan.ok()) {
      diags.AddError("GPR-E902", plan.status().code(), "select",
                     plan.status().message(),
                     "bind names against the catalog tables");
      return diags;
    }
    analysis::CheckPlanTypes(*plan, catalog, {}, "select", &diags);
    return diags;
  }

  auto ast = ParseWithStatement(text);
  if (!ast.ok()) {
    diags.AddError("GPR-E901", StatusCode::kParseError, "with+",
                   ast.status().message(),
                   "see the grammar sketch in src/sql/parser.h");
    return diags;
  }
  auto bound = BindWithStatement(*ast, catalog);
  if (!bound.ok()) {
    diags.AddError("GPR-E902", bound.status().code(), "with+",
                   bound.status().message(),
                   "bind names against the catalog tables and the "
                   "recursive relation's declared columns");
    return diags;
  }

  analysis::DiagnosticBag q =
      analysis::AnalyzeWithPlus(bound->query, catalog);
  for (const auto& d : q.diagnostics()) diags.Add(d);

  if (bound->final_select != nullptr) {
    analysis::SchemaOverlays overlays;
    overlays.emplace(bound->query.rec_name, bound->query.rec_schema);
    analysis::CheckPlanTypes(bound->final_select, catalog, overlays,
                             "final_select", &diags);
  }
  return diags;
}

Result<std::string> FactsJson(const std::string& text,
                              const ra::Catalog& catalog) {
  if (!FirstKeywordIs(text, "with")) {
    return Status::InvalidArgument(
        "plan facts are only defined for with+ statements");
  }
  GPR_ASSIGN_OR_RETURN(WithStatementAst ast, ParseWithStatement(text));
  GPR_ASSIGN_OR_RETURN(BoundWithStatement bound,
                       BindWithStatement(ast, catalog));
  return analysis::FactsToJson(bound.query, catalog);
}

}  // namespace gpr::sql
