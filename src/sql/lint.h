// Offline SQL linting: parse + bind + static analysis of with+ text,
// reported as gpr::analysis Diagnostics instead of a first-error Status.
// This is the library behind the `gpr_lint` CLI (examples/gpr_lint.cpp).
#pragma once

#include <string>

#include "analysis/diagnostic.h"
#include "ra/catalog.h"
#include "util/status.h"

namespace gpr::sql {

/// Lints one SQL statement (a with+ statement, or a bare select) against
/// `catalog` without executing anything:
///
///   * parse errors   -> GPR-E901 (kParseError)
///   * bind errors    -> GPR-E902 (kBindError, or the binder's own code)
///   * bound with+    -> the full gpr::analysis::AnalyzeWithPlus pass suite
///
/// The catalog only needs schemas; empty tables work (gpr_lint registers
/// schema-only E/V/VL relations by default).
analysis::DiagnosticBag LintSql(const std::string& text,
                                const ra::Catalog& catalog);

/// Renders the dataflow framework's statically-proven facts for one with+
/// statement as JSON (analysis::FactsToJson) — the payload behind
/// `gpr_lint --facts=json` and the ANALYSIS_facts.json CI artifact.
/// Parse/bind failures and non-with+ statements return an error Status.
Result<std::string> FactsJson(const std::string& text,
                              const ra::Catalog& catalog);

}  // namespace gpr::sql
