#include "sql/parser.h"

#include "sql/lexer.h"
#include "util/string_util.h"

namespace gpr::sql {
namespace {

/// Keyword set that terminates identifier-ish parsing positions.
bool IsKeyword(const std::string& lower) {
  static const char* kKeywords[] = {
      "select", "distinct", "from",  "where",  "group",        "by",
      "union",  "all",      "as",    "with",   "recursive",    "and",
      "or",     "not",      "in",    "is",     "null",         "update",
      "computed", "maxrecursion", "exists", "maxtime",      "maxrows",
      "maxbytes", "parallel", "cache", "facts", "kernels", "vectorize",
      "checkpoint", "every"};
  for (const char* k : kKeywords) {
    if (lower == k) return true;
  }
  return false;
}

class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  Result<WithStatementAst> ParseWith() {
    WithStatementAst stmt;
    GPR_RETURN_NOT_OK(ExpectKeyword("with"));
    // Optional: bare WITH parses identically to WITH RECURSIVE here.
    (void)AcceptKeyword("recursive");
    GPR_ASSIGN_OR_RETURN(stmt.rec_name, ExpectIdentifier("relation name"));
    if (AcceptSymbol("(")) {
      GPR_ASSIGN_OR_RETURN(stmt.rec_columns, ParseIdentList());
      GPR_RETURN_NOT_OK(ExpectSymbol(")"));
    }
    GPR_RETURN_NOT_OK(ExpectKeyword("as"));
    GPR_RETURN_NOT_OK(ExpectSymbol("("));
    // Body: subqueries joined by combinators.
    while (true) {
      GPR_ASSIGN_OR_RETURN(SubqueryAst sq, ParseSubquery());
      stmt.subqueries.push_back(std::move(sq));
      if (AcceptKeyword("union")) {
        if (AcceptKeyword("all")) {
          stmt.combinators.push_back(CombinatorAst::kUnionAll);
        } else if (AcceptKeyword("by")) {
          GPR_RETURN_NOT_OK(ExpectKeyword("update"));
          stmt.combinators.push_back(CombinatorAst::kUnionByUpdate);
          // Optional key attribute list (identifiers up to the next '(' or
          // 'select').
          while (PeekIdentifierNonKeyword()) {
            GPR_ASSIGN_OR_RETURN(std::string key,
                                 ExpectIdentifier("update key"));
            stmt.update_keys.push_back(std::move(key));
            if (!AcceptSymbol(",")) break;
          }
        } else {
          stmt.combinators.push_back(CombinatorAst::kUnion);
        }
        continue;
      }
      break;
    }
    // Trailing options, in any order, each at most once: maxrecursion
    // (quiet cap), the governor budgets maxtime/maxrows/maxbytes, the
    // degree-of-parallelism hint `parallel N`, the plan-state cache
    // toggle `cache on|off`, the plan-facts toggle `facts on|off`, the
    // CSR-kernel toggle `kernels on|off` (docs/performance.md), the
    // vectorized-batch toggle `vectorize on|off` (ra/vectorized.h), and
    // the checkpoint cadence `checkpoint every N` (docs/robustness.md).
    bool saw_maxrecursion = false, saw_maxtime = false, saw_maxrows = false,
         saw_maxbytes = false, saw_parallel = false, saw_cache = false,
         saw_facts = false, saw_kernels = false, saw_vectorize = false,
         saw_checkpoint = false;
    auto dup = [](const char* opt) {
      return Status::ParseError(std::string("duplicate option '") + opt +
                                "' in with+ statement");
    };
    while (true) {
      if (AcceptKeyword("maxrecursion")) {
        if (saw_maxrecursion) return dup("maxrecursion");
        saw_maxrecursion = true;
        GPR_ASSIGN_OR_RETURN(double v, ExpectNumber());
        stmt.maxrecursion = static_cast<int>(v);
      } else if (AcceptKeyword("maxtime")) {
        if (saw_maxtime) return dup("maxtime");
        saw_maxtime = true;
        GPR_ASSIGN_OR_RETURN(double v, ExpectNumber());
        stmt.maxtime_ms = static_cast<int64_t>(v);
      } else if (AcceptKeyword("maxrows")) {
        if (saw_maxrows) return dup("maxrows");
        saw_maxrows = true;
        GPR_ASSIGN_OR_RETURN(double v, ExpectNumber());
        stmt.maxrows = static_cast<int64_t>(v);
      } else if (AcceptKeyword("maxbytes")) {
        if (saw_maxbytes) return dup("maxbytes");
        saw_maxbytes = true;
        GPR_ASSIGN_OR_RETURN(double v, ExpectNumber());
        stmt.maxbytes = static_cast<int64_t>(v);
      } else if (AcceptKeyword("parallel")) {
        if (saw_parallel) return dup("parallel");
        saw_parallel = true;
        GPR_ASSIGN_OR_RETURN(double v, ExpectNumber());
        stmt.parallel_dop = static_cast<int>(v);
      } else if (AcceptKeyword("cache")) {
        if (saw_cache) return dup("cache");
        saw_cache = true;
        if (AcceptKeyword("on")) {
          stmt.plan_cache = 1;
        } else if (AcceptKeyword("off")) {
          stmt.plan_cache = 0;
        } else {
          return Status::ParseError(
              "expected 'on' or 'off' after 'cache' near offset " +
              std::to_string(Peek().offset));
        }
      } else if (AcceptKeyword("checkpoint")) {
        if (saw_checkpoint) return dup("checkpoint");
        saw_checkpoint = true;
        GPR_RETURN_NOT_OK(ExpectKeyword("every"));
        GPR_ASSIGN_OR_RETURN(double v, ExpectNumber());
        stmt.checkpoint_every = static_cast<int>(v);
      } else if (AcceptKeyword("facts")) {
        if (saw_facts) return dup("facts");
        saw_facts = true;
        if (AcceptKeyword("on")) {
          stmt.plan_facts = 1;
        } else if (AcceptKeyword("off")) {
          stmt.plan_facts = 0;
        } else {
          return Status::ParseError(
              "expected 'on' or 'off' after 'facts' near offset " +
              std::to_string(Peek().offset));
        }
      } else if (AcceptKeyword("kernels")) {
        if (saw_kernels) return dup("kernels");
        saw_kernels = true;
        if (AcceptKeyword("on")) {
          stmt.csr_kernels = 1;
        } else if (AcceptKeyword("off")) {
          stmt.csr_kernels = 0;
        } else {
          return Status::ParseError(
              "expected 'on' or 'off' after 'kernels' near offset " +
              std::to_string(Peek().offset));
        }
      } else if (AcceptKeyword("vectorize")) {
        if (saw_vectorize) return dup("vectorize");
        saw_vectorize = true;
        if (AcceptKeyword("on")) {
          stmt.vectorized = 1;
        } else if (AcceptKeyword("off")) {
          stmt.vectorized = 0;
        } else {
          return Status::ParseError(
              "expected 'on' or 'off' after 'vectorize' near offset " +
              std::to_string(Peek().offset));
        }
      } else {
        break;
      }
    }
    GPR_RETURN_NOT_OK(ExpectSymbol(")"));
    // Optional final select.
    if (PeekKeyword("select")) {
      GPR_ASSIGN_OR_RETURN(SelectCore fin, ParseSelectCore());
      stmt.final_select = std::move(fin);
    }
    (void)AcceptSymbol(";");  // trailing semicolon is optional
    GPR_RETURN_NOT_OK(ExpectEnd());
    return stmt;
  }

  Result<SelectCore> ParseBareSelect() {
    GPR_ASSIGN_OR_RETURN(SelectCore core, ParseSelectCore());
    (void)AcceptSymbol(";");  // trailing semicolon is optional
    GPR_RETURN_NOT_OK(ExpectEnd());
    return core;
  }

 private:
  // Token helpers ------------------------------------------------------

  const Token& Peek(size_t k = 0) const {
    const size_t i = pos_ + k;
    return i < tokens_.size() ? tokens_[i] : tokens_.back();
  }

  bool PeekKeyword(const std::string& kw, size_t k = 0) const {
    const Token& t = Peek(k);
    return t.type == TokenType::kIdentifier && ToLower(t.text) == kw;
  }

  bool PeekIdentifierNonKeyword() const {
    const Token& t = Peek();
    return t.type == TokenType::kIdentifier && !IsKeyword(ToLower(t.text));
  }

  bool AcceptKeyword(const std::string& kw) {
    if (PeekKeyword(kw)) {
      ++pos_;
      return true;
    }
    return false;
  }

  Status ExpectKeyword(const std::string& kw) {
    if (!AcceptKeyword(kw)) {
      return Status::ParseError("expected '" + kw + "' near offset " +
                                std::to_string(Peek().offset));
    }
    return Status::OK();
  }

  bool AcceptSymbol(const std::string& s) {
    if (Peek().type == TokenType::kSymbol && Peek().text == s) {
      ++pos_;
      return true;
    }
    return false;
  }

  Status ExpectSymbol(const std::string& s) {
    if (!AcceptSymbol(s)) {
      return Status::ParseError("expected '" + s + "' near offset " +
                                std::to_string(Peek().offset) + " (got '" +
                                Peek().text + "')");
    }
    return Status::OK();
  }

  Result<std::string> ExpectIdentifier(const std::string& what) {
    const Token& t = Peek();
    if (t.type != TokenType::kIdentifier || IsKeyword(ToLower(t.text))) {
      return Status::ParseError("expected " + what + " near offset " +
                                std::to_string(t.offset));
    }
    ++pos_;
    return t.text;
  }

  Result<double> ExpectNumber() {
    const Token& t = Peek();
    if (t.type != TokenType::kNumber) {
      return Status::ParseError("expected number near offset " +
                                std::to_string(t.offset));
    }
    ++pos_;
    return t.number;
  }

  Status ExpectEnd() {
    if (Peek().type != TokenType::kEnd) {
      return Status::ParseError("unexpected trailing input near offset " +
                                std::to_string(Peek().offset) + " ('" +
                                Peek().text + "')");
    }
    return Status::OK();
  }

  Result<std::vector<std::string>> ParseIdentList() {
    std::vector<std::string> out;
    while (true) {
      GPR_ASSIGN_OR_RETURN(std::string id, ExpectIdentifier("identifier"));
      out.push_back(std::move(id));
      if (!AcceptSymbol(",")) break;
    }
    return out;
  }

  // Grammar ------------------------------------------------------------

  Result<SubqueryAst> ParseSubquery() {
    SubqueryAst sq;
    const bool parenthesized = AcceptSymbol("(");
    GPR_ASSIGN_OR_RETURN(sq.core, ParseSelectCore());
    if (AcceptKeyword("computed")) {
      GPR_RETURN_NOT_OK(ExpectKeyword("by"));
      while (PeekIdentifierNonKeyword()) {
        ComputedDefAst def;
        GPR_ASSIGN_OR_RETURN(def.name, ExpectIdentifier("definition name"));
        if (AcceptSymbol("(")) {
          GPR_ASSIGN_OR_RETURN(def.columns, ParseIdentList());
          GPR_RETURN_NOT_OK(ExpectSymbol(")"));
        }
        GPR_RETURN_NOT_OK(ExpectKeyword("as"));
        GPR_ASSIGN_OR_RETURN(def.query, ParseSelectCore());
        GPR_RETURN_NOT_OK(ExpectSymbol(";"));
        sq.computed_by.push_back(std::move(def));
      }
    }
    if (parenthesized) GPR_RETURN_NOT_OK(ExpectSymbol(")"));
    return sq;
  }

  Result<SelectCore> ParseSelectCore() {
    SelectCore core;
    GPR_RETURN_NOT_OK(ExpectKeyword("select"));
    core.distinct = AcceptKeyword("distinct");
    while (true) {
      SelectItem item;
      if (Peek().type == TokenType::kSymbol && Peek().text == "*") {
        ++pos_;
        item.expr = std::make_shared<SqlExpr>();
        item.expr->kind = SqlExpr::Kind::kStar;
      } else {
        GPR_ASSIGN_OR_RETURN(item.expr, ParseExpr());
      }
      if (AcceptKeyword("as")) {
        GPR_ASSIGN_OR_RETURN(item.alias, ExpectIdentifier("column alias"));
      } else if (PeekIdentifierNonKeyword()) {
        // Bare alias ("select x y from ..." is uncommon but legal).
        GPR_ASSIGN_OR_RETURN(item.alias, ExpectIdentifier("column alias"));
      }
      core.items.push_back(std::move(item));
      if (!AcceptSymbol(",")) break;
    }
    GPR_RETURN_NOT_OK(ExpectKeyword("from"));
    while (true) {
      TableRefAst ref;
      GPR_ASSIGN_OR_RETURN(ref.table, ExpectIdentifier("table name"));
      (void)AcceptKeyword("as");  // AS is optional sugar before an alias
      if (PeekIdentifierNonKeyword()) {
        GPR_ASSIGN_OR_RETURN(ref.alias, ExpectIdentifier("table alias"));
      }
      core.from.push_back(std::move(ref));
      if (!AcceptSymbol(",")) break;
    }
    if (AcceptKeyword("where")) {
      GPR_ASSIGN_OR_RETURN(core.where, ParseExpr());
    }
    if (AcceptKeyword("group")) {
      GPR_RETURN_NOT_OK(ExpectKeyword("by"));
      while (true) {
        GPR_ASSIGN_OR_RETURN(std::string col, ParseColumnName());
        core.group_by.push_back(std::move(col));
        if (!AcceptSymbol(",")) break;
      }
    }
    return core;
  }

  Result<std::string> ParseColumnName() {
    GPR_ASSIGN_OR_RETURN(std::string name, ExpectIdentifier("column"));
    while (AcceptSymbol(".")) {
      GPR_ASSIGN_OR_RETURN(std::string part, ExpectIdentifier("column"));
      name += "." + part;
    }
    return name;
  }

  // Expression precedence: or < and < not < comparison/in/is < add < mul
  // < unary < primary.
  Result<SqlExprPtr> ParseExpr() { return ParseOr(); }

  Result<SqlExprPtr> ParseOr() {
    GPR_ASSIGN_OR_RETURN(SqlExprPtr left, ParseAnd());
    while (AcceptKeyword("or")) {
      GPR_ASSIGN_OR_RETURN(SqlExprPtr right, ParseAnd());
      left = MakeBinary("or", left, right);
    }
    return left;
  }

  Result<SqlExprPtr> ParseAnd() {
    GPR_ASSIGN_OR_RETURN(SqlExprPtr left, ParseNot());
    while (AcceptKeyword("and")) {
      GPR_ASSIGN_OR_RETURN(SqlExprPtr right, ParseNot());
      left = MakeBinary("and", left, right);
    }
    return left;
  }

  Result<SqlExprPtr> ParseNot() {
    if (AcceptKeyword("not")) {
      GPR_ASSIGN_OR_RETURN(SqlExprPtr inner, ParseNot());
      auto e = std::make_shared<SqlExpr>();
      e->kind = SqlExpr::Kind::kUnary;
      e->name = "not";
      e->args = {inner};
      return e;
    }
    return ParseComparison();
  }

  Result<SqlExprPtr> ParseComparison() {
    GPR_ASSIGN_OR_RETURN(SqlExprPtr left, ParseAdditive());
    // IS [NOT] NULL.
    if (AcceptKeyword("is")) {
      const bool negated = AcceptKeyword("not");
      GPR_RETURN_NOT_OK(ExpectKeyword("null"));
      auto e = std::make_shared<SqlExpr>();
      e->kind =
          negated ? SqlExpr::Kind::kIsNotNull : SqlExpr::Kind::kIsNull;
      e->args = {left};
      return e;
    }
    // [NOT] IN (select ...) / [NOT] IN select ...
    bool negated = false;
    if (PeekKeyword("not") && PeekKeyword("in", 1)) {
      ++pos_;
      negated = true;
    }
    if (AcceptKeyword("in")) {
      const bool paren = AcceptSymbol("(");
      GPR_ASSIGN_OR_RETURN(SelectCore sub, ParseSelectCore());
      if (paren) GPR_RETURN_NOT_OK(ExpectSymbol(")"));
      auto e = std::make_shared<SqlExpr>();
      e->kind = SqlExpr::Kind::kInSelect;
      e->negated = negated;
      e->args = {left};
      e->subquery = std::make_shared<SelectCore>(std::move(sub));
      return e;
    }
    if (negated) {
      return Status::ParseError("expected 'in' after 'not' near offset " +
                                std::to_string(Peek().offset));
    }
    static const char* kCmp[] = {"=", "<>", "<=", ">=", "<", ">"};
    for (const char* op : kCmp) {
      if (AcceptSymbol(op)) {
        GPR_ASSIGN_OR_RETURN(SqlExprPtr right, ParseAdditive());
        return MakeBinary(op, left, right);
      }
    }
    return left;
  }

  Result<SqlExprPtr> ParseAdditive() {
    GPR_ASSIGN_OR_RETURN(SqlExprPtr left, ParseMultiplicative());
    while (true) {
      if (AcceptSymbol("+")) {
        GPR_ASSIGN_OR_RETURN(SqlExprPtr right, ParseMultiplicative());
        left = MakeBinary("+", left, right);
      } else if (AcceptSymbol("-")) {
        GPR_ASSIGN_OR_RETURN(SqlExprPtr right, ParseMultiplicative());
        left = MakeBinary("-", left, right);
      } else {
        return left;
      }
    }
  }

  Result<SqlExprPtr> ParseMultiplicative() {
    GPR_ASSIGN_OR_RETURN(SqlExprPtr left, ParseUnary());
    while (true) {
      if (AcceptSymbol("*")) {
        GPR_ASSIGN_OR_RETURN(SqlExprPtr right, ParseUnary());
        left = MakeBinary("*", left, right);
      } else if (AcceptSymbol("/")) {
        GPR_ASSIGN_OR_RETURN(SqlExprPtr right, ParseUnary());
        left = MakeBinary("/", left, right);
      } else if (AcceptSymbol("%")) {
        GPR_ASSIGN_OR_RETURN(SqlExprPtr right, ParseUnary());
        left = MakeBinary("%", left, right);
      } else {
        return left;
      }
    }
  }

  Result<SqlExprPtr> ParseUnary() {
    if (AcceptSymbol("-")) {
      GPR_ASSIGN_OR_RETURN(SqlExprPtr inner, ParseUnary());
      auto e = std::make_shared<SqlExpr>();
      e->kind = SqlExpr::Kind::kUnary;
      e->name = "-";
      e->args = {inner};
      return e;
    }
    return ParsePrimary();
  }

  Result<SqlExprPtr> ParsePrimary() {
    const Token& t = Peek();
    if (t.type == TokenType::kNumber) {
      ++pos_;
      auto e = std::make_shared<SqlExpr>();
      e->kind = SqlExpr::Kind::kNumber;
      e->number = t.number;
      e->is_integer = t.is_integer;
      return e;
    }
    if (t.type == TokenType::kString) {
      ++pos_;
      auto e = std::make_shared<SqlExpr>();
      e->kind = SqlExpr::Kind::kString;
      e->string_value = t.text;
      return e;
    }
    if (AcceptSymbol("(")) {
      GPR_ASSIGN_OR_RETURN(SqlExprPtr inner, ParseExpr());
      GPR_RETURN_NOT_OK(ExpectSymbol(")"));
      return inner;
    }
    if (t.type == TokenType::kIdentifier && !IsKeyword(ToLower(t.text))) {
      // Function call?
      if (Peek(1).type == TokenType::kSymbol && Peek(1).text == "(") {
        GPR_ASSIGN_OR_RETURN(std::string fname,
                             ExpectIdentifier("function name"));
        GPR_RETURN_NOT_OK(ExpectSymbol("("));
        auto e = std::make_shared<SqlExpr>();
        e->kind = SqlExpr::Kind::kCall;
        e->name = ToLower(fname);
        if (!AcceptSymbol(")")) {
          while (true) {
            if (Peek().type == TokenType::kSymbol && Peek().text == "*") {
              ++pos_;
              auto star = std::make_shared<SqlExpr>();
              star->kind = SqlExpr::Kind::kStar;
              e->args.push_back(star);
            } else {
              GPR_ASSIGN_OR_RETURN(SqlExprPtr arg, ParseExpr());
              e->args.push_back(arg);
            }
            if (!AcceptSymbol(",")) break;
          }
          GPR_RETURN_NOT_OK(ExpectSymbol(")"));
        }
        return e;
      }
      // Column reference.
      GPR_ASSIGN_OR_RETURN(std::string name, ParseColumnName());
      auto e = std::make_shared<SqlExpr>();
      e->kind = SqlExpr::Kind::kColumn;
      e->name = std::move(name);
      return e;
    }
    return Status::ParseError("unexpected token '" + t.text +
                              "' near offset " + std::to_string(t.offset));
  }

  SqlExprPtr MakeBinary(const std::string& op, SqlExprPtr l, SqlExprPtr r) {
    auto e = std::make_shared<SqlExpr>();
    e->kind = SqlExpr::Kind::kBinary;
    e->name = op;
    e->args = {std::move(l), std::move(r)};
    return e;
  }

  std::vector<Token> tokens_;
  size_t pos_ = 0;
};

}  // namespace

Result<WithStatementAst> ParseWithStatement(const std::string& text) {
  GPR_ASSIGN_OR_RETURN(std::vector<Token> tokens, Lex(text));
  Parser parser(std::move(tokens));
  return parser.ParseWith();
}

Result<SelectCore> ParseSelect(const std::string& text) {
  GPR_ASSIGN_OR_RETURN(std::vector<Token> tokens, Lex(text));
  Parser parser(std::move(tokens));
  return parser.ParseBareSelect();
}

}  // namespace gpr::sql
